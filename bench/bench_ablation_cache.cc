/**
 * @file
 * Ablation (Section 8): cache size vs the working sets of multiple
 * resident threads. "For the default parameter set, we found that
 * caches greater than 64 Kbytes comfortably sustain the working sets
 * of four processes. Smaller caches suffer more interference and
 * reduce the benefits of multithreading."
 */

#include <cstdio>

#include "model/scalability.hh"

int
main()
{
    using namespace april::model;

    const double kb[] = {8, 16, 32, 64, 128, 256, 512};

    std::printf("Ablation: cache size vs multithreaded utilization\n");
    std::printf("(Table 4 machine, 250-block/4KB working set per "
                "thread)\n\n");
    std::printf("%8s  %8s  %8s  %8s  %8s   %s\n", "cache", "U(1)",
                "U(2)", "U(4)", "U(8)", "benefit U(4)-U(1)");
    for (double s : kb) {
        ModelParams params;
        params.cacheBytes = s * 1024;
        ScalabilityModel m(params);
        std::printf("%6.0fKB  %8.3f  %8.3f  %8.3f  %8.3f   %8.3f\n", s,
                    m.utilization(1), m.utilization(2),
                    m.utilization(4), m.utilization(8),
                    m.utilization(4) - m.utilization(1));
    }

    ModelParams at64;
    at64.cacheBytes = 64 * 1024;
    ModelParams at256;
    at256.cacheBytes = 256 * 1024;
    std::printf("\nU(4) at 64KB = %.3f; at 256KB = %.3f — the gain "
                "beyond 64KB is marginal, matching the paper's claim.\n",
                ScalabilityModel(at64).utilization(4),
                ScalabilityModel(at256).utilization(4));
    return 0;
}

/**
 * @file
 * Ablation (Section 8 claim): the sensitivity of processor
 * utilization to the context-switch overhead C. "The relatively
 * large ten-cycle context switch overhead does not significantly
 * impact performance for the default set of parameters" — because
 * switches are rare in a cache-based system — while a fine-grain
 * (high miss rate, cacheless) design is badly hurt by the same C.
 *
 * This is the design argument for APRIL: coarse-grain multithreading
 * tolerates the cheap-to-build 4-11 cycle trap-based switch.
 */

#include <cstdio>

#include "model/scalability.hh"

int
main()
{
    using namespace april::model;

    const double cs[] = {1, 2, 4, 10, 16, 32, 64, 128};

    std::printf("Ablation: context-switch overhead C vs utilization "
                "U(p=3)\n");
    std::printf("(default Table 4 machine: cached, 2%% fixed miss "
                "rate)\n\n");
    std::printf("%6s  %12s  %18s\n", "C", "U(3) cached",
                "U(3) cacheless(m=20%)");
    for (double c : cs) {
        ModelParams cached;
        cached.switchOverhead = c;
        ModelParams nocache;
        nocache.switchOverhead = c;
        nocache.fixedMissRate = 0.20;
        nocache.missBeta = 0;
        std::printf("%6.0f  %12.3f  %18.3f\n", c,
                    ScalabilityModel(cached).utilization(3),
                    ScalabilityModel(nocache).utilization(3));
    }

    ModelParams c4;
    c4.switchOverhead = 4;
    ModelParams c10;
    std::printf("\nU(3) at C=4 vs C=10: %.3f vs %.3f (delta %.3f) — "
                "the 4-10 cycle range the paper targets is benign.\n",
                ScalabilityModel(c4).utilization(3),
                ScalabilityModel(c10).utilization(3),
                ScalabilityModel(c4).utilization(3) -
                    ScalabilityModel(c10).utilization(3));
    return 0;
}

/**
 * @file
 * Ablation: what a thread does when a full/empty synchronization
 * attempt fails (Section 3, "the trap handling routine can respond
 * by: spinning, switch spinning, or blocking").
 *
 * A consumer executes a trapping load (`ldtw`) on an empty word that
 * a producer fills 2000 cycles later (the external producer models a
 * remote node). A second task frame holds an independent compute
 * thread. Under pure spinning the processor burns the whole wait;
 * under switch spinning the other frame absorbs it as useful work.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"

namespace
{

using namespace april;
using namespace april::tagged;

constexpr Addr kSlot = 256;
constexpr uint64_t kFillAt = 2000;

struct Outcome
{
    uint64_t consumerDone = 0;  ///< cycle the consumer finished
    uint64_t usefulWork = 0;    ///< iterations by the other frame
    uint64_t feTraps = 0;
};

Outcome
run(bool switch_spin)
{
    Assembler as;
    as.bind("consumer");
    as.movi(1, ptr(kSlot, Tag::Other));
    as.ldtw(2, 1, 0);           // traps while the word is empty
    as.halt();

    as.bind("worker");          // independent thread in frame 1
    as.bind("wloop");
    as.addiR(reg::g(5), reg::g(5), 1);
    // Yield back periodically so the consumer's retry comes around.
    as.moviLabel(reg::t(1), "wloop");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();

    as.bind("fe_spin");
    as.rettRetry();             // policy 1: retry immediately

    as.bind("fe_switch");       // policy 2: the Section 6.1 sequence
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    Program prog = as.finish();

    SharedMemory mem({.numNodes = 1, .wordsPerNode = 4096});
    mem.setFull(kSlot, false);
    PerfectMemPort port(&mem);
    SimpleIoPort io;
    ProcParams params;
    params.numFrames = 2;
    Processor proc(params, &prog, &port, &io);
    proc.reset(prog.entry("consumer"));
    proc.setTrapVector(TrapKind::FeEmpty,
                       prog.entry(switch_spin ? "fe_switch"
                                              : "fe_spin"));
    proc.frame(1).trapPC = prog.entry("worker");
    proc.frame(1).trapNPC = prog.entry("worker") + 1;
    proc.frame(1).trapRegs[0] = psr::ET;

    Outcome o;
    while (!proc.halted() && proc.cycle() < 100000) {
        if (proc.cycle() == kFillAt)
            mem.writeFe(kSlot, fixnum(42), true);
        proc.tick();
    }
    o.consumerDone = proc.cycle();
    o.usefulWork = proc.readGlobal(5);
    o.feTraps = uint64_t(
        proc.statTraps[size_t(TrapKind::FeEmpty)].value());
    return o;
}

} // namespace

int
main()
{
    std::printf("Ablation: retry policy on a failed full/empty "
                "synchronization\n");
    std::printf("(producer fills the word at cycle %llu; a second "
                "task frame has independent work)\n\n",
                (unsigned long long)kFillAt);

    Outcome spin = run(false);
    Outcome sw = run(true);

    std::printf("%-14s %12s %14s %10s\n", "policy", "done at",
                "useful work", "f/e traps");
    std::printf("%-14s %12llu %14llu %10llu\n", "spin",
                (unsigned long long)spin.consumerDone,
                (unsigned long long)spin.usefulWork,
                (unsigned long long)spin.feTraps);
    std::printf("%-14s %12llu %14llu %10llu\n", "switch-spin",
                (unsigned long long)sw.consumerDone,
                (unsigned long long)sw.usefulWork,
                (unsigned long long)sw.feTraps);

    std::printf("\nSwitch spinning converts nearly the whole wait "
                "into another thread's progress at a\nsmall latency "
                "cost for the consumer: \"wasteful iterations in "
                "spin-wait loops are\ninterleaved with useful work "
                "from other threads\" (Section 1).\n");
    return 0;
}

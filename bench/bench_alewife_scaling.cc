/**
 * @file
 * Extension experiment: Table 3's programs on the *full* ALEWIFE
 * machine — caches, directory coherence and the mesh all enabled —
 * rather than the perfect-memory configuration the paper used for its
 * multiprocessor columns. The paper explicitly defers this: "The
 * effect of communication in large-scale machines depends on several
 * factors such as scheduling, which are active areas of
 * investigation" (Section 7). Here the machine pays real remote
 * latencies, and the context-switching mechanism earns its keep.
 *
 * Usage: bench_alewife_scaling [fibN]
 */

#include <cstdio>
#include <cstdlib>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;
using FM = mult::CompileOptions::FutureMode;

struct Result
{
    uint64_t cycles = 0;
    double remoteMisses = 0;
    double switches = 0;
    double packets = 0;
};

Result
run(const std::string &src, FM mode, int dim, int radix)
{
    mult::CompileOptions copts;
    copts.futures = mode;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(src);
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = dim, .radix = radix};
    p.controller.cache = {.lineWords = 4, .numLines = 4096, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(2'000'000'000);
    if (!m.halted())
        fatal("alewife scaling run did not finish");

    Result r;
    r.cycles = m.cycle();
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        r.remoteMisses += m.controller(n).statRemoteMisses.value();
        r.switches +=
            m.proc(n).statTraps[size_t(TrapKind::RemoteMiss)].value();
    }
    r.packets = m.network().statPackets.value();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 16;
    QuietScope quiet_scope;
    std::string src = workloads::fibSource(n);

    struct Geo { const char *name; int dim, radix; };
    const Geo geos[] = {
        {"1x2  (2 nodes)", 1, 2},
        {"2x2  (4 nodes)", 2, 2},
        {"2x3  (9 nodes)", 2, 3},
        {"2x4 (16 nodes)", 2, 4},
    };

    std::printf("fib(%d) on the full ALEWIFE machine (64KB caches, "
                "directory coherence, mesh)\n\n", n);
    for (FM mode : {FM::Eager, FM::Lazy}) {
        std::printf("%s futures:\n",
                    mode == FM::Eager ? "normal" : "lazy");
        std::printf("  %-16s %10s %9s %12s %12s %10s\n", "mesh",
                    "cycles", "speedup", "remote miss", "cs traps",
                    "packets");
        uint64_t base = 0;
        for (const Geo &g : geos) {
            Result r = run(src, mode, g.dim, g.radix);
            if (!base)
                base = r.cycles;
            std::printf("  %-16s %10llu %8.2fx %12.0f %12.0f %10.0f\n",
                        g.name, (unsigned long long)r.cycles,
                        double(base) / double(r.cycles),
                        r.remoteMisses, r.switches, r.packets);
        }
        std::printf("\n");
    }
    std::printf("Every remote miss in the cs-traps column forced a "
                "context switch instead of a\nstall: the mechanism "
                "the paper proposes, exercised under real "
                "latencies.\nAt small problem sizes lazy stealing "
                "can regress on big meshes (continuation-stack\n"
                "copies travel the network): exactly the granularity/"
                "scheduling interaction the paper\ncalls 'an active "
                "area of investigation'.\n");
    return 0;
}

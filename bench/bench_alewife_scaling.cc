/**
 * @file
 * Extension experiment: the full ALEWIFE machine — caches, directory
 * coherence and the mesh all enabled — at scale. The paper explicitly
 * defers this: "The effect of communication in large-scale machines
 * depends on several factors such as scheduling, which are active
 * areas of investigation" (Section 7).
 *
 * Two sections:
 *
 *  1. Table 3's fib on small meshes (2..16 nodes) under the full
 *     Mul-T runtime: the context-switching mechanism under real
 *     remote latencies.
 *  2. Machine scaling (X9, DESIGN.md §7.8): the wide-sharing
 *     workload at p = 64 / 256 / 1024 nodes under the full-map and
 *     the i-pointer limited directory on the dimension-ordered mesh.
 *     Reports cycles, sharer width, overflow traps, spill walks and
 *     mean hop distance; cross-checks that both schemes finish with
 *     identical console output, and (full mode) that the 1024-node
 *     limited-directory run is bit-identical across host-thread
 *     counts and cycle-skip modes. Exits nonzero on any mismatch.
 *
 * Writes BENCH_alewife_scaling.json.
 *
 * Usage: bench_alewife_scaling [--quick] [fibN]
 *   --quick: skip the fib section, the 1024-node points and the
 *            bit-identity sweep (the CI smoke budget).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;
using FM = mult::CompileOptions::FutureMode;

struct Result
{
    uint64_t cycles = 0;
    double remoteMisses = 0;
    double switches = 0;
    double packets = 0;
};

Result
run(const std::string &src, FM mode, int dim, int radix)
{
    mult::CompileOptions copts;
    copts.futures = mode;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(src);
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = dim, .radix = radix};
    p.controller.cache = {.lineWords = 4, .numLines = 4096, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(2'000'000'000);
    if (!m.halted())
        fatal("alewife scaling run did not finish");

    Result r;
    r.cycles = m.cycle();
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        r.remoteMisses += m.controller(n).statRemoteMisses.value();
        r.switches +=
            m.proc(n).statTraps[size_t(TrapKind::RemoteMiss)].value();
    }
    r.packets = m.network().statPackets.value();
    return r;
}

// --- Section 2: machine scaling ------------------------------------

/** One wide-sharing run at scale. */
struct ScalePoint
{
    uint32_t nodes = 0;
    const char *scheme = "";
    uint64_t cycles = 0;
    uint32_t maxSharers = 0;
    double overflowTraps = 0;
    double spilledPtrs = 0;
    double spillWalks = 0;
    double meanHops = 0;
    double packets = 0;
    std::vector<Word> console;
    std::string statsDump;      ///< bit-identity digest
};

ScalePoint
runScale(const workloads::WideSharing &w, int radix,
         coh::DirScheme scheme, uint32_t threads, bool skip)
{
    AlewifeParams p;
    p.network = {.dim = 2, .radix = radix};
    p.wordsPerNode = w.wordsPerNode;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.hostThreads = threads;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    p.dirScheme = scheme;
    p.dirPointers = 4;
    auto m = std::make_unique<AlewifeMachine>(p, &w.prog);
    for (uint32_t n = 0; n < m->numNodes(); ++n)
        workloads::bootCoherentNode(m->proc(n), w.prog);
    m->run(2'000'000'000);
    if (!m->halted())
        fatal("wide-sharing run at ", w.nodes, " nodes did not finish");
    if (!m->quiesce(10'000'000))
        fatal("wide-sharing run at ", w.nodes, " nodes did not drain");

    ScalePoint pt;
    pt.nodes = w.nodes;
    pt.scheme = coh::dirSchemeName(scheme);
    pt.cycles = m->cycle();
    pt.console = m->console();
    coh::Controller &home = m->controller(0);
    Addr line = w.shared / 4;
    auto it = home.lineCensus().find(line);
    if (it != home.lineCensus().end())
        pt.maxSharers = it->second.maxSharers;
    for (uint32_t n = 0; n < m->numNodes(); ++n) {
        pt.overflowTraps += m->controller(n).statOverflowTraps.value();
        pt.spilledPtrs += m->controller(n).statSpilledPtrs.value();
        pt.spillWalks += m->controller(n).statSpillWalks.value();
    }
    pt.meanHops = m->network().statHops.mean();
    pt.packets = m->network().statPackets.value();
    std::ostringstream os;
    m->dump(os);
    pt.statsDump = os.str();
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int fib_n = 16;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            fib_n = std::atoi(argv[i]);
    }
    QuietScope quiet_scope;
    bool ok = true;

    if (!quick) {
        std::string src = workloads::fibSource(fib_n);

        struct Geo { const char *name; int dim, radix; };
        const Geo geos[] = {
            {"1x2  (2 nodes)", 1, 2},
            {"2x2  (4 nodes)", 2, 2},
            {"2x3  (9 nodes)", 2, 3},
            {"2x4 (16 nodes)", 2, 4},
        };

        std::printf("fib(%d) on the full ALEWIFE machine (64KB caches, "
                    "directory coherence, mesh)\n\n", fib_n);
        for (FM mode : {FM::Eager, FM::Lazy}) {
            std::printf("%s futures:\n",
                        mode == FM::Eager ? "normal" : "lazy");
            std::printf("  %-16s %10s %9s %12s %12s %10s\n", "mesh",
                        "cycles", "speedup", "remote miss", "cs traps",
                        "packets");
            uint64_t base = 0;
            for (const Geo &g : geos) {
                Result r = run(src, mode, g.dim, g.radix);
                if (!base)
                    base = r.cycles;
                std::printf(
                    "  %-16s %10llu %8.2fx %12.0f %12.0f %10.0f\n",
                    g.name, (unsigned long long)r.cycles,
                    double(base) / double(r.cycles), r.remoteMisses,
                    r.switches, r.packets);
            }
            std::printf("\n");
        }
    }

    // --- X9: machine scaling under the limited directory -------------
    //
    // The wide-sharing workload drives one line's sharer set as wide
    // as the machine; the limited directory (i = 4) must spill and
    // still finish in the same architectural state as the full map.
    struct ScaleGeo { uint32_t nodes; int radix; uint32_t words; };
    std::vector<ScaleGeo> scale_geos = {
        {64, 8, 1u << 14},
        {256, 16, 1u << 14},
    };
    if (!quick)
        scale_geos.push_back({1024, 32, 1u << 14});

    std::printf("Machine scaling: wide-sharing workload, 2-D mesh, "
                "full-map vs limited directory (i = 4)\n\n");
    std::printf("%6s  %-10s %10s %8s %8s %10s %8s %8s %9s\n", "nodes",
                "scheme", "cycles", "sharers", "ovflTrp", "spilled",
                "walks", "hops", "packets");

    std::string json = "{\"bench\":\"alewife_scaling\",\"quick\":";
    json += quick ? "true" : "false";
    json += ",\"points\":[";
    bool first_point = true;

    workloads::WideSharing w1024;   // kept for the identity sweep
    for (const ScaleGeo &g : scale_geos) {
        workloads::WideSharing w =
            workloads::buildWideSharing(g.nodes, g.words);
        if (g.nodes == 1024)
            w1024 = w;
        ScalePoint full =
            runScale(w, g.radix, coh::DirScheme::FullMap, 1, true);
        ScalePoint lim =
            runScale(w, g.radix, coh::DirScheme::LimitedPtr, 1, true);

        for (const ScalePoint &pt : {full, lim}) {
            std::printf("%6u  %-10s %10llu %8u %8.0f %10.0f %8.0f "
                        "%8.2f %9.0f\n",
                        pt.nodes, pt.scheme,
                        (unsigned long long)pt.cycles, pt.maxSharers,
                        pt.overflowTraps, pt.spilledPtrs,
                        pt.spillWalks, pt.meanHops, pt.packets);
            char buf[384];
            std::snprintf(
                buf, sizeof buf,
                "%s{\"nodes\":%u,\"scheme\":\"%s\",\"cycles\":%llu,"
                "\"max_sharers\":%u,\"overflow_traps\":%.0f,"
                "\"spilled_ptrs\":%.0f,\"spill_walks\":%.0f,"
                "\"mean_hops\":%.3f,\"packets\":%.0f}",
                first_point ? "" : ",", pt.nodes, pt.scheme,
                (unsigned long long)pt.cycles, pt.maxSharers,
                pt.overflowTraps, pt.spilledPtrs, pt.spillWalks,
                pt.meanHops, pt.packets);
            json += buf;
            first_point = false;
        }

        // The two schemes are timing overlays over one protocol:
        // the architectural outcome must match, the full map must
        // never trap, and the limited directory must have spilled
        // (every machine here is wider than i = 4).
        if (full.console != lim.console) {
            std::fprintf(stderr, "FAIL: console diverged between "
                         "schemes at %u nodes\n", g.nodes);
            ok = false;
        }
        if (full.overflowTraps != 0 || lim.overflowTraps < 1 ||
            lim.maxSharers != g.nodes) {
            std::fprintf(stderr, "FAIL: spill accounting wrong at %u "
                         "nodes (full %.0f, limited %.0f traps, "
                         "%u sharers)\n", g.nodes, full.overflowTraps,
                         lim.overflowTraps, lim.maxSharers);
            ok = false;
        }
    }

    // --- The 1024-node bit-identity gate ------------------------------
    bool identical = true;
    if (!quick) {
        std::printf("\n1024-node limited-directory bit-identity "
                    "(threads x cycle-skip):\n");
        ScalePoint ref =
            runScale(w1024, 32, coh::DirScheme::LimitedPtr, 1, true);
        for (bool skip : {true, false}) {
            for (uint32_t threads : {1u, 4u}) {
                if (skip && threads == 1)
                    continue;
                ScalePoint pt = runScale(w1024, 32,
                                         coh::DirScheme::LimitedPtr,
                                         threads, skip);
                bool same = pt.cycles == ref.cycles &&
                            pt.console == ref.console &&
                            pt.statsDump == ref.statsDump;
                std::printf("  threads=%u skip=%-3s %s\n", threads,
                            skip ? "on" : "off",
                            same ? "identical" : "DIVERGED");
                if (!same) {
                    std::fprintf(stderr, "FAIL: 1024-node run diverged "
                                 "(threads=%u skip=%d)\n", threads,
                                 int(skip));
                    identical = false;
                    ok = false;
                }
            }
        }
    }
    json += "],\"bit_identity\":";
    json += identical ? "true" : "false";
    json += "}";

    std::printf("\n%s\n", json.c_str());
    std::ofstream f("BENCH_alewife_scaling.json");
    f << json << "\n";
    return ok ? 0 : 1;
}

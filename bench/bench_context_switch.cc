/**
 * @file
 * Section 6.1 microbenchmark: the cost of a context switch.
 *
 * Drives a two-frame processor through a long run of forced remote
 * misses with the real run-time switch handler installed and reports
 * the measured cycles per switch-out:
 *
 *  - TrapHandler mode (the SPARC-based design): 11 cycles
 *    (5-cycle trap entry + 6-instruction handler);
 *  - Hardware mode (the custom-APRIL estimate): 4 cycles.
 *
 * Also exercises the simulator as a google-benchmark workload so host
 * throughput regressions are visible.
 */

#include <benchmark/benchmark.h>

#include "mem/memory.hh"
#include "proc/fe_semantics.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"

namespace
{

using namespace april;

constexpr Addr kRemote = 4096;

/** Every trap-mode access to kRemote forces one switch, then hits. */
class AlternatingRemotePort : public MemPort
{
  public:
    explicit AlternatingRemotePort(SharedMemory *memory) : mem(memory) {}

    MemResult
    access(const MemAccess &req) override
    {
        if (req.addr >= kRemote && req.miss == MissPolicy::Trap &&
            req.trapsEnabled && !fillReadyFlag) {
            fillReadyFlag = true;
            ++switches;
            return MemResult::forceSwitch();
        }
        if (req.addr >= kRemote)
            fillReadyFlag = false;
        return applyFeAccess(mem->word(req.addr), req);
    }

    SharedMemory *mem;
    bool fillReadyFlag = false;
    uint64_t switches = 0;
};

/** A looping thread in frame 0 + a yielding worker in frame 1. */
Program
buildProgram(bool hardware)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(kRemote, Tag::Other));
    as.movi(2, 0);
    as.bind("loop");
    as.ldnt(3, 1, 0);               // forced switch, then retry hits
    as.addiR(2, 2, 1);
    as.cmpiR(2, 1000);
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.halt();

    as.bind("worker");
    if (hardware) {
        as.bind("wloop");
        as.incfp();                 // hardware switch back
        as.j(Cond::AL, "wloop");
    } else {
        as.bind("wloop");
        as.moviLabel(reg::t(1), "wloop");
        as.wrspec(Spec::TrapPC, reg::t(1));
        as.addiR(reg::t(1), reg::t(1), 1);
        as.wrspec(Spec::TrapNPC, reg::t(1));
        as.rdpsr(reg::t(0));
        as.incfp();
        as.wrpsr(reg::t(0));
        as.rettRetry();
    }

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    return as.finish();
}

void
runSwitchBench(benchmark::State &state, bool hardware)
{
    Program prog = buildProgram(hardware);
    uint64_t cycles = 0;
    uint64_t switches = 0;

    for (auto _ : state) {
        SharedMemory mem({.numNodes = 1, .wordsPerNode = 1u << 14});
        AlternatingRemotePort port(&mem);
        SimpleIoPort io;
        ProcParams params;
        params.numFrames = 2;
        params.switchMode = hardware
            ? ProcParams::SwitchMode::Hardware
            : ProcParams::SwitchMode::TrapHandler;
        Processor proc(params, &prog, &port, &io);
        proc.reset(prog.entry("main"));
        proc.frame(1).trapPC = prog.entry("worker");
        proc.frame(1).trapNPC = prog.entry("worker") + 1;
        proc.frame(1).trapRegs[0] = psr::ET;
        proc.frame(1).savedPsr = psr::ET;
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        proc.run(10'000'000);
        if (!proc.halted())
            state.SkipWithError("did not halt");
        cycles = proc.cycle();
        switches = port.switches;
    }

    // Per-iteration loop body without a switch: ld + add + cmp + j +
    // nop = 5 cycles; everything else is switch round-trip cost.
    double base = 5.0 * double(switches) + 4.0;     // + prologue/halt
    double per_round_trip = (double(cycles) - base) / double(switches);
    state.counters["sim_cycles"] = double(cycles);
    state.counters["switch_round_trip_cycles"] = per_round_trip;
}

void
BM_ContextSwitch_TrapHandler(benchmark::State &state)
{
    runSwitchBench(state, false);
}

void
BM_ContextSwitch_Hardware(benchmark::State &state)
{
    runSwitchBench(state, true);
}

BENCHMARK(BM_ContextSwitch_TrapHandler);
BENCHMARK(BM_ContextSwitch_Hardware);

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Section 6.1: context-switch cost microbenchmark\n");
    std::printf("  Trap-based (SPARC) switch-out: 5 (entry) + 6 "
                "(handler) = 11 cycles\n");
    std::printf("  Custom-APRIL hardware switch-out: 4 cycles\n");
    std::printf("  (the round-trip counter below includes the return "
                "switch and the\n   worker's yield instructions)\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

/**
 * @file
 * Regenerates Figure 5 (and prints Table 4): processor utilization
 * U(p) as a function of resident threads, decomposed into the ideal
 * curve, network effects, cache + network effects, and context-switch
 * overhead, for the default 8000-processor machine at C = 10 cycles.
 *
 * The regions between adjacent curves correspond to the labels in the
 * paper's figure: Ideal - (network) = Network Effects, (network) -
 * (cache+network) = Cache Effects, (cache+network) - U = CS Overhead,
 * and U itself is Useful Work.
 *
 * Extension X6 (see EXPERIMENTS.md): the same utilization-vs-frames
 * curve is then *measured* on a 16-node ALEWIFE machine with the cycle
 * accountant — U comes straight from the per-node Useful/Hazard cycle
 * buckets, m and T from the coherence controllers' counters — and
 * cross-checked against Equation 1 in closed form
 * (ScalabilityModel::utilizationMeasured) with those measured inputs.
 *
 * Extension X9 (machine scaling, DESIGN.md §7.8): the measurement is
 * repeated at 64 and 256 nodes under the limited directory on the
 * 2-D mesh, with the model context re-derived from the mesh's hop
 * terms (ModelParams::forSimMesh) — T(p)'s 2hk/3 round trip now
 * grows with the machine, and Equation 1 must keep tracking the
 * accountant within the same tolerance.
 *
 * Exits nonzero if any point disagrees beyond the stated tolerance.
 */

#include <algorithm>
#include <cstdio>

#include "machine/alewife_machine.hh"
#include "model/scalability.hh"
#include "profile/accounting.hh"

namespace
{

using namespace april;

constexpr int kUseful = 48;         ///< useful instructions per miss
constexpr uint32_t kIters = 200;    ///< loop iterations per thread

/**
 * The bench_model_validation thread: kUseful instructions of pure
 * compute, then a remote load from a fresh line (stride one line in
 * the next node's memory — every load misses to a remote home), under
 * the standard 6-instruction switch-spinning handler.
 */
Program
buildMeasuredLoop(int words_shift)
{
    using namespace tagged;
    Assembler as;
    as.bind("thread");
    // r20: iteration counter; r21: remote cursor (boxed); r22: result
    as.movi(20, 0);
    as.ldio(21, int(IoReg::NodeId));
    as.addiR(21, 21, 1);
    as.ldio(23, int(IoReg::NumNodes));
    as.push({.op = Opcode::REM, .rd = 21, .rs1 = 21, .rs2 = 23});
    as.slliR(21, 21, words_shift);  // * wordsPerNode (2^words_shift)
    as.slliR(21, 21, 3);
    as.oriR(21, 21, uint8_t(Tag::Other));
    as.addiR(21, 21, wordOff(1 << (words_shift - 5)));

    as.bind("loop");
    for (int i = 0; i < kUseful - 4; ++i)
        as.addiR(22, 22, 1);
    as.ldnt(24, 21, 0);             // remote miss -> context switch
    as.addiR(21, 21, wordOff(4));   // next line (never reused)
    as.addiR(20, 20, 1);
    as.cmpiR(20, int32_t(kIters));
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    return as.finish();
}

/** One measured point of the X6 table. */
struct MeasuredPoint
{
    double utilization = 0;     ///< (Useful+Hazard)/cycles, node 0
    double missRate = 0;        ///< remote misses per useful cycle
    double latency = 0;         ///< mean issue-to-fill cycles
    double predicted = 0;       ///< Eq. 1 with the measured m, T
};

MeasuredPoint
measureFrames(const Program &prog, uint32_t p, int radix,
              uint32_t words_per_node,
              coh::DirScheme scheme = coh::DirScheme::FullMap)
{
    AlewifeParams params;
    params.network = {.dim = 2, .radix = radix};
    params.wordsPerNode = words_per_node;
    params.bootRuntime = false;
    params.proc.numFrames = std::max(p, 1u);
    params.controller.cache = {.lineWords = 4, .numLines = 1024,
                               .assoc = 4};
    params.dirScheme = scheme;
    AlewifeMachine m(params, &prog);

    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        Processor &proc = m.proc(n);
        proc.reset(prog.entry("thread"));
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        for (uint32_t f = 1; f < p; ++f) {
            proc.frame(f).trapPC = prog.entry("thread");
            proc.frame(f).trapNPC = prog.entry("thread") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }

    // Run until node 0 finishes its frame-0 thread.
    for (uint64_t c = 0; !m.proc(0).halted() && c < 30'000'000; ++c)
        m.tick();

    Processor &proc = m.proc(0);
    proc.verifyCycleAccounting();
    MeasuredPoint pt;
    double useful = proc.bucketCycles(profile::Bucket::Useful);
    double hazard = proc.bucketCycles(profile::Bucket::Hazard);
    pt.utilization = (useful + hazard) / proc.statCycles.value();
    pt.missRate = m.controller(0).statRemoteMisses.value() / useful;
    pt.latency = m.controller(0).statRemoteLatency.mean();
    pt.predicted = model::ScalabilityModel::utilizationMeasured(
        p, pt.missRate, pt.latency, 11.0);
    return pt;
}

} // namespace

int
main()
{
    using namespace april::model;

    ModelParams params;     // Table 4 defaults
    ScalabilityModel model(params);

    std::printf("Table 4: Default system parameters\n");
    std::printf("  %-28s %10.0f cycles\n", "Memory latency",
                params.memLatency);
    std::printf("  %-28s %10d\n", "Network dimension n", params.netDim);
    std::printf("  %-28s %10d\n", "Network radix k", params.netRadix);
    std::printf("  %-28s %10.0f %%\n", "Fixed miss rate",
                params.fixedMissRate * 100);
    std::printf("  %-28s %10.0f\n", "Average packet size",
                params.packetSize);
    std::printf("  %-28s %10.0f bytes\n", "Cache block size",
                params.blockBytes);
    std::printf("  %-28s %10.0f blocks\n", "Thread working set size",
                params.workingSetBlocks);
    std::printf("  %-28s %10.0f Kbytes\n", "Cache size",
                params.cacheBytes / 1024);
    std::printf("  %-28s %10.0f cycles\n", "Context switch overhead C",
                params.switchOverhead);
    std::printf("\n");
    std::printf("Derived: average hops nk/3 = %.0f, unloaded round-trip"
                " latency T(1) = %.0f cycles\n\n",
                model.avgHops(), model.baseLatency());

    std::printf("Figure 5: Processor utilization U(p) vs resident "
                "threads p\n");
    std::printf("%3s  %8s  %8s  %8s  %8s    %6s  %6s  %5s\n", "p",
                "useful", "cs-ovhd", "cache+nw", "ideal", "m(p)",
                "T(p)", "rho");
    for (int p = 0; p <= 8; ++p) {
        if (p == 0) {
            std::printf("%3d  %8.3f  %8.3f  %8.3f  %8.3f\n", 0, 0.0,
                        0.0, 0.0, 0.0);
            continue;
        }
        ModelPoint pt = model.evaluate(p);
        std::printf("%3d  %8.3f  %8.3f  %8.3f  %8.3f    %6.4f  %6.1f"
                    "  %5.2f%s\n",
                    p, pt.utilization, model.utilizationNoSwitch(p),
                    model.utilizationFixedCache(p),
                    model.utilizationIdeal(p), pt.missRate, pt.latency,
                    pt.channelRho, pt.saturated ? "  [sat]" : "");
    }

    std::printf("\nHeadline claims (Section 8):\n");
    std::printf("  U(3) = %.3f   (paper: close to 0.80 with 3 resident "
                "threads)\n", model.utilization(3));
    double peak = 0;
    for (int p = 1; p <= 8; ++p)
        peak = std::max(peak, model.utilization(p));
    std::printf("  max U = %.3f  (paper: limited to about 0.80)\n",
                peak);
    std::printf("  U(1) = %.3f   (paper: 1/(1+m(1)T(1)) = %.3f)\n",
                model.utilization(1), 1.0 / (1.0 + 0.02 * 55.0));

    // --- Extension X6: measured utilization vs task frames -----------
    //
    // The accountant's Useful+Hazard fraction on a 16-node machine,
    // against Equation 1 fed with the *measured* miss rate and remote
    // latency of the same run. Tolerance documented in EXPERIMENTS.md:
    // |measured - Eq.1(measured m, T)| <= 0.08 absolute. The slack is
    // dominated by p = 1, where switch-spinning rounds each miss wait
    // up to whole 11-cycle spin revolutions while Eq. 1 charges
    // exactly T; with p >= 2 the agreement is ~1e-3.
    constexpr double kTolerance = 0.08;
    std::printf("\nExtension X6: measured U(p) on a 16-node ALEWIFE "
                "machine\n(1 remote miss per %d instructions, C = 11 "
                "cycles, switch-spinning)\n\n", kUseful);
    std::printf("%8s  %10s  %8s  %8s  %14s  %7s\n", "frames p",
                "U measured", "m meas", "T meas", "U Eq.1(m,T)",
                "delta");
    Program prog = buildMeasuredLoop(19);
    bool ok = true;
    for (uint32_t p = 1; p <= 4; ++p) {
        MeasuredPoint pt = measureFrames(prog, p, 4, 1u << 19);
        double delta = pt.utilization - pt.predicted;
        bool bad = std::abs(delta) > kTolerance;
        ok = ok && !bad;
        std::printf("%8u  %10.3f  %8.4f  %8.1f  %14.3f  %+6.3f%s\n", p,
                    pt.utilization, pt.missRate, pt.latency,
                    pt.predicted, delta, bad ? "  [FAIL]" : "");
    }

    // --- Extension X9: the same measurement at machine scale ---------
    //
    // 64- and 256-node meshes under the limited directory (i = 4).
    // The analytical context is re-derived per mesh: T(1)'s hop term
    // is 2 x (2k/3) one-cycle traversals, so the unloaded round trip
    // grows from ~20 cycles (k = 8) to ~36 (k = 16) — and the
    // measured latency and Eq. 1 agreement must follow.
    std::printf("\nExtension X9: measured U(p) at machine scale "
                "(limited directory i = 4, 2-D mesh)\n\n");
    std::printf("%6s  %6s  %8s  %10s  %8s  %8s  %14s  %7s\n", "nodes",
                "T(1)", "frames p", "U measured", "m meas", "T meas",
                "U Eq.1(m,T)", "delta");
    Program sprog = buildMeasuredLoop(15);
    for (uint32_t nodes : {64u, 256u}) {
        int radix = nodes == 64 ? 8 : 16;
        ScalabilityModel mesh_model(ModelParams::forSimMesh(nodes));
        for (uint32_t p : {1u, 2u, 4u}) {
            MeasuredPoint pt =
                measureFrames(sprog, p, radix, 1u << 15,
                              coh::DirScheme::LimitedPtr);
            double delta = pt.utilization - pt.predicted;
            bool bad = std::abs(delta) > kTolerance;
            ok = ok && !bad;
            std::printf("%6u  %6.1f  %8u  %10.3f  %8.4f  %8.1f  "
                        "%14.3f  %+6.3f%s\n",
                        nodes, mesh_model.baseLatency(), p,
                        pt.utilization, pt.missRate, pt.latency,
                        pt.predicted, delta, bad ? "  [FAIL]" : "");
        }
    }

    if (!ok) {
        std::fprintf(stderr, "\nFAIL: measured utilization disagrees "
                     "with Equation 1 beyond %.2f\n", kTolerance);
        return 1;
    }
    std::printf("\nMeasured breakdowns reproduce the Figure 5 shape: "
                "near-linear gains up to p*,\nthen the switch-overhead "
                "ceiling 1/(1+Cm) — at 16, 64 and 256 nodes alike.\n");
    return 0;
}

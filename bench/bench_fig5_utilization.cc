/**
 * @file
 * Regenerates Figure 5 (and prints Table 4): processor utilization
 * U(p) as a function of resident threads, decomposed into the ideal
 * curve, network effects, cache + network effects, and context-switch
 * overhead, for the default 8000-processor machine at C = 10 cycles.
 *
 * The regions between adjacent curves correspond to the labels in the
 * paper's figure: Ideal - (network) = Network Effects, (network) -
 * (cache+network) = Cache Effects, (cache+network) - U = CS Overhead,
 * and U itself is Useful Work.
 */

#include <algorithm>
#include <cstdio>

#include "model/scalability.hh"

int
main()
{
    using namespace april::model;

    ModelParams params;     // Table 4 defaults
    ScalabilityModel model(params);

    std::printf("Table 4: Default system parameters\n");
    std::printf("  %-28s %10.0f cycles\n", "Memory latency",
                params.memLatency);
    std::printf("  %-28s %10d\n", "Network dimension n", params.netDim);
    std::printf("  %-28s %10d\n", "Network radix k", params.netRadix);
    std::printf("  %-28s %10.0f %%\n", "Fixed miss rate",
                params.fixedMissRate * 100);
    std::printf("  %-28s %10.0f\n", "Average packet size",
                params.packetSize);
    std::printf("  %-28s %10.0f bytes\n", "Cache block size",
                params.blockBytes);
    std::printf("  %-28s %10.0f blocks\n", "Thread working set size",
                params.workingSetBlocks);
    std::printf("  %-28s %10.0f Kbytes\n", "Cache size",
                params.cacheBytes / 1024);
    std::printf("  %-28s %10.0f cycles\n", "Context switch overhead C",
                params.switchOverhead);
    std::printf("\n");
    std::printf("Derived: average hops nk/3 = %.0f, unloaded round-trip"
                " latency T(1) = %.0f cycles\n\n",
                model.avgHops(), model.baseLatency());

    std::printf("Figure 5: Processor utilization U(p) vs resident "
                "threads p\n");
    std::printf("%3s  %8s  %8s  %8s  %8s    %6s  %6s  %5s\n", "p",
                "useful", "cs-ovhd", "cache+nw", "ideal", "m(p)",
                "T(p)", "rho");
    for (int p = 0; p <= 8; ++p) {
        if (p == 0) {
            std::printf("%3d  %8.3f  %8.3f  %8.3f  %8.3f\n", 0, 0.0,
                        0.0, 0.0, 0.0);
            continue;
        }
        ModelPoint pt = model.evaluate(p);
        std::printf("%3d  %8.3f  %8.3f  %8.3f  %8.3f    %6.4f  %6.1f"
                    "  %5.2f%s\n",
                    p, pt.utilization, model.utilizationNoSwitch(p),
                    model.utilizationFixedCache(p),
                    model.utilizationIdeal(p), pt.missRate, pt.latency,
                    pt.channelRho, pt.saturated ? "  [sat]" : "");
    }

    std::printf("\nHeadline claims (Section 8):\n");
    std::printf("  U(3) = %.3f   (paper: close to 0.80 with 3 resident "
                "threads)\n", model.utilization(3));
    double peak = 0;
    for (int p = 1; p <= 8; ++p)
        peak = std::max(peak, model.utilization(p));
    std::printf("  max U = %.3f  (paper: limited to about 0.80)\n",
                peak);
    std::printf("  U(1) = %.3f   (paper: 1/(1+m(1)T(1)) = %.3f)\n",
                model.utilization(1), 1.0 / (1.0 + 0.02 * 55.0));
    return 0;
}

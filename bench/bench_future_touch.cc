/**
 * @file
 * Section 6.2 microbenchmark: the future-touch trap.
 *
 * Measures, with the real run-time handler installed:
 *  - the resolved fast path (paper: 23 cycles), and
 *  - APRIL tag-trap detection vs Encore-style software checks on a
 *    touch-heavy loop (the Table 3 "T seq vs Mul-T seq" asymmetry).
 */

#include <benchmark/benchmark.h>

#include "machine/driver.hh"
#include "mem/memory.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"
#include "runtime/runtime.hh"

namespace
{

using namespace april;
using namespace april::tagged;

constexpr Addr kFut = 4096;

/** Cycles for one strict add on operand r1 preloaded with `value`. */
uint64_t
cyclesForAdd(Word value, bool resolved)
{
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    as.bind(rt::sym::userMain);
    as.bind("bench$main");
    as.movi(1, value);
    as.movi(2, fixnum(10));
    as.add(3, 1, 2);
    as.halt();
    Program prog = as.finish();

    SharedMemory mem({.numNodes = 1, .wordsPerNode = 1u << 18});
    rt::Runtime::initNode(mem, 0);
    mem.writeFe(kFut + rt::fut::value, fixnum(32), resolved);
    PerfectMemPort port(&mem);
    SimpleIoPort io;
    Processor proc({}, &prog, &port, &io);
    rt::Runtime::bootProcessor(proc, prog, mem, 0, 1);
    proc.setPcChain(prog.entry("bench$main"),
                    prog.entry("bench$main") + 1);
    proc.run(100000);
    return proc.cycle();
}

void
BM_FutureTouch_Resolved(benchmark::State &state)
{
    uint64_t trap = 0, clean = 0;
    for (auto _ : state) {
        trap = cyclesForAdd(ptr(kFut, Tag::Future), true);
        clean = cyclesForAdd(fixnum(32), true);
    }
    state.counters["touch_cycles"] = double(trap - clean);
}

BENCHMARK(BM_FutureTouch_Resolved);

/** A touch-heavy Mul-T loop under both detection schemes. */
void
BM_Detection(benchmark::State &state, bool software)
{
    const std::string src =
        "(define (sum v i n acc)"
        "  (if (= i n) acc"
        "      (sum v (+ i 1) n (+ acc (touch (vector-ref v i))))))"
        "(define (fill v i n)"
        "  (if (= i n) 0"
        "      (begin (vector-set! v i i) (fill v (+ i 1) n))))"
        "(define (main)"
        "  (let ((v (make-vector 64 0)))"
        "    (begin (fill v 0 64) (sum v 0 64 0))))";
    uint64_t cycles = 0;
    for (auto _ : state) {
        DriverOptions o;
        o.compile.softwareChecks = software;
        if (software)
            o.proc.tasExtraCycles = 9;
        DriverResult r = runMultProgram(src, o);
        cycles = r.cycles;
    }
    state.counters["sim_cycles"] = double(cycles);
}

void
BM_Detection_AprilTags(benchmark::State &state)
{
    BM_Detection(state, false);
}

void
BM_Detection_EncoreSoftware(benchmark::State &state)
{
    BM_Detection(state, true);
}

BENCHMARK(BM_Detection_AprilTags);
BENCHMARK(BM_Detection_EncoreSoftware);

} // namespace

int
main(int argc, char **argv)
{
    QuietScope quiet_scope;
    uint64_t trap = cyclesForAdd(ptr(kFut, Tag::Future), true);
    uint64_t clean = cyclesForAdd(fixnum(32), true);
    std::printf("Section 6.2: future-touch trap microbenchmark\n");
    std::printf("  resolved-touch cost: %llu cycles (paper: 23)\n\n",
                (unsigned long long)(trap - clean));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

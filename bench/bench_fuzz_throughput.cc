/**
 * @file
 * Throughput benchmark for the differential fuzzing harness: how many
 * randomized APRIL programs per second can the three-way cross-check
 * (ALEWIFE skip-on, ALEWIFE skip-off, perfect-memory oracle) sustain?
 * Any oracle divergence is a hard failure.
 *
 * Also reports the trap mix the generated programs actually drive
 * through the ALEWIFE machine (context switches, full/empty faults,
 * future touches), to show the harness stresses the interesting
 * paths rather than executing straight-line arithmetic.
 *
 * Writes one machine-readable JSON object to stdout and to
 * BENCH_fuzz_throughput.json.
 *
 * Usage: bench_fuzz_throughput [--quick] [seed]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "fuzz/differential.hh"
#include "machine/alewife_machine.hh"

namespace
{

using namespace april;
using namespace april::fuzz;

struct Totals
{
    uint64_t cases = 0;
    uint64_t divergences = 0;
    uint64_t alewifeCycles = 0;
    uint64_t perfectCycles = 0;
    double seconds = 0;
};

/** Per-kind trap totals across a sample of generated programs. */
struct TrapMix
{
    uint64_t counts[size_t(TrapKind::NumKinds)] = {};
    uint64_t insts = 0;
};

TrapMix
sampleTrapMix(uint64_t base_seed, uint64_t cases)
{
    TrapMix mix;
    for (uint64_t i = 0; i < cases; ++i) {
        FuzzCase c = sampleCase(deriveSeed(base_seed, i));
        Program prog = buildProgram(c);
        AlewifeParams p;
        p.network.dim = c.dim;
        p.network.radix = c.radix;
        p.wordsPerNode = c.wordsPerNode;
        p.proc.numFrames = c.numFrames;
        p.seed = c.seed;
        p.bootRuntime = false;
        AlewifeMachine m(p, &prog);
        applyMemInit(c, m.memory());
        for (uint32_t n = 0; n < m.numNodes(); ++n)
            bootFuzzProcessor(m.proc(n), prog);
        m.run(4'000'000);
        for (uint32_t n = 0; n < m.numNodes(); ++n) {
            for (size_t k = 0; k < size_t(TrapKind::NumKinds); ++k)
                mix.counts[k] +=
                    uint64_t(m.proc(n).statTraps[k].value());
            mix.insts += uint64_t(m.proc(n).statInsts.value());
        }
    }
    return mix;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    uint64_t seed = 0xB15D1FFULL;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            seed = std::stoull(argv[i], nullptr, 0);
    }
    uint64_t cases = quick ? 40 : 300;
    QuietScope quiet_scope;

    Totals t;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < cases; ++i) {
        FuzzCase c = sampleCase(deriveSeed(seed, i));
        DiffResult r = runDifferential(c);
        ++t.cases;
        t.alewifeCycles += r.alewifeCycles;
        t.perfectCycles += r.perfectCycles;
        if (!r.ok) {
            ++t.divergences;
            std::fprintf(stderr, "divergence at case %llu:\n%s\n",
                         (unsigned long long)i,
                         reproText(c, r).c_str());
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    t.seconds = std::chrono::duration<double>(t1 - t0).count();

    TrapMix mix = sampleTrapMix(seed, quick ? 10 : 50);

    double per_sec = double(t.cases) / t.seconds;
    std::printf("fuzz throughput: %llu cases in %.2fs = %.1f "
                "programs/sec (%llu alewife cycles simulated 2x, "
                "%llu oracle cycles)\n",
                (unsigned long long)t.cases, t.seconds, per_sec,
                (unsigned long long)t.alewifeCycles,
                (unsigned long long)t.perfectCycles);
    std::printf("trap mix over %llu sampled ALEWIFE instructions:\n",
                (unsigned long long)mix.insts);
    for (size_t k = 1; k < size_t(TrapKind::NumKinds); ++k) {
        if (mix.counts[k])
            std::printf("  %-14s %8llu\n", trapKindName(TrapKind(k)),
                        (unsigned long long)mix.counts[k]);
    }

    std::string json = "{\"bench\":\"fuzz_throughput\",\"quick\":";
    json += quick ? "true" : "false";
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  ",\"cases\":%llu,\"divergences\":%llu,"
                  "\"seconds\":%.6f,\"programs_per_sec\":%.1f,"
                  "\"alewife_cycles\":%llu,\"perfect_cycles\":%llu,"
                  "\"sampled_insts\":%llu,\"traps\":{",
                  (unsigned long long)t.cases,
                  (unsigned long long)t.divergences, t.seconds,
                  per_sec, (unsigned long long)t.alewifeCycles,
                  (unsigned long long)t.perfectCycles,
                  (unsigned long long)mix.insts);
    json += buf;
    bool first = true;
    for (size_t k = 1; k < size_t(TrapKind::NumKinds); ++k) {
        if (!mix.counts[k])
            continue;
        std::snprintf(buf, sizeof buf, "%s\"%s\":%llu",
                      first ? "" : ",", trapKindName(TrapKind(k)),
                      (unsigned long long)mix.counts[k]);
        json += buf;
        first = false;
    }
    json += "}}";
    std::printf("\n%s\n", json.c_str());
    std::ofstream f("BENCH_fuzz_throughput.json");
    f << json << "\n";

    if (t.divergences) {
        std::fprintf(stderr, "FAIL: %llu divergence(s)\n",
                     (unsigned long long)t.divergences);
        return 1;
    }
    return 0;
}

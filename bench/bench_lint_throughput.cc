/**
 * @file
 * Throughput benchmark for the static analyzer: programs per second
 * through buildCfg + the forward dataflow solve + the full check
 * suite, measured over freshly generated fuzz programs (a few hundred
 * instructions each) and over the big runtime + Mul-T workload images
 * (a few thousand). Lint gating the corpus and examples in CI is only
 * viable while this stays far from the critical path.
 *
 * Writes one machine-readable JSON object to stdout and to
 * BENCH_lint_throughput.json.
 *
 * Usage: bench_lint_throughput [--quick] [seed]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/checks.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "fuzz/generator.hh"
#include "mult/compiler.hh"
#include "runtime/runtime.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;

struct Lap
{
    uint64_t programs = 0;
    uint64_t insts = 0;
    uint64_t findings = 0;
    double seconds = 0;
};

/** Time analyzeProgram over a pre-built (program, options) set. */
Lap
timeAnalysis(const std::vector<std::pair<Program,
                                         analysis::AnalysisOptions>> &set,
             uint64_t rounds)
{
    Lap lap;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t r = 0; r < rounds; ++r) {
        for (const auto &[prog, opts] : set) {
            analysis::AnalysisResult res =
                analysis::analyzeProgram(prog, opts);
            ++lap.programs;
            lap.insts += res.reachableInsts;
            lap.findings += res.findings.size();
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    lap.seconds = std::chrono::duration<double>(t1 - t0).count();
    return lap;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    uint64_t seed = 0x11A71990ULL;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            seed = std::stoull(argv[i], nullptr, 0);
    }
    QuietScope quiet_scope;

    // Small programs: generated fuzz cases under the fuzz profile.
    std::vector<std::pair<Program, analysis::AnalysisOptions>> small;
    uint64_t num_small = quick ? 16 : 64;
    for (uint64_t i = 0; i < num_small; ++i) {
        Program prog =
            fuzz::buildProgram(fuzz::sampleCase(deriveSeed(seed, i)));
        analysis::AnalysisOptions opts = fuzz::lintOptions(prog);
        small.emplace_back(std::move(prog), std::move(opts));
    }
    Lap fuzzLap = timeAnalysis(small, quick ? 4 : 16);

    // Big images: runtime + compiled Mul-T benchmark, every symbol a
    // root (the april-lint --workloads profile).
    std::vector<std::pair<Program, analysis::AnalysisOptions>> big;
    {
        workloads::SuiteSizes sizes;
        mult::CompileOptions copts;
        rt::RuntimeOptions ropts;
        ropts.encore = copts.softwareChecks;
        Assembler as;
        rt::Runtime runtime(ropts);
        runtime.emit(as);
        mult::Compiler compiler(as, copts);
        compiler.compileSource(workloads::makeQueens(sizes).source);
        Program prog = as.finish();
        analysis::AnalysisOptions opts = analysis::allSymbolRoots(prog);
        big.emplace_back(std::move(prog), std::move(opts));
    }
    Lap bigLap = timeAnalysis(big, quick ? 8 : 32);

    double fuzz_per_sec = double(fuzzLap.programs) / fuzzLap.seconds;
    double big_per_sec = double(bigLap.programs) / bigLap.seconds;
    double insts_per_sec =
        double(fuzzLap.insts + bigLap.insts) /
        (fuzzLap.seconds + bigLap.seconds);
    std::printf("lint throughput: %.1f fuzz programs/sec "
                "(%llu analyzed), %.1f workload images/sec "
                "(%llu analyzed), %.0f reachable insts/sec overall\n",
                fuzz_per_sec, (unsigned long long)fuzzLap.programs,
                big_per_sec, (unsigned long long)bigLap.programs,
                insts_per_sec);

    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"lint_throughput\",\"quick\":%s,"
                  "\"fuzz_programs\":%llu,\"fuzz_per_sec\":%.1f,"
                  "\"workload_images\":%llu,\"workload_per_sec\":%.1f,"
                  "\"insts_per_sec\":%.0f,\"findings\":%llu}",
                  quick ? "true" : "false",
                  (unsigned long long)fuzzLap.programs, fuzz_per_sec,
                  (unsigned long long)bigLap.programs, big_per_sec,
                  insts_per_sec,
                  (unsigned long long)(fuzzLap.findings +
                                       bigLap.findings));
    std::printf("\n%s\n", buf);
    std::ofstream f("BENCH_lint_throughput.json");
    f << buf << "\n";
    return 0;
}

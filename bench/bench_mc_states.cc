/**
 * @file
 * Model-checker throughput benchmark: exhaustive exploration of the
 * directory protocol per scheme and node count, reporting the state
 * count, transition count, diameter and states/second. These are the
 * numbers EXPERIMENTS.md X10 quotes and the CI april-mc job budgets
 * against — a regression here means the spec grew a new state
 * dimension (intended or not) or the explorer lost throughput.
 *
 * Writes one machine-readable JSON object to stdout and to
 * BENCH_mc_states.json.
 *
 * Usage: bench_mc_states [--quick]   (--quick: 2-node configs only)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "mc/explore.hh"

namespace
{

using namespace april;

struct ConfigResult
{
    std::string name;
    mc::ExploreResult res;
    double seconds = 0;
};

ConfigResult
runConfig(const std::string &name, coh::DirScheme scheme,
          uint32_t nodes, uint32_t pointers)
{
    mc::ExploreParams p;
    p.spec.scheme = scheme;
    p.spec.dirPointers = pointers;
    p.nodes = nodes;
    auto t0 = std::chrono::steady_clock::now();
    ConfigResult r;
    r.res = mc::explore(p);
    auto t1 = std::chrono::steady_clock::now();
    r.name = name;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (!r.res.ok())
        fatal("bench_mc_states: ", name,
              " found a violation or hit the state cap — run "
              "april-mc for the counterexample");
    return r;
}

std::string
toJson(const std::vector<ConfigResult> &results, bool quick)
{
    std::string out = "{\"bench\":\"mc_states\",\"quick\":";
    out += quick ? "true" : "false";
    out += ",\"configs\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const ConfigResult &r = results[i];
        char buf[320];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"name\":\"%s\",\"states\":%llu,"
            "\"transitions\":%llu,\"diameter\":%u,"
            "\"seconds\":%.3f,\"states_per_sec\":%.0f}",
            i ? "," : "", r.name.c_str(),
            (unsigned long long)r.res.states,
            (unsigned long long)r.res.transitions, r.res.diameter,
            r.seconds,
            r.seconds > 0 ? double(r.res.states) / r.seconds : 0.0);
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    std::vector<ConfigResult> results;
    results.push_back(
        runConfig("fullmap_n2", coh::DirScheme::FullMap, 2, 4));
    results.push_back(
        runConfig("limited1_n2", coh::DirScheme::LimitedPtr, 2, 1));
    if (!quick) {
        results.push_back(
            runConfig("fullmap_n3", coh::DirScheme::FullMap, 3, 4));
        results.push_back(runConfig("limited1_n3",
                                    coh::DirScheme::LimitedPtr, 3, 1));
        results.push_back(runConfig("limited2_n3",
                                    coh::DirScheme::LimitedPtr, 3, 2));
    }

    for (const ConfigResult &r : results) {
        std::printf("%-12s %9llu states %10llu transitions "
                    "diameter %2u  %6.2fs  %.0f states/s\n",
                    r.name.c_str(), (unsigned long long)r.res.states,
                    (unsigned long long)r.res.transitions,
                    r.res.diameter, r.seconds,
                    r.seconds > 0 ? double(r.res.states) / r.seconds
                                  : 0.0);
    }
    std::string json = toJson(results, quick);
    std::printf("%s\n", json.c_str());
    std::ofstream("BENCH_mc_states.json") << json << "\n";
    return 0;
}

/**
 * @file
 * Validates the Section 8 analytical model against the full ALEWIFE
 * machine simulator, and doubles as the hardware-task-frame ablation:
 * "The models for the cache and network terms have been validated
 * through simulations."
 *
 * Every node runs p resident threads (p = number of hardware task
 * frames); each thread executes a loop of k useful instructions
 * followed by one remote load that always misses (fresh line on a
 * remote node, trap-on-miss flavor -> context switch). Utilization is
 * measured as useful loop instructions per cycle and compared with
 * Equation 1 evaluated at the machine's parameters (m = 1/k, T from
 * the mesh geometry).
 */

#include <algorithm>
#include <cstdio>

#include "machine/alewife_machine.hh"
#include "model/scalability.hh"

namespace
{

using namespace april;
using namespace april::tagged;

constexpr int kUseful = 48;         ///< useful instructions per miss
constexpr uint32_t kIters = 300;    ///< loop iterations per thread

/**
 * Per-thread loop: kUseful raw adds, then a remote load from a fresh
 * line (stride one line, a different victim node per home region).
 */
Program
buildLoop()
{
    Assembler as;
    as.bind("thread");
    // r20: iteration counter; r21: remote cursor (boxed); r22: result
    as.movi(20, 0);
    // Remote region cursor starts in the NEXT node's memory.
    as.ldio(21, int(IoReg::NodeId));
    as.addiR(21, 21, 1);
    as.ldio(23, int(IoReg::NumNodes));
    as.push({.op = Opcode::REM, .rd = 21, .rs1 = 21, .rs2 = 23});
    as.slliR(21, 21, 19);           // * wordsPerNode (2^19)
    as.slliR(21, 21, 3);
    as.oriR(21, 21, uint8_t(Tag::Other));
    // Skip the victim's node block: + 64KB offset.
    as.addiR(21, 21, wordOff(1 << 14));

    as.bind("loop");
    for (int i = 0; i < kUseful - 4; ++i)
        as.addiR(22, 22, 1);
    as.ldnt(24, 21, 0);             // remote miss -> context switch
    as.addiR(21, 21, wordOff(4));   // next line (never reused)
    as.addiR(20, 20, 1);
    as.cmpiR(20, int32_t(kIters));
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.halt();

    // Switch-spinning context-switch handler (Section 6.1).
    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    return as.finish();
}

/** Measured utilization with p threads per processor. */
double
measure(const Program &prog, uint32_t p)
{
    AlewifeParams params;
    params.network = {.dim = 2, .radix = 4};    // 16 nodes
    params.wordsPerNode = 1u << 19;
    params.bootRuntime = false;
    params.proc.numFrames = std::max(p, 1u);
    params.controller.cache = {.lineWords = 4, .numLines = 1024,
                               .assoc = 4};
    AlewifeMachine m(params, &prog);

    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        Processor &proc = m.proc(n);
        proc.reset(prog.entry("thread"));
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        for (uint32_t f = 1; f < p; ++f) {
            proc.frame(f).trapPC = prog.entry("thread");
            proc.frame(f).trapNPC = prog.entry("thread") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }

    // Run until node 0 finishes its frame-0 thread.
    uint64_t cycles = 0;
    while (!m.proc(0).halted() && cycles < 30'000'000) {
        m.tick();
        ++cycles;
    }

    // Useful work: loop-body instructions completed on node 0.
    double useful = 0;
    for (uint32_t f = 0; f < p; ++f)
        useful += double(m.proc(0).frame(f).regs[22]);
    // One iteration's useful adds, plus the 4 loop-control insts.
    double insts = useful + (useful / (kUseful - 4)) * 4.0;
    return insts / double(cycles);
}

} // namespace

int
main()
{
    Program prog = buildLoop();

    // Model configured to the measured machine: 16-node 2-D mesh.
    model::ModelParams mp;
    mp.netDim = 2;
    mp.netRadix = 4;
    mp.fixedMissRate = 1.0 / kUseful;
    mp.missBeta = 0;                // synthetic threads do not share
    mp.switchOverhead = 11;         // trap-based switch
    model::ScalabilityModel model(mp);

    std::printf("Model-vs-simulation validation (and task-frame "
                "ablation)\n");
    std::printf("16-node machine, 1 remote miss per %d instructions, "
                "T(1) = %.0f cycles, C = 11\n\n",
                kUseful, model.baseLatency());
    std::printf("%8s  %14s  %14s\n", "frames p", "U measured",
                "U model (Eq.1)");
    for (uint32_t p = 1; p <= 4; ++p) {
        double meas = measure(prog, p);
        double pred = model.utilization(p);
        std::printf("%8u  %14.3f  %14.3f\n", p, meas, pred);
    }
    std::printf("\nThe shape must match: large gains from the second "
                "and third resident threads,\ndiminishing returns "
                "after (the paper's \"as few as three resident "
                "threads\").\n");
    return 0;
}

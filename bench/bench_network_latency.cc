/**
 * @file
 * Reproduces the Section 8 network-latency derivation: "the average
 * number of hops between a random pair of nodes is nk/3 = 20, ...
 * [yielding] an average round trip network latency of 55 cycles for
 * an unloaded network, when memory latency and average packet size
 * are taken into account."
 *
 * Three sections:
 *
 *  1. analytic — hop distances over random node pairs on the real
 *     3-D radix-20 mesh simulator (8000 nodes) and the paper's
 *     round-trip derivation;
 *  2. loaded — measured delivery latency of synthetic traffic on a
 *     2-D radix-8 mesh as injection rate saturates the channels;
 *  3. classed — per-message-class latency percentiles and counts
 *     from the network telemetry of a live coherent workload (the
 *     f/e-locked ALEWIFE counter loop on 16 nodes): invalidations,
 *     acks, data replies and the rest each get their own histogram.
 *
 * Writes BENCH_network_latency.json next to the other BENCH_*.json
 * artifacts.
 *
 * Usage: bench_network_latency [--quick]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "machine/alewife_machine.hh"
#include "network/network.hh"
#include "workloads/handwritten.hh"

namespace
{

using namespace april;
using namespace april::net;
using namespace april::tagged;

/** Average hop distance over random pairs. */
double
averageHops(Network &n, int samples, Rng &rng)
{
    double total = 0;
    for (int i = 0; i < samples; ++i) {
        uint32_t a = uint32_t(rng.below(n.numNodes()));
        uint32_t b = uint32_t(rng.below(n.numNodes()));
        total += n.distance(a, b);
    }
    return total / samples;
}

/** Measured delivery latency under a given injection rate. */
double
loadedLatency(double inject_per_node, uint64_t cycles, uint64_t seed)
{
    Network n({.dim = 2, .radix = 8});
    Rng rng(seed);
    for (uint64_t cycle = 0; cycle < cycles; ++cycle) {
        for (uint32_t node = 0; node < n.numNodes(); ++node) {
            if (rng.chance(inject_per_node)) {
                uint32_t dst = uint32_t(rng.below(n.numNodes()));
                Injection inj = n.inject(node, dst, 4, cycle);
                n.recordDelivery(dst, inj.arrive - cycle, inj.hops, 4);
            }
        }
    }
    n.foldStats();
    return n.statLatency.mean();
}

/**
 * Upper bound of the bucket holding the @p q quantile of a log2
 * histogram — conservative ceiling, not an interpolation; the last
 * bucket reports the observed maximum (same rule as april-coh).
 */
uint64_t
histPercentile(const stats::Histogram &h, double q)
{
    if (!h.count())
        return 0;
    uint64_t rank = uint64_t(q * double(h.count()));
    if (rank < 1)
        rank = 1;
    uint64_t cum = 0;
    for (size_t b = 0; b < h.numBuckets(); ++b) {
        cum += h.bucketCount(b);
        if (cum >= rank) {
            if (b == 0)
                return 0;
            if (b + 1 == h.numBuckets())
                return uint64_t(h.max());
            return (uint64_t(1) << b) - 1;
        }
    }
    return uint64_t(h.max());
}

/**
 * Run the 16-node coherent counter loop and leave its telemetry
 * folded for the per-class section.
 */
std::unique_ptr<AlewifeMachine>
runCoherent16(uint32_t iters, const workloads::CoherentLoop **out)
{
    static workloads::CoherentLoop coh;
    coh = workloads::buildCoherentLoop(16, iters);
    *out = &coh;
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 4};                 // 16 nodes
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    auto m = std::make_unique<AlewifeMachine>(p, &coh.prog);
    for (uint32_t n = 0; n < m->numNodes(); ++n)
        workloads::bootCoherentNode(m->proc(n), coh.prog);
    m->memory().write(coh.count, fixnum(0));
    m->run(200'000'000);
    if (!m->halted())
        std::fprintf(stderr, "bench_network_latency: coherent16 did "
                             "not finish\n");
    m->quiesce(1'000'000);
    m->telemetry().foldStats();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    Rng rng(7);
    std::string json = "{\"bench\":\"network_latency\",\"quick\":";
    json += quick ? "true" : "false";

    std::printf("Unloaded latency of the Table 4 network "
                "(n=3, k=20, 8000 nodes)\n\n");
    Network big({.dim = 3, .radix = 20});
    double hops = averageHops(big, quick ? 2000 : 20000, rng);
    std::printf("  measured average hops:     %6.2f  (paper: nk/3 = "
                "20)\n", hops);

    const double mem_latency = 10, packet = 4, controller = 2;
    double round_trip = 2 * hops + (packet - 1) + mem_latency +
                        controller;
    std::printf("  derived round trip:        %6.2f  (2*hops + "
                "(B-1) + mem + ctrl; paper: 55)\n\n", round_trip);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ",\"analytic\":{\"hops\":%.3f,\"round_trip\":%.3f}",
                  hops, round_trip);
    json += buf;

    std::printf("Loaded latency on a 2-D radix-8 mesh (4-flit "
                "packets):\n");
    std::printf("  %-22s %12s\n", "injection/node/cycle", "latency");
    json += ",\"loaded\":[";
    uint64_t load_cycles = quick ? 1000 : 4000;
    bool first = true;
    for (double rate : {0.001, 0.01, 0.03, 0.05, 0.08}) {
        double lat = loadedLatency(rate, load_cycles, 99);
        std::printf("  %-22.3f %12.1f\n", rate, lat);
        std::snprintf(buf, sizeof buf,
                      "%s{\"rate\":%.3f,\"latency\":%.3f}",
                      first ? "" : ",", rate, lat);
        json += buf;
        first = false;
    }
    json += "]";
    std::printf("\nLatency rises steeply as channel utilization "
                "saturates — the bandwidth ceiling that caps\n"
                "multithreaded utilization near 0.80 in Figure 5.\n\n");

    const workloads::CoherentLoop *coh = nullptr;
    auto m = runCoherent16(quick ? 50 : 400, &coh);
    Telemetry &tel = m->telemetry();
    std::printf("Per-class latency on the live 16-node coherent "
                "counter loop (%llu cycles):\n",
                (unsigned long long)m->cycle());
    std::printf("  %-12s %9s %9s %7s %7s %7s %7s\n", "class", "sent",
                "delivered", "mean", "p50", "p90", "p99");
    json += ",\"classes\":[";
    first = true;
    for (size_t c = 0; c < tel.numClasses(); ++c) {
        const stats::Histogram &h = tel.classLatency(c);
        if (!tel.classSent(c) && !h.count())
            continue;
        std::printf("  %-12s %9llu %9llu %7.1f %7llu %7llu %7llu\n",
                    tel.className(c).c_str(),
                    (unsigned long long)tel.classSent(c),
                    (unsigned long long)tel.classDelivered(c),
                    h.mean(),
                    (unsigned long long)histPercentile(h, 0.50),
                    (unsigned long long)histPercentile(h, 0.90),
                    (unsigned long long)histPercentile(h, 0.99));
        std::snprintf(
            buf, sizeof buf,
            "%s{\"name\":\"%s\",\"sent\":%llu,\"delivered\":%llu,"
            "\"flits\":%llu,\"latency\":{\"count\":%llu,"
            "\"mean\":%.3f,\"min\":%lld,\"max\":%lld,\"p50\":%llu,"
            "\"p90\":%llu,\"p99\":%llu}}",
            first ? "" : ",", tel.className(c).c_str(),
            (unsigned long long)tel.classSent(c),
            (unsigned long long)tel.classDelivered(c),
            (unsigned long long)tel.classFlits(c),
            (unsigned long long)h.count(), h.mean(),
            (long long)(h.count() ? h.min() : 0),
            (long long)(h.count() ? h.max() : 0),
            (unsigned long long)histPercentile(h, 0.50),
            (unsigned long long)histPercentile(h, 0.90),
            (unsigned long long)histPercentile(h, 0.99));
        json += buf;
        first = false;
    }
    json += "]}";

    std::ofstream f("BENCH_network_latency.json");
    f << json << "\n";
    std::printf("\nwrote BENCH_network_latency.json\n");
    return 0;
}

/**
 * @file
 * Reproduces the Section 8 network-latency derivation: "the average
 * number of hops between a random pair of nodes is nk/3 = 20, ...
 * [yielding] an average round trip network latency of 55 cycles for
 * an unloaded network, when memory latency and average packet size
 * are taken into account."
 *
 * Measures hop distances over random node pairs on the real 3-D
 * radix-20 mesh simulator (8000 nodes) and reports measured latency
 * of live packets on smaller meshes under light and heavy load.
 */

#include <cstdio>

#include "common/random.hh"
#include "network/network.hh"

namespace
{

using namespace april;
using namespace april::net;

/** Average hop distance over random pairs. */
double
averageHops(Network &n, int samples, Rng &rng)
{
    double total = 0;
    for (int i = 0; i < samples; ++i) {
        uint32_t a = uint32_t(rng.below(n.numNodes()));
        uint32_t b = uint32_t(rng.below(n.numNodes()));
        total += n.distance(a, b);
    }
    return total / samples;
}

/** Measured delivery latency under a given injection rate. */
double
loadedLatency(double inject_per_node, uint64_t seed)
{
    Network n({.dim = 2, .radix = 8});
    Rng rng(seed);
    for (uint64_t cycle = 0; cycle < 4000; ++cycle) {
        for (uint32_t node = 0; node < n.numNodes(); ++node) {
            if (rng.chance(inject_per_node)) {
                uint32_t dst = uint32_t(rng.below(n.numNodes()));
                Injection inj = n.inject(node, dst, 4, cycle);
                n.recordDelivery(dst, inj.arrive - cycle, inj.hops, 4);
            }
        }
    }
    n.foldStats();
    return n.statLatency.mean();
}

} // namespace

int
main()
{
    Rng rng(7);

    std::printf("Unloaded latency of the Table 4 network "
                "(n=3, k=20, 8000 nodes)\n\n");
    Network big({.dim = 3, .radix = 20});
    double hops = averageHops(big, 20000, rng);
    std::printf("  measured average hops:     %6.2f  (paper: nk/3 = "
                "20)\n", hops);

    const double mem_latency = 10, packet = 4, controller = 2;
    double round_trip = 2 * hops + (packet - 1) + mem_latency +
                        controller;
    std::printf("  derived round trip:        %6.2f  (2*hops + "
                "(B-1) + mem + ctrl; paper: 55)\n\n", round_trip);

    std::printf("Loaded latency on a 2-D radix-8 mesh (4-flit "
                "packets):\n");
    std::printf("  %-22s %12s\n", "injection/node/cycle", "latency");
    for (double rate : {0.001, 0.01, 0.03, 0.05, 0.08}) {
        std::printf("  %-22.3f %12.1f\n", rate,
                    loadedLatency(rate, 99));
    }
    std::printf("\nLatency rises steeply as channel utilization "
                "saturates — the bandwidth ceiling that caps\n"
                "multithreaded utilization near 0.80 in Figure 5.\n");
    return 0;
}

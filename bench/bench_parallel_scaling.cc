/**
 * @file
 * Host-side scaling of the parallel execution engine (DESIGN.md
 * §7.6): simulated-cycles/sec at 1..8 host worker threads on two
 * 16-node ALEWIFE workloads, with a correctness digest proving every
 * thread count simulated exactly the same machine.
 *
 *  - alewife_coherent16: the shared f/e-locked counter loop of
 *    bench_sim_speed — coherence traffic keeps every controller and
 *    the network busy, so the quantum barrier is the only serial
 *    part. The scaling gate lives here.
 *  - alewife_stall16: the DIV-heavy lockstep loop — with
 *    cycle-skipping on, most of the run fast-forwards at the barrier,
 *    so this bounds how much the engine can lose when there is
 *    little concurrent work per quantum.
 *
 * Every configuration must produce identical cycle counts,
 * instruction counts and stats dumps (the engine's bit-identical
 * contract); the run fails on any digest mismatch. The throughput
 * gate — >= 3x cycles/sec at 4 threads on alewife_coherent16 with
 * skipping off — only arms when the host actually has 4 or more
 * cores; on smaller hosts the numbers are still reported and the
 * digest check still gates.
 *
 * Writes BENCH_parallel_scaling.json.
 *
 * Usage: bench_parallel_scaling [--quick]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "machine/alewife_machine.hh"

namespace
{

using namespace april;
using namespace tagged;

constexpr Addr kLock = 400;
constexpr Addr kCount = 404;

/** The bench_sim_speed coherent loop: every node hammers one
 *  f/e-locked counter with a DIV per iteration. */
Program
buildCoherentLoop(uint32_t nodes, uint32_t iters)
{
    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kLock, Tag::Other));
    as.movi(2, ptr(kCount, Tag::Other));
    as.movi(3, 0);
    as.movi(7, fixnum(84));
    as.movi(8, fixnum(4));
    as.bind("loop");
    as.div(9, 7, 8);
    as.bind("acq");
    as.ldenw(4, 1, 0);
    as.jRaw(Cond::EMPTY, "acq");
    as.nop();
    as.ldnw(5, 2, 0);
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 2, 0);
    as.stfnw(reg::r0, 1, 0);
    as.addiR(3, 3, 1);
    as.cmpiR(3, int32_t(iters));
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    as.bind("wait");
    as.ldnw(5, 2, 0);
    as.cmpiR(5, int32_t(fixnum(int32_t(nodes * iters))));
    as.jRaw(Cond::NE, "wait");
    as.nop();
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

/** Lockstep DIV loop on every node; node 0 stops the machine. */
Program
buildStallLoop(uint32_t iters)
{
    Assembler as;
    as.bind("worker");
    as.movi(1, Word(iters));
    as.movi(2, fixnum(84));
    as.movi(3, fixnum(4));
    as.bind("loop");
    as.div(4, 2, 3);
    as.subiR(1, 1, 1);
    as.jRaw(Cond::NE, "loop");
    as.nop();
    as.ldio(5, int(IoReg::NodeId));
    as.cmpiR(5, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();
    return as.finish();
}

struct Point
{
    uint32_t threads = 0;
    uint64_t simCycles = 0;
    uint64_t insts = 0;
    double seconds = 0;

    double cyclesPerSec() const { return double(simCycles) / seconds; }
};

struct Workload
{
    std::string name;
    Program prog;
    bool coherent = false;      ///< needs caches + trap vectors
};

std::unique_ptr<AlewifeMachine>
makeMachine(const Workload &w, uint32_t threads, bool skip)
{
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 4};             // 16 nodes
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.hostThreads = threads;
    if (w.coherent)
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
    auto m = std::make_unique<AlewifeMachine>(p, &w.prog);
    for (uint32_t n = 0; n < m->numNodes(); ++n) {
        Processor &proc = m->proc(n);
        proc.reset(w.prog.entry("worker"));
        if (!w.coherent)
            continue;
        proc.setTrapVector(TrapKind::RemoteMiss,
                           w.prog.entry("cswitch"));
        proc.setTrapVector(TrapKind::FeEmpty, w.prog.entry("cswitch"));
        for (uint32_t f = 1; f < proc.numFrames(); ++f) {
            proc.frame(f).trapPC = w.prog.entry("fyield");
            proc.frame(f).trapNPC = w.prog.entry("fyield") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }
    if (w.coherent)
        m->memory().write(kCount, fixnum(0));
    return m;
}

/** One timed run; @p digest receives cycles/insts/stats identity. */
Point
timeRun(const Workload &w, uint32_t threads, bool skip,
        std::string *digest)
{
    auto m = makeMachine(w, threads, skip);
    auto t0 = std::chrono::steady_clock::now();
    m->run(2'000'000'000);
    auto t1 = std::chrono::steady_clock::now();
    if (!m->halted())
        fatal("bench_parallel_scaling: ", w.name, " did not finish");
    Point pt;
    pt.threads = m->hostThreads();
    pt.simCycles = m->cycle();
    for (uint32_t n = 0; n < m->numNodes(); ++n)
        pt.insts += uint64_t(m->proc(n).statInsts.value());
    pt.seconds = std::chrono::duration<double>(t1 - t0).count();
    std::ostringstream os;
    m->dump(os);
    *digest = os.str();
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    QuietScope quiet_scope;

    uint32_t cores = std::thread::hardware_concurrency();
    std::vector<Workload> workloads;
    workloads.push_back({"alewife_coherent16",
                         buildCoherentLoop(16, quick ? 40 : 400),
                         true});
    workloads.push_back({"alewife_stall16",
                         buildStallLoop(quick ? 3'000 : 50'000),
                         false});

    bool ok = true;
    std::string json = "{\"bench\":\"parallel_scaling\",\"quick\":";
    json += quick ? "true" : "false";
    json += ",\"host_cores\":" + std::to_string(cores);
    json += ",\"workloads\":[";

    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const Workload &w = workloads[wi];
        std::printf("%s\n%8s %6s %14s %14s %9s\n", w.name.c_str(),
                    "threads", "skip", "sim cycles", "cyc/s",
                    "scaling");
        json += std::string(wi ? "," : "") + "{\"name\":\"" + w.name +
                "\",\"points\":[";
        bool first_point = true;
        double gate_scaling = 0;
        for (bool skip : {false, true}) {
            std::string ref_digest;
            Point base;
            for (uint32_t threads : {1u, 2u, 4u, 8u}) {
                std::string digest;
                Point pt = timeRun(w, threads, skip, &digest);
                if (threads == 1) {
                    base = pt;
                    ref_digest = digest;
                }
                bool same = pt.simCycles == base.simCycles &&
                            pt.insts == base.insts &&
                            digest == ref_digest;
                if (!same) {
                    std::fprintf(stderr,
                                 "FAIL: %s threads=%u skip=%d diverged "
                                 "from the sequential run\n",
                                 w.name.c_str(), threads, int(skip));
                    ok = false;
                }
                double scaling = base.seconds / pt.seconds;
                if (w.coherent && !skip && threads == 4)
                    gate_scaling = scaling;
                std::printf("%8u %6s %14llu %14.0f %8.2fx\n",
                            pt.threads, skip ? "on" : "off",
                            (unsigned long long)pt.simCycles,
                            pt.cyclesPerSec(), scaling);
                char buf[256];
                std::snprintf(
                    buf, sizeof buf,
                    "%s{\"threads\":%u,\"skip\":%s,"
                    "\"sim_cycles\":%llu,\"insts\":%llu,"
                    "\"seconds\":%.6f,\"cycles_per_sec\":%.0f,"
                    "\"scaling\":%.3f,\"identical\":%s}",
                    first_point ? "" : ",", pt.threads,
                    skip ? "true" : "false",
                    (unsigned long long)pt.simCycles,
                    (unsigned long long)pt.insts, pt.seconds,
                    pt.cyclesPerSec(), scaling,
                    same ? "true" : "false");
                json += buf;
                first_point = false;
            }
        }
        json += "]}";
        std::printf("\n");

        // The throughput gate: 4 threads must be >= 3x sequential on
        // the coherence-bound workload — when the host can run 4
        // workers at all.
        if (w.coherent) {
            if (cores >= 4 && gate_scaling < 3.0) {
                std::fprintf(stderr,
                             "FAIL: %s at 4 threads scales %.2fx < 3x "
                             "on a %u-core host\n",
                             w.name.c_str(), gate_scaling, cores);
                ok = false;
            } else if (cores < 4) {
                std::printf("(scaling gate skipped: host has only %u "
                            "core%s)\n\n",
                            cores, cores == 1 ? "" : "s");
            }
        }
    }
    json += "]}";

    std::printf("%s\n", json.c_str());
    std::ofstream f("BENCH_parallel_scaling.json");
    f << json << "\n";
    return ok ? 0 : 1;
}

/**
 * @file
 * Profiler-overhead benchmark: the observability layer must observe,
 * not perturb.
 *
 * Two fixed workloads (an f/e-locked ALEWIFE counter loop with a DIV
 * stall per iteration, and a future-heavy Mul-T fib through the
 * standard driver), each run with profiling off and on (PC sampling +
 * interval stats snapshots). The gate is twofold:
 *
 *  - bit-identical simulation: cycle counts, instruction counts and
 *    the full statistics dump must match exactly between the two
 *    modes — sampling clamps cycle-skip windows at snapshot
 *    boundaries, which is required to be cycle-exact (§7.5);
 *  - wall-clock overhead of profiling < 10% on the ALEWIFE workload
 *    (min of two reps per mode to damp scheduler noise).
 *
 * Writes BENCH_prof_overhead.json next to BENCH_sim_speed.json.
 *
 * Usage: bench_prof_overhead [--quick]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "profile/report.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;
using namespace tagged;

constexpr Addr kLock = 400;
constexpr Addr kCount = 404;

/** The bench_sim_speed coherent loop: contended f/e lock + DIV. */
Program
buildCoherentLoop(uint32_t nodes, uint32_t iters)
{
    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kLock, Tag::Other));
    as.movi(2, ptr(kCount, Tag::Other));
    as.movi(3, 0);
    as.movi(7, fixnum(84));
    as.movi(8, fixnum(4));
    as.bind("loop");
    as.div(9, 7, 8);
    as.bind("acq");
    as.ldenw(4, 1, 0);
    as.jRaw(Cond::EMPTY, "acq");
    as.nop();
    as.ldnw(5, 2, 0);
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 2, 0);
    as.stfnw(reg::r0, 1, 0);
    as.addiR(3, 3, 1);
    as.cmpiR(3, int32_t(iters));
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    as.bind("wait");
    as.ldnw(5, 2, 0);
    as.cmpiR(5, int32_t(fixnum(int32_t(nodes * iters))));
    as.jRaw(Cond::NE, "wait");
    as.nop();
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

struct Measurement
{
    uint64_t simCycles = 0;
    uint64_t insts = 0;
    std::string stats;
    std::string profile;        ///< writeProfileJson when sampling
    double seconds = 0;
};

struct WorkloadResult
{
    std::string name;
    Measurement off;            ///< profiling disabled
    Measurement on;             ///< PC sampling + interval snapshots
    bool identical = false;

    double overhead() const { return on.seconds / off.seconds - 1.0; }
};

Measurement
runAlewifeOnce(const Program &prog, uint32_t nodes, bool profile,
               uint32_t host_threads = 1)
{
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};                 // 4 nodes
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    p.profile = profile;
    p.profilePeriod = 64;
    p.statsInterval = profile ? 4096 : 0;
    p.hostThreads = host_threads;
    AlewifeMachine m(p, &prog);
    for (uint32_t n = 0; n < nodes; ++n) {
        Processor &proc = m.proc(n);
        proc.reset(prog.entry("worker"));
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        proc.setTrapVector(TrapKind::FeEmpty, prog.entry("cswitch"));
        for (uint32_t f = 1; f < proc.numFrames(); ++f) {
            proc.frame(f).trapPC = prog.entry("fyield");
            proc.frame(f).trapNPC = prog.entry("fyield") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }
    m.memory().write(kCount, fixnum(0));

    auto t0 = std::chrono::steady_clock::now();
    m.run(2'000'000'000);
    auto t1 = std::chrono::steady_clock::now();
    if (!m.halted())
        fatal("bench_prof_overhead: alewife workload did not finish");

    Measurement out;
    out.simCycles = m.cycle();
    for (uint32_t n = 0; n < nodes; ++n)
        out.insts += uint64_t(m.proc(n).statInsts.value());
    std::ostringstream os;
    m.dump(os);
    out.stats = os.str();
    if (profile) {
        std::ostringstream prof;
        profile::writeProfileJson(prof, m.profileSource());
        out.profile = prof.str();
    }
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

Measurement
runDriverOnce(int fib_n, bool profile)
{
    DriverOptions opts = DriverOptions::april(
        mult::CompileOptions::FutureMode::Eager, 8);
    opts.profile = profile;
    opts.statsInterval = profile ? 4096 : 0;
    auto t0 = std::chrono::steady_clock::now();
    DriverResult d = runMultProgram(workloads::fibSource(fib_n), opts);
    auto t1 = std::chrono::steady_clock::now();
    if (d.result != Word(fixnum(int32_t(workloads::fibExpected(fib_n)))))
        fatal("bench_prof_overhead: wrong fib result");
    Measurement out;
    out.simCycles = d.cycles;
    out.insts = d.instructions;
    out.stats = d.statsJson;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

/** Min-of-@p reps wall clock, single sim result (they must agree). */
template <typename RunOnce>
Measurement
best(RunOnce once, int reps)
{
    Measurement m = once();
    for (int i = 1; i < reps; ++i) {
        Measurement again = once();
        if (again.seconds < m.seconds)
            m.seconds = again.seconds;
    }
    return m;
}

std::string
toJson(const std::vector<WorkloadResult> &results, bool quick)
{
    std::string out = "{\"bench\":\"prof_overhead\",\"quick\":";
    out += quick ? "true" : "false";
    out += ",\"workloads\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"%s\",\"identical\":%s,"
                      "\"overhead\":%.4f,\"off_seconds\":%.6f,"
                      "\"on_seconds\":%.6f,\"sim_cycles\":%llu}",
                      i ? "," : "", r.name.c_str(),
                      r.identical ? "true" : "false", r.overhead(),
                      r.off.seconds, r.on.seconds,
                      (unsigned long long)r.on.simCycles);
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    QuietScope quiet_scope;
    int reps = 2;

    uint32_t iters = quick ? 100 : 2'000;
    int fib_n = quick ? 10 : 13;
    Program prog = buildCoherentLoop(4, iters);

    std::vector<WorkloadResult> results;
    {
        WorkloadResult r;
        r.name = "alewife_coherent4";
        r.off = best([&] { return runAlewifeOnce(prog, 4, false); },
                     reps);
        r.on = best([&] { return runAlewifeOnce(prog, 4, true); },
                    reps);
        results.push_back(std::move(r));
    }
    {
        WorkloadResult r;
        r.name = "perfect8_fib";
        r.off = best([&] { return runDriverOnce(fib_n, false); }, reps);
        r.on = best([&] { return runDriverOnce(fib_n, true); }, reps);
        results.push_back(std::move(r));
    }

    bool ok = true;
    std::printf("%-20s %12s %12s %9s %10s\n", "workload", "off (s)",
                "on (s)", "overhead", "identical");
    for (WorkloadResult &r : results) {
        r.identical = r.on.simCycles == r.off.simCycles &&
                      r.on.insts == r.off.insts &&
                      r.on.stats == r.off.stats;
        if (!r.identical) {
            std::fprintf(stderr,
                         "%s: profiling changed the simulation! "
                         "cycles %llu vs %llu, insts %llu vs %llu, "
                         "stats %s\n",
                         r.name.c_str(),
                         (unsigned long long)r.off.simCycles,
                         (unsigned long long)r.on.simCycles,
                         (unsigned long long)r.off.insts,
                         (unsigned long long)r.on.insts,
                         r.on.stats == r.off.stats ? "equal"
                                                   : "DIFFER");
            ok = false;
        }
        std::printf("%-20s %12.4f %12.4f %8.1f%% %10s\n",
                    r.name.c_str(), r.off.seconds, r.on.seconds,
                    100.0 * r.overhead(),
                    r.identical ? "yes" : "NO");
    }

    // Observability composes with the parallel engine: the profiled
    // run sharded over 4 host threads must produce byte-identical
    // profile JSON and stats to the profiled sequential run.
    {
        Measurement seq = runAlewifeOnce(prog, 4, true, 1);
        Measurement par = runAlewifeOnce(prog, 4, true, 4);
        bool same = par.simCycles == seq.simCycles &&
                    par.stats == seq.stats &&
                    par.profile == seq.profile;
        std::printf("%-20s %12s %12s %9s %10s\n",
                    "profiled threads=4", "-", "-", "-",
                    same ? "yes" : "NO");
        if (!same) {
            std::fprintf(stderr,
                         "FAIL: profiled run at 4 host threads "
                         "diverged from sequential (cycles %llu vs "
                         "%llu, stats %s, profile %s)\n",
                         (unsigned long long)seq.simCycles,
                         (unsigned long long)par.simCycles,
                         par.stats == seq.stats ? "equal" : "DIFFER",
                         par.profile == seq.profile ? "equal"
                                                    : "DIFFER");
            ok = false;
        }
    }

    std::string json = toJson(results, quick);
    std::printf("\n%s\n", json.c_str());
    std::ofstream f("BENCH_prof_overhead.json");
    f << json << "\n";

    // Acceptance gate: sampling overhead < 10% on the machine that
    // matters (the ALEWIFE run; the driver run is reported only).
    if (results[0].overhead() >= 0.10) {
        std::fprintf(stderr, "FAIL: profiling overhead %.1f%% >= 10%%\n",
                     100.0 * results[0].overhead());
        ok = false;
    }
    return ok ? 0 : 1;
}

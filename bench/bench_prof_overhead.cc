/**
 * @file
 * Profiler-overhead benchmark: the observability layer must observe,
 * not perturb.
 *
 * Two fixed workloads (an f/e-locked ALEWIFE counter loop with a DIV
 * stall per iteration, and a future-heavy Mul-T fib through the
 * standard driver), each run with profiling off and on (PC sampling +
 * interval stats snapshots). The gate is twofold:
 *
 *  - bit-identical simulation: cycle counts, instruction counts and
 *    the full statistics dump must match exactly between the two
 *    modes — sampling clamps cycle-skip windows at snapshot
 *    boundaries, which is required to be cycle-exact (§7.5);
 *  - wall-clock overhead of profiling < 10% on the ALEWIFE workload
 *    (min of two reps per mode to damp scheduler noise).
 *
 * Writes BENCH_prof_overhead.json next to BENCH_sim_speed.json.
 *
 * Usage: bench_prof_overhead [--quick]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "profile/report.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;
using namespace tagged;

struct Measurement
{
    uint64_t simCycles = 0;
    uint64_t insts = 0;
    std::string stats;
    std::string profile;        ///< writeProfileJson when sampling
    double seconds = 0;
};

struct WorkloadResult
{
    std::string name;
    Measurement off;            ///< profiling disabled
    Measurement on;             ///< PC sampling + interval snapshots
    bool identical = false;

    double overhead() const { return on.seconds / off.seconds - 1.0; }
};

Measurement
runAlewifeOnce(const workloads::CoherentLoop &coh, uint32_t nodes,
               bool profile, uint32_t host_threads = 1,
               bool coh_trace = false, bool task_trace = false)
{
    const Program &prog = coh.prog;
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};                 // 4 nodes
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    p.profile = profile;
    p.profilePeriod = 64;
    p.statsInterval = profile ? 4096 : 0;
    p.hostThreads = host_threads;
    p.cohTrace = coh_trace;
    p.taskTrace = task_trace;
    AlewifeMachine m(p, &prog);
    for (uint32_t n = 0; n < nodes; ++n)
        workloads::bootCoherentNode(m.proc(n), prog);
    m.memory().write(coh.count, fixnum(0));

    auto t0 = std::chrono::steady_clock::now();
    m.run(2'000'000'000);
    auto t1 = std::chrono::steady_clock::now();
    if (!m.halted())
        fatal("bench_prof_overhead: alewife workload did not finish");

    Measurement out;
    out.simCycles = m.cycle();
    for (uint32_t n = 0; n < nodes; ++n)
        out.insts += uint64_t(m.proc(n).statInsts.value());
    std::ostringstream os;
    m.dump(os);
    out.stats = os.str();
    if (profile) {
        std::ostringstream prof;
        profile::writeProfileJson(prof, m.profileSource());
        out.profile = prof.str();
    }
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

Measurement
runDriverOnce(int fib_n, bool profile)
{
    DriverOptions opts = DriverOptions::april(
        mult::CompileOptions::FutureMode::Eager, 8);
    opts.profile = profile;
    opts.statsInterval = profile ? 4096 : 0;
    auto t0 = std::chrono::steady_clock::now();
    DriverResult d = runMultProgram(workloads::fibSource(fib_n), opts);
    auto t1 = std::chrono::steady_clock::now();
    if (d.result != Word(fixnum(int32_t(workloads::fibExpected(fib_n)))))
        fatal("bench_prof_overhead: wrong fib result");
    Measurement out;
    out.simCycles = d.cycles;
    out.insts = d.instructions;
    out.stats = d.statsJson;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

/** Min-of-@p reps wall clock, single sim result (they must agree). */
template <typename RunOnce>
Measurement
best(RunOnce once, int reps)
{
    Measurement m = once();
    for (int i = 1; i < reps; ++i) {
        Measurement again = once();
        if (again.seconds < m.seconds)
            m.seconds = again.seconds;
    }
    return m;
}

std::string
toJson(const std::vector<WorkloadResult> &results, bool quick)
{
    std::string out = "{\"bench\":\"prof_overhead\",\"quick\":";
    out += quick ? "true" : "false";
    out += ",\"workloads\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"%s\",\"identical\":%s,"
                      "\"overhead\":%.4f,\"off_seconds\":%.6f,"
                      "\"on_seconds\":%.6f,\"sim_cycles\":%llu}",
                      i ? "," : "", r.name.c_str(),
                      r.identical ? "true" : "false", r.overhead(),
                      r.off.seconds, r.on.seconds,
                      (unsigned long long)r.on.simCycles);
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    QuietScope quiet_scope;
    int reps = 2;

    uint32_t iters = quick ? 100 : 2'000;
    int fib_n = quick ? 10 : 13;
    workloads::CoherentLoop coh = workloads::buildCoherentLoop(4, iters);

    std::vector<WorkloadResult> results;
    {
        WorkloadResult r;
        r.name = "alewife_coherent4";
        r.off = best([&] { return runAlewifeOnce(coh, 4, false); },
                     reps);
        r.on = best([&] { return runAlewifeOnce(coh, 4, true); },
                    reps);
        results.push_back(std::move(r));
    }
    {
        WorkloadResult r;
        r.name = "perfect8_fib";
        r.off = best([&] { return runDriverOnce(fib_n, false); }, reps);
        r.on = best([&] { return runDriverOnce(fib_n, true); }, reps);
        results.push_back(std::move(r));
    }

    bool ok = true;
    std::printf("%-20s %12s %12s %9s %10s\n", "workload", "off (s)",
                "on (s)", "overhead", "identical");
    for (WorkloadResult &r : results) {
        r.identical = r.on.simCycles == r.off.simCycles &&
                      r.on.insts == r.off.insts &&
                      r.on.stats == r.off.stats;
        if (!r.identical) {
            std::fprintf(stderr,
                         "%s: profiling changed the simulation! "
                         "cycles %llu vs %llu, insts %llu vs %llu, "
                         "stats %s\n",
                         r.name.c_str(),
                         (unsigned long long)r.off.simCycles,
                         (unsigned long long)r.on.simCycles,
                         (unsigned long long)r.off.insts,
                         (unsigned long long)r.on.insts,
                         r.on.stats == r.off.stats ? "equal"
                                                   : "DIFFER");
            ok = false;
        }
        std::printf("%-20s %12.4f %12.4f %8.1f%% %10s\n",
                    r.name.c_str(), r.off.seconds, r.on.seconds,
                    100.0 * r.overhead(),
                    r.identical ? "yes" : "NO");
    }

    // Observability composes with the parallel engine: the profiled
    // run sharded over 4 host threads must produce byte-identical
    // profile JSON and stats to the profiled sequential run.
    {
        Measurement seq = runAlewifeOnce(coh, 4, true, 1);
        Measurement par = runAlewifeOnce(coh, 4, true, 4);
        bool same = par.simCycles == seq.simCycles &&
                    par.stats == seq.stats &&
                    par.profile == seq.profile;
        std::printf("%-20s %12s %12s %9s %10s\n",
                    "profiled threads=4", "-", "-", "-",
                    same ? "yes" : "NO");
        if (!same) {
            std::fprintf(stderr,
                         "FAIL: profiled run at 4 host threads "
                         "diverged from sequential (cycles %llu vs "
                         "%llu, stats %s, profile %s)\n",
                         (unsigned long long)seq.simCycles,
                         (unsigned long long)par.simCycles,
                         par.stats == seq.stats ? "equal" : "DIFFER",
                         par.profile == seq.profile ? "equal"
                                                    : "DIFFER");
            ok = false;
        }
    }

    // Coherence-transaction tracing must observe, not perturb: the
    // same workload with cohTrace on must reproduce the untraced
    // simulation digest exactly.
    {
        Measurement traced = runAlewifeOnce(coh, 4, false, 1, true);
        const Measurement &off = results[0].off;
        bool same = traced.simCycles == off.simCycles &&
                    traced.insts == off.insts &&
                    traced.stats == off.stats;
        std::printf("%-20s %12s %12s %9s %10s\n", "cohTrace on", "-",
                    "-", "-", same ? "yes" : "NO");
        if (!same) {
            std::fprintf(stderr,
                         "FAIL: coherence tracing changed the "
                         "simulation (cycles %llu vs %llu, insts "
                         "%llu vs %llu, stats %s)\n",
                         (unsigned long long)off.simCycles,
                         (unsigned long long)traced.simCycles,
                         (unsigned long long)off.insts,
                         (unsigned long long)traced.insts,
                         traced.stats == off.stats ? "equal"
                                                   : "DIFFER");
            ok = false;
        }
    }

    // Task tracing must also observe, not perturb: the same workload
    // with taskTrace on must reproduce the untraced simulation digest
    // exactly, and the event-recording overhead must stay under the
    // same 10% budget the profiler is held to.
    {
        Measurement traced = best(
            [&] { return runAlewifeOnce(coh, 4, false, 1, false, true); },
            reps);
        const Measurement &off = results[0].off;
        bool same = traced.simCycles == off.simCycles &&
                    traced.insts == off.insts &&
                    traced.stats == off.stats;
        double ovh = traced.seconds / off.seconds - 1.0;
        std::printf("%-20s %12.4f %12.4f %8.1f%% %10s\n",
                    "taskTrace on", off.seconds, traced.seconds,
                    100.0 * ovh, same ? "yes" : "NO");
        if (!same) {
            std::fprintf(stderr,
                         "FAIL: task tracing changed the simulation "
                         "(cycles %llu vs %llu, insts %llu vs %llu, "
                         "stats %s)\n",
                         (unsigned long long)off.simCycles,
                         (unsigned long long)traced.simCycles,
                         (unsigned long long)off.insts,
                         (unsigned long long)traced.insts,
                         traced.stats == off.stats ? "equal"
                                                   : "DIFFER");
            ok = false;
        }
        if (ovh >= 0.10) {
            std::fprintf(stderr,
                         "FAIL: task tracing overhead %.1f%% >= 10%%\n",
                         100.0 * ovh);
            ok = false;
        }
    }

    std::string json = toJson(results, quick);
    std::printf("\n%s\n", json.c_str());
    std::ofstream f("BENCH_prof_overhead.json");
    f << json << "\n";

    // Acceptance gate: sampling overhead < 10% on the machine that
    // matters (the ALEWIFE run; the driver run is reported only).
    if (results[0].overhead() >= 0.10) {
        std::fprintf(stderr, "FAIL: profiling overhead %.1f%% >= 10%%\n",
                     100.0 * results[0].overhead());
        ok = false;
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Simulator-throughput benchmark for the cycle-skipping engine.
 *
 * Three fixed workloads, each run with cycle-skipping on and off:
 *
 *  - alewife_stall16: 16 ALEWIFE nodes in lockstep on a DIV-heavy
 *    compute loop — long windows where every core is stalled, the
 *    best case for fast-forwarding (and the shape of Section 3's
 *    multi-cycle-operation latency).
 *  - alewife_coherent16: 16 nodes hammering an f/e-locked shared
 *    counter with a DIV per iteration — coherence traffic keeps the
 *    controllers and network busy, so skipping only wins the stall
 *    windows between protocol bursts.
 *  - perfect16: a future-heavy Mul-T fib on 16 perfect-memory nodes
 *    through the standard driver.
 *
 * Reports host-side simulated-cycles/sec and instructions/sec for
 * each mode, verifies the runs are cycle-identical, and writes the
 * results as one machine-readable JSON object to stdout and to
 * BENCH_sim_speed.json.
 *
 * Usage: bench_sim_speed [--quick]
 */

#include <chrono>
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <functional>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "machine/alewife_machine.hh"
#include "machine/driver.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;
using namespace tagged;

// ---------------------------------------------------------------------
// Workload programs
// ---------------------------------------------------------------------

/** Lockstep DIV loop on every node; node 0 stops the machine. */
Program
buildStallLoop(uint32_t iters)
{
    Assembler as;
    as.bind("worker");
    as.movi(1, Word(iters));            // raw loop counter
    as.movi(2, fixnum(84));             // DIV operands (future-free)
    as.movi(3, fixnum(4));
    as.bind("loop");
    as.div(4, 2, 3);                    // multi-cycle stall
    as.subiR(1, 1, 1);
    as.jRaw(Cond::NE, "loop");
    as.nop();
    as.ldio(5, int(IoReg::NodeId));
    as.cmpiR(5, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();
    return as.finish();
}


// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

struct Measurement
{
    uint64_t simCycles = 0;
    uint64_t insts = 0;
    double seconds = 0;

    double cyclesPerSec() const { return double(simCycles) / seconds; }
    double instsPerSec() const { return double(insts) / seconds; }
};

struct WorkloadResult
{
    std::string name;
    Measurement on;
    Measurement off;
    bool identical = false;     ///< cycle counts and insts match
};

template <typename MakeMachine>
Measurement
timeAlewife(MakeMachine make, bool skip, uint64_t budget)
{
    auto machine = make(skip);
    auto t0 = std::chrono::steady_clock::now();
    machine->run(budget);
    auto t1 = std::chrono::steady_clock::now();
    if (!machine->halted())
        fatal("bench_sim_speed: workload did not finish in ", budget,
              " cycles");
    Measurement m;
    m.simCycles = machine->cycle();
    for (uint32_t n = 0; n < machine->numNodes(); ++n)
        m.insts += uint64_t(machine->proc(n).statInsts.value());
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    return m;
}

WorkloadResult
runStall16(uint32_t iters)
{
    Program prog = buildStallLoop(iters);
    auto make = [&](bool skip) {
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 4};         // 16 nodes
        p.wordsPerNode = 1u << 16;
        p.bootRuntime = false;
        p.cycleSkip = skip;
        auto m = std::make_unique<AlewifeMachine>(p, &prog);
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            m->proc(n).reset(prog.entry("worker"));
        return m;
    };
    WorkloadResult r;
    r.name = "alewife_stall16";
    r.on = timeAlewife(make, true, 2'000'000'000);
    r.off = timeAlewife(make, false, 2'000'000'000);
    return r;
}

WorkloadResult
runCoherent16(uint32_t iters)
{
    workloads::CoherentLoop coh = workloads::buildCoherentLoop(16, iters);
    const Program &prog = coh.prog;
    auto make = [&](bool skip) {
        AlewifeParams p;
        p.network = {.dim = 2, .radix = 4};         // 16 nodes
        p.wordsPerNode = 1u << 16;
        p.bootRuntime = false;
        p.cycleSkip = skip;
        p.controller.cache = {.lineWords = 4, .numLines = 64,
                              .assoc = 2};
        auto m = std::make_unique<AlewifeMachine>(p, &prog);
        for (uint32_t n = 0; n < m->numNodes(); ++n)
            workloads::bootCoherentNode(m->proc(n), prog);
        m->memory().write(coh.count, fixnum(0));
        return m;
    };
    WorkloadResult r;
    r.name = "alewife_coherent16";
    r.on = timeAlewife(make, true, 2'000'000'000);
    r.off = timeAlewife(make, false, 2'000'000'000);
    return r;
}

WorkloadResult
runPerfect16(int fib_n)
{
    auto once = [&](bool skip) {
        DriverOptions opts = DriverOptions::april(
            mult::CompileOptions::FutureMode::Eager, 16);
        opts.cycleSkip = skip;
        auto t0 = std::chrono::steady_clock::now();
        DriverResult d =
            runMultProgram(workloads::fibSource(fib_n), opts);
        auto t1 = std::chrono::steady_clock::now();
        if (d.result != Word(fixnum(
                int32_t(workloads::fibExpected(fib_n)))))
            fatal("bench_sim_speed: wrong fib result");
        Measurement m;
        m.simCycles = d.cycles;
        m.insts = d.instructions;
        m.seconds = std::chrono::duration<double>(t1 - t0).count();
        return m;
    };
    WorkloadResult r;
    r.name = "perfect16";
    r.on = once(true);
    r.off = once(false);
    return r;
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

std::string
jsonMode(const Measurement &m)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"sim_cycles\":%llu,\"insts\":%llu,"
                  "\"seconds\":%.6f,\"cycles_per_sec\":%.0f,"
                  "\"insts_per_sec\":%.0f}",
                  (unsigned long long)m.simCycles,
                  (unsigned long long)m.insts, m.seconds,
                  m.cyclesPerSec(), m.instsPerSec());
    return buf;
}

std::string
toJson(const std::vector<WorkloadResult> &results, bool quick)
{
    std::string out = "{\"bench\":\"sim_speed\",\"quick\":";
    out += quick ? "true" : "false";
    out += ",\"workloads\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        char head[128];
        std::snprintf(head, sizeof head,
                      "%s{\"name\":\"%s\",\"identical\":%s,"
                      "\"cycles_speedup\":%.2f,",
                      i ? "," : "", r.name.c_str(),
                      r.identical ? "true" : "false",
                      r.off.seconds / r.on.seconds);
        out += head;
        out += "\"skip_on\":" + jsonMode(r.on);
        out += ",\"skip_off\":" + jsonMode(r.off) + "}";
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    QuietScope quiet_scope;

    // Min-of-reps wall clock per mode: quick runs are fractions of a
    // second, where scheduler noise alone swings ratios by +-10%.
    int reps = 3;
    auto bestOf = [&](const std::function<WorkloadResult()> &make) {
        WorkloadResult r = make();
        for (int i = 1; i < reps; ++i) {
            WorkloadResult again = make();
            r.on.seconds = std::min(r.on.seconds, again.on.seconds);
            r.off.seconds = std::min(r.off.seconds, again.off.seconds);
        }
        return r;
    };
    std::vector<std::function<WorkloadResult()>> makers;
    makers.push_back([&] { return runStall16(quick ? 2'000 : 50'000); });
    makers.push_back([&] { return runCoherent16(quick ? 30 : 200); });
    makers.push_back([&] { return runPerfect16(quick ? 10 : 13); });
    std::vector<WorkloadResult> results;
    for (auto &make : makers)
        results.push_back(bestOf(make));

    bool ok = true;
    std::printf("%-20s %14s %14s %14s %9s\n", "workload",
                "cyc/s (skip)", "cyc/s (tick)", "insts/s (skip)",
                "speedup");
    for (WorkloadResult &r : results) {
        r.identical = r.on.simCycles == r.off.simCycles &&
                      r.on.insts == r.off.insts;
        if (!r.identical) {
            std::fprintf(stderr,
                         "%s: cycle-skipping diverged! on=%llu/%llu "
                         "off=%llu/%llu\n",
                         r.name.c_str(),
                         (unsigned long long)r.on.simCycles,
                         (unsigned long long)r.on.insts,
                         (unsigned long long)r.off.simCycles,
                         (unsigned long long)r.off.insts);
            ok = false;
        }
        std::printf("%-20s %14.0f %14.0f %14.0f %8.2fx\n",
                    r.name.c_str(), r.on.cyclesPerSec(),
                    r.off.cyclesPerSec(), r.on.instsPerSec(),
                    r.off.seconds / r.on.seconds);
    }

    std::string json = toJson(results, quick);
    std::printf("\n%s\n", json.c_str());
    std::ofstream f("BENCH_sim_speed.json");
    f << json << "\n";

    // The stall-heavy workload is the acceptance gate: fast-forwarding
    // must at least double simulated-cycles/sec there.
    double gate = results[0].off.seconds / results[0].on.seconds;
    if (gate < 2.0) {
        std::fprintf(stderr,
                     "FAIL: stall-heavy speedup %.2fx < 2x\n", gate);
        ok = false;
    }

    // And skipping must never cost measurable time, even on
    // coherence-bound workloads where few windows are skippable: the
    // per-iteration skip probe has to stay cheap. 2% tolerance in
    // full mode, with one re-measure to ride out host scheduling
    // noise; quick runs are fractions of a second, where min-of-reps
    // wall clocks still jitter by ~15% on a busy host, so the smoke
    // budget is only tight enough to catch a broken probe path.
    double budget = quick ? 0.85 : 0.98;
    for (size_t i = 0; i < results.size(); ++i) {
        double ratio = results[i].off.seconds / results[i].on.seconds;
        if (ratio < budget) {
            WorkloadResult again = bestOf(makers[i]);
            ratio = std::max(ratio,
                             again.off.seconds / again.on.seconds);
        }
        if (ratio < budget) {
            std::fprintf(stderr,
                         "FAIL: %s with skipping on is %.1f%% slower "
                         "than plain ticking (>%.0f%% budget)\n",
                         results[i].name.c_str(), (1 / ratio - 1) * 100,
                         (1 / budget - 1) * 100);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Regenerates Table 2: the eight load flavors, by running each one on
 * a live processor against full and empty words and reporting the
 * observed behavior (reset of the f/e bit, trap on an empty location,
 * trap vs wait on a cache miss).
 */

#include <cstdio>

#include "mem/memory.hh"
#include "proc/fe_semantics.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"

namespace
{

using namespace april;
using namespace april::tagged;

constexpr Addr kSlot = 256;

struct Observed
{
    bool fe_trapped = false;
    bool reset_bit = false;
    const char *miss = "";
};

Observed
probe(int flavor, bool word_full)
{
    bool fe_trap = flavor & 1;
    bool fe_modify = flavor & 2;
    MissPolicy mp = (flavor & 4) ? MissPolicy::Trap : MissPolicy::Wait;

    Assembler as;
    as.bind("main");
    as.movi(1, ptr(kSlot, Tag::Other));
    as.load(2, 1, 0, fe_trap, fe_modify, mp);
    as.halt();
    as.bind("handler");
    as.addiR(reg::g(0), reg::g(0), 1);
    as.rettSkip();
    Program prog = as.finish();

    SharedMemory mem({.numNodes = 1, .wordsPerNode = 1024});
    mem.writeFe(kSlot, fixnum(7), word_full);
    PerfectMemPort port(&mem);
    SimpleIoPort io;
    Processor proc({}, &prog, &port, &io);
    proc.reset(prog.entry("main"));
    proc.setTrapVector(TrapKind::FeEmpty, prog.entry("handler"));
    proc.run(1000);

    Observed o;
    o.fe_trapped = proc.readGlobal(0) != 0;
    o.reset_bit = word_full && !mem.isFull(kSlot);
    o.miss = mp == MissPolicy::Trap ? "Trap" : "Wait";
    return o;
}

} // namespace

int
main()
{
    // Table 2 order and names.
    struct Row { const char *name; int flavor; int type; };
    const Row rows[] = {
        {"ldtt", 0b101, 1},  {"ldett", 0b111, 2},
        {"ldnt", 0b100, 3},  {"ldent", 0b110, 4},
        {"ldnw", 0b000, 5},  {"ldenw", 0b010, 6},
        {"ldtw", 0b001, 7},  {"ldetw", 0b011, 8},
    };

    std::printf("Table 2: Load instructions (observed from live "
                "simulation)\n\n");
    std::printf("%-6s %-5s %-14s %-11s %-14s\n", "Name", "Type",
                "Reset f/e bit", "EL trap", "CM response");
    for (const Row &r : rows) {
        Observed on_empty = probe(r.flavor, false);
        Observed on_full = probe(r.flavor, true);
        std::printf("%-6s %-5d %-14s %-11s %-14s\n", r.name, r.type,
                    on_full.reset_bit ? "Yes" : "No",
                    on_empty.fe_trapped ? "Yes" : "No", on_full.miss);
        if (on_full.fe_trapped)
            std::printf("  !! unexpected trap on a full word\n");
    }
    std::printf("\nStore instructions are duals: they trap on full "
                "locations and may set the bit to full.\n");
    return 0;
}

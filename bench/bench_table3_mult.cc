/**
 * @file
 * Regenerates Table 3: "Execution time for Mul-T benchmarks".
 *
 * Rows: each benchmark (fib, factor, queens, speech) on three
 * systems — the Encore Multimax baseline (software future detection +
 * test&set synchronization), APRIL with normal (eager) task creation,
 * and APRIL with lazy task creation. Columns: "T seq" (optimized
 * sequential code, the normalization basis), "Mul-T seq" (sequential
 * code compiled by the parallel compiler) and parallel runs on
 * 1..16 processors.
 *
 * As in the paper, the parallel columns run the processor simulator
 * without the cache and network simulators (perfect shared memory).
 * The paper's measured values are printed underneath each row for
 * comparison; absolute agreement is not expected (different compiler,
 * different sequential code quality), but the qualitative structure —
 * software-detection overhead near 2x, eager-task overhead an order
 * of magnitude over lazy, parallel scaling of all three systems —
 * must reproduce.
 *
 * Usage: bench_table3_mult [--quick]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "machine/driver.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;
using FM = mult::CompileOptions::FutureMode;

struct PaperRow
{
    // Values from Table 3; -1 marks columns the paper does not report.
    double mult_seq;
    double p1, p2, p4, p8, p16;
};

struct PaperEntry
{
    const char *name;
    PaperRow encore;
    PaperRow april;
    PaperRow lazy;
};

const PaperEntry kPaper[] = {
    {"fib",
     {1.8, 28.9, 16.3, 9.2, 5.1, -1},
     {1.0, 14.2, 7.1, 3.6, 1.8, 0.97},
     {1.0, 1.5, 0.78, 0.44, 0.29, 0.19}},
    {"factor",
     {1.4, 1.9, 0.96, 0.50, 0.26, -1},
     {1.0, 1.8, 0.90, 0.45, 0.23, 0.12},
     {1.0, 1.0, 0.52, 0.26, 0.14, 0.09}},
    {"queens",
     {1.8, 2.1, 1.0, 0.54, 0.31, -1},
     {1.0, 1.4, 0.67, 0.33, 0.18, 0.10},
     {1.0, 1.0, 0.51, 0.26, 0.13, 0.07}},
    {"speech",
     {2.0, 2.3, 1.2, 0.62, 0.36, -1},
     {1.0, 1.2, 0.60, 0.31, 0.17, 0.10},
     {1.0, 1.0, 0.52, 0.27, 0.15, 0.09}},
};

uint64_t
runOne(const workloads::Benchmark &b, const DriverOptions &opts)
{
    DriverResult r = runMultProgram(b.source, opts);
    int64_t got = tagged::toInt(r.result);
    if (got != b.expected) {
        fatal("table3: ", b.name, " returned ", got, ", expected ",
              b.expected);
    }
    return r.cycles;
}

void
printRow(const char *system, double mult_seq,
         const std::vector<double> &vals, const PaperRow &paper)
{
    std::printf("  %-8s  measured: %5.2f |", system, mult_seq);
    for (double v : vals)
        std::printf(" %6.2f", v);
    std::printf("\n");
    std::printf("  %-8s  paper:    %5.2f |", "", paper.mult_seq);
    const double pv[] = {paper.p1, paper.p2, paper.p4, paper.p8,
                         paper.p16};
    for (double v : pv) {
        if (v < 0)
            std::printf("      -");
        else
            std::printf(" %6.2f", v);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    QuietScope quiet_scope;

    workloads::SuiteSizes sizes;
    if (quick) {
        sizes.fibN = 11;
        sizes.factorLo = 500;
        sizes.factorHi = 540;
        sizes.queensN = 6;
        sizes.speechLayers = 6;
        sizes.speechWidth = 6;
    }

    const std::vector<uint32_t> procs = {1, 2, 4, 8, 16};
    const workloads::Benchmark benches[] = {
        workloads::makeFib(sizes), workloads::makeFactor(sizes),
        workloads::makeQueens(sizes), workloads::makeSpeech(sizes)};

    std::printf("Table 3: Execution time for Mul-T benchmarks\n");
    std::printf("(normalized to T running sequential code; columns: "
                "Mul-T seq | 1 2 4 8 16 processors)\n\n");

    for (size_t bi = 0; bi < 4; ++bi) {
        const auto &b = benches[bi];
        const auto &paper = kPaper[bi];

        // The normalization basis: optimized sequential code on one
        // APRIL processor with futures compiled away.
        uint64_t t_seq =
            runOne(b, DriverOptions::april(FM::Erase, 1));

        std::printf("%s  (T seq = %llu cycles)\n", b.name.c_str(),
                    (unsigned long long)t_seq);

        // Encore: sequential with checks, then eager futures.
        {
            uint64_t seq =
                runOne(b, DriverOptions::encore(FM::Erase, 1));
            std::vector<double> vals;
            for (uint32_t p : procs) {
                if (p > 8)
                    break;      // the paper reports Encore up to 8
                uint64_t c =
                    runOne(b, DriverOptions::encore(FM::Eager, p));
                vals.push_back(double(c) / double(t_seq));
            }
            printRow("Encore", double(seq) / double(t_seq), vals,
                     paper.encore);
        }

        // APRIL with normal (eager) task creation. "Mul-T seq" on
        // APRIL equals "T seq": tag hardware makes checks free.
        {
            uint64_t seq = runOne(b, DriverOptions::april(FM::Erase, 1));
            std::vector<double> vals;
            for (uint32_t p : procs) {
                uint64_t c =
                    runOne(b, DriverOptions::april(FM::Eager, p));
                vals.push_back(double(c) / double(t_seq));
            }
            printRow("APRIL", double(seq) / double(t_seq), vals,
                     paper.april);
        }

        // APRIL with lazy task creation.
        {
            std::vector<double> vals;
            for (uint32_t p : procs) {
                uint64_t c =
                    runOne(b, DriverOptions::april(FM::Lazy, p));
                vals.push_back(double(c) / double(t_seq));
            }
            printRow("Apr-lazy", 1.0, vals, paper.lazy);
        }
        std::printf("\n");
    }
    return 0;
}

/**
 * @file
 * Latency-tolerance bench (EXPERIMENTS.md X11): APRIL's thesis is
 * that multiple hardware task frames let a node overlap useful work
 * with a remote access or an unresolved future. The task plane
 * quantifies that as a tolerance score
 *
 *     score = min(1, max(criticalPath, totalWork/P) / T_actual)
 *
 * (1.0 = every stall cycle was hidden behind useful work).
 *
 * Methodology — two choices matter, both diagnosed with the task
 * plane itself (DESIGN.md 7.10):
 *
 *  1. The sweep runs the switch-spinning future-touch policy
 *     (RuntimeOptions::spinTouch) on a mesh with 8-cycle hops.
 *     Under the default unload-blocking policy the *software*
 *     already tolerates nearly all latency at one frame — a blocked
 *     task costs only its unload/reload, so extra frames have
 *     nothing left to hide. Switch-spinning is the regime the
 *     paper's frame count addresses: a waiting task occupies its
 *     frame, and only the other frames can cover the wait.
 *
 *  2. Scores are normalized to a per-workload *common* lower bound,
 *     the max of the per-run bounds across the sweep. Lazy task
 *     creation realizes a different future DAG under every schedule
 *     (more steals => more, shallower tasks), so the per-run bound
 *     is schedule-dependent and per-run scores are not comparable:
 *     speech at 4 frames runs 8% faster than at 1 frame while its
 *     realized bound collapses to a third. Against the common bound
 *     the score is monotone in actual time, which is what a frames
 *     sweep must compare.
 *
 * Both pathologies the sweep first exposed are now fixed in the
 * runtime (yielding exponential backoff on fruitless steal rounds;
 * demand-driven stealing gated on nb::busyFrames), and this bench is
 * the regression fence for them.
 *
 * Gate (full mode): the suite-level score — the summed common
 * bounds over the summed actual cycles — improves monotonically
 * across frames 1 -> 2 -> 4 over the four Table-3 workloads: every
 * step must be non-decreasing within a 3% relative tolerance (lazy
 * task creation realizes a different DAG per schedule, so any single
 * intermediate point carries a few percent of schedule noise), and
 * the full 1 -> 4 sweep must improve strictly by at least 2%.
 * Per-workload scores are reported (and written to
 * BENCH_task_tolerance.json) but not individually gated: fib and
 * queens are compute-local after a steal and have little latency to
 * tolerate, so their scores stay roughly flat by design.
 *
 * Quick mode shrinks the workloads and only checks score validity;
 * the monotonicity margins are only established at full size.
 *
 * Usage: bench_task_tolerance [--quick | --scan]
 *   --scan prints a config x workload x frames survey (no gate),
 *   the knob used to diagnose the scheduler pathologies above.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "runtime/runtime.hh"
#include "task/task_trace.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace april;

struct Point
{
    uint32_t frames = 0;
    uint64_t cycles = 0;
    double rawScore = 0;    ///< against this run's realized DAG
    double normScore = 0;   ///< against the sweep's common bound
    double lowerBound = 0;
    uint64_t exposed = 0;
    uint64_t switches = 0;
};

struct Sweep
{
    std::string name;
    std::vector<Point> points;
    double commonBound = 0;
};

Point
runOnce(const std::string &source, uint32_t frames, bool lazy = true,
        int radix = 2, uint32_t lines = 4096, uint32_t assoc = 4,
        uint32_t hop = 8, uint32_t mem = 10, bool spin_touch = true)
{
    Assembler as;
    rt::Runtime runtime({.spinTouch = spin_touch});
    runtime.emit(as);
    mult::CompileOptions copts;
    copts.futures = lazy ? mult::CompileOptions::FutureMode::Lazy
                         : mult::CompileOptions::FutureMode::Eager;
    mult::Compiler compiler(as, copts);
    compiler.compileSource(source);
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = radix, .hopCycles = hop};
    p.controller.cache = {.lineWords = 4, .numLines = lines,
                          .assoc = assoc};
    p.controller.memLatency = mem;
    p.proc.numFrames = frames;
    p.taskTrace = true;
    AlewifeMachine m(p, &prog);
    m.run(400'000'000);
    if (!m.halted())
        fatal("bench_task_tolerance: workload did not halt");

    task::AnalyzeParams ap;
    ap.numNodes = m.numNodes();
    ap.totalCycles = m.cycle();
    task::Report r = task::analyze(m.taskTracer()->events(), ap);

    Point pt;
    pt.frames = frames;
    pt.cycles = m.cycle();
    pt.rawScore = r.score;
    pt.lowerBound = r.lowerBound;
    pt.exposed = r.exposed;
    pt.switches = r.switches;
    return pt;
}

std::string
toJson(const std::vector<Sweep> &sweeps,
       const std::vector<std::pair<uint32_t, double>> &suite, bool quick)
{
    std::string out = "{\"bench\":\"task_tolerance\",\"quick\":";
    out += quick ? "true" : "false";
    out += ",\"workloads\":[";
    for (size_t i = 0; i < sweeps.size(); ++i) {
        out += i ? "," : "";
        char head[96];
        std::snprintf(head, sizeof head,
                      "{\"name\":\"%s\",\"commonBound\":%.1f,"
                      "\"points\":[",
                      sweeps[i].name.c_str(), sweeps[i].commonBound);
        out += head;
        for (size_t j = 0; j < sweeps[i].points.size(); ++j) {
            const Point &pt = sweeps[i].points[j];
            char buf[224];
            std::snprintf(buf, sizeof buf,
                          "%s{\"frames\":%u,\"cycles\":%llu,"
                          "\"score\":%.4f,\"rawScore\":%.4f,"
                          "\"exposed\":%llu,\"switches\":%llu}",
                          j ? "," : "", pt.frames,
                          (unsigned long long)pt.cycles, pt.normScore,
                          pt.rawScore, (unsigned long long)pt.exposed,
                          (unsigned long long)pt.switches);
            out += buf;
        }
        out += "]}";
    }
    out += "],\"suite\":[";
    for (size_t i = 0; i < suite.size(); ++i) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s{\"frames\":%u,\"score\":%.4f}",
                      i ? "," : "", suite[i].first, suite[i].second);
        out += buf;
    }
    out += "]}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    QuietScope quiet_scope;

    if (argc > 1 && std::strcmp(argv[1], "--scan") == 0) {
        struct Cfg { const char *tag; bool lazy; int radix;
                     uint32_t lines, assoc, hop, mem; };
        const Cfg cfgs[] = {
            {"lazy 2x2", true, 2, 4096, 4, 1, 10},
            {"lazy 2x2 hop8", true, 2, 4096, 4, 8, 10},
        };
        struct WSpec { const char *name; std::string src; };
        const WSpec ws[] = {
            {"fib:12", workloads::fibSource(12)},
            {"factor", workloads::factorSource(1000, 1040)},
            {"queens:6", workloads::queensSource(6)},
            {"speech", workloads::speechSource(8, 12)},
        };
        for (const Cfg &c : cfgs)
            for (const WSpec &w : ws) {
                std::printf("%-16s %-9s:", c.tag, w.name);
                for (uint32_t f : {1u, 2u, 4u}) {
                    Point pt = runOnce(w.src, f, c.lazy, c.radix,
                                       c.lines, c.assoc, c.hop, c.mem);
                    std::printf("  f%u %.4f (%llu cyc)", f, pt.rawScore,
                                (unsigned long long)pt.cycles);
                }
                std::printf("\n");
                std::fflush(stdout);
            }
        return 0;
    }

    struct Spec { const char *name; std::string source; };
    std::vector<Spec> specs = {
        {"fib", workloads::fibSource(quick ? 10 : 12)},
        {"factor", workloads::factorSource(1000, quick ? 1016 : 1040)},
        {"queens", workloads::queensSource(quick ? 5 : 6)},
        {"speech", workloads::speechSource(quick ? 4 : 8,
                                           quick ? 8 : 12)},
    };
    std::vector<uint32_t> kFrames =
        quick ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 2, 4};

    bool ok = true;
    std::vector<Sweep> sweeps;
    std::printf("%-10s %7s %12s %8s %8s %12s %10s\n", "workload",
                "frames", "cycles", "score", "raw", "exposed",
                "switches");
    for (const Spec &s : specs) {
        Sweep sw;
        sw.name = s.name;
        for (uint32_t f : kFrames) {
            Point pt = runOnce(s.source, f);
            if (pt.rawScore <= 0 || pt.rawScore > 1) {
                std::fprintf(stderr,
                             "FAIL: %s f%u score %.4f out of (0,1]\n",
                             s.name, f, pt.rawScore);
                ok = false;
            }
            if (pt.lowerBound > sw.commonBound)
                sw.commonBound = pt.lowerBound;
            sw.points.push_back(pt);
        }
        for (Point &pt : sw.points) {
            pt.normScore = sw.commonBound / double(pt.cycles);
            if (pt.normScore > 1)
                pt.normScore = 1;
            std::printf("%-10s %7u %12llu %8.4f %8.4f %12llu %10llu\n",
                        sw.name.c_str(), pt.frames,
                        (unsigned long long)pt.cycles, pt.normScore,
                        pt.rawScore, (unsigned long long)pt.exposed,
                        (unsigned long long)pt.switches);
        }
        sweeps.push_back(std::move(sw));
    }

    // Suite-level score per frame count: total common bound over total
    // actual cycles across the four workloads.
    std::vector<std::pair<uint32_t, double>> suite;
    for (size_t j = 0; j < kFrames.size(); ++j) {
        double bound = 0, actual = 0;
        for (const Sweep &sw : sweeps) {
            bound += sw.commonBound;
            actual += double(sw.points[j].cycles);
        }
        double sc = bound / actual;
        if (sc > 1)
            sc = 1;
        suite.emplace_back(kFrames[j], sc);
        std::printf("%-10s %7u %12.0f %8.4f\n", "suite", kFrames[j],
                    actual, sc);
    }
    if (!quick) {
        // Each step: non-decreasing within schedule noise (lazy task
        // creation realizes a different DAG per schedule; a single
        // intermediate point can dip a couple of percent).
        for (size_t j = 1; j < suite.size(); ++j) {
            if (suite[j].second < suite[j - 1].second * 0.97) {
                std::fprintf(stderr,
                             "FAIL: suite score regressed from "
                             "%u to %u frames (%.4f -> %.4f)\n",
                             suite[j - 1].first, suite[j].first,
                             suite[j - 1].second, suite[j].second);
                ok = false;
            }
        }
        // End to end: the frames sweep must buy real tolerance.
        if (suite.back().second < suite.front().second * 1.02) {
            std::fprintf(stderr,
                         "FAIL: suite score did not improve from %u "
                         "to %u frames (%.4f -> %.4f, need >= +2%%)\n",
                         suite.front().first, suite.back().first,
                         suite.front().second, suite.back().second);
            ok = false;
        }
    }

    std::string json = toJson(sweeps, suite, quick);
    std::printf("\n%s\n", json.c_str());
    std::ofstream f("BENCH_task_tolerance.json");
    f << json << "\n";
    return ok ? 0 : 1;
}

# Empty dependencies file for bench_ablation_cache.
# This may be replaced when dependencies are built.

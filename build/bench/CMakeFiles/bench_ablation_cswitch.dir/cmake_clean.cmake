file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cswitch.dir/bench_ablation_cswitch.cc.o"
  "CMakeFiles/bench_ablation_cswitch.dir/bench_ablation_cswitch.cc.o.d"
  "bench_ablation_cswitch"
  "bench_ablation_cswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_cswitch.
# This may be replaced when dependencies are built.

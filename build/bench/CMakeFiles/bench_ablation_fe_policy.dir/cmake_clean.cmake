file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fe_policy.dir/bench_ablation_fe_policy.cc.o"
  "CMakeFiles/bench_ablation_fe_policy.dir/bench_ablation_fe_policy.cc.o.d"
  "bench_ablation_fe_policy"
  "bench_ablation_fe_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fe_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

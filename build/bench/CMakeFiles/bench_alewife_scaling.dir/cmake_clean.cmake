file(REMOVE_RECURSE
  "CMakeFiles/bench_alewife_scaling.dir/bench_alewife_scaling.cc.o"
  "CMakeFiles/bench_alewife_scaling.dir/bench_alewife_scaling.cc.o.d"
  "bench_alewife_scaling"
  "bench_alewife_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alewife_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_alewife_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_context_switch.dir/bench_context_switch.cc.o"
  "CMakeFiles/bench_context_switch.dir/bench_context_switch.cc.o.d"
  "bench_context_switch"
  "bench_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

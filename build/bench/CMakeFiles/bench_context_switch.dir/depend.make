# Empty dependencies file for bench_context_switch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_utilization.dir/bench_fig5_utilization.cc.o"
  "CMakeFiles/bench_fig5_utilization.dir/bench_fig5_utilization.cc.o.d"
  "bench_fig5_utilization"
  "bench_fig5_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

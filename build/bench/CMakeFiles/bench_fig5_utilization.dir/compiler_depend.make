# Empty compiler generated dependencies file for bench_fig5_utilization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_future_touch.dir/bench_future_touch.cc.o"
  "CMakeFiles/bench_future_touch.dir/bench_future_touch.cc.o.d"
  "bench_future_touch"
  "bench_future_touch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_touch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

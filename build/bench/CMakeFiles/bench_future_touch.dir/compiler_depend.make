# Empty compiler generated dependencies file for bench_future_touch.
# This may be replaced when dependencies are built.

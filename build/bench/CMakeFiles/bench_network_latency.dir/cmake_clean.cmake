file(REMOVE_RECURSE
  "CMakeFiles/bench_network_latency.dir/bench_network_latency.cc.o"
  "CMakeFiles/bench_network_latency.dir/bench_network_latency.cc.o.d"
  "bench_network_latency"
  "bench_network_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_network_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_loads.dir/bench_table2_loads.cc.o"
  "CMakeFiles/bench_table2_loads.dir/bench_table2_loads.cc.o.d"
  "bench_table2_loads"
  "bench_table2_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mult.dir/bench_table3_mult.cc.o"
  "CMakeFiles/bench_table3_mult.dir/bench_table3_mult.cc.o.d"
  "bench_table3_mult"
  "bench_table3_mult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

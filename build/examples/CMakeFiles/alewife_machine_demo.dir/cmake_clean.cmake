file(REMOVE_RECURSE
  "CMakeFiles/alewife_machine_demo.dir/alewife_machine_demo.cpp.o"
  "CMakeFiles/alewife_machine_demo.dir/alewife_machine_demo.cpp.o.d"
  "alewife_machine_demo"
  "alewife_machine_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alewife_machine_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

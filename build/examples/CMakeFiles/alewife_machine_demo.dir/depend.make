# Empty dependencies file for alewife_machine_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fine_grain_sync.dir/fine_grain_sync.cpp.o"
  "CMakeFiles/fine_grain_sync.dir/fine_grain_sync.cpp.o.d"
  "fine_grain_sync"
  "fine_grain_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fine_grain_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fine_grain_sync.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/futures_fib.dir/futures_fib.cpp.o"
  "CMakeFiles/futures_fib.dir/futures_fib.cpp.o.d"
  "futures_fib"
  "futures_fib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futures_fib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for futures_fib.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scalability_model.dir/scalability_model.cpp.o"
  "CMakeFiles/scalability_model.dir/scalability_model.cpp.o.d"
  "scalability_model"
  "scalability_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scalability_model.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("mem")
subdirs("cache")
subdirs("network")
subdirs("coherence")
subdirs("proc")
subdirs("runtime")
subdirs("mult")
subdirs("machine")
subdirs("model")
subdirs("workloads")

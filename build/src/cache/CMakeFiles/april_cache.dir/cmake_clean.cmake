file(REMOVE_RECURSE
  "CMakeFiles/april_cache.dir/cache.cc.o"
  "CMakeFiles/april_cache.dir/cache.cc.o.d"
  "libapril_cache.a"
  "libapril_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libapril_cache.a"
)

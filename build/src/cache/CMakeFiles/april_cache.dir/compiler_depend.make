# Empty compiler generated dependencies file for april_cache.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/april_coherence.dir/controller.cc.o"
  "CMakeFiles/april_coherence.dir/controller.cc.o.d"
  "libapril_coherence.a"
  "libapril_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libapril_coherence.a"
)

# Empty compiler generated dependencies file for april_coherence.
# This may be replaced when dependencies are built.

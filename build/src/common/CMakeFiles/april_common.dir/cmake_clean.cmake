file(REMOVE_RECURSE
  "CMakeFiles/april_common.dir/logging.cc.o"
  "CMakeFiles/april_common.dir/logging.cc.o.d"
  "CMakeFiles/april_common.dir/stats.cc.o"
  "CMakeFiles/april_common.dir/stats.cc.o.d"
  "libapril_common.a"
  "libapril_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libapril_common.a"
)

# Empty dependencies file for april_common.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/april_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/april_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/april_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/april_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/types.cc" "src/isa/CMakeFiles/april_isa.dir/types.cc.o" "gcc" "src/isa/CMakeFiles/april_isa.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/april_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/april_isa.dir/assembler.cc.o"
  "CMakeFiles/april_isa.dir/assembler.cc.o.d"
  "CMakeFiles/april_isa.dir/instruction.cc.o"
  "CMakeFiles/april_isa.dir/instruction.cc.o.d"
  "CMakeFiles/april_isa.dir/types.cc.o"
  "CMakeFiles/april_isa.dir/types.cc.o.d"
  "libapril_isa.a"
  "libapril_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

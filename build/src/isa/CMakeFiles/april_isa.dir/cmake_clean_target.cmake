file(REMOVE_RECURSE
  "libapril_isa.a"
)

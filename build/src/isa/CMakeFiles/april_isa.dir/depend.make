# Empty dependencies file for april_isa.
# This may be replaced when dependencies are built.

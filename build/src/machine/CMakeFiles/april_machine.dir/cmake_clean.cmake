file(REMOVE_RECURSE
  "CMakeFiles/april_machine.dir/alewife_machine.cc.o"
  "CMakeFiles/april_machine.dir/alewife_machine.cc.o.d"
  "CMakeFiles/april_machine.dir/driver.cc.o"
  "CMakeFiles/april_machine.dir/driver.cc.o.d"
  "CMakeFiles/april_machine.dir/perfect_machine.cc.o"
  "CMakeFiles/april_machine.dir/perfect_machine.cc.o.d"
  "libapril_machine.a"
  "libapril_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libapril_machine.a"
)

# Empty dependencies file for april_machine.
# This may be replaced when dependencies are built.

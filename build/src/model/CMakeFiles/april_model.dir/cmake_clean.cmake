file(REMOVE_RECURSE
  "CMakeFiles/april_model.dir/scalability.cc.o"
  "CMakeFiles/april_model.dir/scalability.cc.o.d"
  "libapril_model.a"
  "libapril_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

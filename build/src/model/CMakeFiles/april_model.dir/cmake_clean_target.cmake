file(REMOVE_RECURSE
  "libapril_model.a"
)

# Empty compiler generated dependencies file for april_model.
# This may be replaced when dependencies are built.

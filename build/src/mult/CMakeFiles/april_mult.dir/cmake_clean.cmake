file(REMOVE_RECURSE
  "CMakeFiles/april_mult.dir/compiler.cc.o"
  "CMakeFiles/april_mult.dir/compiler.cc.o.d"
  "CMakeFiles/april_mult.dir/sexp.cc.o"
  "CMakeFiles/april_mult.dir/sexp.cc.o.d"
  "libapril_mult.a"
  "libapril_mult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_mult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

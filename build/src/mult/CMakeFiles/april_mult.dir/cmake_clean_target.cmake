file(REMOVE_RECURSE
  "libapril_mult.a"
)

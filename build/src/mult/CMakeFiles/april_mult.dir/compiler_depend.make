# Empty compiler generated dependencies file for april_mult.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/april_network.dir/network.cc.o"
  "CMakeFiles/april_network.dir/network.cc.o.d"
  "libapril_network.a"
  "libapril_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libapril_network.a"
)

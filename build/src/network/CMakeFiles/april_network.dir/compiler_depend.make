# Empty compiler generated dependencies file for april_network.
# This may be replaced when dependencies are built.

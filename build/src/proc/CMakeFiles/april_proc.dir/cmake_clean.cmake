file(REMOVE_RECURSE
  "CMakeFiles/april_proc.dir/processor.cc.o"
  "CMakeFiles/april_proc.dir/processor.cc.o.d"
  "libapril_proc.a"
  "libapril_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

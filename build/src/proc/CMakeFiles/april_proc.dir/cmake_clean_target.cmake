file(REMOVE_RECURSE
  "libapril_proc.a"
)

# Empty compiler generated dependencies file for april_proc.
# This may be replaced when dependencies are built.

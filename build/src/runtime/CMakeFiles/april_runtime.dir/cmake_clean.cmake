file(REMOVE_RECURSE
  "CMakeFiles/april_runtime.dir/runtime.cc.o"
  "CMakeFiles/april_runtime.dir/runtime.cc.o.d"
  "libapril_runtime.a"
  "libapril_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

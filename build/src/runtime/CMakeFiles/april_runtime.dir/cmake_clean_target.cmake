file(REMOVE_RECURSE
  "libapril_runtime.a"
)

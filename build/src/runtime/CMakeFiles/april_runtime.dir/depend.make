# Empty dependencies file for april_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/april_workloads.dir/workloads.cc.o"
  "CMakeFiles/april_workloads.dir/workloads.cc.o.d"
  "libapril_workloads.a"
  "libapril_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/april_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libapril_workloads.a"
)

# Empty compiler generated dependencies file for april_workloads.
# This may be replaced when dependencies are built.

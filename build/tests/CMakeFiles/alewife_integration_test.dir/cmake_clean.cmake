file(REMOVE_RECURSE
  "CMakeFiles/alewife_integration_test.dir/alewife_integration_test.cc.o"
  "CMakeFiles/alewife_integration_test.dir/alewife_integration_test.cc.o.d"
  "alewife_integration_test"
  "alewife_integration_test.pdb"
  "alewife_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alewife_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for alewife_integration_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coherence_stress_test.dir/coherence_stress_test.cc.o"
  "CMakeFiles/coherence_stress_test.dir/coherence_stress_test.cc.o.d"
  "coherence_stress_test"
  "coherence_stress_test.pdb"
  "coherence_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

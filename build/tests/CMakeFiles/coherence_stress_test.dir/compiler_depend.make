# Empty compiler generated dependencies file for coherence_stress_test.
# This may be replaced when dependencies are built.

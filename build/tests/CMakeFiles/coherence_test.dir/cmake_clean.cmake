file(REMOVE_RECURSE
  "CMakeFiles/coherence_test.dir/coherence_test.cc.o"
  "CMakeFiles/coherence_test.dir/coherence_test.cc.o.d"
  "coherence_test"
  "coherence_test.pdb"
  "coherence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/common_bits_test.dir/common_bits_test.cc.o"
  "CMakeFiles/common_bits_test.dir/common_bits_test.cc.o.d"
  "common_bits_test"
  "common_bits_test.pdb"
  "common_bits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

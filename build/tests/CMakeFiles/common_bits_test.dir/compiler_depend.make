# Empty compiler generated dependencies file for common_bits_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/future_on_test.dir/future_on_test.cc.o"
  "CMakeFiles/future_on_test.dir/future_on_test.cc.o.d"
  "future_on_test"
  "future_on_test.pdb"
  "future_on_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_on_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

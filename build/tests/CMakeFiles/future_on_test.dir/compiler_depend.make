# Empty compiler generated dependencies file for future_on_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hardware_switch_test.dir/hardware_switch_test.cc.o"
  "CMakeFiles/hardware_switch_test.dir/hardware_switch_test.cc.o.d"
  "hardware_switch_test"
  "hardware_switch_test.pdb"
  "hardware_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

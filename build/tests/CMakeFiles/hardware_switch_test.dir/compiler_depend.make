# Empty compiler generated dependencies file for hardware_switch_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/isa_assembler_test.dir/isa_assembler_test.cc.o"
  "CMakeFiles/isa_assembler_test.dir/isa_assembler_test.cc.o.d"
  "isa_assembler_test"
  "isa_assembler_test.pdb"
  "isa_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

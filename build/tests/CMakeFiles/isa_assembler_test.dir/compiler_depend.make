# Empty compiler generated dependencies file for isa_assembler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/isa_disasm_test.dir/isa_disasm_test.cc.o"
  "CMakeFiles/isa_disasm_test.dir/isa_disasm_test.cc.o.d"
  "isa_disasm_test"
  "isa_disasm_test.pdb"
  "isa_disasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for isa_disasm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/isa_tags_test.dir/isa_tags_test.cc.o"
  "CMakeFiles/isa_tags_test.dir/isa_tags_test.cc.o.d"
  "isa_tags_test"
  "isa_tags_test.pdb"
  "isa_tags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_tags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

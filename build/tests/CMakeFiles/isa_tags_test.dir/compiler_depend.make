# Empty compiler generated dependencies file for isa_tags_test.
# This may be replaced when dependencies are built.

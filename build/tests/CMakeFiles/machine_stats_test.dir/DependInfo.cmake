
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/machine_stats_test.cc" "tests/CMakeFiles/machine_stats_test.dir/machine_stats_test.cc.o" "gcc" "tests/CMakeFiles/machine_stats_test.dir/machine_stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/april_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/april_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mult/CMakeFiles/april_mult.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/april_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/april_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/april_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/april_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/april_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/april_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/april_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/machine_stats_test.dir/machine_stats_test.cc.o"
  "CMakeFiles/machine_stats_test.dir/machine_stats_test.cc.o.d"
  "machine_stats_test"
  "machine_stats_test.pdb"
  "machine_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

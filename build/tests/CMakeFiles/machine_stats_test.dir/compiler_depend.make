# Empty compiler generated dependencies file for machine_stats_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_memory_test.dir/mem_memory_test.cc.o"
  "CMakeFiles/mem_memory_test.dir/mem_memory_test.cc.o.d"
  "mem_memory_test"
  "mem_memory_test.pdb"
  "mem_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

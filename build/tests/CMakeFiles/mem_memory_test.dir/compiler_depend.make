# Empty compiler generated dependencies file for mem_memory_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for message_passing_test.
# This may be replaced when dependencies are built.

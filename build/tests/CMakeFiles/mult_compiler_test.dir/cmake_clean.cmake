file(REMOVE_RECURSE
  "CMakeFiles/mult_compiler_test.dir/mult_compiler_test.cc.o"
  "CMakeFiles/mult_compiler_test.dir/mult_compiler_test.cc.o.d"
  "mult_compiler_test"
  "mult_compiler_test.pdb"
  "mult_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mult_compiler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mult_differential_test.dir/mult_differential_test.cc.o"
  "CMakeFiles/mult_differential_test.dir/mult_differential_test.cc.o.d"
  "mult_differential_test"
  "mult_differential_test.pdb"
  "mult_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

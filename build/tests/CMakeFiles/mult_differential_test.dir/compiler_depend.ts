# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mult_differential_test.

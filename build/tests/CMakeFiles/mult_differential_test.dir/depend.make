# Empty dependencies file for mult_differential_test.
# This may be replaced when dependencies are built.

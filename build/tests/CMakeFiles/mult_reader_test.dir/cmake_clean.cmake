file(REMOVE_RECURSE
  "CMakeFiles/mult_reader_test.dir/mult_reader_test.cc.o"
  "CMakeFiles/mult_reader_test.dir/mult_reader_test.cc.o.d"
  "mult_reader_test"
  "mult_reader_test.pdb"
  "mult_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mult_reader_test.
# This may be replaced when dependencies are built.

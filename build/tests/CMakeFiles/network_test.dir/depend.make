# Empty dependencies file for network_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proc_basic_test.dir/proc_basic_test.cc.o"
  "CMakeFiles/proc_basic_test.dir/proc_basic_test.cc.o.d"
  "proc_basic_test"
  "proc_basic_test.pdb"
  "proc_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for proc_basic_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proc_full_empty_test.dir/proc_full_empty_test.cc.o"
  "CMakeFiles/proc_full_empty_test.dir/proc_full_empty_test.cc.o.d"
  "proc_full_empty_test"
  "proc_full_empty_test.pdb"
  "proc_full_empty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_full_empty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for proc_full_empty_test.
# This may be replaced when dependencies are built.

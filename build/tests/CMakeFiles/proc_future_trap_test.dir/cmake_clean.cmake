file(REMOVE_RECURSE
  "CMakeFiles/proc_future_trap_test.dir/proc_future_trap_test.cc.o"
  "CMakeFiles/proc_future_trap_test.dir/proc_future_trap_test.cc.o.d"
  "proc_future_trap_test"
  "proc_future_trap_test.pdb"
  "proc_future_trap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_future_trap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

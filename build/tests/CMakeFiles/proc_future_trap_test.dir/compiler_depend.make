# Empty compiler generated dependencies file for proc_future_trap_test.
# This may be replaced when dependencies are built.

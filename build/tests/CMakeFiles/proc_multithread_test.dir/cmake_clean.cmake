file(REMOVE_RECURSE
  "CMakeFiles/proc_multithread_test.dir/proc_multithread_test.cc.o"
  "CMakeFiles/proc_multithread_test.dir/proc_multithread_test.cc.o.d"
  "proc_multithread_test"
  "proc_multithread_test.pdb"
  "proc_multithread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_multithread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for proc_multithread_test.
# This may be replaced when dependencies are built.

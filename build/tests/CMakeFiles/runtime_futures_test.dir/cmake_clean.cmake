file(REMOVE_RECURSE
  "CMakeFiles/runtime_futures_test.dir/runtime_futures_test.cc.o"
  "CMakeFiles/runtime_futures_test.dir/runtime_futures_test.cc.o.d"
  "runtime_futures_test"
  "runtime_futures_test.pdb"
  "runtime_futures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_futures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

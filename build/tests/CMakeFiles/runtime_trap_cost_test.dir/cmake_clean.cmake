file(REMOVE_RECURSE
  "CMakeFiles/runtime_trap_cost_test.dir/runtime_trap_cost_test.cc.o"
  "CMakeFiles/runtime_trap_cost_test.dir/runtime_trap_cost_test.cc.o.d"
  "runtime_trap_cost_test"
  "runtime_trap_cost_test.pdb"
  "runtime_trap_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_trap_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

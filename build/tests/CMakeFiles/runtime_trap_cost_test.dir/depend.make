# Empty dependencies file for runtime_trap_cost_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/runtime_virtual_threads_test.dir/runtime_virtual_threads_test.cc.o"
  "CMakeFiles/runtime_virtual_threads_test.dir/runtime_virtual_threads_test.cc.o.d"
  "runtime_virtual_threads_test"
  "runtime_virtual_threads_test.pdb"
  "runtime_virtual_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_virtual_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for runtime_virtual_threads_test.
# This may be replaced when dependencies are built.

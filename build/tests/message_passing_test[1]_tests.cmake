add_test([=[MessagePassing.IpiPlusBlockTransferDelivery]=]  /root/repo/build/tests/message_passing_test [==[--gtest_filter=MessagePassing.IpiPlusBlockTransferDelivery]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MessagePassing.IpiPlusBlockTransferDelivery]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  message_passing_test_TESTS MessagePassing.IpiPlusBlockTransferDelivery)

/**
 * @file
 * The full ALEWIFE machine end to end: a Mul-T program with lazy
 * futures on a 2x2 mesh of complete nodes — APRIL processors, caches,
 * directory-coherence controllers, network — followed by a dump of
 * the machine-wide statistics tree.
 */

#include <cstdio>
#include <iostream>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace april;

    int n = argc > 1 ? std::atoi(argv[1]) : 13;

    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(n));
    Program prog = as.finish();

    AlewifeParams params;
    params.network = {.dim = 2, .radix = 2};
    params.controller.cache = {.lineWords = 4, .numLines = 4096,
                               .assoc = 4};      // Table 4: 64 KB
    AlewifeMachine machine(params, &prog);

    machine.run(100'000'000);
    if (!machine.halted()) {
        std::printf("did not finish\n");
        return 1;
    }

    std::printf("fib(%d) on a 2x2 ALEWIFE = %s (expected %lld) in "
                "%llu cycles\n\n",
                n, tagged::toString(machine.console().back()).c_str(),
                (long long)workloads::fibExpected(n),
                (unsigned long long)machine.cycle());

    std::printf("machine statistics:\n");
    machine.dump(std::cout);

    std::printf("\nnote the contextSwitches and trapsRemoteMiss "
                "counters: every use of the\nnetwork switched the "
                "processor to another task frame (Section 2.1).\n");
    return 0;
}

/**
 * @file
 * The full ALEWIFE machine end to end: a Mul-T program with lazy
 * futures on a 2x2 mesh of complete nodes — APRIL processors, caches,
 * directory-coherence controllers, network — followed by a dump of
 * the machine-wide statistics tree.
 *
 * Observability options:
 *   --trace=FILE   record machine events, write Chrome trace-event
 *                  JSON to FILE (open it at https://ui.perfetto.dev)
 *   --stats=FILE   write the statistics tree as JSON to FILE
 *   --debug=FLAGS  enable live debug printing, e.g. --debug=Ctx,Net
 *                  or --debug=All (also: APRIL_DEBUG env var)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/debug.hh"
#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace april;

    int n = 13;
    std::string trace_file;
    std::string stats_file;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0)
            trace_file = arg + 8;
        else if (std::strncmp(arg, "--stats=", 8) == 0)
            stats_file = arg + 8;
        else if (std::strncmp(arg, "--debug=", 8) == 0)
            debug::setFlags(arg + 8);
        else
            n = std::atoi(arg);
    }

    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(n));
    Program prog = as.finish();

    AlewifeParams params;
    params.network = {.dim = 2, .radix = 2};
    params.controller.cache = {.lineWords = 4, .numLines = 4096,
                               .assoc = 4};      // Table 4: 64 KB
    params.traceEvents = !trace_file.empty();
    AlewifeMachine machine(params, &prog);

    machine.run(100'000'000);
    if (!machine.halted()) {
        std::printf("did not finish\n");
        return 1;
    }

    std::printf("fib(%d) on a 2x2 ALEWIFE = %s (expected %lld) in "
                "%llu cycles\n\n",
                n, tagged::toString(machine.console().back()).c_str(),
                (long long)workloads::fibExpected(n),
                (unsigned long long)machine.cycle());

    std::printf("machine statistics:\n");
    machine.dump(std::cout);

    if (!trace_file.empty()) {
        std::ofstream os(trace_file);
        machine.writeTrace(os);
        std::printf("\nwrote %llu trace events to %s "
                    "(load at https://ui.perfetto.dev)\n",
                    (unsigned long long)
                        machine.traceRecorder()->events().size(),
                    trace_file.c_str());
    }
    if (!stats_file.empty()) {
        std::ofstream os(stats_file);
        machine.dumpJson(os);
        os << "\n";
        std::printf("wrote statistics JSON to %s\n",
                    stats_file.c_str());
    }

    std::printf("\nnote the contextSwitches and trapsRemoteMiss "
                "counters: every use of the\nnetwork switched the "
                "processor to another task frame (Section 2.1).\n");
    return 0;
}

/**
 * @file
 * The full ALEWIFE machine end to end: a Mul-T program with lazy
 * futures on a 2x2 mesh of complete nodes — APRIL processors, caches,
 * directory-coherence controllers, network — followed by a dump of
 * the machine-wide statistics tree.
 *
 * Observability options:
 *   --trace=FILE   record machine events, write Chrome trace-event
 *                  JSON to FILE (open it at https://ui.perfetto.dev)
 *   --stats=FILE   write the statistics tree as JSON to FILE
 *   --debug=FLAGS  enable live debug printing, e.g. --debug=Ctx,Net
 *                  or --debug=All (also: APRIL_DEBUG env var)
 *   --profile=FILE       PC-sample every node and write profile JSON
 *                        (cycle breakdown + hotspots) to FILE
 *   --profile-period=N   PC sample period in cycles (default 64)
 *   --coh=FILE           trace coherence transactions and write the
 *                        structured span JSON to FILE
 *   --stats-interval=N   snapshot all statistics every N cycles and
 *                        append the CSV time series after the run
 *   --threads=N          shard the machine over N host worker threads
 *                        (DESIGN.md §7.6); the run is bit-identical
 *                        to --threads=1, traces and profiles included
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/debug.hh"
#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace april;

    int n = 13;
    std::string trace_file;
    std::string stats_file;
    std::string profile_file;
    std::string coh_file;
    uint64_t profile_period = 64;
    uint64_t stats_interval = 0;
    uint32_t threads = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--trace=", 8) == 0)
            trace_file = arg + 8;
        else if (std::strncmp(arg, "--stats=", 8) == 0)
            stats_file = arg + 8;
        else if (std::strncmp(arg, "--debug=", 8) == 0)
            debug::setFlags(arg + 8);
        else if (std::strncmp(arg, "--profile=", 10) == 0)
            profile_file = arg + 10;
        else if (std::strncmp(arg, "--coh=", 6) == 0)
            coh_file = arg + 6;
        else if (std::strncmp(arg, "--profile-period=", 17) == 0)
            profile_period = std::strtoull(arg + 17, nullptr, 10);
        else if (std::strncmp(arg, "--stats-interval=", 17) == 0)
            stats_interval = std::strtoull(arg + 17, nullptr, 10);
        else if (std::strncmp(arg, "--threads=", 10) == 0)
            threads = uint32_t(std::atoi(arg + 10));
        else
            n = std::atoi(arg);
    }

    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Lazy;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(n));
    Program prog = as.finish();

    AlewifeParams params;
    params.network = {.dim = 2, .radix = 2};
    params.controller.cache = {.lineWords = 4, .numLines = 4096,
                               .assoc = 4};      // Table 4: 64 KB
    params.traceEvents = !trace_file.empty();
    params.profile = !profile_file.empty();
    params.cohTrace = !coh_file.empty();
    params.profilePeriod = profile_period;
    params.statsInterval = stats_interval;
    params.hostThreads = threads;
    AlewifeMachine machine(params, &prog);

    machine.run(100'000'000);
    if (!machine.halted()) {
        std::printf("did not finish\n");
        return 1;
    }

    std::printf("fib(%d) on a 2x2 ALEWIFE = %s (expected %lld) in "
                "%llu cycles",
                n, tagged::toString(machine.console().back()).c_str(),
                (long long)workloads::fibExpected(n),
                (unsigned long long)machine.cycle());
    if (machine.hostThreads() > 1)
        std::printf(" (%u host threads)", machine.hostThreads());
    std::printf("\n\n");

    std::printf("machine statistics:\n");
    machine.dump(std::cout);

    if (!trace_file.empty()) {
        std::ofstream os(trace_file);
        machine.writeTrace(os);
        std::printf("\nwrote %llu trace events to %s "
                    "(load at https://ui.perfetto.dev)\n",
                    (unsigned long long)
                        machine.traceRecorder()->events().size(),
                    trace_file.c_str());
    }
    if (!stats_file.empty()) {
        std::ofstream os(stats_file);
        machine.dumpJson(os);
        os << "\n";
        std::printf("wrote statistics JSON to %s\n",
                    stats_file.c_str());
    }
    if (!profile_file.empty()) {
        std::ofstream os(profile_file);
        profile::writeProfileJson(os, machine.profileSource());
        os << "\n";
        std::printf("wrote profile JSON to %s\n", profile_file.c_str());
    }
    if (!coh_file.empty()) {
        std::ofstream os(coh_file);
        machine.writeCohTrace(os);
        os << "\n";
        std::printf("wrote coherence transaction JSON to %s\n",
                    coh_file.c_str());
    }
    if (stats_interval) {
        std::printf("\nstats time series (every %llu cycles):\n",
                    (unsigned long long)stats_interval);
        machine.intervalSampler()->writeCsv(std::cout);
    }

    std::printf("\nnote the contextSwitches and trapsRemoteMiss "
                "counters: every use of the\nnetwork switched the "
                "processor to another task frame (Section 2.1).\n");
    return 0;
}

/**
 * @file
 * Fine-grain synchronization with full/empty bits (Section 3.3): a
 * two-stage producer/consumer pipeline through a shared buffer, one
 * synchronization bit per word — no locks, no separate flag storage.
 *
 * Node 0 produces squares into a 64-word buffer with set-to-full
 * stores; node 1 consumes them with consuming (reset-to-empty) loads,
 * accumulating the sum. Each side spins with a *non-trapping* probe +
 * Jempty/Jfull, the explicit-control idiom Table 2's flavors enable.
 */

#include <cstdio>

#include "machine/perfect_machine.hh"
#include "runtime/runtime.hh"

int
main()
{
    using namespace april;
    using namespace april::tagged;

    constexpr Addr kBuf = 4096;     // 64-slot ring, homed on node 0
    constexpr int kItems = 64;

    Assembler as;
    // Producer (node 0): buf[i] <- i*i, set full; waits while full.
    as.bind("producer");
    as.movi(1, ptr(kBuf, Tag::Other));
    as.movi(2, 0);                          // i (raw)
    as.bind("ploop");
    as.mulR(3, 2, 2);
    as.slliR(3, 3, 2);                      // fixnum(i*i)
    as.bind("pwait");
    as.ldnw(4, 1, 0);                       // probe the f/e state
    as.jRaw(Cond::FULL, "pwait");           // still full: consumer lags
    as.nop();
    as.stfnw(3, 1, 0);                      // store and set full
    as.addiR(1, 1, kWordOff);
    as.addiR(2, 2, 1);
    as.cmpiR(2, kItems);
    as.jRaw(Cond::LT, "ploop");
    as.nop();
    as.halt();

    // Consumer (node 1): consuming loads; spins while empty.
    as.bind("consumer");
    as.movi(1, ptr(kBuf, Tag::Other));
    as.movi(2, 0);
    as.movi(5, fixnum(0));                  // sum
    as.bind("cloop");
    as.bind("cwait");
    as.ldenw(6, 1, 0);                      // atomically read-and-empty
    as.jRaw(Cond::EMPTY, "cwait");          // was empty: retry
    as.nop();
    as.add(5, 5, 6);
    as.addiR(1, 1, kWordOff);
    as.addiR(2, 2, 1);
    as.cmpiR(2, kItems);
    as.jRaw(Cond::LT, "cloop");
    as.nop();
    as.stio(int(IoReg::ConsoleOut), 5);
    as.stio(int(IoReg::MachineHalt), 5);
    as.halt();

    // Boot plumbing expected by the machine (no Mul-T here).
    as.bind(rt::sym::boot);
    as.j(Cond::AL, "producer");
    as.bind(rt::sym::idle);
    as.j(Cond::AL, "consumer");
    as.bind(rt::sym::sched);
    as.bind(rt::sym::cswitch);
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind(rt::sym::futureTouch);
    as.bind(rt::sym::ipi);
    as.rettRetry();
    as.bind(rt::sym::fault);
    as.halt();
    as.bind(rt::sym::makeFuture);
    as.bind(rt::sym::resolve);
    as.bind(rt::sym::spawn);
    as.bind(rt::sym::cons);
    as.bind(rt::sym::makeVector);
    as.bind(rt::sym::stolenExit);
    as.bind(rt::sym::touchSw);
    as.bind(rt::sym::touchResume);
    as.bind(rt::sym::userMain);
    as.ret();
    Program prog = as.finish();

    rt::Runtime runtime;
    PerfectMachineParams params;
    params.numNodes = 2;
    params.wordsPerNode = 1u << 16;
    PerfectMachine m(params, &prog, runtime);
    // The buffer starts empty: nothing to consume yet.
    for (int i = 0; i < kItems; ++i)
        m.memory().setFull(kBuf + Addr(i), false);

    m.run(1'000'000);

    long long expect = 0;
    for (int i = 0; i < kItems; ++i)
        expect += (long long)i * i;
    std::printf("pipeline of %d items finished in %llu cycles\n",
                kItems, (unsigned long long)m.cycle());
    std::printf("consumer's sum: %s (expected %lld)\n",
                toString(m.console().back()).c_str(), expect);
    std::printf("\nEvery word carried its own synchronization state — "
                "one memory op per handoff,\nno test&set, no lock "
                "words (Section 3.3).\n");
    return 0;
}

/**
 * @file
 * Fine-grain synchronization with full/empty bits (Section 3.3): a
 * two-stage producer/consumer pipeline through a shared buffer, one
 * synchronization bit per word — no locks, no separate flag storage.
 *
 * Node 0 produces squares into a 64-word buffer with set-to-full
 * stores; node 1 consumes them with consuming (reset-to-empty) loads,
 * accumulating the sum. Each side spins with a *non-trapping* probe +
 * Jempty/Jfull, the explicit-control idiom Table 2's flavors enable.
 *
 * The program itself lives in workloads::buildFineGrainSync() so the
 * `april-lint` analyzer and the race-detector tests exercise exactly
 * the code this example runs.
 */

#include <cstdio>

#include "machine/perfect_machine.hh"
#include "runtime/runtime.hh"
#include "workloads/handwritten.hh"

int
main()
{
    using namespace april;

    workloads::FineGrainSync w = workloads::buildFineGrainSync();

    rt::Runtime runtime;
    PerfectMachineParams params;
    params.numNodes = 2;
    params.wordsPerNode = 1u << 16;
    PerfectMachine m(params, &w.prog, runtime);
    // The buffer starts empty: nothing to consume yet.
    for (int i = 0; i < w.items; ++i)
        m.memory().setFull(w.buf + Addr(i), false);

    m.run(1'000'000);

    std::printf("pipeline of %d items finished in %llu cycles\n",
                w.items, (unsigned long long)m.cycle());
    std::printf("consumer's sum: %s (expected %lld)\n",
                tagged::toString(m.console().back()).c_str(),
                (long long)w.expectedSum);
    std::printf("\nEvery word carried its own synchronization state — "
                "one memory op per handoff,\nno test&set, no lock "
                "words (Section 3.3).\n");
    return 0;
}

/**
 * @file
 * Mul-T futures end to end: compile parallel fib three ways — futures
 * erased ("T seq"), normal task creation, and lazy task creation —
 * and run on 1..8 processors of the perfect-memory machine, printing
 * a small Table-3-style comparison.
 */

#include <cstdio>

#include "machine/driver.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace april;
    using FM = mult::CompileOptions::FutureMode;

    int n = argc > 1 ? std::atoi(argv[1]) : 13;
    QuietScope quiet_scope;
    std::string src = workloads::fibSource(n);

    std::printf("fib(%d) with futures around both recursive calls\n\n",
                n);

    DriverResult seq =
        runMultProgram(src, DriverOptions::april(FM::Erase, 1));
    std::printf("sequential (futures erased): result=%lld  cycles=%llu"
                "\n\n",
                (long long)tagged::toInt(seq.result),
                (unsigned long long)seq.cycles);

    std::printf("%6s  %16s  %16s   (cycles; speedup vs sequential)\n",
                "procs", "normal futures", "lazy futures");
    for (uint32_t p : {1u, 2u, 4u, 8u}) {
        DriverResult eager =
            runMultProgram(src, DriverOptions::april(FM::Eager, p));
        DriverResult lazy =
            runMultProgram(src, DriverOptions::april(FM::Lazy, p));
        std::printf("%6u  %9llu %5.2fx  %9llu %5.2fx\n", p,
                    (unsigned long long)eager.cycles,
                    double(seq.cycles) / double(eager.cycles),
                    (unsigned long long)lazy.cycles,
                    double(seq.cycles) / double(lazy.cycles));
    }

    DriverResult lazy8 =
        runMultProgram(src, DriverOptions::april(FM::Lazy, 8));
    DriverResult eager8 =
        runMultProgram(src, DriverOptions::april(FM::Eager, 8));
    std::printf("\nwith 8 processors: eager created %llu tasks; lazy "
                "stole only %llu continuations\n",
                (unsigned long long)eager8.spawns,
                (unsigned long long)lazy8.steals);
    std::printf("(lazy task creation: \"the user can specify the "
                "maximum possible parallelism without\n the overhead "
                "of creating a large number of tasks\", Section 3.2)\n");
    return 0;
}

/**
 * @file
 * Quickstart: assemble a small APRIL program, run it on one processor
 * and inspect the result — the smallest end-to-end use of the
 * library's public API.
 *
 * The program computes 6 * 7 with tagged fixnums, stores the result
 * into memory with a set-to-full store, reloads it with a trapping
 * load (which succeeds because the word is now full), and prints it
 * through the console I/O register.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"

int
main()
{
    using namespace april;
    using namespace april::tagged;

    // 1. Write the program through the macro-assembler.
    Assembler as;
    as.bind("main");
    as.movi(1, fixnum(6));
    as.movi(2, fixnum(7));
    // Tagged multiply: strict shift untags one operand (and would
    // trap if it were an unresolved future), then a raw multiply.
    as.push({.op = Opcode::SRA, .rd = 1, .rs1 = 1, .imm = 2,
             .useImm = true, .strict = true});
    as.mulR(3, 1, 2);
    // Producer-style store: word 100 becomes full.
    as.movi(4, ptr(100, Tag::Other));
    as.stfnw(3, 4, 0);
    // Trapping consumer load: would context-switch if word were empty.
    as.ldetw(5, 4, 0);
    as.stio(int(IoReg::ConsoleOut), 5);
    as.halt();
    Program prog = as.finish();

    std::printf("Assembled %u instructions:\n%s\n", prog.size(),
                prog.listing().c_str());

    // 2. Build a node: memory + zero-latency port + I/O + processor.
    SharedMemory mem({.numNodes = 1, .wordsPerNode = 4096});
    mem.setFull(100, false);            // the mailbox starts empty
    PerfectMemPort port(&mem);
    SimpleIoPort io;
    Processor proc({}, &prog, &port, &io);
    proc.reset(prog.entry("main"));

    // 3. Run and inspect.
    uint64_t cycles = proc.run(1000);
    std::printf("halted after %llu cycles\n",
                (unsigned long long)cycles);
    for (Word w : io.console)
        std::printf("console: %s\n", toString(w).c_str());
    std::printf("memory[100] = %s (full=%d, consumed by ldetw)\n",
                toString(mem.read(100)).c_str(), mem.isFull(100));
    return 0;
}

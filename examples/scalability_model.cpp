/**
 * @file
 * Design-space exploration with the Section 8 analytical model:
 * sweep context-switch overhead, cache size and network radix around
 * the Table 4 operating point, as an architect would when sizing a
 * machine like ALEWIFE.
 *
 * Usage: scalability_model [threads]
 */

#include <cstdio>
#include <initializer_list>
#include <cstdlib>

#include "model/scalability.hh"

int
main(int argc, char **argv)
{
    using namespace april::model;

    double p = argc > 1 ? std::atof(argv[1]) : 3;

    std::printf("Operating point: %g resident threads (Table 4 "
                "defaults otherwise)\n\n", p);

    {
        ScalabilityModel m{ModelParams{}};
        auto pt = m.evaluate(p);
        std::printf("baseline: U=%.3f  m=%.4f  T=%.1f  rho=%.2f%s\n\n",
                    pt.utilization, pt.missRate, pt.latency,
                    pt.channelRho,
                    pt.saturated ? "  [switch-limited]" : "");
    }

    std::printf("context-switch overhead sweep (the 4..11-cycle "
                "design range is benign):\n");
    for (double c : {1.0, 4.0, 11.0, 32.0, 100.0}) {
        ModelParams params;
        params.switchOverhead = c;
        std::printf("  C=%5.0f  U(p)=%.3f\n", c,
                    ScalabilityModel(params).utilization(p));
    }

    std::printf("\ncache size sweep (working sets of %g threads):\n",
                p);
    for (double kb : {16.0, 32.0, 64.0, 128.0, 256.0}) {
        ModelParams params;
        params.cacheBytes = kb * 1024;
        std::printf("  %6.0f KB  U(p)=%.3f\n", kb,
                    ScalabilityModel(params).utilization(p));
    }

    std::printf("\nnetwork radix sweep at fixed dimension 3 "
                "(larger machines, longer latencies):\n");
    for (int k : {4, 8, 12, 16, 20, 28}) {
        ModelParams params;
        params.netRadix = k;
        ScalabilityModel m(params);
        std::printf("  k=%2d (%6.0f nodes)  T(1)=%5.1f  U(%g)=%.3f  "
                    "U(1)=%.3f\n",
                    k, double(k) * k * k, m.baseLatency(), p,
                    m.utilization(p), m.utilization(1));
    }

    std::printf("\nAs the machine grows, single-thread utilization "
                "collapses with latency while the\nmultithreaded "
                "processor holds its plateau — the core argument for "
                "APRIL.\n");
    return 0;
}

#include "analysis/cfg.hh"

#include <algorithm>
#include <set>

namespace april::analysis
{

namespace
{

/** Static control-flow classification of one instruction. */
struct FlowInfo
{
    bool branch = false;        ///< J/JMPL: has a delay slot
    bool terminator = false;    ///< RETT/HALT: nothing follows
    bool fallsThrough = true;   ///< execution can continue past it
    bool hasTarget = false;     ///< static target in `target`
    bool isCall = false;        ///< JMPL with a link register
    uint32_t target = 0;
};

FlowInfo
flowOf(const Instruction &inst)
{
    FlowInfo f;
    switch (inst.op) {
      case Opcode::J:
        f.branch = true;
        f.hasTarget = true;
        f.target = uint32_t(inst.imm);
        f.fallsThrough = inst.cond != Cond::AL;
        break;
      case Opcode::JMPL:
        f.branch = true;
        f.isCall = inst.rd != reg::r0;
        if (inst.useImm) {
            f.hasTarget = true;
            f.target = uint32_t(inst.imm);
        }
        // A call resumes after the slot once the callee returns; a
        // non-linking jump (ret / jmpReg) never comes back.
        f.fallsThrough = f.isCall;
        break;
      case Opcode::RETT:
      case Opcode::HALT:
        f.terminator = true;
        f.fallsThrough = false;
        break;
      default:
        break;
    }
    return f;
}

} // namespace

Cfg
buildCfg(const Program &prog, const std::vector<uint32_t> &rootPcs)
{
    Cfg cfg;
    cfg.prog = &prog;
    uint32_t size = prog.size();
    if (size == 0)
        return cfg;

    // Pass 1: leaders. A branch's slot is pc+1 and its out-edges leave
    // from pc+2; code after a terminator starts a new block.
    std::set<uint32_t> leaders;
    std::set<uint32_t> slots;
    for (uint32_t pc : rootPcs) {
        if (pc < size)
            leaders.insert(pc);
        else
            cfg.defects.push_back({pc, "analysis root past program end"});
    }
    for (uint32_t pc = 0; pc < size; ++pc) {
        FlowInfo f = flowOf(prog.at(pc));
        if (f.branch) {
            if (pc + 1 >= size) {
                cfg.defects.push_back(
                    {pc, "branch delay slot runs past the end of the "
                         "program"});
            } else {
                slots.insert(pc + 1);
                if (flowOf(prog.at(pc + 1)).branch) {
                    cfg.defects.push_back(
                        {pc + 1, "branch in the delay slot of the "
                                 "branch at pc " + std::to_string(pc)});
                }
            }
            if (f.hasTarget) {
                if (f.target < size)
                    leaders.insert(f.target);
                else
                    cfg.defects.push_back(
                        {pc, "branch target " +
                             std::to_string(f.target) +
                             " past program end"});
            }
            if (f.fallsThrough && pc + 2 < size)
                leaders.insert(pc + 2);
        } else if (f.terminator && pc + 1 < size) {
            leaders.insert(pc + 1);
        }
    }
    for (uint32_t l : leaders) {
        if (slots.count(l)) {
            cfg.defects.push_back(
                {l, "branch target or analysis root lands in a branch "
                    "delay slot"});
        }
    }

    // Pass 2: carve blocks. A branch normally closes its block after
    // the slot; when the slot is itself a leader (defect above) the
    // block closes at the slot and chains to it so every pc still
    // belongs to exactly one block.
    cfg.blockAt.assign(size, 0);
    uint32_t pc = 0;
    while (pc < size) {
        Block b;
        b.first = pc;
        uint32_t cur = pc;
        while (true) {
            FlowInfo f = flowOf(prog.at(cur));
            if (f.branch) {
                cur = (cur + 1 < size && !leaders.count(cur + 1))
                          ? cur + 2
                          : cur + 1;
                break;
            }
            if (f.terminator) {
                cur += 1;
                break;
            }
            cur += 1;
            if (cur >= size || leaders.count(cur))
                break;
        }
        b.end = std::min(cur, size);
        for (uint32_t i = b.first; i < b.end; ++i)
            cfg.blockAt[i] = uint32_t(cfg.blocks.size());
        cfg.blocks.push_back(b);
        pc = b.end;
    }

    // Pass 3: edges (now that every pc maps to a block).
    for (Block &b : cfg.blocks) {
        uint32_t last = b.end - 1;
        // Find the branch that closed this block, if any: it is either
        // the last instruction (slot split off / slot past end) or the
        // one before the slot.
        uint32_t branchPc = last;
        FlowInfo f = flowOf(prog.at(branchPc));
        if (!f.branch && b.end >= b.first + 2 &&
            flowOf(prog.at(b.end - 2)).branch) {
            branchPc = b.end - 2;
            f = flowOf(prog.at(branchPc));
        }
        if (f.branch) {
            if (branchPc == last && branchPc + 1 < size) {
                // Slot was split into its own block: execution always
                // proceeds into the slot next, whatever the branch
                // decides. Conservative but structurally sound.
                b.succs.push_back(cfg.blockAt[branchPc + 1]);
                continue;
            }
            if (f.hasTarget && f.target < size)
                b.succs.push_back(cfg.blockAt[f.target]);
            if (f.fallsThrough && branchPc + 2 < size) {
                if (f.isCall)
                    b.callFallthrough = int32_t(b.succs.size());
                b.succs.push_back(cfg.blockAt[branchPc + 2]);
            }
        } else if (!f.terminator && b.end < size) {
            b.succs.push_back(cfg.blockAt[b.end]);
        }
    }

    for (uint32_t r : rootPcs) {
        if (r < size)
            cfg.roots.push_back(cfg.blockAt[r]);
    }
    return cfg;
}

} // namespace april::analysis

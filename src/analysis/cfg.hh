/**
 * @file
 * Control-flow graph over an assembled APRIL program.
 *
 * The CFG honors the machine's branch discipline (Section 3): every J
 * and JMPL has a single architectural delay slot, so a branch and its
 * slot instruction always live in the same basic block and the block's
 * out-edges leave *after* the slot (the PC chain advances _pc/_npc,
 * i.e. the slot executes before the target). JMPL is classified by its
 * link register: a linking jump (rd != r0) is a call whose fall-through
 * edge resumes after the slot when the callee returns; a non-linking
 * register-indirect jump (ret / jmpReg) is a block terminator. RETT
 * and HALT terminate blocks; TRAP falls through (the handler resumes
 * at pc+1 via rett).
 *
 * Structural defects (a branch target landing in a delay slot, a
 * branch placed inside another branch's slot, a slot running past the
 * end of the program) are recorded rather than fatal, and the graph
 * degrades conservatively so the dataflow engine can still run.
 */

#ifndef APRIL_ANALYSIS_CFG_HH
#define APRIL_ANALYSIS_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace april::analysis
{

/** One basic block: the half-open pc range [first, end). */
struct Block
{
    uint32_t first = 0;
    uint32_t end = 0;

    /** Successor block indices (call targets included). */
    std::vector<uint32_t> succs;

    /**
     * Position in succs of a call's fall-through edge, or -1. The
     * dataflow engine havocs register state along this edge because
     * the callee ran in between (its effects are not tracked
     * interprocedurally).
     */
    int32_t callFallthrough = -1;
};

/** The whole graph plus construction-time structural defects. */
struct Cfg
{
    const Program *prog = nullptr;
    std::vector<Block> blocks;
    /** pc -> index of the block containing it. */
    std::vector<uint32_t> blockAt;
    /** Block indices of the requested analysis roots. */
    std::vector<uint32_t> roots;

    struct Defect
    {
        uint32_t pc = 0;
        std::string message;
    };
    std::vector<Defect> defects;
};

/** Build the CFG with blocks split at @p rootPcs and branch targets. */
Cfg buildCfg(const Program &prog, const std::vector<uint32_t> &rootPcs);

} // namespace april::analysis

#endif // APRIL_ANALYSIS_CFG_HH

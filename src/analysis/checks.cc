#include "analysis/checks.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/dataflow.hh"

namespace april::analysis
{

namespace
{

constexpr uint64_t kAllRegs = (uint64_t(1) << reg::numNames) - 1;

constexpr int32_t kFpUnknown = -1;   ///< STFP: any rotation possible
constexpr int32_t kFpConflict = -2;  ///< two paths, two known deltas

/** The per-program-point abstract state (see checks.hh). */
struct RegState
{
    bool reachable = false;
    uint64_t defined = 1;       ///< must-defined; bit 0 (r0) always
    uint64_t maybeFut = 0;      ///< may hold a future-tagged value
    bool fLatched = false;      ///< F bit set by a non-trapping access
    int32_t fpDelta = 0;        ///< net frame rotation since root entry

    bool
    joinWith(const RegState &o)
    {
        if (!o.reachable)
            return false;
        if (!reachable) {
            *this = o;
            return true;
        }
        RegState before = *this;
        defined &= o.defined;
        maybeFut |= o.maybeFut;
        fLatched = fLatched && o.fLatched;
        if (fpDelta != o.fpDelta) {
            fpDelta = (fpDelta == kFpConflict || o.fpDelta == kFpConflict)
                ? kFpConflict
                : (fpDelta == kFpUnknown || o.fpDelta == kFpUnknown)
                    ? kFpUnknown
                    : kFpConflict;
        }
        return defined != before.defined || maybeFut != before.maybeFut ||
               fLatched != before.fLatched || fpDelta != before.fpDelta;
    }
};

bool
srcMaybeFuture(const RegState &s, const Instruction &inst)
{
    // The hardware's strict checks: compute ops test their register
    // operands, memory ops test the address operand rs1 (Section 4).
    if (inst.isCompute()) {
        if (s.maybeFut >> inst.rs1 & 1)
            return true;
        return !inst.useImm && (s.maybeFut >> inst.rs2 & 1);
    }
    if (inst.isMemory())
        return s.maybeFut >> inst.rs1 & 1;
    return false;
}

/** Does this non-trapping flavor latch the F condition bit? */
bool
latchesF(const Instruction &inst)
{
    return inst.isMemory() && !inst.feTrap;
}

/** Apply one instruction to the abstract state. */
void
applyInst(const Instruction &inst, RegState &s, uint32_t numFrames)
{
    auto def = [&](uint8_t r, bool fut) {
        s.defined |= uint64_t(1) << r;
        if (fut)
            s.maybeFut |= uint64_t(1) << r;
        else if (r != reg::r0)
            s.maybeFut &= ~(uint64_t(1) << r);
    };

    if (inst.isCompute()) {
        bool fut = !inst.strict && srcMaybeFuture(s, inst);
        if (inst.strict) {
            // A strict op is a touch: the handler resolves the future
            // operand in place before the retry (Section 4).
            s.maybeFut &= ~(uint64_t(1) << inst.rs1);
            if (!inst.useImm)
                s.maybeFut &= ~(uint64_t(1) << inst.rs2);
        }
        def(inst.rd, fut);
        return;
    }

    switch (inst.op) {
      case Opcode::MOVI:
        def(inst.rd, tagged::isFuture(Word(uint32_t(inst.imm))));
        break;
      case Opcode::LD:
        if (inst.strict)
            s.maybeFut &= ~(uint64_t(1) << inst.rs1);
        def(inst.rd, true);         // memory may hold future tags
        if (latchesF(inst))
            s.fLatched = true;
        break;
      case Opcode::ST:
        if (inst.strict)
            s.maybeFut &= ~(uint64_t(1) << inst.rs1);
        if (latchesF(inst))
            s.fLatched = true;
        break;
      case Opcode::TAS:
      case Opcode::FLUSH:
        if (inst.op == Opcode::TAS)
            def(inst.rd, true);
        s.fLatched = true;
        break;
      case Opcode::JMPL:
        def(inst.rd, false);        // the link address
        break;
      case Opcode::RDFP:
      case Opcode::RDPSR:
      case Opcode::RDFENCE:
      case Opcode::RDSPEC:
      case Opcode::LDIO:
        def(inst.rd, false);
        break;
      case Opcode::WRPSR:
        // Restores a saved PSR, F bit included: whatever it holds is
        // a deliberate value, not a stale latch.
        s.fLatched = true;
        break;
      case Opcode::RDREGX:
        def(inst.rd, s.maybeFut != 0);
        break;
      case Opcode::WRREGX:
        // Writes one dynamically chosen register: cannot grow the
        // must-defined set, and may deposit a future anywhere.
        if (s.maybeFut >> inst.rs2 & 1)
            s.maybeFut = kAllRegs;
        break;
      case Opcode::INCFP:
        if (s.fpDelta >= 0)
            s.fpDelta = int32_t((uint32_t(s.fpDelta) + 1) % numFrames);
        break;
      case Opcode::DECFP:
        if (s.fpDelta >= 0) {
            s.fpDelta = int32_t((uint32_t(s.fpDelta) + numFrames - 1) %
                                numFrames);
        }
        break;
      case Opcode::STFP:
        s.fpDelta = kFpUnknown;
        break;
      default:
        break;
    }
}

/** Call fall-through havoc: the untracked callee ran in between. */
void
havocAfterCall(RegState &s)
{
    s.defined = kAllRegs;
    s.fLatched = true;          // callees do perform memory accesses
}

/** Trap kind a reachable instruction can raise deterministically. */
TrapKind
trapRaised(const Instruction &inst)
{
    if (inst.op == Opcode::TRAP)
        return TrapKind(int(TrapKind::SoftTrap0) + inst.imm);
    if (inst.isMemory() && inst.op != Opcode::FLUSH) {
        if (inst.feTrap) {
            return inst.op == Opcode::ST ? TrapKind::FeFull
                                         : TrapKind::FeEmpty;
        }
        if (inst.miss == MissPolicy::Trap)
            return TrapKind::RemoteMiss;
    }
    return TrapKind::None;
}

struct Checker
{
    const Program &prog;
    const AnalysisOptions &opts;
    const Cfg &cfg;
    AnalysisResult &res;
    std::set<std::pair<CheckKind, uint32_t>> seen;

    void
    report(CheckKind kind, Severity sev, uint32_t pc, std::string msg)
    {
        if (seen.emplace(kind, pc).second)
            res.findings.push_back({kind, sev, pc, std::move(msg)});
    }

    void
    checkInst(uint32_t pc, const RegState &s)
    {
        const Instruction &inst = prog.at(pc);
        OperandInfo oi = operandInfo(inst);

        for (uint8_t i = 0; i < oi.numSrcs; ++i) {
            uint8_t r = oi.srcs[i];
            if (r != reg::r0 && !(s.defined >> r & 1)) {
                report(CheckKind::UninitRead, Severity::Error, pc,
                       "`" + disassemble(inst) + "` reads " +
                           reg::name(r) +
                           ", which no path to here has written");
            }
        }

        if (inst.op == Opcode::J &&
            (inst.cond == Cond::FULL || inst.cond == Cond::EMPTY) &&
            !s.fLatched) {
            report(CheckKind::StaleFLatch, Severity::Warning, pc,
                   "`" + disassemble(inst) +
                       "` tests the F latch, but no non-trapping "
                       "full/empty access reaches it: the branch "
                       "dispatches on a stale (or never-set) bit");
        }

        if (inst.strict && srcMaybeFuture(s, inst)) {
            TrapKind k = inst.isCompute() ? TrapKind::FutureCompute
                                          : TrapKind::FutureMemory;
            bool vectored = opts.installed[size_t(k)];
            report(CheckKind::StrictFutureUse,
                   vectored ? Severity::Info : Severity::Warning, pc,
                   "`" + disassemble(inst) +
                       "` is strict and an operand may hold a future" +
                       (vectored
                            ? " (touch handler installed: this is "
                              "where the touch happens)"
                            : ", but no " +
                              std::string(trapKindName(k)) +
                              " handler is installed"));
        }

        TrapKind k = trapRaised(inst);
        if (k != TrapKind::None && !opts.installed[size_t(k)]) {
            report(CheckKind::MissingHandler, Severity::Error, pc,
                   "`" + disassemble(inst) + "` can raise " +
                       trapKindName(k) +
                       " but no handler is installed: the core "
                       "panics on an unvectored trap");
        }

        if (inst.op == Opcode::RETT) {
            if (s.fpDelta == kFpConflict) {
                report(CheckKind::FramePointer, Severity::Warning, pc,
                       "paths reaching this rett disagree on the net "
                       "incfp/decfp rotation: the resumed PC chain "
                       "belongs to a data-dependent frame");
            } else if (s.fpDelta == kFpUnknown) {
                report(CheckKind::FramePointer, Severity::Info, pc,
                       "frame pointer was set from a register (stfp) "
                       "on a path to this rett; rotation not "
                       "statically tracked");
            }
        }
    }

    /**
     * DelaySlotClobber: block ends [conditional J, slot], the slot
     * writes a register, and the taken target reads it before any
     * redefinition. The write executes on both paths — if it was
     * meant for the fall-through code, the target sees it too.
     */
    void
    checkDelaySlot(const Block &b)
    {
        if (b.end < b.first + 2)
            return;
        const Instruction &br = prog.at(b.end - 2);
        if (br.op != Opcode::J || br.cond == Cond::AL)
            return;
        const Instruction &slot = prog.at(b.end - 1);
        OperandInfo so = operandInfo(slot);
        if (so.dst <= 0 || so.indirectRegs)
            return;
        uint8_t w = uint8_t(so.dst);
        uint32_t target = uint32_t(br.imm);
        if (target >= prog.size())
            return;
        const Block &tb = cfg.blocks[cfg.blockAt[target]];
        for (uint32_t pc = target; pc < tb.end; ++pc) {
            OperandInfo oi = operandInfo(prog.at(pc));
            bool reads = oi.indirectRegs;
            for (uint8_t i = 0; i < oi.numSrcs && !reads; ++i)
                reads = oi.srcs[i] == w;
            if (reads) {
                report(CheckKind::DelaySlotClobber, Severity::Warning,
                       b.end - 1,
                       "delay slot of the conditional branch at pc " +
                           std::to_string(b.end - 2) + " writes " +
                           reg::name(w) + ", which the branch target " +
                           prog.symbolAt(target) +
                           " reads before redefining it; the write "
                           "executes on the fall-through path too");
                return;
            }
            if (oi.dst == int16_t(w) || oi.indirectRegs)
                return;
        }
    }
};

} // namespace

const char *
checkName(CheckKind kind)
{
    switch (kind) {
      case CheckKind::UninitRead: return "uninit-read";
      case CheckKind::DelaySlotClobber: return "delay-slot-clobber";
      case CheckKind::StaleFLatch: return "stale-f-latch";
      case CheckKind::MissingHandler: return "missing-handler";
      case CheckKind::StrictFutureUse: return "strict-future-use";
      case CheckKind::Unreachable: return "unreachable";
      case CheckKind::FramePointer: return "frame-pointer";
      case CheckKind::ProtocolHandler: return "protocol-handler";
      case CheckKind::MalformedCfg: return "malformed-cfg";
    }
    return "?";
}

const char *
severityName(Severity sev)
{
    switch (sev) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

AnalysisOptions
allSymbolRoots(const Program &prog)
{
    AnalysisOptions opts;
    for (const auto &[name, pc] : prog.symbols()) {
        AnalysisOptions::Root r;
        r.pc = pc;
        r.name = name;
        r.allRegsDefined = true;
        opts.roots.push_back(std::move(r));
    }
    opts.installAllHandlers();
    return opts;
}

bool
AnalysisResult::clean(Severity min) const
{
    return count(min) == 0;
}

uint32_t
AnalysisResult::count(Severity min) const
{
    uint32_t n = 0;
    for (const Finding &f : findings)
        n += f.sev >= min;
    return n;
}

AnalysisResult
analyzeProgram(const Program &prog, const AnalysisOptions &opts)
{
    AnalysisResult res;

    std::vector<uint32_t> rootPcs;
    rootPcs.reserve(opts.roots.size());
    for (const auto &r : opts.roots)
        rootPcs.push_back(r.pc);
    Cfg cfg = buildCfg(prog, rootPcs);
    res.numBlocks = uint32_t(cfg.blocks.size());

    for (const Cfg::Defect &d : cfg.defects) {
        res.findings.push_back({CheckKind::MalformedCfg,
                                Severity::Error, d.pc, d.message});
    }
    if (prog.size() == 0)
        return res;

    std::vector<std::pair<uint32_t, RegState>> seeds;
    for (const auto &r : opts.roots) {
        if (r.pc >= prog.size())
            continue;
        RegState s;
        s.reachable = true;
        s.defined = r.allRegsDefined ? kAllRegs : (r.definedRegs | 1);
        seeds.emplace_back(cfg.blockAt[r.pc], s);
    }

    auto transfer = [&](uint32_t b, RegState &s) {
        const Block &blk = cfg.blocks[b];
        for (uint32_t pc = blk.first; pc < blk.end; ++pc)
            applyInst(prog.at(pc), s, opts.numFrames);
    };
    auto edge = [&](uint32_t b, uint32_t pos, RegState &s) {
        if (cfg.blocks[b].callFallthrough == int32_t(pos))
            havocAfterCall(s);
    };
    std::vector<RegState> in = solveForward(cfg, seeds, transfer, edge);

    // Check pass: replay each reachable block from its fixpoint entry
    // state, checking every instruction before applying it.
    Checker checker{prog, opts, cfg, res, {}};
    for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!in[b].reachable)
            continue;
        const Block &blk = cfg.blocks[b];
        res.reachableInsts += blk.end - blk.first;
        RegState s = in[b];
        for (uint32_t pc = blk.first; pc < blk.end; ++pc) {
            checker.checkInst(pc, s);
            applyInst(prog.at(pc), s, opts.numFrames);
        }
        checker.checkDelaySlot(blk);
    }

    // Protocol-handler frame discipline: re-solve from each marked
    // root ALONE, so the rotation attributable to this handler is not
    // joined with (and masked by) states flowing in from other roots,
    // then require net rotation zero at every RETT it reaches.
    for (const auto &r : opts.roots) {
        if (!r.protocolHandler || r.pc >= prog.size())
            continue;
        RegState s0;
        s0.reachable = true;
        s0.defined = r.allRegsDefined ? kAllRegs : (r.definedRegs | 1);
        std::vector<std::pair<uint32_t, RegState>> seed;
        seed.emplace_back(cfg.blockAt[r.pc], s0);
        std::vector<RegState> pin =
            solveForward(cfg, seed, transfer, edge);
        for (uint32_t b = 0; b < cfg.blocks.size(); ++b) {
            if (!pin[b].reachable)
                continue;
            const Block &blk = cfg.blocks[b];
            RegState s = pin[b];
            for (uint32_t pc = blk.first; pc < blk.end; ++pc) {
                const Instruction &inst = prog.at(pc);
                if (inst.op == Opcode::RETT && s.fpDelta != 0) {
                    std::string why =
                        s.fpDelta == kFpUnknown
                            ? "a path sets the frame pointer from a "
                              "register (stfp), so the rotation is "
                              "not statically restorable"
                        : s.fpDelta == kFpConflict
                            ? "paths from the handler entry disagree "
                              "on the net incfp/decfp rotation, so at "
                              "least one fails to restore it"
                            : "the net incfp/decfp rotation is +" +
                                  std::to_string(s.fpDelta) +
                                  ", not 0";
                    checker.report(
                        CheckKind::ProtocolHandler,
                        s.fpDelta == kFpUnknown ? Severity::Warning
                                                : Severity::Error,
                        pc,
                        "protocol handler " + r.name +
                            " can exit here without restoring the "
                            "frame pointer: " + why +
                            "; the interrupted context would resume "
                            "in the wrong register frame");
                }
                applyInst(inst, s, opts.numFrames);
            }
        }
    }

    // Unreachable: group maximal runs of instructions in unreached
    // blocks into one finding each.
    uint32_t run = 0;
    for (uint32_t pc = 0; pc <= prog.size(); ++pc) {
        bool dead = pc < prog.size() && !in[cfg.blockAt[pc]].reachable;
        if (dead) {
            ++run;
        } else if (run) {
            std::ostringstream os;
            os << run << " unreachable instruction" << (run > 1 ? "s" : "")
               << " at pc " << pc - run;
            if (run > 1)
                os << ".." << pc - 1;
            checker.report(CheckKind::Unreachable, Severity::Warning,
                           pc - run, os.str());
            run = 0;
        }
    }

    std::stable_sort(res.findings.begin(), res.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.pc < b.pc;
                     });
    return res;
}

std::string
formatFindings(const AnalysisResult &res, const Program &prog)
{
    std::ostringstream os;
    for (const Finding &f : res.findings) {
        os << "pc " << f.pc << " (" << prog.symbolAt(f.pc) << "): "
           << severityName(f.sev) << " [" << checkName(f.kind) << "] "
           << f.message << "\n";
    }
    return os.str();
}

} // namespace april::analysis

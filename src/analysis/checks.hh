/**
 * @file
 * The static check suite over assembled APRIL programs (`april-lint`).
 *
 * analyzeProgram() builds the CFG, runs a forward dataflow pass on
 * operandInfo() def/use sets, and walks every reachable instruction
 * checking for:
 *
 *   UninitRead       a source register no path has defined
 *   DelaySlotClobber a conditional branch's delay slot writes a
 *                    register the branch target reads first — the
 *                    write also executes on the fall-through path,
 *                    the classic misplaced-slot bug
 *   StaleFLatch      Jfull/Jempty with no reaching non-trapping f/e
 *                    access: the F condition bit was never latched
 *   MissingHandler   a reachable instruction can raise a trap whose
 *                    vector the runtime never installs (the core
 *                    panics on an unvectored trap)
 *   StrictFutureUse  a strict instruction consumes a register that
 *                    may hold a future tag; Warning when the future
 *                    trap vectors are absent, Info otherwise
 *   Unreachable      instructions no root can reach
 *   FramePointer     paths reaching the same RETT disagree on the net
 *                    INCFP/DECFP rotation (Warning), or STFP made the
 *                    rotation untrackable (Info)
 *   ProtocolHandler  a root marked as a coherence-protocol trap
 *                    handler (directory spill / invalidation walk) can
 *                    reach a RETT with a nonzero net frame rotation:
 *                    the interrupted user context resumes in the wrong
 *                    register frame. Checked with a per-root dataflow
 *                    pass so one handler's rotation cannot mask
 *                    another's
 *   MalformedCfg     structural defects: branch into / inside a delay
 *                    slot, slot past the end of the program
 *
 * The dataflow lattice tracks, per register: must-defined, and
 * may-hold-a-future (a strict op counts as a touch and clears its
 * operands, modeling a resolving touch handler); plus the F-latch
 * validity and the frame-pointer delta mod numFrames.
 */

#ifndef APRIL_ANALYSIS_CHECKS_HH
#define APRIL_ANALYSIS_CHECKS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "isa/instruction.hh"

namespace april::analysis
{

enum class CheckKind : uint8_t
{
    UninitRead,
    DelaySlotClobber,
    StaleFLatch,
    MissingHandler,
    StrictFutureUse,
    Unreachable,
    FramePointer,
    ProtocolHandler,
    MalformedCfg,
};

const char *checkName(CheckKind kind);

enum class Severity : uint8_t { Info, Warning, Error };

const char *severityName(Severity sev);

struct Finding
{
    CheckKind kind = CheckKind::UninitRead;
    Severity sev = Severity::Warning;
    uint32_t pc = 0;
    std::string message;
};

/** What the analyzer may assume about the program's environment. */
struct AnalysisOptions
{
    /** One entry point: a program entry or an installed trap vector. */
    struct Root
    {
        uint32_t pc = 0;
        std::string name;
        /// Registers guaranteed defined on entry (bit i = register i);
        /// r0 is always defined. Handlers and whole-symbol roots
        /// typically assume everything.
        uint64_t definedRegs = 0;
        bool allRegsDefined = false;
        /// Entered via a trap vector: the FramePointer check expects
        /// its RETTs to rotate consistently.
        bool handler = false;
        /// A coherence-protocol trap handler (LimitLESS directory
        /// spill or invalidation walk): every RETT it can reach must
        /// restore the frame pointer exactly (net rotation zero), or
        /// the trapped context resumes in another task's frame.
        bool protocolHandler = false;
    };

    std::vector<Root> roots;
    /// Trap vectors the runtime installs before this code runs.
    std::array<bool, size_t(TrapKind::NumKinds)> installed{};
    uint32_t numFrames = 4;

    void
    installAllHandlers()
    {
        installed.fill(true);
    }
};

/**
 * Every symbol becomes a root with all registers assumed defined and
 * every handler installed: the profile for linting whole runtime +
 * compiled-workload images, where any label may be entered through a
 * code pointer or trap vector the analysis cannot see.
 */
AnalysisOptions allSymbolRoots(const Program &prog);

struct AnalysisResult
{
    std::vector<Finding> findings;
    uint32_t numBlocks = 0;
    uint32_t reachableInsts = 0;

    /** @return true when no finding reaches @p min severity. */
    bool clean(Severity min = Severity::Warning) const;
    /** Number of findings at or above @p min severity. */
    uint32_t count(Severity min = Severity::Warning) const;
};

AnalysisResult analyzeProgram(const Program &prog,
                              const AnalysisOptions &opts);

/** Human-readable report, one line per finding, symbol-annotated. */
std::string formatFindings(const AnalysisResult &res,
                           const Program &prog);

} // namespace april::analysis

#endif // APRIL_ANALYSIS_CHECKS_HH

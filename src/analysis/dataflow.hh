/**
 * @file
 * A small generic forward dataflow engine over the analysis CFG.
 *
 * The solver is a classic worklist fixpoint: seed the root blocks,
 * apply a whole-block transfer function, and join the out-state into
 * each successor's in-state until nothing changes. State is abstract:
 *
 *   State s;                      // default-constructed = unreached
 *   bool s.joinWith(const State&) // in-place join, true when changed
 *
 * transfer(blockIndex, State&) applies one block in place. edge(from,
 * succPosition, State&) adjusts the state flowing along one specific
 * out-edge — used for a call's fall-through edge, where the callee's
 * untracked effects must be havocked in.
 *
 * Termination: joins must be monotone over a finite lattice (the
 * register-state lattice in checks.cc is a few bitsets and small
 * enums, so the chain height is tiny).
 */

#ifndef APRIL_ANALYSIS_DATAFLOW_HH
#define APRIL_ANALYSIS_DATAFLOW_HH

#include <deque>
#include <utility>
#include <vector>

#include "analysis/cfg.hh"

namespace april::analysis
{

template <typename State, typename TransferFn, typename EdgeFn>
std::vector<State>
solveForward(const Cfg &cfg,
             const std::vector<std::pair<uint32_t, State>> &seeds,
             TransferFn transfer, EdgeFn edge)
{
    std::vector<State> in(cfg.blocks.size());
    std::deque<uint32_t> work;
    std::vector<bool> queued(cfg.blocks.size(), false);

    for (const auto &[block, state] : seeds) {
        if (in[block].joinWith(state) && !queued[block]) {
            queued[block] = true;
            work.push_back(block);
        }
    }

    while (!work.empty()) {
        uint32_t b = work.front();
        work.pop_front();
        queued[b] = false;

        State out = in[b];
        transfer(b, out);

        const Block &blk = cfg.blocks[b];
        for (uint32_t pos = 0; pos < blk.succs.size(); ++pos) {
            uint32_t s = blk.succs[pos];
            State e = out;
            edge(b, pos, e);
            if (in[s].joinWith(e) && !queued[s]) {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }
    return in;
}

} // namespace april::analysis

#endif // APRIL_ANALYSIS_DATAFLOW_HH

#include "analysis/race_detector.hh"

#include <algorithm>
#include <sstream>

namespace april::analysis
{

RaceDetector::RaceDetector(uint32_t num_nodes, uint64_t max_reports,
                           stats::Group *parent)
    : stats::Group("races", parent),
      statRaces(this, "reported", "unsynchronized sharing reports"),
      statSyncWords(this, "syncWords",
                    "words exempted by f/e-bit discipline"),
      statWordsTracked(this, "wordsTracked",
                       "distinct data words observed"),
      maxReports(max_reports), held(num_nodes)
{
}

void
RaceDetector::intersect(WordState &w, const std::set<Addr> &h)
{
    if (w.locksetUniversal) {
        w.locksetUniversal = false;
        w.lockset = h;
        return;
    }
    std::set<Addr> keep;
    std::set_intersection(w.lockset.begin(), w.lockset.end(),
                          h.begin(), h.end(),
                          std::inserter(keep, keep.begin()));
    w.lockset = std::move(keep);
}

void
RaceDetector::report(WordState &w, uint64_t cycle, uint32_t node,
                     uint32_t pc, Addr addr, bool write)
{
    w.phase = Phase::Reported;
    ++statRaces;
    if (_reports.size() < maxReports)
        _reports.push_back({cycle, addr, node, pc, w.owner, write});
    if (trec) {
        trec->record({cycle, node, trace::EventKind::Race,
                      uint8_t(write), uint8_t(w.owner), addr, pc});
    }
}

void
RaceDetector::observe(uint64_t cycle, uint32_t node, uint32_t pc,
                      const MemAccess &req, const MemResult &res)
{
    Addr addr = req.addr;
    std::set<Addr> &h = held[node];

    // Full/empty and TAS traffic: synchronization, never race data.
    if (req.feTrap || req.feModify || req.op == MemOp::Tas) {
        auto [it, fresh] = words.try_emplace(addr);
        WordState &w = it->second;
        if (fresh) {
            ++statWordsTracked;
            w.owner = node;
        }
        if (!w.syncWord) {
            w.syncWord = true;
            ++statSyncWords;
        }
        bool acquired =
            (req.op == MemOp::Tas && res.data == 0) ||
            (req.op == MemOp::Load && req.feModify && res.wasFull);
        if (acquired)
            h.insert(addr);
        if (req.op == MemOp::Store && req.feModify)
            h.erase(addr);
        return;
    }
    if (req.op == MemOp::Flush)
        return;

    // Plain store to a word this node holds: the Encore unlock idiom
    // (stnw r0 into the lock cell) — a release, and the cell is a
    // sync word from here on.
    if (req.op == MemOp::Store && h.count(addr)) {
        h.erase(addr);
        auto [it, fresh] = words.try_emplace(addr);
        if (fresh) {
            ++statWordsTracked;
            it->second.owner = node;
        }
        if (!it->second.syncWord) {
            it->second.syncWord = true;
            ++statSyncWords;
        }
        return;
    }

    bool write = req.op == MemOp::Store;
    auto [it, fresh] = words.try_emplace(addr);
    WordState &w = it->second;
    if (fresh) {
        ++statWordsTracked;
        w.owner = node;             // Exclusive to the first toucher
        return;
    }
    if (w.syncWord || w.phase == Phase::Reported)
        return;

    if (w.phase == Phase::Exclusive) {
        if (node == w.owner)
            return;
        // Second node: Eraser's checking begins.
        w.phase = write ? Phase::SharedMod : Phase::Shared;
        intersect(w, h);
        if (w.phase == Phase::SharedMod && w.lockset.empty())
            report(w, cycle, node, pc, addr, write);
        return;
    }

    // Owner re-claim: a write by the original owner that would drain
    // the lockset is treated as an ownership hand-back (recycled stack
    // segments, thief markers), not a race.
    if (write && node == w.owner) {
        std::set<Addr> keep;
        std::set_intersection(w.lockset.begin(), w.lockset.end(),
                              h.begin(), h.end(),
                              std::inserter(keep, keep.begin()));
        if (!w.locksetUniversal && keep.empty()) {
            w.phase = Phase::Exclusive;
            w.locksetUniversal = true;
            w.lockset.clear();
            return;
        }
    }

    if (write)
        w.phase = Phase::SharedMod;
    intersect(w, h);
    if (w.phase == Phase::SharedMod && w.lockset.empty())
        report(w, cycle, node, pc, addr, write);
}

std::string
RaceDetector::formatReports() const
{
    std::ostringstream os;
    for (const Report &r : _reports) {
        os << "cycle " << r.cycle << ": node " << r.node << " pc "
           << r.pc << " " << (r.write ? "wrote" : "read") << " word "
           << r.addr << " also touched by node " << r.firstNode
           << " with no common lock or f/e discipline\n";
    }
    return os.str();
}

} // namespace april::analysis

/**
 * @file
 * Eraser-style dynamic race detection over full/empty-bit programs.
 *
 * The detector watches every completed data access (MemObserver) and
 * flags shared words that two nodes touch without any APRIL
 * synchronization discipline in between. Three mechanisms count as
 * synchronization:
 *
 *  - full/empty transfer: any access with feTrap or feModify set, or
 *    a TAS, marks its word as a *sync word* — a word whose f/e bit
 *    carries the protocol (producer/consumer handoffs, J-structure
 *    slots, lock cells). Sync words are exempt from race reporting;
 *    mixing plain and f/e accesses to the same word disables the word
 *    rather than producing noise.
 *  - locks: a node *acquires* addr L on a successful TAS (result 0)
 *    or a consuming load that found the word full (ldenw on a lock
 *    cell), and *releases* it on a set-to-full store (stfnw) or a
 *    plain store to a word it holds (the Encore `stnw r0` unlock
 *    idiom). Plain data words are checked Eraser-style: a word's
 *    candidate lockset starts universal and is intersected with the
 *    accessor's held set; an empty intersection once the word is
 *    write-shared is a race.
 *  - ownership transfer: per Eraser, a word is Exclusive to the first
 *    node that touches it and checking only begins when a second node
 *    appears. Additionally a *write* by the original owner that would
 *    empty the lockset re-claims the word (stack segments recycled
 *    through the free list, thief markers) — this trades missed
 *    owner-side WAR races for zero false positives on the runtime's
 *    ownership-passing idioms.
 *
 * Reports carry cycle, node, pc, and address; they feed the PR 2
 * trace layer (EventKind::Race) and a stats group. The detector is
 * passive: with it disabled (the default), machine execution is
 * untouched.
 */

#ifndef APRIL_ANALYSIS_RACE_DETECTOR_HH
#define APRIL_ANALYSIS_RACE_DETECTOR_HH

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "proc/ports.hh"

namespace april::analysis
{

class RaceDetector : public MemObserver, public stats::Group
{
  public:
    struct Report
    {
        uint64_t cycle = 0;
        Addr addr = 0;
        uint32_t node = 0;          ///< second (racing) accessor
        uint32_t pc = 0;
        uint32_t firstNode = 0;     ///< who owned/shared it before
        bool write = false;
    };

    RaceDetector(uint32_t num_nodes, uint64_t max_reports = 64,
                 stats::Group *parent = nullptr);

    /** Attach the machine's event recorder (nullptr: no events). */
    void setTraceRecorder(trace::Recorder *r) { trec = r; }

    void observe(uint64_t cycle, uint32_t node, uint32_t pc,
                 const MemAccess &req, const MemResult &res) override;

    const std::vector<Report> &reports() const { return _reports; }

    /** One line per report, for logs and test failure messages. */
    std::string formatReports() const;

    stats::Scalar statRaces;
    stats::Scalar statSyncWords;
    stats::Scalar statWordsTracked;

  private:
    enum class Phase : uint8_t
    {
        Exclusive,              ///< only `owner` has touched it
        Shared,                 ///< read by others, never written since
        SharedMod,              ///< write-shared: lockset must hold
        Reported,               ///< already flagged; stay quiet
    };

    struct WordState
    {
        Phase phase = Phase::Exclusive;
        uint32_t owner = 0;
        bool syncWord = false;      ///< carries f/e protocol: exempt
        bool locksetUniversal = true;
        std::set<Addr> lockset;     ///< candidate protecting locks
    };

    void intersect(WordState &w, const std::set<Addr> &held);
    void report(WordState &w, uint64_t cycle, uint32_t node,
                uint32_t pc, Addr addr, bool write);

    uint64_t maxReports;
    trace::Recorder *trec = nullptr;
    std::unordered_map<Addr, WordState> words;
    std::vector<std::set<Addr>> held;   ///< per-node held locks
    std::vector<Report> _reports;
};

} // namespace april::analysis

#endif // APRIL_ANALYSIS_RACE_DETECTOR_HH

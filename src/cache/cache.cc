#include "cache/cache.hh"

#include "common/bits.hh"
#include "common/debug.hh"
#include "common/logging.hh"

namespace april::cache
{

Cache::Cache(const CacheParams &p, stats::Group *parent)
    : stats::Group("cache", parent),
      statHits(this, "hits", "lookup hits"),
      statMisses(this, "misses", "lookup misses"),
      statEvictions(this, "evictions", "capacity/conflict evictions"),
      statInvalidations(this, "invalidations", "coherence invalidations"),
      params(p)
{
    if (p.assoc == 0 || p.numLines % p.assoc != 0)
        fatal("Cache: numLines must be a multiple of assoc");
    if (!isPowerOf2(p.numLines / p.assoc))
        fatal("Cache: number of sets must be a power of two");
    lines.resize(p.numLines);
    for (CacheLine &l : lines)
        l.words.resize(p.lineWords);
}

size_t
Cache::setBase(Addr line_addr) const
{
    return size_t(line_addr & (numSets() - 1)) * params.assoc;
}

CacheLine *
Cache::find(Addr line_addr)
{
    size_t base = setBase(line_addr);
    for (uint32_t w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.state != LineState::Invalid && l.lineAddr == line_addr)
            return &l;
    }
    return nullptr;
}

CacheLine *
Cache::lookup(Addr line_addr)
{
    CacheLine *l = find(line_addr);
    if (l)
        ++statHits;
    else
        ++statMisses;
    return l;
}

CacheLine *
Cache::allocate(Addr line_addr, Victim *victim)
{
    size_t base = setBase(line_addr);
    CacheLine *pick = nullptr;
    for (uint32_t w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.state == LineState::Invalid) {
            pick = &l;
            break;
        }
        if (!pick || l.lastUse < pick->lastUse)
            pick = &l;
    }

    victim->valid = pick->state != LineState::Invalid;
    if (victim->valid) {
        ++statEvictions;
        victim->lineAddr = pick->lineAddr;
        victim->state = pick->state;
        victim->words = pick->words;
        TRACE(Cache, "allocate line=", line_addr, " evicts line=",
              victim->lineAddr,
              victim->state == LineState::Modified ? " (dirty)" : "");
    } else {
        TRACE(Cache, "allocate line=", line_addr);
    }

    pick->lineAddr = line_addr;
    pick->state = LineState::Invalid;
    use(pick);
    return pick;
}

void
Cache::invalidate(Addr line_addr)
{
    size_t base = setBase(line_addr);
    for (uint32_t w = 0; w < params.assoc; ++w) {
        CacheLine &l = lines[base + w];
        if (l.state != LineState::Invalid && l.lineAddr == line_addr) {
            l.state = LineState::Invalid;
            ++statInvalidations;
            TRACE(Cache, "invalidate line=", line_addr);
            return;
        }
    }
}

} // namespace april::cache

/**
 * @file
 * The per-node processor cache (Figure 1): set-associative,
 * write-back, with full/empty bits stored alongside the data of every
 * word in a line (the controller "performs full/empty bit
 * synchronization", Section 5, so the bits must live in the cache).
 *
 * Line states follow the directory protocol: Invalid, Shared
 * (read-only), Modified (exclusive, dirty). The Table 4 default
 * geometry is 64 KB of 16-byte (4-word) blocks.
 */

#ifndef APRIL_CACHE_CACHE_HH
#define APRIL_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "isa/types.hh"

namespace april::cache
{

/** Cache geometry. */
struct CacheParams
{
    uint32_t lineWords = 4;     ///< 16-byte blocks
    uint32_t numLines = 4096;   ///< 64 KB total
    uint32_t assoc = 4;
};

enum class LineState : uint8_t
{
    Invalid,
    Shared,     ///< read-only copy
    Modified,   ///< exclusive, dirty
};

/** One cache line: state + tagged/f-e words. */
struct CacheLine
{
    Addr lineAddr = 0;          ///< line-granular address (addr/words)
    LineState state = LineState::Invalid;
    std::vector<MemWord> words;
    uint64_t lastUse = 0;
};

/** Contents evicted to make room for a fill. */
struct Victim
{
    bool valid = false;
    Addr lineAddr = 0;
    LineState state = LineState::Invalid;
    std::vector<MemWord> words;
};

/** A set-associative write-back cache. */
class Cache : public stats::Group
{
  public:
    Cache(const CacheParams &params, stats::Group *parent = nullptr);

    uint32_t lineWords() const { return params.lineWords; }

    /** Line address of a word address. */
    Addr lineOf(Addr a) const { return a / params.lineWords; }
    /** Word offset within its line. */
    uint32_t offsetOf(Addr a) const { return a % params.lineWords; }

    /** @return the line if present (any valid state), else nullptr. */
    CacheLine *lookup(Addr line_addr);

    /** lookup() without touching the hit/miss statistics (used by
     *  retry-driven controller paths, which would otherwise count one
     *  miss per held cycle). */
    CacheLine *find(Addr line_addr);

    /**
     * Allocate a frame for @p line_addr, evicting the set's LRU
     * victim if necessary (returned so the controller can write it
     * back). The returned line has Invalid state; the caller fills it.
     */
    CacheLine *allocate(Addr line_addr, Victim *victim);

    /** Drop the line (coherence invalidation). */
    void invalidate(Addr line_addr);

    /** Touch for LRU. */
    void use(CacheLine *line) { line->lastUse = ++useClock; }

    /**
     * Every line frame (including Invalid ones), for whole-machine
     * snapshots that must fold dirty lines over the memory image.
     */
    const std::vector<CacheLine> &allLines() const { return lines; }

    stats::Scalar statHits;
    stats::Scalar statMisses;
    stats::Scalar statEvictions;
    stats::Scalar statInvalidations;

  private:
    uint32_t numSets() const { return params.numLines / params.assoc; }
    size_t setBase(Addr line_addr) const;

    CacheParams params;
    std::vector<CacheLine> lines;
    uint64_t useClock = 0;
};

} // namespace april::cache

#endif // APRIL_CACHE_CACHE_HH

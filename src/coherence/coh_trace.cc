#include "coherence/coh_trace.hh"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace april::coh
{

namespace
{

/** One transaction's events, grouped for export. */
struct TxnGroup
{
    uint64_t id = 0;
    std::vector<size_t> events;     ///< indices into the flat log
};

/**
 * Group the flat log by transaction id in first-appearance order
 * (deterministic: the log itself is canonical).
 */
std::vector<TxnGroup>
groupByTxn(const std::vector<TxnEvent> &events)
{
    std::vector<TxnGroup> groups;
    std::unordered_map<uint64_t, size_t> index;
    for (size_t i = 0; i < events.size(); ++i) {
        uint64_t id = events[i].txn;
        auto [it, inserted] = index.try_emplace(id, groups.size());
        if (inserted)
            groups.push_back({id, {}});
        groups[it->second].events.push_back(i);
    }
    return groups;
}

/** Derived per-transaction summary. */
struct TxnSummary
{
    const TxnEvent *issue = nullptr;
    const TxnEvent *fill = nullptr;
    uint64_t firstCycle = 0;
    uint64_t lastCycle = 0;
    uint32_t invs = 0;
    uint32_t acks = 0;
};

TxnSummary
summarize(const std::vector<TxnEvent> &events, const TxnGroup &g)
{
    TxnSummary s;
    s.firstCycle = events[g.events.front()].cycle;
    s.lastCycle = events[g.events.back()].cycle;
    for (size_t i : g.events) {
        const TxnEvent &e = events[i];
        switch (e.phase) {
          case TxnPhase::Issue:
            if (!s.issue)
                s.issue = &e;
            break;
          case TxnPhase::Fill:
            s.fill = &e;
            break;
          case TxnPhase::InvSend:
            ++s.invs;
            break;
          case TxnPhase::InvAck:
            ++s.acks;
            break;
          default:
            break;
        }
        s.lastCycle = std::max(s.lastCycle, e.cycle);
    }
    return s;
}

} // namespace

std::vector<TxnRecord>
summarizeTransactions(const std::vector<TxnEvent> &events)
{
    std::vector<TxnRecord> records;
    for (const TxnGroup &g : groupByTxn(events)) {
        TxnSummary s = summarize(events, g);
        const TxnEvent &head = events[g.events.front()];
        TxnRecord r;
        r.id = g.id;
        r.line = head.line;
        r.requester = uint32_t(g.id >> 32);
        r.write = head.write;
        r.invs = s.invs;
        r.acks = s.acks;
        if (s.issue) {
            r.issued = s.issue->cycle;
            r.home = s.issue->peer;
            r.frame = s.issue->frame;
        }
        if (s.fill)
            r.filled = s.fill->cycle;
        r.complete = s.issue && s.fill;
        records.push_back(r);
    }
    return records;
}

void
TxnTracer::writeJson(std::ostream &os) const
{
    os << "{\"schemaVersion\":1,\"dropped\":" << dropped_
       << ",\"transactions\":[";
    bool first_txn = true;
    for (const TxnGroup &g : groupByTxn(events_)) {
        TxnSummary s = summarize(events_, g);
        os << (first_txn ? "\n" : ",\n");
        first_txn = false;
        os << "{\"id\":" << g.id
           << ",\"node\":" << uint32_t(g.id >> 32)
           << ",\"line\":" << events_[g.events.front()].line
           << ",\"write\":" << (events_[g.events.front()].write ? 1 : 0);
        if (s.issue) {
            os << ",\"issued\":" << s.issue->cycle
               << ",\"home\":" << s.issue->peer
               << ",\"frame\":" << uint32_t(s.issue->frame);
        }
        if (s.fill) {
            os << ",\"filled\":" << s.fill->cycle;
            if (s.issue)
                os << ",\"latency\":" << (s.fill->cycle - s.issue->cycle);
        }
        os << ",\"complete\":" << (s.issue && s.fill ? 1 : 0)
           << ",\"invs\":" << s.invs << ",\"acks\":" << s.acks
           << ",\"events\":[";
        bool first_ev = true;
        for (size_t i : g.events) {
            const TxnEvent &e = events_[i];
            os << (first_ev ? "" : ",");
            first_ev = false;
            os << "{\"c\":" << e.cycle << ",\"n\":" << e.node
               << ",\"ph\":\"" << txnPhaseName(e.phase)
               << "\",\"peer\":" << e.peer << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
}

namespace
{

/** One Chrome trace-event object on an open event array. */
void
writeChromeEvent(std::ostream &os, bool &first, const std::string &name,
                 const char *ph, uint64_t ts, uint32_t pid, uint64_t id,
                 const std::string &args)
{
    os << (first ? "\n" : ",\n") << "{\"name\":\"" << name
       << "\",\"ph\":\"" << ph << "\",\"cat\":\"txn\",\"ts\":" << ts
       << ",\"pid\":" << pid << ",\"tid\":0,\"id\":" << id;
    if (!args.empty())
        os << ",\"args\":{" << args << "}";
    os << "}";
}

} // namespace

void
TxnTracer::writeChromeEvents(std::ostream &os, bool &first) const
{
    for (const TxnGroup &g : groupByTxn(events_)) {
        TxnSummary s = summarize(events_, g);
        const TxnEvent &head = events_[g.events.front()];
        uint32_t requester = uint32_t(g.id >> 32);
        std::string name = std::string(head.write ? "write" : "read") +
                           " line " + std::to_string(head.line);
        // Async span covering the transaction's lifetime on the
        // requester's process.
        writeChromeEvent(os, first, name, "b", s.firstCycle, requester,
                         g.id,
                         "\"line\":" + std::to_string(head.line) +
                             ",\"invs\":" + std::to_string(s.invs) +
                             ",\"acks\":" + std::to_string(s.acks));
        // Flow arrows stitching each leg to the node that acted.
        for (size_t k = 0; k < g.events.size(); ++k) {
            const TxnEvent &e = events_[g.events[k]];
            const char *ph = k == 0                      ? "s"
                             : k + 1 == g.events.size() ? "f"
                                                        : "t";
            writeChromeEvent(os, first, txnPhaseName(e.phase), ph,
                             e.cycle, e.node, g.id,
                             "\"peer\":" + std::to_string(e.peer));
        }
        writeChromeEvent(os, first, name, "e", s.lastCycle, requester,
                         g.id, "");
    }
}

} // namespace april::coh

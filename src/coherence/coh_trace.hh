/**
 * @file
 * Coherence-transaction tracing: every remote memory transaction
 * (miss -> directory request -> invalidations/acks -> data fill ->
 * MSHR clear) becomes a causally linked span keyed by a stable
 * transaction id.
 *
 * Transaction ids are (requester node << 32 | per-node sequence),
 * assigned by the requesting Controller when the MSHR is allocated,
 * so they are deterministic regardless of host thread count or
 * cycle-skipping. The home copies the id into every message it sends
 * on the transaction's behalf (Inv, WbReq, replies) and sharers copy
 * it into their acknowledgments, giving each protocol leg a parent.
 *
 * Like trace::Recorder, the tracer is a flat cycle-stamped append-only
 * log with a deterministic capacity cap. Under the parallel engine
 * each shard records into its own lane; lanes merge canonically by
 * (cycle, node) — every event is recorded by the controller whose
 * node it names, so the merged stream is bit-identical to the
 * sequential one (same argument as AlewifeMachine::mergeTraceLanes).
 */

#ifndef APRIL_COHERENCE_COH_TRACE_HH
#define APRIL_COHERENCE_COH_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "isa/types.hh"

namespace april::coh
{

/** Protocol legs of one transaction, in causal order. */
enum class TxnPhase : uint8_t
{
    Issue,      ///< requester: MSHR allocated, request sent to home
    HomeQueue,  ///< home: request queued behind a busy line
    HomeHandle, ///< home: directory takes up the request
    InvSend,    ///< home -> sharer (peer): invalidation sent
    InvAck,     ///< home: acknowledgment from sharer (peer) arrived
    WbReqSend,  ///< home -> owner (peer): dirty-line recall sent
    WbRecv,     ///< home: WbData/WbEmpty from owner (peer) arrived
    ReplySend,  ///< home -> requester: data grant dispatched
    Fill,       ///< requester: line filled, MSHR cleared
};

/** Canonical phase name ("Issue", "InvSend", ...). */
inline const char *
txnPhaseName(TxnPhase p)
{
    switch (p) {
      case TxnPhase::Issue: return "Issue";
      case TxnPhase::HomeQueue: return "HomeQueue";
      case TxnPhase::HomeHandle: return "HomeHandle";
      case TxnPhase::InvSend: return "InvSend";
      case TxnPhase::InvAck: return "InvAck";
      case TxnPhase::WbReqSend: return "WbReqSend";
      case TxnPhase::WbRecv: return "WbRecv";
      case TxnPhase::ReplySend: return "ReplySend";
      case TxnPhase::Fill: return "Fill";
    }
    return "?";
}

/** One recorded transaction leg. `node` is always the controller that
 *  recorded the event (the merge key); `peer` is the other end. */
struct TxnEvent
{
    uint64_t cycle = 0;
    uint64_t txn = 0;
    Addr line = 0;
    uint32_t node = 0;
    uint32_t peer = 0;
    TxnPhase phase = TxnPhase::Issue;
    uint8_t frame = 0;      ///< requester task frame (Issue/Fill only)
    bool write = false;

    bool operator==(const TxnEvent &) const = default;
};

/** Flattened per-transaction summary (reports, invariant checks). */
struct TxnRecord
{
    uint64_t id = 0;
    Addr line = 0;
    uint32_t requester = 0;     ///< id >> 32
    uint32_t home = 0;          ///< valid when issued
    uint8_t frame = 0;          ///< requester task frame when issued
    bool write = false;
    bool complete = false;      ///< both Issue and Fill recorded
    uint64_t issued = 0;        ///< Issue cycle (valid when an Issue
                                ///< survived the capacity cap)
    uint64_t filled = 0;        ///< Fill cycle (valid when complete)
    uint32_t invs = 0;          ///< InvSend legs recorded
    uint32_t acks = 0;          ///< InvAck legs recorded

    uint64_t latency() const { return complete ? filled - issued : 0; }
};

/** Summaries of @p events grouped by transaction id, in
 *  first-appearance order (deterministic for a given log). */
std::vector<TxnRecord>
summarizeTransactions(const std::vector<TxnEvent> &events);

/** The per-machine (or per-shard lane) transaction log. */
class TxnTracer
{
  public:
    explicit TxnTracer(uint64_t capacity) : capacity_(capacity)
    {
        events_.reserve(1024);
    }

    /** Append one leg (drops deterministically once full). */
    void
    record(const TxnEvent &e)
    {
        if (events_.size() < capacity_)
            events_.push_back(e);
        else
            ++dropped_;
    }

    const std::vector<TxnEvent> &events() const { return events_; }
    std::vector<TxnEvent> &mutableEvents() { return events_; }
    uint64_t dropped() const { return dropped_; }
    uint64_t capacity() const { return capacity_; }

    /** Fold another lane's overflow count into this log. */
    void addDropped(uint64_t n) { dropped_ += n; }

    /** Discard all recorded events (a merged-out lane). */
    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /**
     * Serialize as structured JSON: events grouped into transactions
     * in first-appearance order, each with issue/fill cycles, latency
     * and invalidation/ack tallies. Deterministic for a given log, so
     * differential tests compare serializations byte for byte.
     */
    void writeJson(std::ostream &os) const;

    /**
     * Append Perfetto events for the recorded transactions to an open
     * Chrome-trace event array (trace::Recorder::ExtraEventWriter
     * shape): one async "txn" span per transaction on the requester's
     * process plus flow arrows (s/t/f) threading requester -> home ->
     * requester through every leg.
     */
    void writeChromeEvents(std::ostream &os, bool &first) const;

  private:
    uint64_t capacity_;
    std::vector<TxnEvent> events_;
    uint64_t dropped_ = 0;
};

} // namespace april::coh

#endif // APRIL_COHERENCE_COH_TRACE_HH

#include "coherence/controller.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/debug.hh"
#include "common/logging.hh"
#include "proc/fe_semantics.hh"
#include "proc/processor.hh"

namespace april::coh
{

Controller::Controller(const ControllerParams &p, uint32_t node_id,
                       uint32_t num_frames, SharedMemory *memory,
                       Fabric *fabric_, stats::Group *parent)
    : stats::Group("ctrl" + std::to_string(node_id), parent),
      statLocalMisses(this, "localMisses", "misses served locally"),
      statRemoteMisses(this, "remoteMisses",
                       "misses needing the network"),
      statInvSent(this, "invalidations", "invalidations sent"),
      statInvAcks(this, "invAcks",
                  "invalidation acknowledgments received"),
      statWritebacks(this, "writebacks", "dirty lines written back"),
      statRemoteLatency(this, "remoteLatency",
                        "issue-to-fill cycles of remote transactions"),
      statSharerCount(this, "sharerCount",
                      "sharer-set width at directory transitions"),
      statInvPerWrite(this, "invPerWrite",
                      "invalidations per exclusive request"),
      statOverflowTraps(this, "overflowTraps",
                        "directory pointer-overflow traps taken"),
      statSpilledPtrs(this, "spilledPtrs",
                      "hardware pointers dumped to the spill table"),
      statSpillWalks(this, "spillWalks",
                     "exclusive requests that walked the spill table"),
      statInboxPeak(this, "inboxPeak",
                    "high-water mark of the message inbox"),
      statInboxDepth(this, "inboxDepth",
                     "instantaneous message-inbox depth",
                     [this] { return double(inbox.size()); }),
      params(p), nodeId(node_id), mem(memory), fabric(fabric_),
      _cache(p.cache, this), mshrs(num_frames)
{
    statDirTransitions.reserve(kNumDirStates * kNumDirStates);
    for (size_t old_s = 0; old_s < kNumDirStates; ++old_s) {
        for (size_t new_s = 0; new_s < kNumDirStates; ++new_s) {
            std::string from = dirStateName(DirState(old_s));
            std::string to = dirStateName(DirState(new_s));
            statDirTransitions.emplace_back(
                this, "dir" + from + "To" + to,
                "directory transitions " + from + " -> " + to);
        }
    }
}

uint32_t
Controller::homeOf(Addr line_addr) const
{
    return mem->homeNode(line_addr * params.cache.lineWords);
}

std::vector<MemWord>
Controller::readMemoryLine(Addr line_addr) const
{
    std::vector<MemWord> words(params.cache.lineWords);
    for (uint32_t i = 0; i < params.cache.lineWords; ++i)
        words[i] = mem->word(line_addr * params.cache.lineWords + i);
    return words;
}

void
Controller::writeMemoryLine(Addr line_addr,
                            const std::vector<MemWord> &words)
{
    for (uint32_t i = 0; i < params.cache.lineWords; ++i)
        mem->word(line_addr * params.cache.lineWords + i) = words[i];
}

void
Controller::pushDelayed(uint64_t due, uint32_t to, const Message &msg)
{
    delayed.push_back({due, delayedSeq++, to, msg});
    std::push_heap(delayed.begin(), delayed.end());
}

void
Controller::send(uint32_t to, Message msg, uint32_t extra)
{
    msg.from = nodeId;
    pushDelayed(fabric->now() + params.occupancy + extra, to, msg);
}

void
Controller::sendAfterMemory(uint32_t to, Message msg, uint32_t extra)
{
    msg.from = nodeId;
    pushDelayed(fabric->now() + params.occupancy + params.memLatency +
                    extra,
                to, msg);
}

void
Controller::dispatch(uint32_t to, const Message &msg)
{
    if (to == nodeId) {
        inbox.push_back(msg);
    } else {
        fabric->transmit(to, msg,
                         carriesData(msg.type) ? params.dataFlits
                                               : params.reqFlits);
    }
}

void
Controller::tick()
{
    // Dispatch due delayed work (occupancy / memory latency) in
    // (due, insertion) order off the heap.
    while (!delayed.empty() && delayed.front().due <= fabric->now()) {
        std::pop_heap(delayed.begin(), delayed.end());
        Delayed d = std::move(delayed.back());
        delayed.pop_back();
        dispatch(d.to, d.msg);
    }
    // Handle a bounded number of messages per cycle (occupancy).
    int budget = 2;
    while (budget-- > 0 && !inbox.empty()) {
        Message msg = inbox.front();
        inbox.pop_front();
        handleMessage(msg);
    }
}

void
Controller::receive(const Message &msg)
{
    inbox.push_back(msg);
    if (double(inbox.size()) > statInboxPeak.value())
        statInboxPeak = double(inbox.size());
}

uint64_t
Controller::nextEventCycle() const
{
    // Queued messages are handled on the very next tick.
    uint64_t now = fabric->now();
    if (!inbox.empty())
        return now + 1;
    // Delayed work dispatches at its due time; entries already due
    // (scheduled this cycle, after our tick ran) go out next tick.
    // The heap root is the minimum due: O(1).
    if (delayed.empty())
        return kNeverCycle;
    return std::max(delayed.front().due, now + 1);
}

bool
Controller::fillReady(uint8_t frame) const
{
    return !mshrs.at(frame).valid;
}

void
Controller::recordTransition(const DirEntry &e, DirState old_state,
                             Addr line_addr, uint32_t requester,
                             MsgType cause)
{
    if (tlisten) {
        tlisten->onDirTransition(nodeId, line_addr, old_state, cause,
                                 e.state, requester);
    }
    if (trec) {
        trec->record({fabric->now(), nodeId,
                      trace::EventKind::Coherence, uint8_t(old_state),
                      uint8_t(e.state), line_addr, requester});
    }
    // Always-on census: sharer-set width after the transition, the
    // per-transition protocol mix, and the per-line churn record.
    uint32_t width = e.state == DirState::Shared
                         ? uint32_t(e.sharers.size())
                         : (e.state == DirState::Exclusive ? 1 : 0);
    statSharerCount.sample(int64_t(width));
    ++statDirTransitions[size_t(old_state) * kNumDirStates +
                         size_t(e.state)];
    LineCensus &c = census[line_addr];
    ++c.transitions;
    c.maxSharers = std::max(c.maxSharers, width);
    TRACE(Coh, "c", fabric->now(), " n", nodeId, " line=", line_addr,
          " ", dirStateName(old_state), "->", dirStateName(e.state),
          " requester=", requester);
}

uint32_t
Controller::addSharer(DirEntry &e, Addr line_addr, uint32_t sharer)
{
    if (!e.sharers.insert(sharer).second)
        return 0;               // already present: no new pointer
    if (params.dirScheme != DirScheme::LimitedPtr)
        return 0;
    uint32_t resident = uint32_t(e.sharers.size()) - e.spilled;
    if (resident <= params.dirPointers)
        return 0;               // the new sharer fit in hardware
    // Overflow trap: the software handler dumps every resident
    // pointer (including the new sharer's) into the spill table,
    // leaving the hardware array empty. The triggering transaction
    // pays the handler's occupancy.
    ++statOverflowTraps;
    statSpilledPtrs += double(resident);
    e.spilled = uint32_t(e.sharers.size());
    ++census[line_addr].spills;
    TRACE(Coh, "c", fabric->now(), " n", nodeId, " line=", line_addr,
          " overflow trap: ", resident, " ptrs spilled (",
          e.sharers.size(), " sharers)");
    return params.spillPenalty;
}

void
Controller::clearSharers(DirEntry &e)
{
    e.sharers.clear();
    e.spilled = 0;
}

uint32_t
Controller::spillWalkCost(DirEntry &e)
{
    if (params.dirScheme != DirScheme::LimitedPtr || e.spilled == 0)
        return 0;
    ++statSpillWalks;
    return params.spillPenalty;
}

// ---------------------------------------------------------------------
// Processor side
// ---------------------------------------------------------------------

MemResult
Controller::access(const MemAccess &req)
{
    Addr line_addr = _cache.lineOf(req.addr);
    uint32_t offset = _cache.offsetOf(req.addr);
    bool need_m = req.op == MemOp::Store || req.op == MemOp::Tas ||
                  (req.op == MemOp::Load && req.feModify);

    if (req.op == MemOp::Flush) {
        // Software-enforced coherence support (Section 3.4): write
        // back and invalidate; dirty data increments the fence
        // counter until the home acknowledges.
        cache::CacheLine *line = _cache.find(line_addr);
        MemResult res = MemResult::ready(0, true);
        if (line && line->state == cache::LineState::Modified) {
            Message wb;
            wb.type = MsgType::WbData;
            wb.lineAddr = line_addr;
            wb.requester = nodeId;
            wb.fenceAck = true;
            wb.data = line->words;
            send(homeOf(line_addr), wb);
            ++statWritebacks;
            res.fenceDelta = 1;
        }
        if (line)
            _cache.invalidate(line_addr);
        return res;
    }

    cache::CacheLine *line = _cache.find(line_addr);
    if (line && (line->state == cache::LineState::Modified ||
                 (!need_m && line->state == cache::LineState::Shared))) {
        ++_cache.statHits;
        _cache.use(line);
        MemResult res = applyFeAccess(line->words[offset], req);
        // Every data access eventually completes through this hit
        // path (misses retry until they fill), so observing Ready
        // results here sees each architectural access exactly once.
        if (observer && res.kind == MemResult::Kind::Ready) {
            observer->observe(fabric->now(), nodeId,
                              proc ? proc->pc() : 0, req, res);
        }
        return res;
    }

    uint32_t home = homeOf(line_addr);
    Mshr &m = mshrs.at(req.frame);

    if (!(m.valid && m.lineAddr == line_addr)) {
        if (m.valid) {
            // The frame already has a different transaction in
            // flight (e.g. a handler touching another line): hold.
            return MemResult::retry();
        }
        ++_cache.statMisses;
        m.valid = true;
        m.lineAddr = line_addr;
        m.write = need_m;
        m.issued = fabric->now();
        m.remote = home != nodeId;
        m.txn = (uint64_t(nodeId) << 32) | ++txnSeq;
        Message msg;
        msg.type = need_m ? MsgType::WriteReq : MsgType::ReadReq;
        msg.lineAddr = line_addr;
        msg.requester = nodeId;
        msg.txn = m.txn;
        send(home, msg);
        traceTxn(m.txn, TxnPhase::Issue, line_addr, home, need_m,
                 req.frame);
        if (home == nodeId)
            ++statLocalMisses;
        else
            ++statRemoteMisses;
    }

    // "The cache controller forces a context switch on the processor,
    // typically on remote network requests" — local misses hold.
    if (home != nodeId && req.miss == MissPolicy::Trap &&
        req.trapsEnabled) {
        return MemResult::forceSwitch();
    }
    return MemResult::retry();
}

void
Controller::evict(const cache::Victim &victim)
{
    if (!victim.valid)
        return;
    if (victim.state == cache::LineState::Modified) {
        Message wb;
        wb.type = MsgType::WbData;
        wb.lineAddr = victim.lineAddr;
        wb.requester = nodeId;
        wb.data = victim.words;
        send(homeOf(victim.lineAddr), wb);
        ++statWritebacks;
    }
    // Shared lines drop silently; the stale sharer bit is harmless
    // (we acknowledge any later invalidation without a copy).
}

void
Controller::fill(const Message &msg)
{
    // An upgrade reply refreshes the line already resident (filling a
    // second way would leave a stale duplicate that lookups can hit).
    cache::CacheLine *line = _cache.find(msg.lineAddr);
    if (!line) {
        cache::Victim victim;
        line = _cache.allocate(msg.lineAddr, &victim);
        evict(victim);
    }
    line->words = msg.data;
    line->state = msg.type == MsgType::WriteReply
        ? cache::LineState::Modified
        : cache::LineState::Shared;
    _cache.use(line);
    for (size_t f = 0; f < mshrs.size(); ++f) {
        Mshr &m = mshrs[f];
        if (m.valid && m.lineAddr == msg.lineAddr) {
            m.valid = false;
            if (m.remote)
                statRemoteLatency.sample(
                    int64_t(fabric->now() - m.issued));
            // Piggybacked frames complete under their own ids, so
            // every issued transaction gets exactly one Fill.
            traceTxn(m.txn, TxnPhase::Fill, msg.lineAddr, msg.from,
                     m.write, uint8_t(f));
        }
    }
}

// ---------------------------------------------------------------------
// Home (directory) side
// ---------------------------------------------------------------------

void
Controller::handleMessage(const Message &msg)
{
    TRACE(Coh, "c", fabric->now(), " n", nodeId, " handle ",
          msgTypeName(msg.type), " line=", msg.lineAddr, " from=",
          msg.from, " req=", msg.requester);
    switch (msg.type) {
      case MsgType::ReadReq:
      case MsgType::WriteReq: {
        DirEntry &e = directory[msg.lineAddr];
        if (e.busy) {
            traceTxn(msg.txn, TxnPhase::HomeQueue, msg.lineAddr,
                     msg.requester, msg.type == MsgType::WriteReq);
            e.waiting.push_back(msg);
            return;
        }
        handleHomeRequest(msg, e);
        return;
      }

      case MsgType::InvAck: {
        DirEntry &e = directory[msg.lineAddr];
        // Count and trace the ack before the staleness check: stale
        // acks carry their Inv's transaction id, so per-transaction
        // InvSend/InvAck legs balance exactly.
        ++statInvAcks;
        traceTxn(msg.txn, TxnPhase::InvAck, msg.lineAddr, msg.from,
                 true);
        if (!e.busy || e.wait != DirEntry::Wait::Acks ||
            e.pendingAcks == 0) {
            return;             // stale ack for a dropped copy
        }
        if (--e.pendingAcks == 0)
            completePending(msg.lineAddr, e, MsgType::InvAck);
        return;
      }

      case MsgType::WbData: {
        DirEntry &e = directory[msg.lineAddr];
        traceTxn(msg.txn, TxnPhase::WbRecv, msg.lineAddr, msg.from,
                 false);
        writeMemoryLine(msg.lineAddr, msg.data);
        if (msg.fenceAck) {
            Message ack;
            ack.type = MsgType::FenceAck;
            ack.lineAddr = msg.lineAddr;
            send(msg.requester, ack);
        }
        if (e.state == DirState::Exclusive && e.owner == msg.from) {
            if (e.busy && e.wait == DirEntry::Wait::Data) {
                completePending(msg.lineAddr, e, MsgType::WbData);
            } else if (!e.busy) {
                // Unsolicited eviction: the owner gave up its copy.
                e.state = DirState::Uncached;
                clearSharers(e);
                recordTransition(e, DirState::Exclusive, msg.lineAddr,
                                 msg.from, MsgType::WbData);
            }
        }
        return;
      }

      case MsgType::WbEmpty: {
        // The owner's copy raced away via an eviction whose WbData
        // (FIFO-ordered on the same route) has already updated memory.
        DirEntry &e = directory[msg.lineAddr];
        traceTxn(msg.txn, TxnPhase::WbRecv, msg.lineAddr, msg.from,
                 false);
        // The txn match pins the answer to the recall it was sent
        // for: a WbEmpty for an already-settled recall must not
        // complete a LATER recall to the same (re-granted) owner,
        // which would hand out a second Modified copy while the real
        // answer is still in flight. Found by the april-mc explorer
        // (SWMR counterexample at 2 nodes under unbounded message
        // delay).
        if (e.busy && e.wait == DirEntry::Wait::Data &&
            e.state == DirState::Exclusive && e.owner == msg.from &&
            msg.txn == e.pendingReq.txn) {
            completePending(msg.lineAddr, e, MsgType::WbEmpty);
        }
        return;
      }

      case MsgType::Unpend: {
        DirEntry &e = directory[msg.lineAddr];
        e.busy = false;
        drainWaiting(msg.lineAddr);
        return;
      }

      case MsgType::Inv: {
        _cache.invalidate(msg.lineAddr);
        Message ack;
        ack.type = MsgType::InvAck;
        ack.lineAddr = msg.lineAddr;
        ack.txn = msg.txn;
        send(msg.from, ack);
        return;
      }

      case MsgType::WbReq: {
        cache::CacheLine *line = _cache.find(msg.lineAddr);
        if (line && line->state == cache::LineState::Modified) {
            Message wb;
            wb.type = MsgType::WbData;
            wb.lineAddr = msg.lineAddr;
            wb.requester = nodeId;
            wb.data = line->words;
            wb.txn = msg.txn;
            if (msg.isWrite)
                _cache.invalidate(msg.lineAddr);
            else
                line->state = cache::LineState::Shared;
            send(msg.from, wb);
            ++statWritebacks;
        } else {
            Message none;
            none.type = MsgType::WbEmpty;
            none.lineAddr = msg.lineAddr;
            none.txn = msg.txn;
            send(msg.from, none);
        }
        return;
      }

      case MsgType::ReadReply:
      case MsgType::WriteReply:
        fill(msg);
        return;

      case MsgType::FenceAck:
        if (proc)
            proc->decFence();
        return;
    }
}

void
Controller::handleHomeRequest(const Message &msg, DirEntry &e)
{
    bool write = msg.type == MsgType::WriteReq;
    Addr line_addr = msg.lineAddr;

    traceTxn(msg.txn, TxnPhase::HomeHandle, line_addr, msg.requester,
             write);

    // An Exclusive entry whose owner re-requests has lost its copy to
    // an eviction (whose WbData arrived first, FIFO): fold to
    // Uncached.
    if (e.state == DirState::Exclusive && e.owner == msg.requester) {
        e.state = DirState::Uncached;
        clearSharers(e);
        recordTransition(e, DirState::Exclusive, line_addr,
                         msg.requester, msg.type);
    }

    DirState old_state = e.state;

    switch (e.state) {
      case DirState::Uncached: {
        e.busy = true;
        uint32_t extra = 0;
        if (write) {
            e.state = DirState::Exclusive;
            e.owner = msg.requester;
            clearSharers(e);
            statInvPerWrite.sample(0);
        } else {
            e.state = DirState::Shared;
            clearSharers(e);
            extra = addSharer(e, line_addr, msg.requester);
        }
        recordTransition(e, old_state, line_addr, msg.requester,
                         msg.type);
        replyAndUnpend(line_addr, msg.requester, write, msg.txn,
                       extra);
        return;
      }

      case DirState::Shared: {
        if (!write) {
            e.busy = true;
            uint32_t extra = addSharer(e, line_addr, msg.requester);
            recordTransition(e, old_state, line_addr, msg.requester,
                             msg.type);
            replyAndUnpend(line_addr, msg.requester, false, msg.txn,
                           extra);
            return;
        }
        // Strong coherence: invalidate every other sharer and wait
        // for all acknowledgments before granting exclusivity.
        std::set<uint32_t> to_inv = e.sharers;
        to_inv.erase(msg.requester);
        statInvPerWrite.sample(int64_t(to_inv.size()));
        if (to_inv.empty()) {
            e.busy = true;
            e.state = DirState::Exclusive;
            e.owner = msg.requester;
            clearSharers(e);
            recordTransition(e, old_state, line_addr, msg.requester,
                             msg.type);
            replyAndUnpend(line_addr, msg.requester, true, msg.txn);
            return;
        }
        e.busy = true;
        e.wait = DirEntry::Wait::Acks;
        e.pendingReq = msg;
        e.pendingAcks = uint32_t(to_inv.size());
        census[line_addr].invs += to_inv.size();
        // Sharers beyond the hardware pointers cost a software walk
        // of the spill table before the invalidations can go out.
        uint32_t walk = spillWalkCost(e);
        for (uint32_t s : to_inv) {
            Message inv;
            inv.type = MsgType::Inv;
            inv.lineAddr = line_addr;
            inv.txn = msg.txn;
            send(s, inv, walk);
            ++statInvSent;
            traceTxn(msg.txn, TxnPhase::InvSend, line_addr, s, true);
        }
        return;
      }

      case DirState::Exclusive: {
        e.busy = true;
        e.wait = DirEntry::Wait::Data;
        e.pendingReq = msg;
        if (write)
            statInvPerWrite.sample(1);  // the owner loses its copy
        Message wbreq;
        wbreq.type = MsgType::WbReq;
        wbreq.lineAddr = line_addr;
        wbreq.isWrite = write;
        wbreq.txn = msg.txn;
        send(e.owner, wbreq);
        traceTxn(msg.txn, TxnPhase::WbReqSend, line_addr, e.owner,
                 write);
        return;
      }
    }
}

void
Controller::replyAndUnpend(Addr line_addr, uint32_t requester,
                           bool write, uint64_t txn, uint32_t extra)
{
    Message reply;
    reply.type = write ? MsgType::WriteReply : MsgType::ReadReply;
    reply.lineAddr = line_addr;
    reply.data = readMemoryLine(line_addr);
    reply.txn = txn;
    sendAfterMemory(requester, reply, extra);
    traceTxn(txn, TxnPhase::ReplySend, line_addr, requester, write);
    // Scheduled after the reply at the same time: dispatch order in
    // the delayed queue (and FIFO network routes) keeps the grant
    // ahead of anything a drained waiter triggers.
    Message unpend;
    unpend.type = MsgType::Unpend;
    unpend.lineAddr = line_addr;
    sendAfterMemory(nodeId, unpend, extra);
}

void
Controller::completePending(Addr line_addr, DirEntry &e, MsgType cause)
{
    Message req = e.pendingReq;
    bool write = req.type == MsgType::WriteReq;

    uint32_t prev_owner = e.owner;
    bool was_exclusive = e.state == DirState::Exclusive;
    uint32_t extra = 0;
    if (write) {
        e.state = DirState::Exclusive;
        e.owner = req.requester;
        clearSharers(e);
    } else {
        e.state = DirState::Shared;
        clearSharers(e);
        if (was_exclusive) {
            // Downgraded owner kept a copy.
            extra += addSharer(e, line_addr, prev_owner);
        }
        extra += addSharer(e, line_addr, req.requester);
    }
    e.wait = DirEntry::Wait::None;
    e.pendingAcks = 0;
    recordTransition(e,
                     was_exclusive ? DirState::Exclusive
                                   : DirState::Shared,
                     line_addr, req.requester, cause);
    replyAndUnpend(line_addr, req.requester, write, req.txn, extra);
}

void
Controller::drainWaiting(Addr line_addr)
{
    DirEntry &e = directory[line_addr];
    while (!e.busy && !e.waiting.empty()) {
        Message next = e.waiting.front();
        e.waiting.pop_front();
        handleHomeRequest(next, e);
    }
}

} // namespace april::coh

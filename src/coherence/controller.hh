/**
 * @file
 * The per-node cache/directory controller (Figure 1, Section 5).
 *
 * The controller sits between the APRIL core and the machine:
 *
 *  - it services processor accesses out of the local cache, applying
 *    the full/empty semantics (it "performs full/empty bit
 *    synchronization");
 *  - on a miss it runs the directory protocol, deciding per access
 *    whether to hold the processor (MHOLD -> Retry) or to force a
 *    context switch (MEXC -> Switch): "a context switch occurs
 *    whenever the network must be used to satisfy a request"
 *    (Section 2.1);
 *  - it is the home site for its node's memory range: a full-map
 *    directory with strong coherence (invalidation acknowledgments
 *    counted before exclusive ownership is granted);
 *  - one outstanding transaction per hardware task frame, matching
 *    the switch-spinning design.
 */

#ifndef APRIL_COHERENCE_CONTROLLER_HH
#define APRIL_COHERENCE_CONTROLLER_HH

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "cache/cache.hh"
#include "coherence/coh_trace.hh"
#include "coherence/protocol.hh"
#include "common/trace.hh"
#include "mem/memory.hh"
#include "proc/ports.hh"

namespace april
{
class Processor;
} // namespace april

namespace april::coh
{
using april::Processor;

/** Controller configuration. */
struct ControllerParams
{
    cache::CacheParams cache;
    uint32_t memLatency = 10;   ///< local DRAM access (Table 4)
    uint32_t occupancy = 2;     ///< controller cycles per message
    uint32_t reqFlits = 2;      ///< network size of a request
    uint32_t dataFlits = 6;     ///< network size of a data-carrying msg
    /// Directory organization; FullMap is the paper's (and the
    /// differential oracle's) scheme.
    DirScheme dirScheme = DirScheme::FullMap;
    /// LimitedPtr: hardware pointers per line before the overflow
    /// trap. 0 forces the spill handler on every sharer addition —
    /// the fuzzer's worst case.
    uint32_t dirPointers = 4;
    /// LimitedPtr: software spill-handler occupancy in cycles, paid
    /// by the transaction that overflows the pointer array and by
    /// exclusive requests that must walk the spilled-sharer table.
    uint32_t spillPenalty = 50;
};

/**
 * Observer of every recorded directory transition, together with the
 * message type that caused it. The model checker's conformance bridge
 * (mc::Conformance) implements this to assert each live transition
 * legal under the protocol spec; recording must be thread-safe (the
 * parallel engine calls it from shard workers) and must not throw.
 */
class TransitionListener
{
  public:
    virtual ~TransitionListener() = default;

    virtual void onDirTransition(uint32_t home, Addr line_addr,
                                 DirState old_state, MsgType cause,
                                 DirState new_state,
                                 uint32_t requester) = 0;
};

/** Message transport provided by the enclosing machine. */
class Fabric
{
  public:
    virtual ~Fabric() = default;

    /** Ship @p msg to node @p to (@p flits for the network model). */
    virtual void transmit(uint32_t to, const Message &msg,
                          uint32_t flits) = 0;
    virtual uint64_t now() const = 0;
};

/** The cache + directory controller; also the core's memory port. */
class Controller : public MemPort, public stats::Group
{
  public:
    Controller(const ControllerParams &params, uint32_t node_id,
               uint32_t num_frames, SharedMemory *memory,
               Fabric *fabric, stats::Group *parent = nullptr);

    /** Wire up the processor (for fence acknowledgments). */
    void setProcessor(Processor *p) { proc = p; }

    /** Attach the machine's event recorder (nullptr: tracing off). */
    void setTraceRecorder(trace::Recorder *r) { trec = r; }

    /** Attach the machine's coherence-transaction tracer (nullptr:
     *  transaction tracing off; census counters stay always-on). */
    void setTxnTracer(TxnTracer *t) { ttrace = t; }

    /** Attach a completed-access observer (nullptr: observation off). */
    void setObserver(MemObserver *o) { observer = o; }

    /** Attach a directory-transition listener (nullptr: off). */
    void setTransitionListener(TransitionListener *l) { tlisten = l; }

    // MemPort interface (processor side).
    MemResult access(const MemAccess &req) override;
    bool fillReady(uint8_t frame) const override;

    /** A network message arrived for this node. */
    void receive(const Message &msg);

    /** Advance one cycle: dispatch due work. */
    void tick();

    /**
     * Earliest cycle at which this controller can do observable work:
     * the next tick when the inbox holds messages, the earliest due
     * time of the occupancy/memory-latency queue otherwise, or
     * kNeverCycle when fully idle (outstanding MSHRs wait on messages
     * and generate no events themselves). Used by the machine's
     * cycle-skipping run loop.
     */
    uint64_t nextEventCycle() const;

    cache::Cache &cacheRef() { return _cache; }

    /** Always-on census of one home line: how often it transitions,
     *  how many invalidations it caused, how wide its sharer set got.
     *  The "churn" top-N of april-coh reports. */
    struct LineCensus
    {
        uint64_t transitions = 0;
        uint64_t invs = 0;
        uint32_t maxSharers = 0;
        uint64_t spills = 0;    ///< pointer-overflow traps on this line
    };

    /** Per-line census for every home line this directory touched
     *  (std::map: deterministic address order for reports). */
    const std::map<Addr, LineCensus> &lineCensus() const
    {
        return census;
    }

    stats::Scalar statLocalMisses;
    stats::Scalar statRemoteMisses;
    stats::Scalar statInvSent;
    stats::Scalar statInvAcks;
    stats::Scalar statWritebacks;
    /// Issue-to-fill cycles of remote transactions — the measured T(p)
    /// of Equation 1.
    stats::Histogram statRemoteLatency;
    /// Sharer-set width sampled at every directory state transition —
    /// the curve that sizes a limited directory (ROADMAP item 3).
    stats::Histogram statSharerCount;
    /// Invalidations each exclusive request triggered at this home.
    stats::Histogram statInvPerWrite;
    /// Per-transition directory counters (old state x new state),
    /// named dirUncachedToShared etc. — the TrapKind-style breakdown
    /// of the aggregate Coherence trace events.
    std::vector<stats::Scalar> statDirTransitions;
    /// LimitedPtr: pointer-array overflow traps taken (the software
    /// spill handler ran to dump the hardware pointers).
    stats::Scalar statOverflowTraps;
    /// LimitedPtr: hardware pointers dumped into the software table.
    stats::Scalar statSpilledPtrs;
    /// LimitedPtr: exclusive requests that had to walk the software
    /// table to enumerate spilled sharers.
    stats::Scalar statSpillWalks;
    /// High-water mark of the message inbox.
    stats::Scalar statInboxPeak;
    /// Instantaneous inbox depth (meaningful on the IntervalSampler
    /// grid; sampled at deterministic barrier points).
    stats::Formula statInboxDepth;

  private:
    /** Directory entry for one home line. */
    struct DirEntry
    {
        /// What the in-progress transaction is waiting on.
        enum class Wait : uint8_t { None, Acks, Data };

        DirState state = DirState::Uncached;
        /// The exact sharer set. Under LimitedPtr the first
        /// (size() - spilled) members occupy hardware pointers and the
        /// rest live in the software table; the set itself is always
        /// precise, so the schemes differ in timing only.
        std::set<uint32_t> sharers;
        /// LimitedPtr: sharers resident in the software spill table.
        uint32_t spilled = 0;
        uint32_t owner = 0;
        bool busy = false;          ///< transaction in progress
        Wait wait = Wait::None;
        uint32_t pendingAcks = 0;
        Message pendingReq;
        std::deque<Message> waiting;
    };

    /** Outstanding processor transaction (one per task frame). */
    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool write = false;
        uint64_t issued = 0;    ///< machine cycle the request left
        bool remote = false;    ///< home is another node
        uint64_t txn = 0;       ///< transaction id (node<<32 | seq)
    };

    uint32_t homeOf(Addr line_addr) const;
    /** Queue @p msg for @p to after controller occupancy (+ @p extra
     *  software-handler cycles). */
    void send(uint32_t to, Message msg, uint32_t extra = 0);
    /** Queue @p msg for @p to after occupancy + memory latency
     *  (+ @p extra software-handler cycles). */
    void sendAfterMemory(uint32_t to, Message msg, uint32_t extra = 0);
    void dispatch(uint32_t to, const Message &msg);

    /**
     * Add @p sharer to @p e's set under the configured directory
     * scheme. Under LimitedPtr, a new sharer that would need an
     * (i+1)-th hardware pointer takes the overflow trap: the handler
     * dumps all resident pointers into the software table and the
     * caller must charge the returned spill-handler cycles to the
     * triggering transaction. FullMap always returns 0.
     */
    uint32_t addSharer(DirEntry &e, Addr line_addr, uint32_t sharer);
    /** Empty @p e's sharer set (hardware pointers and spill table). */
    void clearSharers(DirEntry &e);
    /**
     * Software cycles an exclusive request pays before invalidating
     * @p e's sharers: the spill-table walk when any sharer lives in
     * software, 0 when the hardware pointers cover the set.
     */
    uint32_t spillWalkCost(DirEntry &e);

    /** Record a directory transition event (old state -> current);
     *  @p cause is the message type that drove it (the conformance
     *  listener checks (old, cause) -> new against the spec). */
    void recordTransition(const DirEntry &e, DirState old_state,
                          Addr line_addr, uint32_t requester,
                          MsgType cause);

    void handleMessage(const Message &msg);
    void handleHomeRequest(const Message &msg, DirEntry &e);
    /** Finish the parked request; @p cause is the message completing
     *  it (InvAck, WbData or WbEmpty). */
    void completePending(Addr line_addr, DirEntry &e, MsgType cause);
    void drainWaiting(Addr line_addr);
    void fill(const Message &msg);
    /** Schedule reply + unpend marker behind the memory access (plus
     *  @p extra software spill-handler cycles, 0 under FullMap).
     *  @p txn is the granted transaction's id (0: untraced). */
    void replyAndUnpend(Addr line_addr, uint32_t requester, bool write,
                        uint64_t txn, uint32_t extra = 0);

    /** Append one transaction leg to the tracer (no-op when off). */
    void
    traceTxn(uint64_t txn, TxnPhase phase, Addr line, uint32_t peer,
             bool write, uint8_t frame = 0)
    {
        if (ttrace && txn != 0)
            ttrace->record({fabric->now(), txn, line, nodeId, peer,
                            phase, frame, write});
    }

    std::vector<MemWord> readMemoryLine(Addr line_addr) const;
    void writeMemoryLine(Addr line_addr,
                         const std::vector<MemWord> &words);
    void evict(const cache::Victim &victim);

    ControllerParams params;
    uint32_t nodeId;
    trace::Recorder *trec = nullptr;
    TxnTracer *ttrace = nullptr;
    MemObserver *observer = nullptr;
    TransitionListener *tlisten = nullptr;
    SharedMemory *mem;
    Fabric *fabric;
    Processor *proc = nullptr;
    cache::Cache _cache;

    std::map<Addr, DirEntry> directory;
    std::vector<Mshr> mshrs;
    std::map<Addr, LineCensus> census;
    uint64_t txnSeq = 0;        ///< per-node transaction sequence

    struct Delayed
    {
        uint64_t due;
        uint64_t seq;       ///< insertion order, the dispatch tiebreak
        uint32_t to;
        Message msg;

        /// std::push_heap builds a max-heap; invert for earliest-first.
        bool
        operator<(const Delayed &o) const
        {
            return due != o.due ? due > o.due : seq > o.seq;
        }
    };

    /**
     * Occupancy/memory-latency queue as a binary min-heap on
     * (due, seq), making tick() and nextEventCycle() O(1) when
     * nothing is due — the old linear scan was the cycle-skip
     * overhead on coherence-heavy workloads. Dispatch order is
     * unchanged: the machine ticks every cycle while this queue is
     * non-empty (nextEventCycle() reports the minimum due), so all
     * entries popped in one tick share the same due cycle and the seq
     * tiebreak reproduces the old insertion-order scan exactly.
     */
    std::vector<Delayed> delayed;
    uint64_t delayedSeq = 0;
    std::deque<Message> inbox;

    void pushDelayed(uint64_t due, uint32_t to, const Message &msg);
};

} // namespace april::coh

#endif // APRIL_COHERENCE_CONTROLLER_HH

/**
 * @file
 * Messages of the directory-based cache-coherence protocol
 * (Section 2.1; Chaiken et al. [5]). The directory is full-map and
 * enforces strong coherence: a line is either uncached, shared by a
 * set of readers, or exclusively owned by one writer, and writes wait
 * for explicit invalidation acknowledgments — the "long-latency
 * acknowledgment messages" whose tolerance motivates APRIL's
 * multithreading.
 */

#ifndef APRIL_COHERENCE_PROTOCOL_HH
#define APRIL_COHERENCE_PROTOCOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/types.hh"

namespace april::coh
{

/**
 * Bounds-checked enum-to-name lookup. Every enum name helper in the
 * coherence layer routes through this instead of a switch with a "?"
 * fallthrough: the name table's extent is part of its type, so a raw
 * `size_t(enum)` from telemetry/census code can never read past it,
 * and growing an enum without growing its table fails to compile at
 * the helper's static_assert'ed call sites rather than silently
 * printing "?".
 */
template <size_t N>
inline const char *
enumName(const std::array<const char *, N> &names, size_t v)
{
    return v < N ? names[v] : "<out-of-range>";
}

enum class MsgType : uint8_t
{
    ReadReq,    ///< requester -> home: shared copy wanted
    WriteReq,   ///< requester -> home: exclusive copy wanted
    ReadReply,  ///< home -> requester: line data, Shared
    WriteReply, ///< home -> requester: line data, Modified
    Inv,        ///< home -> sharer: drop your copy
    InvAck,     ///< sharer -> home
    WbReq,      ///< home -> owner: send the dirty line back
    WbData,     ///< owner -> home: dirty data (response or eviction)
    WbEmpty,    ///< owner -> home: no modified copy here (raced away)
    FenceAck,   ///< home -> flusher: writeback acknowledged (fence--)
    Unpend,     ///< home -> home: a reply has dispatched; the line's
                ///< transaction is over and waiters may be drained.
                ///< Scheduling this *behind* the reply on the same
                ///< ordered path is what keeps grants and subsequent
                ///< recalls FIFO on the network.
};

/** Number of MsgType values (telemetry class-table sizing). */
inline constexpr size_t kNumMsgTypes = size_t(MsgType::Unpend) + 1;

/** Name table for MsgType; sized by kNumMsgTypes so it cannot drift
 *  from the enum, and shared with the model checker's rule tables
 *  (src/mc/spec.hh static_asserts against kNumMsgTypes too). */
inline constexpr std::array<const char *, kNumMsgTypes> kMsgTypeNames = {
    "ReadReq",  "WriteReq", "ReadReply", "WriteReply", "Inv",   "InvAck",
    "WbReq",    "WbData",   "WbEmpty",   "FenceAck",   "Unpend",
};
static_assert(kMsgTypeNames.size() == kNumMsgTypes);

/** Canonical message-type name ("ReadReq", "Inv", ...);
 *  bounds-checked, so telemetry indexing by raw size_t is safe. */
inline const char *
msgTypeName(MsgType t)
{
    return enumName(kMsgTypeNames, size_t(t));
}

/**
 * Directory sharing state of one home line. Public (rather than a
 * Controller detail) so the event-trace exporter can name protocol
 * transitions.
 */
enum class DirState : uint8_t
{
    Uncached,
    Shared,
    Exclusive,
};

/** Number of directory states (per-transition stat tables). */
inline constexpr size_t kNumDirStates = size_t(DirState::Exclusive) + 1;

/**
 * Directory organization (ROADMAP item 3). FullMap keeps one pointer
 * per node — the paper's scheme, exact but O(nodes) per line.
 * LimitedPtr keeps i hardware pointers (ControllerParams::dirPointers)
 * and traps to a software spill handler when a new sharer would need
 * an (i+1)-th pointer, LimitLESS-style: the handler dumps the
 * hardware pointers into a software table (modeled as extra handler
 * latency on the triggering transaction) and exclusive requests that
 * must invalidate spilled sharers pay the handler again to walk the
 * table. Both schemes are architecturally identical — the sharer set
 * is always exact — so FullMap stays the timing-free oracle for every
 * differential gate.
 */
enum class DirScheme : uint8_t
{
    FullMap,
    LimitedPtr,
};

/** Number of directory schemes (name table / CLI parse sizing). */
inline constexpr size_t kNumDirSchemes = size_t(DirScheme::LimitedPtr) + 1;

inline constexpr std::array<const char *, kNumDirSchemes>
    kDirSchemeNames = {"FullMap", "LimitedPtr"};
static_assert(kDirSchemeNames.size() == kNumDirSchemes);

/** Canonical directory-scheme name ("FullMap", "LimitedPtr"). */
inline const char *
dirSchemeName(DirScheme s)
{
    return enumName(kDirSchemeNames, size_t(s));
}

inline constexpr std::array<const char *, kNumDirStates> kDirStateNames = {
    "Uncached", "Shared", "Exclusive"};
static_assert(kDirStateNames.size() == kNumDirStates);

/** Canonical directory-state name ("Uncached", ...); bounds-checked
 *  like msgTypeName so census tables can index by raw size_t. */
inline const char *
dirStateName(DirState s)
{
    return enumName(kDirStateNames, size_t(s));
}

/** One protocol message. */
struct Message
{
    MsgType type = MsgType::ReadReq;
    Addr lineAddr = 0;          ///< line-granular address
    uint32_t from = 0;          ///< sending node
    uint32_t requester = 0;     ///< original requester (3-hop paths)
    bool isWrite = false;       ///< WbReq: invalidate the owner too
    bool fenceAck = false;      ///< WbData: caused by FLUSH, ack it
    /// Coherence-transaction id carried end to end: assigned at MSHR
    /// allocation as (requester node << 32 | per-node sequence) and
    /// copied by the home into every message it sends on the
    /// transaction's behalf (Inv, WbReq, replies) and by sharers into
    /// their acknowledgments. 0 = unsolicited traffic (evictions,
    /// flushes) outside any transaction.
    uint64_t txn = 0;
    std::vector<MemWord> data;  ///< line payload where applicable
};

/** @return true for messages that carry a data payload. */
inline bool
carriesData(MsgType t)
{
    return t == MsgType::ReadReply || t == MsgType::WriteReply ||
           t == MsgType::WbData;
}

} // namespace april::coh

#endif // APRIL_COHERENCE_PROTOCOL_HH

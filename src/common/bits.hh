/**
 * @file
 * Bit-manipulation helpers shared across the simulator.
 */

#ifndef APRIL_COMMON_BITS_HH
#define APRIL_COMMON_BITS_HH

#include <cstdint>

namespace april
{

/**
 * "No event, ever" sentinel for nextEventCycle() reports. Components
 * that can do no further observable work without external input
 * (halted processors, idle controllers, empty networks) return this so
 * the machines' cycle-skipping run loops can fast-forward past them.
 */
constexpr uint64_t kNeverCycle = ~uint64_t(0);

/** @return a mask with the low @p n bits set (n may be 0..64). */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~uint64_t(0) : (uint64_t(1) << n) - 1;
}

/** Extract bits [first, last] (inclusive, last >= first) of @p value. */
constexpr uint64_t
bits(uint64_t value, unsigned last, unsigned first)
{
    return (value >> first) & mask(last - first + 1);
}

/** @return @p value with bits [first, last] replaced by @p field. */
constexpr uint64_t
insertBits(uint64_t value, unsigned last, unsigned first, uint64_t field)
{
    uint64_t m = mask(last - first + 1) << first;
    return (value & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    uint64_t sign = uint64_t(1) << (width - 1);
    uint64_t v = value & mask(width);
    return int64_t((v ^ sign) - sign);
}

/** @return true when @p value is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(uint64_t value)
{
    unsigned n = 0;
    while (value > 1) {
        value >>= 1;
        ++n;
    }
    return n;
}

/** Round @p value up to the next multiple of @p align (a power of 2). */
constexpr uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

} // namespace april

#endif // APRIL_COMMON_BITS_HH

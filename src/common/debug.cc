#include "common/debug.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>

namespace april::debug
{

namespace detail
{

std::array<bool, size_t(Flag::NumFlags)> flagState{};

namespace
{
std::mutex traceMutex;
} // namespace

void
emit(Flag f, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(traceMutex);
    std::cerr << flagName(f) << ": " << msg << "\n";
}

} // namespace detail

const char *
flagName(Flag f)
{
    static const char *const names[size_t(Flag::NumFlags)] = {
        "Cache", "Coh", "Net", "Ctx", "Trap", "FE", "Runtime",
    };
    if (size_t(f) >= size_t(Flag::NumFlags))
        panic("flagName: bad debug flag ", int(f));
    return names[size_t(f)];
}

void
setFlag(Flag f, bool on)
{
    if (size_t(f) >= size_t(Flag::NumFlags))
        panic("setFlag: bad debug flag ", int(f));
    detail::flagState[size_t(f)] = on;
}

void
setAllFlags(bool on)
{
    detail::flagState.fill(on);
}

void
setFlags(const std::string &list)
{
    std::istringstream is(list);
    std::string name;
    while (std::getline(is, name, ',')) {
        if (name.empty())
            continue;
        if (name == "All") {
            setAllFlags(true);
            continue;
        }
        bool found = false;
        for (size_t f = 0; f < size_t(Flag::NumFlags); ++f) {
            if (name == flagName(Flag(f))) {
                detail::flagState[f] = true;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown debug flag \"", name,
                  "\" (try Cache,Coh,Net,Ctx,Trap,FE,Runtime or All)");
    }
}

void
initFromEnv()
{
    static bool applied = [] {
        if (const char *env = std::getenv("APRIL_DEBUG"))
            setFlags(env);
        return true;
    }();
    (void)applied;
}

} // namespace april::debug

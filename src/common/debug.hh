/**
 * @file
 * gem5-style per-component debug tracing.
 *
 * Each simulator component owns a debug flag (Cache, Coh, Net, Ctx,
 * Trap, FE, Runtime); a TRACE(Flag, ...) call prints its streamed
 * message to stderr only while that flag is enabled. Flags are runtime
 * toggles selected programmatically (DriverOptions::debugFlags), or
 * from the environment (APRIL_DEBUG="Coh,Net").
 *
 * Cost contract: a disabled TRACE is one load of a plain global bool
 * and one predictable branch — no argument evaluation, no formatting,
 * no function call. This is what lets TRACE sit on simulator paths
 * without moving the bench_sim_speed needle.
 */

#ifndef APRIL_COMMON_DEBUG_HH
#define APRIL_COMMON_DEBUG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/logging.hh"    // formatMessage for the TRACE macro

namespace april::debug
{

/** One flag per traceable component. */
enum class Flag : uint8_t
{
    Cache,      ///< cache fills, evictions, invalidations
    Coh,        ///< coherence protocol messages and transitions
    Net,        ///< network packet injection and delivery
    Ctx,        ///< context switches (both switch implementations)
    Trap,       ///< synchronous and asynchronous traps
    FE,         ///< full/empty synchronization faults
    Runtime,    ///< Mul-T runtime boot and node setup
    NumFlags,
};

/** Canonical flag name ("Cache", "Coh", ...). */
const char *flagName(Flag f);

namespace detail
{

/** Per-flag enable state; read directly by the TRACE macro. */
extern std::array<bool, size_t(Flag::NumFlags)> flagState;

/** Print one formatted trace line ("<Flag>: <msg>"). */
void emit(Flag f, const std::string &msg);

} // namespace detail

/** @return true while @p f is enabled. */
inline bool
enabled(Flag f)
{
    return detail::flagState[size_t(f)];
}

/** Enable or disable one flag. */
void setFlag(Flag f, bool on);

/** Enable or disable every flag. */
void setAllFlags(bool on);

/**
 * Enable flags from a comma-separated list ("Coh,Net", or "All").
 * Unknown names raise FatalError; an empty list is a no-op.
 */
void setFlags(const std::string &list);

/**
 * Apply the APRIL_DEBUG environment variable once per process (later
 * calls are no-ops). Machines call this at construction so that any
 * binary — tests, benches, examples — honors the variable.
 */
void initFromEnv();

} // namespace april::debug

/**
 * TRACE(Coh, "cycle=", now, " inv line=", addr);
 *
 * Arguments are only evaluated when the flag is on; when off, the
 * whole statement is a single branch on a global bool.
 */
#define TRACE(flag, ...)                                                \
    do {                                                                \
        if (__builtin_expect(                                           \
                ::april::debug::detail::flagState[size_t(               \
                    ::april::debug::Flag::flag)], 0)) {                 \
            ::april::debug::detail::emit(                               \
                ::april::debug::Flag::flag,                             \
                ::april::detail::formatMessage(__VA_ARGS__));           \
        }                                                               \
    } while (0)

#endif // APRIL_COMMON_DEBUG_HH

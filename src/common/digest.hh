/**
 * @file
 * Small deterministic state digests (FNV-1a, 64 bit).
 *
 * Used wherever two runs must be proven byte-for-byte identical
 * without storing both images: the fuzzer digests generated program
 * listings so a corpus entry can assert that reproducing a case from
 * its seed yields exactly the program that originally failed, and
 * machine snapshots digest bulk memory images for quick mismatch
 * triage before a word-by-word diff.
 */

#ifndef APRIL_COMMON_DIGEST_HH
#define APRIL_COMMON_DIGEST_HH

#include <cstdint>
#include <string>

namespace april
{

/** Incremental FNV-1a 64-bit digest. */
class Digest
{
  public:
    /** Feed one byte. */
    void
    addByte(uint8_t b)
    {
        state ^= b;
        state *= 0x100000001B3ULL;
    }

    /** Feed a 32-bit value (little-endian byte order). */
    void
    addWord(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            addByte(uint8_t(v >> (8 * i)));
    }

    /** Feed a 64-bit value (little-endian byte order). */
    void
    addU64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            addByte(uint8_t(v >> (8 * i)));
    }

    /** Feed a string verbatim. */
    void
    addString(const std::string &s)
    {
        for (char c : s)
            addByte(uint8_t(c));
    }

    uint64_t value() const { return state; }

  private:
    uint64_t state = 0xCBF29CE484222325ULL;     ///< FNV offset basis
};

/** One-shot digest of a string. */
inline uint64_t
digestString(const std::string &s)
{
    Digest d;
    d.addString(s);
    return d.value();
}

} // namespace april

#endif // APRIL_COMMON_DIGEST_HH

/**
 * @file
 * Tiny helpers for emitting valid JSON, shared by the statistics
 * exporter (stats::Group::dumpJson) and the Chrome-trace-event writer
 * (trace::Recorder). Not a JSON library — just the two things a
 * hand-rolled emitter gets wrong: string escaping and non-finite
 * numbers.
 */

#ifndef APRIL_COMMON_JSON_HH
#define APRIL_COMMON_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>

namespace april::json
{

/** Write @p s as a quoted, escaped JSON string. */
inline void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/**
 * Write @p v as a JSON number. JSON has no NaN/Infinity, so
 * non-finite values are emitted as null; integral values print
 * without a fraction so counters stay exact and readable.
 */
inline void
writeNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        os << static_cast<int64_t>(v);
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

} // namespace april::json

#endif // APRIL_COMMON_JSON_HH

/**
 * @file
 * A minimal recursive-descent JSON parser. Only the features the
 * simulator's own emitters use are supported (objects, arrays, strings
 * with \-escapes, numbers, true/false/null); a parse error throws
 * std::runtime_error with the offending offset. Used by april-prof to
 * read back profile JSON (for --diff and schema validation) and by the
 * tests to validate every JSON emitter in the tree.
 */

#ifndef APRIL_COMMON_JSON_PARSE_HH
#define APRIL_COMMON_JSON_PARSE_HH

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace april::json
{

struct Json
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    bool has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }

    const Json &
    at(const std::string &key) const
    {
        if (!has(key))
            throw std::runtime_error("json: missing key '" + key + "'");
        return object.at(key);
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json: " + why + " at offset " +
                                 std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(uint8_t(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    Json
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return keyword("true", boolean(true));
          case 'f': return keyword("false", boolean(false));
          case 'n': return keyword("null", {});
          default: return number();
        }
    }

    static Json
    boolean(bool v)
    {
        Json j;
        j.kind = Json::Kind::Bool;
        j.boolean = v;
        return j;
    }

    Json
    keyword(const std::string &word, Json result)
    {
        if (s.compare(pos, word.size(), word) != 0)
            fail("bad keyword");
        pos += word.size();
        return result;
    }

    Json
    object()
    {
        Json v;
        v.kind = Json::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            Json key = string();
            expect(':');
            v.object.emplace(key.str, value());
            if (peek() != ',')
                break;
            ++pos;
        }
        expect('}');
        return v;
    }

    Json
    array()
    {
        Json v;
        v.kind = Json::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.array.push_back(value());
            if (peek() != ',')
                break;
            ++pos;
        }
        expect(']');
        return v;
    }

    Json
    string()
    {
        Json v;
        v.kind = Json::Kind::String;
        expect('"');
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("short \\u escape");
                v.str += char(std::stoi(s.substr(pos, 4), nullptr, 16));
                pos += 4;
                break;
              }
              default: fail("bad escape");
            }
        }
        if (pos >= s.size())
            fail("unterminated string");
        ++pos;
        return v;
    }

    Json
    number()
    {
        size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(uint8_t(s[pos])) || s[pos] == '-' ||
                s[pos] == '+' || s[pos] == '.' || s[pos] == 'e' ||
                s[pos] == 'E'))
            ++pos;
        if (pos == start)
            fail("expected a value");
        Json v;
        v.kind = Json::Kind::Number;
        v.number = std::stod(s.substr(start, pos - start));
        return v;
    }

    const std::string &s;
    size_t pos = 0;
};

inline Json
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace april::json

#endif // APRIL_COMMON_JSON_PARSE_HH

/**
 * @file
 * Minimal JSON-schema-subset validator shared by the report tools'
 * --check modes (april-prof, april-coh).
 *
 * Supports the subset the checked-in schemas use: "type" (object,
 * array, string, number, integer, boolean), "required", "properties",
 * "items". Unknown keywords are ignored (permissive forward
 * compatibility); errors carry a JSON-pointer-ish path.
 */

#ifndef APRIL_COMMON_JSON_SCHEMA_HH
#define APRIL_COMMON_JSON_SCHEMA_HH

#include <cmath>
#include <string>
#include <vector>

#include "common/json_parse.hh"

namespace april::json
{

inline void
validateSchema(const Json &value, const Json &schema,
               const std::string &path,
               std::vector<std::string> &errors)
{
    if (schema.has("type")) {
        const std::string &t = schema.at("type").str;
        bool ok = true;
        if (t == "object")
            ok = value.kind == Json::Kind::Object;
        else if (t == "array")
            ok = value.kind == Json::Kind::Array;
        else if (t == "string")
            ok = value.kind == Json::Kind::String;
        else if (t == "boolean")
            ok = value.kind == Json::Kind::Bool;
        else if (t == "number")
            ok = value.kind == Json::Kind::Number;
        else if (t == "integer")
            ok = value.kind == Json::Kind::Number &&
                 value.number == std::floor(value.number);
        if (!ok) {
            errors.push_back(path + ": expected " + t);
            return;
        }
    }
    if (schema.has("required")) {
        for (const Json &key : schema.at("required").array) {
            if (!value.has(key.str))
                errors.push_back(path + ": missing required key '" +
                                 key.str + "'");
        }
    }
    if (schema.has("properties") && value.kind == Json::Kind::Object) {
        for (const auto &[key, sub] : schema.at("properties").object) {
            if (value.has(key))
                validateSchema(value.at(key), sub, path + "/" + key,
                               errors);
        }
    }
    if (schema.has("items") && value.kind == Json::Kind::Array) {
        const Json &item_schema = schema.at("items");
        for (size_t i = 0; i < value.array.size(); ++i)
            validateSchema(value.array[i], item_schema,
                           path + "/" + std::to_string(i), errors);
    }
}

} // namespace april::json

#endif // APRIL_COMMON_JSON_SCHEMA_HH

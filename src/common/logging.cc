#include "common/logging.hh"

#include <iostream>
#include <mutex>
#include <set>

namespace april
{

namespace
{

bool quietFlag = false;
std::mutex emitMutex;

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail
{

void
emit(const char *level, const std::string &msg)
{
    if (quietFlag && (std::string(level) == "info" ||
                      std::string(level) == "warn")) {
        return;
    }
    std::lock_guard<std::mutex> lock(emitMutex);
    std::cerr << level << ": " << msg << std::endl;
}

bool
emitOnce(const char *level, const std::string &msg)
{
    static std::set<std::string> seen;
    {
        std::lock_guard<std::mutex> lock(emitMutex);
        if (!seen.insert(msg).second)
            return false;
    }
    emit(level, msg);
    return true;
}

} // namespace detail

} // namespace april

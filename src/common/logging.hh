/**
 * @file
 * gem5-style status and error reporting for the APRIL simulator.
 *
 * Two error levels are provided, following the gem5 convention:
 *
 *  - panic():  something happened that should never happen regardless
 *              of what the user does — a simulator bug.
 *  - fatal():  the simulation cannot continue because of a user-level
 *              problem (bad configuration, malformed workload, ...).
 *
 * Unlike gem5, both raise typed C++ exceptions instead of calling
 * abort()/exit(); this keeps the simulator usable as a library and
 * makes error paths unit-testable. inform()/warn() print to stderr and
 * never stop the simulation.
 */

#ifndef APRIL_COMMON_LOGGING_HH
#define APRIL_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace april
{

/** Base class of all simulator-raised errors. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raised by panic(): an internal simulator invariant was violated. */
class PanicError : public SimError
{
  public:
    explicit PanicError(const std::string &msg) : SimError(msg) {}
};

/** Raised by fatal(): a user-correctable condition stops the run. */
class FatalError : public SimError
{
  public:
    explicit FatalError(const std::string &msg) : SimError(msg) {}
};

namespace detail
{

/** Fold a heterogeneous argument pack into one message string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emit(const char *level, const std::string &msg);
bool emitOnce(const char *level, const std::string &msg);

} // namespace detail

/**
 * Report an internal simulator bug and raise PanicError.
 *
 * @param args message fragments, streamed together.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::formatMessage(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw PanicError(msg);
}

/** Report a user-level configuration problem and raise FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::formatMessage(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** panic() unless the given condition holds. */
template <typename Cond, typename... Args>
void
panicIfNot(const Cond &cond, Args &&...args)
{
    if (!cond)
        panic(std::forward<Args>(args)...);
}

/** Warn about questionable but survivable behavior. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::formatMessage(std::forward<Args>(args)...));
}

/** Like warn(), but each distinct message prints only once. */
template <typename... Args>
void
warnOnce(Args &&...args)
{
    detail::emitOnce("warn",
                     detail::formatMessage(std::forward<Args>(args)...));
}

/** Print a purely informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::formatMessage(std::forward<Args>(args)...));
}

/** Globally silence inform()/warn() output (used by benchmarks). */
void setQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool quiet();

/**
 * RAII form of setQuiet(): silences inform()/warn() for the scope's
 * lifetime and restores the previous state on exit, so benches and
 * tests cannot leak the global toggle past their own scope.
 */
class QuietScope
{
  public:
    explicit QuietScope(bool q = true) : prev(quiet()) { setQuiet(q); }
    ~QuietScope() { setQuiet(prev); }

    QuietScope(const QuietScope &) = delete;
    QuietScope &operator=(const QuietScope &) = delete;

  private:
    bool prev;
};

} // namespace april

#endif // APRIL_COMMON_LOGGING_HH

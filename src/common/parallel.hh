/**
 * @file
 * Host-thread infrastructure for the parallel execution engine
 * (DESIGN.md §7.6): a persistent pool of worker threads driven by an
 * epoch-counter barrier.
 *
 * The machine advances in quanta: the coordinating thread publishes a
 * job, bumps the epoch (release), every worker spins on the epoch
 * (acquire), runs the job for its own shard, and bumps the done
 * counter (release); the coordinator spins until all workers have
 * checked in (acquire). The release/acquire pairs on `epoch_` and
 * `done_` are the only synchronization the engine needs: everything a
 * shard wrote during a quantum happens-before the coordinator's merge
 * phase, and everything the coordinator merged happens-before the
 * next quantum's shard work. ThreadSanitizer sees those edges, so the
 * engine is clean under TSan with no locks on the simulation path.
 *
 * Workers spin with a bounded busy-wait and then fall back to
 * yielding, so an idle pool (machine paused between run() calls)
 * costs no meaningful CPU.
 */

#ifndef APRIL_COMMON_PARALLEL_HH
#define APRIL_COMMON_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace april::par
{

/** Persistent worker pool; worker 0 is the calling thread. */
class WorkerPool
{
  public:
    /**
     * Spawn @p num_workers - 1 host threads (worker 0 is whoever
     * calls runQuantum). @p job is invoked as job(worker_index) once
     * per worker per quantum; it must be safe to call concurrently
     * for distinct indices.
     */
    WorkerPool(uint32_t num_workers,
               std::function<void(uint32_t)> job)
        : numWorkers_(num_workers), job_(std::move(job))
    {
        for (uint32_t w = 1; w < numWorkers_; ++w)
            threads_.emplace_back([this, w] { workerLoop(w); });
    }

    ~WorkerPool()
    {
        stop_.store(true, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        for (auto &t : threads_)
            t.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run one quantum: every worker (including the caller, as worker
     * 0) executes the job, and the call returns once all of them have
     * finished. The caller may touch any shard's data between calls.
     */
    void
    runQuantum()
    {
        done_.store(0, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        job_(0);
        // Wait for workers 1..N-1 (acquire pairs with their release).
        // Bounded spin, then yield: on an oversubscribed host the
        // laggards need this core, and a pause-only spin would burn a
        // whole scheduler timeslice per quantum waiting for them.
        uint32_t spins = 0;
        while (done_.load(std::memory_order_acquire) + 1 <
               numWorkers_) {
            if (++spins < 128)
                relax();
            else
                std::this_thread::yield();
        }
    }

    uint32_t numWorkers() const { return numWorkers_; }

  private:
    static void
    relax()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
    }

    void
    workerLoop(uint32_t index)
    {
        uint64_t seen = 0;
        for (;;) {
            uint32_t spins = 0;
            while (epoch_.load(std::memory_order_acquire) == seen) {
                if (++spins < 128)
                    relax();
                else
                    std::this_thread::yield();
            }
            ++seen;
            if (stop_.load(std::memory_order_relaxed))
                return;
            job_(index);
            done_.fetch_add(1, std::memory_order_release);
        }
    }

    uint32_t numWorkers_;
    std::function<void(uint32_t)> job_;
    std::atomic<uint64_t> epoch_{0};
    std::atomic<uint32_t> done_{0};
    std::atomic<bool> stop_{false};
    std::vector<std::thread> threads_;
};

} // namespace april::par

#endif // APRIL_COMMON_PARALLEL_HH

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the simulator (work-stealing victim
 * selection, synthetic workload generation, network traffic) draws
 * from an explicitly seeded Rng so that runs are reproducible.
 * The core is splitmix64, which is small, fast and well distributed.
 */

#ifndef APRIL_COMMON_RANDOM_HH
#define APRIL_COMMON_RANDOM_HH

#include <cstdint>

namespace april
{

/** Deterministic splitmix64 pseudo-random generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x2545F4914F6CDD1DULL) : state(seed) {}

    /** @return the next raw 64-bit pseudo-random value. */
    uint64_t
    next()
    {
        uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** @return a uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + int64_t(below(uint64_t(hi - lo + 1)));
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** @return true with probability @p prob. */
    bool
    chance(double prob)
    {
        return uniform() < prob;
    }

  private:
    uint64_t state;
};

/**
 * Derive an independent stream seed from a base seed.
 *
 * Consumers that need several uncorrelated generators from one
 * user-visible seed (the fuzzer seeds program structure, operand
 * values and memory images separately so a generator change in one
 * dimension does not reshuffle the others) index streams explicitly
 * instead of sharing a single Rng.
 */
constexpr uint64_t
deriveSeed(uint64_t base, uint64_t stream)
{
    uint64_t z = base + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace april

#endif // APRIL_COMMON_RANDOM_HH

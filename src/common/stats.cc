#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <limits>

#include "common/json.hh"
#include "common/logging.hh"

namespace april::stats
{

Info::Info(Group *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(14) << _value
       << "  # " << desc() << "\n";
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(14) << mean()
       << "  # " << desc() << " (samples=" << _count << ")\n";
}

void
Scalar::printJson(std::ostream &os) const
{
    os << "{\"type\":\"scalar\",\"desc\":";
    json::writeString(os, desc());
    os << ",\"value\":";
    json::writeNumber(os, _value);
    os << "}";
}

void
Average::printJson(std::ostream &os) const
{
    os << "{\"type\":\"average\",\"desc\":";
    json::writeString(os, desc());
    os << ",\"mean\":";
    json::writeNumber(os, mean());
    os << ",\"sum\":";
    json::writeNumber(os, _sum);
    os << ",\"count\":" << _count << "}";
}

Distribution::Distribution(Group *parent, std::string name, std::string desc,
                           int64_t lo, int64_t hi, int64_t bucket_size)
    : Info(parent, std::move(name), std::move(desc)),
      _lo(lo), _hi(hi), _bucketSize(bucket_size)
{
    if (bucket_size <= 0 || hi <= lo)
        panic("Distribution ", this->name(), ": bad bucket spec");
    _buckets.resize(size_t((hi - lo + bucket_size - 1) / bucket_size), 0);
    reset();
}

void
Distribution::sample(int64_t v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += double(v);

    if (v < _lo)
        ++_underflow;
    else if (v >= _hi)
        ++_overflow;
    else
        ++_buckets[size_t((v - _lo) / _bucketSize)];
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(14) << mean()
       << "  # " << desc() << " (mean; samples=" << _count
       << " min=" << (_count ? _min : 0)
       << " max=" << (_count ? _max : 0) << ")\n";
    for (size_t i = 0; i < _buckets.size(); ++i) {
        if (!_buckets[i])
            continue;
        int64_t b_lo = _lo + int64_t(i) * _bucketSize;
        os << std::left << std::setw(44)
           << (prefix + name() + "[" + std::to_string(b_lo) + ","
               + std::to_string(b_lo + _bucketSize) + ")")
           << std::right << std::setw(14) << _buckets[i] << "\n";
    }
    if (_underflow) {
        os << std::left << std::setw(44) << (prefix + name() + "[under]")
           << std::right << std::setw(14) << _underflow << "\n";
    }
    if (_overflow) {
        os << std::left << std::setw(44) << (prefix + name() + "[over]")
           << std::right << std::setw(14) << _overflow << "\n";
    }
}

void
Distribution::printJson(std::ostream &os) const
{
    os << "{\"type\":\"distribution\",\"desc\":";
    json::writeString(os, desc());
    os << ",\"count\":" << _count << ",\"mean\":";
    json::writeNumber(os, mean());
    os << ",\"min\":" << (_count ? _min : 0)
       << ",\"max\":" << (_count ? _max : 0)
       << ",\"lo\":" << _lo << ",\"bucketSize\":" << _bucketSize
       << ",\"underflow\":" << _underflow
       << ",\"overflow\":" << _overflow << ",\"buckets\":[";
    for (size_t i = 0; i < _buckets.size(); ++i)
        os << (i ? "," : "") << _buckets[i];
    os << "]}";
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = _overflow = 0;
    _count = 0;
    _sum = 0;
    _min = std::numeric_limits<int64_t>::max();
    _max = std::numeric_limits<int64_t>::min();
}

Histogram::Histogram(Group *parent, std::string name, std::string desc,
                     size_t num_buckets)
    : Info(parent, std::move(name), std::move(desc))
{
    if (num_buckets < 2)
        panic("Histogram ", this->name(), ": need at least 2 buckets");
    _buckets.resize(num_buckets, 0);
    reset();
}

size_t
Histogram::bucketIndex(int64_t v) const
{
    return logBucket(v, _buckets.size());
}

size_t
Histogram::logBucket(int64_t v, size_t num_buckets)
{
    if (v <= 0)
        return 0;
    size_t idx = size_t(std::bit_width(uint64_t(v)));
    return std::min(idx, num_buckets - 1);
}

void
Histogram::set(const std::vector<uint64_t> &buckets, uint64_t count,
               double sum, int64_t min, int64_t max)
{
    if (buckets.size() != _buckets.size())
        panic("Histogram ", name(), ": set() with ", buckets.size(),
              " buckets, have ", _buckets.size());
    _buckets = buckets;
    _count = count;
    _sum = sum;
    if (count) {
        _min = min;
        _max = max;
    } else {
        _min = std::numeric_limits<int64_t>::max();
        _max = std::numeric_limits<int64_t>::min();
    }
}

void
Histogram::sample(int64_t v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    ++_count;
    _sum += double(v);
    ++_buckets[bucketIndex(v)];
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(14) << mean()
       << "  # " << desc() << " (mean; samples=" << _count
       << " min=" << (_count ? _min : 0)
       << " max=" << (_count ? _max : 0) << ")\n";
    for (size_t i = 0; i < _buckets.size(); ++i) {
        if (!_buckets[i])
            continue;
        std::string range;
        if (i == 0)
            range = "(-inf,1)";
        else if (i == _buckets.size() - 1)
            range = "[" + std::to_string(int64_t(1) << (i - 1)) + ",inf)";
        else
            range = "[" + std::to_string(int64_t(1) << (i - 1)) + ","
                    + std::to_string(int64_t(1) << i) + ")";
        os << std::left << std::setw(44) << (prefix + name() + range)
           << std::right << std::setw(14) << _buckets[i] << "\n";
    }
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"type\":\"histogram\",\"desc\":";
    json::writeString(os, desc());
    os << ",\"count\":" << _count << ",\"mean\":";
    json::writeNumber(os, mean());
    os << ",\"min\":" << (_count ? _min : 0)
       << ",\"max\":" << (_count ? _max : 0) << ",\"buckets\":[";
    for (size_t i = 0; i < _buckets.size(); ++i)
        os << (i ? "," : "") << _buckets[i];
    os << "]}";
}

void
Histogram::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _count = 0;
    _sum = 0;
    _min = std::numeric_limits<int64_t>::max();
    _max = std::numeric_limits<int64_t>::min();
}

void
Formula::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(44) << (prefix + name())
       << std::right << std::setw(14) << value()
       << "  # " << desc() << "\n";
}

void
Formula::printJson(std::ostream &os) const
{
    os << "{\"type\":\"formula\",\"desc\":";
    json::writeString(os, desc());
    os << ",\"value\":";
    json::writeNumber(os, value());
    os << "}";
}

Group::Group(std::string name, Group *parent)
    : _name(std::move(name)), _parent(parent)
{
    if (_parent)
        _parent->addChild(this);
}

Group::~Group()
{
    if (_parent)
        _parent->removeChild(this);
}

void
Group::removeChild(Group *g)
{
    _children.erase(std::remove(_children.begin(), _children.end(), g),
                    _children.end());
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string here = prefix.empty() ? _name : prefix + "." + _name;
    for (const Info *info : _stats)
        info->print(os, here + ".");
    for (const Group *child : _children)
        child->dump(os, here);
}

void
Group::resetStats()
{
    for (Info *info : _stats)
        info->reset();
    for (Group *child : _children)
        child->resetStats();
}

void
Group::dumpJson(std::ostream &os) const
{
    os << "{\"name\":";
    json::writeString(os, _name);
    os << ",\"stats\":{";
    for (size_t i = 0; i < _stats.size(); ++i) {
        os << (i ? "," : "");
        json::writeString(os, _stats[i]->name());
        os << ":";
        _stats[i]->printJson(os);
    }
    os << "},\"groups\":{";
    for (size_t i = 0; i < _children.size(); ++i) {
        os << (i ? "," : "");
        json::writeString(os, _children[i]->groupName());
        os << ":";
        _children[i]->dumpJson(os);
    }
    os << "}}";
}

const Info *
Group::findStat(const std::string &name) const
{
    for (const Info *info : _stats) {
        if (info->name() == name)
            return info;
    }
    return nullptr;
}

const Group *
Group::findGroup(const std::string &name) const
{
    for (const Group *child : _children) {
        if (child->groupName() == name)
            return child;
    }
    return nullptr;
}

const Info *
Group::resolve(const std::string &path) const
{
    const Group *g = this;
    size_t pos = 0;
    size_t dot;
    while ((dot = path.find('.', pos)) != std::string::npos) {
        g = g->findGroup(path.substr(pos, dot - pos));
        if (!g)
            return nullptr;
        pos = dot + 1;
    }
    return g->findStat(path.substr(pos));
}

} // namespace april::stats

/**
 * @file
 * A small gem5-inspired statistics package.
 *
 * Statistics are owned by a stats::Group; each statistic has a name and
 * a description and knows how to print itself. Groups nest, so a
 * machine can dump one coherent report covering processors, caches,
 * directories and network routers.
 */

#ifndef APRIL_COMMON_STATS_HH
#define APRIL_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace april::stats
{

class Group;

/** Common interface of all statistics. */
class Info
{
  public:
    Info(Group *parent, std::string name, std::string desc);
    virtual ~Info() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print "name value # desc" style line(s). */
    virtual void print(std::ostream &os, const std::string &prefix) const = 0;

    /**
     * Emit this statistic's value as one JSON object
     * ({"type":...,"desc":...,...}); the enclosing Group::dumpJson
     * supplies the name key.
     */
    virtual void printJson(std::ostream &os) const = 0;

    /** Reset the statistic to its initial state. */
    virtual void reset() = 0;

    /**
     * One representative number for time-series sampling (the
     * interval profiler records this every N cycles): the value for
     * scalars and formulas, the running mean for averages,
     * distributions and histograms.
     */
    virtual double summaryValue() const = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically updated scalar counter / value. */
class Scalar : public Info
{
  public:
    Scalar(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc))
    {}

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { _value = 0; }
    double summaryValue() const override { return _value; }

  private:
    double _value = 0;
};

/** Arithmetic mean of all sampled values. */
class Average : public Info
{
  public:
    Average(Group *parent, std::string name, std::string desc)
        : Info(parent, std::move(name), std::move(desc))
    {}

    /** Record one sample. */
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    /** Overwrite with externally accumulated totals (stat folding). */
    void
    set(double sum, uint64_t count)
    {
        _sum = sum;
        _count = count;
    }

    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    uint64_t count() const { return _count; }
    double sum() const { return _sum; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { _sum = 0; _count = 0; }
    double summaryValue() const override { return mean(); }

  private:
    double _sum = 0;
    uint64_t _count = 0;
};

/** Fixed-width bucketed histogram with underflow/overflow bins. */
class Distribution : public Info
{
  public:
    /**
     * @param lo lowest bucketed value (inclusive)
     * @param hi highest bucketed value (exclusive)
     * @param bucket_size width of each bucket
     */
    Distribution(Group *parent, std::string name, std::string desc,
                 int64_t lo, int64_t hi, int64_t bucket_size);

    void sample(int64_t v);

    uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    int64_t min() const { return _min; }
    int64_t max() const { return _max; }
    uint64_t bucketCount(size_t i) const { return _buckets.at(i); }
    size_t numBuckets() const { return _buckets.size(); }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;
    double summaryValue() const override { return mean(); }

  private:
    int64_t _lo;
    int64_t _hi;
    int64_t _bucketSize;
    std::vector<uint64_t> _buckets;
    uint64_t _underflow = 0;
    uint64_t _overflow = 0;
    uint64_t _count = 0;
    double _sum = 0;
    int64_t _min = 0;
    int64_t _max = 0;
};

/** A statistic computed on demand from other statistics. */
class Formula : public Info
{
  public:
    Formula(Group *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : Info(parent, std::move(name), std::move(desc)), _fn(std::move(fn))
    {}

    double value() const { return _fn ? _fn() : 0.0; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override {}
    double summaryValue() const override { return value(); }

  private:
    std::function<double()> _fn;
};

/**
 * Power-of-two bucketed histogram: values <= 0 land in bucket 0 and
 * bucket i (i >= 1) counts samples with 2^(i-1) <= v < 2^i; the last
 * bucket absorbs everything larger. Log2 buckets suit long-tailed
 * latency/gap distributions: they stay small and deterministic no
 * matter how large the tail grows.
 */
class Histogram : public Info
{
  public:
    static constexpr size_t kDefaultBuckets = 24;

    Histogram(Group *parent, std::string name, std::string desc,
              size_t num_buckets = kDefaultBuckets);

    void sample(int64_t v);

    /** Bucket index a value falls into: 0 for v<=0, else min(1+floor(log2 v), n-1). */
    size_t bucketIndex(int64_t v) const;

    /**
     * The same bucketing rule as a free function, for code that folds
     * raw per-shard accumulators before handing them to set(): bucket
     * 0 for v<=0, else min(1+floor(log2 v), num_buckets-1).
     */
    static size_t logBucket(int64_t v, size_t num_buckets);

    /**
     * Overwrite with externally accumulated totals (stat folding, the
     * Average::set counterpart). @p buckets must have numBuckets()
     * entries bucketed by logBucket(); @p min / @p max are ignored
     * when @p count is 0.
     */
    void set(const std::vector<uint64_t> &buckets, uint64_t count,
             double sum, int64_t min, int64_t max);

    uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    double sum() const { return _sum; }
    int64_t min() const { return _min; }
    int64_t max() const { return _max; }
    uint64_t bucketCount(size_t i) const { return _buckets.at(i); }
    size_t numBuckets() const { return _buckets.size(); }

    void print(std::ostream &os, const std::string &prefix) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;
    double summaryValue() const override { return mean(); }

  private:
    std::vector<uint64_t> _buckets;
    uint64_t _count = 0;
    double _sum = 0;
    int64_t _min = 0;
    int64_t _max = 0;
};

/** A named, nestable container of statistics. */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &groupName() const { return _name; }

    /** Recursively print all statistics under this group. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Emit the full hierarchical statistics tree as one JSON object:
     * {"name":...,"stats":{<stat>:{...}},"groups":{<child>:{...}}}.
     * Machine-readable counterpart of dump(); always valid JSON.
     */
    void dumpJson(std::ostream &os) const;

    /** Recursively reset all statistics under this group. */
    void resetStats();

    /** Look up a direct child statistic by name (nullptr if absent). */
    const Info *findStat(const std::string &name) const;

    /** Look up a direct child group by name (nullptr if absent). */
    const Group *findGroup(const std::string &name) const;

    /**
     * Resolve a dotted path of child groups ending in a statistic,
     * relative to this group: resolve("proc3.trapsRemoteMiss") finds
     * child group "proc3", then its stat "trapsRemoteMiss". A path
     * without dots is equivalent to findStat(). @return nullptr when
     * any component is missing.
     */
    const Info *resolve(const std::string &path) const;

    /** All statistics owned directly by this group, in creation order. */
    const std::vector<Info *> &statsList() const { return _stats; }

    /** All direct child groups, in creation order. */
    const std::vector<Group *> &childGroups() const { return _children; }

  private:
    friend class Info;

    void addStat(Info *info) { _stats.push_back(info); }
    void addChild(Group *g) { _children.push_back(g); }
    void removeChild(Group *g);

    std::string _name;
    Group *_parent;
    std::vector<Info *> _stats;
    std::vector<Group *> _children;
};

} // namespace april::stats

#endif // APRIL_COMMON_STATS_HH

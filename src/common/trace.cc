#include "common/trace.hh"

#include <string>

#include "common/json.hh"

namespace april::trace
{

Recorder::Recorder(RecorderConfig config) : config_(std::move(config))
{
    events_.reserve(4096);
}

std::string
Recorder::trapName(uint8_t kind) const
{
    if (kind < config_.trapNames.size())
        return config_.trapNames[kind];
    return "trap" + std::to_string(int(kind));
}

std::string
Recorder::cohStateName(uint8_t state) const
{
    if (state < config_.cohStateNames.size())
        return config_.cohStateNames[state];
    return "state" + std::to_string(int(state));
}

namespace
{

/** One trace-event object. @p args is pre-rendered ("\"k\":1") or empty. */
void
writeEvent(std::ostream &os, bool &first, const std::string &name,
           const char *ph, const std::string &cat, uint64_t ts,
           uint32_t pid, const std::string &args,
           int64_t async_id = -1)
{
    os << (first ? "\n" : ",\n") << "{\"name\":";
    first = false;
    json::writeString(os, name);
    os << ",\"ph\":\"" << ph << "\"";
    if (!cat.empty())
        os << ",\"cat\":\"" << cat << "\"";
    os << ",\"ts\":" << ts << ",\"pid\":" << pid;
    if (async_id >= 0)
        os << ",\"id\":" << async_id;
    else
        os << ",\"tid\":0";
    if (ph[0] == 'i')
        os << ",\"s\":\"t\"";
    if (!args.empty())
        os << ",\"args\":{" << args << "}";
    os << "}";
}

} // namespace

void
Recorder::writeChromeTrace(std::ostream &os,
                           const ExtraEventWriter &extra) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;

    // Track metadata: one Perfetto process per node.
    for (uint32_t n = 0; n < config_.numNodes; ++n) {
        writeEvent(os, first, "process_name", "M", "", 0, n,
                   "\"name\":\"node" + std::to_string(n) + "\"");
        writeEvent(os, first, "process_sort_index", "M", "", 0, n,
                   "\"sort_index\":" + std::to_string(n));
        writeEvent(os, first, "thread_name", "M", "", 0, n,
                   "\"name\":\"events\"");
    }

    auto frame_id = [&](uint32_t node, uint32_t frame) {
        return int64_t(node) * config_.framesPerNode + frame;
    };
    auto frame_name = [](uint32_t frame) {
        return "frame" + std::to_string(frame);
    };

    // Which frame currently occupies each core's async frame track
    // (-1: no switch seen yet; the opening "b" is emitted lazily so
    // nodes that never switch get no frame track at all).
    std::vector<int64_t> open(config_.numNodes, -1);
    uint64_t last_ts = 0;

    for (const Event &e : events_) {
        last_ts = e.cycle;
        switch (e.kind) {
          case EventKind::CtxSwitch: {
            if (e.node < open.size()) {
                if (open[e.node] < 0) {
                    // The from-frame has occupied the core since boot.
                    writeEvent(os, first, frame_name(e.a), "b", "frame",
                               0, e.node, "", frame_id(e.node, e.a));
                }
                writeEvent(os, first, frame_name(e.a), "e", "frame",
                           e.cycle, e.node, "", frame_id(e.node, e.a));
                writeEvent(os, first, frame_name(e.b), "b", "frame",
                           e.cycle, e.node, "", frame_id(e.node, e.b));
                open[e.node] = e.b;
            }
            writeEvent(os, first,
                       "switch f" + std::to_string(e.a) + "->f" +
                           std::to_string(e.b),
                       "i", "ctx", e.cycle, e.node,
                       "\"from\":" + std::to_string(e.a) +
                           ",\"to\":" + std::to_string(e.b));
            break;
          }
          case EventKind::Trap:
            writeEvent(os, first, trapName(e.a), "i", "trap", e.cycle,
                       e.node, "\"pc\":" + std::to_string(e.arg));
            break;
          case EventKind::Coherence:
            writeEvent(os, first,
                       cohStateName(e.a) + "->" + cohStateName(e.b),
                       "i", "coh", e.cycle, e.node,
                       "\"line\":" + std::to_string(e.arg) +
                           ",\"requester\":" + std::to_string(e.arg2));
            break;
          case EventKind::NetSend:
            writeEvent(os, first, "send", "i", "net", e.cycle, e.node,
                       "\"dst\":" + std::to_string(e.arg) +
                           ",\"flits\":" + std::to_string(e.arg2));
            break;
          case EventKind::NetDeliver:
            writeEvent(os, first, "deliver", "i", "net", e.cycle,
                       e.node,
                       "\"src\":" + std::to_string(e.arg) +
                           ",\"latency\":" + std::to_string(e.arg2));
            break;
          case EventKind::FeRetry:
            writeEvent(os, first, "fe-retry", "i", "fe", e.cycle,
                       e.node,
                       "\"addr\":" + std::to_string(e.arg) +
                           ",\"store\":" + std::to_string(e.a));
            break;
          case EventKind::Race:
            writeEvent(os, first, "race", "i", "race", e.cycle,
                       e.node,
                       "\"addr\":" + std::to_string(e.arg) +
                           ",\"pc\":" + std::to_string(e.arg2) +
                           ",\"write\":" + std::to_string(e.a) +
                           ",\"other\":" + std::to_string(e.b));
            break;
        }
    }

    // Close any frame slice still open so every async track is
    // well-formed.
    for (uint32_t n = 0; n < config_.numNodes; ++n) {
        if (open[n] >= 0) {
            uint32_t f = uint32_t(open[n]);
            writeEvent(os, first, frame_name(f), "e", "frame", last_ts,
                       n, "", frame_id(n, f));
        }
    }

    if (extra)
        extra(os, first);

    os << "\n],\"otherData\":{\"droppedEvents\":" << dropped_
       << "}}\n";
}

} // namespace april::trace

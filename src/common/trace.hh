/**
 * @file
 * A cycle-stamped machine event recorder with Chrome-trace-event
 * export (loadable at ui.perfetto.dev).
 *
 * The recorder is a flat append-only log of small fixed-size events:
 * context switches (from/to hardware frame), traps (by TrapKind),
 * directory protocol transitions, network packet send/deliver, and
 * failed full/empty synchronization attempts. Components hold a
 * nullable Recorder pointer wired up by the enclosing machine; the
 * disabled path is therefore a single pointer test.
 *
 * Cycle-exactness: events carry the absolute machine cycle at the
 * moment the component acted. The cycle-skipping run loop only
 * fast-forwards windows proven event-free by nextEventCycle(), so the
 * recorded stream is byte-identical with skipping on or off (asserted
 * by tests/trace_test.cc).
 *
 * Export layout: one Perfetto process per node (pid = node) with one
 * instant-event track (tid 0), plus one async track per hardware task
 * frame (cat "frame") showing which frame occupies the core over
 * time.
 */

#ifndef APRIL_COMMON_TRACE_HH
#define APRIL_COMMON_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace april::trace
{

/** Event families (the ISSUE's four observable machine activities,
 *  with the network split into its three phases). */
enum class EventKind : uint8_t
{
    CtxSwitch,      ///< a: from frame, b: to frame
    Trap,           ///< a: TrapKind, arg: trapping PC
    Coherence,      ///< a: old dir state, b: new, arg: line, arg2: req
    NetSend,        ///< arg: dst node, arg2: flits
    NetDeliver,     ///< arg: src node, arg2: send-to-delivery cycles
    FeRetry,        ///< a: 1 store/0 load, arg: faulting word address
    Race,           ///< a: 1 write/0 read, b: prior owner node,
                    ///< arg: word address, arg2: pc
};

/** One recorded machine event (kept small: the log gets long). */
struct Event
{
    uint64_t cycle = 0;
    uint32_t node = 0;
    EventKind kind = EventKind::CtxSwitch;
    uint8_t a = 0;
    uint8_t b = 0;
    uint32_t arg = 0;
    uint32_t arg2 = 0;

    bool operator==(const Event &) const = default;
};

/** Static machine shape + name tables the exporter needs. */
struct RecorderConfig
{
    uint32_t numNodes = 1;
    uint32_t framesPerNode = 1;
    /// Hard cap on recorded events; the log stops growing past it
    /// (deterministically — the same events drop with skipping on or
    /// off) and dropped() reports the overflow.
    uint64_t capacity = 1u << 22;
    /// Event::a -> trap name for Trap events (machine-supplied so the
    /// base library needs no ISA dependency). Missing entries render
    /// as "trap<N>".
    std::vector<std::string> trapNames;
    /// Event::a/b -> directory state name for Coherence events.
    std::vector<std::string> cohStateNames;
};

/** The per-machine event log. */
class Recorder
{
  public:
    explicit Recorder(RecorderConfig config);

    /** Append one event (drops silently once capacity is reached). */
    void
    record(const Event &e)
    {
        if (events_.size() < config_.capacity)
            events_.push_back(e);
        else
            ++dropped_;
    }

    const std::vector<Event> &events() const { return events_; }
    uint64_t dropped() const { return dropped_; }
    const RecorderConfig &config() const { return config_; }

    /** Fold another lane's overflow count into this log (used when
     *  merging the parallel engine's per-shard lanes). */
    void addDropped(uint64_t n) { dropped_ += n; }

    /** Discard all recorded events (a merged-out lane). */
    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /**
     * Callback appending extra trace events to the JSON stream. The
     * writer must emit complete event objects, writing "," before
     * each unless `first` (which it must clear after the first one).
     * Lets machines stitch higher-level spans (coherence-transaction
     * flows) into the export without this library knowing about them.
     */
    using ExtraEventWriter = std::function<void(std::ostream &, bool &)>;

    /**
     * Serialize as Chrome trace-event JSON ({"traceEvents":[...]}).
     * Deterministic for a given event log, so differential tests can
     * compare serializations byte for byte. `extra`, when set, is
     * invoked after the recorded events so callers can append
     * additional (deterministic) events to the same array.
     */
    void writeChromeTrace(std::ostream &os,
                          const ExtraEventWriter &extra = {}) const;

  private:
    std::string trapName(uint8_t kind) const;
    std::string cohStateName(uint8_t state) const;

    RecorderConfig config_;
    std::vector<Event> events_;
    uint64_t dropped_ = 0;
};

} // namespace april::trace

#endif // APRIL_COMMON_TRACE_HH

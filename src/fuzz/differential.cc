#include "fuzz/differential.hh"

#include <memory>
#include <sstream>

#include "machine/alewife_machine.hh"
#include "machine/perfect_machine.hh"
#include "machine/snapshot.hh"
#include "profile/report.hh"
#include "task/task_trace.hh"

namespace april::fuzz
{

namespace
{

struct AlewifeRun
{
    std::unique_ptr<AlewifeMachine> machine;
    MachineSnapshot snap;
    std::string stats;
    std::string trace;
    std::string cohTrace;       ///< transaction-span JSON (always on)
    std::string taskTrace;      ///< task-plane report JSON (always on)
    std::string breakdown;      ///< profile::cycleBreakdownJson
    std::string error;          ///< hang / failed quiesce
};

/** One machine-shape variant of the dirScheme x mesh axis. */
struct Variant
{
    const char *name = "FullMap";
    coh::DirScheme scheme = coh::DirScheme::FullMap;
    uint32_t ptrs = 4;
    int dim = 0;        ///< 0: the case's own mesh shape
    int radix = 0;
};

AlewifeRun
runAlewife(const FuzzCase &c, const Program &prog, bool cycle_skip,
           const DiffOptions &opts, uint32_t host_threads = 1,
           const Variant &v = {})
{
    AlewifeRun run;
    AlewifeParams p;
    p.network.dim = v.dim ? v.dim : c.dim;
    p.network.radix = v.radix ? v.radix : c.radix;
    p.dirScheme = v.scheme;
    p.dirPointers = v.ptrs;
    p.wordsPerNode = c.wordsPerNode;
    p.proc.numFrames = c.numFrames;
    p.seed = c.seed;
    p.bootRuntime = false;
    p.cycleSkip = cycle_skip;
    p.traceEvents = opts.compareTraces;
    // Transaction tracing is always on in the differential: the span
    // log is a deterministic artifact and must be bit-identical
    // across cycle-skip modes and host-thread counts.
    p.cohTrace = true;
    // The task plane rides along too: fuzz programs have no runtime
    // probes, but the processor hook points (future touches, f/e
    // stalls, TAS retries, frame switches) still emit events, and the
    // analyzed report must be bit-identical across the same axes.
    p.taskTrace = true;
    // Likewise the spec-conformance listener: every fuzz program also
    // checks each directory transition against the model checker's
    // rule tables (mc::Conformance).
    p.conformance = true;
    p.hostThreads = host_threads;

    run.machine = std::make_unique<AlewifeMachine>(p, &prog);
    AlewifeMachine &m = *run.machine;
    applyMemInit(c, m.memory());
    for (uint32_t n = 0; n < m.numNodes(); ++n)
        bootFuzzProcessor(m.proc(n), prog);

    m.run(opts.maxCycles);
    if (!m.halted()) {
        std::ostringstream os;
        os << "alewife(skip=" << cycle_skip << ", " << v.name
           << ") did not halt within " << opts.maxCycles
           << " cycles; node0 pc=" << m.proc(0).pc() << " ["
           << prog.symbolAt(m.proc(0).pc()) << "]";
        run.error = os.str();
        return run;
    }
    if (!m.quiesce(opts.quiesceCycles)) {
        run.error = "alewife machine failed to quiesce after halt";
        return run;
    }

    run.snap = snapshotMachine(m);
    std::ostringstream stats;
    m.dump(stats);
    run.stats = stats.str();
    // quiesce() already panicked if any node's bucket sum diverged
    // from its cycle count; here we pin the full breakdown so the two
    // cycle-skip modes must also agree bucket by bucket, frame by
    // frame (§7.5: skip windows are attributed, never dropped).
    run.breakdown = profile::cycleBreakdownJson(m.profileSource().procs);
    if (opts.compareTraces) {
        std::ostringstream trace;
        m.writeTrace(trace);
        run.trace = trace.str();
    }
    std::ostringstream coh;
    m.writeCohTrace(coh);
    run.cohTrace = coh.str();
    task::AnalyzeParams tp;
    tp.numNodes = m.numNodes();
    tp.totalCycles = m.cycle();
    std::ostringstream task_os;
    task::writeReportJson(task_os,
                          task::analyze(m.taskTracer()->events(), tp));
    run.taskTrace = task_os.str();
    return run;
}

} // namespace

DiffResult
runDifferential(const FuzzCase &c, const DiffOptions &opts)
{
    DiffResult r;
    Program prog = buildProgram(c);

    AlewifeRun on = runAlewife(c, prog, true, opts);
    if (!on.error.empty()) {
        r.divergence = on.error;
        return r;
    }
    AlewifeRun off = runAlewife(c, prog, false, opts);
    if (!off.error.empty()) {
        r.divergence = off.error;
        return r;
    }
    r.alewifeCycles = on.snap.cycle;

    std::ostringstream div;
    if (!on.snap.coherenceErrors.empty()) {
        div << "coherence violations in the skip-on run:\n";
        for (const std::string &e : on.snap.coherenceErrors)
            div << "  " << e << "\n";
    }

    std::string exact = compareExact(on.snap, off.snap);
    if (!exact.empty())
        div << "cycle-skip ON vs OFF:\n" << exact;
    if (on.stats != off.stats) {
        div << "cycle-skip ON vs OFF: stats dumps differ ("
            << on.stats.size() << " vs " << off.stats.size()
            << " bytes)\n";
    }
    if (on.breakdown != off.breakdown) {
        div << "cycle-skip ON vs OFF: cycle-accounting breakdowns "
               "differ:\n  on:  " << on.breakdown << "\n  off: "
            << off.breakdown << "\n";
    }
    if (on.cohTrace != off.cohTrace) {
        div << "cycle-skip ON vs OFF: coherence-transaction traces "
               "differ (" << on.cohTrace.size() << " vs "
            << off.cohTrace.size() << " bytes)\n";
    }
    if (on.taskTrace != off.taskTrace) {
        div << "cycle-skip ON vs OFF: task-trace reports differ ("
            << on.taskTrace.size() << " vs " << off.taskTrace.size()
            << " bytes)\n";
    }
    if (opts.compareTraces && on.trace != off.trace) {
        div << "cycle-skip ON vs OFF: trace JSON differs ("
            << on.trace.size() << " vs " << off.trace.size()
            << " bytes)\n";
    }

    // The parallel execution engine: same machine, same skip mode,
    // sharded across host worker threads. Must be a bit-for-bit twin
    // of the sequential run (DESIGN.md §7.6).
    if (opts.hostThreads > 1) {
        AlewifeRun par =
            runAlewife(c, prog, true, opts, opts.hostThreads);
        if (!par.error.empty()) {
            r.divergence = par.error;
            return r;
        }
        std::string pexact = compareExact(on.snap, par.snap);
        if (!pexact.empty()) {
            div << "threads=1 vs threads=" << opts.hostThreads
                << ":\n" << pexact;
        }
        if (on.stats != par.stats) {
            div << "threads=1 vs threads=" << opts.hostThreads
                << ": stats dumps differ (" << on.stats.size()
                << " vs " << par.stats.size() << " bytes)\n";
        }
        if (on.breakdown != par.breakdown) {
            div << "threads=1 vs threads=" << opts.hostThreads
                << ": cycle-accounting breakdowns differ\n";
        }
        if (on.cohTrace != par.cohTrace) {
            div << "threads=1 vs threads=" << opts.hostThreads
                << ": coherence-transaction traces differ ("
                << on.cohTrace.size() << " vs " << par.cohTrace.size()
                << " bytes)\n";
        }
        if (on.taskTrace != par.taskTrace) {
            div << "threads=1 vs threads=" << opts.hostThreads
                << ": task-trace reports differ ("
                << on.taskTrace.size() << " vs "
                << par.taskTrace.size() << " bytes)\n";
        }
        if (opts.compareTraces && on.trace != par.trace) {
            div << "threads=1 vs threads=" << opts.hostThreads
                << ": trace JSON differs (" << on.trace.size()
                << " vs " << par.trace.size() << " bytes)\n";
        }
    }

    // The dirScheme x mesh axis: the limited directory (default and
    // forced-spill pointer counts) and — when the case is a 2x2 mesh —
    // the same four nodes reshaped as a 1-D line, which changes every
    // hop distance. Each variant changes timing only: it must be
    // bit-identical across cycle-skip modes (and host-thread counts)
    // and architecturally identical to the full-map run above.
    if (opts.schemeAxis) {
        std::vector<Variant> variants = {
            {"limited(i=4)", coh::DirScheme::LimitedPtr, 4, 0, 0},
            {"limited(forced-spill)", coh::DirScheme::LimitedPtr, 0, 0,
             0},
        };
        if (c.dim == 2 && c.radix == 2) {
            variants.push_back(
                {"line-mesh+limited(i=1)", coh::DirScheme::LimitedPtr,
                 1, 1, 4});
        }
        for (const Variant &v : variants) {
            AlewifeRun von = runAlewife(c, prog, true, opts, 1, v);
            if (!von.error.empty()) {
                r.divergence = von.error;
                return r;
            }
            AlewifeRun voff = runAlewife(c, prog, false, opts, 1, v);
            if (!voff.error.empty()) {
                r.divergence = voff.error;
                return r;
            }
            std::string vexact = compareExact(von.snap, voff.snap);
            if (!vexact.empty()) {
                div << v.name << " cycle-skip ON vs OFF:\n" << vexact;
            }
            if (von.stats != voff.stats) {
                div << v.name
                    << " cycle-skip ON vs OFF: stats dumps differ\n";
            }
            if (von.breakdown != voff.breakdown) {
                div << v.name
                    << " cycle-skip ON vs OFF: cycle-accounting "
                       "breakdowns differ\n";
            }
            if (von.cohTrace != voff.cohTrace) {
                div << v.name
                    << " cycle-skip ON vs OFF: coherence-transaction "
                       "traces differ\n";
            }
            if (von.taskTrace != voff.taskTrace) {
                div << v.name
                    << " cycle-skip ON vs OFF: task-trace reports "
                       "differ\n";
            }
            if (opts.compareTraces && von.trace != voff.trace) {
                div << v.name
                    << " cycle-skip ON vs OFF: trace JSON differs\n";
            }
            if (opts.hostThreads > 1) {
                AlewifeRun vpar = runAlewife(c, prog, true, opts,
                                             opts.hostThreads, v);
                if (!vpar.error.empty()) {
                    r.divergence = vpar.error;
                    return r;
                }
                std::string ppexact =
                    compareExact(von.snap, vpar.snap);
                if (!ppexact.empty()) {
                    div << v.name << " threads=1 vs threads="
                        << opts.hostThreads << ":\n" << ppexact;
                }
                if (von.stats != vpar.stats ||
                    von.cohTrace != vpar.cohTrace ||
                    von.taskTrace != vpar.taskTrace ||
                    von.breakdown != vpar.breakdown) {
                    div << v.name << " threads=1 vs threads="
                        << opts.hostThreads
                        << ": deterministic artifacts differ\n";
                }
            }
            std::string varch =
                compareArchitectural(on.snap, von.snap);
            if (!varch.empty()) {
                div << "FullMap vs " << v.name << ":\n" << varch;
            }
        }
    }

    // The oracle: perfect memory, same cores, same program.
    PerfectMachineParams pp;
    pp.numNodes = c.numNodes();
    pp.wordsPerNode = c.wordsPerNode;
    pp.proc.numFrames = c.numFrames;
    pp.seed = c.seed;
    pp.bootRuntime = false;
    PerfectMachine oracle(pp, &prog);
    applyMemInit(c, oracle.memory());
    for (uint32_t n = 0; n < oracle.numNodes(); ++n)
        bootFuzzProcessor(oracle.proc(n), prog);
    oracle.run(opts.maxCycles);
    if (!oracle.halted()) {
        std::ostringstream os;
        os << "oracle did not halt within " << opts.maxCycles
           << " cycles; node0 pc=" << oracle.proc(0).pc() << " ["
           << prog.symbolAt(oracle.proc(0).pc()) << "]";
        r.divergence = os.str();
        return r;
    }
    if (!oracle.quiesce(opts.quiesceCycles)) {
        r.divergence = "oracle failed to quiesce after halt";
        return r;
    }
    MachineSnapshot osnap = snapshotMachine(oracle);
    r.perfectCycles = osnap.cycle;

    std::string arch = compareArchitectural(on.snap, osnap);
    if (!arch.empty())
        div << "alewife vs ISA oracle:\n" << arch;

    r.divergence = div.str();
    r.ok = r.divergence.empty();
    return r;
}

namespace
{

/**
 * Can deleting @p item possibly change behavior beyond its own
 * destination register? Uses the ISA dataflow summary: side-effecting
 * or condition-consuming/producing instructions are "live" and only
 * tried in the second, unguided pass.
 */
bool
itemLooksDead(const std::vector<BodyItem> &body, size_t index)
{
    for (const Instruction &inst : instructionsFor(body[index])) {
        OperandInfo oi = operandInfo(inst);
        if (oi.sideEffects || oi.indirectRegs || oi.setsCond)
            return false;
        if (oi.dst < 0)
            continue;
        // Is the destination read again before being overwritten?
        for (size_t j = index + 1; j < body.size(); ++j) {
            bool overwritten = false;
            for (const Instruction &later : instructionsFor(body[j])) {
                OperandInfo lo = operandInfo(later);
                if (lo.indirectRegs)
                    return false;
                for (uint8_t s = 0; s < lo.numSrcs; ++s) {
                    if (lo.srcs[s] == uint8_t(oi.dst))
                        return false;
                }
                if (lo.dst == oi.dst)
                    overwritten = true;
            }
            if (overwritten)
                break;
        }
    }
    return true;
}

/** Delete body item @p index of node @p node (records the drop). */
FuzzCase
withoutItem(const FuzzCase &c, uint32_t node, size_t index)
{
    FuzzCase mutated = c;
    uint32_t orig = mutated.bodies[node][index].origIndex;
    mutated.bodies[node].erase(mutated.bodies[node].begin() +
                               long(index));
    mutated.dropped.emplace_back(node, orig);
    return mutated;
}

} // namespace

FuzzCase
shrinkCase(const FuzzCase &c, const FailPredicate &fails,
           int maxProbes)
{
    FuzzCase best = c;
    int probes = 0;

    // Pass 1: dead-value items (cheap wins, usually most of the body).
    // Pass 2: everything, last-to-first so branch skips over earlier
    // items keep their meaning as long as possible. Repeat both to a
    // fixpoint: deleting one item routinely kills others.
    bool changed = true;
    while (changed && probes < maxProbes) {
        changed = false;
        for (int guided = 1; guided >= 0; --guided) {
            for (uint32_t node = 0; node < best.bodies.size(); ++node) {
                for (size_t i = best.bodies[node].size(); i-- > 0;) {
                    if (probes >= maxProbes)
                        return best;
                    if (guided &&
                        !itemLooksDead(best.bodies[node], i)) {
                        continue;
                    }
                    FuzzCase candidate = withoutItem(best, node, i);
                    ++probes;
                    if (fails(candidate)) {
                        best = std::move(candidate);
                        changed = true;
                    }
                }
            }
        }
    }
    return best;
}

std::string
reproText(const FuzzCase &c, const DiffResult &r)
{
    std::ostringstream os;
    os << "=== APRIL differential fuzzer: divergence ===\n";
    os << r.divergence;
    if (!r.divergence.empty() && r.divergence.back() != '\n')
        os << "\n";
    os << std::hex << "Reproduce with seed 0x" << c.seed << std::dec
       << " (" << c.numNodes() << " nodes, " << c.numFrames
       << " frames";
    if (!c.dropped.empty())
        os << ", " << c.dropped.size() << " items shrunk away";
    os << ").\n";
    os << "Corpus entry (save under tests/corpus/ to pin the "
          "regression):\n\n";
    os << serializeCase(c);
    return os.str();
}

} // namespace april::fuzz

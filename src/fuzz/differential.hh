/**
 * @file
 * Differential execution of generated APRIL programs.
 *
 * Each case runs three ways:
 *
 *   1. AlewifeMachine, cycle-skipping ON  (the production fast path)
 *   2. AlewifeMachine, cycle-skipping OFF (the plain per-cycle loop)
 *   3. PerfectMachine                     (the architectural oracle)
 *
 * Runs 1 and 2 must be bit-for-bit twins: identical snapshots,
 * identical cycle counts, identical stats dumps, byte-identical trace
 * JSON. Run 1 must additionally be architecturally equivalent to the
 * oracle (registers, memory + f/e bits, console, deterministic trap
 * counters) — the generator's single-writer discipline makes the
 * final state machine-independent even though the interleavings are
 * wildly different.
 *
 * On divergence the driver produces a self-contained repro (seed,
 * machine shape, shrunk program listing) and a greedy
 * instruction-deletion shrinker minimizes the case first.
 */

#ifndef APRIL_FUZZ_DIFFERENTIAL_HH
#define APRIL_FUZZ_DIFFERENTIAL_HH

#include <cstdint>
#include <functional>
#include <string>

#include "coherence/protocol.hh"
#include "fuzz/generator.hh"

namespace april::fuzz
{

/** Knobs of one differential run. */
struct DiffOptions
{
    uint64_t maxCycles = 4'000'000; ///< per machine; hang => failure
    uint64_t quiesceCycles = 250'000;
    bool compareTraces = true;      ///< trace JSON of runs 1 vs 2
    /// When > 1, a fourth run repeats run 1 sharded over this many
    /// host worker threads and must be bit-for-bit identical to it
    /// (snapshot, stats dump, cycle breakdown, trace JSON).
    uint32_t hostThreads = 1;
    /// The directory-scheme x mesh axis (DESIGN.md §7.8): replay the
    /// case under the limited directory (i = 4), the forced-spill
    /// variant (i = 0), and — for 2x2 cases — the same node count
    /// reshaped as a 1-D line mesh. Each variant must stay bit-for-bit
    /// identical across cycle-skip modes (and hostThreads, when set)
    /// and architecturally identical to the full-map run, which is
    /// itself checked against the PerfectMachine oracle.
    bool schemeAxis = false;
};

/** Outcome of one differential run. */
struct DiffResult
{
    bool ok = false;
    std::string divergence;         ///< empty when ok
    uint64_t alewifeCycles = 0;     ///< machine cycles, run 1
    uint64_t perfectCycles = 0;     ///< machine cycles, run 3
};

/** Run one case all three ways and cross-check. */
DiffResult runDifferential(const FuzzCase &c,
                           const DiffOptions &opts = {});

/** Does this (mutated) case still fail? Used by the shrinker. */
using FailPredicate = std::function<bool(const FuzzCase &)>;

/**
 * Greedy instruction-deletion shrinker: repeatedly delete body items
 * while @p fails stays true, to a fixpoint or until @p maxProbes
 * re-executions. Deletion order is guided by isa operandInfo():
 * items computing dead values (destination never read later, no side
 * effects) go first, so typical cases collapse in a few probes.
 */
FuzzCase shrinkCase(const FuzzCase &c, const FailPredicate &fails,
                    int maxProbes = 400);

/**
 * Self-contained failure report: divergence, reproduce-from-seed
 * instructions and the (shrunk) corpus entry ready to check in under
 * tests/corpus/.
 */
std::string reproText(const FuzzCase &c, const DiffResult &r);

} // namespace april::fuzz

#endif // APRIL_FUZZ_DIFFERENTIAL_HH

#include "fuzz/generator.hh"

#include <algorithm>
#include <sstream>

#include "common/digest.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "runtime/layout.hh"

namespace april::fuzz
{

namespace
{

// The fuzz arena sits above the run-time heap base so generated
// traffic can never collide with the node blocks initNode writes.
constexpr Addr kArenaOff = rt::heapOff + 64;
constexpr Addr kSharedOff = kArenaOff + 256;
constexpr Addr kFlagsOff = kArenaOff + 512;

Addr
ownRegionAddr(const FuzzCase &c, uint32_t node)
{
    return Addr(c.ownHome.at(node)) * c.wordsPerNode + kArenaOff +
           node * kOwnWords;
}

Addr
sharedRegionAddr(const FuzzCase &c)
{
    return Addr(c.sharedHome) * c.wordsPerNode + kSharedOff;
}

Addr
flagAddr(const FuzzCase &c, uint32_t node)
{
    // All done flags are homed on node 0, adjacent on purpose: the
    // line is written by every node, which stresses ownership
    // migration without breaking the one-writer-per-word discipline.
    (void)c;
    return kFlagsOff + node;
}

/** A random tagged word (Figure 3 mix, futures included). */
Word
randomTagged(Rng &rng)
{
    uint64_t p = rng.below(100);
    if (p < 55)
        return tagged::fixnum(int32_t(rng.next()) >> 2);
    Addr a = Addr(rng.below(4096));
    if (p < 70)
        return tagged::ptr(a, Tag::Other);
    if (p < 85)
        return tagged::ptr(a, Tag::Cons);
    return tagged::ptr(a, Tag::Future);
}

BodyItem
sampleItem(Rng &rng, Rng &vals, uint32_t index)
{
    BodyItem it;
    it.origIndex = index;
    it.reg = uint8_t(genreg::dataFirst + rng.below(genreg::numData));

    uint64_t p = rng.below(100);
    if (p < 30) {
        it.kind = ItemKind::Load;
        uint64_t r = rng.below(100);
        it.region = r < 45 ? Region::Own
                  : r < 80 ? Region::Shared
                           : Region::FutureAlias;
        it.feTrap = rng.chance(0.5);
        it.feModify = rng.chance(0.4);
        it.missTrap = rng.chance(0.5);
        it.strict = rng.chance(0.7);
        if (it.region == Region::Shared) {
            // Consuming loads would make shared words single-consumer
            // races; the read-only region stays truly read-only.
            it.feModify = false;
            it.slot = uint32_t(rng.below(kSharedWords));
        } else {
            it.slot = uint32_t(rng.below(kOwnWords));
        }
    } else if (p < 50) {
        it.kind = ItemKind::Store;
        it.region = rng.chance(0.75) ? Region::Own
                                     : Region::FutureAlias;
        it.feTrap = rng.chance(0.5);
        it.feModify = rng.chance(0.5);
        it.missTrap = rng.chance(0.5);
        it.strict = rng.chance(0.7);
        it.slot = uint32_t(rng.below(kOwnWords));
    } else if (p < 55) {
        it.kind = ItemKind::Tas;
        it.region = Region::Own;
        it.slot = uint32_t(rng.below(kOwnWords));
    } else if (p < 75) {
        it.kind = ItemKind::Alu;
        static const Opcode ops[] = {
            Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::DIV,
            Opcode::REM, Opcode::AND, Opcode::OR, Opcode::XOR,
            Opcode::SLL, Opcode::SRL, Opcode::SRA,
        };
        it.aluOp = ops[rng.below(std::size(ops))];
        it.strict = rng.chance(0.6);
        it.rs1 = rng.chance(0.15)
            ? genreg::futureAlias
            : uint8_t(genreg::dataFirst + rng.below(genreg::numData));
        if (it.aluOp == Opcode::DIV || it.aluOp == Opcode::REM) {
            // Immediate positive divisor: zero divisors panic the
            // core by design, and generated operands must never
            // depend on avoiding them dynamically.
            it.useImm = true;
            it.imm = int32_t(1 + vals.below(4094));
        } else if (rng.chance(0.4)) {
            it.useImm = true;
            it.imm = int32_t(vals.next());
        } else {
            it.rs2 = uint8_t(genreg::dataFirst +
                             rng.below(genreg::numData));
        }
    } else if (p < 83) {
        it.kind = ItemKind::Movi;
        it.value = randomTagged(vals);
    } else if (p < 93) {
        it.kind = ItemKind::Branch;
        // No Cond::AL: an always-taken branch makes the following
        // item dead code, which the lint gate (april-lint) rejects.
        // EQ appears twice to keep the table size — and therefore
        // the RNG stream of every existing corpus seed — unchanged.
        static const Cond conds[] = {
            Cond::EQ, Cond::NE, Cond::LT, Cond::GE, Cond::LE,
            Cond::GT, Cond::FULL, Cond::EMPTY, Cond::EQ,
        };
        it.cond = conds[rng.below(std::size(conds))];
        it.skip = uint32_t(1 + rng.below(3));
    } else if (p < 96) {
        it.kind = ItemKind::SoftTrap;
        it.vec = uint32_t(rng.below(8));
    } else {
        it.kind = ItemKind::Nop;
    }
    return it;
}

std::string
nodeLabel(uint32_t node)
{
    return "fz$node" + std::to_string(node);
}

std::string
itemLabel(uint32_t node, uint32_t index)
{
    return "fz$n" + std::to_string(node) + "$i" + std::to_string(index);
}

/** Emit one body item; branches go to @p target. */
void
emitItem(Assembler &as, const BodyItem &it, const std::string &target)
{
    switch (it.kind) {
      case ItemKind::Load:
      case ItemKind::Store: {
        uint8_t base = it.region == Region::Own ? genreg::ownBase
                     : it.region == Region::Shared ? genreg::sharedBase
                                                   : genreg::futureAlias;
        MissPolicy miss =
            it.missTrap ? MissPolicy::Trap : MissPolicy::Wait;
        if (it.kind == ItemKind::Load) {
            as.load(it.reg, base, wordOff(int(it.slot)), it.feTrap,
                    it.feModify, miss, it.strict);
        } else {
            as.store(it.reg, base, wordOff(int(it.slot)), it.feTrap,
                     it.feModify, miss, it.strict);
        }
        break;
      }
      case ItemKind::Tas:
        as.tas(it.reg, genreg::ownBase, wordOff(int(it.slot)));
        break;
      case ItemKind::Alu:
        as.push({.op = it.aluOp, .rd = it.reg, .rs1 = it.rs1,
                 .rs2 = it.rs2, .imm = it.imm, .useImm = it.useImm,
                 .strict = it.strict});
        break;
      case ItemKind::Movi:
        as.movi(it.reg, it.value);
        break;
      case ItemKind::Branch:
        as.j(it.cond, target);
        break;
      case ItemKind::SoftTrap:
        as.trap(int(it.vec));
        break;
      case ItemKind::Nop:
        as.nop();
        break;
    }
}

void
emitHandlers(Assembler &as)
{
    // Count-and-skip handlers for the deterministic trap kinds. They
    // run with ET clear, touch only globals, and never access memory,
    // so they behave identically on every machine model.
    as.bind("fz$fe");
    as.addiR(reg::g(6), reg::g(6), 1);
    as.rettSkip();
    as.bind("fz$future");
    as.addiR(reg::g(7), reg::g(7), 1);
    as.rettSkip();
    as.bind("fz$soft");
    as.addiR(reg::g(5), reg::g(5), 1);
    as.rettSkip();

    // The 6-cycle SPARC-style context-switch handler and the parked
    // frames' yield loop (Section 6.1), the same rotation the
    // run-time system and the stall-stress workload use. PSR travels
    // through the per-frame t0 so condition codes survive rotation.
    as.bind("fz$cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fz$yield");
    as.moviLabel(reg::t(1), "fz$yield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
}

} // namespace

uint32_t
FuzzCase::numNodes() const
{
    uint32_t n = 1;
    for (int d = 0; d < dim; ++d)
        n *= uint32_t(radix);
    return n;
}

FuzzCase
sampleCase(uint64_t seed)
{
    // Independent streams so that, e.g., a weight change in the
    // structure sampler does not reshuffle every operand value.
    Rng structure(deriveSeed(seed, 0));
    Rng vals(deriveSeed(seed, 1));
    Rng memRng(deriveSeed(seed, 2));

    FuzzCase c;
    c.seed = seed;
    c.dim = structure.chance(0.5) ? 1 : 2;      // 2 or 4 nodes
    c.radix = 2;
    c.numFrames = uint32_t(1 + structure.below(4));
    c.wordsPerNode = 1u << 14;

    uint32_t nodes = c.numNodes();
    for (uint32_t n = 0; n < nodes; ++n)
        c.ownHome.push_back(uint32_t(structure.below(nodes)));
    c.sharedHome = uint32_t(structure.below(nodes));

    for (uint32_t n = 0; n < nodes; ++n) {
        std::vector<Word> init;
        for (unsigned d = 0; d < genreg::numData; ++d)
            init.push_back(randomTagged(vals));
        c.dataInit.push_back(std::move(init));

        std::vector<BodyItem> body;
        uint32_t len = uint32_t(16 + structure.below(33));
        for (uint32_t i = 0; i < len; ++i)
            body.push_back(sampleItem(structure, vals, i));
        c.bodies.push_back(std::move(body));
    }

    for (uint32_t n = 0; n < nodes; ++n) {
        for (uint32_t i = 0; i < kOwnWords; ++i) {
            c.inits.push_back({ownRegionAddr(c, n) + i,
                               randomTagged(memRng),
                               memRng.chance(0.75)});
        }
        // Done flags start empty; stfnw publishes them.
        c.inits.push_back({flagAddr(c, n), 0, false});
    }
    for (uint32_t i = 0; i < kSharedWords; ++i) {
        c.inits.push_back({sharedRegionAddr(c) + i, randomTagged(memRng),
                           memRng.chance(0.75)});
    }
    return c;
}

Program
buildProgram(const FuzzCase &c)
{
    uint32_t nodes = c.numNodes();
    Assembler as;

    // Node dispatch: every core enters at fz$main and branches to its
    // own body on the NodeId I/O register.
    as.bind("fz$main");
    as.ldio(genreg::scratch0, int(IoReg::NodeId));
    for (uint32_t n = 0; n + 1 < nodes; ++n) {
        as.cmpiR(genreg::scratch0, int32_t(n));
        as.jRaw(Cond::EQ, nodeLabel(n));
        as.nop();
    }
    as.jRaw(Cond::AL, nodeLabel(nodes - 1));
    as.nop();

    for (uint32_t n = 0; n < nodes; ++n) {
        const std::vector<BodyItem> &body = c.bodies.at(n);
        as.bind(nodeLabel(n));

        as.movi(genreg::ownBase,
                tagged::ptr(ownRegionAddr(c, n), Tag::Other));
        as.movi(genreg::sharedBase,
                tagged::ptr(sharedRegionAddr(c), Tag::Other));
        as.movi(genreg::futureAlias,
                tagged::ptr(ownRegionAddr(c, n), Tag::Future));
        for (unsigned d = 0; d < genreg::numData; ++d) {
            as.movi(uint8_t(genreg::dataFirst + d),
                    c.dataInit.at(n).at(d));
        }
        // Latch the F condition bit before any generated Jfull/Jempty
        // can test it: LDIO in the dispatch does not latch F, so
        // without this a body's first f/e branch would dispatch on an
        // undefined latch (the stale-f-latch lint).
        as.ldnw(genreg::scratch0, genreg::ownBase, 0);

        std::string endLabel = itemLabel(n, uint32_t(body.size()));
        for (uint32_t i = 0; i < body.size(); ++i) {
            as.bind(itemLabel(n, i));
            uint32_t target = std::min(uint32_t(body.size()),
                                       i + 1 + body[i].skip);
            emitItem(as, body[i], itemLabel(n, target));
        }
        as.bind(endLabel);

        // Publish this node's done flag with a set-full store, then
        // node 0 alone barriers on every flag, reports one word and
        // stops the machine. Single console writer keeps output
        // ordering machine-independent.
        as.movi(genreg::scratch1,
                tagged::ptr(flagAddr(c, n), Tag::Other));
        as.movi(genreg::scratch2, tagged::fixnum(1));
        as.stfnw(genreg::scratch2, genreg::scratch1, 0);
        if (n == 0) {
            for (uint32_t k = 0; k < nodes; ++k) {
                std::string spin = "fz$wait" + std::to_string(k);
                as.movi(genreg::scratch3,
                        tagged::ptr(flagAddr(c, k), Tag::Other));
                as.bind(spin);
                as.ldnw(genreg::scratch2, genreg::scratch3, 0);
                as.jRaw(Cond::EMPTY, spin);
                as.nop();
            }
            as.stio(int(IoReg::ConsoleOut), genreg::dataFirst);
            as.stio(int(IoReg::MachineHalt), reg::r0);
        }
        as.halt();
    }

    emitHandlers(as);
    return as.finish();
}

void
applyMemInit(const FuzzCase &c, SharedMemory &mem)
{
    for (const MemInit &w : c.inits)
        mem.writeFe(w.addr, w.data, w.full);
}

void
bootFuzzProcessor(Processor &proc, const Program &prog)
{
    proc.reset(prog.entry("fz$main"));
    proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("fz$cswitch"));
    proc.setTrapVector(TrapKind::FeEmpty, prog.entry("fz$fe"));
    proc.setTrapVector(TrapKind::FeFull, prog.entry("fz$fe"));
    proc.setTrapVector(TrapKind::FutureCompute,
                       prog.entry("fz$future"));
    proc.setTrapVector(TrapKind::FutureMemory,
                       prog.entry("fz$future"));
    for (int v = 0; v < 8; ++v) {
        proc.setTrapVector(TrapKind(int(TrapKind::SoftTrap0) + v),
                           prog.entry("fz$soft"));
    }
    proc.setTrapVector(TrapKind::Ipi, prog.entry("fz$soft"));
    for (uint32_t f = 1; f < proc.numFrames(); ++f) {
        proc.frame(f).trapPC = prog.entry("fz$yield");
        proc.frame(f).trapNPC = prog.entry("fz$yield") + 1;
        proc.frame(f).trapRegs[0] = psr::ET;
    }
}

analysis::AnalysisOptions
lintOptions(const Program &prog)
{
    analysis::AnalysisOptions opts;
    opts.installAllHandlers();
    opts.numFrames = 4;

    analysis::AnalysisOptions::Root main;
    main.pc = prog.entry("fz$main");
    main.name = "fz$main";
    opts.roots.push_back(main);

    for (const char *h :
         {"fz$fe", "fz$future", "fz$soft", "fz$cswitch", "fz$yield"}) {
        analysis::AnalysisOptions::Root r;
        r.pc = prog.entry(h);
        r.name = h;
        r.allRegsDefined = true;
        r.handler = true;
        opts.roots.push_back(r);
    }
    return opts;
}

std::vector<Instruction>
instructionsFor(const BodyItem &item)
{
    Assembler as;
    // Branch targets resolve to the label itself; only the dataflow
    // shape matters to introspection clients.
    as.bind("fz$self");
    emitItem(as, item, "fz$self");
    Program p = as.finish();
    std::vector<Instruction> insts;
    for (uint32_t i = 0; i < p.size(); ++i)
        insts.push_back(p.at(i));
    return insts;
}

std::string
serializeCase(const FuzzCase &c)
{
    Program prog = buildProgram(c);
    std::ostringstream os;
    os << "# APRIL differential-fuzzer corpus entry\n";
    os << "# Replay: regenerate from `seed`, delete `drop` items, "
          "check `listing_digest`, run the differential.\n";
    os << std::hex;
    os << "seed = 0x" << c.seed << "\n";
    os << std::dec;
    os << "nodes = " << c.numNodes() << "\n";
    os << "frames = " << c.numFrames << "\n";
    if (!c.dropped.empty()) {
        os << "drop =";
        for (auto [node, idx] : c.dropped)
            os << " " << node << ":" << idx;
        os << "\n";
    }
    os << std::hex;
    os << "listing_digest = 0x" << digestString(prog.listing())
       << "\n";
    os << std::dec;
    os << "---\n";
    std::istringstream listing(prog.listing());
    std::string line;
    while (std::getline(listing, line))
        os << "# " << line << "\n";
    return os.str();
}

std::string
parseCase(const std::string &text, FuzzCase &out)
{
    uint64_t seed = 0, digest = 0;
    bool haveSeed = false, haveDigest = false;
    uint32_t nodes = 0, frames = 0;
    std::vector<std::pair<uint32_t, uint32_t>> drops;

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line == "---")
            break;
        if (line.empty() || line[0] == '#')
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            return "malformed line: " + line;
        auto trim = [](std::string s) {
            size_t a = s.find_first_not_of(" \t");
            size_t b = s.find_last_not_of(" \t\r");
            return a == std::string::npos ? std::string()
                                          : s.substr(a, b - a + 1);
        };
        std::string key = trim(line.substr(0, eq));
        std::string val = trim(line.substr(eq + 1));
        if (key == "seed") {
            seed = std::stoull(val, nullptr, 0);
            haveSeed = true;
        } else if (key == "listing_digest") {
            digest = std::stoull(val, nullptr, 0);
            haveDigest = true;
        } else if (key == "nodes") {
            nodes = uint32_t(std::stoul(val));
        } else if (key == "frames") {
            frames = uint32_t(std::stoul(val));
        } else if (key == "drop") {
            std::istringstream ds(val);
            std::string tok;
            while (ds >> tok) {
                auto colon = tok.find(':');
                if (colon == std::string::npos)
                    return "malformed drop token: " + tok;
                drops.emplace_back(
                    uint32_t(std::stoul(tok.substr(0, colon))),
                    uint32_t(std::stoul(tok.substr(colon + 1))));
            }
        } else {
            return "unknown key: " + key;
        }
    }
    if (!haveSeed)
        return "missing seed";

    out = sampleCase(seed);
    if (nodes && nodes != out.numNodes())
        return "node count drifted: expected " + std::to_string(nodes) +
               ", regenerated " + std::to_string(out.numNodes());
    if (frames && frames != out.numFrames)
        return "frame count drifted: expected " +
               std::to_string(frames) + ", regenerated " +
               std::to_string(out.numFrames);
    for (auto [node, idx] : drops) {
        if (node >= out.bodies.size())
            return "drop node out of range";
        auto &body = out.bodies[node];
        auto it = std::find_if(body.begin(), body.end(),
                               [idx = idx](const BodyItem &b) {
                                   return b.origIndex == idx;
                               });
        if (it == body.end())
            return "drop index not found: " + std::to_string(idx);
        body.erase(it);
        out.dropped.emplace_back(node, idx);
    }
    if (haveDigest) {
        uint64_t got = digestString(buildProgram(out).listing());
        if (got != digest) {
            std::ostringstream os;
            os << std::hex << "listing digest mismatch: entry has 0x"
               << digest << ", regenerated program has 0x" << got
               << " (generator drifted; re-shrink this entry)";
            return os.str();
        }
    }
    return "";
}

} // namespace april::fuzz

/**
 * @file
 * Constrained random generation of well-formed APRIL programs.
 *
 * Every generated case is designed to be *machine-independent by
 * construction* so that the ALEWIFE machine (with its remote misses,
 * context switches and coherence protocol) and the perfect-memory
 * oracle converge to the same architectural state:
 *
 *  - Single-writer memory ownership: each node stores only into its
 *    own read/write region (which may be *homed* on a remote node, so
 *    cross-node coherence traffic still happens), plus one private
 *    done flag. A separate shared region is read-only for everyone.
 *  - Consuming loads (feModify) are restricted to the own region, so
 *    full/empty state evolution of every word follows one node's
 *    program order.
 *  - Only node 0 writes the console and MachineHalt, after a
 *    full/empty-bit barrier on every node's done flag.
 *  - Control flow inside a body is forward-only branches.
 *
 * Within those constraints the generator covers the interesting ISA
 * surface: all 16 Table 2 load/store flavors, Jfull/Jempty on the
 * latched F bit, tagged fixnum/cons/future operands (futures trap in
 * strict instructions and are real data in raw ones), TAS, software
 * traps, and 1-4 hardware task frames.
 */

#ifndef APRIL_FUZZ_GENERATOR_HH
#define APRIL_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/checks.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "proc/processor.hh"

namespace april::fuzz
{

/** What one body item turns into. */
enum class ItemKind : uint8_t
{
    Load,       ///< one of the 8 Table 2 load flavors
    Store,      ///< one of the 8 Table 2 store flavors
    Tas,        ///< atomic test&set on the own region
    Alu,        ///< 3-address compute (strict or raw)
    Movi,       ///< load a random tagged constant
    Branch,     ///< forward conditional branch (incl. Jfull/Jempty)
    SoftTrap,   ///< TRAP #0..7
    Nop,
};

/** Which base register a memory item goes through. */
enum class Region : uint8_t
{
    Own,        ///< r1: this node's read/write region
    Shared,     ///< r2: global read-only region
    FutureAlias,///< r5: future-tagged pointer to the own region
};

/** One randomly sampled body instruction (spec domain, not ISA). */
struct BodyItem
{
    ItemKind kind = ItemKind::Nop;
    uint32_t origIndex = 0;     ///< index in the unshrunk body

    // Memory items.
    Region region = Region::Own;
    bool feTrap = false;
    bool feModify = false;
    bool missTrap = false;      ///< MissPolicy::Trap vs Wait
    bool strict = true;
    uint32_t slot = 0;          ///< word index within the region
    uint8_t reg = 16;           ///< data register (load rd / store rs)

    // ALU items.
    Opcode aluOp = Opcode::ADD;
    uint8_t rs1 = 16;
    uint8_t rs2 = 16;
    bool useImm = false;
    int32_t imm = 0;

    // Movi items.
    Word value = 0;

    // Branch items.
    Cond cond = Cond::EQ;
    uint32_t skip = 1;          ///< body items to jump over

    // SoftTrap items.
    uint32_t vec = 0;
};

/** One word of the deterministic initial memory image. */
struct MemInit
{
    Addr addr = 0;
    Word data = 0;
    bool full = true;
};

/** A complete generated test case. */
struct FuzzCase
{
    uint64_t seed = 0;

    // Machine shape.
    int dim = 1;                ///< network dimension (1 or 2)
    int radix = 2;              ///< nodes = radix^dim (2 or 4)
    uint32_t numFrames = 4;     ///< 1..4 hardware task frames
    uint32_t wordsPerNode = 1u << 14;

    // Memory plan.
    std::vector<uint32_t> ownHome;  ///< home node of each own region
    uint32_t sharedHome = 0;
    std::vector<MemInit> inits;

    /// Initial values of the data registers r16.. of each node.
    std::vector<std::vector<Word>> dataInit;

    // Per-node instruction specs.
    std::vector<std::vector<BodyItem>> bodies;

    /// Items deleted by the shrinker, as (node, origIndex) pairs
    /// relative to sampleCase(seed); empty for unshrunk cases.
    std::vector<std::pair<uint32_t, uint32_t>> dropped;

    uint32_t numNodes() const;
};

// Fixed register roles in generated programs (body items use
// r16..r23 as data registers).
namespace genreg
{
constexpr uint8_t ownBase = 1;      ///< other-tagged own-region pointer
constexpr uint8_t sharedBase = 2;   ///< other-tagged shared-region ptr
constexpr uint8_t scratch0 = 3;     ///< node-id dispatch
constexpr uint8_t scratch1 = 4;     ///< epilogue flag pointer
constexpr uint8_t futureAlias = 5;  ///< future-tagged own-region ptr
constexpr uint8_t scratch2 = 6;
constexpr uint8_t scratch3 = 7;
constexpr uint8_t dataFirst = 16;
constexpr unsigned numData = 8;
} // namespace genreg

/** Words per own region / shared region. */
constexpr uint32_t kOwnWords = 24;
constexpr uint32_t kSharedWords = 16;

/** Sample a complete random case from @p seed (pure function). */
FuzzCase sampleCase(uint64_t seed);

/** Assemble the case into an executable program. */
Program buildProgram(const FuzzCase &c);

/** Write the case's deterministic initial memory image into @p mem. */
void applyMemInit(const FuzzCase &c, SharedMemory &mem);

/**
 * Point @p proc at the generated entry and trap handlers and park
 * frames 1..numFrames-1 in the yield loop (same pattern for every
 * machine model, so boot state is identical by construction).
 */
void bootFuzzProcessor(Processor &proc, const Program &prog);

/** Re-assemble just the instructions of one body item (shrinker
 *  introspection; branch targets are rendered as forward skips). */
std::vector<Instruction> instructionsFor(const BodyItem &item);

/**
 * The lint profile matching bootFuzzProcessor(): fz$main is the entry
 * root with nothing but r0 defined, the fz$* handlers are handler
 * roots, and every trap vector is installed. Generated programs (and
 * every shrink of one) must analyze clean under this profile — the
 * fuzz corpus is gated on it in CI.
 */
analysis::AnalysisOptions lintOptions(const Program &prog);

/**
 * Serialize a case as a self-contained corpus entry: `key = value`
 * header (seed, machine shape, drop list, listing digest) then the
 * full program listing as a comment.
 */
std::string serializeCase(const FuzzCase &c);

/**
 * Reconstruct a case from a corpus entry: re-sample from the recorded
 * seed, re-apply the drop list, and verify the listing digest matches
 * byte for byte. @return "" on success, else an error message.
 */
std::string parseCase(const std::string &text, FuzzCase &out);

} // namespace april::fuzz

#endif // APRIL_FUZZ_GENERATOR_HH

#include "isa/asm_text.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>

namespace april
{

namespace
{

/** Cursor over one source line's operand text. */
struct LineParser
{
    const std::string &s;
    size_t pos = 0;
    std::string error{};        ///< first problem on this line

    void
    skipSpace()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t'))
            ++pos;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= s.size() || s[pos] == ';';
    }

    void
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
    }

    bool
    expect(char c)
    {
        skipSpace();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        fail(std::string("expected `") + c + "`");
        return false;
    }

    /** Next char is @p c (consumes it); no error when absent. */
    bool
    accept(char c)
    {
        skipSpace();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::string
    word()
    {
        skipSpace();
        size_t start = pos;
        while (pos < s.size() &&
               (std::isalnum(uint8_t(s[pos])) || s[pos] == '.' ||
                s[pos] == '_' || s[pos] == '$')) {
            ++pos;
        }
        return s.substr(start, pos - start);
    }

    std::optional<uint8_t>
    reg()
    {
        skipSpace();
        size_t save = pos;
        std::string w = word();
        unsigned base = 0;
        if (w.size() >= 2 && (w[0] == 'r' || w[0] == 'g' || w[0] == 't') &&
            std::isdigit(uint8_t(w[1]))) {
            base = w[0] == 'r' ? 0
                 : w[0] == 'g' ? reg::numUser
                                : reg::numUser + reg::numGlobal;
            unsigned limit = w[0] == 'r' ? reg::numUser
                           : w[0] == 'g' ? reg::numGlobal
                                          : reg::numTrap;
            char *end = nullptr;
            unsigned long n = std::strtoul(w.c_str() + 1, &end, 10);
            if (*end == '\0' && n < limit)
                return uint8_t(base + n);
        }
        pos = save;
        fail("expected a register, got `" + (w.empty() ? "?" : w) + "`");
        return std::nullopt;
    }

    std::optional<int32_t>
    number()
    {
        skipSpace();
        size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        while (pos < s.size() && std::isdigit(uint8_t(s[pos])))
            ++pos;
        if (pos == start || (pos == start + 1 && !std::isdigit(uint8_t(s[start])))) {
            pos = start;
            fail("expected a number");
            return std::nullopt;
        }
        return int32_t(std::strtol(s.c_str() + start, nullptr, 10));
    }

    /** `[base+off]` / `[base-off]` / `[base]`. */
    bool
    memRef(uint8_t &base, int32_t &off)
    {
        if (!expect('['))
            return false;
        auto b = reg();
        if (!b)
            return false;
        base = *b;
        off = 0;
        skipSpace();
        if (pos < s.size() && s[pos] != ']') {
            auto n = number();
            if (!n)
                return false;
            off = *n;
        }
        return expect(']');
    }

    /** Is the next operand a register name (vs a number / label)? */
    bool
    looksLikeReg()
    {
        skipSpace();
        size_t save = pos;
        bool ok = reg().has_value();
        pos = save;
        error.clear();
        return ok;
    }

    /** Does the next operand start like a number? */
    bool
    looksLikeNumber()
    {
        skipSpace();
        return pos < s.size() &&
               (std::isdigit(uint8_t(s[pos])) || s[pos] == '-' ||
                s[pos] == '+');
    }
};

struct TextAssembler
{
    Assembler as;
    std::vector<AsmTextDiagnostic> &diags;
    std::map<std::string, std::pair<uint32_t, uint32_t>> labels;  // name -> (pc, line)

    struct Ref
    {
        uint32_t index;         ///< instruction to patch
        std::string label;
        uint32_t line;
    };
    std::vector<Ref> refs;

    explicit TextAssembler(std::vector<AsmTextDiagnostic> &d) : diags(d) {}

    void
    report(uint32_t line, const std::string &msg)
    {
        diags.push_back({line, msg});
    }

    void
    bindLabel(const std::string &name, uint32_t line)
    {
        auto [it, inserted] = labels.emplace(name,
                                             std::make_pair(as.here(), line));
        if (!inserted) {
            report(line, "duplicate label `" + name + "` (first bound on "
                         "line " + std::to_string(it->second.second) + ")");
            return;
        }
        as.bind(name);
    }

    /** A branch/movi target: numeric pc or symbolic label. */
    void
    target(LineParser &p, Instruction &inst, uint32_t line)
    {
        if (p.looksLikeNumber()) {
            if (auto n = p.number())
                inst.imm = *n;
            return;
        }
        std::string label = p.word();
        if (label.empty()) {
            p.fail("expected a branch target");
            return;
        }
        refs.push_back({as.here(), label, line});
    }

    /** Decode a Table 2 flavor mnemonic; false if @p m is not one. */
    static bool
    memFlavor(const std::string &m, Instruction &inst)
    {
        std::string base = m;
        inst.strict = true;
        if (base.size() > 4 && base.substr(base.size() - 4) == ".raw") {
            inst.strict = false;
            base = base.substr(0, base.size() - 4);
        }
        if (base.size() < 4 || base.size() > 5)
            return false;
        bool isSt = base.compare(0, 2, "st") == 0;
        if (!isSt && base.compare(0, 2, "ld") != 0)
            return false;
        size_t i = 2;
        inst.op = isSt ? Opcode::ST : Opcode::LD;
        inst.feModify = base[i] == (isSt ? 'f' : 'e');
        if (inst.feModify)
            ++i;
        if (i + 2 != base.size())
            return false;
        if (base[i] == 't')
            inst.feTrap = true;
        else if (base[i] != 'n')
            return false;
        if (base[i + 1] == 't')
            inst.miss = MissPolicy::Trap;
        else if (base[i + 1] == 'w')
            inst.miss = MissPolicy::Wait;
        else
            return false;
        return true;
    }

    static std::optional<Cond>
    condOf(const std::string &suffix)
    {
        if (suffix.empty()) return Cond::AL;
        if (suffix == "eq") return Cond::EQ;
        if (suffix == "ne") return Cond::NE;
        if (suffix == "lt") return Cond::LT;
        if (suffix == "ge") return Cond::GE;
        if (suffix == "le") return Cond::LE;
        if (suffix == "gt") return Cond::GT;
        if (suffix == "full") return Cond::FULL;
        if (suffix == "empty") return Cond::EMPTY;
        return std::nullopt;
    }

    static std::optional<Opcode>
    aluOf(const std::string &m)
    {
        if (m == "add") return Opcode::ADD;
        if (m == "sub") return Opcode::SUB;
        if (m == "mul") return Opcode::MUL;
        if (m == "div") return Opcode::DIV;
        if (m == "rem") return Opcode::REM;
        if (m == "and") return Opcode::AND;
        if (m == "or") return Opcode::OR;
        if (m == "xor") return Opcode::XOR;
        if (m == "sll") return Opcode::SLL;
        if (m == "srl") return Opcode::SRL;
        if (m == "sra") return Opcode::SRA;
        return std::nullopt;
    }

    void
    parseInst(LineParser &p, const std::string &m, uint32_t line)
    {
        Instruction inst;

        // Fixed mnemonics first: several share prefixes with the
        // Table 2 flavor grammar (stfp/stio vs st*, ldio vs ld*).
        if (m == "nop") { commit(p, {.op = Opcode::NOP}, line); return; }
        if (m == "halt") { commit(p, {.op = Opcode::HALT}, line); return; }
        if (m == "incfp") { commit(p, {.op = Opcode::INCFP}, line); return; }
        if (m == "decfp") { commit(p, {.op = Opcode::DECFP}, line); return; }

        if (m == "rdfp" || m == "rdpsr" || m == "rdfence") {
            inst.op = m == "rdfp" ? Opcode::RDFP
                    : m == "rdpsr" ? Opcode::RDPSR
                                    : Opcode::RDFENCE;
            if (auto r = p.reg())
                inst.rd = *r;
            commit(p, inst, line);
            return;
        }
        if (m == "stfp" || m == "wrpsr") {
            inst.op = m == "stfp" ? Opcode::STFP : Opcode::WRPSR;
            if (auto r = p.reg())
                inst.rs1 = *r;
            commit(p, inst, line);
            return;
        }
        if (m == "rdspec") {
            inst.op = Opcode::RDSPEC;
            if (auto r = p.reg())
                inst.rd = *r;
            p.expect(',');
            p.expect('#');
            if (auto n = p.number())
                inst.imm = *n;
            commit(p, inst, line);
            return;
        }
        if (m == "wrspec") {
            inst.op = Opcode::WRSPEC;
            p.expect('#');
            if (auto n = p.number())
                inst.imm = *n;
            p.expect(',');
            if (auto r = p.reg())
                inst.rs1 = *r;
            commit(p, inst, line);
            return;
        }
        if (m == "rdregx") {
            inst.op = Opcode::RDREGX;
            if (auto r = p.reg())
                inst.rd = *r;
            p.expect(',');
            p.expect('[');
            if (auto r = p.reg())
                inst.rs1 = *r;
            p.expect(']');
            commit(p, inst, line);
            return;
        }
        if (m == "wrregx") {
            inst.op = Opcode::WRREGX;
            p.expect('[');
            if (auto r = p.reg())
                inst.rs1 = *r;
            p.expect(']');
            p.expect(',');
            if (auto r = p.reg())
                inst.rs2 = *r;
            commit(p, inst, line);
            return;
        }
        if (m == "rett") {
            inst.op = Opcode::RETT;
            std::string mode = p.word();
            if (mode == "retry")
                inst.imm = 0;
            else if (mode == "skip")
                inst.imm = 1;
            else
                p.fail("rett expects `retry` or `skip`");
            commit(p, inst, line);
            return;
        }
        if (m == "trap") {
            inst.op = Opcode::TRAP;
            p.expect('#');
            if (auto n = p.number())
                inst.imm = *n;
            commit(p, inst, line);
            return;
        }
        if (m == "flush") {
            inst.op = Opcode::FLUSH;
            p.memRef(inst.rs1, inst.imm);
            commit(p, inst, line);
            return;
        }
        if (m == "stio") {
            inst.op = Opcode::STIO;
            std::string io = p.word();
            if (io != "io")
                p.fail("stio expects `io[n]`");
            p.expect('[');
            if (auto n = p.number())
                inst.imm = *n;
            p.expect(']');
            p.expect(',');
            if (auto r = p.reg())
                inst.rd = *r;
            commit(p, inst, line);
            return;
        }
        if (m == "ldio") {
            inst.op = Opcode::LDIO;
            if (auto r = p.reg())
                inst.rd = *r;
            p.expect(',');
            std::string io = p.word();
            if (io != "io")
                p.fail("ldio expects `io[n]`");
            p.expect('[');
            if (auto n = p.number())
                inst.imm = *n;
            p.expect(']');
            commit(p, inst, line);
            return;
        }
        if (m == "movi") {
            inst.op = Opcode::MOVI;
            if (auto r = p.reg())
                inst.rd = *r;
            p.expect(',');
            if (p.looksLikeNumber()) {
                if (auto n = p.number())
                    inst.imm = *n;
            } else {
                target(p, inst, line);  // moviLabel form
            }
            commit(p, inst, line);
            return;
        }
        if (m == "tas") {
            inst.op = Opcode::TAS;
            inst.miss = MissPolicy::Wait;
            if (auto r = p.reg())
                inst.rd = *r;
            p.expect(',');
            p.memRef(inst.rs1, inst.imm);
            commit(p, inst, line);
            return;
        }
        if (m == "jmpl") {
            inst.op = Opcode::JMPL;
            if (auto r = p.reg())
                inst.rd = *r;
            p.expect(',');
            if (p.looksLikeReg()) {
                if (auto r = p.reg())
                    inst.rs1 = *r;
                p.expect('+');
                if (auto n = p.number())
                    inst.imm = *n;
            } else {
                inst.useImm = true;
                target(p, inst, line);
            }
            commit(p, inst, line);
            return;
        }

        // ALU mnemonics, with optional .raw suffix.
        {
            std::string base = m;
            bool strict = true;
            if (base.size() > 4 && base.substr(base.size() - 4) == ".raw") {
                strict = false;
                base = base.substr(0, base.size() - 4);
            }
            if (auto op = aluOf(base)) {
                inst.op = *op;
                inst.strict = strict;
                if (auto r = p.reg())
                    inst.rd = *r;
                p.expect(',');
                if (auto r = p.reg())
                    inst.rs1 = *r;
                p.expect(',');
                if (p.looksLikeReg()) {
                    if (auto r = p.reg())
                        inst.rs2 = *r;
                } else {
                    inst.useImm = true;
                    if (auto n = p.number())
                        inst.imm = *n;
                }
                commit(p, inst, line);
                return;
            }
        }

        // Table 2 memory flavors.
        if (memFlavor(m, inst)) {
            if (inst.op == Opcode::LD) {
                if (auto r = p.reg())
                    inst.rd = *r;
                p.expect(',');
                p.memRef(inst.rs1, inst.imm);
            } else {
                p.memRef(inst.rs1, inst.imm);
                p.expect(',');
                if (auto r = p.reg())
                    inst.rd = *r;      // store source lives in rd
            }
            commit(p, inst, line);
            return;
        }

        // Conditional branches: j + cond suffix.
        if (m.size() >= 1 && m[0] == 'j') {
            if (auto c = condOf(m.substr(1))) {
                inst.op = Opcode::J;
                inst.cond = *c;
                target(p, inst, line);
                commit(p, inst, line);
                return;
            }
        }

        report(line, "unknown mnemonic `" + m + "`");
    }

    void
    commit(LineParser &p, Instruction inst, uint32_t line)
    {
        if (!p.error.empty()) {
            report(line, p.error);
            return;
        }
        if (!p.atEnd()) {
            report(line, "trailing junk after operands: `" +
                             p.s.substr(p.pos) + "`");
            return;
        }
        as.push(inst);
    }
};

} // namespace

bool
assembleText(const std::string &text, Program &out,
             std::vector<AsmTextDiagnostic> &diags)
{
    size_t before = diags.size();
    TextAssembler ta(diags);

    uint32_t lineNo = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t eol = text.find('\n', pos);
        std::string line = text.substr(
            pos, eol == std::string::npos ? std::string::npos : eol - pos);
        pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
        ++lineNo;

        LineParser p{line};
        if (p.atEnd())
            continue;

        // Strip the `<pc>:` prefix listing() prints.
        if (p.looksLikeNumber()) {
            p.number();
            if (!p.accept(':')) {
                ta.report(lineNo, "expected `:` after address");
                continue;
            }
            if (p.atEnd())
                continue;
        }

        std::string w = p.word();
        if (w.empty()) {
            ta.report(lineNo, "expected a mnemonic or label");
            continue;
        }
        if (p.accept(':')) {
            ta.bindLabel(w, lineNo);
            if (p.atEnd())
                continue;
            w = p.word();
            if (w.empty()) {
                ta.report(lineNo, "expected a mnemonic after label");
                continue;
            }
        }
        ta.parseInst(p, w, lineNo);
    }

    for (const TextAssembler::Ref &r : ta.refs) {
        auto it = ta.labels.find(r.label);
        if (it == ta.labels.end()) {
            ta.report(r.line, "undefined label `" + r.label + "`");
            continue;
        }
        // A parse error can drop the referencing instruction; the
        // diagnostic for it was already reported.
        if (r.index < ta.as.here())
            ta.as.patchImm(r.index, int32_t(it->second.first));
    }

    std::vector<AsmDiagnostic> asmDiags;
    out = ta.as.finish(asmDiags);
    for (const AsmDiagnostic &d : asmDiags)
        diags.push_back({0, d.message});
    return diags.size() == before;
}

} // namespace april

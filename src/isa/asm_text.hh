/**
 * @file
 * Text-form assembler: parses the syntax Program::listing() and
 * disassemble() emit back into a Program.
 *
 * Grammar (one instruction or label per line):
 *
 *   label:                    ; binds `label` at the current pc
 *     add[.raw] rd, rs1, rs2|imm
 *     movi rd, imm
 *     ld[e][t|n][t|w][.raw] rd, [base+off]
 *     st[f][t|n][t|w][.raw] [base+off], rs
 *     tas rd, [base+off]
 *     j[eq|ne|lt|ge|le|gt|full|empty] target
 *     jmpl rd, target | jmpl rd, rs1+off
 *     rett retry|skip        trap #n        flush [base+off]
 *     stio io[n], rs         ldio rd, io[n]
 *     ... (every mnemonic disassemble() produces)
 *
 * Leading `<pc>:` prefixes (as printed by listing()) are accepted and
 * ignored; `;` starts a comment. Branch/jmpl/movi targets may be
 * numeric (what the disassembler prints) or symbolic labels resolved
 * at the end of the parse.
 *
 * Errors — unknown mnemonics, malformed operands, duplicate labels,
 * references to labels never bound — are reported as diagnostics
 * carrying 1-based source line numbers; the parse continues past them
 * so one pass surfaces every problem.
 */

#ifndef APRIL_ISA_ASM_TEXT_HH
#define APRIL_ISA_ASM_TEXT_HH

#include <string>
#include <vector>

#include "isa/assembler.hh"

namespace april
{

struct AsmTextDiagnostic
{
    uint32_t line = 0;          ///< 1-based source line
    std::string message;
};

/**
 * Assemble @p text into @p out. @return true when no diagnostics were
 * produced; on failure @p out still receives the partial program.
 */
bool assembleText(const std::string &text, Program &out,
                  std::vector<AsmTextDiagnostic> &diags);

} // namespace april

#endif // APRIL_ISA_ASM_TEXT_HH

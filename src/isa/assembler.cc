#include "isa/assembler.hh"

#include <sstream>

#include "common/logging.hh"

namespace april
{

uint32_t
Program::entry(const std::string &sym) const
{
    auto it = _symbols.find(sym);
    if (it == _symbols.end())
        panic("undefined program symbol: ", sym);
    return it->second;
}

bool
Program::hasSymbol(const std::string &sym) const
{
    return _symbols.count(sym) != 0;
}

std::string
Program::symbolAt(uint32_t pc) const
{
    std::string best;
    uint32_t best_addr = 0;
    for (const auto &[name, addr] : _symbols) {
        if (addr <= pc && (best.empty() || addr >= best_addr)) {
            best = name;
            best_addr = addr;
        }
    }
    if (best.empty())
        return "?";
    std::ostringstream os;
    os << best << "+" << (pc - best_addr);
    return os.str();
}

std::string
Program::listing() const
{
    // Invert the symbol table for annotation.
    std::map<uint32_t, std::vector<std::string>> at;
    for (const auto &[name, addr] : _symbols)
        at[addr].push_back(name);

    std::ostringstream os;
    for (uint32_t pc = 0; pc < _insts.size(); ++pc) {
        auto it = at.find(pc);
        if (it != at.end()) {
            for (const auto &name : it->second)
                os << name << ":\n";
        }
        os << "  " << pc << ":\t" << disassemble(_insts[pc]) << "\n";
    }
    return os.str();
}

void
Assembler::bind(const Label &name)
{
    auto [it, inserted] = symbols.emplace(name, here());
    if (!inserted) {
        diags.push_back(
            {here(), "label `" + name + "` bound twice (first at pc " +
                         std::to_string(it->second) + ")"});
    }
}

Assembler::Label
Assembler::fresh(const std::string &prefix)
{
    return prefix + "$" + std::to_string(freshCounter++);
}

Program
Assembler::finish()
{
    std::vector<AsmDiagnostic> problems;
    Program prog = finish(problems);
    if (!problems.empty()) {
        std::ostringstream os;
        for (const AsmDiagnostic &d : problems)
            os << "\n  pc " << d.where << ": " << d.message;
        panic("assembler diagnostics:", os.str());
    }
    return prog;
}

Program
Assembler::finish(std::vector<AsmDiagnostic> &out)
{
    for (const Fixup &f : fixups) {
        auto it = symbols.find(f.label);
        if (it == symbols.end()) {
            diags.push_back(
                {f.index, "undefined label `" + f.label + "`"});
            continue;
        }
        insts[f.index].imm = int32_t(it->second);
    }
    out.insert(out.end(), diags.begin(), diags.end());
    Program prog;
    prog._insts = std::move(insts);
    prog._symbols = std::move(symbols);
    prog._notes = std::move(notes);
    insts.clear();
    symbols.clear();
    notes.clear();
    fixups.clear();
    diags.clear();
    return prog;
}

void
Assembler::alu3(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2, bool strict)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.strict = strict;
    push(i);
}

void
Assembler::alui(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm, bool strict)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    i.useImm = true;
    i.strict = strict;
    push(i);
}

void
Assembler::movi(uint8_t rd, Word value)
{
    Instruction i;
    i.op = Opcode::MOVI;
    i.rd = rd;
    i.imm = int32_t(value);
    push(i);
}

void
Assembler::moviLabel(uint8_t rd, const Label &target)
{
    fixups.push_back({here(), target});
    movi(rd, 0);
}

void
Assembler::load(uint8_t rd, uint8_t base, int32_t off, bool fe_trap,
                bool fe_modify, MissPolicy miss, bool strict)
{
    Instruction i;
    i.op = Opcode::LD;
    i.rd = rd;
    i.rs1 = base;
    i.imm = off;
    i.strict = strict;
    i.feTrap = fe_trap;
    i.feModify = fe_modify;
    i.miss = miss;
    push(i);
}

void
Assembler::store(uint8_t rs, uint8_t base, int32_t off, bool fe_trap,
                 bool fe_modify, MissPolicy miss, bool strict)
{
    Instruction i;
    i.op = Opcode::ST;
    i.rd = rs;             // source operand lives in rd for stores
    i.rs1 = base;
    i.imm = off;
    i.strict = strict;
    i.feTrap = fe_trap;
    i.feModify = fe_modify;
    i.miss = miss;
    push(i);
}

void
Assembler::tas(uint8_t rd, uint8_t base, int32_t off)
{
    Instruction i;
    i.op = Opcode::TAS;
    i.rd = rd;
    i.rs1 = base;
    i.imm = off;
    i.miss = MissPolicy::Wait;
    push(i);
}

void
Assembler::jRaw(Cond cond, const Label &target)
{
    Instruction i;
    i.op = Opcode::J;
    i.cond = cond;
    fixups.push_back({here(), target});
    push(i);
}

void
Assembler::j(Cond cond, const Label &target)
{
    jRaw(cond, target);
    nop();
}

void
Assembler::callRaw(const Label &target)
{
    Instruction i;
    i.op = Opcode::JMPL;
    i.rd = reg::ra;
    i.useImm = true;
    fixups.push_back({here(), target});
    push(i);
}

void
Assembler::call(const Label &target)
{
    callRaw(target);
    nop();
}

void
Assembler::callReg(uint8_t rs)
{
    Instruction i;
    i.op = Opcode::JMPL;
    i.rd = reg::ra;
    i.rs1 = rs;
    i.useImm = false;
    push(i);
    nop();
}

void
Assembler::retRaw()
{
    Instruction i;
    i.op = Opcode::JMPL;
    i.rd = reg::r0;
    i.rs1 = reg::ra;
    i.useImm = false;
    push(i);
}

void
Assembler::ret()
{
    retRaw();
    nop();
}

void
Assembler::jmpReg(uint8_t rs, int32_t off)
{
    Instruction i;
    i.op = Opcode::JMPL;
    i.rd = reg::r0;
    i.rs1 = rs;
    i.imm = off;
    i.useImm = false;
    push(i);
    nop();
}

void
Assembler::flushLine(uint8_t base, int32_t off)
{
    Instruction i;
    i.op = Opcode::FLUSH;
    i.rs1 = base;
    i.imm = off;
    push(i);
}

} // namespace april

/**
 * @file
 * Macro-assembler for the APRIL instruction set.
 *
 * The run-time system (Section 6) and the Mul-T compiler back end both
 * emit code through this interface. Labels are symbolic and resolved
 * to absolute instruction addresses by finish().
 *
 * Branch discipline: APRIL has a single-cycle branch delay slot
 * (Section 3). The convenience emitters (j, call, ret, ...) append a
 * NOP into the slot automatically; the *Raw variants leave the slot to
 * the caller so hand-scheduled sequences (e.g. the 6-cycle context
 * switch handler) can fill it.
 */

#ifndef APRIL_ISA_ASSEMBLER_HH
#define APRIL_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/types.hh"

namespace april
{

/** A fully assembled instruction image plus its symbol table. */
class Program
{
  public:
    /** @return the instruction at address @p pc. */
    const Instruction &
    at(uint32_t pc) const
    {
        if (pc >= _insts.size())
            panic("instruction fetch past end of program: pc=", pc);
        return _insts[pc];
    }

    uint32_t size() const { return uint32_t(_insts.size()); }

    /** Resolve a symbol to its instruction address. */
    uint32_t entry(const std::string &sym) const;

    /** @return true when the symbol is defined. */
    bool hasSymbol(const std::string &sym) const;

    /** Nearest symbol at or before @p pc (for diagnostics). */
    std::string symbolAt(uint32_t pc) const;

    /** The full symbol table (name -> instruction address). */
    const std::map<std::string, uint32_t> &symbols() const { return _symbols; }

    /**
     * Out-of-band annotations (name, pc) in emission order. Unlike
     * symbols, notes never participate in symbolAt()/listing(), so
     * instrumentation markers (e.g. the task-probe `tp$...` notes) do
     * not perturb profiler symbolization. Several notes may share a
     * pc, and the same name may appear at several pcs.
     */
    const std::vector<std::pair<std::string, uint32_t>> &
    notes() const
    {
        return _notes;
    }

    /** Render the whole program as assembly text. */
    std::string listing() const;

  private:
    friend class Assembler;

    std::vector<Instruction> _insts;
    std::map<std::string, uint32_t> _symbols;
    std::vector<std::pair<std::string, uint32_t>> _notes;
};

/** A label problem found while assembling (see Assembler::finish). */
struct AsmDiagnostic
{
    /// Instruction address of the offending bind / reference site.
    uint32_t where = 0;
    std::string message;
};

/** Incremental program builder with label fix-ups. */
class Assembler
{
  public:
    using Label = std::string;

    /**
     * Define @p name at the current position. Binding a label twice is
     * recorded as a diagnostic (the first binding wins) and reported at
     * finish() time rather than asserting immediately.
     */
    void bind(const Label &name);

    /** Create a fresh unique label (not yet bound). */
    Label fresh(const std::string &prefix = "L");

    /**
     * Attach an out-of-band note naming the current position. Notes
     * land in Program::notes(), not the symbol table: they are
     * invisible to symbolAt()/listing() and may repeat freely.
     */
    void note(const std::string &name) { notes.push_back({name, here()}); }

    /** Current instruction address. */
    uint32_t here() const { return uint32_t(insts.size()); }

    /**
     * Resolve fix-ups and produce the final Program. Panics if any
     * label was bound twice or referenced but never bound, listing
     * every such diagnostic.
     */
    Program finish();

    /**
     * Non-panicking variant: label problems are appended to @p diags
     * (undefined references leave their branches pointing at 0).
     * Callers with untrusted input — the text assembler, fuzz tooling —
     * use this to report instead of aborting.
     */
    Program finish(std::vector<AsmDiagnostic> &diags);

    // --- compute -----------------------------------------------------
    // Strict forms trap when an operand is a future (Section 4);
    // the raw (suffix R) forms are for run-time-internal arithmetic.

    void add(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::ADD, rd, rs1, rs2, true); }
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::SUB, rd, rs1, rs2, true); }
    void mul(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::MUL, rd, rs1, rs2, true); }
    void div(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::DIV, rd, rs1, rs2, true); }
    void rem(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::REM, rd, rs1, rs2, true); }

    void addi(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::ADD, rd, rs1, imm, true); }
    void subi(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::SUB, rd, rs1, imm, true); }

    void addR(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::ADD, rd, rs1, rs2, false); }
    void subR(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::SUB, rd, rs1, rs2, false); }
    void mulR(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::MUL, rd, rs1, rs2, false); }
    void addiR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::ADD, rd, rs1, imm, false); }
    void subiR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::SUB, rd, rs1, imm, false); }
    void andR(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::AND, rd, rs1, rs2, false); }
    void andiR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::AND, rd, rs1, imm, false); }
    void orR(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::OR, rd, rs1, rs2, false); }
    void oriR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::OR, rd, rs1, imm, false); }
    void xorR(uint8_t rd, uint8_t rs1, uint8_t rs2) { alu3(Opcode::XOR, rd, rs1, rs2, false); }
    void xoriR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::XOR, rd, rs1, imm, false); }
    void slliR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::SLL, rd, rs1, imm, false); }
    void srliR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::SRL, rd, rs1, imm, false); }
    void sraiR(uint8_t rd, uint8_t rs1, int32_t imm) { alui(Opcode::SRA, rd, rs1, imm, false); }

    /** Strict compare: SUB to r0 (sets condition codes only). */
    void cmp(uint8_t rs1, uint8_t rs2) { alu3(Opcode::SUB, reg::r0, rs1, rs2, true); }
    void cmpi(uint8_t rs1, int32_t imm) { alui(Opcode::SUB, reg::r0, rs1, imm, true); }
    /** Raw compare (no future trap). */
    void cmpR(uint8_t rs1, uint8_t rs2) { alu3(Opcode::SUB, reg::r0, rs1, rs2, false); }
    void cmpiR(uint8_t rs1, int32_t imm) { alui(Opcode::SUB, reg::r0, rs1, imm, false); }

    /** rd <- full 32-bit immediate. */
    void movi(uint8_t rd, Word value);
    /** rd <- address of label (a code pointer), fixed up at finish(). */
    void moviLabel(uint8_t rd, const Label &target);
    /** Register move (raw). */
    void mov(uint8_t rd, uint8_t rs) { alui(Opcode::OR, rd, rs, 0, false); }

    // --- memory (Table 2) ---------------------------------------------
    // Generic emitters; fe_trap = trap on empty (LD) / full (ST),
    // fe_modify = reset-to-empty (LD) / set-to-full (ST).

    void load(uint8_t rd, uint8_t base, int32_t off, bool fe_trap,
              bool fe_modify, MissPolicy miss, bool strict = true);
    void store(uint8_t rs, uint8_t base, int32_t off, bool fe_trap,
               bool fe_modify, MissPolicy miss, bool strict = true);

    // Table 2 load flavors (offsets are raw; one word == 8).
    void ldtt(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, true, false, MissPolicy::Trap); }
    void ldett(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, true, true, MissPolicy::Trap); }
    void ldnt(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, false, false, MissPolicy::Trap); }
    void ldent(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, false, true, MissPolicy::Trap); }
    void ldnw(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, false, false, MissPolicy::Wait); }
    void ldenw(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, false, true, MissPolicy::Wait); }
    void ldtw(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, true, false, MissPolicy::Wait); }
    void ldetw(uint8_t rd, uint8_t b, int32_t o) { load(rd, b, o, true, true, MissPolicy::Wait); }

    // Store duals (trap on *full*; 'f' sets the bit to full).
    void sttt(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, true, false, MissPolicy::Trap); }
    void stftt(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, true, true, MissPolicy::Trap); }
    void stnt(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, false, false, MissPolicy::Trap); }
    void stfnt(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, false, true, MissPolicy::Trap); }
    void stnw(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, false, false, MissPolicy::Wait); }
    void stfnw(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, false, true, MissPolicy::Wait); }
    void sttw(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, true, false, MissPolicy::Wait); }
    void stftw(uint8_t rs, uint8_t b, int32_t o) { store(rs, b, o, true, true, MissPolicy::Wait); }

    /** Atomic test&set (Encore-style synchronization). */
    void tas(uint8_t rd, uint8_t base, int32_t off);

    // --- control flow --------------------------------------------------

    /** Conditional branch; a NOP fills the delay slot. */
    void j(Cond cond, const Label &target);
    /** Branch leaving the delay slot to the caller. */
    void jRaw(Cond cond, const Label &target);
    void jal(const Label &target) { j(Cond::AL, target); }

    /** Call a known function: link into `ra`, NOP in the slot. */
    void call(const Label &target);
    void callRaw(const Label &target);
    /** Indirect call through a register. */
    void callReg(uint8_t rs);
    /** Return: jmpl r0, ra+0 with a NOP slot. */
    void ret();
    void retRaw();
    /** Raw register-indirect jump (no link). */
    void jmpReg(uint8_t rs, int32_t off = 0);

    // --- multithreading / traps ----------------------------------------

    void incfp() { push({.op = Opcode::INCFP}); }
    void decfp() { push({.op = Opcode::DECFP}); }
    void rdfp(uint8_t rd) { push({.op = Opcode::RDFP, .rd = rd}); }
    void stfp(uint8_t rs) { push({.op = Opcode::STFP, .rs1 = rs}); }
    void rdpsr(uint8_t rd) { push({.op = Opcode::RDPSR, .rd = rd}); }
    void wrpsr(uint8_t rs) { push({.op = Opcode::WRPSR, .rs1 = rs}); }
    void rdspec(uint8_t rd, Spec s) { push({.op = Opcode::RDSPEC, .rd = rd, .imm = int32_t(s)}); }
    void wrspec(Spec s, uint8_t rs) { push({.op = Opcode::WRSPEC, .rs1 = rs, .imm = int32_t(s)}); }
    void rdregx(uint8_t rd, uint8_t ridx) { push({.op = Opcode::RDREGX, .rd = rd, .rs1 = ridx}); }
    void wrregx(uint8_t ridx, uint8_t rval) { push({.op = Opcode::WRREGX, .rs1 = ridx, .rs2 = rval}); }
    void rettRetry() { push({.op = Opcode::RETT, .imm = 0}); }
    void rettSkip() { push({.op = Opcode::RETT, .imm = 1}); }
    void trap(int vec) { push({.op = Opcode::TRAP, .imm = vec}); }

    // --- out-of-band mechanisms (Section 3.4) ---------------------------

    void flushLine(uint8_t base, int32_t off);
    void rdfence(uint8_t rd) { push({.op = Opcode::RDFENCE, .rd = rd}); }
    void stio(int io_reg, uint8_t rs) { push({.op = Opcode::STIO, .rd = rs, .imm = io_reg}); }
    void ldio(uint8_t rd, int io_reg) { push({.op = Opcode::LDIO, .rd = rd, .imm = io_reg}); }

    void halt() { push({.op = Opcode::HALT}); }
    void nop() { push({.op = Opcode::NOP}); }

    /** Append an arbitrary pre-built instruction. */
    void push(Instruction inst) { insts.push_back(inst); }

    /**
     * Overwrite the immediate of an already-emitted instruction.
     * Used by the compiler to backpatch frame sizes once a function
     * body has been fully generated.
     */
    void
    patchImm(uint32_t index, int32_t imm)
    {
        if (index >= insts.size())
            panic("patchImm: bad instruction index ", index);
        insts[index].imm = imm;
    }

  private:
    void alu3(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2, bool strict);
    void alui(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm, bool strict);

    struct Fixup
    {
        uint32_t index;     ///< instruction whose imm needs the target
        std::string label;
    };

    std::vector<Instruction> insts;
    std::map<std::string, uint32_t> symbols;
    std::vector<std::pair<std::string, uint32_t>> notes;
    std::vector<Fixup> fixups;
    std::vector<AsmDiagnostic> diags;
    uint64_t freshCounter = 0;
};

/** Raw pointer distance of one memory word (addresses are tagged). */
constexpr int32_t kWordOff = 1 << tagged::tagShift;

/** Byte-like offset of the @p i th word of an object. */
constexpr int32_t
wordOff(int i)
{
    return i * kWordOff;
}

} // namespace april

#endif // APRIL_ISA_ASSEMBLER_HH

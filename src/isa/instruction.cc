#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace april
{

namespace reg
{

std::string
name(uint8_t r)
{
    if (r < numUser)
        return "r" + std::to_string(r);
    if (r < numUser + numGlobal)
        return "g" + std::to_string(r - numUser);
    if (r < numNames)
        return "t" + std::to_string(r - numUser - numGlobal);
    return "?" + std::to_string(r);
}

} // namespace reg

const char *
trapKindName(TrapKind kind)
{
    static const char *const names[size_t(TrapKind::NumKinds)] = {
        "None",
        "FutureCompute",
        "FutureMemory",
        "FeEmpty",
        "FeFull",
        "RemoteMiss",
        "SoftTrap0", "SoftTrap1", "SoftTrap2", "SoftTrap3",
        "SoftTrap4", "SoftTrap5", "SoftTrap6", "SoftTrap7",
        "Ipi",
    };
    if (size_t(kind) >= size_t(TrapKind::NumKinds))
        return "Invalid";
    return names[size_t(kind)];
}

namespace
{

const char *
condName(Cond c)
{
    switch (c) {
      case Cond::AL: return "";
      case Cond::EQ: return "eq";
      case Cond::NE: return "ne";
      case Cond::LT: return "lt";
      case Cond::GE: return "ge";
      case Cond::LE: return "le";
      case Cond::GT: return "gt";
      case Cond::FULL: return "full";
      case Cond::EMPTY: return "empty";
    }
    return "?";
}

const char *
opName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::MOVI: return "movi";
      case Opcode::LD: return "ld";
      case Opcode::ST: return "st";
      case Opcode::TAS: return "tas";
      case Opcode::J: return "j";
      case Opcode::JMPL: return "jmpl";
      case Opcode::INCFP: return "incfp";
      case Opcode::DECFP: return "decfp";
      case Opcode::RDFP: return "rdfp";
      case Opcode::STFP: return "stfp";
      case Opcode::RDPSR: return "rdpsr";
      case Opcode::WRPSR: return "wrpsr";
      case Opcode::RDSPEC: return "rdspec";
      case Opcode::WRSPEC: return "wrspec";
      case Opcode::RDREGX: return "rdregx";
      case Opcode::WRREGX: return "wrregx";
      case Opcode::RETT: return "rett";
      case Opcode::TRAP: return "trap";
      case Opcode::FLUSH: return "flush";
      case Opcode::RDFENCE: return "rdfence";
      case Opcode::STIO: return "stio";
      case Opcode::LDIO: return "ldio";
      case Opcode::HALT: return "halt";
      case Opcode::NOP: return "nop";
    }
    return "?";
}

} // namespace

OperandInfo
operandInfo(const Instruction &inst)
{
    OperandInfo oi;
    auto src = [&](uint8_t r) { oi.srcs[oi.numSrcs++] = r; };

    if (inst.isCompute()) {
        src(inst.rs1);
        if (!inst.useImm)
            src(inst.rs2);
        oi.dst = inst.rd;
        oi.setsCond = true;
        return oi;
    }

    switch (inst.op) {
      case Opcode::MOVI:
        oi.dst = inst.rd;
        break;
      case Opcode::LD:
        src(inst.rs1);
        oi.dst = inst.rd;
        // Latches the F condition bit; feTrap can vector, feModify
        // consumes the word.
        oi.sideEffects = true;
        break;
      case Opcode::ST:
        src(inst.rs1);
        src(inst.rd);               // rd is the store *source*
        oi.sideEffects = true;
        break;
      case Opcode::TAS:
        src(inst.rs1);
        oi.dst = inst.rd;
        oi.setsCond = true;
        oi.sideEffects = true;
        break;
      case Opcode::J:
        oi.readsCond = inst.cond != Cond::AL;
        oi.sideEffects = true;
        break;
      case Opcode::JMPL:
        if (!inst.useImm)
            src(inst.rs1);
        oi.dst = inst.rd;
        oi.sideEffects = true;
        break;
      case Opcode::RDFP:
      case Opcode::RDPSR:
      case Opcode::RDFENCE:
        oi.dst = inst.rd;
        break;
      case Opcode::RDSPEC:
        oi.dst = inst.rd;
        if (Spec(inst.imm) == Spec::CycleLo)
            oi.sideEffects = true;  // timing-dependent read
        break;
      case Opcode::LDIO:
        oi.dst = inst.rd;
        oi.sideEffects = true;
        break;
      case Opcode::STIO:
        src(inst.rd);               // rd is the I/O store source
        oi.sideEffects = true;
        break;
      case Opcode::STFP:
      case Opcode::WRPSR:
      case Opcode::WRSPEC:
        src(inst.rs1);
        oi.sideEffects = true;
        break;
      case Opcode::RDREGX:
        src(inst.rs1);
        oi.dst = inst.rd;
        oi.indirectRegs = true;
        break;
      case Opcode::WRREGX:
        src(inst.rs1);
        src(inst.rs2);
        oi.indirectRegs = true;
        oi.sideEffects = true;
        break;
      case Opcode::FLUSH:
        src(inst.rs1);
        oi.sideEffects = true;
        break;
      case Opcode::INCFP:
      case Opcode::DECFP:
      case Opcode::RETT:
      case Opcode::TRAP:
      case Opcode::HALT:
        oi.sideEffects = true;
        break;
      case Opcode::NOP:
        break;
      default:
        oi.sideEffects = true;      // be conservative about the rest
        break;
    }
    return oi;
}

std::string
memFlavorName(const Instruction &inst)
{
    // Table 2 naming: ld[e][t|n][t|w]. 'e' resets (sets full for ST)
    // the f/e bit, then trap/no-trap on f/e mismatch, then
    // trap/wait on cache miss.
    std::string s = inst.op == Opcode::ST ? "st" : "ld";
    if (inst.feModify)
        s += inst.op == Opcode::ST ? "f" : "e";
    s += inst.feTrap ? "t" : "n";
    s += inst.miss == MissPolicy::Trap ? "t" : "w";
    if (!inst.strict)
        s += ".raw";
    return s;
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    auto r = [](uint8_t x) { return reg::name(x); };

    if (inst.isCompute()) {
        os << opName(inst.op) << (inst.strict ? "" : ".raw") << " "
           << r(inst.rd) << ", " << r(inst.rs1) << ", ";
        if (inst.useImm)
            os << inst.imm;
        else
            os << r(inst.rs2);
        return os.str();
    }

    switch (inst.op) {
      case Opcode::MOVI:
        os << "movi " << r(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::LD:
        os << memFlavorName(inst) << " " << r(inst.rd) << ", ["
           << r(inst.rs1) << (inst.imm >= 0 ? "+" : "") << inst.imm << "]";
        break;
      case Opcode::ST:
        os << memFlavorName(inst) << " [" << r(inst.rs1)
           << (inst.imm >= 0 ? "+" : "") << inst.imm << "], " << r(inst.rd);
        break;
      case Opcode::TAS:
        os << "tas " << r(inst.rd) << ", [" << r(inst.rs1)
           << (inst.imm >= 0 ? "+" : "") << inst.imm << "]";
        break;
      case Opcode::J:
        os << "j" << condName(inst.cond) << " " << inst.imm;
        break;
      case Opcode::JMPL:
        os << "jmpl " << r(inst.rd) << ", ";
        if (inst.useImm)
            os << inst.imm;
        else
            os << r(inst.rs1) << "+" << inst.imm;
        break;
      case Opcode::INCFP: case Opcode::DECFP: case Opcode::NOP:
      case Opcode::HALT:
        os << opName(inst.op);
        break;
      case Opcode::RDFP: case Opcode::RDPSR: case Opcode::RDFENCE:
        os << opName(inst.op) << " " << r(inst.rd);
        break;
      case Opcode::STFP: case Opcode::WRPSR:
        os << opName(inst.op) << " " << r(inst.rs1);
        break;
      case Opcode::RDSPEC:
        os << "rdspec " << r(inst.rd) << ", #" << inst.imm;
        break;
      case Opcode::WRSPEC:
        os << "wrspec #" << inst.imm << ", " << r(inst.rs1);
        break;
      case Opcode::RDREGX:
        os << "rdregx " << r(inst.rd) << ", [" << r(inst.rs1) << "]";
        break;
      case Opcode::WRREGX:
        os << "wrregx [" << r(inst.rs1) << "], " << r(inst.rs2);
        break;
      case Opcode::RETT:
        os << "rett " << (inst.imm ? "skip" : "retry");
        break;
      case Opcode::TRAP:
        os << "trap #" << inst.imm;
        break;
      case Opcode::FLUSH:
        os << "flush [" << r(inst.rs1)
           << (inst.imm >= 0 ? "+" : "") << inst.imm << "]";
        break;
      case Opcode::STIO:
        os << "stio io[" << inst.imm << "], " << r(inst.rd);
        break;
      case Opcode::LDIO:
        os << "ldio " << r(inst.rd) << ", io[" << inst.imm << "]";
        break;
      default:
        os << opName(inst.op);
        break;
    }
    return os.str();
}

} // namespace april

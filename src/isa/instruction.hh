/**
 * @file
 * The APRIL instruction set (paper Section 4, Tables 1 and 2).
 *
 * Instructions are held decoded, in a Harvard-style instruction
 * memory, as is conventional for instruction-level simulators; the
 * 32-bit binary encoding of the real part is not modeled. All
 * semantics the paper specifies — strict-operand future traps, the
 * 8 x 2 memory-flavor matrix, full/empty condition branches, frame
 * pointer manipulation, trap entry/return — are modeled exactly.
 *
 * Register operands address a 48-entry space per task frame view:
 *
 *      0..31   user registers of the active task frame (r0 == 0)
 *      32..39  global registers g0..g7, frame-independent
 *      40..47  trap-window registers t0..t7, one set per task frame
 *              (models the second SPARC register window each task
 *              frame reserves for its trap handler, Section 5)
 */

#ifndef APRIL_ISA_INSTRUCTION_HH
#define APRIL_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "isa/types.hh"

namespace april
{

/** Register name constants. */
namespace reg
{

constexpr uint8_t r0 = 0;           ///< hardwired zero

/*
 * Software conventions (compiler + run-time system):
 *   r1..r6   arguments / return value (result in r1)
 *   r11      stack pointer (frames grow upward)
 *   r12      return address (link register)
 *   r16..r31 expression temporaries
 */
constexpr uint8_t a(unsigned i) { return uint8_t(1 + i); }
constexpr uint8_t sb = 10;          ///< stack segment base (stealing)
constexpr uint8_t sp = 11;          ///< stack pointer
constexpr uint8_t ra = 12;          ///< return address (link)
constexpr unsigned numArgRegs = 6;

/** First global register (g0). */
constexpr uint8_t g(unsigned i) { return uint8_t(32 + i); }
/** First trap-window register (t0). */
constexpr uint8_t t(unsigned i) { return uint8_t(40 + i); }

constexpr unsigned numUser = 32;
constexpr unsigned numGlobal = 8;
constexpr unsigned numTrap = 8;
constexpr unsigned numNames = numUser + numGlobal + numTrap;

/** @return assembly name of register index @p r. */
std::string name(uint8_t r);

} // namespace reg

/** Primary opcodes. */
enum class Opcode : uint8_t
{
    // 3-address compute (condition codes set as a side effect).
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, SLL, SRL, SRA,
    MOVI,       ///< rd <- 32-bit immediate
    // Memory (flavor fields select the Table 2 variant).
    LD,         ///< rd <- mem[ea],  ea = (rs1 + imm) >> 3
    ST,         ///< mem[ea] <- rd (rd is the *source*)
    TAS,        ///< test&set: rd <- mem[ea]; mem[ea] <- 1 (atomic)
    // Control flow (one branch delay slot, paper Section 3).
    J,          ///< conditional branch to absolute target `imm`
    JMPL,       ///< jump-and-link: PC <- rs1 + imm; rd <- link
    // Multithreading and trap machinery.
    INCFP,      ///< FP <- (FP + 1) mod nframes
    DECFP,      ///< FP <- (FP - 1) mod nframes
    RDFP,       ///< rd <- FP
    STFP,       ///< FP <- rs1
    RDPSR,      ///< rd <- PSR of active frame
    WRPSR,      ///< PSR of active frame <- rs1
    RDSPEC,     ///< rd <- special register `imm`
    WRSPEC,     ///< special register `imm` <- rs1
    RDREGX,     ///< rd <- regfile[value(rs1)]   (handler dispatch)
    WRREGX,     ///< regfile[value(rs1)] <- value(rs2)
    RETT,       ///< return from trap; imm: 0 = retry, 1 = skip
    TRAP,       ///< software trap to vector `imm`
    // Out-of-band mechanisms (Section 3.4), ASI-selected on SPARC.
    FLUSH,      ///< write back + invalidate the line of ea
    RDFENCE,    ///< rd <- fence counter (outstanding flush acks)
    STIO,       ///< memory-mapped I/O store (IPI send, block xfer)
    LDIO,       ///< memory-mapped I/O load
    // Simulator control.
    HALT,       ///< terminate the current thread (end of computation)
    NOP,
};

/** Branch conditions; FULL/EMPTY test the f/e condition bit (Sec 4). */
enum class Cond : uint8_t
{
    AL,         ///< always
    EQ, NE, LT, GE, LE, GT,
    FULL,       ///< last non-trapping memory op saw a full word
    EMPTY,      ///< last non-trapping memory op saw an empty word
};

/** Special registers readable/writable from trap handlers. */
enum class Spec : uint8_t
{
    TrapPC,     ///< PC of the trapping instruction
    TrapNPC,    ///< nPC of the trapping instruction
    TrapType,   ///< TrapKind of the most recent trap in this frame
    TrapArg,    ///< trap argument (e.g. register holding a future)
    TrapVA,     ///< faulting tagged address, for memory traps
    NodeId,     ///< this processor's node number
    FrameId,    ///< active task frame number (== FP)
    NumFrames,  ///< number of hardware task frames
    CycleLo,    ///< low 32 bits of the cycle counter
};

/** Trap kinds (vector indices). */
enum class TrapKind : uint8_t
{
    None = 0,
    FutureCompute,  ///< strict compute op saw a future operand
    FutureMemory,   ///< memory op address operand was a future
    FeEmpty,        ///< trapping load touched an empty word
    FeFull,         ///< trapping store touched a full word
    RemoteMiss,     ///< controller-forced switch: remote cache miss
    SoftTrap0,      ///< TRAP 0 .. TRAP 7 software vectors
    SoftTrap1, SoftTrap2, SoftTrap3,
    SoftTrap4, SoftTrap5, SoftTrap6, SoftTrap7,
    Ipi,            ///< asynchronous interprocessor interrupt
    NumKinds,
};

/**
 * Canonical name of a trap kind ("RemoteMiss", "FutureCompute", ...),
 * shared by per-kind statistics naming and log/panic messages.
 */
const char *trapKindName(TrapKind kind);

/** How a memory instruction behaves on a cache miss (Table 2). */
enum class MissPolicy : uint8_t
{
    Trap,       ///< trap the processor (context switch on remote miss)
    Wait,       ///< hold the processor until data arrives
};

/** One decoded APRIL instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    Cond cond = Cond::AL;       ///< for J
    uint8_t rd = 0;             ///< destination (source for ST)
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int32_t imm = 0;            ///< immediate / resolved branch target
    bool useImm = false;        ///< rs2 replaced by imm in compute ops

    /// Strict ops trap when an operand is a future (compute + memory).
    bool strict = false;

    // Memory-instruction flavor (Table 2).
    bool feTrap = false;        ///< trap on empty (LD) / full (ST)
    bool feModify = false;      ///< LD: reset to empty; ST: set to full
    MissPolicy miss = MissPolicy::Wait;

    /** @return true for LD/ST/TAS/FLUSH (has an effective address). */
    bool
    isMemory() const
    {
        return op == Opcode::LD || op == Opcode::ST || op == Opcode::TAS ||
               op == Opcode::FLUSH;
    }

    /** @return true for 3-address ALU operations. */
    bool
    isCompute() const
    {
        switch (op) {
          case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
          case Opcode::DIV: case Opcode::REM: case Opcode::AND:
          case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
          case Opcode::SRL: case Opcode::SRA:
            return true;
          default:
            return false;
        }
    }
};

/**
 * Dataflow summary of one instruction, for program analysis that does
 * not want to re-derive per-opcode operand conventions (the fuzzer's
 * shrinker uses it to find dead destinations; ST reads `rd`, JMPL
 * writes it, RDREGX/WRREGX address the register file indirectly, ...).
 */
struct OperandInfo
{
    std::array<uint8_t, 3> srcs{};  ///< register numbers read
    uint8_t numSrcs = 0;
    int16_t dst = -1;               ///< register written; -1 = none

    /// Memory, I/O, trap, PSR/FP/special-register or control-flow
    /// effects beyond writing `dst` (never safe to delete).
    bool sideEffects = false;
    bool setsCond = false;          ///< writes the Z/N condition codes
    bool readsCond = false;         ///< dispatches on Z/N/F (J cc)
    /// Accesses registers by runtime value (RDREGX/WRREGX): analysis
    /// must assume the whole register file is touched.
    bool indirectRegs = false;
};

/** @return the dataflow summary of @p inst. */
OperandInfo operandInfo(const Instruction &inst);

/** Disassemble one instruction (labels rendered as absolute targets). */
std::string disassemble(const Instruction &inst);

/** @return mnemonic for a load/store flavor per Table 2 naming. */
std::string memFlavorName(const Instruction &inst);

} // namespace april

#endif // APRIL_ISA_INSTRUCTION_HH

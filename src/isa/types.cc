#include "isa/types.hh"

#include <sstream>

namespace april::tagged
{

std::string
toString(Word w)
{
    std::ostringstream os;
    if (w == NIL)
        return "nil";
    if (w == TRUE)
        return "#t";
    if (w == FALSE)
        return "#f";
    if (w == UNDEF)
        return "#undef";
    if (isFixnum(w)) {
        os << toInt(w);
    } else if (isFuture(w)) {
        os << "future@" << ptrAddr(w);
    } else if (isCons(w)) {
        os << "cons@" << ptrAddr(w);
    } else {
        os << "obj@" << ptrAddr(w);
    }
    return os.str();
}

} // namespace april::tagged

/**
 * @file
 * APRIL tagged data-type encodings (paper Figure 3).
 *
 * A machine word is 32 bits. The low-order bits of a word encode its
 * dynamic type, as in the Berkeley SPUR processor:
 *
 *      fixnum   xx...xx00   30-bit signed integer in bits [31:2]
 *      other    xx...x010   pointer to a non-cons object / immediate
 *      cons     xx...x110   pointer to a cons cell
 *      future   xx...x101   pointer to a future object
 *
 * Future pointers are the only values with a set least-significant
 * bit, so the hardware future-detection rule is simply "trap when an
 * operand of a strict instruction has LSB = 1" (Section 5).
 *
 * Pointers address *words*: a pointer to word address A has raw value
 * (A << 3) | tag. Memory instructions therefore strip the low three
 * bits of an effective address before use; this is why objects cannot
 * be allocated at byte boundaries (Section 4, Memory Instructions).
 *
 * Every memory word additionally carries a full/empty synchronization
 * bit, held next to the data in MemWord.
 */

#ifndef APRIL_ISA_TYPES_HH
#define APRIL_ISA_TYPES_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace april
{

/** A raw 32-bit machine word (tagged). */
using Word = uint32_t;

/** A word address in the global shared-memory space. */
using Addr = uint32_t;

/** Dynamic type tags from Figure 3 (value of the low three bits). */
enum class Tag : uint8_t
{
    Fixnum = 0b000,     ///< also 0b100: any word with low two bits 00
    Other  = 0b010,     ///< non-cons heap object or boxed immediate
    Future = 0b101,     ///< future pointer; the only LSB=1 tag
    Cons   = 0b110,     ///< cons-cell pointer
};

namespace tagged
{

/** Number of low-order tag bits in a pointer. */
constexpr unsigned tagShift = 3;

/** @return the encoded fixnum for 30-bit signed @p v. */
constexpr Word
fixnum(int32_t v)
{
    return Word(v) << 2;
}

/** @return true when @p w is a fixnum (low two bits 00). */
constexpr bool
isFixnum(Word w)
{
    return (w & 0b11) == 0;
}

/** Decode a fixnum (arithmetic shift recovers the sign). */
constexpr int32_t
toInt(Word w)
{
    return int32_t(w) >> 2;
}

/** Build a tagged pointer to word address @p a. */
constexpr Word
ptr(Addr a, Tag t)
{
    return (Word(a) << tagShift) | Word(uint8_t(t));
}

/** @return the word address a tagged pointer refers to. */
constexpr Addr
ptrAddr(Word w)
{
    return Addr(w >> tagShift);
}

/** @return the low three tag bits of @p w. */
constexpr uint8_t
tagBits(Word w)
{
    return uint8_t(w & 0b111);
}

/** Hardware future-detection rule: non-zero least-significant bit. */
constexpr bool
isFuture(Word w)
{
    return (w & 1) != 0;
}

constexpr bool
isCons(Word w)
{
    return tagBits(w) == uint8_t(Tag::Cons);
}

constexpr bool
isOther(Word w)
{
    return tagBits(w) == uint8_t(Tag::Other);
}

/*
 * Boxed immediates. Word addresses 0..15 of the shared memory are
 * reserved so that small "other"-tagged values can act as unique
 * immediates that no real object pointer can alias.
 */

/** Reserved low word-addresses (no allocation below this). */
constexpr Addr reservedWords = 16;

constexpr Word NIL   = ptr(0, Tag::Other); ///< empty list
constexpr Word FALSE = ptr(1, Tag::Other); ///< boolean false
constexpr Word TRUE  = ptr(2, Tag::Other); ///< boolean true
constexpr Word UNDEF = ptr(3, Tag::Other); ///< unresolved-future slot mark

/** @return the Mul-T boolean for @p b. */
constexpr Word
boolean(bool b)
{
    return b ? TRUE : FALSE;
}

/** Truthiness: everything except FALSE and NIL is true (T semantics). */
constexpr bool
isTruthy(Word w)
{
    return w != FALSE && w != NIL;
}

/** Human-readable rendering of a tagged word (for tracing/tests). */
std::string toString(Word w);

} // namespace tagged

/** One word of simulated memory: 32 data bits plus a full/empty bit. */
struct MemWord
{
    Word data = 0;
    bool full = true;   ///< full/empty synchronization bit
};

} // namespace april

#endif // APRIL_ISA_TYPES_HH

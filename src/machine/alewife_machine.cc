#include "machine/alewife_machine.hh"

#include <algorithm>
#include <iostream>

#include "common/bits.hh"
#include "common/debug.hh"
#include "common/logging.hh"
#include "machine/trace_config.hh"
#include "runtime/layout.hh"

namespace april
{

AlewifeMachine::AlewifeMachine(const AlewifeParams &p,
                               const Program *prog)
    : stats::Group("alewife"),
      params(p),
      mem({.numNodes = [&] {
               uint32_t n = 1;
               for (int d = 0; d < p.network.dim; ++d)
                   n *= uint32_t(p.network.radix);
               return n;
           }(),
           .wordsPerNode = p.wordsPerNode}),
      net_(p.network, this),
      telemetry_(mem.numNodes(), messageClassNames(), this,
                 net_.maxHops()),
      statTraceDropped(
          this, "traceDropped",
          "machine trace events dropped at the capacity cap",
          [this] {
              if (!trec)
                  return 0.0;
              // Thread-count invariant whether or not the lanes have
              // merged: the merged log would truncate exactly the
              // events past the global capacity.
              uint64_t dropped = trec->dropped();
              uint64_t events = trec->events().size();
              for (const Shard &s : shards) {
                  if (s.lane) {
                      dropped += s.lane->dropped();
                      events += s.lane->events().size();
                  }
              }
              if (events > params.traceCapacity)
                  dropped += events - params.traceCapacity;
              return double(dropped);
          }),
      statCohTraceDropped(
          this, "cohTraceDropped",
          "coherence-transaction legs dropped at the capacity cap",
          [this] {
              if (!cohTrec)
                  return 0.0;
              uint64_t dropped = cohTrec->dropped();
              uint64_t events = cohTrec->events().size();
              for (const Shard &s : shards) {
                  if (s.cohLane) {
                      dropped += s.cohLane->dropped();
                      events += s.cohLane->events().size();
                  }
              }
              if (events > params.cohTraceCapacity)
                  dropped += events - params.cohTraceCapacity;
              return double(dropped);
          }),
      statTaskTraceDropped(
          this, "taskTraceDropped",
          "task events dropped at the capacity cap",
          [this] {
              if (!taskTrec)
                  return 0.0;
              uint64_t dropped = taskTrec->dropped();
              uint64_t events = taskTrec->events().size();
              for (const Shard &s : shards) {
                  if (s.taskLane) {
                      dropped += s.taskLane->dropped();
                      events += s.taskLane->events().size();
                  }
              }
              if (events > params.taskTraceCapacity)
                  dropped += events - params.taskTraceCapacity;
              return double(dropped);
          })
{
    debug::initFromEnv();
    uint32_t n = mem.numNodes();

    // The quantum: no cross-node message (coherence packet or IPI)
    // sent at cycle c can be observed before c + Q, so shards may
    // advance Q cycles between barriers without seeing each other.
    quantum_ = net_.minCrossNodeLatency(
        std::min(p.controller.reqFlits, p.controller.dataFlits));
    if (quantum_ == 0)
        quantum_ = 1;

    uint32_t w = std::clamp<uint32_t>(params.hostThreads, 1, n);
    if (params.detectRaces)
        w = 1;      // the race observer keeps cross-node state
    params.hostThreads = w;

    if (p.traceEvents) {
        trec = std::make_unique<trace::Recorder>(makeRecorderConfig(
            n, p.proc.numFrames, p.traceCapacity));
    }
    if (p.cohTrace)
        cohTrec = std::make_unique<coh::TxnTracer>(p.cohTraceCapacity);
    if (p.taskTrace) {
        taskTrec = std::make_unique<task::Tracer>(p.taskTraceCapacity);
        taskProbes_ = std::make_unique<task::ProbeMap>(*prog);
    }
    if (p.detectRaces) {
        races = std::make_unique<analysis::RaceDetector>(
            n, p.raceMaxReports, this);
        races->setTraceRecorder(trec.get());
    }
    if (p.conformance)
        conform_ = std::make_unique<mc::Conformance>();

    shards.resize(w);
    uint32_t base = n / w;
    uint32_t rem = n % w;
    uint32_t at = 0;
    for (uint32_t s = 0; s < w; ++s) {
        shards[s].first = at;
        at += base + (s < rem ? 1 : 0);
        shards[s].last = at;
        // With several shards each gets a private trace lane (merged
        // canonically on demand); with one, components write the
        // merged recorder directly. A lane's capacity equals the
        // global capacity: any event a lane would drop has at least
        // capacity earlier events in its own lane alone, so it would
        // be truncated from the merged log anyway.
        if (p.traceEvents && w > 1) {
            shards[s].lane = std::make_unique<trace::Recorder>(
                makeRecorderConfig(n, p.proc.numFrames,
                                   p.traceCapacity));
        }
        if (p.cohTrace && w > 1) {
            shards[s].cohLane = std::make_unique<coh::TxnTracer>(
                p.cohTraceCapacity);
        }
        if (p.taskTrace && w > 1) {
            shards[s].taskLane = std::make_unique<task::Tracer>(
                p.taskTraceCapacity);
        }
    }
    arrivals.resize(n);

    // AlewifeParams::dirScheme is authoritative over whatever the
    // embedded ControllerParams carries.
    params.controller.dirScheme = p.dirScheme;
    params.controller.dirPointers = p.dirPointers;

    for (uint32_t i = 0; i < n; ++i) {
        rt::Runtime::initNode(mem, i);
        Shard *sh = &shards[shardOf(i)];
        trace::Recorder *lane = sh->lane ? sh->lane.get() : trec.get();
        fabrics.push_back(std::make_unique<NodeFabric>(this, sh));
        ctrls.push_back(std::make_unique<coh::Controller>(
            params.controller, i, p.proc.numFrames, &mem,
            fabrics.back().get(), this));
        ios.push_back(std::make_unique<NodeIo>(this, sh, i,
                                               p.seed * 1000003 + i));
        ProcParams pp = p.proc;
        pp.nodeId = i;
        procs.push_back(std::make_unique<Processor>(
            pp, prog, ctrls.back().get(), ios.back().get(), this));
        ctrls.back()->setProcessor(procs.back().get());
        ctrls.back()->setTraceRecorder(lane);
        ctrls.back()->setTxnTracer(sh->cohLane ? sh->cohLane.get()
                                               : cohTrec.get());
        ctrls.back()->setObserver(races.get());
        ctrls.back()->setTransitionListener(conform_.get());
        procs.back()->setTraceRecorder(lane);
        if (p.taskTrace) {
            procs.back()->setTaskProbe(taskProbes_.get(),
                                       sh->taskLane ? sh->taskLane.get()
                                                    : taskTrec.get());
        }
        if (p.bootRuntime)
            rt::Runtime::bootProcessor(*procs.back(), *prog, mem, i, n);
        if (p.profile) {
            samplers.push_back(std::make_unique<profile::PcSampler>(
                p.profilePeriod));
            procs.back()->setPcSampler(samplers.back().get());
        }
    }
    // Built last so every subsystem's statistics become columns.
    if (p.statsInterval)
        interval_ = std::make_unique<profile::IntervalSampler>(
            p.statsInterval, *this);
    if (w > 1) {
        pool_ = std::make_unique<par::WorkerPool>(
            w, [this](uint32_t worker) {
                advanceShard(shards[worker], quantumTarget_);
            });
    }
}

AlewifeMachine::~AlewifeMachine() = default;

uint64_t
AlewifeMachine::NodeFabric::now() const
{
    return s->cycle;
}

uint32_t
AlewifeMachine::shardOf(uint32_t node) const
{
    for (uint32_t s = 0; s < shards.size(); ++s) {
        if (node >= shards[s].first && node < shards[s].last)
            return s;
    }
    panic("shardOf: node ", node, " outside every shard");
}

uint64_t
AlewifeMachine::gridAlign(uint64_t c) const
{
    return (c + quantum_ - 1) / quantum_ * quantum_;
}

uint64_t
AlewifeMachine::nextGrid(uint64_t c) const
{
    return (c / quantum_ + 1) * quantum_;
}

profile::ProfileSource
AlewifeMachine::profileSource() const
{
    profile::ProfileSource src;
    src.machineCycles = _cycle;
    src.program = procs.empty() ? nullptr : procs[0]->program();
    for (const auto &p : procs)
        src.procs.push_back(p.get());
    for (const auto &s : samplers)
        src.samplers.push_back(s.get());
    src.intervals = interval_.get();
    return src;
}

void
AlewifeMachine::verifyCycleAccounting() const
{
    for (const auto &p : procs)
        p->verifyCycleAccounting();
}

// ---------------------------------------------------------------------
// Cross-node channels
// ---------------------------------------------------------------------

void
AlewifeMachine::pushArrival(const InFlight &f)
{
    auto &q = arrivals[f.dst].q;
    q.push_back(f);
    std::push_heap(q.begin(), q.end());
}

void
AlewifeMachine::shardTransmit(Shard &s, uint32_t to,
                              const coh::Message &msg, uint32_t flits)
{
    net::Injection inj = net_.inject(msg.from, to, flits, s.cycle);
    telemetry_.recordSend(msg.from, to, uint8_t(msg.type), flits);
    if (trace::Recorder *r = s.lane ? s.lane.get() : trec.get()) {
        r->record({s.cycle, msg.from, trace::EventKind::NetSend, 0, 0,
                   to, flits});
    }
    TRACE(Net, "c", s.cycle, " send ", msg.from, "->", to,
          " flits=", flits, " arrive=", inj.arrive);
    InFlight f;
    f.arrive = inj.arrive;
    f.src = msg.from;
    f.seq = inj.seq;
    f.dst = to;
    f.flits = flits;
    f.hops = inj.hops;
    f.sendCycle = s.cycle;
    f.msg = msg;
    if (to >= s.first && to < s.last)
        pushArrival(f);
    else
        s.outbox.push_back(std::move(f));
}

void
AlewifeMachine::deliverNode(Shard &s, uint32_t node)
{
    auto &q = arrivals[node].q;
    while (!q.empty() && q.front().arrive <= s.cycle) {
        std::pop_heap(q.begin(), q.end());
        InFlight f = std::move(q.back());
        q.pop_back();
        net_.recordDelivery(node, s.cycle - f.sendCycle, f.hops,
                            f.flits);
        telemetry_.recordDeliver(f.src, node, uint8_t(f.msg.type),
                                 f.flits, s.cycle - f.sendCycle,
                                 f.hops);
        if (trace::Recorder *r = s.lane ? s.lane.get() : trec.get()) {
            r->record({s.cycle, node, trace::EventKind::NetDeliver,
                       0, 0, f.src, uint32_t(s.cycle - f.sendCycle)});
        }
        TRACE(Net, "c", s.cycle, " deliver ", f.src, "->", node,
              " latency=", s.cycle - f.sendCycle);
        ctrls[node]->receive(f.msg);
    }
}

void
AlewifeMachine::queueIpi(Shard &s, uint32_t src, uint32_t dst,
                         Word arg)
{
    // Preemptive interprocessor interrupts (Section 3.4) travel
    // through the network as a request packet handled once by the
    // remote controller: occupancy + traversal. The latency is at
    // least the quantum for any cross-node pair, so the parallel
    // engine can commit them at barriers.
    uint64_t due = s.cycle + params.controller.occupancy +
                   uint64_t(net_.distance(src, dst)) *
                       net_.hopCycles() +
                   params.controller.reqFlits;
    PendingIpi ipi{due, src, dst, arg};
    Shard &home = shards[shardOf(dst)];
    if (&home == &s) {
        auto pos = std::upper_bound(
            s.ipiPending.begin(), s.ipiPending.end(), ipi,
            [](const PendingIpi &a, const PendingIpi &b) {
                return a.due != b.due ? a.due < b.due : a.src < b.src;
            });
        s.ipiPending.insert(pos, ipi);
    } else {
        s.ipiOutbox.push_back(ipi);
    }
}

void
AlewifeMachine::applyIpis(Shard &s)
{
    if (s.ipiPending.empty() || s.ipiPending.front().due > s.cycle)
        return;
    size_t n = 0;
    while (n < s.ipiPending.size() && s.ipiPending[n].due <= s.cycle) {
        const PendingIpi &ipi = s.ipiPending[n];
        procs[ipi.dst]->postIpi(ipi.arg);
        ++n;
    }
    s.ipiPending.erase(s.ipiPending.begin(),
                       s.ipiPending.begin() + long(n));
}

uint32_t
AlewifeMachine::queueBlockGo(Shard &s, uint32_t node, Word src,
                             Word dst, Word len)
{
    // The transfer commits at the next grid boundary, where every
    // shard is parked at a barrier: the coherent sweep reads all
    // caches, which no shard may do mid-quantum. The issuing
    // processor is held one cycle per word and at least until the
    // boundary, so the resuming thread always observes the copy.
    uint64_t commit = gridAlign(s.cycle);
    s.blockOps.push_back({commit, s.cycle, node, src, dst, len});
    s.blockMin = std::min(s.blockMin, commit);
    return uint32_t(std::max<uint64_t>(len, commit - s.cycle));
}

void
AlewifeMachine::executeBlockOp(const BlockOp &op)
{
    // The block-transfer engine (Section 3.4) is coherent:
    //  1) dirty source lines anywhere are swept back to memory so
    //     the copy sees current data;
    //  2) the words move in memory;
    //  3) cached copies overlapping the destination are updated
    //     in place (a destination line can legitimately be cached
    //     dirty when a bump-allocated region shares a line with a
    //     live earlier allocation — invalidating would lose that
    //     neighbor's data, so the transfer write-updates instead).
    for (uint32_t node_i = 0; node_i < numNodes(); ++node_i) {
        auto &cache = ctrls[node_i]->cacheRef();
        uint32_t lw = cache.lineWords();
        for (Word w = op.src / lw; w <= (op.src + op.len) / lw; ++w) {
            auto *line = cache.find(Addr(w));
            if (line && line->state == cache::LineState::Modified) {
                for (uint32_t k = 0; k < lw; ++k)
                    mem.word(Addr(w * lw + k)) = line->words[k];
            }
        }
    }
    for (Word i = 0; i < op.len; ++i)
        mem.word(op.dst + i) = mem.word(op.src + i);
    for (uint32_t node_i = 0; node_i < numNodes(); ++node_i) {
        auto &cache = ctrls[node_i]->cacheRef();
        uint32_t lw = cache.lineWords();
        for (Word i = 0; i < op.len; ++i) {
            auto *line = cache.find(Addr((op.dst + i) / lw));
            if (line) {
                line->words[(op.dst + i) % lw] =
                    mem.word(op.dst + i);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The execution engine
// ---------------------------------------------------------------------

uint64_t
AlewifeMachine::shardNextEvent(const Shard &s) const
{
    uint64_t soon = s.cycle + 1;
    uint64_t next = std::min(s.haltAt, s.blockMin);
    if (!s.ipiPending.empty())
        next = std::min(next, s.ipiPending.front().due);
    next = std::max(next, soon);
    // Components in cheapest-first order, bailing out as soon as one
    // wants the very next tick: the common busy case must not pay
    // full scans.
    for (uint32_t i = s.first; i < s.last; ++i) {
        next = std::min(next, procs[i]->nextEventCycle());
        if (next <= soon)
            return next;
    }
    for (uint32_t i = s.first; i < s.last; ++i) {
        next = std::min(next, ctrls[i]->nextEventCycle());
        if (next <= soon)
            return next;
        const auto &q = arrivals[i].q;
        if (!q.empty()) {
            next = std::min(next, std::max(q.front().arrive, soon));
            if (next <= soon)
                return next;
        }
    }
    return next;
}

void
AlewifeMachine::shardSkip(Shard &s, uint64_t cycles)
{
    for (uint32_t i = s.first; i < s.last; ++i)
        procs[i]->skipCycles(cycles);
    // Controllers keep no per-cycle state (absolute due times), and
    // packet arrivals are absolute-cycle heaps: only the processors
    // and the shard clock move.
    s.cycle += cycles;
}

void
AlewifeMachine::advanceShard(Shard &s, uint64_t target)
{
    for (;;) {
        // A commit boundary of our own (halt write or block transfer)
        // forces this shard to stop there so the coordinator can run
        // the barrier phase exactly at the boundary. With several
        // shards those boundaries coincide with the quantum end; with
        // one shard (longer targets) this is what slices the run.
        uint64_t stop = std::min({target, s.haltAt, s.blockMin});
        if (s.cycle >= stop)
            break;
        if (params.cycleSkip && s.cycle >= s.probeAt) {
            uint64_t next = shardNextEvent(s);
            if (next > s.cycle + 1) {
                s.probeBackoff = 0;
                uint64_t to = std::min(next - 1, stop);
                if (to > s.cycle) {
                    shardSkip(s, to - s.cycle);
                    continue;
                }
            } else {
                // Nothing to skip: on probe-hostile phases (coherence
                // traffic every cycle) the full scan is pure overhead,
                // so back off exponentially before asking again. A
                // window that opens mid-back-off is simply ticked
                // through, which the skip contract makes equivalent.
                s.probeBackoff = std::min<uint32_t>(
                    s.probeBackoff ? s.probeBackoff * 2 : 1, 32);
                s.probeAt = s.cycle + 1 + s.probeBackoff;
            }
        }
        ++s.cycle;
        applyIpis(s);
        for (uint32_t i = s.first; i < s.last; ++i) {
            deliverNode(s, i);
            ctrls[i]->tick();
            procs[i]->tick();
        }
    }
}

void
AlewifeMachine::syncAt(uint64_t t)
{
    _cycle = t;
    // Cross-shard packets: the arrival heaps order by the canonical
    // (arrive, src, seq) key, so insertion order is irrelevant — but
    // every merged packet must still be in this barrier's future.
    for (Shard &s : shards) {
        for (InFlight &f : s.outbox) {
            if (f.arrive <= t) {
                panic("parallel engine: packet ", f.src, "->", f.dst,
                      " arrives at ", f.arrive,
                      " on or before the barrier at ", t);
            }
            pushArrival(f);
        }
        s.outbox.clear();
        for (const PendingIpi &ipi : s.ipiOutbox) {
            if (ipi.due <= t) {
                panic("parallel engine: IPI ", ipi.src, "->", ipi.dst,
                      " due at ", ipi.due,
                      " on or before the barrier at ", t);
            }
            Shard &home = shards[shardOf(ipi.dst)];
            auto pos = std::upper_bound(
                home.ipiPending.begin(), home.ipiPending.end(), ipi,
                [](const PendingIpi &a, const PendingIpi &b) {
                    return a.due != b.due ? a.due < b.due
                                          : a.src < b.src;
                });
            home.ipiPending.insert(pos, ipi);
        }
        s.ipiOutbox.clear();
    }
    // Block transfers commit in canonical (commit, issue-cycle, node)
    // order; ops beyond this barrier (budget- or sample-clamped
    // quanta) stay pending and force a barrier at their boundary.
    bool gathered = false;
    for (Shard &s : shards) {
        if (!s.blockOps.empty()) {
            pendingBlocks.insert(pendingBlocks.end(),
                                 s.blockOps.begin(), s.blockOps.end());
            s.blockOps.clear();
            s.blockMin = kNeverCycle;
            gathered = true;
        }
    }
    if (gathered) {
        std::sort(pendingBlocks.begin(), pendingBlocks.end(),
                  [](const BlockOp &a, const BlockOp &b) {
                      if (a.commit != b.commit)
                          return a.commit < b.commit;
                      if (a.issued != b.issued)
                          return a.issued < b.issued;
                      return a.node < b.node;
                  });
    }
    size_t done = 0;
    while (done < pendingBlocks.size() &&
           pendingBlocks[done].commit <= t) {
        executeBlockOp(pendingBlocks[done]);
        ++done;
    }
    if (done)
        pendingBlocks.erase(pendingBlocks.begin(),
                            pendingBlocks.begin() + long(done));
    // Halt commits at its grid boundary.
    for (Shard &s : shards) {
        if (s.haltAt <= t) {
            haltFlag = true;
            s.haltAt = kNeverCycle;
        }
    }
    // Console output merges in (cycle, node) order — exactly the
    // order the one-shard machine emits, since it processes nodes in
    // ascending order within a cycle.
    bool any_console = false;
    for (const Shard &s : shards)
        any_console |= !s.console.empty();
    if (any_console) {
        std::vector<ConsoleEntry> merged;
        for (Shard &s : shards) {
            merged.insert(merged.end(), s.console.begin(),
                          s.console.end());
            s.console.clear();
        }
        std::sort(merged.begin(), merged.end(),
                  [](const ConsoleEntry &a, const ConsoleEntry &b) {
                      return a.cycle != b.cycle ? a.cycle < b.cycle
                                                : a.node < b.node;
                  });
        for (const ConsoleEntry &e : merged)
            consoleWords.push_back(e.word);
    }
    if (interval_) {
        foldObservability();
        interval_->sampleIfDue(t);
    }
    // Raise any conformance violation the shard workers recorded
    // from the coordinating thread (workers must stay noexcept).
    if (conform_)
        conform_->check();
}

void
AlewifeMachine::tick()
{
    // Serial one-cycle advance (tests, quiesce): shard order equals
    // node order, so this is the same schedule the parallel engine's
    // barriers guarantee.
    uint64_t t = _cycle + 1;
    for (Shard &s : shards)
        advanceShard(s, t);
    syncAt(t);
}

uint64_t
AlewifeMachine::nextEventCycle() const
{
    uint64_t next = kNeverCycle;
    if (!pendingBlocks.empty())
        next = pendingBlocks.front().commit;
    for (const Shard &s : shards) {
        next = std::min(next, shardNextEvent(s));
        if (next <= _cycle + 1)
            return next;
    }
    return next;
}

uint64_t
AlewifeMachine::run(uint64_t max_cycles)
{
    uint64_t start = _cycle;
    uint64_t end = max_cycles > kNeverCycle - _cycle
        ? kNeverCycle
        : _cycle + max_cycles;
    uint32_t w = hostThreads();
    while (!haltFlag && _cycle < end) {
        uint64_t target = end;
        for (const Shard &s : shards)
            target = std::min({target, s.haltAt, s.blockMin});
        if (!pendingBlocks.empty())
            target = std::min(target, pendingBlocks.front().commit);
        if (interval_)
            target = std::min(target,
                              interval_->nextSampleCycle(_cycle));
        if (w == 1) {
            // One shard: no quantum needed — the shard slices itself
            // at its own commit boundaries.
            advanceShard(shards[0], target);
            syncAt(shards[0].cycle);
            continue;
        }
        target = std::min(target, nextGrid(_cycle));
        if (params.cycleSkip) {
            // Whole-machine fast-forward across quanta: sound because
            // every shard's next event (including in-flight arrivals
            // and pending commits) bounds the window.
            uint64_t next = nextEventCycle();
            if (next > _cycle + 1) {
                uint64_t to = std::min(
                    next == kNeverCycle ? end : next - 1, target);
                if (to > _cycle) {
                    for (Shard &s : shards)
                        shardSkip(s, to - _cycle);
                    syncAt(to);
                    continue;
                }
            }
        }
        quantumTarget_ = target;
        pool_->runQuantum();
        syncAt(target);
    }
    foldObservability();
    warnOnTraceOverflow();
    return _cycle - start;
}

bool
AlewifeMachine::quiesce(uint64_t max_cycles)
{
    bool quiet = false;
    for (uint64_t i = 0; i < max_cycles && !quiet; ++i) {
        if (nextEventCycle() == kNeverCycle)
            quiet = true;
        else
            tick();
    }
    quiet = quiet || nextEventCycle() == kNeverCycle;
    verifyCycleAccounting();
    if (conform_)
        conform_->check();
    foldObservability();
    return quiet;
}

void
AlewifeMachine::foldObservability()
{
    net_.foldStats();
    telemetry_.foldStats();
}

void
AlewifeMachine::warnOnTraceOverflow()
{
    if (warnedTraceDrop_)
        return;
    auto ev = uint64_t(statTraceDropped.value());
    auto legs = uint64_t(statCohTraceDropped.value());
    auto tasks = uint64_t(statTaskTraceDropped.value());
    if (ev == 0 && legs == 0 && tasks == 0)
        return;
    warnedTraceDrop_ = true;
    std::cerr << "april: trace lane overflow: dropped " << ev
              << " machine events, " << legs
              << " coherence-transaction legs, " << tasks
              << " task events (raise traceCapacity/cohTraceCapacity/"
                 "taskTraceCapacity)\n";
}

uint64_t
AlewifeMachine::runtimeCounter(int slot) const
{
    uint64_t total = 0;
    for (uint32_t i = 0; i < mem.numNodes(); ++i)
        total += mem.read(mem.nodeBase(i) + rt::nodeBlockOff +
                          Addr(slot));
    return total;
}

trace::Recorder *
AlewifeMachine::traceRecorder()
{
    if (!trec)
        return nullptr;
    mergeTraceLanes();
    return trec.get();
}

coh::TxnTracer *
AlewifeMachine::txnTracer()
{
    if (!cohTrec)
        return nullptr;
    mergeCohLanes();
    return cohTrec.get();
}

task::Tracer *
AlewifeMachine::taskTracer()
{
    if (!taskTrec)
        return nullptr;
    mergeTaskLanes();
    return taskTrec.get();
}

void
AlewifeMachine::writeTrace(std::ostream &os)
{
    trace::Recorder *r = traceRecorder();
    if (!r)
        return;
    coh::TxnTracer *t = txnTracer();
    task::Tracer *tt = taskTracer();
    if (t || tt) {
        r->writeChromeTrace(os,
                            [t, tt](std::ostream &o, bool &first) {
                                if (t)
                                    t->writeChromeEvents(o, first);
                                if (tt)
                                    tt->writeChromeEvents(o, first);
                            });
    } else {
        r->writeChromeTrace(os);
    }
}

void
AlewifeMachine::writeCohTrace(std::ostream &os)
{
    if (coh::TxnTracer *t = txnTracer())
        t->writeJson(os);
}

void
AlewifeMachine::writeTaskTrace(std::ostream &os)
{
    task::Tracer *t = taskTracer();
    if (!t)
        return;
    task::AnalyzeParams p;
    p.numNodes = numNodes();
    p.totalCycles = _cycle;
    task::Report r = task::analyze(t->events(), p);
    r.dropped = uint64_t(statTaskTraceDropped.value());
    task::writeReportJson(os, r);
}

void
AlewifeMachine::mergeTaskLanes()
{
    if (shards.size() < 2 || !taskTrec)
        return;
    // Same canonical (cycle, node) k-way merge as mergeTraceLanes:
    // every task event is recorded by the processor whose node it
    // names, so distinct lanes never share a (cycle, node) pair.
    struct Cursor
    {
        const std::vector<task::TaskEvent> *events;
        size_t at = 0;
    };
    std::vector<Cursor> cur;
    for (Shard &s : shards) {
        if (s.taskLane)
            cur.push_back({&s.taskLane->events(), 0});
    }
    for (;;) {
        int best = -1;
        for (size_t i = 0; i < cur.size(); ++i) {
            if (cur[i].at >= cur[i].events->size())
                continue;
            const task::TaskEvent &e = (*cur[i].events)[cur[i].at];
            if (best < 0)
                best = int(i);
            else {
                const task::TaskEvent &b =
                    (*cur[size_t(best)].events)[cur[size_t(best)].at];
                if (e.cycle < b.cycle ||
                    (e.cycle == b.cycle && e.node < b.node)) {
                    best = int(i);
                }
            }
        }
        if (best < 0)
            break;
        taskTrec->record(
            (*cur[size_t(best)].events)[cur[size_t(best)].at]);
        ++cur[size_t(best)].at;
    }
    for (Shard &s : shards) {
        if (s.taskLane) {
            taskTrec->addDropped(s.taskLane->dropped());
            s.taskLane->clear();
        }
    }
}

void
AlewifeMachine::mergeCohLanes()
{
    if (shards.size() < 2 || !cohTrec)
        return;
    // Same canonical (cycle, node) k-way merge as mergeTraceLanes:
    // every transaction leg is recorded by the controller whose node
    // it names, so distinct lanes never share a (cycle, node) pair.
    struct Cursor
    {
        const std::vector<coh::TxnEvent> *events;
        size_t at = 0;
    };
    std::vector<Cursor> cur;
    for (Shard &s : shards) {
        if (s.cohLane)
            cur.push_back({&s.cohLane->events(), 0});
    }
    for (;;) {
        int best = -1;
        for (size_t i = 0; i < cur.size(); ++i) {
            if (cur[i].at >= cur[i].events->size())
                continue;
            const coh::TxnEvent &e = (*cur[i].events)[cur[i].at];
            if (best < 0)
                best = int(i);
            else {
                const coh::TxnEvent &b =
                    (*cur[size_t(best)].events)[cur[size_t(best)].at];
                if (e.cycle < b.cycle ||
                    (e.cycle == b.cycle && e.node < b.node)) {
                    best = int(i);
                }
            }
        }
        if (best < 0)
            break;
        cohTrec->record(
            (*cur[size_t(best)].events)[cur[size_t(best)].at]);
        ++cur[size_t(best)].at;
    }
    for (Shard &s : shards) {
        if (s.cohLane) {
            cohTrec->addDropped(s.cohLane->dropped());
            s.cohLane->clear();
        }
    }
}

void
AlewifeMachine::mergeTraceLanes()
{
    if (shards.size() < 2 || !trec)
        return;
    // Each lane is sorted by (cycle, node): a shard's cycle only
    // grows, and within one cycle it visits its nodes in ascending
    // order. Distinct lanes never share a (cycle, node) pair, so a
    // k-way merge on that key reproduces the one-shard emission
    // order exactly.
    struct Cursor
    {
        const std::vector<trace::Event> *events;
        size_t at = 0;
    };
    std::vector<Cursor> cur;
    for (Shard &s : shards) {
        if (s.lane)
            cur.push_back({&s.lane->events(), 0});
    }
    for (;;) {
        int best = -1;
        for (size_t i = 0; i < cur.size(); ++i) {
            if (cur[i].at >= cur[i].events->size())
                continue;
            const trace::Event &e = (*cur[i].events)[cur[i].at];
            if (best < 0)
                best = int(i);
            else {
                const trace::Event &b =
                    (*cur[size_t(best)].events)[cur[size_t(best)].at];
                if (e.cycle < b.cycle ||
                    (e.cycle == b.cycle && e.node < b.node)) {
                    best = int(i);
                }
            }
        }
        if (best < 0)
            break;
        trec->record((*cur[size_t(best)].events)[cur[size_t(best)].at]);
        ++cur[size_t(best)].at;
    }
    for (Shard &s : shards) {
        if (s.lane) {
            trec->addDropped(s.lane->dropped());
            s.lane->clear();
        }
    }
}

Word
AlewifeMachine::NodeIo::ioRead(IoReg r)
{
    switch (r) {
      case IoReg::CycleCount: return Word(s->cycle);
      case IoReg::NodeId: return node;
      case IoReg::NumNodes: return m->numNodes();
      case IoReg::Random: return Word(rng.next());
      default: return 0;
    }
}

uint32_t
AlewifeMachine::NodeIo::ioWrite(IoReg r, Word value)
{
    switch (r) {
      case IoReg::ConsoleOut:
        s->console.push_back({s->cycle, node, value});
        break;
      case IoReg::MachineHalt:
        // Commits at the next grid boundary (identical for every
        // host-thread count: the boundary depends only on the write
        // cycle and the quantum).
        s->haltAt = std::min(s->haltAt, m->gridAlign(s->cycle));
        break;
      case IoReg::IpiDest:
        ipiDest = value;
        break;
      case IoReg::IpiSend:
        if (ipiDest < m->numNodes())
            m->queueIpi(*s, node, uint32_t(ipiDest), value);
        break;
      case IoReg::BlockSrc:
        blockSrc = value;
        break;
      case IoReg::BlockDst:
        blockDst = value;
        break;
      case IoReg::BlockGo:
        return m->queueBlockGo(*s, node, blockSrc, blockDst, value);
      default:
        break;
    }
    return 0;
}

} // namespace april

#include "machine/alewife_machine.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/debug.hh"
#include "common/logging.hh"
#include "machine/trace_config.hh"
#include "runtime/layout.hh"

namespace april
{

AlewifeMachine::AlewifeMachine(const AlewifeParams &p,
                               const Program *prog)
    : stats::Group("alewife"),
      params(p),
      mem({.numNodes = [&] {
               uint32_t n = 1;
               for (int d = 0; d < p.network.dim; ++d)
                   n *= uint32_t(p.network.radix);
               return n;
           }(),
           .wordsPerNode = p.wordsPerNode}),
      net_(p.network, this)
{
    debug::initFromEnv();
    uint32_t n = mem.numNodes();
    if (p.traceEvents) {
        trec = std::make_unique<trace::Recorder>(makeRecorderConfig(
            n, p.proc.numFrames, p.traceCapacity));
        net_.setTraceRecorder(trec.get());
    }
    if (p.detectRaces) {
        races = std::make_unique<analysis::RaceDetector>(
            n, p.raceMaxReports, this);
        races->setTraceRecorder(trec.get());
    }
    for (uint32_t i = 0; i < n; ++i) {
        rt::Runtime::initNode(mem, i);
        ctrls.push_back(std::make_unique<coh::Controller>(
            p.controller, i, p.proc.numFrames, &mem, this, this));
        ios.push_back(std::make_unique<NodeIo>(this, i,
                                               p.seed * 1000003 + i));
        ProcParams pp = p.proc;
        pp.nodeId = i;
        procs.push_back(std::make_unique<Processor>(
            pp, prog, ctrls.back().get(), ios.back().get(), this));
        ctrls.back()->setProcessor(procs.back().get());
        ctrls.back()->setTraceRecorder(trec.get());
        ctrls.back()->setObserver(races.get());
        procs.back()->setTraceRecorder(trec.get());
        if (p.bootRuntime)
            rt::Runtime::bootProcessor(*procs.back(), *prog, mem, i, n);
        if (p.profile) {
            samplers.push_back(std::make_unique<profile::PcSampler>(
                p.profilePeriod));
            procs.back()->setPcSampler(samplers.back().get());
        }
    }
    // Built last so every subsystem's statistics become columns.
    if (p.statsInterval)
        interval_ = std::make_unique<profile::IntervalSampler>(
            p.statsInterval, *this);
}

profile::ProfileSource
AlewifeMachine::profileSource() const
{
    profile::ProfileSource src;
    src.machineCycles = _cycle;
    src.program = procs.empty() ? nullptr : procs[0]->program();
    for (const auto &p : procs)
        src.procs.push_back(p.get());
    for (const auto &s : samplers)
        src.samplers.push_back(s.get());
    src.intervals = interval_.get();
    return src;
}

void
AlewifeMachine::verifyCycleAccounting() const
{
    for (const auto &p : procs)
        p->verifyCycleAccounting();
}

void
AlewifeMachine::transmit(uint32_t to, const coh::Message &msg,
                         uint32_t flits)
{
    uint64_t slot;
    if (!msgFree.empty()) {
        slot = msgFree.back();
        msgFree.pop_back();
        msgPool[slot] = msg;
    } else {
        slot = msgPool.size();
        msgPool.push_back(msg);
    }
    net::Packet pkt;
    pkt.src = msg.from;
    pkt.dst = to;
    pkt.flits = flits;
    pkt.payload = slot;
    net_.send(pkt);
}

void
AlewifeMachine::tick()
{
    ++_cycle;
    net_.tick();
    for (uint32_t i = 0; i < procs.size(); ++i) {
        net_.deliver(i, deliverBuf);
        for (const net::Packet &pkt : deliverBuf) {
            ctrls[i]->receive(msgPool[pkt.payload]);
            msgFree.push_back(pkt.payload);
        }
        ctrls[i]->tick();
        procs[i]->tick();
    }
}

uint64_t
AlewifeMachine::nextEventCycle() const
{
    uint64_t soon = _cycle + 1;
    uint64_t next = kNeverCycle;
    // Components in cheapest-first order, bailing out as soon as one
    // wants the very next tick: the common busy case must not pay for
    // the O(links) network scan.
    for (const auto &p : procs) {
        next = std::min(next, p->nextEventCycle());
        if (next <= soon)
            return next;
    }
    for (const auto &c : ctrls) {
        next = std::min(next, c->nextEventCycle());
        if (next <= soon)
            return next;
    }
    return std::min(next, net_.nextEventCycle());
}

void
AlewifeMachine::fastForward(uint64_t cycles)
{
    _cycle += cycles;
    net_.skip(cycles);
    for (auto &p : procs)
        p->skipCycles(cycles);
    // Controllers keep no per-cycle state: their delayed queues hold
    // absolute due times checked against the machine clock.
}

uint64_t
AlewifeMachine::run(uint64_t max_cycles)
{
    uint64_t start = _cycle;
    while (!haltFlag && _cycle - start < max_cycles) {
        if (params.cycleSkip) {
            uint64_t next = nextEventCycle();
            if (next > _cycle + 1) {
                // Everything is idle until `next` (or forever): credit
                // the skipped cycles in one arithmetic step, clamped
                // to the caller's budget, and resume ticking one cycle
                // before the event.
                uint64_t idle = next == kNeverCycle
                    ? kNeverCycle
                    : next - _cycle - 1;
                idle = std::min(idle, max_cycles - (_cycle - start));
                // Never skip past a stats-sample boundary: skipCycles
                // is additive, so splitting the window is cycle-exact
                // and the recorded series matches the per-cycle loop.
                if (interval_) {
                    idle = std::min(
                        idle,
                        interval_->nextSampleCycle(_cycle) - _cycle);
                }
                fastForward(idle);
                if (interval_)
                    interval_->sampleIfDue(_cycle);
                continue;
            }
        }
        tick();
        if (interval_)
            interval_->sampleIfDue(_cycle);
    }
    return _cycle - start;
}

bool
AlewifeMachine::quiesce(uint64_t max_cycles)
{
    for (uint64_t i = 0; i < max_cycles; ++i) {
        if (nextEventCycle() == kNeverCycle) {
            verifyCycleAccounting();
            return true;
        }
        tick();
    }
    verifyCycleAccounting();
    return nextEventCycle() == kNeverCycle;
}

uint64_t
AlewifeMachine::runtimeCounter(int slot) const
{
    uint64_t total = 0;
    for (uint32_t i = 0; i < mem.numNodes(); ++i)
        total += mem.read(mem.nodeBase(i) + rt::nodeBlockOff +
                          Addr(slot));
    return total;
}

Word
AlewifeMachine::NodeIo::ioRead(IoReg r)
{
    switch (r) {
      case IoReg::CycleCount: return Word(m->_cycle);
      case IoReg::NodeId: return node;
      case IoReg::NumNodes: return m->numNodes();
      case IoReg::Random: return Word(rng.next());
      default: return 0;
    }
}

uint32_t
AlewifeMachine::NodeIo::ioWrite(IoReg r, Word value)
{
    switch (r) {
      case IoReg::ConsoleOut:
        m->consoleWords.push_back(value);
        break;
      case IoReg::MachineHalt:
        m->haltFlag = true;
        break;
      case IoReg::IpiDest:
        ipiDest = value;
        break;
      case IoReg::IpiSend:
        // Preemptive interprocessor interrupts (Section 3.4) are
        // delivered through the network in the real machine; the
        // asynchronous trap line is modeled directly.
        if (ipiDest < m->numNodes())
            m->procs[ipiDest]->postIpi(value);
        break;
      case IoReg::BlockSrc:
        blockSrc = value;
        break;
      case IoReg::BlockDst:
        blockDst = value;
        break;
      case IoReg::BlockGo: {
        // The block-transfer engine (Section 3.4) is coherent:
        //  1) dirty source lines anywhere are swept back to memory so
        //     the copy sees current data;
        //  2) the words move in memory;
        //  3) cached copies overlapping the destination are updated
        //     in place (a destination line can legitimately be cached
        //     dirty when a bump-allocated region shares a line with a
        //     live earlier allocation — invalidating would lose that
        //     neighbor's data, so the transfer write-updates instead).
        for (uint32_t node_i = 0; node_i < m->numNodes(); ++node_i) {
            auto &cache = m->ctrls[node_i]->cacheRef();
            uint32_t lw = cache.lineWords();
            for (Word w = blockSrc / lw; w <= (blockSrc + value) / lw;
                 ++w) {
                auto *line = cache.find(Addr(w));
                if (line &&
                    line->state == cache::LineState::Modified) {
                    for (uint32_t k = 0; k < lw; ++k)
                        m->mem.word(Addr(w * lw + k)) = line->words[k];
                }
            }
        }
        for (Word i = 0; i < value; ++i)
            m->mem.word(blockDst + i) = m->mem.word(blockSrc + i);
        for (uint32_t node_i = 0; node_i < m->numNodes(); ++node_i) {
            auto &cache = m->ctrls[node_i]->cacheRef();
            uint32_t lw = cache.lineWords();
            for (Word i = 0; i < value; ++i) {
                auto *line = cache.find(Addr((blockDst + i) / lw));
                if (line)
                    line->words[(blockDst + i) % lw] =
                        m->mem.word(blockDst + i);
            }
        }
        return value;
      }
      default:
        break;
    }
    return 0;
}

} // namespace april

#include "machine/alewife_machine.hh"

#include "common/logging.hh"
#include "runtime/layout.hh"

namespace april
{

AlewifeMachine::AlewifeMachine(const AlewifeParams &p,
                               const Program *prog)
    : stats::Group("alewife"),
      params(p),
      mem({.numNodes = [&] {
               uint32_t n = 1;
               for (int d = 0; d < p.network.dim; ++d)
                   n *= uint32_t(p.network.radix);
               return n;
           }(),
           .wordsPerNode = p.wordsPerNode}),
      net_(p.network, this)
{
    uint32_t n = mem.numNodes();
    for (uint32_t i = 0; i < n; ++i) {
        rt::Runtime::initNode(mem, i);
        ctrls.push_back(std::make_unique<coh::Controller>(
            p.controller, i, p.proc.numFrames, &mem, this, this));
        ios.push_back(std::make_unique<NodeIo>(this, i,
                                               p.seed * 1000003 + i));
        ProcParams pp = p.proc;
        pp.nodeId = i;
        procs.push_back(std::make_unique<Processor>(
            pp, prog, ctrls.back().get(), ios.back().get(), this));
        ctrls.back()->setProcessor(procs.back().get());
        if (p.bootRuntime)
            rt::Runtime::bootProcessor(*procs.back(), *prog, mem, i, n);
    }
}

void
AlewifeMachine::transmit(uint32_t to, const coh::Message &msg,
                         uint32_t flits)
{
    uint64_t slot;
    if (!msgFree.empty()) {
        slot = msgFree.back();
        msgFree.pop_back();
        msgPool[slot] = msg;
    } else {
        slot = msgPool.size();
        msgPool.push_back(msg);
    }
    net::Packet pkt;
    pkt.src = msg.from;
    pkt.dst = to;
    pkt.flits = flits;
    pkt.payload = slot;
    net_.send(pkt);
}

void
AlewifeMachine::tick()
{
    ++_cycle;
    net_.tick();
    for (uint32_t i = 0; i < procs.size(); ++i) {
        for (const net::Packet &pkt : net_.deliver(i)) {
            ctrls[i]->receive(msgPool[pkt.payload]);
            msgFree.push_back(pkt.payload);
        }
        ctrls[i]->tick();
        procs[i]->tick();
    }
}

uint64_t
AlewifeMachine::run(uint64_t max_cycles)
{
    uint64_t start = _cycle;
    while (!haltFlag && _cycle - start < max_cycles)
        tick();
    return _cycle - start;
}

uint64_t
AlewifeMachine::runtimeCounter(int slot) const
{
    uint64_t total = 0;
    for (uint32_t i = 0; i < mem.numNodes(); ++i)
        total += mem.read(mem.nodeBase(i) + rt::nodeBlockOff +
                          Addr(slot));
    return total;
}

Word
AlewifeMachine::NodeIo::ioRead(IoReg r)
{
    switch (r) {
      case IoReg::CycleCount: return Word(m->_cycle);
      case IoReg::NodeId: return node;
      case IoReg::NumNodes: return m->numNodes();
      case IoReg::Random: return Word(rng.next());
      default: return 0;
    }
}

uint32_t
AlewifeMachine::NodeIo::ioWrite(IoReg r, Word value)
{
    switch (r) {
      case IoReg::ConsoleOut:
        m->consoleWords.push_back(value);
        break;
      case IoReg::MachineHalt:
        m->haltFlag = true;
        break;
      case IoReg::IpiDest:
        ipiDest = value;
        break;
      case IoReg::IpiSend:
        // Preemptive interprocessor interrupts (Section 3.4) are
        // delivered through the network in the real machine; the
        // asynchronous trap line is modeled directly.
        if (ipiDest < m->numNodes())
            m->procs[ipiDest]->postIpi(value);
        break;
      case IoReg::BlockSrc:
        blockSrc = value;
        break;
      case IoReg::BlockDst:
        blockDst = value;
        break;
      case IoReg::BlockGo: {
        // The block-transfer engine (Section 3.4) is coherent:
        //  1) dirty source lines anywhere are swept back to memory so
        //     the copy sees current data;
        //  2) the words move in memory;
        //  3) cached copies overlapping the destination are updated
        //     in place (a destination line can legitimately be cached
        //     dirty when a bump-allocated region shares a line with a
        //     live earlier allocation — invalidating would lose that
        //     neighbor's data, so the transfer write-updates instead).
        for (uint32_t node_i = 0; node_i < m->numNodes(); ++node_i) {
            auto &cache = m->ctrls[node_i]->cacheRef();
            uint32_t lw = cache.lineWords();
            for (Word w = blockSrc / lw; w <= (blockSrc + value) / lw;
                 ++w) {
                auto *line = cache.find(Addr(w));
                if (line &&
                    line->state == cache::LineState::Modified) {
                    for (uint32_t k = 0; k < lw; ++k)
                        m->mem.word(Addr(w * lw + k)) = line->words[k];
                }
            }
        }
        for (Word i = 0; i < value; ++i)
            m->mem.word(blockDst + i) = m->mem.word(blockSrc + i);
        for (uint32_t node_i = 0; node_i < m->numNodes(); ++node_i) {
            auto &cache = m->ctrls[node_i]->cacheRef();
            uint32_t lw = cache.lineWords();
            for (Word i = 0; i < value; ++i) {
                auto *line = cache.find(Addr((blockDst + i) / lw));
                if (line)
                    line->words[(blockDst + i) % lw] =
                        m->mem.word(blockDst + i);
            }
        }
        return value;
      }
      default:
        break;
    }
    return 0;
}

} // namespace april

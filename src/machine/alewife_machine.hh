/**
 * @file
 * The full ALEWIFE machine (Figure 1): N nodes, each a processing
 * element + cache + cache/directory controller + local memory, glued
 * by the k-ary n-cube network. This is the configuration the paper's
 * Figure 4 simulator models when the cache and network simulators are
 * enabled.
 *
 * Execution engine (DESIGN.md §7.6): the nodes are partitioned into
 * contiguous shards, one per host worker thread. Each shard owns its
 * processors, controllers, caches, home memory segment, per-node
 * network arrival queues and a local clock, and advances
 * independently inside a quantum of Q cycles, where Q is the minimum
 * cross-node network latency — no message sent during a quantum can
 * arrive inside the same quantum. At the quantum barrier the
 * coordinator merges cross-shard traffic in a canonical order, so a
 * run is bit-identical for every host-thread count (the 1-thread
 * configuration IS the sequential simulator; there is no separate
 * sequential loop).
 */

#ifndef APRIL_MACHINE_ALEWIFE_MACHINE_HH
#define APRIL_MACHINE_ALEWIFE_MACHINE_HH

#include <memory>
#include <vector>

#include "analysis/race_detector.hh"
#include "coherence/controller.hh"
#include "mc/conform.hh"
#include "common/parallel.hh"
#include "common/random.hh"
#include "common/trace.hh"
#include "network/network.hh"
#include "network/telemetry.hh"
#include "proc/processor.hh"
#include "profile/interval.hh"
#include "profile/pc_sampler.hh"
#include "profile/report.hh"
#include "runtime/runtime.hh"

namespace april
{

/** Configuration of the full machine. */
struct AlewifeParams
{
    net::NetworkParams network;     ///< defines the node count
    uint32_t wordsPerNode = 1u << 20;
    ProcParams proc;
    coh::ControllerParams controller;
    /// Directory organization, copied into every controller at
    /// construction (authoritative over controller.dirScheme).
    /// FullMap is the paper's scheme and the differential oracle;
    /// LimitedPtr is the i-pointer LimitLESS-style directory that
    /// makes >64-node machines representable.
    coh::DirScheme dirScheme = coh::DirScheme::FullMap;
    /// Hardware pointers per line under LimitedPtr (0 forces the
    /// software spill handler on every sharer addition).
    uint32_t dirPointers = 4;
    uint64_t seed = 12345;
    /// Boot the Mul-T run-time system on every node (requires the
    /// runtime's symbols in the program). Turn off for raw programs.
    bool bootRuntime = true;
    /// Fast-forward cycles in run() when every processor, controller
    /// and the network is provably idle (cycle-exact; see
    /// nextEventCycle()). Off forces the plain per-cycle loop.
    bool cycleSkip = true;
    /// Host worker threads for run(). Nodes are split into that many
    /// contiguous shards advanced in parallel; results are
    /// bit-identical for every value. Clamped to [1, numNodes] and
    /// forced to 1 when detectRaces is on (the race observer keeps
    /// global state).
    uint32_t hostThreads = 1;
    /// Record machine events (context switches, traps, coherence
    /// transitions, network traffic) for Chrome-trace export.
    bool traceEvents = false;
    /// Recorded-event cap when traceEvents is on.
    uint64_t traceCapacity = 1u << 22;
    /// Record every coherence transaction as a causally linked span
    /// (per-leg events keyed by a stable transaction id), exported as
    /// structured JSON and stitched into the Chrome trace. The
    /// directory census and network telemetry stay always-on; this
    /// only controls the per-leg log.
    bool cohTrace = false;
    /// Recorded-leg cap when cohTrace is on.
    uint64_t cohTraceCapacity = 1u << 22;
    /// Record the task/future lifecycle event stream (the runtime's
    /// `tp$...` probe notes plus the processor's wait hooks) for the
    /// task observability plane (DESIGN.md §7.10). Purely
    /// observational: execution is identical either way.
    bool taskTrace = false;
    /// Recorded-event cap when taskTrace is on.
    uint64_t taskTraceCapacity = 1u << 20;
    /// Attach the Eraser-style full/empty race detector to every
    /// controller. Purely observational: execution (and the trace
    /// event stream, minus Race events) is identical either way.
    bool detectRaces = false;
    /// Detailed race reports retained when detectRaces is on (the
    /// stats counter keeps counting past the cap).
    uint64_t raceMaxReports = 64;
    /// Attach a PC sampler to every processor. Cycle accounting is
    /// always on; this adds the sampled-hotspot layer.
    bool profile = false;
    /// PC sample period in cycles when profile is on.
    uint64_t profilePeriod = 64;
    /// Snapshot every statistic each time the machine clock crosses a
    /// multiple of this many cycles (0: no time series). Quanta and
    /// cycle-skip windows are clamped at sample boundaries, which is
    /// cycle-exact.
    uint64_t statsInterval = 0;
    /// Check every directory transition the controllers record
    /// against the model checker's protocol spec (src/mc); the
    /// machine panics at the next sync point if the implementation
    /// performs a step no spec rule allows. Cheap (one table lookup
    /// per transition), so it defaults on.
    bool conformance = true;
};

/** N ALEWIFE nodes on a mesh. */
class AlewifeMachine : public stats::Group
{
  public:
    AlewifeMachine(const AlewifeParams &params, const Program *prog);
    ~AlewifeMachine();

    /** Advance exactly one machine cycle (serial; tests, quiesce). */
    void tick();
    uint64_t run(uint64_t max_cycles);

    /**
     * Earliest cycle at which any component (processor, controller,
     * in-flight packet, pending interrupt or block transfer) can do
     * observable work; kNeverCycle when the machine is permanently
     * idle. Values <= cycle() + 1 mean "tick normally".
     */
    uint64_t nextEventCycle() const;

    /** Toggle cycle-skipping in run() (construction-time default
     *  comes from AlewifeParams::cycleSkip). */
    void setCycleSkipping(bool on) { params.cycleSkip = on; }

    /**
     * Tick until no component has a pending event or @p max_cycles
     * elapse; @return true when fully quiescent. run() exits when the
     * committed MachineHalt boundary is reached, which can leave
     * coherence traffic (e.g. the write-back of the very word the
     * halt decision was read from) in flight — snapshotting without
     * draining it would read stale memory.
     */
    bool quiesce(uint64_t max_cycles);

    bool halted() const { return haltFlag; }
    uint64_t cycle() const { return _cycle; }
    uint32_t numNodes() const { return net_.numNodes(); }

    /** Number of shards (= host worker threads) actually in use. */
    uint32_t hostThreads() const { return uint32_t(shards.size()); }

    /** The parallel quantum Q (minimum cross-node network latency). */
    uint64_t quantum() const { return quantum_; }

    Processor &proc(uint32_t n) { return *procs.at(n); }
    coh::Controller &controller(uint32_t n) { return *ctrls.at(n); }
    net::Network &network() { return net_; }
    SharedMemory &memory() { return mem; }

    const std::vector<Word> &console() const { return consoleWords; }
    uint64_t runtimeCounter(int slot) const;

    /** Event recorder with all lanes merged (nullptr unless
     *  params.traceEvents). */
    trace::Recorder *traceRecorder();

    /** Coherence-transaction tracer with all lanes merged (nullptr
     *  unless params.cohTrace). */
    coh::TxnTracer *txnTracer();

    /** Task-event tracer with all lanes merged (nullptr unless
     *  params.taskTrace). */
    task::Tracer *taskTracer();

    /** Network telemetry (always on; folded at sync points). */
    net::Telemetry &telemetry() { return telemetry_; }

    /** Race detector (nullptr unless params.detectRaces). */
    analysis::RaceDetector *raceDetector() { return races.get(); }

    /** Spec-conformance listener (nullptr unless
     *  params.conformance). */
    const mc::Conformance *conformance() const { return conform_.get(); }

    /** Serialize the event log as Chrome trace-event JSON, stitching
     *  in coherence-transaction flow events when cohTrace is on.
     *  No-op when tracing is off. */
    void writeTrace(std::ostream &os);

    /** Serialize the coherence-transaction log as structured JSON.
     *  No-op when cohTrace is off. */
    void writeCohTrace(std::ostream &os);

    /** Analyze the task-event log and serialize the report as
     *  structured JSON. No-op when taskTrace is off. */
    void writeTaskTrace(std::ostream &os);

    /** Assemble the report writers' view of this run. */
    profile::ProfileSource profileSource() const;

    /** Interval time series (nullptr unless params.statsInterval). */
    const profile::IntervalSampler *intervalSampler() const
    {
        return interval_.get();
    }

    /**
     * Panic unless every processor's bucket sums equal its cycle
     * count (per node and per frame). quiesce() calls this; tests and
     * tools may call it at any point.
     */
    void verifyCycleAccounting() const;

  private:
    struct Shard;

    /** One coherence message in flight, timing fixed at injection.
     *  Heap-ordered by the canonical (arrive, src, seq) key, so the
     *  delivery order is independent of insertion order. */
    struct InFlight
    {
        uint64_t arrive = 0;
        uint32_t src = 0;
        uint64_t seq = 0;       ///< per-source injection sequence
        uint32_t dst = 0;
        uint32_t flits = 0;
        uint32_t hops = 0;
        uint64_t sendCycle = 0;
        coh::Message msg;

        /// std::push_heap builds a max-heap; invert for earliest-first.
        bool
        operator<(const InFlight &o) const
        {
            if (arrive != o.arrive)
                return arrive > o.arrive;
            if (src != o.src)
                return src > o.src;
            return seq > o.seq;
        }
    };

    /** Per-node arrival queue, padded so neighbouring shards never
     *  share a cache line. */
    struct alignas(64) ArrivalQueue
    {
        std::vector<InFlight> q;    ///< binary min-heap (see InFlight)
    };

    /** An interprocessor interrupt in flight (Section 3.4: delivered
     *  through the network; latency = controller occupancy + network
     *  traversal of a request packet). */
    struct PendingIpi
    {
        uint64_t due = 0;
        uint32_t src = 0;
        uint32_t dst = 0;
        Word arg = 0;
    };

    /** A block transfer awaiting its commit boundary. */
    struct BlockOp
    {
        uint64_t commit = 0;    ///< grid boundary the copy runs at
        uint64_t issued = 0;
        uint32_t node = 0;
        Word src = 0;
        Word dst = 0;
        Word len = 0;
    };

    struct ConsoleEntry
    {
        uint64_t cycle = 0;
        uint32_t node = 0;
        Word word = 0;
    };

    /** Fabric endpoint for one node, bound to its shard's clock. */
    class NodeFabric : public coh::Fabric
    {
      public:
        NodeFabric(AlewifeMachine *machine, Shard *shard)
            : m(machine), s(shard)
        {}

        void
        transmit(uint32_t to, const coh::Message &msg,
                 uint32_t flits) override
        {
            m->shardTransmit(*s, to, msg, flits);
        }

        uint64_t now() const override;

      private:
        AlewifeMachine *m;
        Shard *s;
    };

    class NodeIo : public IoPort
    {
      public:
        NodeIo(AlewifeMachine *machine, Shard *shard, uint32_t node,
               uint64_t seed)
            : m(machine), s(shard), node(node), rng(seed)
        {}

        Word ioRead(IoReg r) override;
        uint32_t ioWrite(IoReg r, Word value) override;

      private:
        AlewifeMachine *m;
        Shard *s;
        uint32_t node;
        Rng rng;
        Word ipiDest = 0;
        Word blockSrc = 0;
        Word blockDst = 0;
    };

    /** One worker thread's slice of the machine. */
    struct alignas(64) Shard
    {
        uint32_t first = 0;         ///< node range [first, last)
        uint32_t last = 0;
        uint64_t cycle = 0;         ///< local clock
        /// Cross-shard packets injected this quantum, merged into the
        /// destination queues at the barrier.
        std::vector<InFlight> outbox;
        /// Cross-shard interrupts issued this quantum.
        std::vector<PendingIpi> ipiOutbox;
        /// Interrupts for this shard's nodes, sorted by (due, src).
        std::vector<PendingIpi> ipiPending;
        /// Block transfers issued this quantum (committed at the
        /// barrier by the coordinator).
        std::vector<BlockOp> blockOps;
        uint64_t blockMin = kNeverCycle;  ///< earliest pending commit
        uint64_t haltAt = kNeverCycle;    ///< committed halt boundary
        /// Host-side skip-probe hysteresis: after a probe finds no
        /// skippable window, don't probe again before this cycle
        /// (back-off doubles up to a cap, resets on any skip). Pure
        /// heuristic — skipping fewer provably idle windows cannot
        /// change simulated state, only host speed.
        uint64_t probeAt = 0;
        uint32_t probeBackoff = 0;
        /// Per-shard trace lane (only when W > 1 and tracing is on;
        /// with one shard components write the merged recorder
        /// directly).
        std::unique_ptr<trace::Recorder> lane;
        /// Per-shard coherence-transaction lane (same scheme).
        std::unique_ptr<coh::TxnTracer> cohLane;
        /// Per-shard task-event lane (same scheme).
        std::unique_ptr<task::Tracer> taskLane;
        std::vector<ConsoleEntry> console;
    };

    uint32_t shardOf(uint32_t node) const;
    /** Smallest grid boundary (multiple of Q) >= @p c. */
    uint64_t gridAlign(uint64_t c) const;
    /** Smallest grid boundary (multiple of Q) > @p c. */
    uint64_t nextGrid(uint64_t c) const;

    void shardTransmit(Shard &s, uint32_t to, const coh::Message &msg,
                       uint32_t flits);
    void pushArrival(const InFlight &f);
    void deliverNode(Shard &s, uint32_t node);
    void applyIpis(Shard &s);
    void queueIpi(Shard &s, uint32_t src, uint32_t dst, Word arg);
    uint32_t queueBlockGo(Shard &s, uint32_t node, Word src, Word dst,
                          Word len);
    void executeBlockOp(const BlockOp &op);

    /** Earliest observable event for @p s's own components. */
    uint64_t shardNextEvent(const Shard &s) const;
    /** Skip @p cycles provably idle cycles on @p s (cycle-exact). */
    void shardSkip(Shard &s, uint64_t cycles);
    /**
     * Advance @p s to @p target (clamped at this shard's own pending
     * commit boundaries), delivering packets, applying interrupts and
     * ticking controllers and processors cycle by cycle, with
     * skip-window fast-forwarding when enabled.
     */
    void advanceShard(Shard &s, uint64_t target);

    /** Barrier phase: all shards parked at cycle @p t. Merges
     *  cross-shard traffic canonically, commits due block transfers
     *  and halts, and takes due interval samples. */
    void syncAt(uint64_t t);

    void mergeTraceLanes();
    void mergeCohLanes();
    void mergeTaskLanes();

    /** Fold network/telemetry accumulators into the stats tree (the
     *  deterministic-sync-point bundle around net_.foldStats()). */
    void foldObservability();

    /** Emit the one-time stderr overflow warnings (run() exit). */
    void warnOnTraceOverflow();

    AlewifeParams params;
    SharedMemory mem;
    std::unique_ptr<trace::Recorder> trec;
    std::unique_ptr<coh::TxnTracer> cohTrec;
    std::unique_ptr<task::Tracer> taskTrec;
    std::unique_ptr<task::ProbeMap> taskProbes_;
    std::unique_ptr<analysis::RaceDetector> races;
    std::unique_ptr<mc::Conformance> conform_;
    net::Network net_;
    net::Telemetry telemetry_;
    /// Recorder-lane overflow surfaced in stats JSON (thread-count
    /// invariant: total events minus capacity regardless of how they
    /// were distributed over lanes).
    stats::Formula statTraceDropped;
    stats::Formula statCohTraceDropped;
    stats::Formula statTaskTraceDropped;
    bool warnedTraceDrop_ = false;
    uint64_t quantum_ = 1;
    std::vector<Shard> shards;
    std::vector<ArrivalQueue> arrivals;
    std::vector<std::unique_ptr<coh::Controller>> ctrls;
    std::vector<std::unique_ptr<NodeFabric>> fabrics;
    std::vector<std::unique_ptr<NodeIo>> ios;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<profile::PcSampler>> samplers;
    std::unique_ptr<profile::IntervalSampler> interval_;
    std::unique_ptr<par::WorkerPool> pool_;
    /// Quantum end published to the worker pool for the current
    /// runQuantum() call (the pool's epoch counter orders the write).
    uint64_t quantumTarget_ = 0;
    /// Block transfers whose commit boundary lies beyond the barrier
    /// they were collected at (budget/interval-clamped quanta), in
    /// canonical (commit, issued, node) order.
    std::vector<BlockOp> pendingBlocks;
    std::vector<Word> consoleWords;
    bool haltFlag = false;
    uint64_t _cycle = 0;
};

} // namespace april

#endif // APRIL_MACHINE_ALEWIFE_MACHINE_HH

/**
 * @file
 * The full ALEWIFE machine (Figure 1): N nodes, each a processing
 * element + cache + cache/directory controller + local memory, glued
 * by the k-ary n-cube network. This is the configuration the paper's
 * Figure 4 simulator models when the cache and network simulators are
 * enabled.
 */

#ifndef APRIL_MACHINE_ALEWIFE_MACHINE_HH
#define APRIL_MACHINE_ALEWIFE_MACHINE_HH

#include <memory>
#include <vector>

#include "analysis/race_detector.hh"
#include "coherence/controller.hh"
#include "common/random.hh"
#include "common/trace.hh"
#include "network/network.hh"
#include "proc/processor.hh"
#include "profile/interval.hh"
#include "profile/pc_sampler.hh"
#include "profile/report.hh"
#include "runtime/runtime.hh"

namespace april
{

/** Configuration of the full machine. */
struct AlewifeParams
{
    net::NetworkParams network;     ///< defines the node count
    uint32_t wordsPerNode = 1u << 20;
    ProcParams proc;
    coh::ControllerParams controller;
    uint64_t seed = 12345;
    /// Boot the Mul-T run-time system on every node (requires the
    /// runtime's symbols in the program). Turn off for raw programs.
    bool bootRuntime = true;
    /// Fast-forward cycles in run() when every processor, controller
    /// and the network is provably idle (cycle-exact; see
    /// nextEventCycle()). Off forces the plain per-cycle loop.
    bool cycleSkip = true;
    /// Record machine events (context switches, traps, coherence
    /// transitions, network traffic) for Chrome-trace export.
    bool traceEvents = false;
    /// Recorded-event cap when traceEvents is on.
    uint64_t traceCapacity = 1u << 22;
    /// Attach the Eraser-style full/empty race detector to every
    /// controller. Purely observational: execution (and the trace
    /// event stream, minus Race events) is identical either way.
    bool detectRaces = false;
    /// Detailed race reports retained when detectRaces is on (the
    /// stats counter keeps counting past the cap).
    uint64_t raceMaxReports = 64;
    /// Attach a PC sampler to every processor. Cycle accounting is
    /// always on; this adds the sampled-hotspot layer.
    bool profile = false;
    /// PC sample period in cycles when profile is on.
    uint64_t profilePeriod = 64;
    /// Snapshot every statistic each time the machine clock crosses a
    /// multiple of this many cycles (0: no time series). Cycle-skip
    /// windows are clamped at sample boundaries, which is cycle-exact.
    uint64_t statsInterval = 0;
};

/** N ALEWIFE nodes on a mesh. */
class AlewifeMachine : public stats::Group, public coh::Fabric
{
  public:
    AlewifeMachine(const AlewifeParams &params, const Program *prog);

    void tick();
    uint64_t run(uint64_t max_cycles);

    /**
     * Earliest cycle at which any component (processor, controller,
     * network) can do observable work; kNeverCycle when the machine
     * is permanently idle. Values <= cycle() + 1 mean "tick normally".
     */
    uint64_t nextEventCycle() const;

    /** Toggle cycle-skipping in run() (construction-time default
     *  comes from AlewifeParams::cycleSkip). */
    void setCycleSkipping(bool on) { params.cycleSkip = on; }

    /**
     * Tick until no component (processor, controller, network) has a
     * pending event or @p max_cycles elapse; @return true when fully
     * quiescent. run() exits the moment MachineHalt is written, which
     * can leave coherence traffic (e.g. the write-back of the very
     * word the halt decision was read from) in flight — snapshotting
     * without draining it would read stale memory.
     */
    bool quiesce(uint64_t max_cycles);

    bool halted() const { return haltFlag; }
    uint64_t cycle() const { return _cycle; }
    uint32_t numNodes() const { return net_.numNodes(); }

    Processor &proc(uint32_t n) { return *procs.at(n); }
    coh::Controller &controller(uint32_t n) { return *ctrls.at(n); }
    net::Network &network() { return net_; }
    SharedMemory &memory() { return mem; }

    const std::vector<Word> &console() const { return consoleWords; }
    uint64_t runtimeCounter(int slot) const;

    /** Event recorder (nullptr unless params.traceEvents). */
    trace::Recorder *traceRecorder() { return trec.get(); }

    /** Race detector (nullptr unless params.detectRaces). */
    analysis::RaceDetector *raceDetector() { return races.get(); }

    /** Serialize the event log as Chrome trace-event JSON.
     *  No-op when tracing is off. */
    void
    writeTrace(std::ostream &os) const
    {
        if (trec)
            trec->writeChromeTrace(os);
    }

    /** Assemble the report writers' view of this run. */
    profile::ProfileSource profileSource() const;

    /** Interval time series (nullptr unless params.statsInterval). */
    const profile::IntervalSampler *intervalSampler() const
    {
        return interval_.get();
    }

    /**
     * Panic unless every processor's bucket sums equal its cycle
     * count (per node and per frame). quiesce() calls this; tests and
     * tools may call it at any point.
     */
    void verifyCycleAccounting() const;

  private:
    // coh::Fabric interface.
    void transmit(uint32_t to, const coh::Message &msg,
                  uint32_t flits) override;
    uint64_t now() const override { return _cycle; }

    class NodeIo : public IoPort
    {
      public:
        NodeIo(AlewifeMachine *machine, uint32_t node, uint64_t seed)
            : m(machine), node(node), rng(seed)
        {}

        Word ioRead(IoReg r) override;
        uint32_t ioWrite(IoReg r, Word value) override;

      private:
        AlewifeMachine *m;
        uint32_t node;
        Rng rng;
        Word ipiDest = 0;
        Word blockSrc = 0;
        Word blockDst = 0;
    };

    AlewifeParams params;
    SharedMemory mem;
    std::unique_ptr<trace::Recorder> trec;
    std::unique_ptr<analysis::RaceDetector> races;
    net::Network net_;
    std::vector<std::unique_ptr<coh::Controller>> ctrls;
    std::vector<std::unique_ptr<NodeIo>> ios;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<profile::PcSampler>> samplers;
    std::unique_ptr<profile::IntervalSampler> interval_;
    /** Bulk-advance @p cycles fully idle cycles (run() fast path). */
    void fastForward(uint64_t cycles);

    /** In-flight coherence messages, keyed by packet payload. */
    std::vector<coh::Message> msgPool;
    std::vector<uint64_t> msgFree;
    /** Reusable per-tick delivery buffer (see net::Network::deliver). */
    std::vector<net::Packet> deliverBuf;
    std::vector<Word> consoleWords;
    bool haltFlag = false;
    uint64_t _cycle = 0;
};

} // namespace april

#endif // APRIL_MACHINE_ALEWIFE_MACHINE_HH

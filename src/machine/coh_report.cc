#include "machine/coh_report.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <vector>

#include "coherence/protocol.hh"

namespace april
{

namespace
{

/** Histogram totals folded across controllers. */
struct HistAgg
{
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0;
    int64_t min = std::numeric_limits<int64_t>::max();
    int64_t max = std::numeric_limits<int64_t>::min();

    void
    add(const stats::Histogram &h)
    {
        buckets.resize(std::max(buckets.size(), h.numBuckets()), 0);
        for (size_t b = 0; b < h.numBuckets(); ++b)
            buckets[b] += h.bucketCount(b);
        count += h.count();
        sum += h.sum();
        if (h.count()) {
            min = std::min(min, h.min());
            max = std::max(max, h.max());
        }
    }

    double mean() const { return count ? sum / double(count) : 0.0; }

    /**
     * Upper bound of the bucket holding the @p q quantile. Log2
     * buckets give a conservative ceiling, not an interpolation; the
     * last bucket reports the observed maximum.
     */
    uint64_t
    percentile(double q) const
    {
        if (!count)
            return 0;
        uint64_t rank = uint64_t(q * double(count));
        if (rank < 1)
            rank = 1;
        uint64_t cum = 0;
        for (size_t b = 0; b < buckets.size(); ++b) {
            cum += buckets[b];
            if (cum >= rank) {
                if (b == 0)
                    return 0;
                if (b + 1 == buckets.size())
                    return uint64_t(max);
                return (uint64_t(1) << b) - 1;
            }
        }
        return uint64_t(max);
    }
};

void
writeHistJson(std::ostream &os, const HistAgg &h)
{
    os << "{\"count\":" << h.count << ",\"mean\":" << h.mean()
       << ",\"min\":" << (h.count ? h.min : 0)
       << ",\"max\":" << (h.count ? h.max : 0)
       << ",\"p50\":" << h.percentile(0.50)
       << ",\"p90\":" << h.percentile(0.90)
       << ",\"p99\":" << h.percentile(0.99) << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b)
        os << (b ? "," : "") << h.buckets[b];
    os << "]}";
}

/** One home line's census plus where it lives. */
struct LineEntry
{
    Addr line = 0;
    uint32_t home = 0;
    coh::Controller::LineCensus c;
};

/** One node pair's traffic summed over classes. */
struct PairEntry
{
    uint32_t src = 0;
    uint32_t dst = 0;
    uint64_t count = 0;
    uint64_t flits = 0;
};

/** Everything the text and JSON writers share. */
struct ReportData
{
    uint64_t cycles = 0;
    uint32_t nodes = 0;
    HistAgg sharerCount;
    HistAgg invPerWrite;
    std::vector<uint64_t> dirTransitions;   ///< [old * 3 + new]
    uint64_t invSent = 0;
    uint64_t invAcked = 0;
    uint64_t overflowTraps = 0;     ///< limited-directory spills
    uint64_t spilledPtrs = 0;
    uint64_t spillWalks = 0;
    std::vector<LineEntry> hottest;
    std::vector<LineEntry> widest;
    std::vector<PairEntry> pairs;
    std::vector<coh::TxnRecord> slowest;
    uint64_t txnTotal = 0;      ///< transactions in the trace
    uint64_t txnDropped = 0;    ///< legs lost to the capacity cap
    bool traced = false;        ///< cohTrace was on
};

ReportData
gather(AlewifeMachine &m, const CohReportOptions &opts)
{
    m.telemetry().foldStats();

    ReportData d;
    d.cycles = m.cycle();
    d.nodes = m.numNodes();
    d.dirTransitions.assign(size_t(coh::kNumDirStates) *
                                coh::kNumDirStates,
                            0);

    std::vector<LineEntry> lines;
    for (uint32_t n = 0; n < d.nodes; ++n) {
        coh::Controller &c = m.controller(n);
        d.sharerCount.add(c.statSharerCount);
        d.invPerWrite.add(c.statInvPerWrite);
        for (size_t t = 0; t < d.dirTransitions.size(); ++t)
            d.dirTransitions[t] +=
                uint64_t(c.statDirTransitions[t].value());
        d.invSent += uint64_t(c.statInvSent.value());
        d.invAcked += uint64_t(c.statInvAcks.value());
        d.overflowTraps += uint64_t(c.statOverflowTraps.value());
        d.spilledPtrs += uint64_t(c.statSpilledPtrs.value());
        d.spillWalks += uint64_t(c.statSpillWalks.value());
        for (const auto &[line, census] : c.lineCensus())
            lines.push_back({line, n, census});
    }

    d.hottest = lines;
    std::sort(d.hottest.begin(), d.hottest.end(),
              [](const LineEntry &a, const LineEntry &b) {
                  if (a.c.transitions != b.c.transitions)
                      return a.c.transitions > b.c.transitions;
                  return a.line < b.line;
              });
    d.hottest.resize(std::min(d.hottest.size(), opts.topLines));

    d.widest = std::move(lines);
    std::sort(d.widest.begin(), d.widest.end(),
              [](const LineEntry &a, const LineEntry &b) {
                  if (a.c.maxSharers != b.c.maxSharers)
                      return a.c.maxSharers > b.c.maxSharers;
                  if (a.c.transitions != b.c.transitions)
                      return a.c.transitions > b.c.transitions;
                  return a.line < b.line;
              });
    d.widest.resize(std::min(d.widest.size(), opts.topSharers));

    // The per-pair matrices are dropped above
    // Telemetry::kPairMatrixMaxNodes (O(nodes^2) memory); the report
    // then simply has no busiest-pairs table.
    const net::Telemetry &tel = m.telemetry();
    for (uint32_t src = 0; tel.hasPairMatrix() && src < d.nodes;
         ++src) {
        for (uint32_t dst = 0; dst < d.nodes; ++dst) {
            PairEntry p{src, dst, 0, 0};
            for (size_t c = 0; c < tel.numClasses(); ++c) {
                p.count += tel.pairCount(src, dst, uint8_t(c));
                p.flits += tel.pairFlits(src, dst, uint8_t(c));
            }
            if (p.count)
                d.pairs.push_back(p);
        }
    }
    std::sort(d.pairs.begin(), d.pairs.end(),
              [](const PairEntry &a, const PairEntry &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });
    d.pairs.resize(std::min(d.pairs.size(), opts.topPairs));

    if (coh::TxnTracer *t = m.txnTracer()) {
        d.traced = true;
        d.txnDropped = t->dropped();
        std::vector<coh::TxnRecord> txns =
            coh::summarizeTransactions(t->events());
        d.txnTotal = txns.size();
        std::erase_if(txns,
                      [](const coh::TxnRecord &r) { return !r.complete; });
        std::sort(txns.begin(), txns.end(),
                  [](const coh::TxnRecord &a, const coh::TxnRecord &b) {
                      if (a.latency() != b.latency())
                          return a.latency() > b.latency();
                      return a.id < b.id;
                  });
        txns.resize(std::min(txns.size(), opts.topTxns));
        d.slowest = std::move(txns);
    }
    return d;
}

/** "dirUncachedToShared" and friends, indexed old * 3 + new. */
std::string
transitionName(size_t idx)
{
    auto old_state = coh::DirState(idx / coh::kNumDirStates);
    auto new_state = coh::DirState(idx % coh::kNumDirStates);
    return std::string("dir") + coh::dirStateName(old_state) + "To" +
           coh::dirStateName(new_state);
}

} // namespace

void
writeCohReportJson(std::ostream &os, AlewifeMachine &machine,
                   const CohReportOptions &opts)
{
    ReportData d = gather(machine, opts);
    const net::Telemetry &tel = machine.telemetry();

    os << "{\"schemaVersion\":1,\"machine\":{\"nodes\":" << d.nodes
       << ",\"cycles\":" << d.cycles << "},";

    os << "\"sharerDistribution\":";
    writeHistJson(os, d.sharerCount);
    os << ",\"invPerWrite\":";
    writeHistJson(os, d.invPerWrite);

    os << ",\"dirTransitions\":{";
    for (size_t t = 0; t < d.dirTransitions.size(); ++t) {
        os << (t ? "," : "") << "\"" << transitionName(t)
           << "\":" << d.dirTransitions[t];
    }
    os << "}";

    os << ",\"spills\":{\"overflowTraps\":" << d.overflowTraps
       << ",\"spilledPtrs\":" << d.spilledPtrs
       << ",\"spillWalks\":" << d.spillWalks << "}";

    os << ",\"classes\":[";
    for (size_t c = 0; c < tel.numClasses(); ++c) {
        HistAgg lat;
        lat.add(tel.classLatency(c));
        os << (c ? ",\n" : "\n") << "{\"name\":\"" << tel.className(c)
           << "\",\"sent\":" << tel.classSent(c)
           << ",\"delivered\":" << tel.classDelivered(c)
           << ",\"flits\":" << tel.classFlits(c) << ",\"latency\":";
        writeHistJson(os, lat);
        os << "}";
    }
    os << "]";

    os << ",\"hopLatency\":[";
    bool first_hop = true;
    for (uint32_t h = 0; h <= tel.maxHops(); ++h) {
        const stats::Histogram &lat = tel.hopLatency(h);
        if (!lat.count())
            continue;
        HistAgg agg;
        agg.add(lat);
        os << (first_hop ? "\n" : ",\n") << "{\"hops\":" << h
           << ",\"latency\":";
        writeHistJson(os, agg);
        os << "}";
        first_hop = false;
    }
    os << "]";

    os << ",\"hottestLines\":[";
    for (size_t i = 0; i < d.hottest.size(); ++i) {
        const LineEntry &e = d.hottest[i];
        os << (i ? ",\n" : "\n") << "{\"line\":" << e.line
           << ",\"home\":" << e.home
           << ",\"transitions\":" << e.c.transitions
           << ",\"invalidations\":" << e.c.invs
           << ",\"maxSharers\":" << e.c.maxSharers << "}";
    }
    os << "]";

    os << ",\"widestLines\":[";
    for (size_t i = 0; i < d.widest.size(); ++i) {
        const LineEntry &e = d.widest[i];
        os << (i ? ",\n" : "\n") << "{\"line\":" << e.line
           << ",\"home\":" << e.home
           << ",\"maxSharers\":" << e.c.maxSharers
           << ",\"transitions\":" << e.c.transitions << "}";
    }
    os << "]";

    os << ",\"busiestPairs\":[";
    for (size_t i = 0; i < d.pairs.size(); ++i) {
        const PairEntry &p = d.pairs[i];
        os << (i ? ",\n" : "\n") << "{\"src\":" << p.src
           << ",\"dst\":" << p.dst << ",\"messages\":" << p.count
           << ",\"flits\":" << p.flits << "}";
    }
    os << "]";

    os << ",\"slowestTransactions\":[";
    for (size_t i = 0; i < d.slowest.size(); ++i) {
        const coh::TxnRecord &r = d.slowest[i];
        os << (i ? ",\n" : "\n") << "{\"id\":" << r.id
           << ",\"node\":" << r.requester << ",\"home\":" << r.home
           << ",\"line\":" << r.line
           << ",\"write\":" << (r.write ? 1 : 0)
           << ",\"issued\":" << r.issued << ",\"filled\":" << r.filled
           << ",\"latency\":" << r.latency() << ",\"invs\":" << r.invs
           << ",\"acks\":" << r.acks << "}";
    }
    os << "]";

    os << ",\"transactions\":{\"traced\":" << (d.traced ? 1 : 0)
       << ",\"total\":" << d.txnTotal
       << ",\"droppedLegs\":" << d.txnDropped << "}";

    os << ",\"balance\":{\"invSent\":" << d.invSent
       << ",\"invAcked\":" << d.invAcked
       << ",\"inFlight\":" << (d.invSent - d.invAcked)
       << ",\"ok\":" << (d.invAcked <= d.invSent ? 1 : 0) << "}}\n";
}

void
writeCohReportText(std::ostream &os, AlewifeMachine &machine,
                   const CohReportOptions &opts)
{
    ReportData d = gather(machine, opts);
    const net::Telemetry &tel = machine.telemetry();
    char buf[256];

    os << "== coherence report: " << d.nodes << " nodes, " << d.cycles
       << " cycles ==\n\n";

    os << "sharer-set width at directory transitions: count="
       << d.sharerCount.count << " mean=" << d.sharerCount.mean()
       << " max=" << (d.sharerCount.count ? d.sharerCount.max : 0)
       << "\n";
    os << "invalidations per exclusive request:       count="
       << d.invPerWrite.count << " mean=" << d.invPerWrite.mean()
       << " max=" << (d.invPerWrite.count ? d.invPerWrite.max : 0)
       << "\n\n";

    os << "directory transitions:\n";
    for (size_t t = 0; t < d.dirTransitions.size(); ++t) {
        if (!d.dirTransitions[t])
            continue;
        std::snprintf(buf, sizeof buf, "  %-26s %12" PRIu64 "\n",
                      transitionName(t).c_str(), d.dirTransitions[t]);
        os << buf;
    }

    os << "\nnetwork classes (sent/delivered/flits, latency p50/p99):\n";
    for (size_t c = 0; c < tel.numClasses(); ++c) {
        if (!tel.classSent(c))
            continue;
        HistAgg lat;
        lat.add(tel.classLatency(c));
        std::snprintf(buf, sizeof buf,
                      "  %-10s %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                      "   %6" PRIu64 " %6" PRIu64 "\n",
                      tel.className(c).c_str(), tel.classSent(c),
                      tel.classDelivered(c), tel.classFlits(c),
                      lat.percentile(0.50), lat.percentile(0.99));
        os << buf;
    }

    if (d.overflowTraps) {
        os << "\nlimited directory: " << d.overflowTraps
           << " overflow traps, " << d.spilledPtrs
           << " pointers spilled, " << d.spillWalks
           << " software table walks\n";
    }

    os << "\nper-hop-distance delivery latency (count, p50/p99):\n";
    for (uint32_t h = 0; h <= tel.maxHops(); ++h) {
        const stats::Histogram &lat = tel.hopLatency(h);
        if (!lat.count())
            continue;
        HistAgg agg;
        agg.add(lat);
        std::snprintf(buf, sizeof buf,
                      "  %2u hops %12" PRIu64 "   %6" PRIu64 " %6"
                      PRIu64 "\n",
                      h, agg.count, agg.percentile(0.50),
                      agg.percentile(0.99));
        os << buf;
    }

    os << "\nhottest lines (by directory transitions):\n";
    for (const LineEntry &e : d.hottest) {
        std::snprintf(buf, sizeof buf,
                      "  line %-10" PRIu64 " home %-4u transitions %-8"
                      PRIu64 " invs %-8" PRIu64 " maxSharers %u\n",
                      uint64_t(e.line), e.home, e.c.transitions,
                      e.c.invs, e.c.maxSharers);
        os << buf;
    }

    os << "\nwidest sharer sets:\n";
    for (const LineEntry &e : d.widest) {
        std::snprintf(buf, sizeof buf,
                      "  line %-10" PRIu64 " home %-4u maxSharers %-4u"
                      " transitions %" PRIu64 "\n",
                      uint64_t(e.line), e.home, e.c.maxSharers,
                      e.c.transitions);
        os << buf;
    }

    os << "\nbusiest node pairs:\n";
    for (const PairEntry &p : d.pairs) {
        std::snprintf(buf, sizeof buf,
                      "  %3u -> %-3u %10" PRIu64 " messages %10" PRIu64
                      " flits\n",
                      p.src, p.dst, p.count, p.flits);
        os << buf;
    }

    if (d.traced) {
        os << "\nslowest transactions (" << d.txnTotal << " traced, "
           << d.txnDropped << " legs dropped):\n";
        for (const coh::TxnRecord &r : d.slowest) {
            std::snprintf(buf, sizeof buf,
                          "  txn %" PRIx64 " %-5s line %-10" PRIu64
                          " node %-3u home %-3u latency %-8" PRIu64
                          " invs %u acks %u\n",
                          r.id, r.write ? "write" : "read",
                          uint64_t(r.line), r.requester, r.home,
                          r.latency(), r.invs, r.acks);
            os << buf;
        }
    } else {
        os << "\ntransaction tracing off (enable cohTrace for spans)\n";
    }

    os << "\ninvalidation balance: sent=" << d.invSent
       << " acked=" << d.invAcked
       << " inFlight=" << (d.invSent - d.invAcked)
       << (d.invAcked <= d.invSent ? " ok" : " VIOLATION") << "\n";
}

std::string
checkCohInvariants(const coh::TxnTracer &tracer)
{
    if (tracer.dropped())
        return "";      // a truncated log cannot be validated
    uint64_t invs_total = 0;
    uint64_t acks_total = 0;
    for (const coh::TxnRecord &r :
         coh::summarizeTransactions(tracer.events())) {
        invs_total += r.invs;
        acks_total += r.acks;
        if (r.complete && r.filled <= r.issued) {
            return "txn " + std::to_string(r.id) +
                   ": fill at cycle " + std::to_string(r.filled) +
                   " does not follow issue at " +
                   std::to_string(r.issued);
        }
        if (r.complete && r.invs != r.acks) {
            return "txn " + std::to_string(r.id) + ": " +
                   std::to_string(r.invs) + " invalidations vs " +
                   std::to_string(r.acks) + " acknowledgments";
        }
        if (r.acks > r.invs) {
            return "txn " + std::to_string(r.id) +
                   ": more acks than invalidations (" +
                   std::to_string(r.acks) + " > " +
                   std::to_string(r.invs) + ")";
        }
    }
    if (acks_total > invs_total) {
        return "global: " + std::to_string(acks_total) +
               " acks exceed " + std::to_string(invs_total) +
               " invalidations";
    }
    return "";
}

} // namespace april

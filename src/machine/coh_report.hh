/**
 * @file
 * Coherence observability reports: aggregate the always-on directory
 * census, the network telemetry and (when enabled) the transaction
 * trace of an AlewifeMachine into the april-coh text/JSON reports —
 * hottest lines, widest sharer sets, slowest transactions, per-class
 * network latency and the invalidation/ack balance.
 */

#ifndef APRIL_MACHINE_COH_REPORT_HH
#define APRIL_MACHINE_COH_REPORT_HH

#include <ostream>
#include <string>

#include "machine/alewife_machine.hh"

namespace april
{

/** Report shaping knobs (the april-coh --top flag). */
struct CohReportOptions
{
    size_t topLines = 10;       ///< churn top-N (directory census)
    size_t topSharers = 10;     ///< widest-sharer-set top-N
    size_t topTxns = 10;        ///< slowest-transaction top-N
    size_t topPairs = 10;       ///< busiest node-pair top-N
};

/** Human-readable report (april-coh default output). */
void writeCohReportText(std::ostream &os, AlewifeMachine &machine,
                        const CohReportOptions &opts = {});

/**
 * Machine-readable report (schemaVersion 1); validated against
 * tools/april_coh_schema.json in CI. Deterministic for a given run:
 * differential tests compare serializations byte for byte.
 */
void writeCohReportJson(std::ostream &os, AlewifeMachine &machine,
                        const CohReportOptions &opts = {});

/**
 * Check span causality over a transaction log: every complete
 * transaction's fill follows its issue, its invalidations and
 * acknowledgments balance, and no transaction acknowledges more
 * invalidations than were sent. @return "" when the log is clean (or
 * truncated — a capped log cannot be validated), else a one-line
 * description of the first violation.
 */
std::string checkCohInvariants(const coh::TxnTracer &tracer);

} // namespace april

#endif // APRIL_MACHINE_COH_REPORT_HH

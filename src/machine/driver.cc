#include "machine/driver.hh"

#include <cstdlib>
#include <sstream>

#include "common/debug.hh"
#include "common/logging.hh"
#include "runtime/layout.hh"

namespace april
{

uint32_t
hostThreadCount(uint32_t requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("APRIL_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && end != env && *end == '\0' && v >= 1 && v <= 64)
            return uint32_t(v);
    }
    return 1;
}

namespace
{

/** Result extraction shared by both machine kinds (which expose the
 *  same accessor surface without a common base). */
template <typename Machine>
DriverResult
collectResult(Machine &machine, const Program &prog,
              const DriverOptions &options)
{
    machine.run(options.maxCycles);
    if (!machine.halted()) {
        fatal("driver: program did not halt within ", options.maxCycles,
              " cycles (node0 at ", prog.symbolAt(machine.proc(0).pc()),
              ")");
    }

    DriverResult r;
    r.cycles = machine.cycle();
    r.console = machine.console();
    if (r.console.empty())
        fatal("driver: no boot output");
    r.result = r.console.back();
    r.console.pop_back();
    r.steals = machine.runtimeCounter(rt::nb::statSteals);
    r.spawns = machine.runtimeCounter(rt::nb::statSpawns);
    r.blocks = machine.runtimeCounter(rt::nb::statBlocks);
    r.resumes = machine.runtimeCounter(rt::nb::statResumes);
    for (uint32_t n = 0; n < options.nodes; ++n)
        r.instructions += uint64_t(machine.proc(n).statInsts.value());
    {
        std::ostringstream os;
        machine.dumpJson(os);
        r.statsJson = os.str();
    }
    if (options.traceEvents) {
        std::ostringstream os;
        machine.writeTrace(os);
        r.traceJson = os.str();
    }
    if (options.taskTrace) {
        std::ostringstream os;
        machine.writeTaskTrace(os);
        r.taskTraceJson = os.str();
    }
    machine.verifyCycleAccounting();
    if (options.profile) {
        std::ostringstream os;
        profile::writeProfileJson(os, machine.profileSource());
        r.profileJson = os.str();
    }
    if (options.statsInterval && machine.intervalSampler()) {
        std::ostringstream os;
        machine.intervalSampler()->writeCsv(os);
        r.statsSeriesCsv = os.str();
    }
    return r;
}

/** A square 2-D mesh when netRadix is 0, the explicit shape
 *  otherwise; fatal unless it covers options.nodes exactly. */
net::NetworkParams
meshFor(const DriverOptions &options)
{
    net::NetworkParams np;
    np.dim = options.netDim;
    np.radix = options.netRadix;
    if (!np.radix) {
        np.dim = 2;
        while (uint32_t(np.radix * np.radix) < options.nodes)
            ++np.radix;
    }
    uint64_t covered = 1;
    for (int d = 0; d < np.dim; ++d)
        covered *= uint64_t(np.radix);
    if (covered != options.nodes) {
        fatal("driver: ", options.nodes, " nodes do not fill a ",
              np.radix, "^", np.dim, " mesh");
    }
    return np;
}

} // namespace

DriverResult
runMultProgram(const std::string &source, const DriverOptions &options)
{
    if (!options.debugFlags.empty())
        debug::setFlags(options.debugFlags);

    rt::RuntimeOptions ropts;
    ropts.encore = options.compile.softwareChecks;

    Assembler as;
    rt::Runtime runtime(ropts);
    runtime.emit(as);
    mult::Compiler compiler(as, options.compile);
    compiler.compileSource(source);
    Program prog = as.finish();

    if (options.alewife) {
        AlewifeParams ap;
        ap.network = meshFor(options);
        ap.wordsPerNode = options.wordsPerNode;
        ap.proc = options.proc;
        ap.controller = options.controller;
        ap.dirScheme = options.dirScheme;
        ap.dirPointers = options.dirPointers;
        ap.seed = options.seed;
        ap.cycleSkip = options.cycleSkip;
        ap.hostThreads = hostThreadCount(options.hostThreads);
        ap.traceEvents = options.traceEvents;
        ap.cohTrace = options.cohTrace;
        ap.taskTrace = options.taskTrace;
        ap.profile = options.profile;
        ap.profilePeriod = options.profilePeriod;
        ap.statsInterval = options.statsInterval;
        AlewifeMachine machine(ap, &prog);
        DriverResult r = collectResult(machine, prog, options);
        if (options.cohTrace) {
            std::ostringstream os;
            machine.writeCohTrace(os);
            r.cohTraceJson = os.str();
        }
        return r;
    }

    PerfectMachineParams mp;
    mp.numNodes = options.nodes;
    mp.wordsPerNode = options.wordsPerNode;
    mp.proc = options.proc;
    mp.seed = options.seed;
    mp.cycleSkip = options.cycleSkip;
    mp.hostThreads = hostThreadCount(options.hostThreads);
    mp.traceEvents = options.traceEvents;
    mp.taskTrace = options.taskTrace;
    mp.profile = options.profile;
    mp.profilePeriod = options.profilePeriod;
    mp.statsInterval = options.statsInterval;
    PerfectMachine machine(mp, &prog, runtime);
    return collectResult(machine, prog, options);
}

} // namespace april

/**
 * @file
 * One-call driver: compile a Mul-T program with a chosen future
 * strategy, boot an APRIL machine, run to completion, return metrics.
 * Shared by the benchmark harnesses, the examples and the tests.
 */

#ifndef APRIL_MACHINE_DRIVER_HH
#define APRIL_MACHINE_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "machine/alewife_machine.hh"
#include "machine/perfect_machine.hh"
#include "mult/compiler.hh"
#include "runtime/runtime.hh"

namespace april
{

/** Configuration of a driver run. */
struct DriverOptions
{
    mult::CompileOptions compile;
    uint32_t nodes = 1;
    uint32_t wordsPerNode = 1u << 21;
    ProcParams proc;            ///< nodeId is overwritten per node
    uint64_t maxCycles = 2'000'000'000;
    uint64_t seed = 12345;
    bool cycleSkip = true;      ///< fast-forward fully idle cycles
    /// Host worker threads (AlewifeMachine shards; a documented no-op
    /// on the perfect-memory machine). 0 means "use the APRIL_THREADS
    /// environment variable, else 1" — resolved by hostThreadCount().
    uint32_t hostThreads = 0;
    /// Comma-separated debug-flag names ("Ctx,Trap", "All") turned on
    /// for the run; empty leaves the current flags untouched.
    std::string debugFlags;
    /// Record machine events and return them in DriverResult::traceJson.
    bool traceEvents = false;
    /// PC-sample every node and return DriverResult::profileJson.
    bool profile = false;
    /// PC sample period when profile is on.
    uint64_t profilePeriod = 64;
    /// Snapshot all statistics every N cycles into
    /// DriverResult::statsSeriesCsv (0: off).
    uint64_t statsInterval = 0;
    /// Run on the full ALEWIFE machine (caches + directories + mesh)
    /// instead of perfect shared memory. `nodes` must then equal
    /// netRadix^netDim.
    bool alewife = false;
    int netDim = 2;             ///< mesh dimension when alewife is on
    /// Mesh radix when alewife is on; 0 derives a square 2-D mesh
    /// from `nodes` (which must be a perfect square).
    int netRadix = 0;
    /// Cache/directory configuration when alewife is on.
    coh::ControllerParams controller;
    /// Directory organization when alewife is on (FullMap: the
    /// paper's scheme / the oracle; LimitedPtr: i-pointer directory
    /// with software spill).
    coh::DirScheme dirScheme = coh::DirScheme::FullMap;
    /// Hardware pointers per line under LimitedPtr (0 forces the
    /// spill handler on every sharer addition).
    uint32_t dirPointers = 4;
    /// Record coherence transactions and return them in
    /// DriverResult::cohTraceJson (alewife only; the directory census
    /// and network telemetry are always on).
    bool cohTrace = false;
    /// Record task lifecycle spans and return the analyzed report in
    /// DriverResult::taskTraceJson (both machine kinds).
    bool taskTrace = false;

    /** The Encore Multimax baseline configuration (Section 7). */
    static DriverOptions
    encore(mult::CompileOptions::FutureMode fm, uint32_t nodes)
    {
        DriverOptions o;
        o.compile.futures = fm;
        o.compile.softwareChecks = true;
        o.nodes = nodes;
        // Bus-based test&set is a locked read-modify-write.
        o.proc.tasExtraCycles = 9;
        return o;
    }

    /** An APRIL configuration with the given future strategy. */
    static DriverOptions
    april(mult::CompileOptions::FutureMode fm, uint32_t nodes)
    {
        DriverOptions o;
        o.compile.futures = fm;
        o.nodes = nodes;
        return o;
    }
};

/** Results and run-time counters of a completed run. */
struct DriverResult
{
    Word result = 0;            ///< tagged value returned by main
    uint64_t cycles = 0;
    uint64_t instructions = 0;  ///< completed instructions, all nodes
    std::vector<Word> console;  ///< println output
    uint64_t steals = 0;
    uint64_t spawns = 0;
    uint64_t blocks = 0;
    uint64_t resumes = 0;
    /// Hierarchical machine statistics (stats::Group::dumpJson).
    std::string statsJson;
    /// Chrome trace-event JSON; empty unless options.traceEvents.
    std::string traceJson;
    /// Structured coherence-transaction JSON; empty unless
    /// options.alewife && options.cohTrace.
    std::string cohTraceJson;
    /// Task-observability report JSON (DAG, wait attribution,
    /// critical path); empty unless options.taskTrace.
    std::string taskTraceJson;
    /// Profile JSON (schemaVersion 1: per-node buckets, frames,
    /// hotspots); empty unless options.profile.
    std::string profileJson;
    /// "cycle,col,..." stats time series; empty unless
    /// options.statsInterval.
    std::string statsSeriesCsv;
};

/**
 * Compile and run @p source under @p options.
 * Raises FatalError if the program does not halt within maxCycles.
 */
DriverResult runMultProgram(const std::string &source,
                            const DriverOptions &options);

/**
 * Resolve a host-thread request: a non-zero @p requested wins;
 * otherwise the APRIL_THREADS environment variable (clamped to
 * [1, 64]; unparsable values fall through); otherwise 1.
 */
uint32_t hostThreadCount(uint32_t requested);

} // namespace april

#endif // APRIL_MACHINE_DRIVER_HH

#include "machine/perfect_machine.hh"

#include <algorithm>
#include <iostream>

#include "common/bits.hh"
#include "common/debug.hh"
#include "machine/trace_config.hh"
#include "runtime/layout.hh"

namespace april
{

PerfectMachine::PerfectMachine(const PerfectMachineParams &p,
                               const Program *prog)
    : stats::Group("machine"),
      params(p),
      mem({.numNodes = p.numNodes, .wordsPerNode = p.wordsPerNode}),
      statTraceDropped(
          this, "traceDropped",
          "machine events lost to recorder overflow",
          [this] { return trec ? double(trec->dropped()) : 0.0; }),
      statTaskTraceDropped(
          this, "taskTraceDropped",
          "task events dropped at the capacity cap",
          [this] {
              return taskTrec ? double(taskTrec->dropped()) : 0.0;
          })
{
    debug::initFromEnv();
    if (p.traceEvents) {
        trec = std::make_unique<trace::Recorder>(makeRecorderConfig(
            p.numNodes, p.proc.numFrames, p.traceCapacity));
    }
    if (p.taskTrace) {
        taskTrec = std::make_unique<task::Tracer>(p.taskTraceCapacity);
        taskProbes_ = std::make_unique<task::ProbeMap>(*prog);
    }
    for (uint32_t n = 0; n < p.numNodes; ++n) {
        rt::Runtime::initNode(mem, n);
        ports.push_back(std::make_unique<PerfectMemPort>(&mem));
        ios.push_back(std::make_unique<NodeIo>(this, n,
                                               p.seed * 1000003 + n));
        ProcParams pp = p.proc;
        pp.nodeId = n;
        procs.push_back(std::make_unique<Processor>(
            pp, prog, ports.back().get(), ios.back().get(), this));
        procs.back()->setTraceRecorder(trec.get());
        if (p.taskTrace)
            procs.back()->setTaskProbe(taskProbes_.get(),
                                       taskTrec.get());
        if (p.bootRuntime) {
            rt::Runtime::bootProcessor(*procs.back(), *prog, mem, n,
                                       p.numNodes);
        }
        if (p.profile) {
            samplers.push_back(std::make_unique<profile::PcSampler>(
                p.profilePeriod));
            procs.back()->setPcSampler(samplers.back().get());
        }
    }
    // Built last so every subsystem's statistics become columns.
    if (p.statsInterval)
        interval_ = std::make_unique<profile::IntervalSampler>(
            p.statsInterval, *this);
}

void
PerfectMachine::writeTaskTrace(std::ostream &os)
{
    if (!taskTrec)
        return;
    task::AnalyzeParams p;
    p.numNodes = params.numNodes;
    p.totalCycles = _cycle;
    task::Report r = task::analyze(taskTrec->events(), p);
    r.dropped = taskTrec->dropped();
    task::writeReportJson(os, r);
}

profile::ProfileSource
PerfectMachine::profileSource() const
{
    profile::ProfileSource src;
    src.machineCycles = _cycle;
    src.program = procs.empty() ? nullptr : procs[0]->program();
    for (const auto &p : procs)
        src.procs.push_back(p.get());
    for (const auto &s : samplers)
        src.samplers.push_back(s.get());
    src.intervals = interval_.get();
    return src;
}

void
PerfectMachine::verifyCycleAccounting() const
{
    for (const auto &p : procs)
        p->verifyCycleAccounting();
}

Word
PerfectMachine::NodeIo::ioRead(IoReg r)
{
    switch (r) {
      case IoReg::CycleCount: return Word(m->_cycle);
      case IoReg::NodeId: return node;
      case IoReg::NumNodes: return m->params.numNodes;
      case IoReg::Random: return Word(rng.next());
      default: return 0;
    }
}

uint32_t
PerfectMachine::NodeIo::ioWrite(IoReg r, Word value)
{
    switch (r) {
      case IoReg::ConsoleOut:
        m->consoleWords.push_back(value);
        break;
      case IoReg::MachineHalt:
        m->haltFlag = true;
        break;
      case IoReg::IpiDest:
        ipiDest = value;
        break;
      case IoReg::IpiSend:
        if (ipiDest < m->params.numNodes)
            m->procs[ipiDest]->postIpi(value);
        break;
      case IoReg::BlockSrc:
        blockSrc = value;
        break;
      case IoReg::BlockDst:
        blockDst = value;
        break;
      case IoReg::BlockGo: {
        // Section 3.4 block transfer: data and f/e bits move together
        // at one word per cycle (the processor is held meanwhile).
        for (Word i = 0; i < value; ++i)
            m->mem.word(blockDst + i) = m->mem.word(blockSrc + i);
        return value;
      }
      default:
        break;
    }
    return 0;
}

void
PerfectMachine::tick()
{
    ++_cycle;
    for (auto &p : procs)
        p->tick();
}

uint64_t
PerfectMachine::nextEventCycle() const
{
    uint64_t soon = _cycle + 1;
    uint64_t next = kNeverCycle;
    for (const auto &p : procs) {
        next = std::min(next, p->nextEventCycle());
        if (next <= soon)
            return next;
    }
    return next;
}

uint64_t
PerfectMachine::run(uint64_t max_cycles)
{
    uint64_t start = _cycle;
    while (!haltFlag && _cycle - start < max_cycles) {
        if (params.cycleSkip && _cycle >= probeAt_) {
            uint64_t next = nextEventCycle();
            if (next <= _cycle + 1) {
                // No skippable window: back off before probing again
                // so probe-hostile phases (every core busy every
                // cycle) don't pay the scan per tick. Ticking through
                // a window that opens mid-back-off is equivalent to
                // skipping it, so this is a host-speed knob only.
                probeBackoff_ = std::min<uint32_t>(
                    probeBackoff_ ? probeBackoff_ * 2 : 1, 32);
                probeAt_ = _cycle + 1 + probeBackoff_;
            } else {
                probeBackoff_ = 0;
                // Every core is stalled (or halted) until `next`:
                // credit the idle window in one arithmetic step,
                // clamped to the caller's budget.
                uint64_t idle = next == kNeverCycle
                    ? kNeverCycle
                    : next - _cycle - 1;
                uint64_t n =
                    std::min(idle, max_cycles - (_cycle - start));
                // Never skip past a stats-sample boundary: skipCycles
                // is additive, so splitting the window is cycle-exact
                // and the recorded series matches the per-cycle loop.
                if (interval_) {
                    n = std::min(
                        n, interval_->nextSampleCycle(_cycle) - _cycle);
                }
                _cycle += n;
                for (auto &p : procs)
                    p->skipCycles(n);
                if (interval_)
                    interval_->sampleIfDue(_cycle);
                continue;
            }
        }
        tick();
        if (interval_)
            interval_->sampleIfDue(_cycle);
    }
    uint64_t taskDrops = taskTrec ? taskTrec->dropped() : 0;
    if (((trec && trec->dropped()) || taskDrops) &&
        !warnedTraceDrop_) {
        warnedTraceDrop_ = true;
        std::cerr << "april: trace overflow: dropped "
                  << (trec ? trec->dropped() : 0)
                  << " machine events, " << taskDrops
                  << " task events (raise traceCapacity/"
                     "taskTraceCapacity)\n";
    }
    return _cycle - start;
}

bool
PerfectMachine::quiesce(uint64_t max_cycles)
{
    for (uint64_t i = 0; i < max_cycles; ++i) {
        if (nextEventCycle() == kNeverCycle) {
            verifyCycleAccounting();
            return true;
        }
        tick();
    }
    verifyCycleAccounting();
    return nextEventCycle() == kNeverCycle;
}

uint64_t
PerfectMachine::runtimeCounter(int slot) const
{
    uint64_t total = 0;
    for (uint32_t n = 0; n < params.numNodes; ++n) {
        total += mem.read(mem.nodeBase(n) + rt::nodeBlockOff +
                          Addr(slot));
    }
    return total;
}

} // namespace april

/**
 * @file
 * A multiprocessor of APRIL cores over perfect (zero-latency) shared
 * memory.
 *
 * "Measurements for multiple processor executions on APRIL used the
 * processor simulator without the cache and network simulators, in
 * effect simulating a shared-memory machine with no memory latency"
 * (Section 7). This machine is that configuration: N processors
 * stepped round-robin one cycle at a time against one SharedMemory
 * image, with per-node I/O (console, RNG, IPIs) and a global halt.
 *
 * The full cache + directory + network ALEWIFE machine lives in
 * machine/alewife_machine.hh.
 */

#ifndef APRIL_MACHINE_PERFECT_MACHINE_HH
#define APRIL_MACHINE_PERFECT_MACHINE_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "proc/perfect_port.hh"
#include "proc/processor.hh"
#include "task/task_trace.hh"
#include "profile/interval.hh"
#include "profile/pc_sampler.hh"
#include "profile/report.hh"
#include "runtime/runtime.hh"

namespace april
{

/** Configuration of a perfect-memory machine. */
struct PerfectMachineParams
{
    uint32_t numNodes = 1;
    uint32_t wordsPerNode = 1u << 20;
    ProcParams proc;            ///< per-processor parameters
    uint64_t seed = 12345;      ///< work-stealing RNG seed
    /// Boot the Mul-T run-time system on every node (requires the
    /// runtime's symbols in the program). Turn off for raw programs
    /// that manage their own entry points and trap vectors.
    bool bootRuntime = true;
    /// Fast-forward cycles in run() when every processor is stalled or
    /// halted (cycle-exact; see Processor::nextEventCycle()).
    bool cycleSkip = true;
    /// Accepted for interface parity with AlewifeParams::hostThreads
    /// and deliberately a no-op: perfect memory has zero latency, so
    /// the conservative-quantum engine has no lookahead window to
    /// exploit — this machine always runs sequentially.
    uint32_t hostThreads = 1;
    /// Record machine events (context switches, traps, full/empty
    /// retries) for Chrome-trace export.
    bool traceEvents = false;
    /// Recorded-event cap when traceEvents is on.
    uint64_t traceCapacity = 1u << 22;
    /// Record task lifecycle spans (spawn, steal, run, block, resolve)
    /// for the task-observability report and Perfetto flow events.
    bool taskTrace = false;
    /// Recorded task-event cap when taskTrace is on.
    uint64_t taskTraceCapacity = 1u << 20;
    /// Attach a PC sampler to every processor. Cycle accounting is
    /// always on; this adds the sampled-hotspot layer.
    bool profile = false;
    /// PC sample period in cycles when profile is on.
    uint64_t profilePeriod = 64;
    /// Snapshot every statistic each time the machine clock crosses a
    /// multiple of this many cycles (0: no time series). Cycle-skip
    /// windows are clamped at sample boundaries, which is cycle-exact.
    uint64_t statsInterval = 0;
};

/** N APRIL cores on zero-latency shared memory. */
class PerfectMachine : public stats::Group
{
  public:
    PerfectMachine(const PerfectMachineParams &params,
                   const Program *prog);

    /** Historical signature; the runtime argument was never consulted
     *  (bootProcessor is static). Kept so existing callers compile. */
    PerfectMachine(const PerfectMachineParams &params,
                   const Program *prog, const rt::Runtime &runtime)
        : PerfectMachine(params, prog)
    {
        (void)runtime;
    }

    /** Advance every processor by one cycle. */
    void tick();

    /**
     * Run until the machine halts (boot thread finished) or
     * @p max_cycles elapse. @return elapsed machine cycles.
     */
    uint64_t run(uint64_t max_cycles);

    /**
     * Earliest cycle at which any processor can do observable work;
     * kNeverCycle when all cores are halted (perfect memory has no
     * other time-dependent component).
     */
    uint64_t nextEventCycle() const;

    /** Toggle cycle-skipping in run(). */
    void setCycleSkipping(bool on) { params.cycleSkip = on; }

    /**
     * Tick until no processor has a pending event or @p max_cycles
     * elapse; @return true when fully quiescent. run() exits the
     * moment MachineHalt is written, which can leave other cores one
     * instruction short of their own HALT — snapshot/compare flows
     * quiesce first so final state is well defined.
     */
    bool quiesce(uint64_t max_cycles);

    bool halted() const { return haltFlag; }
    uint64_t cycle() const { return _cycle; }

    Processor &proc(uint32_t n) { return *procs.at(n); }
    SharedMemory &memory() { return mem; }
    uint32_t numNodes() const { return params.numNodes; }

    /** Console output (all nodes, in emission order). */
    const std::vector<Word> &console() const { return consoleWords; }

    /** Sum a node-block run-time counter across nodes. */
    uint64_t runtimeCounter(int slot) const;

    /** Event recorder (nullptr unless params.traceEvents). */
    trace::Recorder *traceRecorder() { return trec.get(); }

    /** Task-event lane (nullptr unless params.taskTrace). The single
     *  sequential lane is already (cycle, node)-canonical. */
    task::Tracer *taskTracer() { return taskTrec.get(); }

    /** Serialize the event log as Chrome trace-event JSON, stitching
     *  in task spans when task tracing is on. No-op when machine
     *  tracing is off. */
    void
    writeTrace(std::ostream &os) const
    {
        if (!trec)
            return;
        if (taskTrec) {
            task::Tracer *t = taskTrec.get();
            trec->writeChromeTrace(os,
                                   [t](std::ostream &o, bool &first) {
                                       t->writeChromeEvents(o, first);
                                   });
        } else {
            trec->writeChromeTrace(os);
        }
    }

    /** Serialize the task-observability report as JSON.
     *  No-op when task tracing is off. */
    void writeTaskTrace(std::ostream &os);

    /** Assemble the report writers' view of this run. */
    profile::ProfileSource profileSource() const;

    /** Interval time series (nullptr unless params.statsInterval). */
    const profile::IntervalSampler *intervalSampler() const
    {
        return interval_.get();
    }

    /**
     * Panic unless every processor's bucket sums equal its cycle
     * count (per node and per frame). quiesce() calls this; tests and
     * tools may call it at any point.
     */
    void verifyCycleAccounting() const;

  private:
    /** Per-node memory-mapped I/O. */
    class NodeIo : public IoPort
    {
      public:
        NodeIo(PerfectMachine *machine, uint32_t node, uint64_t seed)
            : m(machine), node(node), rng(seed)
        {}

        Word ioRead(IoReg r) override;
        uint32_t ioWrite(IoReg r, Word value) override;

      private:
        PerfectMachine *m;
        uint32_t node;
        Rng rng;
        Word ipiDest = 0;
        Word blockSrc = 0;
        Word blockDst = 0;
    };

    PerfectMachineParams params;
    SharedMemory mem;
    std::unique_ptr<trace::Recorder> trec;
    std::unique_ptr<task::Tracer> taskTrec;
    std::unique_ptr<task::ProbeMap> taskProbes_;
    /// Recorder overflow surfaced in stats JSON (single lane here).
    stats::Formula statTraceDropped;
    stats::Formula statTaskTraceDropped;
    bool warnedTraceDrop_ = false;
    std::vector<std::unique_ptr<PerfectMemPort>> ports;
    std::vector<std::unique_ptr<NodeIo>> ios;
    std::vector<std::unique_ptr<Processor>> procs;
    std::vector<std::unique_ptr<profile::PcSampler>> samplers;
    std::unique_ptr<profile::IntervalSampler> interval_;
    std::vector<Word> consoleWords;
    bool haltFlag = false;
    uint64_t _cycle = 0;
    /// Skip-probe hysteresis (host speed only; see run()): no probe
    /// before probeAt_, back-off doubling to a cap, reset on a skip.
    uint64_t probeAt_ = 0;
    uint32_t probeBackoff_ = 0;
};

} // namespace april

#endif // APRIL_MACHINE_PERFECT_MACHINE_HH

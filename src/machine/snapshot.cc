#include "machine/snapshot.hh"

#include <map>
#include <sstream>

#include "machine/alewife_machine.hh"
#include "machine/perfect_machine.hh"

namespace april
{

namespace
{

ProcSnapshot
snapshotProc(const Processor &p)
{
    ProcSnapshot s;
    s.halted = p.halted();
    s.fp = p.fp();
    s.pc = p.pc();
    s.psr = p.psrWord();
    for (unsigned g = 0; g < reg::numGlobal; ++g)
        s.globals[g] = p.readGlobal(g);
    for (uint32_t f = 0; f < p.numFrames(); ++f) {
        const Processor::Frame &fr = p.frame(f);
        FrameSnapshot fs;
        fs.regs = fr.regs;
        fs.trapRegs = fr.trapRegs;
        fs.trapPC = fr.trapPC;
        fs.trapNPC = fr.trapNPC;
        fs.trapType = uint8_t(fr.trapType);
        fs.trapArg = fr.trapArg;
        fs.trapVA = fr.trapVA;
        fs.savedPsr = fr.savedPsr;
        s.frames.push_back(fs);
    }
    for (size_t k = 0; k < size_t(TrapKind::NumKinds); ++k)
        s.traps[k] = uint64_t(p.statTraps[k].value());
    return s;
}

std::vector<MemWord>
copyMemory(const SharedMemory &mem)
{
    std::vector<MemWord> image(mem.sizeWords());
    for (Addr a = 0; a < mem.sizeWords(); ++a)
        image[a] = mem.word(a);
    return image;
}

} // namespace

MachineSnapshot
snapshotMachine(AlewifeMachine &m)
{
    MachineSnapshot s;
    s.halted = m.halted();
    s.cycle = m.cycle();
    s.console = m.console();
    s.memory = copyMemory(m.memory());

    // Fold Modified lines over the backing image; a quiesced machine
    // has no traffic in flight, so exactly one node may own any line
    // exclusively, and Shared copies must agree with the result.
    std::map<Addr, uint32_t> modifiedBy;
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        const cache::Cache &cache = m.controller(n).cacheRef();
        for (const cache::CacheLine &line : cache.allLines()) {
            if (line.state != cache::LineState::Modified)
                continue;
            auto [it, fresh] = modifiedBy.emplace(line.lineAddr, n);
            if (!fresh) {
                std::ostringstream os;
                os << "line " << line.lineAddr
                   << " Modified on both node " << it->second
                   << " and node " << n;
                s.coherenceErrors.push_back(os.str());
                continue;
            }
            for (uint32_t k = 0; k < line.words.size(); ++k) {
                Addr a = line.lineAddr * cache.lineWords() + k;
                if (a < s.memory.size())
                    s.memory[a] = line.words[k];
            }
        }
    }
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        const cache::Cache &cache = m.controller(n).cacheRef();
        for (const cache::CacheLine &line : cache.allLines()) {
            if (line.state != cache::LineState::Shared)
                continue;
            if (modifiedBy.count(line.lineAddr)) {
                std::ostringstream os;
                os << "line " << line.lineAddr << " Shared on node "
                   << n << " while Modified on node "
                   << modifiedBy[line.lineAddr];
                s.coherenceErrors.push_back(os.str());
                continue;
            }
            for (uint32_t k = 0; k < line.words.size(); ++k) {
                Addr a = line.lineAddr * cache.lineWords() + k;
                if (a >= s.memory.size())
                    continue;
                if (line.words[k].data != s.memory[a].data ||
                    line.words[k].full != s.memory[a].full) {
                    std::ostringstream os;
                    os << "Shared copy of word " << a << " on node "
                       << n << " (data=" << line.words[k].data
                       << " full=" << line.words[k].full
                       << ") disagrees with memory (data="
                       << s.memory[a].data << " full="
                       << s.memory[a].full << ")";
                    s.coherenceErrors.push_back(os.str());
                }
            }
        }
    }

    for (uint32_t n = 0; n < m.numNodes(); ++n)
        s.procs.push_back(snapshotProc(m.proc(n)));
    return s;
}

MachineSnapshot
snapshotMachine(PerfectMachine &m)
{
    MachineSnapshot s;
    s.halted = m.halted();
    s.cycle = m.cycle();
    s.console = m.console();
    s.memory = copyMemory(m.memory());
    for (uint32_t n = 0; n < m.numNodes(); ++n)
        s.procs.push_back(snapshotProc(m.proc(n)));
    return s;
}

namespace
{

/** Accumulates the first few divergences into a report. */
class Diff
{
  public:
    template <typename A, typename B>
    void
    check(const std::string &what, const A &a, const B &b)
    {
        if (a == b)
            return;
        if (++count > kMaxReported)
            return;
        os << what << ": " << a << " vs " << b << "\n";
    }

    std::string
    report() const
    {
        if (count == 0)
            return "";
        std::ostringstream out;
        out << count << " divergence(s):\n" << os.str();
        if (count > kMaxReported)
            out << "... (" << (count - kMaxReported) << " more)\n";
        return out.str();
    }

  private:
    static constexpr uint64_t kMaxReported = 12;
    std::ostringstream os;
    uint64_t count = 0;
};

std::string
procTag(size_t n, const std::string &field)
{
    return "proc" + std::to_string(n) + "." + field;
}

void
diffMemory(Diff &d, const MachineSnapshot &a, const MachineSnapshot &b)
{
    d.check("memory.sizeWords", a.memory.size(), b.memory.size());
    size_t n = std::min(a.memory.size(), b.memory.size());
    for (Addr w = 0; w < n; ++w) {
        if (a.memory[w].data != b.memory[w].data) {
            d.check("mem[" + std::to_string(w) + "].data",
                    a.memory[w].data, b.memory[w].data);
        }
        if (a.memory[w].full != b.memory[w].full) {
            d.check("mem[" + std::to_string(w) + "].full",
                    a.memory[w].full, b.memory[w].full);
        }
    }
}

void
diffConsole(Diff &d, const MachineSnapshot &a, const MachineSnapshot &b)
{
    d.check("console.size", a.console.size(), b.console.size());
    size_t n = std::min(a.console.size(), b.console.size());
    for (size_t i = 0; i < n; ++i) {
        d.check("console[" + std::to_string(i) + "]", a.console[i],
                b.console[i]);
    }
}

} // namespace

std::string
compareExact(const MachineSnapshot &a, const MachineSnapshot &b)
{
    Diff d;
    d.check("halted", a.halted, b.halted);
    d.check("cycle", a.cycle, b.cycle);
    diffConsole(d, a, b);
    diffMemory(d, a, b);
    d.check("coherenceErrors", a.coherenceErrors.size(),
            b.coherenceErrors.size());
    d.check("numProcs", a.procs.size(), b.procs.size());
    size_t np = std::min(a.procs.size(), b.procs.size());
    for (size_t n = 0; n < np; ++n) {
        const ProcSnapshot &pa = a.procs[n];
        const ProcSnapshot &pb = b.procs[n];
        d.check(procTag(n, "halted"), pa.halted, pb.halted);
        d.check(procTag(n, "fp"), pa.fp, pb.fp);
        d.check(procTag(n, "pc"), pa.pc, pb.pc);
        d.check(procTag(n, "psr"), pa.psr, pb.psr);
        for (unsigned g = 0; g < reg::numGlobal; ++g) {
            d.check(procTag(n, "g" + std::to_string(g)),
                    pa.globals[g], pb.globals[g]);
        }
        for (size_t k = 0; k < size_t(TrapKind::NumKinds); ++k) {
            d.check(procTag(n, std::string("traps") +
                                   trapKindName(TrapKind(k))),
                    pa.traps[k], pb.traps[k]);
        }
        d.check(procTag(n, "numFrames"), pa.frames.size(),
                pb.frames.size());
        size_t nf = std::min(pa.frames.size(), pb.frames.size());
        for (size_t f = 0; f < nf; ++f) {
            const FrameSnapshot &fa = pa.frames[f];
            const FrameSnapshot &fb = pb.frames[f];
            std::string tag = procTag(n, "f" + std::to_string(f));
            for (unsigned r = 0; r < reg::numUser; ++r) {
                d.check(tag + ".r" + std::to_string(r), fa.regs[r],
                        fb.regs[r]);
            }
            for (unsigned r = 0; r < reg::numTrap; ++r) {
                d.check(tag + ".t" + std::to_string(r),
                        fa.trapRegs[r], fb.trapRegs[r]);
            }
            d.check(tag + ".trapPC", fa.trapPC, fb.trapPC);
            d.check(tag + ".trapNPC", fa.trapNPC, fb.trapNPC);
            d.check(tag + ".trapType", int(fa.trapType),
                    int(fb.trapType));
            d.check(tag + ".trapArg", fa.trapArg, fb.trapArg);
            d.check(tag + ".trapVA", fa.trapVA, fb.trapVA);
            d.check(tag + ".savedPsr", fa.savedPsr, fb.savedPsr);
        }
    }
    return d.report();
}

std::string
compareArchitectural(const MachineSnapshot &alewife,
                     const MachineSnapshot &oracle)
{
    // Trap kinds whose counts are architecturally determined (they
    // depend only on register/memory values, which the single-writer
    // program discipline makes machine-independent). RemoteMiss and
    // Ipi are timing artifacts of the cached machine.
    static const TrapKind kDeterministicTraps[] = {
        TrapKind::FutureCompute, TrapKind::FutureMemory,
        TrapKind::FeEmpty, TrapKind::FeFull,
        TrapKind::SoftTrap0, TrapKind::SoftTrap1, TrapKind::SoftTrap2,
        TrapKind::SoftTrap3, TrapKind::SoftTrap4, TrapKind::SoftTrap5,
        TrapKind::SoftTrap6, TrapKind::SoftTrap7,
    };

    Diff d;
    d.check("halted", alewife.halted, oracle.halted);
    diffConsole(d, alewife, oracle);
    diffMemory(d, alewife, oracle);
    for (const std::string &e : alewife.coherenceErrors)
        d.check("coherence", e, std::string("(none)"));
    d.check("numProcs", alewife.procs.size(), oracle.procs.size());
    size_t np = std::min(alewife.procs.size(), oracle.procs.size());
    for (size_t n = 0; n < np; ++n) {
        const ProcSnapshot &pa = alewife.procs[n];
        const ProcSnapshot &po = oracle.procs[n];
        d.check(procTag(n, "halted"), pa.halted, po.halted);
        d.check(procTag(n, "fp"), pa.fp, po.fp);
        d.check(procTag(n, "pc"), pa.pc, po.pc);
        d.check(procTag(n, "psr"), pa.psr, po.psr);
        for (unsigned g = 0; g < reg::numGlobal; ++g) {
            d.check(procTag(n, "g" + std::to_string(g)),
                    pa.globals[g], po.globals[g]);
        }
        for (TrapKind k : kDeterministicTraps) {
            d.check(procTag(n, std::string("traps") + trapKindName(k)),
                    pa.traps[size_t(k)], po.traps[size_t(k)]);
        }
        // Only the frame the thread actually ran in is comparable;
        // context-switch handlers scribble on the other frames' trap
        // windows and PC chains on the cached machine.
        if (!pa.frames.empty() && !po.frames.empty() && pa.fp == po.fp) {
            const FrameSnapshot &fa = pa.frames[pa.fp];
            const FrameSnapshot &fo = po.frames[po.fp];
            std::string tag = procTag(n, "activeFrame");
            for (unsigned r = 0; r < reg::numUser; ++r) {
                d.check(tag + ".r" + std::to_string(r), fa.regs[r],
                        fo.regs[r]);
            }
        }
    }
    return d.report();
}

} // namespace april

/**
 * @file
 * Deterministic whole-machine state snapshots and comparison.
 *
 * The differential fuzzer runs one program on three machine
 * configurations (ALEWIFE with cycle-skipping on, off, and the
 * perfect-memory oracle) and needs a single value type that captures
 * everything architecturally observable about a finished run:
 * register frames, trap state, trap counters, the console, and a
 * *coherent* view of memory (dirty cache lines folded over the
 * backing image, since a quiesced ALEWIFE machine still legitimately
 * holds Modified lines that were never evicted).
 *
 * Two comparison strengths are provided:
 *
 *  - compareExact: every captured bit must match. Valid only between
 *    two runs of the *same* machine model (cycle-skip on vs. off,
 *    which are documented to be cycle-exact twins).
 *  - compareArchitectural: ISA-level equivalence against the perfect
 *    oracle. Timing-dependent state is excluded: cycle counts,
 *    RemoteMiss/Ipi trap counters, context-switch side effects on the
 *    trap windows and non-active frames.
 *
 * Callers must quiesce() the machine first; snapshotting a machine
 * with in-flight coherence traffic would capture a transient.
 */

#ifndef APRIL_MACHINE_SNAPSHOT_HH
#define APRIL_MACHINE_SNAPSHOT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/types.hh"

namespace april
{

class AlewifeMachine;
class PerfectMachine;

/** Captured state of one hardware task frame. */
struct FrameSnapshot
{
    std::array<Word, reg::numUser> regs{};
    std::array<Word, reg::numTrap> trapRegs{};
    uint32_t trapPC = 0;
    uint32_t trapNPC = 0;
    uint8_t trapType = 0;
    Word trapArg = 0;
    Word trapVA = 0;
    Word savedPsr = 0;
};

/** Captured state of one processor. */
struct ProcSnapshot
{
    bool halted = false;
    uint32_t fp = 0;
    uint32_t pc = 0;
    Word psr = 0;
    std::array<Word, reg::numGlobal> globals{};
    std::vector<FrameSnapshot> frames;
    /// Completed-trap counters, indexed by TrapKind.
    std::array<uint64_t, size_t(TrapKind::NumKinds)> traps{};
};

/** Captured state of a whole machine after quiesce(). */
struct MachineSnapshot
{
    bool halted = false;
    uint64_t cycle = 0;
    std::vector<Word> console;
    std::vector<ProcSnapshot> procs;
    /// Coherent memory image: backing store with every Modified cache
    /// line folded in (data and f/e bits).
    std::vector<MemWord> memory;
    /// Protocol violations found while folding (two Modified copies of
    /// one line, or a Shared copy disagreeing with the coherent view).
    /// Always empty on a correct machine.
    std::vector<std::string> coherenceErrors;
};

/** Capture an ALEWIFE machine (folds dirty cache lines). */
MachineSnapshot snapshotMachine(AlewifeMachine &m);
/** Capture a perfect-memory machine. */
MachineSnapshot snapshotMachine(PerfectMachine &m);

/**
 * Bit-for-bit comparison of two runs of the same machine model.
 * @return "" when identical, else a human-readable first divergence.
 */
std::string compareExact(const MachineSnapshot &a,
                         const MachineSnapshot &b);

/**
 * ISA-level comparison of an ALEWIFE run against the perfect-memory
 * oracle: halt status, console, memory image, and per processor the
 * final pc/fp/PSR, active-frame (frame 0) user registers, globals and
 * the deterministic trap counters (FutureCompute, FutureMemory,
 * FeEmpty, FeFull, SoftTrap0-7). RemoteMiss/Ipi counts, trap windows,
 * parked frames and cycle counts are timing artifacts and ignored.
 * @return "" when equivalent, else a human-readable first divergence.
 */
std::string compareArchitectural(const MachineSnapshot &alewife,
                                 const MachineSnapshot &oracle);

} // namespace april

#endif // APRIL_MACHINE_SNAPSHOT_HH

/**
 * @file
 * Builds the trace::RecorderConfig name tables from the ISA and
 * coherence enums. common/trace.hh deliberately knows nothing about
 * either layer, so the machines inject the names here.
 */

#ifndef APRIL_MACHINE_TRACE_CONFIG_HH
#define APRIL_MACHINE_TRACE_CONFIG_HH

#include "coherence/protocol.hh"
#include "common/trace.hh"
#include "isa/instruction.hh"

namespace april
{

/** RecorderConfig for a machine of @p num_nodes x @p frames cores. */
inline trace::RecorderConfig
makeRecorderConfig(uint32_t num_nodes, uint32_t frames, uint64_t capacity)
{
    trace::RecorderConfig rc;
    rc.numNodes = num_nodes;
    rc.framesPerNode = frames;
    rc.capacity = capacity;
    for (uint8_t k = 0; k < uint8_t(TrapKind::NumKinds); ++k)
        rc.trapNames.push_back(trapKindName(TrapKind(k)));
    for (auto s : {coh::DirState::Uncached, coh::DirState::Shared,
                   coh::DirState::Exclusive})
        rc.cohStateNames.push_back(coh::dirStateName(s));
    return rc;
}

/** Message-class name table for net::Telemetry (one class per
 *  coherence MsgType; same injection idiom as the recorder config). */
inline std::vector<std::string>
messageClassNames()
{
    std::vector<std::string> names;
    names.reserve(coh::kNumMsgTypes);
    for (size_t t = 0; t < coh::kNumMsgTypes; ++t)
        names.emplace_back(coh::msgTypeName(coh::MsgType(t)));
    return names;
}

} // namespace april

#endif // APRIL_MACHINE_TRACE_CONFIG_HH

#include "mc/conform.hh"

#include <sstream>

#include "common/logging.hh"
#include "mc/spec.hh"

namespace april::mc
{

void
Conformance::onDirTransition(uint32_t home, Addr line,
                             coh::DirState old_state,
                             coh::MsgType cause,
                             coh::DirState new_state,
                             uint32_t requester)
{
    checked_.fetch_add(1, std::memory_order_relaxed);
    if (legalDirTransition(old_state, cause, new_state))
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (detail_.empty()) {
        std::ostringstream os;
        os << "directory transition not allowed by the protocol "
              "spec: home n"
           << home << " line=" << line << " "
           << coh::dirStateName(old_state) << " -> "
           << coh::dirStateName(new_state)
           << " caused by " << coh::msgTypeName(cause)
           << " (requester n" << requester << ")";
        detail_ = os.str();
    }
    violated_.store(true, std::memory_order_release);
}

std::string
Conformance::firstViolation() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return detail_;
}

void
Conformance::check() const
{
    if (!violated())
        return;
    panic("mc conformance: ", firstViolation());
}

} // namespace april::mc

/**
 * @file
 * Live-controller conformance bridge (DESIGN.md §7.9): every
 * directory transition the real coh::Controller records — the same
 * stream the always-on census counts — is checked against the model
 * checker's rule tables via the derived legal-transition relation
 * (mc::legalDirTransitions). Runs by default in every AlewifeMachine
 * (AlewifeParams::conformance), so every unit test, fuzz program and
 * workload run doubles as a spec-conformance run: if the
 * implementation ever performs a (old state, cause message) -> new
 * state step no spec rule allows, the machine panics with the
 * offending transition.
 *
 * The listener only records under the parallel engine's shard
 * threads (atomics + a mutex on the first failure); the machine
 * raises the panic from the coordinating thread at its next sync
 * point, keeping worker threads noexcept.
 */

#ifndef APRIL_MC_CONFORM_HH
#define APRIL_MC_CONFORM_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "coherence/controller.hh"

namespace april::mc
{

/** Checks every recorded directory transition against the spec. */
class Conformance : public coh::TransitionListener
{
  public:
    void onDirTransition(uint32_t home, Addr line,
                         coh::DirState old_state, coh::MsgType cause,
                         coh::DirState new_state,
                         uint32_t requester) override;

    /** Transitions checked so far. */
    uint64_t checked() const
    {
        return checked_.load(std::memory_order_relaxed);
    }

    /** @return true once any illegal transition was recorded. */
    bool violated() const
    {
        return violated_.load(std::memory_order_acquire);
    }

    /** First recorded violation ("" when clean). */
    std::string firstViolation() const;

    /** Panic with the first violation, no-op when clean. Called by
     *  the machine from the coordinating thread at sync points. */
    void check() const;

  private:
    std::atomic<uint64_t> checked_{0};
    std::atomic<bool> violated_{false};
    mutable std::mutex mu_;
    std::string detail_;
};

} // namespace april::mc

#endif // APRIL_MC_CONFORM_HH

#include "mc/explore.hh"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace april::mc
{

namespace
{

using Perm = std::array<uint8_t, kMaxNodes>;

Perm
identityPerm()
{
    Perm p{};
    for (uint8_t i = 0; i < kMaxNodes; ++i)
        p[i] = i;
    return p;
}

/** All permutations of the non-home nodes 1..N-1 (node 0 pinned). */
std::vector<Perm>
nodePerms(uint32_t nodes, bool symmetry)
{
    std::vector<Perm> out;
    Perm p = identityPerm();
    if (!symmetry || nodes <= 2) {
        out.push_back(p);
        return out;
    }
    do {
        out.push_back(p);
    } while (std::next_permutation(p.begin() + 1, p.begin() + nodes));
    return out;
}

SpecMsg
permMsg(const SpecMsg &m, const Perm &pi)
{
    SpecMsg r = m;
    r.from = pi[m.from];
    r.requester = pi[m.requester];
    return r;
}

State
applyPerm(const State &s, const Perm &pi, uint32_t nodes)
{
    State r;
    r.memFresh = s.memFresh;
    for (uint32_t i = 0; i < nodes; ++i)
        r.nodes[pi[i]] = s.nodes[i];
    for (uint32_t a = 0; a < nodes; ++a) {
        for (uint32_t b = 0; b < nodes; ++b) {
            Channel &c = r.chan[pi[a] * nodes + pi[b]];
            c = s.chan[a * nodes + b];
            for (uint8_t i = 0; i < c.n; ++i)
                c.q[i] = permMsg(c.q[i], pi);
        }
    }
    r.dir = s.dir;
    r.dir.owner = pi[s.dir.owner];
    r.dir.sharers = 0;
    r.dir.staleOwed = 0;
    for (uint32_t i = 0; i < nodes; ++i) {
        if (s.dir.sharers & (1u << i))
            r.dir.sharers |= uint16_t(1u << pi[i]);
        if (s.dir.staleOwed & (1u << i))
            r.dir.staleOwed |= uint8_t(1u << pi[i]);
    }
    r.dir.pending = permMsg(s.dir.pending, pi);
    for (uint8_t i = 0; i < s.dir.numWaiting; ++i)
        r.dir.waiting[i] = permMsg(s.dir.waiting[i], pi);
    return r;
}

/** Zero the protocol-dead fields so equivalent states collapse. */
void
normalize(State &s)
{
    if (s.dir.state != DirState::Exclusive)
        s.dir.owner = 0;
    if (!s.dir.busy || s.dir.wait == Wait::None)
        s.dir.pending = SpecMsg{};
    for (uint8_t i = s.dir.numWaiting; i < kMaxNodes; ++i)
        s.dir.waiting[i] = SpecMsg{};
    for (uint32_t i = 0; i < kMaxNodes; ++i) {
        if (s.nodes[i].cache == CacheState::Invalid)
            s.nodes[i].fresh = false;
        if (!s.nodes[i].mshrValid)
            s.nodes[i].mshrWrite = false;
    }
}

void
encodeMsg(std::string &out, const SpecMsg &m)
{
    out.push_back(char(uint8_t(size_t(m.type)) | uint8_t(m.from << 4) |
                       uint8_t(m.isWrite << 6) |
                       uint8_t(m.fenceAck << 7)));
    out.push_back(char(uint8_t(m.requester) | uint8_t(m.fresh << 2) |
                       uint8_t(m.solicited << 3)));
}

SpecMsg
decodeMsg(const std::string &in, size_t &at)
{
    uint8_t b0 = uint8_t(in[at++]);
    uint8_t b1 = uint8_t(in[at++]);
    SpecMsg m;
    m.type = MsgType(b0 & 0xf);
    m.from = (b0 >> 4) & 0x3;
    m.isWrite = (b0 >> 6) & 1;
    m.fenceAck = (b0 >> 7) & 1;
    m.requester = b1 & 0x3;
    m.fresh = (b1 >> 2) & 1;
    m.solicited = (b1 >> 3) & 1;
    return m;
}

std::string
encode(const State &s, uint32_t nodes)
{
    std::string out;
    out.reserve(24 + nodes * nodes * (1 + 2 * kChanDepth));
    for (uint32_t i = 0; i < nodes; ++i) {
        const NodeState &n = s.nodes[i];
        out.push_back(char(uint8_t(size_t(n.cache)) |
                           uint8_t(n.fresh << 2) |
                           uint8_t(n.mshrValid << 3) |
                           uint8_t(n.mshrWrite << 4) |
                           uint8_t(n.fence << 5)));
    }
    out.push_back(char(s.memFresh));
    const DirEntry &d = s.dir;
    out.push_back(char(uint8_t(size_t(d.state)) | uint8_t(d.busy << 2) |
                       uint8_t(size_t(d.wait) << 3) |
                       uint8_t(d.owner << 5)));
    out.push_back(char(uint8_t(d.pendingAcks) |
                       uint8_t(d.spilled << 4)));
    out.push_back(char(uint8_t(d.sharers)));
    out.push_back(char(d.staleOwed));
    out.push_back(char(d.numWaiting));
    encodeMsg(out, d.pending);
    for (uint8_t i = 0; i < d.numWaiting; ++i)
        encodeMsg(out, d.waiting[i]);
    for (uint32_t c = 0; c < nodes * nodes; ++c) {
        const Channel &ch = s.chan[c];
        out.push_back(char(ch.n));
        for (uint8_t i = 0; i < ch.n; ++i)
            encodeMsg(out, ch.q[i]);
    }
    return out;
}

State
decode(const std::string &in, uint32_t nodes)
{
    State s;
    size_t at = 0;
    for (uint32_t i = 0; i < nodes; ++i) {
        uint8_t b = uint8_t(in[at++]);
        NodeState &n = s.nodes[i];
        n.cache = CacheState(b & 0x3);
        n.fresh = (b >> 2) & 1;
        n.mshrValid = (b >> 3) & 1;
        n.mshrWrite = (b >> 4) & 1;
        n.fence = (b >> 5) & 0x7;
    }
    s.memFresh = bool(in[at++]);
    uint8_t d0 = uint8_t(in[at++]);
    uint8_t d1 = uint8_t(in[at++]);
    s.dir.state = DirState(d0 & 0x3);
    s.dir.busy = (d0 >> 2) & 1;
    s.dir.wait = Wait((d0 >> 3) & 0x3);
    s.dir.owner = (d0 >> 5) & 0x3;
    s.dir.pendingAcks = d1 & 0xf;
    s.dir.spilled = (d1 >> 4) & 0xf;
    s.dir.sharers = uint8_t(in[at++]);
    s.dir.staleOwed = uint8_t(in[at++]);
    s.dir.numWaiting = uint8_t(in[at++]);
    s.dir.pending = decodeMsg(in, at);
    for (uint8_t i = 0; i < s.dir.numWaiting; ++i)
        s.dir.waiting[i] = decodeMsg(in, at);
    for (uint32_t c = 0; c < nodes * nodes; ++c) {
        Channel &ch = s.chan[c];
        ch.n = uint8_t(in[at++]);
        for (uint8_t i = 0; i < ch.n; ++i)
            ch.q[i] = decodeMsg(in, at);
    }
    return s;
}

/** Canonical (symmetry-reduced) encoding: lexicographically smallest
 *  over all non-home node permutations. @p permOut receives the
 *  winning permutation (for trace relabeling). */
std::string
canonicalKey(State s, const std::vector<Perm> &perms, uint32_t nodes,
             Perm *permOut = nullptr)
{
    normalize(s);
    std::string best;
    for (size_t i = 0; i < perms.size(); ++i) {
        State ps = applyPerm(s, perms[i], nodes);
        normalize(ps);
        std::string k = encode(ps, nodes);
        if (best.empty() || k < best) {
            best = std::move(k);
            if (permOut)
                *permOut = perms[i];
        }
    }
    return best;
}

// ---------------------------------------------------------------------
// Transition function
// ---------------------------------------------------------------------

struct ApplyResult
{
    bool enabled = false;
    bool blocked = false;       ///< backpressured by a full channel
    State next;
    Outcome out;                ///< delivery actions: the spec outcome
    const char *violation = nullptr;
    std::string detail;
};

bool
pushMsg(State &s, uint32_t nodes, uint8_t src, uint8_t dst,
        const SpecMsg &m)
{
    Channel &c = s.chan[src * nodes + dst];
    if (c.n >= kChanDepth)
        return false;
    c.q[c.n++] = m;
    return true;
}

SpecMsg
popMsg(State &s, uint32_t nodes, uint8_t src, uint8_t dst)
{
    Channel &c = s.chan[src * nodes + dst];
    SpecMsg m = c.q[0];
    for (uint8_t i = 1; i < c.n; ++i)
        c.q[i - 1] = c.q[i];
    c.q[--c.n] = SpecMsg{};
    return m;
}

ApplyResult
apply(const State &s, Action a, const ExploreParams &p)
{
    constexpr uint8_t home = 0;
    uint32_t nodes = p.nodes;
    ApplyResult r;
    r.next = s;
    NodeState &self = r.next.nodes[a.a];

    switch (a.kind) {
      case Action::IssueRead:
      case Action::IssueWrite: {
        bool write = a.kind == Action::IssueWrite;
        const NodeState &n = s.nodes[a.a];
        if (n.mshrValid ||
            (write ? n.cache == CacheState::Modified
                   : n.cache != CacheState::Invalid)) {
            return r;
        }
        SpecMsg req;
        req.type = write ? MsgType::WriteReq : MsgType::ReadReq;
        req.from = a.a;
        req.requester = a.a;
        if (!pushMsg(r.next, nodes, a.a, home, req)) {
            r.blocked = true;
            return r;
        }
        self.mshrValid = true;
        self.mshrWrite = write;
        r.enabled = true;
        return r;
      }

      case Action::Store: {
        if (s.nodes[a.a].cache != CacheState::Modified)
            return r;
        // This store is now the globally last write: every other
        // copy, the memory, and any in-flight data payload is stale.
        for (uint32_t i = 0; i < nodes; ++i)
            r.next.nodes[i].fresh = i == a.a;
        r.next.memFresh = false;
        for (uint32_t c = 0; c < nodes * nodes; ++c) {
            for (uint8_t i = 0; i < r.next.chan[c].n; ++i) {
                SpecMsg &m = r.next.chan[c].q[i];
                if (coh::carriesData(m.type))
                    m.fresh = false;
            }
        }
        r.next.dir.pending.fresh = false;
        for (uint8_t i = 0; i < r.next.dir.numWaiting; ++i)
            r.next.dir.waiting[i].fresh = false;
        r.enabled = true;
        return r;
      }

      case Action::Evict: {
        const NodeState &n = s.nodes[a.a];
        if (n.cache == CacheState::Invalid)
            return r;
        if (n.cache == CacheState::Modified) {
            SpecMsg wb;
            wb.type = MsgType::WbData;
            wb.from = a.a;
            wb.requester = a.a;
            wb.fresh = n.fresh;
            if (!pushMsg(r.next, nodes, a.a, home, wb)) {
                r.blocked = true;
                return r;
            }
        }
        self.cache = CacheState::Invalid;
        self.fresh = false;
        r.enabled = true;
        return r;
      }

      case Action::Flush: {
        const NodeState &n = s.nodes[a.a];
        if (n.cache != CacheState::Modified || n.fence >= p.maxFence)
            return r;
        SpecMsg wb;
        wb.type = MsgType::WbData;
        wb.from = a.a;
        wb.requester = a.a;
        wb.fenceAck = true;
        wb.fresh = n.fresh;
        if (!pushMsg(r.next, nodes, a.a, home, wb)) {
            r.blocked = true;
            return r;
        }
        self.cache = CacheState::Invalid;
        self.fresh = false;
        self.fence++;
        r.enabled = true;
        return r;
      }

      case Action::Deliver: {
        const Channel &c = s.chan[a.a * nodes + a.b];
        if (c.n == 0)
            return r;
        SpecMsg m = popMsg(r.next, nodes, a.a, a.b);
        if (a.b == home && isHomeMsg(m.type)) {
            r.out = applyDir(p.spec, r.next.dir, m, r.next.memFresh,
                             home);
            r.next.dir = r.out.dir;
            r.next.memFresh = r.out.memFresh;
            if (r.out.queueOverflow) {
                r.violation = "QueueOverflow";
                r.detail = "waiting queue exceeded one request per "
                           "node at the home directory";
                r.enabled = true;
                return r;
            }
            for (uint8_t i = 0; i < r.out.numEmits; ++i) {
                if (!pushMsg(r.next, nodes, home, r.out.emits[i].to,
                             r.out.emits[i].msg)) {
                    r.blocked = true;
                    return r;
                }
            }
        } else {
            NodeState &n = r.next.nodes[a.b];
            r.out = applyCache(p.spec, n.cache, n.fresh, m, a.b);
            n.cache = r.out.cache;
            n.fresh = r.out.cacheFresh;
            if (m.type == MsgType::ReadReply ||
                m.type == MsgType::WriteReply) {
                if (!n.mshrValid) {
                    r.violation = "UnsolicitedFill";
                    r.detail = "reply delivered with no outstanding "
                               "request";
                    r.enabled = true;
                    return r;
                }
                n.mshrValid = false;
                n.mshrWrite = false;
            }
            if (r.out.fenceDelta < 0) {
                if (n.fence == 0) {
                    r.violation = "FenceUnderflow";
                    r.detail = "FenceAck with no outstanding fence";
                    r.enabled = true;
                    return r;
                }
                n.fence--;
            }
            for (uint8_t i = 0; i < r.out.numEmits; ++i) {
                if (!pushMsg(r.next, nodes, a.b, r.out.emits[i].to,
                             r.out.emits[i].msg)) {
                    r.blocked = true;
                    return r;
                }
            }
        }
        r.enabled = true;
        return r;
      }
    }
    return r;
}

std::vector<Action>
allActions(uint32_t nodes)
{
    std::vector<Action> out;
    for (uint8_t n = 0; n < nodes; ++n) {
        out.push_back({Action::IssueRead, n, 0});
        out.push_back({Action::IssueWrite, n, 0});
        out.push_back({Action::Store, n, 0});
        out.push_back({Action::Evict, n, 0});
        out.push_back({Action::Flush, n, 0});
    }
    for (uint8_t s = 0; s < nodes; ++s) {
        for (uint8_t d = 0; d < nodes; ++d)
            out.push_back({Action::Deliver, s, d});
    }
    return out;
}

// ---------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------

struct Invariant
{
    const char *kind = nullptr;
    std::string detail;
};

std::optional<Invariant>
checkState(const State &s, const ExploreParams &p)
{
    uint32_t nodes = p.nodes;
    // SWMR: a Modified copy excludes every other copy.
    int modified = -1, copies = 0;
    for (uint32_t i = 0; i < nodes; ++i) {
        if (s.nodes[i].cache == CacheState::Invalid)
            continue;
        ++copies;
        if (s.nodes[i].cache == CacheState::Modified)
            modified = int(i);
    }
    if (modified >= 0 && copies > 1) {
        return Invariant{"SWMR",
                         "node " + std::to_string(modified) +
                             " holds Modified while another node "
                             "holds a copy"};
    }
    // Data value: every live copy holds the last-written value.
    for (uint32_t i = 0; i < nodes; ++i) {
        if (s.nodes[i].cache != CacheState::Invalid &&
            !s.nodes[i].fresh) {
            return Invariant{
                "DataValue",
                "node " + std::to_string(i) + " holds a stale " +
                    std::string(cacheStateName(s.nodes[i].cache)) +
                    " copy (read would not return the last write)"};
        }
    }
    // Inv/ack and fence balance over the in-flight messages.
    uint64_t invs = 0, acks = 0, fence_wbs = 0, fence_acks = 0;
    for (uint32_t c = 0; c < nodes * nodes; ++c) {
        for (uint8_t i = 0; i < s.chan[c].n; ++i) {
            const SpecMsg &m = s.chan[c].q[i];
            invs += m.type == MsgType::Inv;
            acks += m.type == MsgType::InvAck;
            fence_wbs += m.type == MsgType::WbData && m.fenceAck;
            fence_acks += m.type == MsgType::FenceAck;
        }
    }
    uint64_t expected =
        s.dir.busy && s.dir.wait == Wait::Acks ? s.dir.pendingAcks : 0;
    if (invs + acks != expected) {
        return Invariant{"InvAckBalance",
                         std::to_string(invs) + " Inv + " +
                             std::to_string(acks) +
                             " InvAck in flight vs pendingAcks=" +
                             std::to_string(expected)};
    }
    uint64_t fences = 0;
    for (uint32_t i = 0; i < nodes; ++i)
        fences += s.nodes[i].fence;
    if (fences != fence_wbs + fence_acks) {
        return Invariant{"FenceBalance",
                         "sum(fence)=" + std::to_string(fences) +
                             " vs in-flight fence WbData=" +
                             std::to_string(fence_wbs) + " FenceAck=" +
                             std::to_string(fence_acks)};
    }
    // Directory bookkeeping.
    if (s.dir.pendingAcks > 0 &&
        (!s.dir.busy || s.dir.wait != Wait::Acks)) {
        return Invariant{"DirSanity", "pendingAcks outside an "
                                      "ack-collection window"};
    }
    if (s.dir.numWaiting > 0 && !s.dir.busy)
        return Invariant{"DirSanity", "waiters parked on an idle line"};
    if (p.spec.scheme == DirScheme::LimitedPtr) {
        uint8_t count = s.dir.sharerCount();
        if (s.dir.spilled > count) {
            return Invariant{"LimitedPtr",
                             "spilled=" + std::to_string(s.dir.spilled) +
                                 " exceeds sharers=" +
                                 std::to_string(count)};
        }
        if (uint32_t(count - s.dir.spilled) > p.spec.dirPointers) {
            return Invariant{
                "LimitedPtr",
                "resident pointers " +
                    std::to_string(count - s.dir.spilled) +
                    " exceed the hardware budget " +
                    std::to_string(p.spec.dirPointers)};
        }
    } else if (s.dir.spilled != 0) {
        return Invariant{"LimitedPtr", "spill count under FullMap"};
    }
    return std::nullopt;
}

bool
hasPendingWork(const State &s, uint32_t nodes)
{
    for (uint32_t c = 0; c < nodes * nodes; ++c) {
        if (s.chan[c].n > 0)
            return true;
    }
    for (uint32_t i = 0; i < nodes; ++i) {
        if (s.nodes[i].mshrValid || s.nodes[i].fence > 0)
            return true;
    }
    return s.dir.busy || s.dir.numWaiting > 0 ||
           s.dir.pendingAcks > 0 || s.dir.wait != Wait::None;
}

bool
isQuiescent(const State &s, uint32_t nodes)
{
    return !hasPendingWork(s, nodes);
}

// ---------------------------------------------------------------------
// Trace rendering (april-coh span vocabulary)
// ---------------------------------------------------------------------

std::string
emitsSummary(const Outcome &o)
{
    std::ostringstream os;
    for (uint8_t i = 0; i < o.numEmits; ++i) {
        const Emit &e = o.emits[i];
        os << (i ? ", " : "; ");
        switch (e.msg.type) {
          case MsgType::Inv: os << "InvSend->n" << int(e.to); break;
          case MsgType::WbReq:
            os << "WbReqSend->n" << int(e.to);
            break;
          case MsgType::ReadReply:
          case MsgType::WriteReply:
            os << "ReplySend("
               << (e.msg.type == MsgType::WriteReply ? "W" : "R")
               << ")->n" << int(e.to);
            break;
          case MsgType::FenceAck:
            os << "FenceAck->n" << int(e.to);
            break;
          case MsgType::Unpend: os << "Unpend"; break;
          default:
            os << coh::msgTypeName(e.msg.type) << "->n" << int(e.to);
        }
    }
    return os.str();
}

std::string
describeAction(const State &s, Action a, const ExploreParams &p)
{
    std::ostringstream os;
    ApplyResult r = apply(s, a, p);
    switch (a.kind) {
      case Action::IssueRead:
      case Action::IssueWrite:
        os << "Issue       n" << int(a.a) << " "
           << (a.kind == Action::IssueWrite ? "WriteReq" : "ReadReq")
           << " -> home";
        break;
      case Action::Store:
        os << "Store       n" << int(a.a)
           << " writes its Modified copy (memory now stale)";
        break;
      case Action::Evict:
        os << "Evict       n" << int(a.a) << " "
           << cacheStateName(s.nodes[a.a].cache)
           << (s.nodes[a.a].cache == CacheState::Modified
                   ? " -> WbData -> home"
                   : " (silent drop)");
        break;
      case Action::Flush:
        os << "Flush       n" << int(a.a)
           << " -> WbData[fence] -> home";
        break;
      case Action::Deliver: {
        const SpecMsg &m = s.chan[a.a * p.nodes + a.b].q[0];
        if (a.b == 0 && isHomeMsg(m.type)) {
            switch (m.type) {
              case MsgType::ReadReq:
              case MsgType::WriteReq:
                if (r.out.queued) {
                    os << "HomeQueue   " << coh::msgTypeName(m.type)
                       << " from n" << int(m.requester)
                       << " (line busy)";
                } else {
                    os << "HomeHandle  " << coh::msgTypeName(m.type)
                       << " from n" << int(m.requester) << " @"
                       << coh::dirStateName(s.dir.state) << " [R"
                       << int(r.out.rule) << " "
                       << dirRules()[r.out.rule].name << "]"
                       << emitsSummary(r.out);
                }
                break;
              case MsgType::InvAck:
                os << "InvAck      n" << int(m.from) << " -> home [R"
                   << int(r.out.rule) << " "
                   << dirRules()[r.out.rule].name << "]"
                   << emitsSummary(r.out);
                break;
              case MsgType::WbData:
              case MsgType::WbEmpty:
                os << "WbRecv      " << coh::msgTypeName(m.type)
                   << " from n" << int(m.from)
                   << (m.fenceAck ? " [fence]" : "") << " [R"
                   << int(r.out.rule) << " "
                   << dirRules()[r.out.rule].name << "]"
                   << emitsSummary(r.out);
                break;
              case MsgType::Unpend:
                os << "Unpend      home"
                   << (s.dir.numWaiting
                           ? " drains waiter [R" +
                                 std::to_string(int(r.out.rule)) +
                                 " " + dirRules()[r.out.rule].name +
                                 "]" + emitsSummary(r.out)
                           : " (no waiters)");
                break;
              default: os << coh::msgTypeName(m.type);
            }
        } else {
            switch (m.type) {
              case MsgType::Inv:
                os << "Inv         n" << int(a.b)
                   << " drops its copy; InvAck -> home";
                break;
              case MsgType::WbReq:
                os << "WbReq       n" << int(a.b) << " "
                   << (s.nodes[a.b].cache == CacheState::Modified
                           ? (m.isWrite
                                  ? "-> WbData home (invalidated)"
                                  : "-> WbData home (downgraded)")
                           : "-> WbEmpty home (copy raced away)");
                break;
              case MsgType::ReadReply:
              case MsgType::WriteReply:
                os << "Fill        n" << int(a.b) << " "
                   << (m.type == MsgType::WriteReply ? "Modified"
                                                     : "Shared")
                   << " fresh=" << int(m.fresh);
                break;
              case MsgType::FenceAck:
                os << "FenceAck    n" << int(a.b) << " fence--";
                break;
              default: os << coh::msgTypeName(m.type);
            }
        }
        break;
      }
    }
    return os.str();
}

std::string
describeState(const State &s, const ExploreParams &p)
{
    std::ostringstream os;
    os << "state: dir=" << coh::dirStateName(s.dir.state)
       << (s.dir.busy ? "+busy" : "") << " wait="
       << waitName(s.dir.wait) << " acks=" << int(s.dir.pendingAcks)
       << " sharers=";
    for (uint32_t i = 0; i < p.nodes; ++i)
        os << ((s.dir.sharers >> i) & 1);
    os << " spilled=" << int(s.dir.spilled)
       << " waiting=" << int(s.dir.numWaiting)
       << " memFresh=" << s.memFresh;
    for (uint32_t i = 0; i < p.nodes; ++i) {
        const NodeState &n = s.nodes[i];
        os << " | n" << i << "=" << cacheStateName(n.cache)[0]
           << (n.cache != CacheState::Invalid ? (n.fresh ? '+' : '-')
                                              : ' ')
           << (n.mshrValid ? (n.mshrWrite ? 'w' : 'r') : '.') << 'f'
           << int(n.fence);
    }
    uint32_t inflight = 0;
    for (uint32_t c = 0; c < p.nodes * p.nodes; ++c)
        inflight += s.chan[c].n;
    os << " | in-flight=" << inflight;
    return os.str();
}

// ---------------------------------------------------------------------
// The explorer proper
// ---------------------------------------------------------------------

struct Explorer
{
    const ExploreParams &p;
    std::vector<Perm> perms;
    std::vector<Action> actions;
    ExploreResult res;

    std::unordered_map<std::string, uint32_t> ids;
    std::vector<const std::string *> keyOf;
    std::vector<uint32_t> parent;
    std::vector<Action> via;
    std::vector<uint32_t> depth;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    std::deque<uint32_t> frontier;

    explicit Explorer(const ExploreParams &p_)
        : p(p_), perms(nodePerms(p_.nodes, p_.symmetry)),
          actions(allActions(p_.nodes))
    {
    }

    uint32_t
    intern(std::string key, uint32_t from, Action act, bool *fresh)
    {
        auto [it, inserted] =
            ids.emplace(std::move(key), uint32_t(keyOf.size()));
        *fresh = inserted;
        if (inserted) {
            keyOf.push_back(&it->first);
            parent.push_back(from);
            via.push_back(act);
            depth.push_back(from == UINT32_MAX ? 0 : depth[from] + 1);
            frontier.push_back(it->second);
        }
        return it->second;
    }

    /** Relabel-stable counterexample trace from the root to @p id,
     *  optionally extended by one more action. */
    std::vector<std::string>
    buildTrace(uint32_t id, const Action *extra)
    {
        std::vector<uint32_t> path;
        for (uint32_t v = id; v != UINT32_MAX; v = parent[v])
            path.push_back(v);
        std::reverse(path.begin(), path.end());

        std::vector<std::string> out;
        Perm sigma = identityPerm();
        State display;
        for (size_t i = 0; i < path.size(); ++i) {
            State canon = decode(*keyOf[path[i]], p.nodes);
            if (i + 1 < path.size() || extra) {
                Action act =
                    i + 1 < path.size() ? via[path[i + 1]] : *extra;
                // Print in root coordinates: sigma maps this state's
                // canonical labels back to the original ones.
                State disp = applyPerm(canon, sigma, p.nodes);
                Action dact = act;
                if (act.kind == Action::Deliver) {
                    dact.a = sigma[act.a];
                    dact.b = sigma[act.b];
                } else {
                    dact.a = sigma[act.a];
                }
                out.push_back(describeAction(disp, dact, p));
                display = apply(disp, dact, p).next;
                if (i + 1 < path.size()) {
                    // Compose sigma with the child's canonical perm.
                    State raw = apply(canon, act, p).next;
                    Perm pi;
                    canonicalKey(raw, perms, p.nodes, &pi);
                    Perm next = sigma;
                    for (uint32_t n = 0; n < p.nodes; ++n)
                        next[pi[n]] = sigma[n];
                    sigma = next;
                }
            } else {
                display = applyPerm(canon, sigma, p.nodes);
            }
        }
        out.push_back(describeState(display, p));
        return out;
    }

    void
    addViolation(const char *kind, const std::string &detail,
                 uint32_t from, const Action *act)
    {
        Violation v;
        v.kind = kind;
        v.detail = detail;
        v.trace = buildTrace(from, act);
        res.violations.push_back(std::move(v));
    }

    void
    run()
    {
        State init;
        bool fresh = false;
        intern(canonicalKey(init, perms, p.nodes), UINT32_MAX,
               Action{}, &fresh);
        if (auto bad = checkState(init, p)) {
            addViolation(bad->kind, bad->detail, 0, nullptr);
            return;
        }

        while (!frontier.empty()) {
            if (keyOf.size() >= p.maxStates) {
                res.capped = true;
                break;
            }
            uint32_t id = frontier.front();
            frontier.pop_front();
            State st = decode(*keyOf[id], p.nodes);
            res.diameter = std::max(res.diameter, depth[id]);
            bool any_enabled = false;

            for (const Action &a : actions) {
                ApplyResult r = apply(st, a, p);
                if (r.blocked) {
                    ++res.blockedDeliveries;
                    continue;
                }
                if (!r.enabled)
                    continue;
                any_enabled = true;
                ++res.transitions;
                if (a.kind == Action::Deliver) {
                    const SpecMsg &head =
                        st.chan[a.a * p.nodes + a.b].q[0];
                    if (a.b == 0 && isHomeMsg(head.type)) {
                        for (size_t i = 0; i < kNumDirRules; ++i) {
                            if (r.out.firedRules >> i & 1)
                                ++res.dirRuleFires[i];
                        }
                    } else {
                        ++res.cacheRuleFires[r.out.rule];
                    }
                }
                if (r.violation) {
                    addViolation(r.violation, r.detail, id, &a);
                    return;
                }
                if (auto bad = checkState(r.next, p)) {
                    addViolation(bad->kind, bad->detail, id, &a);
                    return;
                }
                uint32_t nid =
                    intern(canonicalKey(r.next, perms, p.nodes), id, a,
                           &fresh);
                if (p.checkLiveness)
                    edges.emplace_back(id, nid);
            }

            if (!any_enabled && hasPendingWork(st, p.nodes)) {
                addViolation("Deadlock",
                             "pending work with no enabled action",
                             id, nullptr);
                return;
            }
        }
        res.states = keyOf.size();
        if (p.checkLiveness && !res.capped)
            checkLiveness();
    }

    /** EF(quiescent) over the explored graph: every state must be
     *  able to reach a quiescent one, so every request can reach its
     *  Fill and every busy directory its Unpend drain. */
    void
    checkLiveness()
    {
        size_t n = keyOf.size();
        // Reverse adjacency (CSR).
        std::vector<uint32_t> head(n + 1, 0);
        for (auto &[from, to] : edges) {
            (void)from;
            ++head[to + 1];
        }
        for (size_t i = 1; i <= n; ++i)
            head[i] += head[i - 1];
        std::vector<uint32_t> radj(edges.size());
        std::vector<uint32_t> fill = head;
        for (auto &[from, to] : edges)
            radj[fill[to]++] = from;

        std::vector<uint8_t> good(n, 0);
        std::deque<uint32_t> q;
        for (uint32_t i = 0; i < n; ++i) {
            if (isQuiescent(decode(*keyOf[i], p.nodes), p.nodes)) {
                good[i] = 1;
                q.push_back(i);
            }
        }
        while (!q.empty()) {
            uint32_t v = q.front();
            q.pop_front();
            for (uint32_t e = head[v]; e < head[v + 1]; ++e) {
                if (!good[radj[e]]) {
                    good[radj[e]] = 1;
                    q.push_back(radj[e]);
                }
            }
        }
        for (uint32_t i = 0; i < n; ++i) {
            if (!good[i]) {
                addViolation(
                    "Liveness",
                    "state cannot reach quiescence: some request "
                    "never reaches its Fill / Unpend drain",
                    i, nullptr);
                return;
            }
        }
    }
};

} // namespace

ExploreResult
explore(const ExploreParams &p)
{
    panicIfNot(p.nodes >= 2 && p.nodes <= kMaxNodes,
               "mc: nodes must be in [2, ", kMaxNodes, "]");
    panicIfNot(p.maxFence <= 7,
               "mc: maxFence must fit the 3-bit state encoding");
    Explorer ex(p);
    ex.run();
    ex.res.states = ex.keyOf.size();
    return ex.res;
}

std::string
summarize(const ExploreParams &p, const ExploreResult &r)
{
    std::ostringstream os;
    os << coh::dirSchemeName(p.spec.scheme);
    if (p.spec.scheme == DirScheme::LimitedPtr)
        os << "(i=" << p.spec.dirPointers << ")";
    os << " nodes=" << p.nodes << ": " << r.states << " states, "
       << r.transitions << " transitions, diameter " << r.diameter;
    if (r.capped)
        os << " [CAPPED at " << p.maxStates << "]";
    if (r.violations.empty()) {
        os << ", no violations";
    } else {
        os << ", " << r.violations.size() << " violation ("
           << r.violations.front().kind << ")";
    }
    return os.str();
}

} // namespace april::mc

/**
 * @file
 * Murphi-style exhaustive explorer over the coherence-protocol spec
 * (DESIGN.md §7.9). The abstract machine is one cache line, 2-4
 * nodes, the line's home directory on node 0, and one bounded FIFO
 * channel per (src, dst) node pair; cross-channel reordering comes
 * from delivering any channel's head, same-route FIFO matches the
 * ordered paths the implementation relies on (grant-before-recall,
 * eviction-WbData-before-re-request).
 *
 * States are canonicalized under permutation of the non-home nodes
 * (node 0 is pinned: it is the home and a distinguished cache) and
 * deduplicated by their canonical byte encoding; BFS guarantees
 * counterexample traces are shortest-in-steps. Checked on every
 * state:
 *
 *  - SWMR: a Modified copy excludes every other Shared/Modified copy.
 *  - Data value: every Shared/Modified copy is fresh (holds the last
 *    written value — the freshness-bit abstraction of "reads return
 *    the last write").
 *  - Inv/ack balance: in-flight Inv + InvAck exactly equals the
 *    directory's pendingAcks while collecting, zero otherwise.
 *  - Fence balance: the sum of node fence counters equals the
 *    in-flight fence-flagged WbData plus FenceAck messages.
 *  - LimitedPtr bookkeeping: resident pointers never exceed the
 *    hardware budget; the spill count never exceeds the sharer count.
 *  - Waiting-queue bounds and directory wait/busy sanity.
 *
 * Post-exploration over the stored edge list:
 *
 *  - Deadlock: no reachable state has pending work (messages, MSHRs,
 *    busy directory, queued waiters, unbalanced fences) with no
 *    enabled delivery.
 *  - Bounded liveness: every reachable state can reach a quiescent
 *    state (all MSHRs filled, directory idle, channels drained) — so
 *    every request can reach its Fill and every busy line its Unpend
 *    drain. This is the EF formulation, the strongest liveness an
 *    explicit-state reachability checker supports.
 *
 * What is bounded (not exhaustive): channel depth (kChanDepth), node
 * count, one line, fence counters (ExploreParams::maxFence). Within
 * those bounds every interleaving is covered.
 */

#ifndef APRIL_MC_EXPLORE_HH
#define APRIL_MC_EXPLORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mc/spec.hh"

namespace april::mc
{

/** Per-channel FIFO depth. 4 covers the protocol's worst same-route
 *  stack (grant + recall + invalidation + fence ack); deliveries that
 *  would overflow are counted, never silently dropped. */
inline constexpr uint8_t kChanDepth = 4;

/** Cache/MSHR/fence view of one node. */
struct NodeState
{
    CacheState cache = CacheState::Invalid;
    bool fresh = false;
    bool mshrValid = false;     ///< a Read/WriteReq is outstanding
    bool mshrWrite = false;
    uint8_t fence = 0;          ///< outstanding FLUSH fence count

    bool operator==(const NodeState &) const = default;
};

/** One FIFO channel. */
struct Channel
{
    uint8_t n = 0;
    std::array<SpecMsg, kChanDepth> q{};

    bool operator==(const Channel &) const = default;
};

/** One global state of the abstract machine. */
struct State
{
    std::array<NodeState, kMaxNodes> nodes{};
    DirEntry dir;
    bool memFresh = true;
    /// chan[src * nodes + dst]
    std::array<Channel, kMaxNodes * kMaxNodes> chan{};

    bool operator==(const State &) const = default;
};

/** A spontaneous or delivery action driving one transition. */
struct Action
{
    enum Kind : uint8_t
    {
        IssueRead,  ///< a: node — send ReadReq (cache Invalid)
        IssueWrite, ///< a: node — send WriteReq (Invalid or Shared)
        Store,      ///< a: node — write the Modified copy
        Evict,      ///< a: node — drop the copy (Modified: WbData)
        Flush,      ///< a: node — FLUSH a Modified copy (fence++)
        Deliver,    ///< a: src, b: dst — deliver the channel head
    };
    Kind kind = IssueRead;
    uint8_t a = 0;
    uint8_t b = 0;
};

struct ExploreParams
{
    SpecParams spec;
    uint32_t nodes = 3;         ///< 2..kMaxNodes; home is node 0
    uint64_t maxStates = 2'000'000;
    uint8_t maxFence = 2;
    bool symmetry = true;       ///< canonicalize over non-home nodes
    bool checkLiveness = true;  ///< store edges, run the EF pass
};

/** One invariant violation with its shortest counterexample. */
struct Violation
{
    std::string kind;           ///< "SWMR", "DataValue", ...
    std::string detail;
    /// Message-sequence trace from the initial state, one line per
    /// step in april-coh span vocabulary (Issue / HomeQueue /
    /// HomeHandle / InvSend / InvAck / WbReqSend / WbRecv /
    /// ReplySend / Fill).
    std::vector<std::string> trace;
};

struct ExploreResult
{
    uint64_t states = 0;
    uint64_t transitions = 0;
    uint32_t diameter = 0;      ///< deepest BFS level reached
    bool capped = false;        ///< hit maxStates before closure
    uint64_t blockedDeliveries = 0; ///< backpressured by kChanDepth
    std::vector<Violation> violations;
    std::array<uint64_t, kNumDirRules> dirRuleFires{};
    std::array<uint64_t, kNumCacheRules> cacheRuleFires{};

    bool ok() const { return violations.empty() && !capped; }
};

/** Exhaustively explore the protocol under @p p. Stops at the first
 *  violation (its trace is shortest by BFS). */
ExploreResult explore(const ExploreParams &p);

/** One-line human summary ("fullmap n=3: 12345 states, ..."). */
std::string summarize(const ExploreParams &p, const ExploreResult &r);

} // namespace april::mc

#endif // APRIL_MC_EXPLORE_HH

#include "mc/replay.hh"

#include <sstream>

#include "common/json_parse.hh"
#include "coherence/coh_trace.hh"

namespace april::mc
{

namespace
{

constexpr size_t kMaxErrors = 32;

void
addError(ReplayResult &r, const std::string &msg)
{
    if (r.errors.size() < kMaxErrors)
        r.errors.push_back(msg);
}

/** Leg counts and boundary cycles of one transaction group. */
struct TxnShape
{
    uint64_t id = 0;
    uint64_t issues = 0, queues = 0, handles = 0;
    uint64_t invSends = 0, invAcks = 0;
    uint64_t wbReqs = 0, wbRecvs = 0;
    uint64_t replies = 0, fills = 0;
    uint64_t issueCycle = 0, handleCycle = 0;
    uint64_t replyCycle = 0, fillCycle = 0;
    bool issueFirst = false, fillLast = false;
    bool cyclesOrdered = true;
    uint32_t requester = 0;
    bool haveHome = false;
    uint32_t home = 0;
    /// Events not recorded by the node the span shape demands.
    uint64_t misattributed = 0;
};

coh::TxnPhase
phaseFromName(const std::string &name, bool &known)
{
    known = true;
    for (int p = 0; p <= int(coh::TxnPhase::Fill); ++p) {
        if (name == coh::txnPhaseName(coh::TxnPhase(p)))
            return coh::TxnPhase(p);
    }
    known = false;
    return coh::TxnPhase::Issue;
}

void
checkShape(ReplayResult &r, const TxnShape &t, bool complete)
{
    std::ostringstream id;
    id << "txn " << t.id << ": ";
    auto bad = [&](const std::string &why) { addError(r, id.str() + why); };

    if (t.issues > 1)
        bad("more than one Issue leg");
    if (t.fills > 1)
        bad("more than one Fill leg");
    if (t.fills > 0 && t.issues == 0)
        bad("Fill without an Issue");
    if (t.fills > 0 && t.handles == 0)
        bad("Fill without a HomeHandle");
    if (t.replies > 0 && t.handles == 0)
        bad("ReplySend without a HomeHandle");
    if (!t.cyclesOrdered)
        bad("leg cycles are not non-decreasing");
    if (t.misattributed > 0)
        bad("leg recorded by a node the span shape does not allow");
    if (complete) {
        if (!t.issueFirst)
            bad("Issue is not the first leg");
        if (!t.fillLast)
            bad("Fill is not the last leg");
        if (t.replies != 1)
            bad("complete transaction without exactly one ReplySend");
        if (t.invAcks != t.invSends)
            bad("InvAck count does not match InvSend count");
        if (t.wbRecvs != t.wbReqs)
            bad("WbRecv count does not match WbReqSend count");
        if (t.queues > t.handles)
            bad("more HomeQueue legs than HomeHandle legs");
        if (t.issueCycle > t.handleCycle ||
            t.handleCycle > t.replyCycle || t.replyCycle > t.fillCycle)
            bad("Issue/HomeHandle/ReplySend/Fill cycles out of order");
    } else {
        // An in-flight tail transaction: the prefix must still be
        // causally sane (no acks without invalidations, etc.).
        if (t.invAcks > t.invSends)
            bad("more InvAck legs than InvSend legs");
        if (t.wbRecvs > t.wbReqs)
            bad("more WbRecv legs than WbReqSend legs");
    }
}

uint64_t
asU64(const json::Json &j)
{
    return uint64_t(j.number);
}

void
replayTransaction(ReplayResult &r, const json::Json &txn)
{
    ++r.transactions;
    TxnShape t;
    t.id = asU64(txn.at("id"));
    t.requester = uint32_t(t.id >> 32);
    if (txn.has("home")) {
        t.haveHome = true;
        t.home = uint32_t(asU64(txn.at("home")));
    }
    bool complete = txn.has("complete") && txn.at("complete").number != 0;
    const json::Json &events = txn.at("events");
    if (!events.isArray()) {
        addError(r, "txn " + std::to_string(t.id) +
                        ": 'events' is not an array");
        return;
    }
    uint64_t prev_cycle = 0;
    for (size_t i = 0; i < events.array.size(); ++i) {
        const json::Json &e = events.array[i];
        ++r.events;
        uint64_t cycle = asU64(e.at("c"));
        uint32_t node = uint32_t(asU64(e.at("n")));
        bool known = false;
        coh::TxnPhase ph = phaseFromName(e.at("ph").str, known);
        if (!known) {
            addError(r, "txn " + std::to_string(t.id) +
                            ": unknown phase '" + e.at("ph").str + "'");
            continue;
        }
        if (i > 0 && cycle < prev_cycle)
            t.cyclesOrdered = false;
        prev_cycle = cycle;
        bool at_requester = node == t.requester;
        bool at_home = !t.haveHome || node == t.home;
        switch (ph) {
          case coh::TxnPhase::Issue:
            ++t.issues;
            t.issueCycle = cycle;
            if (i == 0)
                t.issueFirst = true;
            if (!at_requester)
                ++t.misattributed;
            break;
          case coh::TxnPhase::HomeQueue:
            ++t.queues;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::HomeHandle:
            ++t.handles;
            if (t.handles == 1)
                t.handleCycle = cycle;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::InvSend:
            ++t.invSends;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::InvAck:
            ++t.invAcks;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::WbReqSend:
            ++t.wbReqs;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::WbRecv:
            ++t.wbRecvs;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::ReplySend:
            ++t.replies;
            t.replyCycle = cycle;
            if (!at_home)
                ++t.misattributed;
            break;
          case coh::TxnPhase::Fill:
            ++t.fills;
            t.fillCycle = cycle;
            if (i + 1 == events.array.size())
                t.fillLast = true;
            if (!at_requester)
                ++t.misattributed;
            break;
        }
    }
    if (complete)
        ++r.complete;
    // The summary tallies must agree with the legs they summarize.
    if (txn.has("invs") && asU64(txn.at("invs")) != t.invSends)
        addError(r, "txn " + std::to_string(t.id) +
                        ": 'invs' summary disagrees with InvSend legs");
    if (txn.has("acks") && asU64(txn.at("acks")) != t.invAcks)
        addError(r, "txn " + std::to_string(t.id) +
                        ": 'acks' summary disagrees with InvAck legs");
    if (complete && txn.has("latency") && txn.has("issued") &&
        txn.has("filled") &&
        asU64(txn.at("latency")) !=
            asU64(txn.at("filled")) - asU64(txn.at("issued")))
        addError(r, "txn " + std::to_string(t.id) +
                        ": 'latency' is not filled - issued");
    checkShape(r, t, complete);
}

} // namespace

ReplayResult
replayCohTrace(const std::string &json_text)
{
    ReplayResult r;
    json::Json root;
    try {
        root = json::parseJson(json_text);
    } catch (const std::exception &e) {
        addError(r, std::string("parse error: ") + e.what());
        return r;
    }
    if (!root.isObject() || !root.has("schemaVersion") ||
        asU64(root.at("schemaVersion")) != 1) {
        addError(r, "not a schemaVersion-1 cohTrace document");
        return r;
    }
    if (root.has("dropped") && asU64(root.at("dropped")) != 0) {
        r.refused = true;
        addError(r, "trace dropped " +
                        std::to_string(asU64(root.at("dropped"))) +
                        " legs at the capacity cap; checks would be "
                        "vacuous — re-record with a larger "
                        "cohTraceCapacity");
        return r;
    }
    const json::Json &txns = root.at("transactions");
    if (!txns.isArray()) {
        addError(r, "'transactions' is not an array");
        return r;
    }
    for (const json::Json &txn : txns.array)
        replayTransaction(r, txn);
    return r;
}

std::string
summarizeReplay(const ReplayResult &r)
{
    std::ostringstream os;
    if (r.ok()) {
        os << r.transactions << " transactions (" << r.complete
           << " complete), " << r.events << " legs, clean";
    } else {
        os << r.errors.size() << (r.refused ? " (refused)" : "")
           << " replay error" << (r.errors.size() == 1 ? "" : "s")
           << "; first: " << (r.errors.empty() ? "?" : r.errors[0]);
    }
    return os.str();
}

} // namespace april::mc

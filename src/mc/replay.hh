/**
 * @file
 * Replay checker for recorded coherence-transaction traces: parses
 * the structured JSON that AlewifeMachine::writeCohTrace emits
 * (schemaVersion 1) and validates every transaction's leg sequence
 * against the protocol's causal span shape — the same vocabulary the
 * model checker's counterexample traces use (Issue, HomeQueue,
 * HomeHandle, InvSend, InvAck, WbReqSend, WbRecv, ReplySend, Fill).
 *
 * A trace that dropped legs at the capacity cap is refused outright:
 * every check below is a completeness argument, and a truncated log
 * can fail (or worse, pass) them vacuously.
 */

#ifndef APRIL_MC_REPLAY_HH
#define APRIL_MC_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace april::mc
{

/** Outcome of replaying one recorded trace against the spec. */
struct ReplayResult
{
    uint64_t transactions = 0;  ///< transaction groups examined
    uint64_t events = 0;        ///< individual legs examined
    uint64_t complete = 0;      ///< transactions with Issue and Fill
    /// True when the trace recorded drops and was refused unchecked.
    bool refused = false;
    /// Human-readable violations, one per failed check (capped).
    std::vector<std::string> errors;

    bool ok() const { return !refused && errors.empty(); }
};

/**
 * Validate @p json_text (a writeCohTrace document) against the
 * transaction-span shape. Parse failures and schema mismatches are
 * reported as errors rather than thrown.
 */
ReplayResult replayCohTrace(const std::string &json_text);

/** One-line summary ("N transactions, M legs, clean" or the first
 *  error) for CLI output. */
std::string summarizeReplay(const ReplayResult &r);

} // namespace april::mc

#endif // APRIL_MC_REPLAY_HH

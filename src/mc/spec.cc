#include "mc/spec.hh"

#include <sstream>

#include "common/logging.hh"

namespace april::mc
{

namespace
{

// recordsMask bits (indexed by the DirState transitioned INTO).
constexpr uint8_t U = 1u << size_t(DirState::Uncached);
constexpr uint8_t S = 1u << size_t(DirState::Shared);
constexpr uint8_t E = 1u << size_t(DirState::Exclusive);

constexpr int8_t kU = int8_t(DirState::Uncached);
constexpr int8_t kS = int8_t(DirState::Shared);
constexpr int8_t kE = int8_t(DirState::Exclusive);
constexpr int8_t kWaitAcks = int8_t(Wait::Acks);
constexpr int8_t kWaitData = int8_t(Wait::Data);

/**
 * The home-directory FSM, one row per Controller::handleMessage /
 * handleHomeRequest / completePending branch, in first-match order.
 * Matching is declarative — (msg, state, busy, wait, guard) — and the
 * action each row stands for is keyed by its id in applyDir below;
 * the recordsMask column is the contract the live controller's
 * recordTransition calls are checked against (legalDirTransitions).
 */
constexpr std::array<DirRule, kNumDirRules> kDirRules = {{
    // Requests against a busy line park in the waiting FIFO.
    {0, "queue-read", MsgType::ReadReq, kAny, 1, kAny, Guard::Always, 0},
    {1, "queue-write", MsgType::WriteReq, kAny, 1, kAny, Guard::Always,
     0},
    // An Exclusive owner re-requesting has lost its copy to an
    // eviction whose WbData arrived first (FIFO): fold to Uncached,
    // then re-handle the same request against the folded entry.
    {2, "fold-read", MsgType::ReadReq, kE, 0, kAny, Guard::ReqIsOwner,
     U},
    {3, "fold-write", MsgType::WriteReq, kE, 0, kAny, Guard::ReqIsOwner,
     U},
    // Grants from stable states.
    {4, "uncached-read", MsgType::ReadReq, kU, 0, kAny, Guard::Always,
     S},
    {5, "uncached-write", MsgType::WriteReq, kU, 0, kAny, Guard::Always,
     E},
    {6, "shared-read", MsgType::ReadReq, kS, 0, kAny, Guard::Always, S},
    {7, "shared-write-alone", MsgType::WriteReq, kS, 0, kAny,
     Guard::NoOtherSharer, E},
    // Strong coherence: collect every other sharer's ack first.
    {8, "shared-write-inv", MsgType::WriteReq, kS, 0, kAny,
     Guard::OtherSharers, 0},
    // Recall the dirty line from its owner before granting.
    {9, "excl-read-recall", MsgType::ReadReq, kE, 0, kAny,
     Guard::ReqNotOwner, 0},
    {10, "excl-write-recall", MsgType::WriteReq, kE, 0, kAny,
     Guard::ReqNotOwner, 0},
    // Invalidation acknowledgments.
    {11, "ack-count", MsgType::InvAck, kS, 1, kWaitAcks,
     Guard::AcksRemain, 0},
    {12, "ack-last", MsgType::InvAck, kS, 1, kWaitAcks, Guard::LastAck,
     E},
    {13, "ack-stale", MsgType::InvAck, kAny, kAny, kAny, Guard::Always,
     0},
    // Writebacks (every WbData row also updates memory and answers a
    // fence flag with FenceAck).
    {14, "wb-complete", MsgType::WbData, kE, 1, kWaitData,
     Guard::FromIsOwner, S | E},
    {15, "wb-evict-fold", MsgType::WbData, kE, 0, kAny,
     Guard::FromIsOwner, U},
    {16, "wb-memory-only", MsgType::WbData, kAny, kAny, kAny,
     Guard::Always, 0},
    {17, "wbempty-complete", MsgType::WbEmpty, kE, 1, kWaitData,
     Guard::AnswersRecall, S | E},
    // The raced-away answer for an already-settled recall.
    {18, "wbempty-ignore", MsgType::WbEmpty, kAny, kAny, kAny,
     Guard::Always, 0},
    // Transaction over: clear busy and re-handle the front waiter.
    {19, "unpend-drain", MsgType::Unpend, kAny, kAny, kAny,
     Guard::Always, 0},
}};

constexpr int8_t kCacheM = int8_t(CacheState::Modified);

/** The cache-side FSM (Controller::handleMessage cache branches), in
 *  first-match order. */
constexpr std::array<CacheRule, kNumCacheRules> kCacheRules = {{
    // Invalidations always ack, copy or not (stale sharer bits are
    // harmless by design).
    {0, "inv-ack", MsgType::Inv, kAny, kAny, CacheState::Invalid},
    {1, "wbreq-data-inv", MsgType::WbReq, kCacheM, 1,
     CacheState::Invalid},
    {2, "wbreq-data-downgrade", MsgType::WbReq, kCacheM, 0,
     CacheState::Shared},
    // No modified copy here: it raced away via an earlier eviction.
    {3, "wbreq-empty", MsgType::WbReq, kAny, kAny, CacheState::Invalid},
    {4, "fill-read", MsgType::ReadReply, kAny, kAny, CacheState::Shared},
    {5, "fill-write", MsgType::WriteReply, kAny, kAny,
     CacheState::Modified},
    {6, "fence-dec", MsgType::FenceAck, kAny, kAny, CacheState::Invalid},
}};

bool
guardHolds(Guard g, const DirEntry &e, const SpecMsg &m)
{
    uint16_t others = e.sharers & uint16_t(~(1u << m.requester));
    switch (g) {
      case Guard::Always: return true;
      case Guard::ReqIsOwner: return m.requester == e.owner;
      case Guard::ReqNotOwner: return m.requester != e.owner;
      case Guard::FromIsOwner: return m.from == e.owner;
      case Guard::FromNotOwner: return m.from != e.owner;
      case Guard::NoOtherSharer: return others == 0;
      case Guard::OtherSharers: return others != 0;
      case Guard::AcksRemain: return e.pendingAcks > 1;
      case Guard::LastAck: return e.pendingAcks == 1;
      case Guard::AnswersRecall:
        return m.from == e.owner &&
               !((e.staleOwed >> m.from) & 1u);
    }
    return false;
}

bool
rowMatches(const DirRule &r, const DirEntry &e, const SpecMsg &m)
{
    if (r.msg != m.type)
        return false;
    if (r.state != kAny && r.state != int8_t(e.state))
        return false;
    if (r.busy != kAny && bool(r.busy) != e.busy)
        return false;
    if (r.wait != kAny && r.wait != int8_t(e.wait))
        return false;
    return guardHolds(r.guard, e, m);
}

const DirRule *
matchDir(const DirEntry &e, const SpecMsg &m)
{
    for (const DirRule &r : kDirRules) {
        if (rowMatches(r, e, m))
            return &r;
    }
    return nullptr;
}

/** Controller::addSharer in miniature: exact sharer set, LimitedPtr
 *  pointer bookkeeping with the overflow trap spilling every resident
 *  pointer to software. */
void
addSharer(const SpecParams &p, Outcome &o, uint8_t node)
{
    uint16_t bit = uint16_t(1u << node);
    if (o.dir.sharers & bit)
        return;
    o.dir.sharers |= bit;
    if (p.scheme != DirScheme::LimitedPtr)
        return;
    uint8_t resident = uint8_t(o.dir.sharerCount() - o.dir.spilled);
    if (resident <= p.dirPointers)
        return;
    o.overflowTrap = true;
    o.dir.spilled = o.dir.sharerCount();
}

void
clearSharers(Outcome &o)
{
    o.dir.sharers = 0;
    o.dir.spilled = 0;
}

/** Controller::replyAndUnpend: the grant and the Unpend ride the same
 *  ordered path, reply first, so waiters drained by the Unpend can
 *  never overtake the grant. */
void
replyAndUnpend(Outcome &o, uint8_t requester, bool write, uint8_t home)
{
    SpecMsg reply;
    reply.type = write ? MsgType::WriteReply : MsgType::ReadReply;
    reply.from = home;
    reply.requester = requester;
    reply.fresh = o.memFresh;
    o.emit(requester, reply);
    SpecMsg unpend;
    unpend.type = MsgType::Unpend;
    unpend.from = home;
    o.emit(home, unpend);
}

/** Controller::completePending: finish the request parked while acks
 *  or data were collected. A read completion keeps the downgraded
 *  owner as a sharer (even when its copy raced away — the stale bit
 *  is harmless). */
void
completePending(const SpecParams &p, Outcome &o, uint8_t home)
{
    SpecMsg req = o.dir.pending;
    bool write = req.type == MsgType::WriteReq;
    uint8_t prev_owner = o.dir.owner;
    bool was_exclusive = o.dir.state == DirState::Exclusive;
    if (write) {
        o.dir.state = DirState::Exclusive;
        o.dir.owner = req.requester;
        clearSharers(o);
    } else {
        o.dir.state = DirState::Shared;
        clearSharers(o);
        if (was_exclusive)
            addSharer(p, o, prev_owner);
        addSharer(p, o, req.requester);
    }
    o.dir.wait = Wait::None;
    o.dir.pendingAcks = 0;
    replyAndUnpend(o, req.requester, write, home);
}

} // namespace

const std::array<DirRule, kNumDirRules> &
dirRules()
{
    return kDirRules;
}

const std::array<CacheRule, kNumCacheRules> &
cacheRules()
{
    return kCacheRules;
}

const char *
guardName(Guard g)
{
    static constexpr std::array<const char *, 10> names = {
        "always",        "req==owner",  "req!=owner",
        "from==owner",   "from!=owner", "no-other-sharer",
        "other-sharers", "acks>1",      "acks==1",
        "answers-recall"};
    return coh::enumName(names, size_t(g));
}

bool
isHomeMsg(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
      case MsgType::WriteReq:
      case MsgType::InvAck:
      case MsgType::WbData:
      case MsgType::WbEmpty:
      case MsgType::Unpend:
        return true;
      case MsgType::ReadReply:
      case MsgType::WriteReply:
      case MsgType::Inv:
      case MsgType::WbReq:
      case MsgType::FenceAck:
        return false;
    }
    return false;
}

Outcome
applyDir(const SpecParams &p, const DirEntry &e, const SpecMsg &msg,
         bool memFresh, uint8_t home)
{
    Outcome o;
    o.dir = e;
    o.memFresh = memFresh;
    SpecMsg m = msg;
    bool mutate_fired = false;
    bool again = true;
    while (again) {
        again = false;
        const DirRule *r = matchDir(o.dir, m);
        panicIfNot(r, "mc spec: no dir rule for ",
                   coh::msgTypeName(m.type), " in ",
                   coh::dirStateName(o.dir.state));
        o.matched = true;
        o.rule = r->id;
        o.firedRules |= 1u << r->id;
        if (p.mutateRule == int(r->id))
            mutate_fired = true;
        switch (r->id) {
          case 0:
          case 1:
            if (o.dir.numWaiting < kMaxNodes) {
                o.dir.waiting[o.dir.numWaiting++] = m;
                o.queued = true;
            } else {
                o.queueOverflow = true;
            }
            break;
          case 2:
          case 3:
            o.dir.state = DirState::Uncached;
            clearSharers(o);
            again = true;       // re-handle against the folded entry
            break;
          case 4:
            o.dir.busy = true;
            o.dir.state = DirState::Shared;
            clearSharers(o);
            addSharer(p, o, m.requester);
            replyAndUnpend(o, m.requester, false, home);
            break;
          case 5:
            o.dir.busy = true;
            o.dir.state = DirState::Exclusive;
            o.dir.owner = m.requester;
            clearSharers(o);
            replyAndUnpend(o, m.requester, true, home);
            break;
          case 6:
            o.dir.busy = true;
            addSharer(p, o, m.requester);
            replyAndUnpend(o, m.requester, false, home);
            break;
          case 7:
            o.dir.busy = true;
            o.dir.state = DirState::Exclusive;
            o.dir.owner = m.requester;
            clearSharers(o);
            replyAndUnpend(o, m.requester, true, home);
            break;
          case 8: {
            o.dir.busy = true;
            o.dir.wait = Wait::Acks;
            o.dir.pending = m;
            if (p.scheme == DirScheme::LimitedPtr && o.dir.spilled > 0)
                o.spillWalk = true;
            uint8_t acks = 0;
            for (uint8_t n = 0; n < kMaxNodes; ++n) {
                if (n == m.requester || !(o.dir.sharers & (1u << n)))
                    continue;
                SpecMsg inv;
                inv.type = MsgType::Inv;
                inv.from = home;
                inv.requester = m.requester;
                o.emit(n, inv);
                ++acks;
            }
            o.dir.pendingAcks = acks;
            break;
          }
          case 9:
          case 10: {
            o.dir.busy = true;
            o.dir.wait = Wait::Data;
            o.dir.pending = m;
            SpecMsg wbreq;
            wbreq.type = MsgType::WbReq;
            wbreq.from = home;
            wbreq.requester = m.requester;
            wbreq.isWrite = r->id == 10;
            o.emit(o.dir.owner, wbreq);
            break;
          }
          case 11:
            --o.dir.pendingAcks;
            break;
          case 12:
            o.dir.pendingAcks = 0;
            completePending(p, o, home);
            break;
          case 13:
            break;              // stale ack for a dropped copy
          case 14:
          case 15:
          case 16:
            o.memFresh = m.fresh;
            if (m.fenceAck) {
                SpecMsg ack;
                ack.type = MsgType::FenceAck;
                ack.from = home;
                o.emit(m.requester, ack);
            }
            if (r->id == 14) {
                // An unsolicited WbData (eviction or FLUSH racing
                // ahead of the WbReq) completes the recall, but the
                // owner's real answer — a WbEmpty, guaranteed by
                // home->owner FIFO to find no copy — is still in
                // flight: remember to discard it.
                if (!m.solicited)
                    o.dir.staleOwed |= uint8_t(1u << m.from);
                completePending(p, o, home);
            } else if (r->id == 15) {
                o.dir.state = DirState::Uncached;
                clearSharers(o);
            }
            break;
          case 17:
            completePending(p, o, home);
            break;
          case 18:
            // The stale answer owed by this node (if any) has now
            // arrived and is consumed here.
            o.dir.staleOwed &= uint8_t(~(1u << m.from));
            break;
          case 19:
            o.dir.busy = false;
            if (o.dir.numWaiting > 0) {
                m = o.dir.waiting[0];
                for (uint8_t i = 1; i < o.dir.numWaiting; ++i)
                    o.dir.waiting[i - 1] = o.dir.waiting[i];
                o.dir.waiting[--o.dir.numWaiting] = SpecMsg{};
                again = true;   // every grant path re-busies the
                                // line, so exactly one waiter runs
            }
            break;
        }
    }
    // Mutation gate: rotate the resulting directory state once if the
    // planted rule fired anywhere in this application.
    if (mutate_fired) {
        o.dir.state =
            DirState((size_t(o.dir.state) + 1) % coh::kNumDirStates);
    }
    return o;
}

Outcome
applyCache(const SpecParams &p, CacheState cs, bool fresh,
           const SpecMsg &msg, uint8_t self)
{
    (void)p;
    Outcome o;
    o.cache = cs;
    o.cacheFresh = fresh;
    for (const CacheRule &r : kCacheRules) {
        if (r.msg != msg.type)
            continue;
        if (r.state != kAny && r.state != int8_t(cs))
            continue;
        if (r.isWrite != kAny && bool(r.isWrite) != msg.isWrite)
            continue;
        o.matched = true;
        o.rule = r.id;
        o.firedRules |= 1u << r.id;
        switch (r.id) {
          case 0: {
            o.cache = CacheState::Invalid;
            o.cacheFresh = false;
            SpecMsg ack;
            ack.type = MsgType::InvAck;
            ack.from = self;
            ack.requester = msg.requester;
            o.emit(msg.from, ack);
            break;
          }
          case 1:
          case 2: {
            SpecMsg wb;
            wb.type = MsgType::WbData;
            wb.from = self;
            wb.requester = self;
            wb.fresh = fresh;
            wb.solicited = true; // answers the WbReq (impl: txn != 0)
            o.emit(msg.from, wb);
            o.cache = r.id == 1 ? CacheState::Invalid
                                : CacheState::Shared;
            o.cacheFresh = r.id == 1 ? false : fresh;
            break;
          }
          case 3: {
            // Keep whatever (non-Modified) state we have: the
            // controller only invalidates on the data path.
            o.cache = cs;
            o.cacheFresh = fresh;
            SpecMsg none;
            none.type = MsgType::WbEmpty;
            none.from = self;
            none.requester = msg.requester;
            o.emit(msg.from, none);
            break;
          }
          case 4:
          case 5:
            o.cache = r.id == 4 ? CacheState::Shared
                                : CacheState::Modified;
            o.cacheFresh = msg.fresh;
            break;
          case 6:
            o.cache = cs;
            o.cacheFresh = fresh;
            o.fenceDelta = -1;
            break;
        }
        return o;
    }
    panic("mc spec: no cache rule for ", coh::msgTypeName(msg.type),
          " in ", cacheStateName(cs));
}

const LegalTable &
legalDirTransitions()
{
    static const LegalTable table = [] {
        LegalTable t{};
        for (const DirRule &r : kDirRules) {
            if (!r.recordsMask)
                continue;
            for (size_t old_s = 0; old_s < coh::kNumDirStates;
                 ++old_s) {
                if (r.state != kAny && r.state != int8_t(old_s))
                    continue;
                t[old_s * coh::kNumMsgTypes + size_t(r.msg)] |=
                    r.recordsMask;
            }
        }
        return t;
    }();
    return table;
}

std::string
describeDirRule(uint8_t id)
{
    for (const DirRule &r : kDirRules) {
        if (r.id != id)
            continue;
        std::ostringstream os;
        os << "R" << int(r.id) << " " << r.name << ": "
           << coh::msgTypeName(r.msg) << " @ "
           << (r.state == kAny ? "*"
                               : coh::dirStateName(DirState(r.state)))
           << " busy="
           << (r.busy == kAny ? "*" : (r.busy ? "1" : "0")) << " wait="
           << (r.wait == kAny ? "*" : waitName(Wait(r.wait))) << " ["
           << guardName(r.guard) << "]";
        return os.str();
    }
    return "R? <unknown rule>";
}

} // namespace april::mc

/**
 * @file
 * Side-effect-free, table-driven specification of the directory
 * coherence protocol (DESIGN.md §7.9) — the object the model checker
 * explores and the live Controller is conformance-checked against.
 *
 * The spec re-states src/coherence/controller.cc as guarded rules
 *
 *     (directory state, message)  ->  (state', emitted messages)
 *     (cache state, message)      ->  (state', emitted messages)
 *
 * over ALL kNumMsgTypes message types and kNumDirStates directory
 * states, with no timing, no stats and no calls back into the
 * Controller. Everything here is a pure function of its inputs: the
 * explorer (explore.hh) applies rules to abstract states, and the
 * conformance bridge (conform.hh) derives the legal
 * (oldDirState, causeMsg) -> newDirState relation straight from the
 * same tables, so spec and checker cannot drift apart.
 *
 * Data is abstracted to a freshness bit: a copy (or memory) is fresh
 * iff it equals the globally last-written value. Writes make the
 * writer's copy fresh and memory stale; data-carrying messages carry
 * the freshness of what they were read from. "Reads return the last
 * write" then becomes the invariant that every cached copy is fresh.
 *
 * Directory-scheme coverage: under DirScheme::LimitedPtr the rules
 * additionally track the i-pointer bookkeeping (resident pointers,
 * software spill table, overflow trap, spill walk) exactly as the
 * Controller does; the sharer set itself is always exact in both
 * schemes, so FullMap and LimitedPtr share one rule table with the
 * spill actions gated on the scheme.
 */

#ifndef APRIL_MC_SPEC_HH
#define APRIL_MC_SPEC_HH

#include <array>
#include <cstdint>
#include <string>

#include "coherence/protocol.hh"

namespace april::mc
{

using coh::DirScheme;
using coh::DirState;
using coh::MsgType;

/** Nodes the abstract machine supports (explorer configs use 2-4). */
inline constexpr uint32_t kMaxNodes = 4;

/** What an in-progress home transaction is waiting on (mirrors
 *  Controller::DirEntry::Wait). */
enum class Wait : uint8_t { None, Acks, Data };

inline constexpr size_t kNumWaits = size_t(Wait::Data) + 1;

inline const char *
waitName(Wait w)
{
    static constexpr std::array<const char *, kNumWaits> names = {
        "None", "Acks", "Data"};
    return coh::enumName(names, size_t(w));
}

/** Cache-side stable states of the one modeled line. */
enum class CacheState : uint8_t { Invalid, Shared, Modified };

inline constexpr size_t kNumCacheStates =
    size_t(CacheState::Modified) + 1;

inline const char *
cacheStateName(CacheState s)
{
    static constexpr std::array<const char *, kNumCacheStates> names = {
        "Invalid", "Shared", "Modified"};
    return coh::enumName(names, size_t(s));
}

/** One abstract protocol message (coh::Message minus addresses,
 *  transaction ids and payload words). */
struct SpecMsg
{
    MsgType type = MsgType::ReadReq;
    uint8_t from = 0;
    uint8_t requester = 0;
    bool isWrite = false;       ///< WbReq: invalidate the owner too
    bool fenceAck = false;      ///< WbData: FLUSH-caused, ack it
    bool fresh = false;         ///< data payload == last written value
    /// WbData only: true when the writeback answers an outstanding
    /// recall (the cache-side WbReq handler sent it), false for a
    /// spontaneous eviction or FLUSH. The abstraction of the
    /// Controller's txn field (solicited WbData carries the recall's
    /// transaction id, eviction WbData carries 0).
    bool solicited = false;

    bool operator==(const SpecMsg &) const = default;
};

/** Abstract home-directory entry: the protocol-visible fields of
 *  Controller::DirEntry (sharers as a bitmask, no timing). */
struct DirEntry
{
    DirState state = DirState::Uncached;
    bool busy = false;
    Wait wait = Wait::None;
    uint8_t owner = 0;
    uint8_t pendingAcks = 0;
    SpecMsg pending;            ///< request being completed
    uint16_t sharers = 0;       ///< bitmask over nodes
    uint8_t spilled = 0;        ///< LimitedPtr: sharers in software
    /// Bit n: node n still owes the answer to a recall that was
    /// already completed by that node's own eviction WbData racing
    /// ahead — the next WbEmpty from n is that stale answer and must
    /// not complete a LATER recall (the Controller gets the same
    /// effect exactly from its msg.txn == pendingReq.txn check; the
    /// spec cannot carry unbounded transaction ids, and per-route
    /// FIFO guarantees at most one such answer is outstanding per
    /// node, so one bit per node captures it).
    uint8_t staleOwed = 0;
    uint8_t numWaiting = 0;
    std::array<SpecMsg, kMaxNodes> waiting; ///< FIFO, front at [0]

    bool operator==(const DirEntry &) const = default;

    uint8_t sharerCount() const
    {
        uint8_t n = 0;
        for (uint16_t m = sharers; m; m &= m - 1)
            ++n;
        return n;
    }
};

/** Spec configuration (the architectural knobs of ControllerParams). */
struct SpecParams
{
    DirScheme scheme = DirScheme::FullMap;
    uint32_t dirPointers = 4;   ///< LimitedPtr hardware pointers
    /// Mutation gate (CI checker-checks-itself): when >= 0, the dir
    /// rule with this id has its resulting directory state rotated by
    /// one (Uncached -> Shared -> Exclusive -> Uncached) after every
    /// firing, planting a protocol bug the explorer must catch.
    int mutateRule = -1;
};

/** One message to transmit, produced by a rule application. */
struct Emit
{
    uint8_t to = 0;
    SpecMsg msg;
};

/// Worst-case emissions of one rule application: N-1 invalidations
/// plus a reply, an Unpend and a FenceAck.
inline constexpr size_t kMaxEmits = kMaxNodes + 3;

/** Result of applying one message to the directory or a cache. */
struct Outcome
{
    bool matched = false;       ///< some rule consumed the message
    DirEntry dir;               ///< next directory entry
    CacheState cache = CacheState::Invalid; ///< next cache state
    bool cacheFresh = false;    ///< next cache-copy freshness
    bool memFresh = false;      ///< next memory freshness
    int8_t fenceDelta = 0;      ///< FenceAck: -1 at the flusher
    uint8_t numEmits = 0;
    std::array<Emit, kMaxEmits> emits;
    uint8_t rule = 0xff;        ///< id of the rule that fired (last,
                                ///< for fold-then-grant applications)
    uint32_t firedRules = 0;    ///< bitmask of every rule id fired
    bool overflowTrap = false;  ///< LimitedPtr pointer spill ran
    bool spillWalk = false;     ///< LimitedPtr spill-table walk ran
    bool queued = false;        ///< request parked behind a busy line
    bool queueOverflow = false; ///< waiting queue had no slot

    void
    emit(uint8_t to, const SpecMsg &m)
    {
        emits[numEmits++] = {to, m};
    }
};

// ---------------------------------------------------------------------
// The rule tables
// ---------------------------------------------------------------------

/** Match-any wildcard for the busy/wait/state rule columns. */
inline constexpr int8_t kAny = -1;

/** Extra guards a rule row can require beyond (state, busy, wait). */
enum class Guard : uint8_t
{
    Always,
    ReqIsOwner,     ///< msg.requester == entry owner
    ReqNotOwner,
    FromIsOwner,    ///< msg.from == entry owner
    FromNotOwner,
    NoOtherSharer,  ///< sharers \ {requester} empty
    OtherSharers,
    AcksRemain,     ///< pendingAcks > 1
    LastAck,        ///< pendingAcks == 1
    /// msg.from == owner AND that node does not owe a stale recall
    /// answer (DirEntry::staleOwed): the WbEmpty answers the CURRENT
    /// outstanding recall, not an earlier, already-settled one to the
    /// same (re-granted) owner — the Controller checks msg.txn ==
    /// pendingReq.txn for the same effect. Without it a stale WbEmpty
    /// can complete a later recall and hand out a second Modified
    /// copy — the first bug april-mc found.
    AnswersRecall,
};

const char *guardName(Guard g);

/** One row of the home-directory FSM. */
struct DirRule
{
    uint8_t id;
    const char *name;
    MsgType msg;
    int8_t state;       ///< DirState or kAny
    int8_t busy;        ///< 0 / 1 / kAny
    int8_t wait;        ///< Wait or kAny
    Guard guard;
    /// Directory states this rule records transitions INTO (bit i =
    /// DirState i), per recordTransition in the Controller; 0 for
    /// rules that perform no recorded transition. The fold rules
    /// (owner re-request) record Exclusive -> Uncached and then the
    /// grant's transition; their mask lists only the fold target —
    /// the re-handled grant is covered by the Uncached rows.
    uint8_t recordsMask;
};

/// Home-side rule count (see kDirRules in spec.cc).
inline constexpr size_t kNumDirRules = 20;

/// Cache-side rule count (see kCacheRules in spec.cc).
inline constexpr size_t kNumCacheRules = 7;

const std::array<DirRule, kNumDirRules> &dirRules();

/** One row of the cache-side FSM. */
struct CacheRule
{
    uint8_t id;
    const char *name;
    MsgType msg;
    int8_t state;       ///< CacheState or kAny
    int8_t isWrite;     ///< WbReq recall flavor, or kAny
    CacheState next;
};

const std::array<CacheRule, kNumCacheRules> &cacheRules();

/** Message types the home-directory side of a controller consumes. */
bool isHomeMsg(MsgType t);

// ---------------------------------------------------------------------
// Rule application (pure)
// ---------------------------------------------------------------------

/**
 * Apply @p msg to home-directory entry @p e. @p memFresh is the
 * freshness of the home memory copy on entry; the outcome carries its
 * possibly-updated value and every emitted message (replies sample
 * the post-update memory freshness, exactly like the Controller
 * reading memory after a writeback). @p home is the home node id (the
 * Unpend self-send destination).
 *
 * Unpend applications drain the waiting queue exactly like
 * Controller::drainWaiting: the front waiter is re-handled in place
 * (every grant path re-busies the line, so at most one waiter runs).
 */
Outcome applyDir(const SpecParams &p, const DirEntry &e,
                 const SpecMsg &msg, bool memFresh, uint8_t home);

/**
 * Apply @p msg to a cache in state @p cs holding a copy of freshness
 * @p fresh on node @p self. FenceAck yields fenceDelta = -1.
 */
Outcome applyCache(const SpecParams &p, CacheState cs, bool fresh,
                   const SpecMsg &msg, uint8_t self);

// ---------------------------------------------------------------------
// Conformance relation (derived from the tables)
// ---------------------------------------------------------------------

/**
 * The legal recorded-transition relation: bit N of
 * legalDirTransitions()[old * kNumMsgTypes + msg] is set iff some
 * rule matching (old, msg) records a transition into DirState N.
 * Built by folding DirRule::recordsMask over the table — the live
 * Controller's per-transition census is asserted against exactly
 * this array (mc::Conformance).
 */
using LegalTable =
    std::array<uint8_t, coh::kNumDirStates * coh::kNumMsgTypes>;

const LegalTable &legalDirTransitions();

/** @return true iff (old, cause) -> next is a spec-legal recorded
 *  directory transition. */
inline bool
legalDirTransition(DirState old_s, MsgType cause, DirState next_s)
{
    return legalDirTransitions()[size_t(old_s) * coh::kNumMsgTypes +
                                 size_t(cause)] >>
               size_t(next_s) &
           1;
}

/** Human-readable one-line description of rule @p id (april-mc
 *  --list-rules and mutation-gate reports). */
std::string describeDirRule(uint8_t id);

// ---------------------------------------------------------------------
// Build-time coverage: adding a MsgType without a rule fails here
// ---------------------------------------------------------------------

/** Message types with at least one home- or cache-side rule row.
 *  Defined constexpr in spec.cc and static_asserted to cover all
 *  kNumMsgTypes (ISSUE 9 satellite: the name tables, the census
 *  index space and the rule tables stay tied together). */
constexpr size_t kSpecCoveredMsgTypes = 11;
static_assert(coh::kNumMsgTypes == kSpecCoveredMsgTypes,
              "MsgType changed: add matching rule rows to "
              "src/mc/spec.cc (kDirRules/kCacheRules) and update "
              "kSpecCoveredMsgTypes");
static_assert(coh::kNumDirStates == 3,
              "DirState changed: rewrite the DirRule table rows and "
              "recordsMask bit positions in src/mc/spec.cc");

} // namespace april::mc

#endif // APRIL_MC_SPEC_HH

/**
 * @file
 * Distributed, globally shared memory with full/empty bits.
 *
 * ALEWIFE distributes main memory with the processing nodes (Figure 1)
 * while presenting one global word-addressed space. Every word carries
 * a full/empty synchronization bit (Section 3.3). The home node of a
 * word is determined by its address (contiguous per-node segments).
 *
 * This class is purely functional state — timing (cache hits, network
 * latency, directory protocol) is layered on top by the cache,
 * coherence and machine modules.
 */

#ifndef APRIL_MEM_MEMORY_HH
#define APRIL_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "isa/types.hh"

namespace april
{

/** Sizing parameters of the distributed shared memory. */
struct MemoryParams
{
    uint32_t numNodes = 1;
    uint32_t wordsPerNode = 1u << 22;   ///< 4M words (16 MB) per node
};

/** The global shared-memory image. */
class SharedMemory
{
  public:
    explicit SharedMemory(const MemoryParams &params)
        : _params(params),
          words(size_t(params.numNodes) * params.wordsPerNode)
    {
        if (params.numNodes == 0 || params.wordsPerNode == 0)
            fatal("SharedMemory: zero-sized configuration");
    }

    uint32_t numNodes() const { return _params.numNodes; }
    uint32_t wordsPerNode() const { return _params.wordsPerNode; }
    Addr sizeWords() const { return Addr(words.size()); }

    /** @return the node whose local memory holds word @p a. */
    uint32_t
    homeNode(Addr a) const
    {
        return checkAddr(a) / _params.wordsPerNode;
    }

    /** @return the first word address homed on node @p n. */
    Addr
    nodeBase(uint32_t n) const
    {
        if (n >= _params.numNodes)
            panic("nodeBase: bad node ", n);
        return Addr(n) * _params.wordsPerNode;
    }

    /** Mutable access to a word (data + f/e bit). */
    MemWord &
    word(Addr a)
    {
        return words[checkAddr(a)];
    }

    const MemWord &
    word(Addr a) const
    {
        return words[checkAddr(a)];
    }

    // Convenience accessors used by the runtime and by tests.

    Word read(Addr a) const { return word(a).data; }

    void
    write(Addr a, Word v)
    {
        MemWord &w = word(a);
        w.data = v;
    }

    bool isFull(Addr a) const { return word(a).full; }
    void setFull(Addr a, bool full) { word(a).full = full; }

    /** Write data and f/e state together (producer-style store). */
    void
    writeFe(Addr a, Word v, bool full)
    {
        MemWord &w = word(a);
        w.data = v;
        w.full = full;
    }

  private:
    Addr
    checkAddr(Addr a) const
    {
        if (a >= words.size())
            panic("shared-memory access out of range: addr=", a,
                  " size=", words.size());
        return a;
    }

    MemoryParams _params;
    std::vector<MemWord> words;
};

} // namespace april

#endif // APRIL_MEM_MEMORY_HH

#include "model/scalability.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace april::model
{

ModelParams
ModelParams::forSimMesh(unsigned nodes)
{
    unsigned radix = 0;
    while (radix * radix < nodes)
        ++radix;
    if (radix * radix != nodes || nodes == 0)
        fatal("forSimMesh: ", nodes, " nodes is not a square 2-D mesh");

    ModelParams p;                  // Table 4 calibrations
    p.netDim = 2;
    p.netRadix = int(radix);
    // The simulator's timing: 1-cycle switch traversals, 10-cycle
    // local DRAM, 2-cycle controller occupancy, and packets averaging
    // (reqFlits + dataFlits) / 2 = 4 flits — a request out, a data
    // reply back.
    p.hopCycles = 1;
    p.memLatency = 10;
    p.controllerCycles = 2;
    p.packetSize = 4;
    return p;
}

ScalabilityModel::ScalabilityModel(const ModelParams &params)
    : _params(params)
{
    if (params.fixedMissRate <= 0 || params.cacheBytes <= 0 ||
        params.netDim <= 0 || params.netRadix <= 0) {
        fatal("ScalabilityModel: non-positive parameter");
    }
}

double
ScalabilityModel::cacheBlocks() const
{
    return _params.cacheBytes / _params.blockBytes;
}

double
ScalabilityModel::avgHops() const
{
    // "the average number of hops between a random pair of nodes is
    // nk/3 = 20" (Section 8).
    return double(_params.netDim) * double(_params.netRadix) / 3.0;
}

double
ScalabilityModel::baseLatency() const
{
    // Round trip: request + response each traverse avgHops switches,
    // the home memory takes memLatency, and a B-flit packet needs
    // B-1 extra cycles to drain; the controller adds fixed occupancy.
    return 2.0 * avgHops() * _params.hopCycles + _params.memLatency +
           (_params.packetSize - 1.0) + _params.controllerCycles;
}

double
ScalabilityModel::nodeCapacity() const
{
    // 2n unidirectional channels per node, one flit per cycle each.
    return 2.0 * double(_params.netDim);
}

double
ScalabilityModel::missRate(double p) const
{
    if (p < 1)
        p = 1;
    double s = cacheBlocks();
    double w = _params.workingSetBlocks;
    // Linear-in-p interference (the first-order component the paper
    // describes). Past cache capacity (p W > S) the combined working
    // sets thrash and interference blows up quadratically with the
    // overcommit ratio.
    double interference = _params.missBeta * (p - 1.0) * (w / s);
    double occupancy = p * w / s;
    if (occupancy > 1.0)
        interference *= occupancy * occupancy;
    return _params.fixedMissRate + interference;
}

double
ScalabilityModel::loadedLatency(double rho) const
{
    rho = std::clamp(rho, 0.0, _params.rhoMax);
    return baseLatency() *
           (1.0 + _params.contentionChi * rho / (1.0 - rho));
}

ModelPoint
ScalabilityModel::evalWith(double p, double m, bool contended,
                           double c) const
{
    // Fixed point between utilization and network contention: a more
    // utilized processor misses more often per cycle, loading the
    // network, which raises T, which lowers utilization.
    double u = 0.5;
    double rho = 0.0;
    double t = baseLatency();
    for (int iter = 0; iter < 200; ++iter) {
        // Channel load: misses/cycle x flit-hops per miss, divided by
        // per-node capacity (2 packets of B flits over avgHops each).
        double flit_hops = 2.0 * _params.packetSize * avgHops();
        double want_rho = contended
            ? std::min(_params.rhoMax, u * m * flit_hops / nodeCapacity())
            : 0.0;
        rho = 0.5 * rho + 0.5 * want_rho;   // damped
        t = loadedLatency(rho);

        double pstar = (1.0 + t * m) / (1.0 + c * m);
        double want_u = p < pstar ? p / (1.0 + t * m)
                                  : 1.0 / (1.0 + c * m);
        // Bandwidth ceiling: the network cannot deliver more than
        // rhoMax of its capacity, bounding the sustainable miss rate.
        double flit_hops_pm = 2.0 * _params.packetSize * avgHops();
        double u_bw = _params.rhoMax * nodeCapacity() / (m * flit_hops_pm);
        want_u = std::min(want_u, u_bw);

        if (std::abs(want_u - u) < 1e-9) {
            u = want_u;
            break;
        }
        u = 0.5 * u + 0.5 * want_u;
    }

    ModelPoint pt;
    pt.utilization = std::min(1.0, u);
    pt.missRate = m;
    pt.latency = t;
    pt.channelRho = rho;
    pt.saturated = p >= (1.0 + t * m) / (1.0 + c * m);
    double u_bw =
        _params.rhoMax * nodeCapacity() / (m * 2.0 * _params.packetSize *
                                           avgHops());
    pt.bandwidthBound = pt.utilization >= u_bw - 1e-9;
    return pt;
}

ModelPoint
ScalabilityModel::evaluate(double p) const
{
    return evalWith(p, missRate(p), true, _params.switchOverhead);
}

double
ScalabilityModel::utilizationNoSwitch(double p) const
{
    return evalWith(p, missRate(p), true, 0.0).utilization;
}

double
ScalabilityModel::utilizationFixedCache(double p) const
{
    return evalWith(p, missRate(1), true, 0.0).utilization;
}

double
ScalabilityModel::utilizationIdeal(double p) const
{
    // "both the cache miss rate and network contention correspond to
    // that of a single process, and do not increase with the degree
    // of multithreading" (Section 8, the Ideal curve).
    return evalWith(p, missRate(1), false, 0.0).utilization;
}

double
ScalabilityModel::utilizationMeasured(double p, double m, double t,
                                      double c)
{
    if (p < 1 || m < 0 || t < 0 || c < 0)
        fatal("utilizationMeasured: bad arguments");
    double pstar = (1.0 + t * m) / (1.0 + c * m);
    double u = p < pstar ? p / (1.0 + t * m) : 1.0 / (1.0 + c * m);
    return std::min(1.0, u);
}

double
ScalabilityModel::systemPower(double p, double processors) const
{
    return processors * utilization(p);
}

} // namespace april::model

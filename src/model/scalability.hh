/**
 * @file
 * The Section 8 analytical model of multithreaded-processor
 * utilization (Equation 1):
 *
 *              /  p / (1 + T(p) m(p))          p <  p*
 *      U(p) = <
 *              \  1 / (1 + C m(p))             p >= p*
 *
 *      with p* = (1 + T(p) m(p)) / (1 + C m(p)),
 *
 * where m(p) is the cache miss rate with p resident threads, T(p) the
 * round-trip network latency under load, and C the context-switch
 * overhead. Below p* the processor cannot fully overlap network
 * latency; above it utilization is limited by the switch overhead
 * paid per miss — and by the network's bandwidth, which caps the rate
 * at which misses can be serviced at all.
 *
 * The paper summarizes (the details are in MIT VLSI Memo 89-566,
 * which is not in the paper): both m and T are "the sum of two
 * components: one component independent of the number of threads p
 * and the other linearly related to p (to first order)". We
 * reconstruct concrete forms with exactly those properties:
 *
 *   m(p) = m0 + beta (p-1) W/S        fixed + per-thread cache
 *                                     interference (working set W
 *                                     blocks in an S-block cache),
 *                                     inflated as occupancy p W / S
 *                                     approaches capacity;
 *   T(p) = T(1) (1 + chi rho/(1-rho)) queueing contention on channel
 *                                     utilization rho, which is
 *                                     itself proportional to U m(p)
 *                                     (a fixed point, solved
 *                                     iteratively);
 *   T(1) = 2 h hop + M + (B-1) + ctl  unloaded round trip over the
 *                                     average h = n k / 3 hops of a
 *                                     k-ary n-cube, with memory
 *                                     latency M and packet size B.
 *
 * Calibration anchors from the paper: T(1) = 55 cycles for the
 * Table 4 machine; U(1) = 1/(1 + m(1) T(1)) ~ 0.48; and ~80%
 * utilization with 3 resident threads at C = 10.
 */

#ifndef APRIL_MODEL_SCALABILITY_HH
#define APRIL_MODEL_SCALABILITY_HH

namespace april::model
{

/** Machine parameters (defaults are the paper's Table 4). */
struct ModelParams
{
    /**
     * Table 4 re-derived for the simulated ALEWIFE machine at scale
     * (DESIGN.md §7.8): a 2-D mesh of @p nodes (radix sqrt(nodes),
     * which must be a perfect square) with the simulator's per-hop
     * switch delay, local memory latency, controller occupancy and
     * mean packet size, so T(1)'s hop term 2 h k/3 tracks the mesh
     * the machine actually routes over. Cache-interference and
     * contention calibrations keep their Table 4 values.
     */
    static ModelParams forSimMesh(unsigned nodes);

    double memLatency = 10;         ///< cycles
    int netDim = 3;                 ///< network dimension n
    int netRadix = 20;              ///< network radix k
    double fixedMissRate = 0.02;    ///< first-time + coherence misses
    double packetSize = 4;          ///< average packet size (flits)
    double blockBytes = 16;         ///< cache block size
    double workingSetBlocks = 250;  ///< per-thread working set W
    double cacheBytes = 64 * 1024;  ///< cache size (S blocks derived)
    double switchOverhead = 10;     ///< C, cycles per context switch
    double hopCycles = 1;           ///< per-hop switch delay
    double controllerCycles = 2;    ///< controller occupancy per miss
    double missBeta = 0.04;         ///< interference slope calibration
    double contentionChi = 0.30;    ///< queueing-delay calibration
    double rhoMax = 0.95;           ///< usable fraction of bandwidth
};

/** Breakdown of one evaluation of the model. */
struct ModelPoint
{
    double utilization = 0;     ///< U(p), the full model
    double missRate = 0;        ///< m(p)
    double latency = 0;         ///< T(p) at the fixed point
    double channelRho = 0;      ///< network channel utilization
    bool saturated = false;     ///< in the switch-limited regime
    bool bandwidthBound = false;///< clipped by network bandwidth
};

/** Evaluator for U(p) and the Figure 5 decomposition. */
class ScalabilityModel
{
  public:
    explicit ScalabilityModel(const ModelParams &params = {});

    /** Cache blocks S. */
    double cacheBlocks() const;
    /** Average hop count n k / 3 (paper Section 8). */
    double avgHops() const;
    /** Unloaded round-trip latency T(1); 55 for Table 4 params. */
    double baseLatency() const;
    /** Per-node network capacity in flit-hops per cycle (2n links). */
    double nodeCapacity() const;

    /** Miss rate m(p). */
    double missRate(double p) const;
    /** Loaded latency T given channel utilization rho. */
    double loadedLatency(double rho) const;

    /** Full model evaluation at integer/real p >= 1. */
    ModelPoint evaluate(double p) const;

    /** U(p), the "Useful Work" curve. */
    double utilization(double p) const { return evaluate(p).utilization; }

    /**
     * Equation 1 in closed form with *measured* inputs: miss rate m
     * per useful cycle, remote latency T in cycles and switch cost C
     * in cycles, as reported by the cycle accountant (§7.5) and the
     * coherence controllers' remoteLatency histogram. No contention
     * fixed point, no bandwidth cap — those are already folded into
     * the measured T. Used to cross-check the simulator's measured
     * useful-cycle fraction against the analytical curve (X6).
     */
    static double utilizationMeasured(double p, double m, double t,
                                      double c);

    // --- Figure 5 decomposition ----------------------------------------

    /** No switch overhead (C = 0): the "CS Overhead" boundary. */
    double utilizationNoSwitch(double p) const;
    /** C = 0 and m pinned at m(1): the "Cache Effects" boundary. */
    double utilizationFixedCache(double p) const;
    /** C = 0, m(1), T(1): the "Ideal" curve. */
    double utilizationIdeal(double p) const;

    /** System power = processors x utilization (Section 8). */
    double systemPower(double p, double processors) const;

    const ModelParams &params() const { return _params; }

  private:
    /** Equation 1 with explicit m, T, C plus the bandwidth cap. */
    ModelPoint evalWith(double p, double m, bool contended,
                        double c) const;

    ModelParams _params;
};

} // namespace april::model

#endif // APRIL_MODEL_SCALABILITY_HH

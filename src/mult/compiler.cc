#include "mult/compiler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/runtime.hh"

namespace april::mult
{

using reg::sp;
using tagged::fixnum;

void
Compiler::loadSlot(uint8_t rd, int slot)
{
    // Compiled code uses the trap-on-miss flavors: "a context switch
    // occurs whenever the network must be used" (Section 2.1). Frame
    // slots are almost always cache-resident, so this costs nothing
    // sequentially and buys latency tolerance when a continuation's
    // stack is remote.
    as.ldnt(rd, sp, wordOff(slot));
}

void
Compiler::storeSlot(uint8_t rs, int slot)
{
    as.stnt(rs, sp, wordOff(slot));
}

void
Compiler::emitCheck(uint8_t r)
{
    // Encore Multimax software future detection (Section 3.2): test
    // the operand's low bit; call the run-time touch on a hit. The
    // scratch must not alias any checkable register (r may be CHK).
    as.andiR(TST, r, 1);
    auto ok = as.fresh("chk");
    as.jRaw(Cond::EQ, ok);
    as.nop();
    as.mov(reg::a(0), r);
    as.call(rt::sym::touchSw);
    as.mov(r, reg::a(0));
    as.bind(ok);
}

void
Compiler::emitTouch(uint8_t r)
{
    if (opts.softwareChecks) {
        emitCheck(r);
    } else {
        // On APRIL a strict no-op is a free hardware touch: it traps
        // to the resolving handler if (and only if) r holds a future.
        Instruction i;
        i.op = Opcode::ADD;
        i.rd = r;
        i.rs1 = r;
        i.imm = 0;
        i.useImm = true;
        i.strict = true;
        as.push(i);
    }
}

void
Compiler::emitBranchIfFalse(const std::string &target)
{
    // Falsity follows T: both #f and () are false.
    as.cmpiR(ACC, int32_t(tagged::FALSE));
    as.jRaw(Cond::EQ, target);
    as.nop();
    as.cmpiR(ACC, int32_t(tagged::NIL));
    as.jRaw(Cond::EQ, target);
    as.nop();
}

void
Compiler::emitBoolFromCond(Cond cond)
{
    auto yes = as.fresh("bt");
    auto end = as.fresh("bend");
    as.jRaw(cond, yes);
    as.nop();
    as.movi(ACC, tagged::FALSE);
    as.j(Cond::AL, end);
    as.bind(yes);
    as.movi(ACC, tagged::TRUE);
    as.bind(end);
}

void
Compiler::compileBinaryOperands(const Sexp &e, FnCtx &ctx)
{
    if (e.size() != 3)
        fatal("mult: ", e[0].sym, " expects 2 operands: ", e.str());
    int t = ctx.pushTemp();
    compileExpr(e[1], ctx);
    storeSlot(ACC, t);
    compileExpr(e[2], ctx);
    loadSlot(OP2, t);
    ctx.popTemp();
}

void
Compiler::compileFold(Opcode op, const Sexp &e, FnCtx &ctx)
{
    if (e.size() < 2)
        fatal("mult: ", e[0].sym, " needs operands");
    compileExpr(e[1], ctx);
    for (size_t i = 2; i < e.size(); ++i) {
        int t = ctx.pushTemp();
        storeSlot(ACC, t);
        compileExpr(e[i], ctx);
        loadSlot(OP2, t);
        ctx.popTemp();
        if (opts.softwareChecks) {
            emitCheck(OP2);
            emitCheck(ACC);
        }
        Instruction inst;
        inst.op = op;
        inst.rd = ACC;
        inst.rs1 = OP2;
        inst.rs2 = ACC;
        inst.strict = !opts.softwareChecks;
        as.push(inst);
    }
}

void
Compiler::compileCompare(Cond cond, const Sexp &e, FnCtx &ctx)
{
    compileBinaryOperands(e, ctx);
    if (opts.softwareChecks) {
        emitCheck(OP2);
        emitCheck(ACC);
        as.cmpR(OP2, ACC);
    } else {
        as.cmp(OP2, ACC);
    }
    emitBoolFromCond(cond);
}

void
Compiler::compileIf(const Sexp &e, FnCtx &ctx)
{
    if (e.size() != 3 && e.size() != 4)
        fatal("mult: bad if: ", e.str());
    auto l_else = as.fresh("else");
    auto l_end = as.fresh("endif");
    compileExpr(e[1], ctx);
    emitTouch(ACC);
    emitBranchIfFalse(l_else);
    compileExpr(e[2], ctx);
    as.j(Cond::AL, l_end);
    as.bind(l_else);
    if (e.size() == 4)
        compileExpr(e[3], ctx);
    else
        as.movi(ACC, tagged::NIL);
    as.bind(l_end);
}

void
Compiler::compileLet(const Sexp &e, FnCtx &ctx)
{
    if (e.size() < 3 || !e[1].isList())
        fatal("mult: bad let: ", e.str());

    int save_slot = ctx.nextSlot;
    std::map<std::string, int> scope;
    // Evaluate all initializers in the outer scope first (let, not
    // let*), each into its own fresh slot.
    for (const Sexp &binding : e[1].items) {
        if (!binding.isList() || binding.size() != 2 ||
            !binding[0].isSymbol()) {
            fatal("mult: bad let binding in ", e.str());
        }
        int slot = ctx.pushTemp();
        compileExpr(binding[1], ctx);
        storeSlot(ACC, slot);
        scope[binding[0].sym] = slot;
    }
    ctx.scopes.push_back(std::move(scope));
    for (size_t i = 2; i < e.size(); ++i)
        compileExpr(e[i], ctx);
    ctx.scopes.pop_back();
    ctx.nextSlot = save_slot;
}

void
Compiler::compileCall(const std::string &fn, const Sexp &e, size_t first,
                      FnCtx &ctx)
{
    auto it = functions.find(fn);
    if (it == functions.end())
        fatal("mult: call to unknown function '", fn, "' in ", e.str());
    size_t argc = e.size() - first;
    if (argc != it->second.arity) {
        fatal("mult: ", fn, " expects ", it->second.arity,
              " arguments, got ", argc, " in ", e.str());
    }
    if (argc > reg::numArgRegs)
        fatal("mult: too many arguments in ", e.str());

    std::vector<int> temps;
    for (size_t i = 0; i < argc; ++i) {
        int t = ctx.pushTemp();
        compileExpr(e[first + i], ctx);
        storeSlot(ACC, t);
        temps.push_back(t);
    }
    for (size_t i = 0; i < argc; ++i)
        loadSlot(reg::a(unsigned(i)), temps[i]);

    ctx.framePatches.push_back(as.here());
    as.addiR(sp, sp, 0);                    // patched: + frame size
    as.call(it->second.label);
    ctx.framePatches.push_back(as.here());
    as.subiR(sp, sp, 0);                    // patched: - frame size
    as.mov(ACC, reg::a(0));
    ctx.popTemp(int(argc));
}

void
Compiler::freeVars(const Sexp &e, FnCtx &ctx,
                   std::vector<std::string> &out) const
{
    struct Walker
    {
        FnCtx &ctx;
        std::vector<std::string> &out;
        std::vector<std::string> shadow;

        bool
        shadowed(const std::string &s) const
        {
            return std::find(shadow.begin(), shadow.end(), s) !=
                   shadow.end();
        }

        void
        walk(const Sexp &e)
        {
            if (e.isSymbol()) {
                const std::string &s = e.sym;
                if (s == "true" || s == "false" || s == "nil")
                    return;
                if (shadowed(s) || !ctx.lookup(s))
                    return;
                if (std::find(out.begin(), out.end(), s) == out.end())
                    out.push_back(s);
                return;
            }
            if (!e.isList() || e.size() == 0)
                return;
            if (e[0].isSymbol("let") && e.size() >= 3 && e[1].isList()) {
                size_t added = 0;
                for (const Sexp &b : e[1].items) {
                    if (b.isList() && b.size() == 2)
                        walk(b[1]);
                }
                for (const Sexp &b : e[1].items) {
                    if (b.isList() && b.size() == 2 && b[0].isSymbol()) {
                        shadow.push_back(b[0].sym);
                        ++added;
                    }
                }
                for (size_t i = 2; i < e.size(); ++i)
                    walk(e[i]);
                shadow.resize(shadow.size() - added);
                return;
            }
            // Operator position of a call is a function name, never a
            // frame variable (first-order language): skip index 0 for
            // plain calls, but walk everything for special forms whose
            // head is not a binding construct.
            size_t start = e[0].isSymbol() ? 1 : 0;
            for (size_t i = start; i < e.size(); ++i)
                walk(e[i]);
        }
    };

    Walker w{ctx, out, {}};
    w.walk(e);
}

void
Compiler::compileFuture(const Sexp &e, FnCtx &ctx)
{
    if (e.size() != 2)
        fatal("mult: bad future: ", e.str());
    const Sexp &body = e[1];

    if (opts.futures == CompileOptions::FutureMode::Erase) {
        compileExpr(body, ctx);
        return;
    }

    // Decide the task's function and arguments: a direct call with
    // trivial arguments is used as-is; anything else is lambda-lifted
    // into a fresh top-level function over its free variables.
    std::string fn;
    std::vector<Sexp> args;
    bool direct = body.isList() && body.size() >= 1 &&
        body[0].isSymbol() && functions.count(body[0].sym) &&
        !ctx.lookup(body[0].sym);
    if (direct) {
        for (size_t i = 1; i < body.size() && direct; ++i) {
            const Sexp &a = body[i];
            bool trivial = a.isInteger() ||
                (a.isSymbol() && (ctx.lookup(a.sym) || a.sym == "true" ||
                                  a.sym == "false" || a.sym == "nil"));
            direct = trivial;
        }
    }
    if (direct) {
        fn = body[0].sym;
        args.assign(body.items.begin() + 1, body.items.end());
    } else {
        std::vector<std::string> fv;
        freeVars(body, ctx, fv);
        fn = "fut$" + std::to_string(liftCounter++);
        functions[fn] = {userLabel(fn), unsigned(fv.size())};
        pendingLifts.push_back({fn, fv, body});
        for (const std::string &v : fv)
            args.push_back(Sexp::symbol(v));
    }

    Sexp call_form;
    call_form.items.push_back(Sexp::symbol(fn));
    for (const Sexp &a : args)
        call_form.items.push_back(a);

    if (opts.futures == CompileOptions::FutureMode::Eager) {
        // Normal task creation: make a future, package a task, enqueue.
        if (args.size() > 4) {
            fatal("mult: eager future body needs ", args.size(),
                  " arguments (max 4): ", body.str());
        }
        int s = ctx.pushTemp();
        std::vector<int> temps;
        for (const Sexp &a : args) {
            int t = ctx.pushTemp();
            compileExpr(a, ctx);
            storeSlot(ACC, t);
            temps.push_back(t);
        }
        as.call(rt::sym::makeFuture);
        storeSlot(reg::a(0), s);
        as.moviLabel(reg::a(0), userLabel(fn));
        loadSlot(reg::a(1), s);
        as.movi(reg::a(2), Word(args.size()));
        for (size_t i = 0; i < args.size(); ++i)
            loadSlot(uint8_t(4 + i), temps[i]);
        as.call(rt::sym::spawn);
        loadSlot(ACC, s);
        ctx.popTemp(int(args.size()) + 1);
        return;
    }

    // Lazy task creation [17]: leave a stealable marker, evaluate the
    // body as a local call, and only deal in futures if someone stole
    // the continuation meanwhile. Push, pop and the claim are inlined:
    // the fast path costs a handful of instructions, which is what
    // makes lazy futures ~1.5x sequential instead of ~14x (Table 3).
    int m = ctx.pushTemp();
    for (int i = 1; i < rt::marker::size; ++i)
        ctx.pushTemp();
    int s = ctx.pushTemp();

    auto l_resume = as.fresh("fresume");
    auto l_spin = as.fresh("fspin");
    auto l_merge = as.fresh("fmerge");

    // Initialize the marker; the f/e state word is published last.
    as.moviLabel(OP2, l_resume);
    storeSlot(OP2, m + rt::marker::resumePC);
    storeSlot(sp, m + rt::marker::frameBase);
    ctx.framePatches.push_back(as.here());
    as.addiR(OP2, sp, 0);                   // patched: frame top
    storeSlot(OP2, m + rt::marker::frameTop);
    storeSlot(reg::sb, m + rt::marker::stackBase);
    as.stfnw(reg::r0, sp, wordOff(m + rt::marker::state));
    // Publish on the local steal deque (owner-private bottom index;
    // thieves synchronize on the marker's f/e word, not on us).
    as.ldnw(OP2, reg::g(0), wordOff(rt::nb::dequeBottom));
    as.andiR(CHK, OP2, int32_t(rt::dequeCapacity - 1));
    as.slliR(CHK, CHK, tagged::tagShift);
    as.ldnw(SCR, reg::g(0), wordOff(rt::nb::dequeBase));
    as.addR(CHK, CHK, SCR);
    as.addiR(SCR, sp, wordOff(m));
    as.stnw(SCR, CHK, 0);
    as.addiR(OP2, OP2, 1);
    // The probe marks the bottom-index store: the event fires exactly
    // when the marker becomes visible to thieves, with the boxed
    // marker pointer still live in SCR.
    as.note("tp$lazy_push");
    as.stnw(OP2, reg::g(0), wordOff(rt::nb::dequeBottom));

    compileCall(fn, call_form, 1, ctx);     // inline local call
    storeSlot(ACC, s);

    // Pop: one atomic consuming load decides the race (Section 3.2).
    // Empty = a thief is mid-copy; full with zero = ours (the common,
    // cheap case); full with a value = stolen, the value is the
    // thief's future.
    auto l_stolen = as.fresh("fstolen");
    auto l_mine = as.fresh("fmine");
    as.ldenw(OP2, sp, wordOff(m + rt::marker::state));
    as.jRaw(Cond::EMPTY, l_spin);
    as.nop();
    as.cmpiR(OP2, 0);
    as.jRaw(Cond::EQ, l_mine);              // we won: inline value
    as.nop();
    as.j(Cond::AL, l_stolen);
    // Thief mid-copy: wait for it to publish the future.
    as.bind(l_spin);
    as.ldnw(OP2, sp, wordOff(m + rt::marker::state));
    as.jRaw(Cond::EMPTY, l_spin);
    as.nop();
    as.bind(l_stolen);                      // OP2 = the future:
    as.mov(reg::a(0), OP2);                 // resolve it with our value
    loadSlot(reg::a(1), s);                 // and become a worker
    as.j(Cond::AL, rt::sym::stolenExit);

    // We won the claim, so our entry is still the deque's newest and
    // the owner-private bottom index can step back over it. Pops nest
    // LIFO within a thread, so this keeps the deque dense: without it,
    // dead entries pile up for the lifetime of the program and every
    // thief scan wades through all of them (probing stale markers in
    // long-returned frames) while holding the deque lock. On the
    // stolen and mid-copy paths the thief has already consumed the
    // entry from the top end, so retracting there would undercut top
    // and hide later pushes from every scan.
    as.bind(l_mine);
    as.note("tp$lazy_mine");            // owner reclaimed the marker
    as.ldnw(OP2, reg::g(0), wordOff(rt::nb::dequeBottom));
    as.subiR(OP2, OP2, 1);
    as.stnw(OP2, reg::g(0), wordOff(rt::nb::dequeBottom));
    as.j(Cond::AL, l_merge);

    as.bind(l_resume);                      // thief enters here, r1 = F
    as.note("tp$lazy_resume");          // r1 = the published future
    storeSlot(reg::a(0), s);

    as.bind(l_merge);
    loadSlot(ACC, s);
    // Only the value slot is recycled. The marker slots stay reserved
    // for the rest of the function: stale deque entries keep pointing
    // at them, and claims through an alias are only sound if a marker
    // address is never reused for a different marker in one frame.
    ctx.popTemp(1);
}

void
Compiler::compileFutureOn(const Sexp &e, FnCtx &ctx)
{
    // (future-on <node> <body>): "works just like a normal future but
    // allows the specification of the node on which to schedule the
    // future" (Section 2.2). Placement implies an eager task on the
    // target's queue, whatever the ambient future strategy.
    if (e.size() != 3)
        fatal("mult: bad future-on: ", e.str());
    if (opts.futures == CompileOptions::FutureMode::Erase) {
        compileExpr(e[2], ctx);
        return;
    }

    const Sexp &body = e[2];
    std::vector<std::string> fv;
    freeVars(body, ctx, fv);
    std::string fn = "fut$" + std::to_string(liftCounter++);
    functions[fn] = {userLabel(fn), unsigned(fv.size())};
    pendingLifts.push_back({fn, fv, body});
    if (fv.size() > 4) {
        fatal("mult: future-on body needs ", fv.size(),
              " arguments (max 4): ", body.str());
    }

    int s = ctx.pushTemp();
    int node_slot = ctx.pushTemp();
    compileExpr(e[1], ctx);                 // target node (fixnum)
    storeSlot(ACC, node_slot);
    std::vector<int> temps;
    for (const std::string &v : fv) {
        int t = ctx.pushTemp();
        compileExpr(Sexp::symbol(v), ctx);
        storeSlot(ACC, t);
        temps.push_back(t);
    }
    as.call(rt::sym::makeFuture);
    storeSlot(reg::a(0), s);
    as.moviLabel(reg::a(0), userLabel(fn));
    loadSlot(reg::a(1), s);
    as.movi(reg::a(2), Word(fv.size()));
    for (size_t i = 0; i < fv.size(); ++i)
        loadSlot(uint8_t(4 + i), temps[i]);
    loadSlot(8, node_slot);
    as.sraiR(8, 8, 2);                      // untag the node number
    as.call(rt::sym::spawnOn);
    loadSlot(ACC, s);
    ctx.popTemp(int(fv.size()) + 2);
}

void
Compiler::compileTouch(const Sexp &e, FnCtx &ctx)
{
    if (e.size() != 2)
        fatal("mult: bad touch: ", e.str());
    compileExpr(e[1], ctx);
    if (opts.futures != CompileOptions::FutureMode::Erase ||
        opts.softwareChecks) {
        emitTouch(ACC);
    }
}

bool
Compiler::compileBuiltin(const std::string &op, const Sexp &e, FnCtx &ctx)
{
    auto strict_shift_untag = [&](uint8_t r) {
        if (opts.softwareChecks) {
            emitCheck(r);
            as.sraiR(r, r, 2);
        } else {
            Instruction i;
            i.op = Opcode::SRA;
            i.rd = r;
            i.rs1 = r;
            i.imm = 2;
            i.useImm = true;
            i.strict = true;
            as.push(i);
        }
    };

    if (op == "+") {
        compileFold(Opcode::ADD, e, ctx);
        return true;
    }
    if (op == "-") {
        if (e.size() == 2) {
            compileExpr(e[1], ctx);
            emitTouch(ACC);
            as.mov(OP2, ACC);
            as.movi(ACC, fixnum(0));
            Instruction i;
            i.op = Opcode::SUB;
            i.rd = ACC;
            i.rs1 = ACC;
            i.rs2 = OP2;
            i.strict = !opts.softwareChecks;
            as.push(i);
            return true;
        }
        compileFold(Opcode::SUB, e, ctx);
        return true;
    }
    if (op == "*") {
        compileBinaryOperands(e, ctx);
        strict_shift_untag(OP2);
        emitTouch(ACC);
        as.mulR(ACC, OP2, ACC);
        return true;
    }
    if (op == "quotient") {
        compileBinaryOperands(e, ctx);
        emitTouch(OP2);
        emitTouch(ACC);
        Instruction i;
        i.op = Opcode::DIV;
        i.rd = ACC;
        i.rs1 = OP2;
        i.rs2 = ACC;
        as.push(i);
        as.slliR(ACC, ACC, 2);
        return true;
    }
    if (op == "remainder") {
        compileBinaryOperands(e, ctx);
        emitTouch(OP2);
        emitTouch(ACC);
        Instruction i;
        i.op = Opcode::REM;
        i.rd = ACC;
        i.rs1 = OP2;
        i.rs2 = ACC;
        as.push(i);
        return true;
    }

    if (op == "=")  { compileCompare(Cond::EQ, e, ctx); return true; }
    if (op == "<")  { compileCompare(Cond::LT, e, ctx); return true; }
    if (op == ">")  { compileCompare(Cond::GT, e, ctx); return true; }
    if (op == "<=") { compileCompare(Cond::LE, e, ctx); return true; }
    if (op == ">=") { compileCompare(Cond::GE, e, ctx); return true; }
    if (op == "eq?") { compileCompare(Cond::EQ, e, ctx); return true; }

    if (op == "cons") {
        compileBinaryOperands(e, ctx);
        as.mov(reg::a(1), ACC);
        as.mov(reg::a(0), OP2);
        as.call(rt::sym::cons);
        as.mov(ACC, reg::a(0));
        return true;
    }
    if (op == "car" || op == "cdr") {
        if (e.size() != 2)
            fatal("mult: bad ", op, ": ", e.str());
        compileExpr(e[1], ctx);
        int32_t off = op == "car" ? -6 : 2;     // cons tag is 110
        if (opts.softwareChecks) {
            emitCheck(ACC);
            as.load(ACC, ACC, off, false, false, MissPolicy::Trap, false);
        } else {
            // Strict load: traps (implicit touch) if ACC is a future.
            as.load(ACC, ACC, off, false, false, MissPolicy::Trap, true);
        }
        return true;
    }
    if (op == "set-car!" || op == "set-cdr!") {
        if (e.size() != 3)
            fatal("mult: bad ", op, ": ", e.str());
        compileBinaryOperands(e, ctx);      // OP2 = pair, ACC = value
        int32_t off = op == "set-car!" ? -6 : 2;
        if (opts.softwareChecks) {
            emitCheck(OP2);
            as.store(ACC, OP2, off, false, false, MissPolicy::Trap,
                     false);
        } else {
            as.store(ACC, OP2, off, false, false, MissPolicy::Trap,
                     true);
        }
        return true;
    }
    if (op == "min" || op == "max") {
        compileBinaryOperands(e, ctx);      // OP2 = a, ACC = b
        if (opts.softwareChecks) {
            emitCheck(OP2);
            emitCheck(ACC);
            as.cmpR(OP2, ACC);
        } else {
            as.cmp(OP2, ACC);
        }
        auto keep = as.fresh("mm");
        as.jRaw(op == "min" ? Cond::GE : Cond::LE, keep);
        as.nop();
        as.mov(ACC, OP2);                   // a wins
        as.bind(keep);
        return true;
    }
    if (op == "abs") {
        if (e.size() != 2)
            fatal("mult: bad abs: ", e.str());
        compileExpr(e[1], ctx);
        emitTouch(ACC);
        as.cmpiR(ACC, int32_t(fixnum(0)));
        auto pos = as.fresh("abs");
        as.jRaw(Cond::GE, pos);
        as.nop();
        as.mov(OP2, ACC);
        as.movi(ACC, fixnum(0));
        as.subR(ACC, ACC, OP2);
        as.bind(pos);
        return true;
    }
    if (op == "null?") {
        if (e.size() != 2)
            fatal("mult: bad null?: ", e.str());
        compileExpr(e[1], ctx);
        emitTouch(ACC);
        as.cmpiR(ACC, int32_t(tagged::NIL));
        emitBoolFromCond(Cond::EQ);
        return true;
    }
    if (op == "pair?") {
        if (e.size() != 2)
            fatal("mult: bad pair?: ", e.str());
        compileExpr(e[1], ctx);
        emitTouch(ACC);
        as.andiR(CHK, ACC, 7);
        as.cmpiR(CHK, int32_t(Tag::Cons));
        emitBoolFromCond(Cond::EQ);
        return true;
    }
    if (op == "not") {
        if (e.size() != 2)
            fatal("mult: bad not: ", e.str());
        compileExpr(e[1], ctx);
        emitTouch(ACC);
        auto l_yes = as.fresh("noty");
        auto l_end = as.fresh("notend");
        emitBranchIfFalse(l_yes);
        as.movi(ACC, tagged::FALSE);
        as.j(Cond::AL, l_end);
        as.bind(l_yes);
        as.movi(ACC, tagged::TRUE);
        as.bind(l_end);
        return true;
    }
    if (op == "and" || op == "or") {
        if (e.size() < 2)
            fatal("mult: bad ", op, ": ", e.str());
        auto l_end = as.fresh("sc");
        for (size_t i = 1; i < e.size(); ++i) {
            compileExpr(e[i], ctx);
            if (i + 1 == e.size())
                break;
            emitTouch(ACC);
            if (op == "and") {
                emitBranchIfFalse(l_end);
            } else {
                auto l_next = as.fresh("or");
                emitBranchIfFalse(l_next);
                as.j(Cond::AL, l_end);
                as.bind(l_next);
            }
        }
        as.bind(l_end);
        return true;
    }

    if (op == "make-vector") {
        if (e.size() != 2 && e.size() != 3)
            fatal("mult: bad make-vector: ", e.str());
        int t = ctx.pushTemp();
        compileExpr(e[1], ctx);
        storeSlot(ACC, t);
        if (e.size() == 3)
            compileExpr(e[2], ctx);
        else
            as.movi(ACC, fixnum(0));
        as.mov(reg::a(1), ACC);
        loadSlot(reg::a(0), t);
        ctx.popTemp();
        as.call(rt::sym::makeVector);
        as.mov(ACC, reg::a(0));
        return true;
    }
    if (op == "vector-ref") {
        compileBinaryOperands(e, ctx);      // OP2 = v, ACC = i
        if (opts.softwareChecks) {
            emitCheck(OP2);
            emitCheck(ACC);
            as.slliR(ACC, ACC, 1);
            as.addR(OP2, OP2, ACC);
            as.load(ACC, OP2, 6, false, false, MissPolicy::Trap, false);
        } else {
            Instruction sh;
            sh.op = Opcode::SLL;
            sh.rd = ACC;
            sh.rs1 = ACC;
            sh.imm = 1;
            sh.useImm = true;
            sh.strict = true;
            as.push(sh);
            as.add(OP2, OP2, ACC);          // strict: touches v
            as.load(ACC, OP2, 6, false, false, MissPolicy::Trap, true);
        }
        return true;
    }
    if (op == "vector-set!") {
        if (e.size() != 4)
            fatal("mult: bad vector-set!: ", e.str());
        int tv = ctx.pushTemp();
        int ti = ctx.pushTemp();
        compileExpr(e[1], ctx);
        storeSlot(ACC, tv);
        compileExpr(e[2], ctx);
        storeSlot(ACC, ti);
        compileExpr(e[3], ctx);
        loadSlot(OP2, tv);
        loadSlot(CHK, ti);
        ctx.popTemp(2);
        if (opts.softwareChecks) {
            emitCheck(OP2);
            emitCheck(CHK);
            as.slliR(CHK, CHK, 1);
            as.addR(OP2, OP2, CHK);
            as.store(ACC, OP2, 6, false, false, MissPolicy::Trap, false);
        } else {
            Instruction sh;
            sh.op = Opcode::SLL;
            sh.rd = CHK;
            sh.rs1 = CHK;
            sh.imm = 1;
            sh.useImm = true;
            sh.strict = true;
            as.push(sh);
            as.add(OP2, OP2, CHK);
            as.store(ACC, OP2, 6, false, false, MissPolicy::Trap, true);
        }
        return true;
    }
    if (op == "vector-length") {
        if (e.size() != 2)
            fatal("mult: bad vector-length: ", e.str());
        compileExpr(e[1], ctx);
        if (opts.softwareChecks) {
            emitCheck(ACC);
            as.load(ACC, ACC, -2, false, false, MissPolicy::Trap, false);
        } else {
            as.load(ACC, ACC, -2, false, false, MissPolicy::Trap, true);
        }
        return true;
    }

    if (op == "println") {
        if (e.size() != 2)
            fatal("mult: bad println: ", e.str());
        compileExpr(e[1], ctx);
        as.stio(int(IoReg::ConsoleOut), ACC);
        return true;
    }

    return false;
}

void
Compiler::compileExpr(const Sexp &e, FnCtx &ctx)
{
    if (e.isInteger()) {
        if (e.num > (1 << 29) - 1 || e.num < -(1 << 29))
            fatal("mult: fixnum overflow: ", e.num);
        as.movi(ACC, fixnum(int32_t(e.num)));
        return;
    }

    if (e.isSymbol()) {
        if (e.sym == "true") {
            as.movi(ACC, tagged::TRUE);
        } else if (e.sym == "false") {
            as.movi(ACC, tagged::FALSE);
        } else if (e.sym == "nil") {
            as.movi(ACC, tagged::NIL);
        } else if (int *slot = ctx.lookup(e.sym)) {
            loadSlot(ACC, *slot);
        } else {
            fatal("mult: unbound variable '", e.sym, "' in ", ctx.name);
        }
        return;
    }

    if (!e.isList() || e.size() == 0)
        fatal("mult: cannot compile ", e.str());
    if (!e[0].isSymbol())
        fatal("mult: operator must be a symbol: ", e.str());
    const std::string &head = e[0].sym;

    if (head == "if") {
        compileIf(e, ctx);
    } else if (head == "let") {
        compileLet(e, ctx);
    } else if (head == "begin") {
        if (e.size() == 1) {
            as.movi(ACC, tagged::NIL);
            return;
        }
        for (size_t i = 1; i < e.size(); ++i)
            compileExpr(e[i], ctx);
    } else if (head == "future") {
        compileFuture(e, ctx);
    } else if (head == "future-on") {
        compileFutureOn(e, ctx);
    } else if (head == "touch") {
        compileTouch(e, ctx);
    } else if (compileBuiltin(head, e, ctx)) {
        // handled
    } else {
        compileCall(head, e, 1, ctx);
    }
}

void
Compiler::compileFunction(const std::string &name,
                          const std::vector<std::string> &params,
                          const Sexp *body_begin, size_t body_count)
{
    if (params.size() > reg::numArgRegs)
        fatal("mult: too many parameters in ", name);
    if (body_count == 0)
        fatal("mult: empty body in ", name);

    as.bind(userLabel(name));

    FnCtx ctx;
    ctx.name = name;
    ctx.scopes.emplace_back();
    ctx.nextSlot = 1;                       // slot 0: saved ra
    as.stnw(reg::ra, sp, wordOff(0));
    for (size_t i = 0; i < params.size(); ++i) {
        int slot = ctx.pushTemp();
        as.stnw(reg::a(unsigned(i)), sp, wordOff(slot));
        ctx.scopes.back()[params[i]] = slot;
    }

    for (size_t i = 0; i < body_count; ++i)
        compileExpr(body_begin[i], ctx);

    as.mov(reg::a(0), ACC);
    as.ldnw(reg::ra, sp, wordOff(0));
    as.ret();

    for (uint32_t idx : ctx.framePatches)
        as.patchImm(idx, wordOff(ctx.maxSlot));
}

void
Compiler::registerDefine(const Sexp &form)
{
    if (!form.isList() || form.size() < 3 || !form[0].isSymbol("define") ||
        !form[1].isList() || form[1].size() == 0 ||
        !form[1][0].isSymbol()) {
        fatal("mult: bad define: ", form.str());
    }
    const std::string &name = form[1][0].sym;
    if (functions.count(name))
        fatal("mult: duplicate definition of ", name);
    functions[name] = {userLabel(name), unsigned(form[1].size() - 1)};
}

void
Compiler::compileDefine(const Sexp &form)
{
    std::vector<std::string> params;
    for (size_t i = 1; i < form[1].size(); ++i) {
        if (!form[1][i].isSymbol())
            fatal("mult: bad parameter in ", form.str());
        params.push_back(form[1][i].sym);
    }
    compileFunction(form[1][0].sym, params, form.items.data() + 2,
                    form.size() - 2);
}

void
Compiler::compileProgram(const std::vector<Sexp> &forms)
{
    for (const Sexp &f : forms)
        registerDefine(f);
    if (!functions.count("main") || functions["main"].arity != 0)
        fatal("mult: program needs (define (main) ...)");

    for (const Sexp &f : forms)
        compileDefine(f);

    // Drain lambda-lifted future bodies (which may create more).
    while (!pendingLifts.empty()) {
        Lifted l = std::move(pendingLifts.back());
        pendingLifts.pop_back();
        compileFunction(l.name, l.params, &l.body, 1);
    }
}

void
Compiler::compileSource(const std::string &source)
{
    compileProgram(readAll(source));
}

} // namespace april::mult

/**
 * @file
 * The Mul-T compiler (paper Sections 2.2 and 6).
 *
 * Compiles a first-order Scheme subset with `future` and `touch` to
 * APRIL assembly. Three future-compilation strategies reproduce the
 * systems of Table 3:
 *
 *   Erase  (future X) == X               — the "T seq" reference
 *   Eager  normal task creation: every future allocates a future
 *          object and enqueues a task (rt$spawn)
 *   Lazy   lazy task creation [17]: the future body is evaluated as a
 *          local call and a stealable continuation marker is left
 *          behind; a future object exists only if a steal occurs
 *
 * Independently, `softwareChecks` selects the Encore Multimax code
 * generation: every strict operation explicitly tests its operands'
 * low bit and calls a software touch routine, instead of relying on
 * APRIL's tag-trap hardware (Section 3.2, "Detection of Futures").
 *
 * Code generation is a straightforward stack-frame model: all named
 * variables and expression temporaries live in frame slots addressed
 * off `sp`, which is what makes continuation stealing a frame-copy
 * (see runtime/runtime.cc). This costs instructions relative to a
 * register allocator, but identically across all compared systems, so
 * Table 3's ratios are preserved.
 */

#ifndef APRIL_MULT_COMPILER_HH
#define APRIL_MULT_COMPILER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "mult/sexp.hh"

namespace april::mult
{

/** Future strategy and baseline selection. */
struct CompileOptions
{
    enum class FutureMode { Erase, Eager, Lazy };

    FutureMode futures = FutureMode::Erase;
    /// Encore-style software future detection (no tag traps).
    bool softwareChecks = false;
};

/** Compiles Mul-T top-level programs into an Assembler. */
class Compiler
{
  public:
    Compiler(Assembler &as, CompileOptions opts) : as(as), opts(opts) {}

    /**
     * Compile a whole program: a sequence of
     * (define (name params...) body...) forms. A function called
     * `main` (arity 0) must be present; it becomes rt$boot's target.
     */
    void compileProgram(const std::vector<Sexp> &forms);

    /** Convenience: parse and compile a source string. */
    void compileSource(const std::string &source);

  private:
    struct FnInfo
    {
        std::string label;
        unsigned arity = 0;
    };

    /** Per-function compilation state. */
    struct FnCtx
    {
        std::string name;
        std::vector<std::map<std::string, int>> scopes;
        int nextSlot = 0;       ///< next free frame slot
        int maxSlot = 0;        ///< frame-size high-water mark
        std::vector<uint32_t> framePatches; ///< insts needing the size

        int
        pushTemp()
        {
            int s = nextSlot++;
            if (nextSlot > maxSlot)
                maxSlot = nextSlot;
            return s;
        }

        void popTemp(int n = 1) { nextSlot -= n; }

        int *
        lookup(const std::string &name)
        {
            for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
                auto f = it->find(name);
                if (f != it->end())
                    return &f->second;
            }
            return nullptr;
        }
    };

    /** A future body lifted to a top-level function. */
    struct Lifted
    {
        std::string name;
        std::vector<std::string> params;
        Sexp body;
    };

    void registerDefine(const Sexp &form);
    void compileDefine(const Sexp &form);
    void compileFunction(const std::string &name,
                         const std::vector<std::string> &params,
                         const Sexp *body_begin, size_t body_count);

    /** Compile one expression; result lands in the accumulator r16. */
    void compileExpr(const Sexp &e, FnCtx &ctx);

    void compileIf(const Sexp &e, FnCtx &ctx);
    void compileLet(const Sexp &e, FnCtx &ctx);
    void compileCall(const std::string &fn, const Sexp &e, size_t first,
                     FnCtx &ctx);
    void compileFuture(const Sexp &e, FnCtx &ctx);
    void compileFutureOn(const Sexp &e, FnCtx &ctx);
    void compileTouch(const Sexp &e, FnCtx &ctx);
    bool compileBuiltin(const std::string &op, const Sexp &e, FnCtx &ctx);

    /** Evaluate operands of a binary op into (r17, r16). */
    void compileBinaryOperands(const Sexp &e, FnCtx &ctx);
    /** Left-fold a variadic arithmetic op. */
    void compileFold(Opcode op, const Sexp &e, FnCtx &ctx);
    void compileCompare(Cond cond, const Sexp &e, FnCtx &ctx);
    void emitBoolFromCond(Cond cond);

    /** Encore mode: ensure register @p r holds a non-future. */
    void emitCheck(uint8_t r);
    /** Touch the value in @p r (strict no-op on APRIL, check on Encore). */
    void emitTouch(uint8_t r);
    /** Branch to @p target when r16 is false (#f or nil). */
    void emitBranchIfFalse(const std::string &target);

    void loadSlot(uint8_t rd, int slot);
    void storeSlot(uint8_t rs, int slot);

    /** Collect free variables of @p e bound in @p ctx. */
    void freeVars(const Sexp &e, FnCtx &ctx,
                  std::vector<std::string> &out) const;

    std::string userLabel(const std::string &fn) const
    {
        return "mt$" + fn;
    }

    Assembler &as;
    CompileOptions opts;
    std::map<std::string, FnInfo> functions;
    std::vector<Lifted> pendingLifts;
    uint64_t liftCounter = 0;

    static constexpr uint8_t ACC = 16;   ///< expression accumulator
    static constexpr uint8_t OP2 = 17;   ///< left operand / scratch
    static constexpr uint8_t CHK = 18;   ///< tag-check scratch
    static constexpr uint8_t SCR = 19;   ///< extra scratch
    static constexpr uint8_t TST = 20;   ///< tag-test scratch (emitCheck)
};

} // namespace april::mult

#endif // APRIL_MULT_COMPILER_HH

#include "mult/sexp.hh"

#include <cctype>
#include <sstream>

#include "common/logging.hh"

namespace april::mult
{

std::string
Sexp::str() const
{
    switch (kind) {
      case Kind::Symbol:
        return sym;
      case Kind::Integer:
        return std::to_string(num);
      case Kind::List: {
        std::ostringstream os;
        os << "(";
        for (size_t i = 0; i < items.size(); ++i)
            os << (i ? " " : "") << items[i].str();
        os << ")";
        return os.str();
      }
    }
    return "?";
}

namespace
{

/** Recursive-descent reader over a flat character buffer. */
class Reader
{
  public:
    explicit Reader(const std::string &src) : s(src) {}

    void
    skipSpace()
    {
        while (pos < s.size()) {
            if (std::isspace(static_cast<unsigned char>(s[pos]))) {
                ++pos;
            } else if (s[pos] == ';') {
                while (pos < s.size() && s[pos] != '\n')
                    ++pos;
            } else {
                break;
            }
        }
    }

    bool atEnd()
    {
        skipSpace();
        return pos >= s.size();
    }

    Sexp
    read()
    {
        skipSpace();
        if (pos >= s.size())
            fatal("mult reader: unexpected end of input");

        char c = s[pos];
        if (c == '(') {
            ++pos;
            std::vector<Sexp> items;
            for (;;) {
                skipSpace();
                if (pos >= s.size())
                    fatal("mult reader: unterminated list");
                if (s[pos] == ')') {
                    ++pos;
                    return Sexp::list(std::move(items));
                }
                items.push_back(read());
            }
        }
        if (c == ')')
            fatal("mult reader: stray ')' at offset ", pos);
        if (c == '\'') {
            // Only '() is supported as quoted data.
            ++pos;
            Sexp quoted = read();
            if (quoted.isList() && quoted.size() == 0)
                return Sexp::symbol("nil");
            fatal("mult reader: only '() may be quoted, got ",
                  quoted.str());
        }
        if (c == '#') {
            // #t / #f booleans.
            if (pos + 1 < s.size() && (s[pos + 1] == 't' ||
                                       s[pos + 1] == 'f')) {
                bool v = s[pos + 1] == 't';
                pos += 2;
                return Sexp::symbol(v ? "true" : "false");
            }
            fatal("mult reader: bad # syntax at offset ", pos);
        }

        // Number or symbol token.
        size_t start = pos;
        while (pos < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[pos])) &&
               s[pos] != '(' && s[pos] != ')' && s[pos] != ';') {
            ++pos;
        }
        std::string tok = s.substr(start, pos - start);
        if (tok.empty())
            fatal("mult reader: empty token at offset ", start);

        bool numeric = std::isdigit(static_cast<unsigned char>(tok[0])) ||
            (tok.size() > 1 && (tok[0] == '-' || tok[0] == '+') &&
             std::isdigit(static_cast<unsigned char>(tok[1])));
        if (numeric) {
            try {
                return Sexp::integer(std::stoll(tok));
            } catch (const std::exception &) {
                fatal("mult reader: bad number: ", tok);
            }
        }
        return Sexp::symbol(tok);
    }

  private:
    const std::string &s;
    size_t pos = 0;
};

} // namespace

std::vector<Sexp>
readAll(const std::string &source)
{
    Reader r(source);
    std::vector<Sexp> forms;
    while (!r.atEnd())
        forms.push_back(r.read());
    return forms;
}

Sexp
readOne(const std::string &source)
{
    Reader r(source);
    Sexp e = r.read();
    if (!r.atEnd())
        fatal("mult reader: trailing input after form");
    return e;
}

} // namespace april::mult

/**
 * @file
 * S-expression reader for Mul-T sources.
 *
 * Mul-T is "an extended version of Scheme" (Section 2.2); our compiler
 * consumes a Scheme-style surface syntax read into a small Sexp tree.
 * Supports symbols, decimal integers, lists, #t/#f, quoted empty
 * lists, and ;-comments.
 */

#ifndef APRIL_MULT_SEXP_HH
#define APRIL_MULT_SEXP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace april::mult
{

/** One node of the parsed source tree. */
struct Sexp
{
    enum class Kind { Symbol, Integer, List };

    Kind kind = Kind::List;
    std::string sym;            ///< Kind::Symbol
    int64_t num = 0;            ///< Kind::Integer
    std::vector<Sexp> items;    ///< Kind::List

    static Sexp
    symbol(std::string s)
    {
        Sexp e;
        e.kind = Kind::Symbol;
        e.sym = std::move(s);
        return e;
    }

    static Sexp
    integer(int64_t v)
    {
        Sexp e;
        e.kind = Kind::Integer;
        e.num = v;
        return e;
    }

    static Sexp
    list(std::vector<Sexp> xs)
    {
        Sexp e;
        e.items = std::move(xs);
        return e;
    }

    bool isSymbol() const { return kind == Kind::Symbol; }
    bool isSymbol(const std::string &s) const
    {
        return kind == Kind::Symbol && sym == s;
    }
    bool isInteger() const { return kind == Kind::Integer; }
    bool isList() const { return kind == Kind::List; }
    size_t size() const { return items.size(); }
    const Sexp &operator[](size_t i) const { return items.at(i); }

    /** Render back to source-like text (diagnostics). */
    std::string str() const;
};

/** Parse a whole source file into its top-level forms. */
std::vector<Sexp> readAll(const std::string &source);

/** Parse exactly one form (fatal on trailing garbage). */
Sexp readOne(const std::string &source);

} // namespace april::mult

#endif // APRIL_MULT_SEXP_HH

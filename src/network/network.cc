#include "network/network.hh"

#include <cmath>

#include "common/logging.hh"

namespace april::net
{

Network::Network(const NetworkParams &p, stats::Group *parent)
    : stats::Group("network", parent),
      statPackets(this, "packets", "packets delivered"),
      statFlitHops(this, "flitHops", "flit-hops consumed"),
      statLatency(this, "latency", "send-to-delivery latency"),
      statHops(this, "hops", "hops per packet"),
      params(p)
{
    if (p.dim <= 0 || p.radix <= 1)
        fatal("Network: need dim >= 1 and radix >= 2");
    _numNodes = 1;
    for (int d = 0; d < p.dim; ++d) {
        uint64_t next = uint64_t(_numNodes) * uint32_t(p.radix);
        if (next > (1u << 24))
            fatal("Network: too many nodes");
        _numNodes = uint32_t(next);
    }
    ports.resize(_numNodes);
    for (SrcPort &port : ports)
        port.linkBusyUntil.assign(2 * size_t(p.dim), 0);
    dstStats.resize(_numNodes);
}

int
Network::coord(uint32_t node, int d) const
{
    for (int i = 0; i < d; ++i)
        node /= uint32_t(params.radix);
    return int(node % uint32_t(params.radix));
}

uint32_t
Network::distance(uint32_t a, uint32_t b) const
{
    uint32_t hops = 0;
    for (int d = 0; d < params.dim; ++d)
        hops += uint32_t(std::abs(coord(a, d) - coord(b, d)));
    return hops;
}

uint32_t
Network::unloadedRoundTrip(uint32_t a, uint32_t b, uint32_t flits) const
{
    // Each direction: hops switch traversals plus packet drain time.
    uint32_t one_way = distance(a, b) * params.hopCycles + (flits - 1);
    return 2 * one_way;
}

Injection
Network::inject(uint32_t src, uint32_t dst, uint32_t flits,
                uint64_t now)
{
    if (src >= _numNodes || dst >= _numNodes)
        panic("Network: bad endpoint ", src, "->", dst);
    if (flits == 0)
        panic("Network: empty packet");
    SrcPort &port = ports[src];
    // Dimension-order routing: the first hop leaves along the lowest
    // dimension whose coordinate differs. Local traffic (src == dst)
    // never reaches the network, so link 0 is a safe placeholder.
    uint32_t link = 0;
    for (int d = 0; d < params.dim; ++d) {
        int from = coord(src, d);
        int to = coord(dst, d);
        if (from != to) {
            link = 2 * uint32_t(d) + (to > from ? 1 : 0);
            break;
        }
    }
    uint64_t &busy = port.linkBusyUntil[link];
    Injection inj;
    inj.start = std::max(now, busy);
    inj.hops = distance(src, dst);
    inj.arrive = inj.start + uint64_t(inj.hops) * params.hopCycles +
                 flits;
    inj.seq = port.seq++;
    busy = inj.start + flits;
    return inj;
}

void
Network::recordDelivery(uint32_t dst, uint64_t latency, uint32_t hops,
                        uint32_t flits)
{
    DstStats &s = dstStats.at(dst);
    ++s.packets;
    s.flitHops += uint64_t(flits) * hops;
    s.latencySum += latency;
    s.hopSum += hops;
}

void
Network::foldStats()
{
    // Sums of integers well below 2^53: exact in double regardless of
    // node order, so the fold is bit-identical for any sharding.
    uint64_t packets = 0, flit_hops = 0, lat_sum = 0, hop_sum = 0;
    for (const DstStats &s : dstStats) {
        packets += s.packets;
        flit_hops += s.flitHops;
        lat_sum += s.latencySum;
        hop_sum += s.hopSum;
    }
    statPackets = double(packets);
    statFlitHops = double(flit_hops);
    statLatency.set(double(lat_sum), packets);
    statHops.set(double(hop_sum), packets);
}

} // namespace april::net

#include "network/network.hh"

#include <algorithm>
#include <cmath>

#include "common/debug.hh"
#include "common/logging.hh"

namespace april::net
{

Network::Network(const NetworkParams &p, stats::Group *parent)
    : stats::Group("network", parent),
      statPackets(this, "packets", "packets delivered"),
      statFlitHops(this, "flitHops", "flit-hops consumed"),
      statLatency(this, "latency", "send-to-delivery latency"),
      statHops(this, "hops", "hops per packet"),
      params(p)
{
    if (p.dim <= 0 || p.radix <= 1)
        fatal("Network: need dim >= 1 and radix >= 2");
    _numNodes = 1;
    for (int d = 0; d < p.dim; ++d) {
        uint64_t next = uint64_t(_numNodes) * uint32_t(p.radix);
        if (next > (1u << 24))
            fatal("Network: too many nodes");
        _numNodes = uint32_t(next);
    }
    // Two directed links per node per dimension (+ and -).
    links.resize(size_t(_numNodes) * size_t(p.dim) * 2);
    arrived.resize(_numNodes);
}

int
Network::coord(uint32_t node, int d) const
{
    for (int i = 0; i < d; ++i)
        node /= uint32_t(params.radix);
    return int(node % uint32_t(params.radix));
}

uint32_t
Network::neighbor(uint32_t node, int d, int dir) const
{
    uint32_t stride = 1;
    for (int i = 0; i < d; ++i)
        stride *= uint32_t(params.radix);
    int c = coord(node, d);
    int nc = c + dir;
    if (nc < 0 || nc >= params.radix)
        panic("Network: neighbor off the mesh edge");
    return uint32_t(int64_t(node) + int64_t(dir) * stride);
}

size_t
Network::linkIndex(uint32_t node, int d, int dir) const
{
    return (size_t(node) * size_t(params.dim) + size_t(d)) * 2 +
           (dir > 0 ? 0 : 1);
}

int
Network::route(uint32_t node, uint32_t dst, int *dir) const
{
    // Dimension-order: correct the lowest unequal dimension first.
    for (int d = 0; d < params.dim; ++d) {
        int c = coord(node, d);
        int t = coord(dst, d);
        if (c != t) {
            *dir = t > c ? 1 : -1;
            return d;
        }
    }
    return -1;
}

uint32_t
Network::distance(uint32_t a, uint32_t b) const
{
    uint32_t hops = 0;
    for (int d = 0; d < params.dim; ++d)
        hops += uint32_t(std::abs(coord(a, d) - coord(b, d)));
    return hops;
}

uint32_t
Network::unloadedRoundTrip(uint32_t a, uint32_t b, uint32_t flits) const
{
    // Each direction: hops switch traversals plus packet drain time.
    uint32_t one_way = distance(a, b) * params.hopCycles + (flits - 1);
    return 2 * one_way;
}

void
Network::send(Packet pkt)
{
    if (pkt.src >= _numNodes || pkt.dst >= _numNodes)
        panic("Network: bad endpoint ", pkt.src, "->", pkt.dst);
    if (pkt.flits == 0)
        panic("Network: empty packet");
    pkt.sendCycle = _cycle;
    pkt.hops = 0;
    ++inFlight;
    if (trec) {
        trec->record({_cycle, pkt.src, trace::EventKind::NetSend, 0, 0,
                      pkt.dst, pkt.flits});
    }
    TRACE(Net, "c", _cycle, " send ", pkt.src, "->", pkt.dst,
          " flits=", pkt.flits);
    advance(pkt.src, {pkt, _cycle});
}

void
Network::advance(uint32_t node, Hop hop)
{
    int dir = 0;
    int d = route(node, hop.pkt.dst, &dir);
    if (d < 0) {
        // Arrived; deliverable once the tail drains at the ejection
        // port (cut-through pays the serialization latency once).
        hop.readyAt += hop.pkt.flits - 1;
        arrived[node].push_back(hop);
        return;
    }
    links[linkIndex(node, d, dir)].queue.push_back(hop);
}

void
Network::tick()
{
    ++_cycle;
    // Move the head packet of every ready link one hop. A link is
    // occupied for `flits` cycles per packet (serialization).
    for (uint32_t node = 0; node < _numNodes; ++node) {
        for (int d = 0; d < params.dim; ++d) {
            for (int dir : {1, -1}) {
                Link &link = links[linkIndex(node, d, dir)];
                if (link.queue.empty() || link.busyUntil > _cycle)
                    continue;
                Hop hop = link.queue.front();
                if (hop.readyAt > _cycle)
                    continue;
                link.queue.pop_front();
                // Cut-through: the head moves after the switch delay;
                // the link stays occupied for the whole packet's
                // serialization (bandwidth), but downstream hops
                // overlap with the tail still draining.
                link.busyUntil = _cycle + hop.pkt.flits;
                statFlitHops += hop.pkt.flits;
                ++hop.pkt.hops;
                hop.readyAt = _cycle + params.hopCycles;
                uint32_t next_node = neighbor(node, d, dir);
                if (trec) {
                    trec->record({_cycle, next_node,
                                  trace::EventKind::NetHop, 0, 0,
                                  hop.pkt.dst, hop.pkt.hops});
                }
                advance(next_node, hop);
            }
        }
    }
}

void
Network::deliver(uint32_t node, std::vector<Packet> &out)
{
    out.clear();
    auto &q = arrived.at(node);
    while (!q.empty() && q.front().readyAt <= _cycle) {
        const Hop &hop = q.front();
        ++statPackets;
        statLatency.sample(double(_cycle - hop.pkt.sendCycle));
        statHops.sample(hop.pkt.hops);
        --inFlight;
        if (trec) {
            trec->record({_cycle, node, trace::EventKind::NetDeliver,
                          0, 0, hop.pkt.src,
                          uint32_t(_cycle - hop.pkt.sendCycle)});
        }
        TRACE(Net, "c", _cycle, " deliver ", hop.pkt.src, "->", node,
              " latency=", _cycle - hop.pkt.sendCycle);
        out.push_back(hop.pkt);
        q.pop_front();
    }
}

uint64_t
Network::nextEventCycle() const
{
    if (inFlight == 0)
        return kNeverCycle;
    uint64_t next = kNeverCycle;
    // A queued hop moves at the first tick() where both the hop's head
    // has reached the router and the link has drained the previous
    // packet's tail (tick's `readyAt > _cycle` / `busyUntil > _cycle`
    // guards).
    for (const Link &link : links) {
        if (link.queue.empty())
            continue;
        uint64_t e = std::max(link.queue.front().readyAt, link.busyUntil);
        next = std::min(next, e);
    }
    // An arrived packet becomes deliverable (front of the ejection
    // FIFO only, matching deliver()) once its tail drains.
    for (const auto &q : arrived) {
        if (!q.empty())
            next = std::min(next, q.front().readyAt);
    }
    // Nothing can happen before the next tick.
    return std::max(next, _cycle + 1);
}

} // namespace april::net

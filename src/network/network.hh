/**
 * @file
 * The k-ary n-cube (mesh) of Section 2.1, modeled at its endpoints.
 *
 * Topology: n dimensions of radix k, bidirectional mesh links,
 * dimension-order distances. Timing is computed at injection time
 * (a source-link contention model):
 *
 *   start   = max(now, first-hop link free)
 *   arrival = start + distance * hopCycles + flits
 *
 * Each node owns one injection port per outgoing link (2 * dim of
 * them), chosen by the packet's dimension-order first hop; a packet
 * of B flits occupies that link for B cycles, which is where
 * back-to-back send queueing comes from, while packets leaving in
 * different directions pipeline in parallel — matching the wormhole
 * behaviour at the hop that actually saturates (a home node fanning
 * out replies). Contention at interior links is not modeled; for the
 * coherence traffic the machine generates, first-link serialization
 * dominates and the zero-load latency matches the cut-through
 * pipeline (hops * hopCycles switch traversals plus the packet drain
 * time).
 *
 * Computing the arrival cycle at injection is what makes the
 * parallel execution engine possible (DESIGN.md §7.6): a packet's
 * delivery time is known the moment it is sent, every cross-node
 * latency is at least hopCycles + flits, and so shards can advance a
 * whole quantum without observing each other. There is no per-cycle
 * network tick at all; the machine owns the per-node arrival queues
 * and asks this class only for timing, topology, and statistics.
 *
 * Delivery statistics accumulate into plain per-node counters (the
 * delivering shard touches only its own nodes' slots) and fold into
 * the stats::Group members at deterministic synchronization points
 * via foldStats().
 */

#ifndef APRIL_NETWORK_NETWORK_HH
#define APRIL_NETWORK_NETWORK_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "common/stats.hh"

namespace april::net
{

/** Network configuration. */
struct NetworkParams
{
    int dim = 2;                ///< n
    int radix = 4;              ///< k
    uint32_t hopCycles = 1;     ///< switch traversal delay
};

/** Timing of one injected packet. */
struct Injection
{
    uint64_t start = 0;         ///< cycle the head leaves the source
    uint64_t arrive = 0;        ///< cycle the tail drains at the dest
    uint64_t seq = 0;           ///< per-source sequence number
    uint32_t hops = 0;          ///< dimension-order distance
};

/** The mesh. */
class Network : public stats::Group
{
  public:
    explicit Network(const NetworkParams &params,
                     stats::Group *parent = nullptr);

    uint32_t numNodes() const { return _numNodes; }
    uint32_t hopCycles() const { return params.hopCycles; }

    /**
     * Inject a packet of @p flits flits at @p src headed to @p dst at
     * cycle @p now: serializes on the source injection port and
     * returns the computed timing. Only @p src's shard may call this
     * for @p src (per-source state).
     */
    Injection inject(uint32_t src, uint32_t dst, uint32_t flits,
                     uint64_t now);

    /**
     * Account one delivered packet at @p dst (per-destination
     * accumulators; only @p dst's shard may call this for @p dst).
     */
    void recordDelivery(uint32_t dst, uint64_t latency, uint32_t hops,
                        uint32_t flits);

    /**
     * Recompute the stats::Group members from the per-node
     * accumulators. Idempotent; the machine calls it at deterministic
     * synchronization points (quiesce, run exit, interval samples) so
     * dumped statistics are identical for every host-thread count.
     */
    void foldStats();

    /**
     * The smallest possible send-to-delivery latency of a cross-node
     * packet no smaller than @p min_flits: the parallel engine's
     * quantum bound.
     */
    uint64_t
    minCrossNodeLatency(uint32_t min_flits) const
    {
        return uint64_t(params.hopCycles) + min_flits;
    }

    /** Zero-load round-trip latency between @p a and @p b. */
    uint32_t unloadedRoundTrip(uint32_t a, uint32_t b,
                               uint32_t flits) const;

    /** Manhattan distance in hops. */
    uint32_t distance(uint32_t a, uint32_t b) const;

    /** Largest distance the topology can produce: corner to corner,
     *  dim * (radix - 1) hops. Sizes per-hop-distance telemetry. */
    uint32_t
    maxHops() const
    {
        return uint32_t(params.dim) * uint32_t(params.radix - 1);
    }

    stats::Scalar statPackets;
    stats::Scalar statFlitHops;
    stats::Average statLatency;     ///< send-to-delivery cycles
    stats::Average statHops;

  private:
    /** Per-source injection state, one busy time per outgoing link
     *  (owned by the source's shard). */
    struct alignas(64) SrcPort
    {
        /// Indexed by 2 * dimension + direction of the first hop.
        std::vector<uint64_t> linkBusyUntil;
        uint64_t seq = 0;
    };

    /** Per-destination delivery accounting (owned by the dest shard). */
    struct alignas(64) DstStats
    {
        uint64_t packets = 0;
        uint64_t flitHops = 0;
        uint64_t latencySum = 0;
        uint64_t hopSum = 0;
    };

    int coord(uint32_t node, int d) const;

    NetworkParams params;
    uint32_t _numNodes;
    std::vector<SrcPort> ports;
    std::vector<DstStats> dstStats;
};

} // namespace april::net

#endif // APRIL_NETWORK_NETWORK_HH

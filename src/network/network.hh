/**
 * @file
 * A low-dimension direct network: the k-ary n-cube (mesh) of
 * Section 2.1, cycle-stepped with link contention.
 *
 * Topology: n dimensions of radix k, bidirectional mesh links,
 * dimension-order routing (all X hops, then Y, then Z ...). Each
 * directed link carries one flit per cycle; a packet of B flits
 * occupies its link for B cycles, which is where queueing delay and
 * the bandwidth ceiling of Section 8 come from.
 *
 * Routers use unbounded FIFO output queues (virtual-channel flow
 * control is beyond the paper's level of detail); latency statistics
 * therefore reflect contention but the network never deadlocks.
 */

#ifndef APRIL_NETWORK_NETWORK_HH
#define APRIL_NETWORK_NETWORK_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/bits.hh"
#include "common/stats.hh"
#include "common/trace.hh"

namespace april::net
{

/** Network configuration. */
struct NetworkParams
{
    int dim = 2;                ///< n
    int radix = 4;              ///< k
    uint32_t hopCycles = 1;     ///< switch traversal delay
};

/** An in-flight message; payload meaning belongs to the coherence layer. */
struct Packet
{
    uint32_t src = 0;
    uint32_t dst = 0;
    uint32_t flits = 1;         ///< serialization length
    uint64_t payload = 0;       ///< opaque handle for the user
    uint64_t sendCycle = 0;     ///< stamped by send()
    uint32_t hops = 0;
};

/** The mesh. */
class Network : public stats::Group
{
  public:
    explicit Network(const NetworkParams &params,
                     stats::Group *parent = nullptr);

    uint32_t numNodes() const { return _numNodes; }

    /** Attach the machine's event recorder (nullptr: tracing off). */
    void setTraceRecorder(trace::Recorder *r) { trec = r; }

    /** Inject a packet at its source router. */
    void send(Packet pkt);

    /** Advance every link by one cycle. */
    void tick();

    /**
     * Drain packets that have arrived at @p node into @p out. The
     * buffer is cleared first and is caller-owned so a machine ticking
     * every node every cycle reuses one allocation instead of
     * constructing a fresh vector per node per cycle.
     */
    void deliver(uint32_t node, std::vector<Packet> &out);

    /** @return true when no packet is anywhere in the network. */
    bool idle() const { return inFlight == 0; }

    /**
     * Earliest cycle at which the network can do observable work: a
     * link moving a head flit or an arrived packet finishing ejection.
     * kNeverCycle when nothing is in flight. Used by the machines'
     * cycle-skipping run loops.
     */
    uint64_t nextEventCycle() const;

    /**
     * Fast-forward @p cycles cycles during which the caller has
     * established (via nextEventCycle()) that no link or ejection port
     * has work. Equivalent to @p cycles tick() calls.
     */
    void skip(uint64_t cycles) { _cycle += cycles; }

    /** Zero-load round-trip latency between @p a and @p b. */
    uint32_t unloadedRoundTrip(uint32_t a, uint32_t b,
                               uint32_t flits) const;

    /** Manhattan distance in hops. */
    uint32_t distance(uint32_t a, uint32_t b) const;

    uint64_t cycle() const { return _cycle; }

    stats::Scalar statPackets;
    stats::Scalar statFlitHops;
    stats::Average statLatency;     ///< send-to-delivery cycles
    stats::Average statHops;

  private:
    struct Hop
    {
        Packet pkt;
        uint64_t readyAt = 0;   ///< when the head reaches this router
    };

    /** One directed link's queue and its serialization state. */
    struct Link
    {
        std::deque<Hop> queue;
        uint64_t busyUntil = 0;
    };

    int coord(uint32_t node, int d) const;
    uint32_t neighbor(uint32_t node, int d, int dir) const;
    /** Link index for (node, dimension, direction). */
    size_t linkIndex(uint32_t node, int d, int dir) const;
    /** Next hop for a packet at @p node headed to dst (or -1: local). */
    int route(uint32_t node, uint32_t dst, int *dir) const;

    void advance(uint32_t node, Hop hop);

    NetworkParams params;
    uint32_t _numNodes;
    trace::Recorder *trec = nullptr;
    std::vector<Link> links;
    std::vector<std::deque<Hop>> arrived;
    uint64_t _cycle = 0;
    uint64_t inFlight = 0;
};

} // namespace april::net

#endif // APRIL_NETWORK_NETWORK_HH

#include "network/telemetry.hh"

#include <algorithm>
#include <limits>

namespace april::net
{

Telemetry::Telemetry(uint32_t num_nodes,
                     std::vector<std::string> class_names,
                     stats::Group *parent, uint32_t max_hops)
    : stats::Group("telemetry", parent),
      statSent(this, "sent", "messages handed to the network"),
      statDelivered(this, "delivered", "messages delivered"),
      statInFlight(this, "inFlight",
                   "messages sent but not yet delivered"),
      statHops(this, "hops",
               "mesh hop distance of delivered messages"),
      nodes(num_nodes), maxHops_(max_hops),
      pairMatrix(num_nodes <= kPairMatrixMaxNodes),
      classNames(std::move(class_names))
{
    size_t classes = classNames.size();
    size_t hop_slots = size_t(maxHops_) + 1;
    srcSlots.resize(nodes);
    dstSlots.resize(nodes);
    for (SrcSlot &s : srcSlots) {
        s.count.resize(classes, 0);
        s.flits.resize(classes, 0);
    }
    for (DstSlot &d : dstSlots) {
        d.count.resize(classes, 0);
        d.flits.resize(classes, 0);
        d.latSum.resize(classes, 0);
        d.latMin.resize(classes, std::numeric_limits<int64_t>::max());
        d.latMax.resize(classes, std::numeric_limits<int64_t>::min());
        d.buckets.resize(classes * stats::Histogram::kDefaultBuckets,
                         0);
        if (pairMatrix) {
            d.pairCount.resize(size_t(nodes) * classes, 0);
            d.pairFlits.resize(size_t(nodes) * classes, 0);
        }
        d.hopCount.resize(hop_slots, 0);
        d.hopLatSum.resize(hop_slots, 0);
        d.hopLatMin.resize(hop_slots,
                           std::numeric_limits<int64_t>::max());
        d.hopLatMax.resize(hop_slots,
                           std::numeric_limits<int64_t>::min());
        d.hopBuckets.resize(hop_slots *
                                stats::Histogram::kDefaultBuckets,
                            0);
    }
    statClassSent.reserve(classes);
    statClassDelivered.reserve(classes);
    statClassFlits.reserve(classes);
    statLatency.reserve(classes);
    for (const std::string &name : classNames) {
        statClassSent.push_back(std::make_unique<stats::Scalar>(
            this, "sent" + name, name + " messages sent"));
        statClassDelivered.push_back(std::make_unique<stats::Scalar>(
            this, "delivered" + name, name + " messages delivered"));
        statClassFlits.push_back(std::make_unique<stats::Scalar>(
            this, "flits" + name, name + " flits delivered"));
        statLatency.push_back(std::make_unique<stats::Histogram>(
            this, "latency" + name,
            name + " send-to-delivery cycles"));
    }
    statHopLatency.reserve(hop_slots);
    for (size_t h = 0; h < hop_slots; ++h) {
        statHopLatency.push_back(std::make_unique<stats::Histogram>(
            this, "latencyHops" + std::to_string(h),
            "send-to-delivery cycles at hop distance " +
                std::to_string(h)));
    }
}

void
Telemetry::recordDeliver(uint32_t src, uint32_t dst, uint8_t cls,
                         uint32_t flits, uint64_t latency,
                         uint32_t hops)
{
    DstSlot &d = dstSlots[dst];
    ++d.count[cls];
    d.flits[cls] += flits;
    d.latSum[cls] += latency;
    auto lat = int64_t(latency);
    d.latMin[cls] = std::min(d.latMin[cls], lat);
    d.latMax[cls] = std::max(d.latMax[cls], lat);
    ++d.buckets[size_t(cls) * stats::Histogram::kDefaultBuckets +
                stats::Histogram::logBucket(
                    lat, stats::Histogram::kDefaultBuckets)];
    if (pairMatrix) {
        ++d.pairCount[size_t(src) * numClasses() + cls];
        d.pairFlits[size_t(src) * numClasses() + cls] += flits;
    }
    uint32_t h = std::min(hops, maxHops_);
    ++d.hopCount[h];
    d.hopLatSum[h] += latency;
    d.hopLatMin[h] = std::min(d.hopLatMin[h], lat);
    d.hopLatMax[h] = std::max(d.hopLatMax[h], lat);
    ++d.hopBuckets[size_t(h) * stats::Histogram::kDefaultBuckets +
                   stats::Histogram::logBucket(
                       lat, stats::Histogram::kDefaultBuckets)];
}

uint64_t
Telemetry::srcTotal(size_t cls) const
{
    uint64_t total = 0;
    for (const SrcSlot &s : srcSlots)
        total += s.count[cls];
    return total;
}

uint64_t
Telemetry::classDelivered(size_t cls) const
{
    uint64_t total = 0;
    for (const DstSlot &d : dstSlots)
        total += d.count[cls];
    return total;
}

uint64_t
Telemetry::classFlits(size_t cls) const
{
    uint64_t total = 0;
    for (const DstSlot &d : dstSlots)
        total += d.flits[cls];
    return total;
}

void
Telemetry::foldStats()
{
    constexpr size_t kBuckets = stats::Histogram::kDefaultBuckets;
    uint64_t sent_total = 0;
    uint64_t delivered_total = 0;
    std::vector<uint64_t> buckets(kBuckets);
    for (size_t c = 0; c < numClasses(); ++c) {
        uint64_t sent = 0;
        uint64_t sent_flits = 0;
        for (const SrcSlot &s : srcSlots) {
            sent += s.count[c];
            sent_flits += s.flits[c];
        }
        (void)sent_flits;
        uint64_t delivered = 0;
        uint64_t flits = 0;
        uint64_t lat_sum = 0;
        int64_t lat_min = std::numeric_limits<int64_t>::max();
        int64_t lat_max = std::numeric_limits<int64_t>::min();
        std::fill(buckets.begin(), buckets.end(), 0);
        for (const DstSlot &d : dstSlots) {
            delivered += d.count[c];
            flits += d.flits[c];
            lat_sum += d.latSum[c];
            lat_min = std::min(lat_min, d.latMin[c]);
            lat_max = std::max(lat_max, d.latMax[c]);
            for (size_t b = 0; b < kBuckets; ++b)
                buckets[b] += d.buckets[c * kBuckets + b];
        }
        *statClassSent[c] = double(sent);
        *statClassDelivered[c] = double(delivered);
        *statClassFlits[c] = double(flits);
        statLatency[c]->set(buckets, delivered, double(lat_sum),
                            lat_min, lat_max);
        sent_total += sent;
        delivered_total += delivered;
    }
    statSent = double(sent_total);
    statDelivered = double(delivered_total);
    statInFlight = double(sent_total - delivered_total);

    // Per-hop-distance aggregates: one latency histogram per distance
    // plus the distance distribution itself.
    std::vector<uint64_t> hop_dist_buckets(kBuckets, 0);
    uint64_t hop_msgs = 0;
    uint64_t hop_sum = 0;
    int64_t hop_min = std::numeric_limits<int64_t>::max();
    int64_t hop_max = std::numeric_limits<int64_t>::min();
    for (uint32_t h = 0; h <= maxHops_; ++h) {
        uint64_t count = 0;
        uint64_t lat_sum = 0;
        int64_t lat_min = std::numeric_limits<int64_t>::max();
        int64_t lat_max = std::numeric_limits<int64_t>::min();
        std::fill(buckets.begin(), buckets.end(), 0);
        for (const DstSlot &d : dstSlots) {
            count += d.hopCount[h];
            lat_sum += d.hopLatSum[h];
            lat_min = std::min(lat_min, d.hopLatMin[h]);
            lat_max = std::max(lat_max, d.hopLatMax[h]);
            for (size_t b = 0; b < kBuckets; ++b)
                buckets[b] += d.hopBuckets[size_t(h) * kBuckets + b];
        }
        statHopLatency[h]->set(buckets, count, double(lat_sum),
                               lat_min, lat_max);
        if (count) {
            hop_dist_buckets[stats::Histogram::logBucket(
                int64_t(h), kBuckets)] += count;
            hop_msgs += count;
            hop_sum += uint64_t(h) * count;
            hop_min = std::min(hop_min, int64_t(h));
            hop_max = std::max(hop_max, int64_t(h));
        }
    }
    statHops.set(hop_dist_buckets, hop_msgs, double(hop_sum), hop_min,
                 hop_max);
}

} // namespace april::net

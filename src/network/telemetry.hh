/**
 * @file
 * Network telemetry: per-node-pair message counts/flits by message
 * class, send-to-delivery latency histograms per class, and an
 * in-flight gauge — the mesh-hotspot evidence for the ROADMAP's
 * hop-based-routing work.
 *
 * The class vocabulary is injected by the enclosing machine as a
 * plain name table (like trace::RecorderConfig::trapNames), so this
 * library stays independent of the coherence protocol.
 *
 * Determinism follows the Network::foldStats pattern: sends
 * accumulate into per-source slots (owned by the sending shard),
 * deliveries into per-destination slots (owned by the delivering
 * shard), and foldStats() recomputes the stats::Group members in
 * canonical node order at deterministic synchronization points —
 * identical for every host-thread count and with cycle-skipping on
 * or off.
 */

#ifndef APRIL_NETWORK_TELEMETRY_HH
#define APRIL_NETWORK_TELEMETRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace april::net
{

/** Per-class, per-node-pair accounting of machine messages. */
class Telemetry : public stats::Group
{
  public:
    /// Nodes above this count drop the O(nodes^2 x classes) per-pair
    /// matrices (at 1024 nodes they alone would cost ~180 MB); the
    /// per-class and per-hop-distance aggregates stay on at any scale.
    static constexpr uint32_t kPairMatrixMaxNodes = 256;

    /**
     * @param max_hops largest hop distance the topology can produce
     *        (mesh: dim * (radix - 1)); sizes the per-distance
     *        latency histograms. 0 keeps only the aggregate ones.
     */
    Telemetry(uint32_t num_nodes, std::vector<std::string> class_names,
              stats::Group *parent = nullptr, uint32_t max_hops = 0);

    /** Account one message injected into the network at @p src.
     *  Only @p src's shard may call this for @p src. */
    void
    recordSend(uint32_t src, uint32_t dst, uint8_t cls, uint32_t flits)
    {
        (void)dst;
        SrcSlot &s = srcSlots[src];
        ++s.count[cls];
        s.flits[cls] += flits;
    }

    /** Account one message delivered at @p dst after @p latency
     *  cycles over @p hops mesh hops. Only @p dst's shard may call
     *  this for @p dst. */
    void recordDeliver(uint32_t src, uint32_t dst, uint8_t cls,
                       uint32_t flits, uint64_t latency,
                       uint32_t hops = 0);

    /**
     * Recompute the stats::Group members from the per-node slots in
     * canonical node order. Idempotent; called by the machine at the
     * same synchronization points as Network::foldStats.
     */
    void foldStats();

    uint32_t numNodes() const { return nodes; }
    size_t numClasses() const { return classNames.size(); }
    const std::string &className(size_t c) const
    {
        return classNames[c];
    }

    /** @return true when the per-pair matrices are tracked (nodes <=
     *  kPairMatrixMaxNodes); pairCount/pairFlits read 0 otherwise. */
    bool hasPairMatrix() const { return pairMatrix; }

    /** Messages delivered src -> dst of class @p cls (post-fold not
     *  required: reads the raw slot). */
    uint64_t
    pairCount(uint32_t src, uint32_t dst, uint8_t cls) const
    {
        if (!pairMatrix)
            return 0;
        return dstSlots[dst].pairCount[src * numClasses() + cls];
    }

    uint64_t
    pairFlits(uint32_t src, uint32_t dst, uint8_t cls) const
    {
        if (!pairMatrix)
            return 0;
        return dstSlots[dst].pairFlits[src * numClasses() + cls];
    }

    /** Largest hop distance the per-distance histograms cover. */
    uint32_t maxHops() const { return maxHops_; }

    /** Send-to-delivery latency of messages that crossed exactly
     *  @p hops mesh hops (post-fold). Requires hops <= maxHops(). */
    const stats::Histogram &hopLatency(uint32_t hops) const
    {
        return *statHopLatency[hops];
    }

    uint64_t classSent(size_t c) const { return srcTotal(c); }
    uint64_t classDelivered(size_t c) const;
    uint64_t classFlits(size_t c) const;
    const stats::Histogram &classLatency(size_t c) const
    {
        return *statLatency[c];
    }

    /// Total messages handed to the network / delivered (post-fold).
    stats::Scalar statSent;
    stats::Scalar statDelivered;
    /// Sent-but-undelivered gauge on the IntervalSampler grid.
    stats::Scalar statInFlight;
    /// Mesh hop distance of every delivered message (post-fold) —
    /// the traffic-locality curve of the dimension-ordered mesh.
    stats::Histogram statHops;

  private:
    uint64_t srcTotal(size_t cls) const;

    struct alignas(64) SrcSlot
    {
        std::vector<uint64_t> count;    ///< [class]
        std::vector<uint64_t> flits;    ///< [class]
    };

    struct alignas(64) DstSlot
    {
        std::vector<uint64_t> count;     ///< [class]
        std::vector<uint64_t> flits;     ///< [class]
        std::vector<uint64_t> latSum;    ///< [class]
        std::vector<int64_t> latMin;     ///< [class]
        std::vector<int64_t> latMax;     ///< [class]
        std::vector<uint64_t> buckets;   ///< [class][latency bucket]
        std::vector<uint64_t> pairCount; ///< [src][class]
        std::vector<uint64_t> pairFlits; ///< [src][class]
        std::vector<uint64_t> hopCount;  ///< [hop distance]
        std::vector<uint64_t> hopLatSum; ///< [hop distance]
        std::vector<int64_t> hopLatMin;  ///< [hop distance]
        std::vector<int64_t> hopLatMax;  ///< [hop distance]
        /// [hop distance][latency bucket]
        std::vector<uint64_t> hopBuckets;
    };

    uint32_t nodes;
    uint32_t maxHops_ = 0;
    bool pairMatrix = true;
    std::vector<std::string> classNames;
    std::vector<SrcSlot> srcSlots;
    std::vector<DstSlot> dstSlots;

    // Per-class folded statistics (pointers: stats register their
    // address with the Group, so they must never move).
    std::vector<std::unique_ptr<stats::Scalar>> statClassSent;
    std::vector<std::unique_ptr<stats::Scalar>> statClassDelivered;
    std::vector<std::unique_ptr<stats::Scalar>> statClassFlits;
    std::vector<std::unique_ptr<stats::Histogram>> statLatency;
    /// [hop distance] send-to-delivery latency histograms.
    std::vector<std::unique_ptr<stats::Histogram>> statHopLatency;
};

} // namespace april::net

#endif // APRIL_NETWORK_TELEMETRY_HH

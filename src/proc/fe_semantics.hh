/**
 * @file
 * Shared full/empty access semantics (Table 2), applied to a word
 * that is already resident (cache hit or perfect memory).
 *
 * Factored out so the perfect-memory port and the cache/directory
 * controller implement identical synchronization behavior.
 */

#ifndef APRIL_PROC_FE_SEMANTICS_HH
#define APRIL_PROC_FE_SEMANTICS_HH

#include "isa/types.hh"
#include "proc/ports.hh"

namespace april
{

/**
 * Apply one load/store/test&set to a resident word.
 *
 * Trapping flavors leave the word untouched on a mismatch and report
 * FeFault; otherwise data moves and the f/e bit is updated per the
 * instruction's feModify option.
 */
inline MemResult
applyFeAccess(MemWord &w, const MemAccess &req)
{
    bool was_full = w.full;

    switch (req.op) {
      case MemOp::Load:
        if (req.feTrap && !w.full)
            return MemResult::feFault();
        if (req.feModify)
            w.full = false;                 // reset: consuming load
        return MemResult::ready(w.data, was_full);

      case MemOp::Store:
        if (req.feTrap && w.full)
            return MemResult::feFault();
        w.data = req.storeData;
        if (req.feModify)
            w.full = true;                  // set: producing store
        return MemResult::ready(0, was_full);

      case MemOp::Tas: {
        Word old = w.data;
        w.data = req.storeData;
        return MemResult::ready(old, was_full);
      }

      case MemOp::Flush:
        return MemResult::ready(0, was_full);
    }
    return MemResult::ready(0, was_full);
}

} // namespace april

#endif // APRIL_PROC_FE_SEMANTICS_HH

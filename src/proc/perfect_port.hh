/**
 * @file
 * Zero-latency memory port and a standalone I/O port.
 *
 * The paper's Table 3 multiprocessor measurements "used the processor
 * simulator without the cache and network simulators, in effect
 * simulating a shared-memory machine with no memory latency"
 * (Section 7). PerfectMemPort is exactly that configuration: every
 * access hits in one cycle; full/empty semantics still apply.
 */

#ifndef APRIL_PROC_PERFECT_PORT_HH
#define APRIL_PROC_PERFECT_PORT_HH

#include <vector>

#include "common/random.hh"
#include "mem/memory.hh"
#include "proc/fe_semantics.hh"
#include "proc/ports.hh"

namespace april
{

/** Single-cycle memory port over the shared-memory image. */
class PerfectMemPort : public MemPort
{
  public:
    explicit PerfectMemPort(SharedMemory *memory) : mem(memory) {}

    MemResult
    access(const MemAccess &req) override
    {
        return applyFeAccess(mem->word(req.addr), req);
    }

  private:
    SharedMemory *mem;
};

/**
 * Minimal node I/O for single-processor runs and unit tests. The
 * console is captured in a vector so tests can assert on output.
 */
class SimpleIoPort : public IoPort
{
  public:
    explicit SimpleIoPort(uint32_t node_id = 0, uint32_t num_nodes = 1,
                          uint64_t seed = 1)
        : nodeId(node_id), numNodes(num_nodes), rng(seed)
    {}

    Word
    ioRead(IoReg r) override
    {
        switch (r) {
          case IoReg::NodeId: return nodeId;
          case IoReg::NumNodes: return numNodes;
          case IoReg::Random: return Word(rng.next());
          case IoReg::CycleCount: return cycleProxy;
          default: return 0;
        }
    }

    uint32_t
    ioWrite(IoReg r, Word value) override
    {
        switch (r) {
          case IoReg::ConsoleOut:
            console.push_back(value);
            break;
          case IoReg::MachineHalt:
            haltRequested = true;
            break;
          default:
            break;
        }
        return 0;
    }

    std::vector<Word> console;      ///< captured ConsoleOut words
    bool haltRequested = false;
    Word cycleProxy = 0;            ///< settable for tests

  private:
    uint32_t nodeId;
    uint32_t numNodes;
    Rng rng;
};

} // namespace april

#endif // APRIL_PROC_PERFECT_PORT_HH

/**
 * @file
 * Interfaces between the APRIL core and the memory system / node I/O.
 *
 * The processor issues one MemAccess per memory instruction and acts
 * on the MemResult:
 *
 *   Ready    access completed this cycle (plus extraCycles of hold,
 *            e.g. a local cache miss serviced while the processor
 *            waits on MHOLD — Section 5).
 *   FeFault  full/empty mismatch on a trapping flavor; no side effects
 *            were applied; the processor raises FeEmpty/FeFull.
 *   Switch   the access needs the network (remote cache miss) and the
 *            instruction's miss policy is Trap: the controller forces
 *            a context switch (MEXC), the transaction proceeds in the
 *            background, and the access will be retried later.
 *
 *   Retry    the controller holds the processor (MHOLD) for a
 *            duration it cannot bound up front (e.g. a local miss
 *            with outstanding invalidations): the core stalls one
 *            cycle and re-issues the access.
 *
 * The full/empty *semantics* (Table 2) are applied by the port because
 * the bits live with the data; the trap *decision* flows back through
 * FeFault so the processor can vector accordingly.
 */

#ifndef APRIL_PROC_PORTS_HH
#define APRIL_PROC_PORTS_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "isa/types.hh"

namespace april
{

/** Kind of memory operation presented to a port. */
enum class MemOp : uint8_t
{
    Load,
    Store,
    Tas,        ///< atomic test&set (Encore-style synchronization)
    Flush,      ///< write back + invalidate line (Section 3.4)
};

/** One memory request from the core. */
struct MemAccess
{
    Addr addr = 0;              ///< word address (tag bits stripped)
    MemOp op = MemOp::Load;
    Word storeData = 0;
    bool feTrap = false;        ///< Table 2: trap on empty/full
    bool feModify = false;      ///< Table 2: reset (LD) / set (ST) bit
    MissPolicy miss = MissPolicy::Wait;
    uint8_t frame = 0;          ///< issuing task frame
    bool trapsEnabled = true;   ///< in-handler accesses must not Switch
};

/** Outcome of a memory request. */
struct MemResult
{
    enum class Kind : uint8_t { Ready, FeFault, Switch, Retry };

    Kind kind = Kind::Ready;
    Word data = 0;              ///< load/tas result
    bool wasFull = true;        ///< f/e state observed (condition bit)
    uint32_t extraCycles = 0;   ///< additional hold cycles (MHOLD)
    uint32_t fenceDelta = 0;    ///< FLUSH: 1 if a dirty line went out

    static MemResult
    ready(Word data, bool was_full, uint32_t extra = 0)
    {
        return {Kind::Ready, data, was_full, extra, 0};
    }

    static MemResult feFault() { return {Kind::FeFault, 0, false, 0, 0}; }
    static MemResult forceSwitch() { return {Kind::Switch, 0, false, 0, 0}; }
    /// MHOLD with unknown completion: the core re-issues next cycle.
    static MemResult retry() { return {Kind::Retry, 0, false, 0, 0}; }
};

/**
 * Passive observer of *completed* data accesses (result kind Ready).
 * The port invokes it after full/empty semantics have been applied, so
 * the observer sees the data and f/e state the processor sees; faulted,
 * retried, and context-switched attempts are not reported. Used by the
 * dynamic race detector.
 */
class MemObserver
{
  public:
    virtual ~MemObserver() = default;

    virtual void observe(uint64_t cycle, uint32_t node, uint32_t pc,
                         const MemAccess &req, const MemResult &res) = 0;
};

/** Memory-side interface implemented by ports (perfect or cached). */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    /** Perform (or begin) one access. */
    virtual MemResult access(const MemAccess &req) = 0;

    /**
     * @return true when the outstanding remote transaction of @p frame
     * has completed and a retry would hit (used by switch-spinning).
     */
    virtual bool fillReady(uint8_t frame) const { (void)frame; return true; }
};

/** Memory-mapped I/O register numbers (LDIO/STIO, Section 3.4). */
enum class IoReg : int32_t
{
    ConsoleOut = 0,   ///< write: append tagged word to the console
    CycleCount = 1,   ///< read: machine cycle counter
    NodeId = 2,       ///< read: this node's number
    NumNodes = 3,     ///< read: number of nodes in the machine
    Random = 4,       ///< read: hardware RNG (work-stealing victims)
    IpiDest = 5,      ///< write: target node for the next IPI
    IpiSend = 6,      ///< write: fire the IPI (value = vector argument)
    MachineHalt = 7,  ///< write: stop the whole machine
    // Block-transfer mechanism (Section 3.4: "a block-transfer
    // mechanism for efficient transfer of large blocks of data").
    BlockSrc = 8,     ///< write: source word address (raw)
    BlockDst = 9,     ///< write: destination word address (raw)
    BlockGo = 10,     ///< write: length in words; performs the copy
};

/** Node I/O implemented by the enclosing machine. */
class IoPort
{
  public:
    virtual ~IoPort() = default;

    virtual Word ioRead(IoReg r) = 0;

    /**
     * Perform a write to an I/O register.
     * @return extra cycles the processor is held (e.g. a block
     *         transfer proceeds at one word per cycle).
     */
    virtual uint32_t ioWrite(IoReg r, Word value) = 0;
};

} // namespace april

#endif // APRIL_PROC_PORTS_HH

#include "proc/processor.hh"

#include <algorithm>
#include <iostream>

#include "common/bits.hh"
#include "common/debug.hh"
#include "common/logging.hh"
#include "profile/pc_sampler.hh"

namespace april
{

Processor::Processor(const ProcParams &p, const Program *program,
                     MemPort *mem_port, IoPort *io_port,
                     stats::Group *parent)
    : stats::Group("proc" + std::to_string(p.nodeId), parent),
      statCycles(this, "cycles", "total cycles"),
      statInsts(this, "insts", "completed instructions"),
      statStallCycles(this, "stallCycles", "hold cycles (MHOLD etc.)"),
      statTrapCycles(this, "trapCycles", "trap-entry squash cycles"),
      statSwitches(this, "contextSwitches", "context switches"),
      statUtilization(this, "utilization",
                      "useful-cycle fraction "
                      "((Useful + Hazard buckets) / cycles)",
                      [this] {
                          return statCycles.value()
                              ? (statBuckets[size_t(
                                     profile::Bucket::Useful)].value() +
                                 statBuckets[size_t(
                                     profile::Bucket::Hazard)].value())
                                  / statCycles.value()
                              : 0.0;
                      }),
      statSwitchGap(this, "switchGap",
                    "cycles between consecutive context switches"),
      params(p), prog(program), mem(mem_port), io(io_port),
      frames(p.numFrames)
{
    if (p.numFrames == 0)
        fatal("Processor: at least one task frame required");
    statTraps.reserve(size_t(TrapKind::NumKinds));
    for (size_t k = 0; k < size_t(TrapKind::NumKinds); ++k) {
        const char *kind = trapKindName(TrapKind(k));
        statTraps.emplace_back(this, std::string("traps") + kind,
                               std::string(kind) + " traps");
    }
    statBuckets.reserve(profile::kNumBuckets);
    for (size_t b = 0; b < profile::kNumBuckets; ++b) {
        const char *bucket = profile::bucketName(profile::Bucket(b));
        statBuckets.emplace_back(this, std::string("cycles") + bucket,
                                 std::string("cycles attributed to the ")
                                     + bucket + " bucket");
    }
    frameCycles_.resize(p.numFrames);
    spinArmed_.assign(p.numFrames, 0);
    spinPc_.assign(p.numFrames, 0);
    vectorSet.fill(false);
    vectors.fill(0);
    setFrame(0);
}

void
Processor::account(uint32_t frame, profile::Bucket b)
{
    ++statBuckets[size_t(b)];
    ++frameCycles_[frame][size_t(b)];
    if (b == profile::Bucket::Useful && spinArmed_[frame]) {
        spinArmed_[frame] = 0;
        --spinArmedCount_;
    }
}

profile::Bucket
Processor::bucketForTrap(TrapKind kind)
{
    switch (kind) {
      case TrapKind::RemoteMiss:
      case TrapKind::FeFull:
      case TrapKind::FeEmpty:
        return profile::Bucket::Switch;
      default:
        return profile::Bucket::Trap;
    }
}

void
Processor::verifyCycleAccounting() const
{
    double sum = 0;
    for (const stats::Scalar &s : statBuckets)
        sum += s.value();
    if (sum != statCycles.value()) {
        panic("cycle accounting broken on node ", params.nodeId,
              ": bucket sum ", sum, " != cycles ", statCycles.value());
    }
    uint64_t frame_sum = 0;
    for (const auto &row : frameCycles_)
        for (uint64_t v : row)
            frame_sum += v;
    if (double(frame_sum) != statCycles.value()) {
        panic("per-frame cycle accounting broken on node ",
              params.nodeId, ": matrix sum ", frame_sum, " != cycles ",
              statCycles.value());
    }
}

void
Processor::setFrame(uint32_t f)
{
    _fp = f;
    Frame &fr = frames[f];
    for (unsigned i = 0; i < reg::numUser; ++i)
        regTable[i] = &fr.regs[i];
    for (unsigned i = 0; i < reg::numGlobal; ++i)
        regTable[reg::numUser + i] = &globals[i];
    for (unsigned i = 0; i < reg::numTrap; ++i)
        regTable[reg::numUser + reg::numGlobal + i] = &fr.trapRegs[i];
}

void
Processor::reset(uint32_t entry_pc)
{
    for (Frame &f : frames)
        f = Frame{};
    globals.fill(0);
    setFrame(0);
    _pc = entry_pc;
    _npc = entry_pc + 1;
    _psr = psr::ET;
    _fence = 0;
    _halted = false;
    stall = 0;
    ipiPending = false;
    handlerBucket_ = profile::Bucket::Useful;
    stallBucket_ = profile::Bucket::Hazard;
    std::fill(spinArmed_.begin(), spinArmed_.end(), uint8_t(0));
    spinArmedCount_ = 0;
}

Word
Processor::readReg(uint8_t r) const
{
    if (r >= reg::numNames)
        panic("register read out of range: ", int(r));
    return r == reg::r0 ? 0 : *regTable[r];
}

void
Processor::writeReg(uint8_t r, Word v)
{
    if (r >= reg::numNames)
        panic("register write out of range: ", int(r));
    if (r != reg::r0)           // r0 is hardwired zero
        *regTable[r] = v;
}

void
Processor::setTrapVector(TrapKind kind, uint32_t entry_pc)
{
    vectors[size_t(kind)] = entry_pc;
    vectorSet[size_t(kind)] = true;
}

uint32_t
Processor::trapVector(TrapKind kind) const
{
    return vectors[size_t(kind)];
}

void
Processor::postIpi(Word arg)
{
    ipiPending = true;
    ipiArg = arg;
}

void
Processor::setConditions(Word result)
{
    _psr &= ~(psr::Z | psr::N);
    if (result == 0)
        _psr |= psr::Z;
    if (int32_t(result) < 0)
        _psr |= psr::N;
}

bool
Processor::condTrue(Cond c) const
{
    bool z = _psr & psr::Z;
    bool n = _psr & psr::N;
    bool f = _psr & psr::F;
    switch (c) {
      case Cond::AL: return true;
      case Cond::EQ: return z;
      case Cond::NE: return !z;
      case Cond::LT: return n;
      case Cond::GE: return !n;
      case Cond::LE: return z || n;
      case Cond::GT: return !z && !n;
      case Cond::FULL: return f;
      case Cond::EMPTY: return !f;
    }
    return false;
}

Word
Processor::operand2(const Instruction &inst) const
{
    return inst.useImm ? Word(inst.imm) : readReg(inst.rs2);
}

void
Processor::fireTaskProbe(const task::Site &s)
{
    Word a = 0;
    Word x = 0;
    if (s.addrReg != task::kNoReg) {
        a = readReg(s.addrReg);
        if (s.addrPtr)
            a = Word(tagged::ptrAddr(a));
    }
    if (s.auxReg != task::kNoReg) {
        x = readReg(s.auxReg);
        if (s.auxPtr)
            x = Word(tagged::ptrAddr(x));
    }
    taskRecord(s.kind, Addr(a), uint32_t(x));
}

void
Processor::taskRecord(task::Ev kind, Addr addr, uint32_t aux)
{
    if (!taskLane_)
        return;
    // The work stamp snapshots this frame's Useful+Hazard counters;
    // they advance only on executed instructions, so the stamp (and
    // with it the whole event) is invariant under cycle skipping.
    const auto &row = frameCycles_[_fp];
    taskLane_->record({_cycle,
                       row[size_t(profile::Bucket::Useful)] +
                           row[size_t(profile::Bucket::Hazard)],
                       params.nodeId, addr, aux, kind, uint8_t(_fp)});
}

void
Processor::noteSwitch(uint32_t from, uint32_t to)
{
    ++statSwitches;
    statSwitchGap.sample(int64_t(_cycle - lastSwitchCycle_));
    lastSwitchCycle_ = _cycle;
    taskRecord(task::Ev::FrameSwitch, Addr(from), to);
    if (trec) {
        trec->record({_cycle, params.nodeId, trace::EventKind::CtxSwitch,
                      uint8_t(from), uint8_t(to), _pc, 0});
    }
    TRACE(Ctx, "c", _cycle, " n", params.nodeId, " switch f", from,
          "->f", to, " pc=", _pc);
}

void
Processor::takeTrap(TrapKind kind, Word arg, Word va)
{
    ++statTraps[size_t(kind)];
    if (trec) {
        trec->record({_cycle, params.nodeId, trace::EventKind::Trap,
                      uint8_t(kind), 0, _pc, 0});
    }
    TRACE(Trap, "c", _cycle, " n", params.nodeId, " ",
          trapKindName(kind), " trap at pc=", _pc, " arg=", arg);
    if (taskLane_) {
        // Future touches are the runtime's wait vocabulary: log them
        // with the touched cell's word address. (f/e faults are logged
        // at the memory path instead, where the address is at hand.)
        if (kind == TrapKind::FutureCompute) {
            taskRecord(task::Ev::Touch,
                       Addr(tagged::ptrAddr(readReg(uint8_t(arg)))), 0);
        } else if (kind == TrapKind::FutureMemory) {
            taskRecord(task::Ev::Touch, Addr(tagged::ptrAddr(va)), 0);
        }
    }
    redirected = true;

    // Classify the trap (§7.5). Switch-class traps feed the spin
    // detector: a repeat trap at the same PC while every frame is
    // armed means the frame revolution found no runnable work.
    profile::Bucket b = bucketForTrap(kind);
    if (b == profile::Bucket::Switch) {
        if (spinArmed_[_fp] && spinPc_[_fp] == _pc) {
            if (spinArmedCount_ == params.numFrames)
                b = profile::Bucket::Idle;
        } else {
            if (!spinArmed_[_fp]) {
                spinArmed_[_fp] = 1;
                ++spinArmedCount_;
            }
            spinPc_[_fp] = _pc;
        }
    }
    cycleBucket_ = b;
    stallBucket_ = b;

    Frame &f = frames[_fp];
    f.trapPC = _pc;
    f.trapNPC = _npc;
    f.trapType = kind;
    f.trapArg = arg;
    f.trapVA = va;

    if (kind == TrapKind::RemoteMiss &&
        params.switchMode == ProcParams::SwitchMode::Hardware) {
        hardwareSwitch();
        return;
    }

    if (!(_psr & psr::ET)) {
        panic("nested ", trapKindName(kind), " trap at pc=", _pc, " [",
              prog->symbolAt(_pc), "] on node ", params.nodeId,
              ": handlers must use non-trapping access flavors");
    }

    if (!vectorSet[size_t(kind)]) {
        panic("trap kind ", trapKindName(kind), " has no vector; pc=",
              _pc, " [", prog->symbolAt(_pc), "] node ", params.nodeId);
    }

    handlerBucket_ = b;
    _psr &= ~psr::ET;
    _pc = vectors[size_t(kind)];
    _npc = _pc + 1;
    // The instruction consumed this cycle; the remaining squash
    // cycles stall the front end (5-cycle total entry by default).
    stall += params.trapEntryCycles - 1;
    statTrapCycles += params.trapEntryCycles;
}

void
Processor::hardwareSwitch()
{
    redirected = true;
    uint32_t prev = _fp;
    Frame &f = frames[_fp];
    f.savedPsr = _psr;
    setFrame((_fp + 1) % params.numFrames);
    Frame &g = frames[_fp];
    _psr = g.savedPsr | psr::ET;
    _pc = g.trapPC;
    _npc = g.trapNPC;
    stall += params.hwSwitchCycles - 1;
    noteSwitch(prev, _fp);
}

void
Processor::tick()
{
    if (_halted)
        return;
    ++_cycle;
    ++statCycles;
    if (pcSampler_)
        pcSampler_->tick(_cycle, _pc);

    // Every cycle is attributed to the frame active when it starts;
    // a mid-cycle switch (takeTrap/INCFP) charges the switcher.
    uint32_t acct_frame = _fp;

    if (stall > 0) {
        --stall;
        ++statStallCycles;
        account(acct_frame, stallBucket_);
        return;
    }

    // Instruction cycles default to the execution context (user code
    // or a handler); execute paths override for faults and holds.
    cycleBucket_ = handlerBucket_;

    if (ipiPending && (_psr & psr::ET)) {
        ipiPending = false;
        takeTrap(TrapKind::Ipi, ipiArg);
        account(acct_frame, cycleBucket_);
        return;
    }

    const Instruction &inst = prog->at(_pc);
    uint32_t exec_pc = _pc;
    if (params.trace) {
        std::cerr << "[n" << params.nodeId << " c" << _cycle
                  << " f" << _fp << "] " << _pc << " ("
                  << prog->symbolAt(_pc) << "): " << disassemble(inst)
                  << "\n";
    }
    execute(inst);
    // A probe fires when its marked instruction completes: a trapped
    // or MHOLD-retried execution redirects and records nothing, so
    // each completed execution logs exactly one event with the site's
    // payload registers still live.
    if (taskProbes_ && !redirected) {
        if (const task::Site *s = taskProbes_->at(exec_pc))
            fireTaskProbe(*s);
    }
    account(acct_frame, cycleBucket_);
}

uint64_t
Processor::run(uint64_t max_cycles)
{
    uint64_t start = _cycle;
    while (!_halted && _cycle - start < max_cycles)
        tick();
    return _cycle - start;
}

uint64_t
Processor::nextEventCycle() const
{
    if (_halted)
        return kNeverCycle;
    // Ticks _cycle+1 .. _cycle+stall only decrement the stall counter;
    // the first tick that executes again is the one after.
    if (stall > 0)
        return _cycle + stall + 1;
    return _cycle + 1;
}

void
Processor::skipCycles(uint64_t cycles)
{
    if (_halted || cycles == 0)
        return;
    if (cycles > stall) {
        panic("Processor::skipCycles(", cycles, ") overruns the next "
              "event (stall=", stall, ") on node ", params.nodeId);
    }
    if (pcSampler_)
        pcSampler_->skip(_cycle, cycles, _pc);
    _cycle += cycles;
    statCycles += double(cycles);
    statStallCycles += double(cycles);
    // The whole window drains one stall whose bucket is already
    // decided; bulk-credit it exactly as per-cycle ticks would.
    statBuckets[size_t(stallBucket_)] += double(cycles);
    frameCycles_[_fp][size_t(stallBucket_)] += cycles;
    stall -= uint32_t(cycles);
}

void
Processor::executeCompute(const Instruction &inst)
{
    Word a = readReg(inst.rs1);
    Word b = operand2(inst);

    // Hardware future detection (Section 5): a strict operation traps
    // when an operand has a non-zero least-significant bit.
    if (inst.strict) {
        if (tagged::isFuture(a)) {
            takeTrap(TrapKind::FutureCompute, inst.rs1);
            return;
        }
        if (!inst.useImm && tagged::isFuture(b)) {
            takeTrap(TrapKind::FutureCompute, inst.rs2);
            return;
        }
    }

    Word r = 0;
    switch (inst.op) {
      case Opcode::ADD: r = a + b; break;
      case Opcode::SUB: r = a - b; break;
      case Opcode::MUL:
        // Widen before multiplying: int32 * int32 overflows (UB) on
        // plenty of legitimate tagged operands; the architected result
        // is the low 32 bits of the full product.
        r = Word(int64_t(int32_t(a)) * int64_t(int32_t(b)));
        stallBucket_ = profile::Bucket::Hazard;
        stall += params.mulCycles - 1;
        break;
      case Opcode::DIV:
        if (b == 0)
            panic("DIV by zero at pc=", _pc, " [", prog->symbolAt(_pc), "]");
        // INT_MIN / -1 overflows (UB in C++); the hardware quotient
        // wraps back to INT_MIN. Widen to make that case defined.
        r = Word(int64_t(int32_t(a)) / int64_t(int32_t(b)));
        stallBucket_ = profile::Bucket::Hazard;
        stall += params.divCycles - 1;
        break;
      case Opcode::REM:
        if (b == 0)
            panic("REM by zero at pc=", _pc, " [", prog->symbolAt(_pc), "]");
        r = Word(int64_t(int32_t(a)) % int64_t(int32_t(b)));
        stallBucket_ = profile::Bucket::Hazard;
        stall += params.divCycles - 1;
        break;
      case Opcode::AND: r = a & b; break;
      case Opcode::OR: r = a | b; break;
      case Opcode::XOR: r = a ^ b; break;
      case Opcode::SLL: r = a << (b & 31); break;
      case Opcode::SRL: r = a >> (b & 31); break;
      case Opcode::SRA: r = Word(int32_t(a) >> (b & 31)); break;
      default:
        panic("executeCompute: bad opcode");
    }

    writeReg(inst.rd, r);
    setConditions(r);
    ++statInsts;
}

void
Processor::executeMemory(const Instruction &inst)
{
    Word ea_raw = readReg(inst.rs1) + Word(inst.imm);

    // Memory instructions share responsibility for detecting futures
    // in their address operands (Section 4): supports implicit touch
    // on dereference (e.g. car of a future in LISP).
    if (inst.strict && tagged::isFuture(ea_raw)) {
        takeTrap(TrapKind::FutureMemory, inst.rs1, ea_raw);
        return;
    }

    MemAccess req;
    req.addr = Addr(ea_raw >> tagged::tagShift);
    req.feTrap = inst.feTrap;
    req.feModify = inst.feModify;
    req.miss = inst.miss;
    req.frame = uint8_t(_fp);
    req.trapsEnabled = (_psr & psr::ET) != 0;

    switch (inst.op) {
      case Opcode::LD: req.op = MemOp::Load; break;
      case Opcode::ST:
        req.op = MemOp::Store;
        req.storeData = readReg(inst.rd);
        break;
      case Opcode::TAS:
        req.op = MemOp::Tas;
        req.storeData = 1;
        break;
      case Opcode::FLUSH: req.op = MemOp::Flush; break;
      default:
        panic("executeMemory: bad opcode");
    }

    MemResult res = mem->access(req);
    switch (res.kind) {
      case MemResult::Kind::Ready:
        break;
      case MemResult::Kind::FeFault:
        // A failed synchronization attempt: the handler will retry
        // (or queue the thread), so this word is a contention point.
        if (trec) {
            trec->record({_cycle, params.nodeId,
                          trace::EventKind::FeRetry,
                          uint8_t(inst.op == Opcode::ST), 0,
                          uint32_t(req.addr), 0});
        }
        TRACE(FE, "c", _cycle, " n", params.nodeId, " f/e ",
              inst.op == Opcode::ST ? "full" : "empty",
              " fault addr=", req.addr, " pc=", _pc);
        taskRecord(task::Ev::FeStall, req.addr, 0);
        takeTrap(inst.op == Opcode::ST ? TrapKind::FeFull
                                       : TrapKind::FeEmpty,
                 inst.rs1, ea_raw);
        return;
      case MemResult::Kind::Switch:
        takeTrap(TrapKind::RemoteMiss, inst.rs1, ea_raw);
        return;
      case MemResult::Kind::Retry:
        // MHOLD: stay on this instruction; the cycle is a stall.
        // Memory wait beats handler context in the accounting (§7.5).
        redirected = true;          // keep the PC chain in place
        ++statStallCycles;
        cycleBucket_ = profile::Bucket::LocalMiss;
        return;
    }

    // Cache-fill / local-memory hold cycles (and the TAS penalty
    // below) drain as memory wait.
    stallBucket_ = profile::Bucket::LocalMiss;
    stall += res.extraCycles;

    // Latch the observed f/e state into the condition bit so that
    // Jfull/Jempty can dispatch on it (Section 4).
    if (res.wasFull)
        _psr |= psr::F;
    else
        _psr &= ~psr::F;

    if (inst.op == Opcode::LD) {
        writeReg(inst.rd, res.data);
        // A non-trapping read-and-empty that found the word already
        // empty is a failed lock acquire spinning in software (the
        // Jempty-retry idiom): a contention point like a TAS retry.
        if (inst.feModify && !inst.feTrap && !res.wasFull)
            taskRecord(task::Ev::TasRetry, req.addr, 0);
    } else if (inst.op == Opcode::TAS) {
        writeReg(inst.rd, res.data);
        setConditions(res.data);
        stall += params.tasExtraCycles;
        if (res.data != 0)
            taskRecord(task::Ev::TasRetry, req.addr, 0);
    } else if (inst.op == Opcode::FLUSH) {
        // "A fence counter is incremented for each dirty cache line
        // that is flushed and decremented for each acknowledgement
        // from memory" (Section 3.4). The controller acks later via
        // decFence(); a clean or absent line contributes nothing.
        _fence += res.fenceDelta;
    }
    ++statInsts;
}

void
Processor::execute(const Instruction &inst)
{
    uint32_t next_pc = _npc;
    uint32_t next_npc = _npc + 1;
    redirected = false;

    if (inst.isCompute()) {
        executeCompute(inst);
        if (!redirected) {
            _pc = next_pc;
            _npc = next_npc;
        }
        return;
    }

    if (inst.isMemory()) {
        executeMemory(inst);
        if (!redirected) {
            _pc = next_pc;
            _npc = next_npc;
        }
        return;
    }

    switch (inst.op) {
      case Opcode::MOVI:
        writeReg(inst.rd, Word(inst.imm));
        break;

      case Opcode::J:
        if (condTrue(inst.cond))
            next_npc = uint32_t(inst.imm);
        break;

      case Opcode::JMPL: {
        uint32_t target = inst.useImm
            ? uint32_t(inst.imm)
            : uint32_t(int32_t(readReg(inst.rs1)) + inst.imm);
        writeReg(inst.rd, Word(_npc + 1));     // link past the delay slot
        next_npc = target;
        break;
      }

      // In the SPARC-based design (TrapHandler mode) INCFP/DECFP only
      // rotate the register frame, like SAVE/RESTORE rotate windows;
      // the PC chain is global and the surrounding handler manages the
      // saved chain. In the custom-APRIL design (Hardware mode) the FP
      // change *is* the 4-cycle hardware context switch: the per-frame
      // PC chain and PSR swap automatically (Section 6.1).
      case Opcode::INCFP:
      case Opcode::DECFP: {
        uint32_t prev = _fp;
        if (params.switchMode == ProcParams::SwitchMode::Hardware) {
            // The FP change *is* the context switch here; its cycle
            // and the hardware drain are switch overhead. (In
            // TrapHandler mode the surrounding cswitch handler already
            // classifies these cycles via handlerBucket_.)
            cycleBucket_ = profile::Bucket::Switch;
            stallBucket_ = profile::Bucket::Switch;
            Frame &f = frames[_fp];
            f.trapPC = next_pc;         // resume after the switch inst
            f.trapNPC = next_npc;
            f.savedPsr = _psr;
            setFrame(inst.op == Opcode::INCFP
                         ? (_fp + 1) % params.numFrames
                         : (_fp + params.numFrames - 1) %
                               params.numFrames);
            Frame &g = frames[_fp];
            _psr = g.savedPsr | psr::ET;
            _pc = g.trapPC;
            _npc = g.trapNPC;
            stall += params.hwSwitchCycles - 1;
            noteSwitch(prev, _fp);
            ++statInsts;
            return;
        }
        setFrame(inst.op == Opcode::INCFP
                     ? (_fp + 1) % params.numFrames
                     : (_fp + params.numFrames - 1) % params.numFrames);
        noteSwitch(prev, _fp);
        break;
      }
      case Opcode::RDFP:
        writeReg(inst.rd, Word(_fp));
        break;
      case Opcode::STFP:
        setFrame(readReg(inst.rs1) % params.numFrames);
        break;

      case Opcode::RDPSR:
        writeReg(inst.rd, _psr);
        break;
      case Opcode::WRPSR:
        _psr = readReg(inst.rs1);
        break;

      case Opcode::RDSPEC: {
        const Frame &f = frames[_fp];
        Word v = 0;
        switch (Spec(inst.imm)) {
          case Spec::TrapPC: v = f.trapPC; break;
          case Spec::TrapNPC: v = f.trapNPC; break;
          case Spec::TrapType: v = Word(f.trapType); break;
          case Spec::TrapArg: v = f.trapArg; break;
          case Spec::TrapVA: v = f.trapVA; break;
          case Spec::NodeId: v = params.nodeId; break;
          case Spec::FrameId: v = _fp; break;
          case Spec::NumFrames: v = params.numFrames; break;
          case Spec::CycleLo: v = Word(_cycle); break;
        }
        writeReg(inst.rd, v);
        break;
      }

      case Opcode::WRSPEC: {
        Frame &f = frames[_fp];
        Word v = readReg(inst.rs1);
        switch (Spec(inst.imm)) {
          case Spec::TrapPC: f.trapPC = v; break;
          case Spec::TrapNPC: f.trapNPC = v; break;
          case Spec::TrapType: f.trapType = TrapKind(v); break;
          case Spec::TrapArg: f.trapArg = v; break;
          case Spec::TrapVA: f.trapVA = v; break;
          default:
            panic("WRSPEC: read-only special register ", inst.imm);
        }
        break;
      }

      case Opcode::RDREGX:
        writeReg(inst.rd,
                 readReg(uint8_t(readReg(inst.rs1) % reg::numNames)));
        break;
      case Opcode::WRREGX:
        writeReg(uint8_t(readReg(inst.rs1) % reg::numNames),
                 readReg(inst.rs2));
        break;

      case Opcode::RETT: {
        const Frame &f = frames[_fp];
        if (inst.imm == 0) {            // retry the trapped instruction
            _pc = f.trapPC;
            _npc = f.trapNPC;
        } else {                        // skip it
            _pc = f.trapNPC;
            _npc = f.trapNPC + 1;
        }
        _psr |= psr::ET;
        // Leaving the handler: subsequent instruction cycles are user
        // code again. This RETT's own cycle still counts as handler
        // (cycleBucket_ was latched at tick entry).
        handlerBucket_ = profile::Bucket::Useful;
        ++statInsts;
        return;
      }

      case Opcode::TRAP: {
        int v = inst.imm;
        if (v < 0 || v > 7)
            panic("TRAP: bad software vector ", v);
        takeTrap(TrapKind(int(TrapKind::SoftTrap0) + v));
        return;
      }

      case Opcode::RDFENCE:
        writeReg(inst.rd, _fence);
        break;

      case Opcode::STIO:
        // I/O holds (e.g. the block-transfer engine) are hazards.
        stallBucket_ = profile::Bucket::Hazard;
        stall += io->ioWrite(IoReg(inst.imm), readReg(inst.rd));
        break;
      case Opcode::LDIO:
        writeReg(inst.rd, io->ioRead(IoReg(inst.imm)));
        break;

      case Opcode::HALT:
        _halted = true;
        ++statInsts;
        return;

      case Opcode::NOP:
        break;

      default:
        panic("unimplemented opcode at pc=", _pc);
    }

    ++statInsts;
    _pc = next_pc;
    _npc = next_npc;
}

} // namespace april

/**
 * @file
 * The APRIL processor core (paper Sections 3-5).
 *
 * A pipelined RISC core extended for multiprocessing:
 *
 *  - N hardware task frames (default 4), each with 32 user registers,
 *    8 trap-window registers and per-frame trap state; selected by the
 *    frame pointer FP. Eight global registers are frame-independent
 *    (Figure 2).
 *  - Coarse-grain multithreading: a thread runs until a remote memory
 *    request or failed synchronization forces a context switch.
 *  - Full/empty-bit memory flavors (Table 2), Jfull/Jempty branches.
 *  - Hardware future detection: strict compute instructions and memory
 *    address operands trap when a value has a set LSB (Section 5).
 *  - A 5-cycle trap entry (pipeline squash + vector computation, the
 *    SPARC minimum the paper cites), with trap handlers running in the
 *    same task frame as the trapped thread.
 *
 * Two context-switch implementations are modeled, matching the paper:
 *
 *  - SwitchMode::TrapHandler — the SPARC-based design: the controller
 *    raises a synchronous trap and a 6-cycle software handler rotates
 *    the frame pointer (11 cycles total, Section 6.1). PC and PSR are
 *    processor-global; per-frame trap state holds the saved chain.
 *  - SwitchMode::Hardware — the custom-APRIL design: the switch is a
 *    4-cycle hardware operation (Section 6.1's "four-cycle context
 *    switch" estimate); no handler instructions run.
 *
 * Timing model: single-issue, one instruction per cycle; MUL/DIV/REM
 * are multi-cycle; a taken trap costs trapEntryCycles; memory holds
 * (MHOLD) stall the core for the port-reported extra cycles.
 */

#ifndef APRIL_PROC_PROCESSOR_HH
#define APRIL_PROC_PROCESSOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "proc/ports.hh"
#include "profile/accounting.hh"
#include "task/task_trace.hh"

namespace april::profile
{
class PcSampler;
} // namespace april::profile

namespace april
{

/** Processor configuration. */
struct ProcParams
{
    enum class SwitchMode { TrapHandler, Hardware };

    uint32_t numFrames = 4;
    uint32_t trapEntryCycles = 5;   ///< pipeline squash + vector fetch
    SwitchMode switchMode = SwitchMode::TrapHandler;
    uint32_t hwSwitchCycles = 4;    ///< custom-APRIL hardware switch
    uint32_t mulCycles = 5;
    uint32_t divCycles = 20;
    /// Extra hold cycles per TAS. APRIL's f/e operations are ordinary
    /// single-cycle memory accesses; a bus-based machine's test&set is
    /// a locked read-modify-write (bus arbitration + memory round
    /// trip). Encore-baseline runs set this to ~9 (Section 3.3:
    /// "test&set based synchronization requires extra memory
    /// operations").
    uint32_t tasExtraCycles = 0;
    uint32_t nodeId = 0;
    bool trace = false;             ///< print each executed instruction
};

/** PSR bit assignments. */
namespace psr
{
constexpr Word Z = 1u << 0;    ///< zero condition code
constexpr Word N = 1u << 1;    ///< negative condition code
constexpr Word F = 1u << 2;    ///< full/empty condition (Jfull/Jempty)
constexpr Word ET = 1u << 3;   ///< traps enabled
} // namespace psr

/** The APRIL core. */
class Processor : public stats::Group
{
  public:
    /** One hardware task frame (Figure 2). */
    struct Frame
    {
        std::array<Word, reg::numUser> regs{};
        std::array<Word, reg::numTrap> trapRegs{};
        uint32_t trapPC = 0;    ///< saved PC chain (SPARC r17)
        uint32_t trapNPC = 0;   ///< saved PC chain (SPARC r18)
        TrapKind trapType = TrapKind::None;
        Word trapArg = 0;       ///< e.g. register index holding a future
        Word trapVA = 0;        ///< faulting tagged address
        Word savedPsr = 0;      ///< hardware-mode PSR save slot
    };

    Processor(const ProcParams &params, const Program *program,
              MemPort *mem, IoPort *io, stats::Group *parent = nullptr);

    /** Reset all state; frame 0 starts at @p entry_pc. */
    void reset(uint32_t entry_pc);

    /** Advance one cycle (execute, stall, or sit halted). */
    void tick();

    /** Run until halt or until @p max_cycles elapse; @return cycles. */
    uint64_t run(uint64_t max_cycles);

    /**
     * Earliest cycle at which this core can do observable work (i.e.
     * the first tick() that does more than decrement the stall
     * counter): kNeverCycle when halted, cycle() + stall + 1 while
     * stalled, cycle() + 1 when runnable. Machines use this to
     * fast-forward fully idle windows.
     */
    uint64_t nextEventCycle() const;

    /**
     * Fast-forward @p cycles stall cycles in one arithmetic step:
     * advances the cycle counter, credits statCycles/statStallCycles
     * and decrements the stall counter exactly as @p cycles tick()
     * calls would. The caller must not skip to or past
     * nextEventCycle(); a halted core ignores the call (as tick()
     * would). */
    void skipCycles(uint64_t cycles);

    bool halted() const { return _halted; }
    void forceHalt() { _halted = true; }
    uint64_t cycle() const { return _cycle; }
    uint32_t nodeId() const { return params.nodeId; }

    // --- architectural state access (runtime setup, tests) ------------

    uint32_t fp() const { return _fp; }
    void setFp(uint32_t f) { setFrame(f % params.numFrames); }
    uint32_t numFrames() const { return params.numFrames; }
    Frame &frame(uint32_t i) { return frames.at(i); }
    const Frame &frame(uint32_t i) const { return frames.at(i); }

    uint32_t pc() const { return _pc; }
    void setPcChain(uint32_t pc_, uint32_t npc_) { _pc = pc_; _npc = npc_; }
    Word psrWord() const { return _psr; }
    void setPsr(Word v) { _psr = v; }

    /** Read a register in the *active* frame view (0..47). */
    Word readReg(uint8_t r) const;
    /** Write a register in the active frame view (r0 ignored). */
    void writeReg(uint8_t r, Word v);
    Word readGlobal(unsigned g) const { return globals.at(g); }
    void writeGlobal(unsigned g, Word v) { globals.at(g) = v; }

    /** Install the handler entry for a trap kind. */
    void setTrapVector(TrapKind kind, uint32_t entry_pc);
    /** Install the same handler for every software/sync trap kind. */
    uint32_t trapVector(TrapKind kind) const;

    /** Post an asynchronous interprocessor interrupt (Section 3.4). */
    void postIpi(Word arg);

    /** Attach the machine's event recorder (nullptr: tracing off). */
    void setTraceRecorder(trace::Recorder *r) { trec = r; }

    /** Attach a PC sampler (nullptr: sampling off, zero overhead). */
    void setPcSampler(profile::PcSampler *s) { pcSampler_ = s; }

    /**
     * Attach the task probe map and this core's task-event lane
     * (either nullptr: task tracing off, zero overhead). Probes fire
     * when the marked instruction *completes* — a trapped or
     * MHOLD-retried execution records nothing — so each site logs
     * exactly one event per architectural execution.
     */
    void
    setTaskProbe(const task::ProbeMap *m, task::Tracer *lane)
    {
        taskProbes_ = m;
        taskLane_ = lane;
    }

    /** Fence counter (FLUSH acknowledgments outstanding). */
    Word fenceCounter() const { return _fence; }
    void incFence() { ++_fence; }
    void decFence() { if (_fence) --_fence; }

    const Program *program() const { return prog; }

    // --- cycle accounting (DESIGN.md §7.5) -----------------------------

    /** Cycles attributed to bucket @p b on this core so far. */
    uint64_t
    bucketCycles(profile::Bucket b) const
    {
        return uint64_t(statBuckets[size_t(b)].value());
    }

    /** Per-frame attribution matrix: [frame][bucket] cycles. */
    const std::vector<std::array<uint64_t, profile::kNumBuckets>> &
    frameCycles() const
    {
        return frameCycles_;
    }

    /**
     * Panic unless every cycle this core ran is attributed to exactly
     * one bucket: sum over buckets == statCycles, for the per-node
     * scalars and the per-frame matrix alike. Machines check this at
     * quiesce; tests and the differential fuzzer call it directly.
     */
    void verifyCycleAccounting() const;

    // --- statistics ----------------------------------------------------

    stats::Scalar statCycles;
    stats::Scalar statInsts;
    stats::Scalar statStallCycles;   ///< MHOLD + multi-cycle ops
    stats::Scalar statTrapCycles;    ///< trap-entry squash cycles
    stats::Scalar statSwitches;      ///< context switches (both modes)
    stats::Formula statUtilization;  ///< useful-cycle fraction (§7.5)
    stats::Histogram statSwitchGap;  ///< cycles between context switches
    std::vector<stats::Scalar> statTraps;   ///< per TrapKind
    std::vector<stats::Scalar> statBuckets; ///< per profile::Bucket

  private:
    void execute(const Instruction &inst);
    void executeCompute(const Instruction &inst);
    void executeMemory(const Instruction &inst);
    void setConditions(Word result);
    bool condTrue(Cond c) const;

    /** Raise a synchronous trap on the active frame. */
    void takeTrap(TrapKind kind, Word arg = 0, Word va = 0);
    /** Custom-APRIL hardware context switch. */
    void hardwareSwitch();

    /** Switch the active frame and refresh the register-view table. */
    void setFrame(uint32_t f);

    /** Record a context switch (event log + Ctx debug flag). */
    void noteSwitch(uint32_t from, uint32_t to);

    /** Materialize and log a probe site's event (payload registers). */
    void fireTaskProbe(const task::Site &s);
    /** Append one task event stamped with cycle/work/node/frame. */
    void taskRecord(task::Ev kind, Addr addr, uint32_t aux);

    /** Credit the cycle just ticked to @p b for frame @p frame. */
    void account(uint32_t frame, profile::Bucket b);
    /** Bucket class of a trap kind (switch-class vs other). */
    static profile::Bucket bucketForTrap(TrapKind kind);

    Word operand2(const Instruction &inst) const;

    ProcParams params;
    const Program *prog;
    MemPort *mem;
    IoPort *io;
    trace::Recorder *trec = nullptr;
    const task::ProbeMap *taskProbes_ = nullptr;
    task::Tracer *taskLane_ = nullptr;

    std::vector<Frame> frames;
    std::array<Word, reg::numGlobal> globals{};
    /**
     * Flat view of the active frame's 48-register name space: entries
     * 0..31 point into frames[_fp].regs, 32..39 into globals, 40..47
     * into frames[_fp].trapRegs. Rebuilt on frame switch so operand
     * access is a single table lookup instead of chained range
     * compares. Stable because `frames` is never resized after
     * construction.
     */
    std::array<Word *, reg::numNames> regTable{};
    uint32_t _fp = 0;
    uint32_t _pc = 0;
    uint32_t _npc = 1;
    Word _psr = psr::ET;
    Word _fence = 0;

    std::array<uint32_t, size_t(TrapKind::NumKinds)> vectors{};
    std::array<bool, size_t(TrapKind::NumKinds)> vectorSet{};

    bool _halted = false;
    uint64_t _cycle = 0;
    uint32_t stall = 0;         ///< remaining hold cycles
    bool redirected = false;    ///< PC chain replaced by a trap/switch
    bool ipiPending = false;
    Word ipiArg = 0;

    // --- cycle-accounting context (DESIGN.md §7.5) ---------------------

    profile::PcSampler *pcSampler_ = nullptr;
    /// Classification of instruction cycles in the current execution
    /// context: Useful in user code, the trap's bucket inside a
    /// handler (reset by RETT).
    profile::Bucket handlerBucket_ = profile::Bucket::Useful;
    /// Classification of the pending stall cycles; whoever adds to
    /// `stall` sets it, and skipCycles() credits whole windows to it.
    profile::Bucket stallBucket_ = profile::Bucket::Hazard;
    /// Working classification of the cycle being ticked.
    profile::Bucket cycleBucket_ = profile::Bucket::Useful;
    /// [frame][bucket] attribution matrix behind frameCycles().
    std::vector<std::array<uint64_t, profile::kNumBuckets>> frameCycles_;
    /// Switch-spin detection: a frame arms on its first switch-class
    /// trap; a repeat trap at the same PC while *all* frames are armed
    /// means the revolution found no runnable work (Idle). A completed
    /// Useful cycle disarms the frame.
    std::vector<uint8_t> spinArmed_;
    std::vector<uint32_t> spinPc_;
    uint32_t spinArmedCount_ = 0;
    uint64_t lastSwitchCycle_ = 0;  ///< for the switch-gap histogram
};

} // namespace april

#endif // APRIL_PROC_PROCESSOR_HH

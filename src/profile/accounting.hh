/**
 * @file
 * Cycle-accounting buckets (DESIGN.md §7.5).
 *
 * The processor attributes every cycle it runs to exactly one bucket,
 * per node and per task frame, so `sum(buckets) == cycles` holds
 * exactly — under cycle-skipping an entire skipped window is credited
 * in bulk to the bucket that made the window idle, which keeps the
 * attribution bit-identical to the per-cycle loop. This is the
 * measured counterpart of the paper's Equation 1 decomposition of
 * processor utilization.
 */

#ifndef APRIL_PROFILE_ACCOUNTING_HH
#define APRIL_PROFILE_ACCOUNTING_HH

#include <cstddef>

namespace april::profile
{

/** Where one processor cycle went. */
enum class Bucket : unsigned char
{
    /// User instructions completing outside any trap handler.
    Useful,
    /// Context-switch overhead: the switch-causing access, the trap
    /// entry squash, the software cswitch handler (11 cycles total in
    /// TrapHandler mode) or the 4-cycle hardware switch.
    Switch,
    /// Non-switch trap handling: future touches, software traps, IPIs
    /// (entry squash + handler instructions until RETT).
    Trap,
    /// Memory wait with the processor held (MHOLD): cache-fill /
    /// local-miss extra cycles, TAS penalty, non-switching retries.
    LocalMiss,
    /// Cycles burned revisiting a frame that is still blocked — the
    /// switch-spin loop when every frame waits on a remote
    /// transaction or failed synchronization.
    Idle,
    /// Pipeline hazards: multi-cycle MUL/DIV/REM drain, I/O holds.
    Hazard,
};

constexpr size_t kNumBuckets = 6;

constexpr const char *
bucketName(Bucket b)
{
    switch (b) {
      case Bucket::Useful: return "Useful";
      case Bucket::Switch: return "Switch";
      case Bucket::Trap: return "Trap";
      case Bucket::LocalMiss: return "LocalMiss";
      case Bucket::Idle: return "Idle";
      case Bucket::Hazard: return "Hazard";
    }
    return "?";
}

} // namespace april::profile

#endif // APRIL_PROFILE_ACCOUNTING_HH

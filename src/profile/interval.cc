#include "profile/interval.hh"

#include "common/json.hh"

namespace april::profile
{

IntervalSampler::IntervalSampler(uint64_t period,
                                 const stats::Group &root)
    : period_(period)
{
    collect(root, "");
}

void
IntervalSampler::collect(const stats::Group &g, const std::string &prefix)
{
    std::string here =
        prefix.empty() ? g.groupName() : prefix + "." + g.groupName();
    for (const stats::Info *info : g.statsList()) {
        columns_.push_back(here + "." + info->name());
        infos_.push_back(info);
    }
    for (const stats::Group *child : g.childGroups())
        collect(*child, here);
}

void
IntervalSampler::sampleIfDue(uint64_t cycle)
{
    if (!period_ || cycle % period_ != 0 || cycle == lastSampled_)
        return;
    sampleFinal(cycle);
}

void
IntervalSampler::sampleFinal(uint64_t cycle)
{
    if (cycle == lastSampled_)
        return;
    lastSampled_ = cycle;
    Row row;
    row.cycle = cycle;
    row.values.reserve(infos_.size());
    for (const stats::Info *info : infos_)
        row.values.push_back(info->summaryValue());
    rows_.push_back(std::move(row));
}

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const std::string &c : columns_)
        os << "," << c;
    os << "\n";
    for (const Row &row : rows_) {
        os << row.cycle;
        for (double v : row.values) {
            os << ",";
            json::writeNumber(os, v);
        }
        os << "\n";
    }
}

void
IntervalSampler::writeJson(std::ostream &os) const
{
    os << "{\"columns\":[";
    for (size_t i = 0; i < columns_.size(); ++i) {
        os << (i ? "," : "");
        json::writeString(os, columns_[i]);
    }
    os << "],\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
        os << (i ? "," : "") << "{\"cycle\":" << rows_[i].cycle
           << ",\"values\":[";
        for (size_t j = 0; j < rows_[i].values.size(); ++j) {
            os << (j ? "," : "");
            json::writeNumber(os, rows_[i].values[j]);
        }
        os << "]}";
    }
    os << "]}";
}

} // namespace april::profile

/**
 * @file
 * Time-series sampling of the statistics tree.
 *
 * An IntervalSampler snapshots every statistic under a stats::Group
 * (one column per dotted path, one row per sample) each time the
 * machine clock crosses a multiple of the period. The machines clamp
 * their cycle-skip windows at sample boundaries — skipCycles is
 * additive, so splitting one window into two is cycle-exact — which
 * makes the recorded series bit-identical with skipping on or off.
 */

#ifndef APRIL_PROFILE_INTERVAL_HH
#define APRIL_PROFILE_INTERVAL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace april::profile
{

/** Periodic sampler of one statistics tree. */
class IntervalSampler
{
  public:
    /** One snapshot of all columns at a machine cycle. */
    struct Row
    {
        uint64_t cycle;
        std::vector<double> values;
    };

    /**
     * @param period sample every multiple of this many cycles (0
     *        disables sampling entirely)
     * @param root group whose statistics (recursively) form the
     *        columns; must outlive the sampler
     */
    IntervalSampler(uint64_t period, const stats::Group &root);

    uint64_t period() const { return period_; }

    /** First sample boundary strictly after @p cycle. */
    uint64_t
    nextSampleCycle(uint64_t cycle) const
    {
        return period_ ? (cycle / period_ + 1) * period_ : ~uint64_t(0);
    }

    /** Record a row when @p cycle sits on a not-yet-taken boundary. */
    void sampleIfDue(uint64_t cycle);

    /** Record a final row at @p cycle regardless of the grid. */
    void sampleFinal(uint64_t cycle);

    const std::vector<std::string> &columns() const { return columns_; }
    const std::vector<Row> &rows() const { return rows_; }

    /** "cycle,col1,col2,..." header + one line per row. */
    void writeCsv(std::ostream &os) const;

    /** {"columns":[...],"rows":[{"cycle":..,"values":[..]},...]} */
    void writeJson(std::ostream &os) const;

  private:
    void collect(const stats::Group &g, const std::string &prefix);

    uint64_t period_;
    uint64_t lastSampled_ = ~uint64_t(0);
    std::vector<std::string> columns_;
    std::vector<const stats::Info *> infos_;
    std::vector<Row> rows_;
};

} // namespace april::profile

#endif // APRIL_PROFILE_INTERVAL_HH

/**
 * @file
 * Statistical PC sampling for one processor.
 *
 * Every `period` cycles the sampler records the PC the core is at (the
 * instruction about to execute, or the one being waited on while
 * stalled), building a histogram that symbolizes into hotspots. The
 * sample grid is the global cycle count, so a skipped idle window
 * contributes exactly the samples the per-cycle loop would have taken
 * — all at the (necessarily unchanged) stalled PC — keeping profiles
 * bit-identical with cycle-skipping on or off.
 */

#ifndef APRIL_PROFILE_PC_SAMPLER_HH
#define APRIL_PROFILE_PC_SAMPLER_HH

#include <cstdint>
#include <map>

namespace april::profile
{

/** Periodic PC histogram (deterministic, ordered by PC). */
class PcSampler
{
  public:
    explicit PcSampler(uint64_t period) : period_(period) {}

    uint64_t period() const { return period_; }

    /** Called once per executed/stalled cycle, post-increment. */
    void
    tick(uint64_t cycle, uint32_t pc)
    {
        if (period_ && cycle % period_ == 0)
            ++hist_[pc];
    }

    /**
     * Account a skipped stall window: cycles @p from_cycle + 1 ..
     * @p from_cycle + @p cycles, all spent at @p pc. Credits one
     * sample per period boundary inside the window.
     */
    void
    skip(uint64_t from_cycle, uint64_t cycles, uint32_t pc)
    {
        if (!period_ || !cycles)
            return;
        uint64_t n =
            (from_cycle + cycles) / period_ - from_cycle / period_;
        if (n)
            hist_[pc] += n;
    }

    uint64_t
    totalSamples() const
    {
        uint64_t n = 0;
        for (const auto &[pc, c] : hist_)
            n += c;
        return n;
    }

    const std::map<uint32_t, uint64_t> &histogram() const
    {
        return hist_;
    }

  private:
    uint64_t period_;
    std::map<uint32_t, uint64_t> hist_;
};

} // namespace april::profile

#endif // APRIL_PROFILE_PC_SAMPLER_HH

#include "profile/report.hh"

#include <algorithm>
#include <array>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/json.hh"
#include "isa/assembler.hh"
#include "proc/processor.hh"

namespace april::profile
{

namespace
{

double
usefulFraction(const Processor &p)
{
    return p.statUtilization.value();
}

void
writeBuckets(std::ostream &os, const Processor &p)
{
    os << "{";
    for (size_t b = 0; b < kNumBuckets; ++b) {
        os << (b ? "," : "");
        json::writeString(os, bucketName(Bucket(b)));
        os << ":" << p.bucketCycles(Bucket(b));
    }
    os << "}";
}

void
writeFrames(std::ostream &os, const Processor &p)
{
    os << "[";
    const auto &matrix = p.frameCycles();
    for (size_t f = 0; f < matrix.size(); ++f) {
        os << (f ? "," : "") << "[";
        for (size_t b = 0; b < kNumBuckets; ++b)
            os << (b ? "," : "") << matrix[f][b];
        os << "]";
    }
    os << "]";
}

/** Index of the column ending in @p suffix, or npos. */
size_t
findColumn(const std::vector<std::string> &cols,
           const std::string &suffix)
{
    for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i].size() >= suffix.size() &&
            cols[i].compare(cols[i].size() - suffix.size(),
                            suffix.size(), suffix) == 0)
            return i;
    }
    return size_t(-1);
}

} // namespace

std::vector<Hotspot>
hotspots(const ProfileSource &src, uint32_t node)
{
    std::vector<Hotspot> out;
    if (node >= src.samplers.size() || !src.samplers[node])
        return out;
    std::map<std::string, Hotspot> by_symbol;
    for (const auto &[pc, count] : src.samplers[node]->histogram()) {
        std::string sym = src.program
            ? src.program->symbolAt(pc)
            : "pc" + std::to_string(pc);
        auto [it, fresh] = by_symbol.try_emplace(sym);
        if (fresh) {
            it->second.symbol = sym;
            it->second.pc = pc;
        }
        it->second.samples += count;
    }
    out.reserve(by_symbol.size());
    for (auto &[sym, h] : by_symbol)
        out.push_back(std::move(h));
    std::sort(out.begin(), out.end(),
              [](const Hotspot &a, const Hotspot &b) {
                  if (a.samples != b.samples)
                      return a.samples > b.samples;
                  return a.symbol < b.symbol;
              });
    return out;
}

void
writeProfileJson(std::ostream &os, const ProfileSource &src)
{
    os << "{\"schemaVersion\":1,\"totalCycles\":" << src.machineCycles;
    std::array<uint64_t, kNumBuckets> machine_buckets{};
    uint64_t machine_cycles = 0;
    os << ",\"nodes\":[";
    for (size_t n = 0; n < src.procs.size(); ++n) {
        const Processor &p = *src.procs[n];
        os << (n ? "," : "") << "{\"node\":" << p.nodeId()
           << ",\"cycles\":" << uint64_t(p.statCycles.value())
           << ",\"buckets\":";
        writeBuckets(os, p);
        os << ",\"utilization\":";
        json::writeNumber(os, usefulFraction(p));
        os << ",\"frames\":";
        writeFrames(os, p);
        machine_cycles += uint64_t(p.statCycles.value());
        for (size_t b = 0; b < kNumBuckets; ++b)
            machine_buckets[b] += p.bucketCycles(Bucket(b));

        const PcSampler *s =
            n < src.samplers.size() ? src.samplers[n] : nullptr;
        os << ",\"samplePeriod\":" << (s ? s->period() : 0)
           << ",\"samples\":" << (s ? s->totalSamples() : 0)
           << ",\"hotspots\":[";
        std::vector<Hotspot> hs = hotspots(src, uint32_t(n));
        for (size_t i = 0; i < hs.size(); ++i) {
            os << (i ? "," : "") << "{\"symbol\":";
            json::writeString(os, hs[i].symbol);
            os << ",\"pc\":" << hs[i].pc
               << ",\"samples\":" << hs[i].samples << "}";
        }
        os << "]}";
    }
    os << "],\"machine\":{\"cycles\":" << machine_cycles
       << ",\"buckets\":{";
    for (size_t b = 0; b < kNumBuckets; ++b) {
        os << (b ? "," : "");
        json::writeString(os, bucketName(Bucket(b)));
        os << ":" << machine_buckets[b];
    }
    double machine_util = machine_cycles
        ? double(machine_buckets[size_t(Bucket::Useful)] +
                 machine_buckets[size_t(Bucket::Hazard)])
            / double(machine_cycles)
        : 0.0;
    os << "},\"utilization\":";
    json::writeNumber(os, machine_util);
    os << "}";
    if (src.intervals) {
        os << ",\"intervals\":";
        src.intervals->writeJson(os);
    }
    os << "}";
}

void
writeProfileText(std::ostream &os, const ProfileSource &src,
                 size_t top_n)
{
    os << "=== cycle breakdown (" << src.machineCycles
       << " machine cycles) ===\n";
    os << std::left << std::setw(6) << "node" << std::right;
    for (size_t b = 0; b < kNumBuckets; ++b)
        os << std::setw(11) << bucketName(Bucket(b));
    os << std::setw(11) << "cycles" << std::setw(8) << "util" << "\n";
    for (const Processor *p : src.procs) {
        os << std::left << std::setw(6) << p->nodeId() << std::right;
        for (size_t b = 0; b < kNumBuckets; ++b)
            os << std::setw(11) << p->bucketCycles(Bucket(b));
        os << std::setw(11) << uint64_t(p->statCycles.value())
           << std::setw(8) << std::fixed << std::setprecision(3)
           << usefulFraction(*p) << "\n";
        os.unsetf(std::ios::fixed);
    }
    if (src.samplers.empty())
        return;
    for (size_t n = 0; n < src.procs.size(); ++n) {
        std::vector<Hotspot> hs = hotspots(src, uint32_t(n));
        if (hs.empty())
            continue;
        uint64_t total = 0;
        for (const Hotspot &h : hs)
            total += h.samples;
        os << "=== node " << src.procs[n]->nodeId() << " hotspots ("
           << total << " samples) ===\n";
        for (size_t i = 0; i < hs.size() && i < top_n; ++i) {
            os << std::setw(8) << hs[i].samples << "  "
               << std::fixed << std::setprecision(1)
               << (total ? 100.0 * double(hs[i].samples) / double(total)
                         : 0.0)
               << "%  " << hs[i].symbol << " (pc " << hs[i].pc
               << ")\n";
            os.unsetf(std::ios::fixed);
        }
    }
}

void
writeFolded(std::ostream &os, const ProfileSource &src)
{
    for (size_t n = 0; n < src.procs.size(); ++n) {
        for (const Hotspot &h : hotspots(src, uint32_t(n))) {
            os << "node" << src.procs[n]->nodeId() << ";" << h.symbol
               << " " << h.samples << "\n";
        }
    }
}

void
writeCounterTrace(std::ostream &os, const ProfileSource &src)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](uint32_t node, uint64_t ts, double util) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"utilization\",\"ph\":\"C\",\"ts\":" << ts
           << ",\"pid\":" << node << ",\"args\":{\"utilization\":";
        json::writeNumber(os, util);
        os << "}}";
    };
    for (size_t n = 0; n < src.procs.size(); ++n) {
        uint32_t node = src.procs[n]->nodeId();
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
           << ",\"args\":{\"name\":\"node" << node << "\"}}";
    }

    const IntervalSampler *iv = src.intervals;
    bool emitted_rows = false;
    if (iv && iv->rows().size() >= 1) {
        for (size_t n = 0; n < src.procs.size(); ++n) {
            uint32_t node = src.procs[n]->nodeId();
            std::string proc = "proc" + std::to_string(node);
            size_t cu = findColumn(iv->columns(),
                                   proc + ".cyclesUseful");
            size_t ch = findColumn(iv->columns(),
                                   proc + ".cyclesHazard");
            if (cu == size_t(-1) || ch == size_t(-1))
                continue;
            emitted_rows = true;
            uint64_t prev_cycle = 0;
            double prev_work = 0;
            for (const IntervalSampler::Row &row : iv->rows()) {
                double work = row.values[cu] + row.values[ch];
                uint64_t dt = row.cycle - prev_cycle;
                emit(node, row.cycle,
                     dt ? (work - prev_work) / double(dt) : 0.0);
                prev_cycle = row.cycle;
                prev_work = work;
            }
        }
    }
    if (!emitted_rows) {
        // No interval series: one end-of-run sample per node.
        for (size_t n = 0; n < src.procs.size(); ++n) {
            emit(src.procs[n]->nodeId(), src.machineCycles,
                 usefulFraction(*src.procs[n]));
        }
    }
    os << "]}";
}

std::string
cycleBreakdownJson(const std::vector<const Processor *> &procs)
{
    std::ostringstream os;
    os << "{\"nodes\":[";
    for (size_t n = 0; n < procs.size(); ++n) {
        const Processor &p = *procs[n];
        os << (n ? "," : "") << "{\"node\":" << p.nodeId()
           << ",\"cycles\":" << uint64_t(p.statCycles.value())
           << ",\"buckets\":";
        writeBuckets(os, p);
        os << ",\"frames\":";
        writeFrames(os, p);
        os << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace april::profile

/**
 * @file
 * Profile report writers: turn a finished run's cycle-accounting
 * buckets, PC samples and interval series into the formats `april-prof`
 * and the machines export — a human-readable breakdown, profile JSON
 * (schema in tools/april_prof_schema.json), folded-stack text for
 * flamegraph tools, and Perfetto counter tracks of per-node
 * utilization.
 */

#ifndef APRIL_PROFILE_REPORT_HH
#define APRIL_PROFILE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "profile/interval.hh"
#include "profile/pc_sampler.hh"

namespace april
{
class Processor;
class Program;
} // namespace april

namespace april::profile
{

/** Everything the report writers need from a finished run. */
struct ProfileSource
{
    uint64_t machineCycles = 0;
    /// For hotspot symbolization (asm_text labels); may be null.
    const Program *program = nullptr;
    std::vector<const Processor *> procs;
    /// One sampler per processor, or empty when sampling was off.
    std::vector<const PcSampler *> samplers;
    const IntervalSampler *intervals = nullptr;     ///< may be null
};

/** One symbolized hotspot of one node. */
struct Hotspot
{
    std::string symbol;     ///< nearest label at or before the PCs
    uint32_t pc = 0;        ///< lowest sampled PC under the label
    uint64_t samples = 0;
};

/** Per-node hotspots, most-sampled first (ties broken by symbol). */
std::vector<Hotspot> hotspots(const ProfileSource &src, uint32_t node);

/** Full machine profile as JSON (schemaVersion 1). */
void writeProfileJson(std::ostream &os, const ProfileSource &src);

/** Human-readable breakdown + top-@p top_n hotspots per node. */
void writeProfileText(std::ostream &os, const ProfileSource &src,
                      size_t top_n);

/** "nodeN;symbol count" folded-stack lines (flamegraph.pl input). */
void writeFolded(std::ostream &os, const ProfileSource &src);

/**
 * Chrome/Perfetto counter tracks ("ph":"C"): per-node utilization over
 * time from the interval series (one sample per row), or a single
 * end-of-run sample per node when no intervals were recorded.
 */
void writeCounterTrace(std::ostream &os, const ProfileSource &src);

/**
 * Per-node cycle-breakdown JSON alone: buckets, per-frame matrix and
 * total cycles for every processor. This is the string the
 * differential fuzzer compares byte-for-byte between cycle-skip-on
 * and cycle-skip-off runs.
 */
std::string cycleBreakdownJson(const std::vector<const Processor *> &procs);

} // namespace april::profile

#endif // APRIL_PROFILE_REPORT_HH

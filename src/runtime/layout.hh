/**
 * @file
 * Memory layout contracts shared by the run-time system's assembly
 * routines, the Mul-T compiler, and the C++ boot code.
 *
 * Per-node layout (node n owns words [n*W, (n+1)*W)):
 *
 *      +0   .. +15      reserved (tagged immediates alias here)
 *      +16  .. +47      node block (scheduler state, see NodeBlock)
 *      +48  .. +dq      steal deque entries
 *      +dq  .. +tq      eager task-queue entries
 *      +tq  ..          heap (bump allocated; stacks carved from it)
 *
 * Global registers at boot:
 *      g0 = other-tagged pointer to this node's node block
 *      g1 = scheduler entry PC (raw code address)
 *      g2 = this node's id (raw)
 *      g3 = log2(wordsPerNode) (raw, for victim address computation)
 *      g4 = number of nodes (raw)
 *      g5..g7 scratch for the run-time system
 */

#ifndef APRIL_RUNTIME_LAYOUT_HH
#define APRIL_RUNTIME_LAYOUT_HH

#include <cstdint>

#include "isa/types.hh"

namespace april::rt
{

/** Word offsets inside the per-node block. */
namespace nb
{
constexpr int heapPtr = 0;       ///< next free word (raw address)
constexpr int heapLimit = 1;     ///< end of this node's heap
constexpr int stackFree = 2;     ///< free list of stack segments (raw, 0=none)
constexpr int taskLock = 3;      ///< f/e or TAS lock for the task queue
constexpr int taskTop = 4;       ///< task queue pop index (steal side)
constexpr int taskBottom = 5;    ///< task queue push index (owner side)
constexpr int dequeLock = 6;     ///< lock for the lazy steal deque
constexpr int dequeTop = 7;      ///< steal side (oldest marker)
constexpr int dequeBottom = 8;   ///< owner side (newest marker)
constexpr int readyLock = 9;     ///< lock for the ready queue
constexpr int readyHead = 10;    ///< blocked-then-woken threads (raw, 0=none)
constexpr int mainStack = 11;    ///< raw base of the boot thread's stack
constexpr int statSteals = 12;   ///< run-time counter: successful steals
constexpr int statSpawns = 13;   ///< run-time counter: tasks created
constexpr int statBlocks = 14;   ///< run-time counter: threads blocked
constexpr int statResumes = 15;  ///< run-time counter: threads resumed
constexpr int taskBase = 16;     ///< boxed pointer to the task array
constexpr int dequeBase = 17;    ///< boxed pointer to the deque array
constexpr int busyFrames = 18;   ///< frames on this node holding a task
constexpr int size = 32;
} // namespace nb

constexpr Addr nodeBlockOff = 16;           ///< node block at base+16
constexpr uint32_t dequeCapacity = 4096;    ///< lazy markers per node
constexpr uint32_t taskQueueCapacity = 8192;///< eager tasks per node
constexpr Addr dequeOff = nodeBlockOff + nb::size;
constexpr Addr taskQueueOff = dequeOff + dequeCapacity;
constexpr Addr heapOff = taskQueueOff + taskQueueCapacity;

constexpr uint32_t stackWords = 1024;       ///< per-task stack segment
constexpr uint32_t mainStackWords = 1u << 16;

/** Future object layout (heap, word offsets). */
namespace fut
{
constexpr int value = 0;    ///< f/e: empty until resolved (APRIL mode)
constexpr int lock = 1;     ///< guards waiters (+ state in Encore mode)
constexpr int state = 2;    ///< Encore mode: 0 unresolved / 1 resolved
constexpr int waiters = 3;  ///< raw descriptor list head (0 = none)
constexpr int size = 4;
} // namespace fut

/** Eager task descriptor (heap). */
namespace task
{
constexpr int fn = 0;       ///< raw code address
constexpr int future = 1;   ///< tagged future pointer to resolve
constexpr int argc = 2;
constexpr int arg0 = 3;     ///< up to 4 tagged arguments
constexpr int size = 8;
} // namespace task

/**
 * Lazy-future marker (lives in the parent's stack frame).
 *
 * The pop/steal race is resolved with the state word's full/empty bit
 * itself — "the race conditions are resolved using the fine-grain
 * locking provided by the full/empty bits" (Section 3.2):
 *
 *   full,  value 0   present: the owner's pop and a thief's claim
 *                    race with one atomic consuming load (ldenw);
 *                    whoever sees "was full" owns the marker
 *   empty            transient: consumed by the owner (inline path,
 *                    no future ever exists) or by a thief that is
 *                    still copying the continuation's stack
 *   full,  value F   stolen: the thief finished the stack copy,
 *                    created future F and refilled the word; the
 *                    owner's pop spins from empty to here
 *
 * A thief that consumes a *non-zero* value has hit a stale deque
 * entry for an already-stolen marker: it refills the word and moves
 * on. The remaining marker words are written by the owner before the
 * state word is published and are stable until the protocol finishes.
 */
namespace marker
{
constexpr int resumePC = 0; ///< continuation entry (raw code address)
constexpr int frameBase = 1;///< parent sp at the future point (boxed)
constexpr int frameTop = 2; ///< end of the parent frame (boxed)
constexpr int stackBase = 3;///< base of the thread's stack segment
constexpr int state = 4;    ///< f/e claim word (see protocol above)
constexpr int size = 5;
} // namespace marker

/** Blocked-thread descriptor (heap). */
namespace thread
{
constexpr int regsBase = 0; ///< r1..r31 stored at [0..30]
constexpr int pc = 31;      ///< saved trap PC (retry point)
constexpr int npc = 32;
constexpr int psr = 33;
constexpr int link = 34;    ///< intrusive list link (raw, 0 = none)
constexpr int size = 36;
} // namespace thread

/** Lock state conventions. */
constexpr Word lockFreeValue = 0;    ///< TAS lock: 0 free, 1 held

} // namespace april::rt

#endif // APRIL_RUNTIME_LAYOUT_HH

#include "runtime/runtime.hh"

#include "common/bits.hh"
#include "common/debug.hh"
#include "common/logging.hh"

namespace april::rt
{

using reg::t;

namespace
{

/** Shorthand for node-block field offsets. */
int
nbo(int slot)
{
    return wordOff(slot);
}

} // namespace

void
Runtime::emitLockAcquire(Assembler &as, uint8_t base, int slot,
                         uint8_t scratch) const
{
    auto spin = as.fresh("lock");
    as.bind(spin);
    if (opts.encore) {
        // Encore Multimax style: test&set spin lock. Two memory
        // operations per failed probe once the release store is
        // counted, and the lock needs its own word.
        as.tas(scratch, base, nbo(slot));
        as.jRaw(Cond::NE, spin);
        as.nop();
    } else {
        // APRIL style: one consuming load per probe. The f/e bit is
        // both the lock and its storage (Section 3.3): full means
        // unlocked, and ldenw atomically reads-and-empties.
        as.ldenw(scratch, base, nbo(slot));
        as.jRaw(Cond::EMPTY, spin);
        as.nop();
    }
}

void
Runtime::emitLockRelease(Assembler &as, uint8_t base, int slot,
                         uint8_t scratch) const
{
    (void)scratch;
    if (opts.encore)
        as.stnw(reg::r0, base, nbo(slot));      // store 0: free
    else
        as.stfnw(reg::r0, base, nbo(slot));     // set full: unlocked
}

void
Runtime::emitAlloc(Assembler &as, uint32_t nwords, uint8_t rd,
                   uint8_t scratch) const
{
    as.ldnw(rd, reg::g(0), nbo(nb::heapPtr));
    as.addiR(rd, rd, int32_t(nwords));
    as.ldnw(scratch, reg::g(0), nbo(nb::heapLimit));
    as.cmpR(rd, scratch);
    as.jRaw(Cond::GT, sym::fault);
    as.nop();
    as.stnw(rd, reg::g(0), nbo(nb::heapPtr));
    as.subiR(rd, rd, int32_t(nwords));
    as.slliR(rd, rd, tagged::tagShift);
    as.oriR(rd, rd, uint8_t(Tag::Other));
}

void
Runtime::emitCount(Assembler &as, int slot, uint8_t scratch,
                   int32_t delta) const
{
    as.ldnw(scratch, reg::g(0), nbo(slot));
    as.addiR(scratch, scratch, delta);
    as.stnw(scratch, reg::g(0), nbo(slot));
}

void
Runtime::emitEncoreChecks(Assembler &as,
                          std::initializer_list<uint8_t> regs) const
{
    if (!opts.encore)
        return;
    for (uint8_t r : regs) {
        auto ok = as.fresh("swchk");
        as.andiR(t(7), r, 1);
        as.jRaw(Cond::EQ, ok);
        as.nop();
        as.bind(ok);
    }
}

void
Runtime::emitHandlers(Assembler &as) const
{
    // ------------------------------------------------------------------
    // Context-switch trap handler (Section 6.1). Vectored for remote
    // cache misses and for full/empty exceptions (switch-spinning, the
    // policy of the paper's implementation). Six cycles; with the
    // five-cycle trap entry the switch costs 11 cycles.
    // ------------------------------------------------------------------
    as.bind(sym::cswitch);
    as.rdpsr(t(0));         // 1: save PSR into a reserved register
    as.incfp();             // 2: advance one task frame ("save; save"
    as.nop();               // 3:   is two cycles on SPARC)
    as.wrpsr(t(0));         // 4: restore PSR for the new context
    as.nop();               // 5: (the jmpl of SPARC's jmpl/rett pair)
    as.rettRetry();         // 6: resume via the new frame's PC chain

    // Interprocessor interrupts are acknowledged and ignored by
    // default; experiments that use IPIs install their own vector.
    as.bind(sym::ipi);
    as.rettRetry();

    // ------------------------------------------------------------------
    // Future-touch trap handler (Section 6.2). The resolved fast path
    // takes 23 cycles: 5 of trap entry plus 18 below. The 8 nops model
    // the SPARC handler's decode of the trapping instruction to locate
    // the register holding the future (our RDSPEC/RDREGX abstract what
    // SPARC does by fetching the instruction and dispatching).
    // ------------------------------------------------------------------
    as.bind(sym::futureTouch);
    as.rdpsr(t(0));
    for (int i = 0; i < 8; ++i)
        as.nop();
    as.rdspec(t(1), Spec::TrapArg);     // register index of the future
    as.rdregx(t(2), t(1));              // the future pointer itself
    as.subiR(t(3), t(2), 3);            // retag future(101) -> other(010)
    as.ldnw(t(4), t(3), wordOff(fut::value));
    if (opts.encore) {
        // Encore never reaches this handler (no hardware detection),
        // but keep it consistent: state word instead of the f/e bit.
        as.ldnw(t(5), t(3), wordOff(fut::state));
        as.cmpiR(t(5), 0);
        as.jRaw(Cond::EQ, "ft$block");
        as.nop();
    } else {
        as.jRaw(Cond::EMPTY, "ft$block");
        as.nop();
    }
    as.wrregx(t(1), t(4));              // patch the register, then
    as.wrpsr(t(0));
    as.rettRetry();                     // re-execute the instruction

    // Unresolved: either switch-spin (Section 6.2's policy for
    // hardware-detected touches — the task stays loaded, yields one
    // frame, and re-executes the touch when the rotation returns) or
    // block the thread into a descriptor. Blocking is required for
    // eager futures, where the producer may be an unloaded task
    // parked behind the consumer; spinning is deadlock-free for lazy
    // futures, whose producer is always actively computing.
    as.bind("ft$block");
    if (opts.spinTouch) {
        as.incfp();             // same 6-cycle tail as rt$cswitch:
        as.nop();               // rotate one frame and resume via its
        as.wrpsr(t(0));         // PC chain; our frame's retry chain
        as.nop();               // still points at the touch, so the
        as.rettRetry();         // revolution retries it
        return;
    }
    emitAlloc(as, thread::size, t(5), t(6));
    for (uint8_t r = 1; r < 32; ++r)
        as.stnw(r, t(5), wordOff(thread::regsBase + r - 1));
    as.rdspec(t(6), Spec::TrapPC);
    as.stnw(t(6), t(5), wordOff(thread::pc));
    as.rdspec(t(6), Spec::TrapNPC);
    as.stnw(t(6), t(5), wordOff(thread::npc));
    as.stnw(t(0), t(5), wordOff(thread::psr));
    as.stnw(reg::r0, t(5), wordOff(thread::link));

    emitLockAcquire(as, t(3), fut::lock, t(6));
    // Re-check under the lock: the producer may have resolved the
    // future between the trap and here.
    if (opts.encore) {
        as.ldnw(t(6), t(3), wordOff(fut::state));
        as.cmpiR(t(6), 0);
        as.jRaw(Cond::EQ, "ft$enq");
        as.nop();
    } else {
        as.ldnw(t(6), t(3), wordOff(fut::value));
        as.jRaw(Cond::EMPTY, "ft$enq");
        as.nop();
    }
    emitLockRelease(as, t(3), fut::lock, t(6));
    as.wrpsr(t(0));
    as.rettRetry();

    as.bind("ft$enq");
    as.note("tp$block");                // t3 = future cell, t5 = thread
    as.ldnw(t(6), t(3), wordOff(fut::waiters));
    as.stnw(t(6), t(5), wordOff(thread::link));
    as.stnw(t(5), t(3), wordOff(fut::waiters));
    emitLockRelease(as, t(3), fut::lock, t(7));
    emitCount(as, nb::statBlocks, t(7));
    emitCount(as, nb::busyFrames, t(7), -1);
    // Enter the scheduler with traps re-enabled; the thread's state
    // lives in the descriptor now, so this frame is free.
    as.rdpsr(t(7));
    as.oriR(t(7), t(7), int32_t(psr::ET));
    as.wrpsr(t(7));
    as.j(Cond::AL, sym::sched);
}

void
Runtime::emitFutureOps(Assembler &as) const
{
    // make_future: allocate and return (in r1) an unresolved future.
    as.bind(sym::makeFuture);
    emitAlloc(as, fut::size, reg::a(0), t(0));
    if (!opts.encore) {
        // Mark the value slot empty with a consuming load; fresh heap
        // words start full. (state/waiters start 0 from fresh memory.)
        as.ldenw(t(0), reg::a(0), wordOff(fut::value));
    }
    emitEncoreChecks(as, {reg::a(0)});
    // Retag other(010) -> future(101).
    as.addiR(reg::a(0), reg::a(0), 3);
    as.note("tp$mkfut");                // r1 = the new future
    as.ret();

    // resolve: r1 = future, r2 = value. Stores the value, marks the
    // future resolved, and moves all waiting threads to the local
    // ready queue.
    as.bind(sym::resolve);
    as.note("tp$resolve");              // r1 = future being resolved
    emitEncoreChecks(as, {reg::a(0), reg::a(1)});
    as.subiR(t(0), reg::a(0), 3);
    emitLockAcquire(as, t(0), fut::lock, t(1));
    if (opts.encore) {
        as.stnw(reg::a(1), t(0), wordOff(fut::value));
        as.movi(t(1), 1);
        as.stnw(t(1), t(0), wordOff(fut::state));
    } else {
        as.stfnw(reg::a(1), t(0), wordOff(fut::value));
    }
    as.ldnw(t(1), t(0), wordOff(fut::waiters));
    as.stnw(reg::r0, t(0), wordOff(fut::waiters));
    emitLockRelease(as, t(0), fut::lock, t(2));

    auto loop = as.fresh("rvwake");
    auto done = as.fresh("rvdone");
    as.bind(loop);
    as.cmpiR(t(1), 0);
    as.jRaw(Cond::EQ, done);
    as.nop();
    as.ldnw(t(2), t(1), wordOff(thread::link));
    emitLockAcquire(as, reg::g(0), nb::readyLock, t(3));
    as.ldnw(t(3), reg::g(0), nbo(nb::readyHead));
    as.stnw(t(3), t(1), wordOff(thread::link));
    as.stnw(t(1), reg::g(0), nbo(nb::readyHead));
    emitLockRelease(as, reg::g(0), nb::readyLock, t(3));
    as.mov(t(1), t(2));
    as.j(Cond::AL, loop);
    as.bind(done);
    as.ret();

    // spawn: r1 = fn, r2 = future, r3 = argc, r4..r7 = args.
    // Creates an eager ("normal future") task on the local queue;
    // spawn_on additionally takes the target node in r8 — the
    // future-on placement primitive of Section 2.2.
    as.bind(sym::spawn);
    as.mov(8, reg::g(2));               // target = this node
    as.bind(sym::spawnOn);
    emitEncoreChecks(as, {reg::a(0), reg::a(1), reg::a(2), 4, 5, 6, 7});
    emitAlloc(as, task::size, t(0), t(1));
    as.stnw(reg::a(0), t(0), wordOff(task::fn));
    as.stnw(reg::a(1), t(0), wordOff(task::future));
    as.stnw(reg::a(2), t(0), wordOff(task::argc));
    for (int i = 0; i < 4; ++i)
        as.stnw(uint8_t(4 + i), t(0), wordOff(task::arg0 + i));
    as.note("tp$spawn");                // t0 = descriptor, r2 = future
    // t4 = the target node's block (same computation the scheduler
    // uses to address a steal victim).
    as.push({.op = Opcode::SLL, .rd = t(4), .rs1 = 8,
             .rs2 = reg::g(3)});
    as.addiR(t(4), t(4), int32_t(nodeBlockOff));
    as.slliR(t(4), t(4), tagged::tagShift);
    as.oriR(t(4), t(4), uint8_t(Tag::Other));
    emitLockAcquire(as, t(4), nb::taskLock, t(1));
    as.ldnw(t(1), t(4), nbo(nb::taskBottom));
    as.ldnw(t(2), t(4), nbo(nb::taskTop));
    as.subR(t(2), t(1), t(2));
    as.cmpiR(t(2), int32_t(taskQueueCapacity));
    as.jRaw(Cond::GE, sym::fault);
    as.nop();
    as.andiR(t(2), t(1), int32_t(taskQueueCapacity - 1));
    as.slliR(t(2), t(2), tagged::tagShift);
    as.ldnw(t(3), t(4), nbo(nb::taskBase));
    as.addR(t(2), t(2), t(3));
    as.stnw(t(0), t(2), 0);
    as.addiR(t(1), t(1), 1);
    as.stnw(t(1), t(4), nbo(nb::taskBottom));
    emitLockRelease(as, t(4), nb::taskLock, t(1));
    emitCount(as, nb::statSpawns, t(1));
    as.ret();

    // Encore-mode software touch: r1 = a value with its LSB set
    // (checked by compiled code). Returns the resolved value in r1,
    // or blocks the thread until the future resolves.
    as.bind(sym::touchSw);
    as.subiR(t(3), reg::a(0), 3);
    as.ldnw(t(4), t(3), wordOff(fut::state));
    as.cmpiR(t(4), 0);
    as.jRaw(Cond::EQ, "tsw$block");
    as.nop();
    as.ldnw(reg::a(0), t(3), wordOff(fut::value));
    as.ret();

    as.bind("tsw$block");
    emitAlloc(as, thread::size, t(5), t(6));
    for (uint8_t r = 1; r < 32; ++r)
        as.stnw(r, t(5), wordOff(thread::regsBase + r - 1));
    // Arrange resumption at the touch-resume stub with r2 = future.
    as.stnw(reg::a(0), t(5), wordOff(thread::regsBase + 1));   // r2 slot
    as.moviLabel(t(6), sym::touchResume);
    as.stnw(t(6), t(5), wordOff(thread::pc));
    as.addiR(t(6), t(6), 1);
    as.stnw(t(6), t(5), wordOff(thread::npc));
    as.rdpsr(t(6));
    as.stnw(t(6), t(5), wordOff(thread::psr));
    as.stnw(reg::r0, t(5), wordOff(thread::link));

    emitLockAcquire(as, t(3), fut::lock, t(6));
    as.ldnw(t(6), t(3), wordOff(fut::state));
    as.cmpiR(t(6), 0);
    as.jRaw(Cond::NE, "tsw$won");
    as.nop();
    as.note("tp$block");                // t3 = future cell, t5 = thread
    as.ldnw(t(6), t(3), wordOff(fut::waiters));
    as.stnw(t(6), t(5), wordOff(thread::link));
    as.stnw(t(5), t(3), wordOff(fut::waiters));
    emitLockRelease(as, t(3), fut::lock, t(7));
    emitCount(as, nb::statBlocks, t(7));
    emitCount(as, nb::busyFrames, t(7), -1);
    as.j(Cond::AL, sym::sched);

    as.bind("tsw$won");             // resolved while we prepared
    emitLockRelease(as, t(3), fut::lock, t(7));
    as.ldnw(reg::a(0), t(3), wordOff(fut::value));
    as.ret();

    // Wake-up stub for blocked Encore touches: r2 = the future.
    as.bind(sym::touchResume);
    as.subiR(t(3), reg::a(1), 3);
    as.ldnw(reg::a(0), t(3), wordOff(fut::value));
    as.ret();
}

void
Runtime::emitHeapOps(Assembler &as) const
{
    // cons: r1 = car, r2 = cdr -> r1 = cons-tagged pointer.
    as.bind(sym::cons);
    emitEncoreChecks(as, {reg::a(0), reg::a(1)});
    emitAlloc(as, 2, t(0), t(1));
    as.stnw(reg::a(0), t(0), 0);
    as.stnw(reg::a(1), t(0), wordOff(1));
    // Retag other(010) -> cons(110).
    as.addiR(reg::a(0), t(0), 4);
    as.ret();

    // make_vector: r1 = length (fixnum), r2 = fill value ->
    // r1 = other-tagged pointer to [len, e0, e1, ...].
    as.bind(sym::makeVector);
    emitEncoreChecks(as, {reg::a(0), reg::a(1)});
    as.sraiR(t(1), reg::a(0), 2);       // raw element count
    as.addiR(t(2), t(1), 1);            // + header
    as.ldnw(t(0), reg::g(0), nbo(nb::heapPtr));
    as.addR(t(3), t(0), t(2));
    as.stnw(t(3), reg::g(0), nbo(nb::heapPtr));
    as.ldnw(t(4), reg::g(0), nbo(nb::heapLimit));
    as.cmpR(t(3), t(4));
    as.jRaw(Cond::GT, sym::fault);
    as.nop();
    as.slliR(t(0), t(0), tagged::tagShift);
    as.oriR(t(0), t(0), uint8_t(Tag::Other));
    as.stnw(reg::a(0), t(0), 0);        // length header
    as.mov(t(2), t(0));
    as.bind("mv$fill");
    as.cmpiR(t(1), 0);
    as.jRaw(Cond::LE, "mv$done");
    as.nop();
    as.addiR(t(2), t(2), kWordOff);
    as.stnw(reg::a(1), t(2), 0);
    as.subiR(t(1), t(1), 1);
    as.j(Cond::AL, "mv$fill");
    as.bind("mv$done");
    as.mov(reg::a(0), t(0));
    as.ret();

    // stolen_exit: r1 = future, r2 = the value the parent computed.
    // The parent's continuation was stolen: resolve the future, free
    // this thread's stack segment (safe: the thief copied what it
    // needs under the deque lock, and our pop held that same lock),
    // and become a worker.
    as.bind(sym::stolenExit);
    as.note("tp$stolen_exit");          // r1 = the continuation's future
    as.call(sym::resolve);
    as.ldnw(t(0), reg::g(0), nbo(nb::stackFree));
    as.stnw(t(0), reg::sb, 0);
    as.stnw(reg::sb, reg::g(0), nbo(nb::stackFree));
    emitCount(as, nb::busyFrames, t(0), -1);
    as.j(Cond::AL, sym::sched);
}

void
Runtime::emitLazyOps(Assembler &) const
{
    // The owner-side push and pop of lazy-task markers are inlined by
    // the compiler (they are a handful of instructions — the whole
    // point of lazy task creation). Only the thief side lives here,
    // inside the scheduler's steal path.
}

void
Runtime::emitScheduler(Assembler &as) const
{
    // ------------------------------------------------------------------
    // The per-processor scheduler (Figure 2's ready/suspended queue
    // machinery). Priority order: resume woken threads, run local
    // eager tasks (newest first), then steal — first a task from a
    // random victim's queue (oldest first), then a lazy continuation
    // from its deque.
    // ------------------------------------------------------------------
    as.bind(sym::sched);
    as.rdpsr(t(0));
    as.oriR(t(0), t(0), int32_t(psr::ET));
    as.wrpsr(t(0));
    as.movi(t(7), 1);           // fruitless-round backoff exponent

    as.bind("sc$loop");
    // --- 1. ready queue -----------------------------------------------
    emitLockAcquire(as, reg::g(0), nb::readyLock, t(0));
    as.ldnw(t(1), reg::g(0), nbo(nb::readyHead));
    as.cmpiR(t(1), 0);
    as.jRaw(Cond::NE, "sc$resume");
    as.nop();
    emitLockRelease(as, reg::g(0), nb::readyLock, t(0));

    // --- 2. local eager task (LIFO pop for locality) -------------------
    emitLockAcquire(as, reg::g(0), nb::taskLock, t(0));
    as.ldnw(t(1), reg::g(0), nbo(nb::taskBottom));
    as.ldnw(t(2), reg::g(0), nbo(nb::taskTop));
    as.cmpR(t(1), t(2));
    as.jRaw(Cond::GT, "sc$pop_task");
    as.nop();
    emitLockRelease(as, reg::g(0), nb::taskLock, t(0));

    // --- 3. steal, but only while the node is idle ---------------------
    // A node holding any task already has work to run and stalls to
    // hide behind it; stealing more only lifts remote continuations
    // whose distribution cost (stack copy, future churn) exceeds the
    // stall they would hide, and the scan itself occupies the pipe
    // and the victims' queue locks that loaded frames need for their
    // retries. So work acquisition is purely demand-driven: only a
    // frame on an otherwise-empty node goes hunting. Local pops and
    // ready-queue resumes above are never gated, and the unlocked
    // read races benignly — a late thief costs one wasted scan.
    as.ldnw(t(1), reg::g(0), nbo(nb::busyFrames));
    as.cmpiR(t(1), 0);
    as.jRaw(Cond::GT, "sc$backoff");
    as.nop();
    // The probe marks the random read: exactly one completion per
    // steal round, and never inside a lock-acquire spin.
    as.note("tp$steal_try");
    as.ldio(t(3), int(IoReg::Random));
    as.andiR(t(3), t(3), 0x7FFFFFFF);
    as.push({.op = Opcode::REM, .rd = t(3), .rs1 = t(3),
             .rs2 = reg::g(4)});
    as.push({.op = Opcode::SLL, .rd = t(4), .rs1 = t(3),
             .rs2 = reg::g(3)});
    as.addiR(t(4), t(4), int32_t(nodeBlockOff));
    as.slliR(t(4), t(4), tagged::tagShift);
    as.oriR(t(4), t(4), uint8_t(Tag::Other));   // victim node block

    // --- 3a. steal a woken thread off the victim's ready queue ---------
    // A thread woken by a resolver on a busy node would otherwise wait
    // for that node's scheduler; migrating it keeps wake-up latency
    // bounded (threads are virtual and location-transparent, Sec 3).
    emitLockAcquire(as, t(4), nb::readyLock, t(0));
    as.ldnw(t(1), t(4), nbo(nb::readyHead));
    as.cmpiR(t(1), 0);
    as.jRaw(Cond::NE, "sc$steal_ready");
    as.nop();
    emitLockRelease(as, t(4), nb::readyLock, t(0));

    // --- 3b. steal an eager task (oldest first) ------------------------
    emitLockAcquire(as, t(4), nb::taskLock, t(0));
    as.ldnw(t(1), t(4), nbo(nb::taskBottom));
    as.ldnw(t(2), t(4), nbo(nb::taskTop));
    as.cmpR(t(1), t(2));
    as.jRaw(Cond::GT, "sc$steal_task");
    as.nop();
    emitLockRelease(as, t(4), nb::taskLock, t(0));

    // --- 3b. steal a lazy continuation ---------------------------------
    // The deque lock only serializes thieves over the top index; the
    // actual claim is one atomic consuming load of the marker's f/e
    // state word, racing fairly against the owner's inline pop.
    emitLockAcquire(as, t(4), nb::dequeLock, t(0));
    as.bind("sc$deq_scan");
    as.ldnw(t(1), t(4), nbo(nb::dequeTop));
    as.ldnw(t(2), t(4), nbo(nb::dequeBottom));
    as.cmpR(t(1), t(2));
    as.jRaw(Cond::GE, "sc$deq_empty");
    as.nop();
    as.andiR(t(5), t(1), int32_t(dequeCapacity - 1));
    as.slliR(t(5), t(5), tagged::tagShift);
    as.ldnw(t(6), t(4), nbo(nb::dequeBase));
    as.addR(t(5), t(5), t(6));
    as.ldnw(t(5), t(5), 0);                     // the marker pointer
    as.addiR(t(1), t(1), 1);                    // consume the entry
    as.stnw(t(1), t(4), nbo(nb::dequeTop));
    // Claim attempt: atomically read-and-empty the state word.
    as.ldenw(t(6), t(5), wordOff(marker::state));
    as.jRaw(Cond::EMPTY, "sc$deq_scan");        // owner got it: skip
    as.nop();
    as.cmpiR(t(6), 0);
    as.jRaw(Cond::EQ, "sc$deq_won");
    as.nop();
    // Stale entry for an already-stolen marker: undo and move on.
    as.stfnw(t(6), t(5), wordOff(marker::state));
    as.j(Cond::AL, "sc$deq_scan");

    as.bind("sc$deq_won");
    as.note("tp$deq_won");              // t5 = the claimed marker
    emitCount(as, nb::statSteals, t(0));
    emitCount(as, nb::busyFrames, t(0));

    // Copy the continuation's stack — everything from the victim
    // thread's stack base up to the top of the marked frame — onto a
    // fresh local segment. The victim keeps executing the future body
    // on its own (younger) portion, so the two never collide; the
    // copy happens under the victim's deque lock, which also orders
    // it against the owner's pop. This realizes the stack splitting
    // of lazy task creation [Mohr et al. 1990].
    as.ldnw(t(1), t(5), wordOff(marker::stackBase));    // boxed src
    as.ldnw(t(2), t(5), wordOff(marker::frameTop));     // boxed end
    as.subR(t(3), t(2), t(1));
    as.sraiR(t(3), t(3), tagged::tagShift);             // words to copy
    // Allocate copy + headroom for the continuation's deeper calls.
    as.ldnw(t(6), reg::g(0), nbo(nb::heapPtr));
    as.addR(t(7), t(6), t(3));
    as.addiR(t(7), t(7), int32_t(stackWords));
    as.stnw(t(7), reg::g(0), nbo(nb::heapPtr));
    as.ldnw(t(7), reg::g(0), nbo(nb::heapLimit));
    as.ldnw(t(0), reg::g(0), nbo(nb::heapPtr));
    as.cmpR(t(0), t(7));
    as.jRaw(Cond::GT, sym::fault);
    as.nop();
    as.slliR(t(6), t(6), tagged::tagShift);
    as.oriR(t(6), t(6), uint8_t(Tag::Other));           // boxed dst base
    // Copy with the block-transfer mechanism (Section 3.4): one word
    // per cycle, data and f/e bits together, processor held.
    as.sraiR(t(0), t(1), tagged::tagShift);
    as.stio(int(IoReg::BlockSrc), t(0));
    as.sraiR(t(0), t(6), tagged::tagShift);
    as.stio(int(IoReg::BlockDst), t(0));
    as.stio(int(IoReg::BlockGo), t(3));
    as.bind("sc$copy_done");
    // Only now that the copy is complete may the owner proceed:
    // create the future and refill the state word with it.
    as.call(sym::makeFuture);                   // r1 = new future
    as.note("tp$lazy_pub");             // t5 = marker, r1 = its future
    as.stfnw(reg::a(0), t(5), wordOff(marker::state));
    emitLockRelease(as, t(4), nb::dequeLock, t(0));
    // Resume the continuation on the copy: sp' = dst + (frameBase -
    // stackBase); it expects the future in r1.
    as.ldnw(t(1), t(5), wordOff(marker::frameBase));
    as.ldnw(t(2), t(5), wordOff(marker::stackBase));
    as.subR(t(1), t(1), t(2));
    as.addR(reg::sp, t(6), t(1));
    as.mov(reg::sb, t(6));
    as.ldnw(t(6), t(5), wordOff(marker::resumePC));
    as.jmpReg(t(6));

    as.bind("sc$deq_empty");
    emitLockRelease(as, t(4), nb::dequeLock, t(0));
    as.bind("sc$backoff");
    // A fruitless round ends in yields, not a busy wait: every yield
    // hands the pipe to the task frames waiting on remote fills or
    // unresolved futures (the rotation of Section 3.1 runs their
    // retry chains), and the number of yields per round doubles up to
    // a cap, so a swarm of idle frames neither starves working nodes
    // of their deque locks nor delays loaded frames' retries behind
    // full steal scans — the steal-convoy pathology the task plane's
    // health detector flags (DESIGN.md §7.10).
    as.addR(t(7), t(7), t(7));
    as.cmpiR(t(7), 32);
    as.jRaw(Cond::LE, "sc$backoff_go");
    as.nop();
    as.movi(t(7), 32);
    as.bind("sc$backoff_go");
    as.mov(t(2), t(7));         // this round's yield countdown
    as.bind("sc$byield");
    if (opts.hardwareSwitch) {
        as.incfp();             // custom APRIL: 4-cycle hardware switch
    } else {
        as.moviLabel(t(1), "sc$bnext");
        as.wrspec(Spec::TrapPC, t(1));
        as.addiR(t(1), t(1), 1);
        as.wrspec(Spec::TrapNPC, t(1));
        as.rdpsr(t(0));
        as.incfp();
        as.wrpsr(t(0));
        as.rettRetry();
        as.bind("sc$bnext");
    }
    as.subiR(t(2), t(2), 1);
    as.jRaw(Cond::GT, "sc$byield");
    as.nop();
    as.j(Cond::AL, "sc$loop");

    // --- steal a woken thread (victim readyLock held, t1 = desc) -------
    as.bind("sc$steal_ready");
    as.note("tp$resume_steal");         // t1 = the migrating thread
    as.ldnw(t(2), t(1), wordOff(thread::link));
    as.stnw(t(2), t(4), nbo(nb::readyHead));
    emitLockRelease(as, t(4), nb::readyLock, t(0));
    emitCount(as, nb::statResumes, t(0));
    as.j(Cond::AL, "sc$restore");

    // --- resume a woken thread (readyLock held, t1 = descriptor) -------
    as.bind("sc$resume");
    as.note("tp$resume");               // t1 = the woken thread
    as.ldnw(t(2), t(1), wordOff(thread::link));
    as.stnw(t(2), reg::g(0), nbo(nb::readyHead));
    emitLockRelease(as, reg::g(0), nb::readyLock, t(0));
    emitCount(as, nb::statResumes, t(0));
    as.bind("sc$restore");
    emitCount(as, nb::busyFrames, t(0));
    as.ldnw(t(2), t(1), wordOff(thread::psr));
    as.ldnw(t(3), t(1), wordOff(thread::pc));
    as.wrspec(Spec::TrapPC, t(3));
    as.ldnw(t(3), t(1), wordOff(thread::npc));
    as.wrspec(Spec::TrapNPC, t(3));
    for (uint8_t r = 1; r < 32; ++r)
        as.ldnw(r, t(1), wordOff(thread::regsBase + r - 1));
    as.wrpsr(t(2));
    as.rettRetry();

    // --- run a local task (taskLock held, t1 = bottom) ------------------
    as.bind("sc$pop_task");
    as.subiR(t(1), t(1), 1);
    as.stnw(t(1), reg::g(0), nbo(nb::taskBottom));
    as.andiR(t(2), t(1), int32_t(taskQueueCapacity - 1));
    as.slliR(t(2), t(2), tagged::tagShift);
    as.ldnw(t(3), reg::g(0), nbo(nb::taskBase));
    as.addR(t(2), t(2), t(3));
    as.ldnw(t(5), t(2), 0);
    as.note("tp$pop");                  // t5 = the popped descriptor
    emitLockRelease(as, reg::g(0), nb::taskLock, t(0));
    as.j(Cond::AL, "sc$run_task");

    // --- run a stolen task (victim taskLock held, t2 = top) -------------
    as.bind("sc$steal_task");
    as.andiR(t(5), t(2), int32_t(taskQueueCapacity - 1));
    as.slliR(t(5), t(5), tagged::tagShift);
    as.ldnw(t(6), t(4), nbo(nb::taskBase));
    as.addR(t(5), t(5), t(6));
    as.ldnw(t(5), t(5), 0);
    as.note("tp$steal_task");           // t5 = the stolen descriptor
    as.addiR(t(2), t(2), 1);
    as.stnw(t(2), t(4), nbo(nb::taskTop));
    emitLockRelease(as, t(4), nb::taskLock, t(0));
    emitCount(as, nb::statSteals, t(0));
    // fall through

    // --- common task execution (t5 = task descriptor) -------------------
    as.bind("sc$run_task");
    emitCount(as, nb::busyFrames, t(0));
    // Get a stack segment: free list first, else carve from the heap.
    as.ldnw(t(6), reg::g(0), nbo(nb::stackFree));
    as.cmpiR(t(6), 0);
    as.jRaw(Cond::NE, "sc$have_stack");
    as.nop();
    emitAlloc(as, stackWords, t(6), t(0));
    as.j(Cond::AL, "sc$stacked");
    as.bind("sc$have_stack");
    as.ldnw(t(0), t(6), 0);
    as.stnw(t(0), reg::g(0), nbo(nb::stackFree));
    as.bind("sc$stacked");
    // Stash the future and segment base below the task's frame.
    as.ldnw(t(0), t(5), wordOff(task::future));
    as.stnw(t(0), t(6), 0);
    as.stnw(t(6), t(6), wordOff(1));
    as.mov(reg::sb, t(6));
    as.addiR(reg::sp, t(6), wordOff(2));
    for (int i = 0; i < 4; ++i)
        as.ldnw(uint8_t(1 + i), t(5), wordOff(task::arg0 + i));
    emitEncoreChecks(as, {1, 2, 3, 4});
    as.ldnw(t(7), t(5), wordOff(task::fn));
    as.note("tp$run");                  // t5 = descriptor entering run
    as.callReg(t(7));
    // Back with the result in r1: resolve the future, recycle the
    // stack, and look for more work. (t-registers were clobbered by
    // any traps inside the task; recompute from sp.)
    as.subiR(t(6), reg::sp, wordOff(2));
    as.mov(reg::a(1), reg::a(0));
    as.ldnw(reg::a(0), t(6), 0);
    as.call(sym::resolve);
    emitCount(as, nb::busyFrames, t(1), -1);
    as.ldnw(t(0), reg::g(0), nbo(nb::stackFree));
    as.stnw(t(0), t(6), 0);
    as.stnw(t(6), reg::g(0), nbo(nb::stackFree));
    as.movi(t(7), 1);           // fresh work search, fresh backoff
    as.j(Cond::AL, "sc$loop");
}

void
Runtime::emitBoot(Assembler &as) const
{
    // Boot thread (node 0): run the compiled main function, report the
    // result on the console, stop the machine.
    as.bind(sym::boot);
    as.note("tp$root");
    emitCount(as, nb::busyFrames, t(0));
    as.ldnw(reg::sp, reg::g(0), nbo(nb::mainStack));
    as.mov(reg::sb, reg::sp);
    as.call(sym::userMain);
    as.note("tp$root_end");
    as.stio(int(IoReg::ConsoleOut), reg::a(0));
    as.stio(int(IoReg::MachineHalt), reg::a(0));
    as.halt();

    // All other processors (and frames) start here.
    as.bind(sym::idle);
    as.j(Cond::AL, sym::sched);

    // Unrecoverable run-time fault (heap/queue exhaustion): report a
    // sentinel and stop, so simulations fail loudly, never silently.
    as.bind(sym::fault);
    as.movi(reg::a(0), tagged::fixnum(-999999));
    as.stio(int(IoReg::ConsoleOut), reg::a(0));
    as.stio(int(IoReg::MachineHalt), reg::a(0));
    as.halt();
}

void
Runtime::emit(Assembler &as) const
{
    emitHandlers(as);
    emitFutureOps(as);
    emitHeapOps(as);
    emitLazyOps(as);
    emitScheduler(as);
    emitBoot(as);
}

void
Runtime::initNode(SharedMemory &mem, uint32_t node)
{
    if (!isPowerOf2(mem.wordsPerNode()))
        fatal("Runtime: wordsPerNode must be a power of two");

    Addr base = mem.nodeBase(node);
    Addr blk = base + nodeBlockOff;

    auto put = [&](int slot, Word v) { mem.write(blk + Addr(slot), v); };
    auto box = [](Addr a) { return tagged::ptr(a, Tag::Other); };

    Addr heap_start = base + heapOff;
    if (node == 0) {
        // The boot thread's stack is carved off the front of the heap.
        put(nb::mainStack, box(heap_start));
        heap_start += mainStackWords;
    }
    put(nb::heapPtr, heap_start);
    put(nb::heapLimit, base + mem.wordsPerNode());
    put(nb::taskBase, box(base + taskQueueOff));
    put(nb::dequeBase, box(base + dequeOff));
    // Queue indices, free lists and counters start at zero; lock words
    // are "full" (unlocked) because fresh memory is full.
    TRACE(Runtime, "initNode n", node, " heap=[", heap_start, ",",
          base + mem.wordsPerNode(), ")");
}

void
Runtime::bootProcessor(Processor &proc, const Program &prog,
                       SharedMemory &mem, uint32_t node,
                       uint32_t num_nodes)
{
    proc.reset(node == 0 ? prog.entry(sym::boot) : prog.entry(sym::idle));

    Addr blk = mem.nodeBase(node) + nodeBlockOff;
    proc.writeGlobal(0, tagged::ptr(blk, Tag::Other));
    proc.writeGlobal(1, prog.entry(sym::sched));
    proc.writeGlobal(2, node);
    proc.writeGlobal(3, log2i(mem.wordsPerNode()));
    proc.writeGlobal(4, num_nodes);

    proc.setTrapVector(TrapKind::RemoteMiss, prog.entry(sym::cswitch));
    proc.setTrapVector(TrapKind::FeEmpty, prog.entry(sym::cswitch));
    proc.setTrapVector(TrapKind::FeFull, prog.entry(sym::cswitch));
    proc.setTrapVector(TrapKind::FutureCompute,
                       prog.entry(sym::futureTouch));
    proc.setTrapVector(TrapKind::FutureMemory,
                       prog.entry(sym::futureTouch));
    proc.setTrapVector(TrapKind::Ipi, prog.entry(sym::ipi));

    TRACE(Runtime, "bootProcessor n", node, "/", num_nodes, " entry=",
          node == 0 ? prog.entry(sym::boot) : prog.entry(sym::idle),
          " frames=", proc.numFrames());

    // Park the remaining task frames in the scheduler so that
    // switch-spinning rotation always lands on runnable code.
    for (uint32_t f = 1; f < proc.numFrames(); ++f) {
        proc.frame(f).trapPC = prog.entry(sym::idle);
        proc.frame(f).trapNPC = prog.entry(sym::idle) + 1;
        proc.frame(f).trapRegs[0] = psr::ET;
        proc.frame(f).savedPsr = psr::ET;
    }
}

} // namespace april::rt

/**
 * @file
 * The APRIL run-time system (paper Section 6).
 *
 * "A large portion of the support for multithreading, synchronization
 * and futures is provided in software through traps and run-time
 * routines" — this module emits those routines as real APRIL assembly
 * through the Assembler, so their costs are measured, not assumed:
 *
 *  - the context-switch trap handler (Section 6.1; 6 cycles, 11 with
 *    trap entry), installed for remote-miss and f/e exceptions
 *    (switch-spinning policy, as in the paper's implementation);
 *  - the future-touch trap handler (Section 6.2; 23 cycles when the
 *    future is resolved, thread-blocking when not);
 *  - a per-node scheduler with ready-queue resume, eager task
 *    execution and work stealing over both eager task queues and
 *    lazy-task-creation deques;
 *  - future creation/resolution, eager spawn (normal futures), and
 *    lazy task creation via stealable continuation markers, with all
 *    races resolved by full/empty-bit locks (Section 3.2);
 *  - an Encore-mode variant that replaces every full/empty-bit lock
 *    with test&set spinning and the f/e resolved bit with an explicit
 *    state word, plus a software touch routine — reproducing the
 *    baseline machine's synchronization cost structure.
 */

#ifndef APRIL_RUNTIME_RUNTIME_HH
#define APRIL_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <string>

#include "isa/assembler.hh"
#include "mem/memory.hh"
#include "proc/processor.hh"
#include "runtime/layout.hh"

namespace april::rt
{

/** Run-time system configuration. */
struct RuntimeOptions
{
    /// Encore-mode synchronization: TAS locks + state words instead of
    /// full/empty bits; software future detection is a compiler flag.
    bool encore = false;

    /// Target the custom-APRIL hardware context switch (INCFP is the
    /// whole 4-cycle switch) instead of the SPARC trap-based one; the
    /// scheduler's idle yield differs between the two.
    bool hardwareSwitch = false;

    /// Touching an unresolved future switch-spins (Section 6.2's
    /// other policy): the task stays loaded and yields one frame per
    /// revolution, re-executing the touch when the rotation returns,
    /// instead of unloading into a thread descriptor. Latency is then
    /// hidden only by the *other* task frames — the regime where the
    /// frame count buys tolerance. Safe for lazy futures, whose
    /// producer is always actively computing on some node; eager
    /// futures still require blocking (the producer may be an
    /// unloaded descriptor parked behind the spinning consumer).
    bool spinTouch = false;
};

/** Well-known symbol names the run-time system defines. */
namespace sym
{
inline const std::string boot = "rt$boot";          ///< main entry
inline const std::string idle = "rt$idle";          ///< non-main entry
inline const std::string sched = "rt$sched";        ///< scheduler loop
inline const std::string cswitch = "rt$cswitch";    ///< switch handler
inline const std::string futureTouch = "rt$future_touch";
inline const std::string ipi = "rt$ipi";
inline const std::string resolve = "rt$resolve";    ///< r1=F r2=value
inline const std::string makeFuture = "rt$make_future";  ///< -> r1
inline const std::string spawn = "rt$spawn";        ///< eager task
inline const std::string spawnOn = "rt$spawn_on";   ///< + r8 = node
inline const std::string touchSw = "rt$touch_sw";   ///< Encore touch
inline const std::string touchResume = "rt$touch_resume";
inline const std::string cons = "rt$cons";          ///< r1=car r2=cdr
inline const std::string makeVector = "rt$make_vector"; ///< r1=len r2=fill
inline const std::string stolenExit = "rt$stolen_exit"; ///< r1=F r2=value
inline const std::string fault = "rt$fault";        ///< runtime abort
inline const std::string userMain = "mt$main";      ///< compiled main
} // namespace sym

/** Emits the run-time routines and boots machines around them. */
class Runtime
{
  public:
    explicit Runtime(RuntimeOptions opts = {}) : opts(opts) {}

    /**
     * Emit every run-time routine into @p as. Call once, alongside the
     * compiled user code (order does not matter; linkage is symbolic).
     */
    void emit(Assembler &as) const;

    /**
     * Initialize node @p node's memory image: node block, queue
     * arrays, heap pointers. Node 0 also gets the boot thread's stack.
     */
    static void initNode(SharedMemory &mem, uint32_t node);

    /**
     * Configure a processor to run under this runtime: install trap
     * vectors, set the global registers, park frames 1..N-1 in the
     * scheduler, and start frame 0 at boot (node 0) or idle.
     */
    static void bootProcessor(Processor &proc, const Program &prog,
                              SharedMemory &mem, uint32_t node,
                              uint32_t num_nodes);

    const RuntimeOptions &options() const { return opts; }

  private:
    // Emission helpers (each bound to a fresh label namespace).
    void emitHandlers(Assembler &as) const;
    void emitScheduler(Assembler &as) const;
    void emitFutureOps(Assembler &as) const;
    void emitLazyOps(Assembler &as) const;
    void emitHeapOps(Assembler &as) const;
    void emitBoot(Assembler &as) const;

    /** Spin-acquire the lock word at [base + wordOff(slot)]. */
    void emitLockAcquire(Assembler &as, uint8_t base, int slot,
                         uint8_t scratch) const;
    /** Release the lock word at [base + wordOff(slot)]. */
    void emitLockRelease(Assembler &as, uint8_t base, int slot,
                         uint8_t scratch) const;

    /** Bump-allocate @p nwords from the local heap into boxed @p rd. */
    void emitAlloc(Assembler &as, uint32_t nwords, uint8_t rd,
                   uint8_t scratch) const;

    /** Adjust a node-block statistics counter by @p delta. */
    void emitCount(Assembler &as, int slot, uint8_t scratch,
                   int32_t delta = 1) const;

    /**
     * Encore mode only: emit the software future-detection sequence
     * (test LSB, branch) for each listed register. The Multimax
     * run-time system is itself Mul-T-compiled code, so its routines
     * pay the same per-operand checks as user code; on APRIL the tag
     * hardware makes these free, which is precisely the asymmetry
     * Table 3 measures.
     */
    void emitEncoreChecks(Assembler &as,
                          std::initializer_list<uint8_t> regs) const;

    RuntimeOptions opts;
};

} // namespace april::rt

#endif // APRIL_RUNTIME_RUNTIME_HH

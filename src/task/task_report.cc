#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

#include "common/stats.hh"
#include "task/task_trace.hh"

namespace april::task
{

namespace
{

constexpr uint32_t kNone = UINT32_MAX;

/** One blocked-thread episode awaiting its Resume. */
struct PendingBlock
{
    uint32_t task = kNone;
    uint64_t cycle = 0;
    Addr future = 0;
    bool resumed = false;
};

/** A published lazy marker that has not been claimed or stolen yet. */
struct PendingLazy
{
    uint32_t parent = kNone;
    uint64_t parentWork = 0;
    uint64_t cycle = 0;
    uint32_t node = 0;
};

/** An open f/e-stall or TAS-spin run on one node. */
struct SpinEpisode
{
    bool open = false;
    Addr addr = 0;
    Ev kind = Ev::FeStall;
    uint64_t first = 0;
    uint64_t last = 0;
    uint32_t count = 0;
};

struct Analyzer
{
    const AnalyzeParams &p;
    Report r;

    // Execution slots: which task occupies each (node, frame), and the
    // frame's work counter at its previous event (delta attribution).
    struct Slot
    {
        uint32_t task = kNone;
        uint64_t lastWork = 0;
        bool seen = false;
    };
    std::unordered_map<uint64_t, Slot> slots;

    std::unordered_map<Addr, uint32_t> byDesc;   // descriptor -> task
    std::unordered_map<Addr, uint32_t> byMarker; // lazy marker -> task
    std::unordered_map<Addr, uint32_t> byFuture; // future -> producer
    std::unordered_map<Addr, uint32_t> byCont;   // future -> continuation
    std::unordered_map<Addr, size_t> byThread;   // thread -> blocksLog idx
    std::unordered_map<Addr, uint32_t> syncIdx;
    std::unordered_map<Addr, PendingLazy> pendingLazy;
    std::unordered_map<uint32_t, std::vector<Addr>> lazyStack;
    std::unordered_map<uint32_t, uint32_t> nodeSeq;
    std::unordered_map<uint32_t, uint32_t> convoyRun;
    std::unordered_map<uint32_t, SpinEpisode> spins;
    std::vector<PendingBlock> blocksLog;
    std::vector<uint32_t> parentIdx; // parallel to r.tasks

    explicit Analyzer(const AnalyzeParams &params) : p(params) {}

    Slot &
    slotOf(uint32_t node, uint8_t frame)
    {
        return slots[(uint64_t(node) << 8) | frame];
    }

    SyncWord &
    syncOf(Addr a)
    {
        auto [it, fresh] = syncIdx.try_emplace(a, uint32_t(r.syncWords.size()));
        if (fresh) {
            r.syncWords.emplace_back();
            r.syncWords.back().addr = a;
        }
        return r.syncWords[it->second];
    }

    uint32_t
    mint(uint32_t node, uint64_t cycle, uint32_t parent)
    {
        TaskInfo t;
        t.id = (uint64_t(node) << 32) | ++nodeSeq[node];
        t.spawnNode = node;
        t.spawnCycle = cycle;
        if (parent != kNone) {
            t.parent = r.tasks[parent].id;
            t.parentWorkAtSpawn = r.tasks[parent].work;
        }
        parentIdx.push_back(parent);
        r.tasks.push_back(std::move(t));
        return uint32_t(r.tasks.size() - 1);
    }

    void
    addDep(uint32_t task, uint32_t producer)
    {
        if (task == kNone || producer == kNone || task == producer)
            return;
        TaskInfo &t = r.tasks[task];
        for (const auto &[d, w] : t.deps) {
            if (d == producer)
                return;
        }
        t.deps.push_back({producer, t.work});
    }

    void
    histAdd(std::vector<uint64_t> &h, uint64_t v)
    {
        ++h[stats::Histogram::logBucket(int64_t(v), h.size())];
    }

    void
    healthNote(std::string s)
    {
        if (r.health.notes.size() < 32)
            r.health.notes.push_back(std::move(s));
    }

    void
    commitSpin(SpinEpisode &sp)
    {
        if (!sp.open)
            return;
        sp.open = false;
        // A single future touch is the resolved fast path, not a wait.
        if (sp.kind == Ev::Touch && sp.count < 2)
            return;
        uint64_t wait = sp.last - sp.first + 1;
        SyncWord &sw = syncOf(sp.addr);
        ++sw.episodes;
        sw.totalWait += wait;
        sw.maxWait = std::max(sw.maxWait, wait);
        if (sp.kind == Ev::FeStall)
            sw.feStalls += sp.count;
        else if (sp.kind == Ev::TasRetry)
            sw.tasRetries += sp.count;
        r.waitTotal += wait;
        histAdd(r.spinHist, wait);
        histAdd(r.waitHist, wait);
    }

    /** An event showing this node made scheduling progress: ends any
     *  steal-convoy run and spin episode on it. */
    void
    progress(uint32_t node)
    {
        convoyRun[node] = 0;
        auto it = spins.find(node);
        if (it != spins.end())
            commitSpin(it->second);
    }

    void
    run(const std::vector<TaskEvent> &events)
    {
        size_t hist = stats::Histogram::kDefaultBuckets;
        r.numNodes = p.numNodes ? p.numNodes : 1;
        r.eventCount = events.size();
        r.totalCycles = p.totalCycles;
        if (!r.totalCycles && !events.empty())
            r.totalCycles = events.back().cycle;
        r.waitHist.assign(hist, 0);
        r.blockHist.assign(hist, 0);
        r.spinHist.assign(hist, 0);

        for (const TaskEvent &e : events)
            step(e);

        finishUp();
    }

    void
    step(const TaskEvent &e)
    {
        // Attribute the frame's work since its previous event to
        // whatever task occupies the slot.
        Slot &sl = slotOf(e.node, e.frame);
        if (sl.seen && sl.task != kNone && e.work >= sl.lastWork)
            r.tasks[sl.task].work += e.work - sl.lastWork;
        sl.lastWork = e.work;
        sl.seen = true;

        switch (e.kind) {
          case Ev::RootBegin: {
            uint32_t idx = mint(e.node, e.cycle, kNone);
            r.tasks[idx].ran = true;
            r.tasks[idx].runCycle = e.cycle;
            r.tasks[idx].runNode = e.node;
            sl.task = idx;
            break;
          }
          case Ev::RootEnd:
            if (sl.task != kNone) {
                r.tasks[sl.task].resolveCycle = e.cycle;
                sl.task = kNone;
            }
            break;
          case Ev::Spawn: {
            uint32_t idx = mint(e.node, e.cycle, sl.task);
            byDesc[e.addr] = idx;
            if (e.aux) {
                byFuture[e.aux] = idx;
                r.tasks[idx].future = e.aux;
            }
            ++r.spawns;
            break;
          }
          case Ev::SpawnLazy:
            // A lazy push is only a potential task: if the owner later
            // reclaims it inline (LazyMine) no task is minted, matching
            // lazy task creation semantics — the continuation only
            // becomes a schedulable task when a thief claims it.
            pendingLazy[e.addr] = {sl.task, sl.task != kNone
                                                ? r.tasks[sl.task].work
                                                : 0,
                                   e.cycle, e.node};
            if (sl.task != kNone)
                lazyStack[sl.task].push_back(e.addr);
            ++r.spawns;
            break;
          case Ev::MakeFuture:
            break;
          case Ev::PopTask:
            progress(e.node);
            break;
          case Ev::StealAttempt: {
            ++r.stealAttempts;
            uint32_t run = ++convoyRun[e.node];
            if (run == p.convoyLength) {
                ++r.health.stealConvoys;
                healthNote("steal convoy on node " +
                           std::to_string(e.node) + " at cycle " +
                           std::to_string(e.cycle));
            }
            break;
          }
          case Ev::StealTask: {
            progress(e.node);
            auto it = byDesc.find(e.addr);
            if (it != byDesc.end())
                r.tasks[it->second].stolen = true;
            ++r.steals;
            break;
          }
          case Ev::StealWon: {
            progress(e.node);
            auto it = pendingLazy.find(e.addr);
            if (it != pendingLazy.end()) {
                const PendingLazy &pl = it->second;
                uint32_t idx = mint(pl.node, pl.cycle, pl.parent);
                // mint() snapshots the parent's work *now*; the edge
                // really forked at push time, so restore that snapshot.
                r.tasks[idx].parentWorkAtSpawn = pl.parentWork;
                r.tasks[idx].lazy = true;
                r.tasks[idx].stolen = true;
                byMarker[e.addr] = idx;
                pendingLazy.erase(it);
                ++r.steals;
            }
            break;
          }
          case Ev::LazyPub: {
            auto it = byMarker.find(e.addr);
            if (it != byMarker.end() && e.aux) {
                uint32_t cont = it->second;
                r.tasks[cont].future = e.aux;
                byCont[e.aux] = cont;
                // The continuation's future is resolved by the task
                // that keeps executing the body: the parent.
                uint32_t prod = parentIdx[cont];
                if (prod != kNone)
                    byFuture[e.aux] = prod;
            }
            break;
          }
          case Ev::LazyMine: {
            // Owner reclaimed its newest still-pending marker (the
            // compiler guarantees LIFO nesting of lazy regions).
            if (sl.task == kNone)
                break;
            auto &stk = lazyStack[sl.task];
            while (!stk.empty() && !pendingLazy.count(stk.back()))
                stk.pop_back();
            if (!stk.empty()) {
                pendingLazy.erase(stk.back());
                stk.pop_back();
            }
            break;
          }
          case Ev::LazyStolen:
            // The producer noticed the theft; it resolves the future
            // via rt$resolve next, which the Resolve event handles.
            break;
          case Ev::LazyResume: {
            progress(e.node);
            auto it = byCont.find(e.addr);
            if (it != byCont.end()) {
                uint32_t idx = it->second;
                TaskInfo &t = r.tasks[idx];
                if (!t.ran) {
                    t.ran = true;
                    t.runCycle = e.cycle;
                    t.runNode = e.node;
                }
                sl.task = idx;
            }
            break;
          }
          case Ev::Run: {
            progress(e.node);
            auto it = byDesc.find(e.addr);
            if (it != byDesc.end()) {
                uint32_t idx = it->second;
                TaskInfo &t = r.tasks[idx];
                if (!t.ran) {
                    t.ran = true;
                    t.runCycle = e.cycle;
                    t.runNode = e.node;
                }
                sl.task = idx;
            }
            break;
          }
          case Ev::Resolve: {
            progress(e.node);
            SyncWord &sw = syncOf(e.addr);
            auto it = byFuture.find(e.addr);
            if (it == byFuture.end() && sl.task != kNone)
                byFuture[e.addr] = sl.task;
            uint32_t prod =
                it != byFuture.end() ? it->second : sl.task;
            if (prod != kNone) {
                sw.producer = r.tasks[prod].id;
                if (!r.tasks[prod].resolveCycle)
                    r.tasks[prod].resolveCycle = e.cycle;
            }
            // rt$resolve is called as the task body completes (by the
            // scheduler wrapper or stolenExit); the frame falls back
            // into the scheduler afterwards.
            if (sl.task != kNone && sl.task == prod)
                sl.task = kNone;
            break;
          }
          case Ev::Touch: {
            SyncWord &sw = syncOf(e.addr);
            ++sw.touches;
            auto it = byFuture.find(e.addr);
            if (it != byFuture.end())
                addDep(sl.task, it->second);
            // Repeated touches of one cell with no progress between
            // them are the switch-spinning wait loop (spinTouch): each
            // revolution re-executes the touch and traps again. Merge
            // the run into a spin episode; a lone touch is the
            // resolved fast path and commits to nothing.
            SpinEpisode &sp = spins[e.node];
            if (sp.open && (sp.addr != e.addr || sp.kind != e.kind))
                commitSpin(sp);
            if (!sp.open) {
                sp.open = true;
                sp.addr = e.addr;
                sp.kind = e.kind;
                sp.first = e.cycle;
                sp.count = 0;
            }
            sp.last = e.cycle;
            ++sp.count;
            break;
          }
          case Ev::Block: {
            ++syncOf(e.addr).blocks;
            auto it = byFuture.find(e.addr);
            if (it != byFuture.end())
                addDep(sl.task, it->second);
            byThread[e.aux] = blocksLog.size();
            blocksLog.push_back({sl.task, e.cycle, e.addr, false});
            // The blocked thread leaves the frame; the scheduler's own
            // work is deliberately unattributed.
            sl.task = kNone;
            break;
          }
          case Ev::Resume:
          case Ev::ResumeStolen: {
            progress(e.node);
            auto it = byThread.find(e.addr);
            if (it == byThread.end())
                break;
            PendingBlock &pb = blocksLog[it->second];
            pb.resumed = true;
            uint64_t wait = e.cycle - pb.cycle;
            if (pb.task != kNone) {
                r.tasks[pb.task].waitCycles += wait;
                if (e.kind == Ev::ResumeStolen)
                    r.tasks[pb.task].stolen = true;
            }
            SyncWord &sw = syncOf(pb.future);
            ++sw.episodes;
            sw.totalWait += wait;
            sw.maxWait = std::max(sw.maxWait, wait);
            r.waitTotal += wait;
            histAdd(r.blockHist, wait);
            histAdd(r.waitHist, wait);
            if (wait > p.starvationThreshold) {
                ++r.health.starvation;
                healthNote("starvation: " + std::to_string(wait) +
                           " cycles blocked on word " +
                           std::to_string(pb.future));
            }
            // The restored thread takes over this (node, frame).
            sl.task = pb.task;
            byThread.erase(it);
            break;
          }
          case Ev::FeStall:
          case Ev::TasRetry: {
            SpinEpisode &sp = spins[e.node];
            if (sp.open && (sp.addr != e.addr || sp.kind != e.kind))
                commitSpin(sp);
            if (!sp.open) {
                sp.open = true;
                sp.addr = e.addr;
                sp.kind = e.kind;
                sp.first = e.cycle;
                sp.count = 0;
            }
            sp.last = e.cycle;
            ++sp.count;
            break;
          }
          case Ev::FrameSwitch:
            ++r.switches;
            break;
        }
    }

    void
    finishUp()
    {
        for (auto &[node, sp] : spins)
            commitSpin(sp);

        // Deterministic order: syncWords were created in stream order,
        // but the spins map iteration above appends episodes in hash
        // order — episode *totals* are still per-word and so order
        // independent. Sort sync words by address for a canonical
        // serialization.
        std::sort(r.syncWords.begin(), r.syncWords.end(),
                  [](const SyncWord &a, const SyncWord &b) {
                      return a.addr < b.addr;
                  });

        for (const PendingBlock &pb : blocksLog) {
            if (!pb.resumed) {
                ++r.health.lostWakeups;
                healthNote("no wakeup for thread blocked on word " +
                           std::to_string(pb.future) + " at cycle " +
                           std::to_string(pb.cycle));
            }
        }

        for (const TaskInfo &t : r.tasks)
            r.totalWork += t.work;

        computeCriticalPath();

        r.lowerBound = std::max(double(r.criticalPath),
                                r.numNodes ? double(r.totalWork) /
                                                 double(r.numNodes)
                                           : double(r.totalWork));
        if (r.totalCycles) {
            r.score = std::min(1.0, r.lowerBound / double(r.totalCycles));
            uint64_t lb = uint64_t(r.lowerBound);
            r.exposed = r.totalCycles > lb ? r.totalCycles - lb : 0;
        }
    }

    void
    computeCriticalPath()
    {
        size_t n = r.tasks.size();
        if (!n)
            return;
        // start[i] = position of the spawn point on the parent's
        // timeline, accumulated up the spawn tree. Parents are always
        // minted before children, so one forward pass suffices.
        std::vector<uint64_t> start(n, 0);
        for (size_t i = 0; i < n; ++i) {
            uint32_t par = parentIdx[i];
            if (par != kNone)
                start[i] = start[par] + r.tasks[i].parentWorkAtSpawn;
        }

        // finish[i] = start[i] + work[i], pushed later by dependency
        // edges: a wait on producer d entered at local work offset w
        // resumes at finish[d] and still has (work[i] - w) to do.
        // Iterative DFS with a cycle guard (malformed logs fall back to
        // the spawn-only bound).
        std::vector<uint8_t> state(n, 0); // 0 new, 1 open, 2 done
        std::vector<int64_t> bestDep(n, -1);
        for (size_t root = 0; root < n; ++root) {
            if (state[root] == 2)
                continue;
            std::vector<std::pair<uint32_t, size_t>> stack;
            stack.push_back({uint32_t(root), 0});
            state[root] = 1;
            while (!stack.empty()) {
                auto &[i, di] = stack.back();
                TaskInfo &t = r.tasks[i];
                if (di == 0)
                    t.finish = start[i] + t.work;
                if (di < t.deps.size()) {
                    uint32_t d = t.deps[di].first;
                    ++di;
                    if (state[d] == 0) {
                        state[d] = 1;
                        stack.push_back({d, 0});
                    }
                    continue;
                }
                for (size_t k = 0; k < t.deps.size(); ++k) {
                    auto [d, w] = t.deps[k];
                    if (state[d] != 2)
                        continue; // cycle: skip the edge
                    uint64_t via = r.tasks[d].finish + (t.work - w);
                    if (via > t.finish) {
                        t.finish = via;
                        bestDep[i] = int64_t(d);
                    }
                }
                state[i] = 2;
                stack.pop_back();
            }
        }

        size_t tail = 0;
        for (size_t i = 0; i < n; ++i) {
            if (r.tasks[i].finish > r.tasks[tail].finish)
                tail = i;
        }
        r.criticalPath = r.tasks[tail].finish;

        // Walk the chain back: the dependency edge that set finish if
        // any, otherwise the spawn edge.
        std::vector<uint64_t> chain;
        size_t cur = tail;
        size_t guard = 0;
        while (guard++ <= n) {
            if (r.tasks[cur].onCriticalPath)
                break;          // joined an already-walked segment
            r.tasks[cur].onCriticalPath = true;
            chain.push_back(r.tasks[cur].id);
            if (bestDep[cur] >= 0)
                cur = size_t(bestDep[cur]);
            else if (parentIdx[cur] != kNone)
                cur = parentIdx[cur];
            else
                break;
        }
        std::reverse(chain.begin(), chain.end());
        r.criticalChain = std::move(chain);
    }
};

std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

void
writeHist(std::ostream &os, const char *name,
          const std::vector<uint64_t> &h, bool &first)
{
    os << (first ? "" : ",") << "\"" << name << "\":[";
    for (size_t i = 0; i < h.size(); ++i)
        os << (i ? "," : "") << h[i];
    os << "]";
    first = false;
}

} // namespace

Report
analyze(const std::vector<TaskEvent> &events, const AnalyzeParams &params)
{
    Analyzer a(params);
    a.run(events);
    return std::move(a.r);
}

void
writeReportJson(std::ostream &os, const Report &r)
{
    os << "{\"schemaVersion\":1,\"numNodes\":" << r.numNodes
       << ",\"totalCycles\":" << r.totalCycles
       << ",\"events\":" << r.eventCount << ",\"dropped\":" << r.dropped
       << ",\"totalWork\":" << r.totalWork
       << ",\"criticalPath\":" << r.criticalPath
       << ",\"lowerBound\":" << fmtDouble(r.lowerBound)
       << ",\"score\":" << fmtDouble(r.score)
       << ",\"exposed\":" << r.exposed << ",\"waitTotal\":" << r.waitTotal
       << ",\"spawns\":" << r.spawns << ",\"steals\":" << r.steals
       << ",\"stealAttempts\":" << r.stealAttempts
       << ",\"switches\":" << r.switches;

    os << ",\"tasks\":[";
    for (size_t i = 0; i < r.tasks.size(); ++i) {
        const TaskInfo &t = r.tasks[i];
        os << (i ? "," : "") << "{\"id\":" << t.id
           << ",\"parent\":" << t.parent << ",\"node\":" << t.spawnNode
           << ",\"ranOn\":" << t.runNode
           << ",\"lazy\":" << (t.lazy ? 1 : 0)
           << ",\"stolen\":" << (t.stolen ? 1 : 0)
           << ",\"ran\":" << (t.ran ? 1 : 0)
           << ",\"spawned\":" << t.spawnCycle << ",\"run\":" << t.runCycle
           << ",\"resolved\":" << t.resolveCycle
           << ",\"future\":" << t.future << ",\"work\":" << t.work
           << ",\"wait\":" << t.waitCycles
           << ",\"critical\":" << (t.onCriticalPath ? 1 : 0) << "}";
    }
    os << "]";

    os << ",\"syncWords\":[";
    for (size_t i = 0; i < r.syncWords.size(); ++i) {
        const SyncWord &s = r.syncWords[i];
        os << (i ? "," : "") << "{\"addr\":" << s.addr
           << ",\"producer\":" << s.producer
           << ",\"episodes\":" << s.episodes
           << ",\"totalWait\":" << s.totalWait
           << ",\"maxWait\":" << s.maxWait << ",\"touches\":" << s.touches
           << ",\"blocks\":" << s.blocks << ",\"feStalls\":" << s.feStalls
           << ",\"tasRetries\":" << s.tasRetries << "}";
    }
    os << "]";

    os << ",\"criticalChain\":[";
    for (size_t i = 0; i < r.criticalChain.size(); ++i)
        os << (i ? "," : "") << r.criticalChain[i];
    os << "]";

    os << ",";
    bool first = true;
    writeHist(os, "waitHist", r.waitHist, first);
    writeHist(os, "blockHist", r.blockHist, first);
    writeHist(os, "spinHist", r.spinHist, first);

    os << ",\"health\":{\"starvation\":" << r.health.starvation
       << ",\"stealConvoys\":" << r.health.stealConvoys
       << ",\"lostWakeups\":" << r.health.lostWakeups << ",\"notes\":[";
    for (size_t i = 0; i < r.health.notes.size(); ++i) {
        os << (i ? "," : "") << "\"";
        for (char c : r.health.notes[i]) {
            if (c == '"' || c == '\\')
                os << '\\';
            os << c;
        }
        os << "\"";
    }
    os << "]}}";
}

void
writeReportText(std::ostream &os, const Report &r)
{
    char buf[256];
    os << "task observability report\n";
    os << "=========================\n";
    std::snprintf(buf, sizeof(buf),
                  "  nodes %u  cycles %" PRIu64 "  events %" PRIu64
                  "  dropped %" PRIu64 "\n",
                  r.numNodes, r.totalCycles, r.eventCount, r.dropped);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  spawns %u  steals %u  steal attempts %u  switches %u\n",
                  r.spawns, r.steals, r.stealAttempts, r.switches);
    os << buf;

    os << "\nlatency tolerance\n";
    std::snprintf(buf, sizeof(buf),
                  "  total work      %" PRIu64 "\n  critical path   %" PRIu64
                  "\n  DAG lower bound %.1f\n",
                  r.totalWork, r.criticalPath, r.lowerBound);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  T_actual        %" PRIu64 "\n  exposed latency %" PRIu64
                  "  (hidden: %" PRIu64 " of %" PRIu64 " wait cycles)\n",
                  r.totalCycles, r.exposed,
                  r.waitTotal > r.exposed ? r.waitTotal - r.exposed : 0,
                  r.waitTotal);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  tolerance score %.4f\n", r.score);
    os << buf;

    // Slowest tasks by work + wait.
    std::vector<size_t> order(r.tasks.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        uint64_t ca = r.tasks[a].work + r.tasks[a].waitCycles;
        uint64_t cb = r.tasks[b].work + r.tasks[b].waitCycles;
        if (ca != cb)
            return ca > cb;
        return r.tasks[a].id < r.tasks[b].id;
    });
    os << "\nslowest tasks (work+wait)\n";
    size_t shown = 0;
    for (size_t i : order) {
        if (shown++ >= 10)
            break;
        const TaskInfo &t = r.tasks[i];
        std::snprintf(buf, sizeof(buf),
                      "  %2u#%-6u work %-8" PRIu64 " wait %-8" PRIu64
                      " %s%s%s\n",
                      uint32_t(t.id >> 32), uint32_t(t.id), t.work,
                      t.waitCycles, t.lazy ? "lazy " : "",
                      t.stolen ? "stolen " : "",
                      t.onCriticalPath ? "CRITICAL" : "");
        os << buf;
    }

    // Hottest sync words by total wait.
    std::vector<size_t> sorder(r.syncWords.size());
    for (size_t i = 0; i < sorder.size(); ++i)
        sorder[i] = i;
    std::sort(sorder.begin(), sorder.end(), [&](size_t a, size_t b) {
        if (r.syncWords[a].totalWait != r.syncWords[b].totalWait)
            return r.syncWords[a].totalWait > r.syncWords[b].totalWait;
        return r.syncWords[a].addr < r.syncWords[b].addr;
    });
    os << "\nhottest sync words\n";
    shown = 0;
    for (size_t i : sorder) {
        if (shown++ >= 10)
            break;
        const SyncWord &s = r.syncWords[i];
        std::snprintf(buf, sizeof(buf),
                      "  word %-10u wait %-8" PRIu64 " max %-7" PRIu64
                      " touches %-5u blocks %-4u fe %-5u tas %-5u by %u#%u\n",
                      s.addr, s.totalWait, s.maxWait, s.touches, s.blocks,
                      s.feStalls, s.tasRetries, uint32_t(s.producer >> 32),
                      uint32_t(s.producer));
        os << buf;
    }

    os << "\ncritical path (" << r.criticalChain.size() << " tasks)\n  ";
    for (size_t i = 0; i < r.criticalChain.size(); ++i) {
        if (i) {
            os << " -> ";
            if (i % 6 == 0)
                os << "\n  ";
        }
        os << (uint32_t)(r.criticalChain[i] >> 32) << "#"
           << uint32_t(r.criticalChain[i]);
    }
    os << "\n";

    os << "\nhealth\n";
    std::snprintf(buf, sizeof(buf),
                  "  starvation %u  steal convoys %u  lost wakeups %u\n",
                  r.health.starvation, r.health.stealConvoys,
                  r.health.lostWakeups);
    os << buf;
    for (const std::string &n : r.health.notes)
        os << "  ! " << n << "\n";
}

} // namespace april::task

#include "task/task_trace.hh"

#include <cstring>

namespace april::task
{

const char *
evName(Ev e)
{
    switch (e) {
      case Ev::RootBegin: return "RootBegin";
      case Ev::RootEnd: return "RootEnd";
      case Ev::Spawn: return "Spawn";
      case Ev::SpawnLazy: return "SpawnLazy";
      case Ev::MakeFuture: return "MakeFuture";
      case Ev::PopTask: return "PopTask";
      case Ev::StealAttempt: return "StealAttempt";
      case Ev::StealTask: return "StealTask";
      case Ev::StealWon: return "StealWon";
      case Ev::LazyPub: return "LazyPub";
      case Ev::LazyMine: return "LazyMine";
      case Ev::LazyStolen: return "LazyStolen";
      case Ev::LazyResume: return "LazyResume";
      case Ev::Run: return "Run";
      case Ev::Resolve: return "Resolve";
      case Ev::Touch: return "Touch";
      case Ev::Block: return "Block";
      case Ev::Resume: return "Resume";
      case Ev::ResumeStolen: return "ResumeStolen";
      case Ev::FeStall: return "FeStall";
      case Ev::TasRetry: return "TasRetry";
      case Ev::FrameSwitch: return "FrameSwitch";
    }
    return "?";
}

namespace
{

/** The Mul-T compiler's SCR scratch register (mult/compiler.hh); the
 *  lazy-push probe reads the boxed marker pointer out of it. Kept as a
 *  plain number so the task library does not depend on mult. */
constexpr uint8_t kCompilerScr = 19;

struct NoteSpec
{
    const char *name;
    Site site;
};

/**
 * The probe vocabulary: note name -> payload registers at the marked
 * pc. Register conventions are those of rt::Runtime's emitted assembly
 * (src/runtime/runtime.cc) and the compiler's lazy-future inline
 * sequence (src/mult/compiler.cc); each probe note is placed where the
 * listed registers are live and the marked instruction does not
 * clobber them.
 */
constexpr NoteSpec kNotes[] = {
    {"tp$root", {Ev::RootBegin, kNoReg, false, kNoReg, false}},
    {"tp$root_end", {Ev::RootEnd, kNoReg, false, kNoReg, false}},
    {"tp$spawn", {Ev::Spawn, reg::t(0), true, reg::a(1), true}},
    {"tp$lazy_push", {Ev::SpawnLazy, kCompilerScr, true, kNoReg, false}},
    {"tp$mkfut", {Ev::MakeFuture, reg::a(0), true, kNoReg, false}},
    {"tp$pop", {Ev::PopTask, reg::t(5), true, kNoReg, false}},
    {"tp$steal_try", {Ev::StealAttempt, kNoReg, false, kNoReg, false}},
    {"tp$steal_task", {Ev::StealTask, reg::t(5), true, kNoReg, false}},
    {"tp$deq_won", {Ev::StealWon, reg::t(5), true, kNoReg, false}},
    {"tp$lazy_pub", {Ev::LazyPub, reg::t(5), true, reg::a(0), true}},
    {"tp$lazy_mine", {Ev::LazyMine, kNoReg, false, kNoReg, false}},
    {"tp$stolen_exit", {Ev::LazyStolen, reg::a(0), true, kNoReg, false}},
    {"tp$lazy_resume", {Ev::LazyResume, reg::a(0), true, kNoReg, false}},
    {"tp$run", {Ev::Run, reg::t(5), true, kNoReg, false}},
    {"tp$resolve", {Ev::Resolve, reg::a(0), true, kNoReg, false}},
    {"tp$block", {Ev::Block, reg::t(3), true, reg::t(5), true}},
    {"tp$resume", {Ev::Resume, reg::t(1), true, kNoReg, false}},
    {"tp$resume_steal", {Ev::ResumeStolen, reg::t(1), true, kNoReg, false}},
};

const Site *
siteForNote(const std::string &name)
{
    for (const NoteSpec &s : kNotes) {
        if (name == s.name)
            return &s.site;
    }
    return nullptr;
}

} // namespace

ProbeMap::ProbeMap(const Program &prog)
{
    siteAt_.assign(prog.size(), -1);
    for (const auto &[name, pc] : prog.notes()) {
        if (name.compare(0, 3, "tp$") != 0)
            continue;
        const Site *s = siteForNote(name);
        // Unknown tp$ names and notes at the very end of the program
        // (nothing follows to mark) are ignored, not errors: programs
        // may carry notes from newer vocabularies.
        if (!s || pc >= siteAt_.size())
            continue;
        sites_.push_back(*s);
        siteAt_[pc] = int32_t(sites_.size() - 1);
    }
}

namespace
{

/** One Chrome trace-event object on an open event array. */
void
writeChromeEvent(std::ostream &os, bool &first, const std::string &name,
                 const char *ph, uint64_t ts, uint32_t pid, uint64_t id,
                 const std::string &args)
{
    os << (first ? "\n" : ",\n") << "{\"name\":\"" << name
       << "\",\"ph\":\"" << ph << "\",\"cat\":\"task\",\"ts\":" << ts
       << ",\"pid\":" << pid << ",\"tid\":0,\"id\":" << id;
    if (!args.empty())
        os << ",\"args\":{" << args << "}";
    os << "}";
}

} // namespace

void
Tracer::writeChromeEvents(std::ostream &os, bool &first) const
{
    if (events_.empty())
        return;
    AnalyzeParams p;
    uint32_t max_node = 0;
    for (const TaskEvent &e : events_)
        max_node = std::max(max_node, e.node);
    p.numNodes = max_node + 1;
    Report r = analyze(events_, p);
    uint64_t last_cycle = events_.back().cycle;
    for (const TaskInfo &t : r.tasks) {
        if (!t.ran)
            continue;
        uint64_t end = t.resolveCycle ? t.resolveCycle
                                      : std::max(t.runCycle, last_cycle);
        std::string name = "task " + std::to_string(t.id >> 32) + "#" +
                           std::to_string(uint32_t(t.id));
        if (t.lazy)
            name += " (lazy)";
        writeChromeEvent(os, first, name, "b", t.runCycle, t.runNode,
                         t.id,
                         "\"work\":" + std::to_string(t.work) +
                             ",\"wait\":" + std::to_string(t.waitCycles) +
                             ",\"critical\":" +
                             (t.onCriticalPath ? "1" : "0"));
        // A migrated task gets a flow arrow from its spawn site to the
        // node that ran it.
        if (t.stolen && t.spawnNode != t.runNode) {
            writeChromeEvent(os, first, "steal", "s", t.spawnCycle,
                             t.spawnNode, t.id, "");
            writeChromeEvent(os, first, "steal", "f", t.runCycle,
                             t.runNode, t.id, "");
        }
        writeChromeEvent(os, first, name, "e", end, t.runNode, t.id, "");
    }
}

} // namespace april::task

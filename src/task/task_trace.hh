/**
 * @file
 * Task-level observability: future/task lifecycle tracing, wait
 * attribution and critical-path analysis (DESIGN.md §7.10).
 *
 * The runtime and the Mul-T compiler drop out-of-band `tp$...` notes
 * (Program::notes()) at the probe sites of the task vocabulary —
 * spawn, steal, run, block, resume, resolve, the lazy-task claim
 * race. A ProbeMap turns the notes into a flat pc -> Site table; the
 * processor fires a probe when the marked instruction completes and
 * appends one self-contained TaskEvent to its shard's lane.
 * Processor-internal waits (future touches, f/e stalls, TAS retries,
 * frame switches) are recorded from the C++ trap paths directly, so
 * even programs without notes produce a non-trivial log.
 *
 * Like trace::Recorder and coh::TxnTracer, the tracer is a flat
 * cycle-stamped append-only log with a deterministic capacity cap.
 * Under the parallel engine each shard records into its own lane;
 * lanes merge canonically by (cycle, node) — every event is recorded
 * by the processor whose node it names — so the merged stream is
 * bit-identical to the sequential one across cycle-skip modes and
 * host-thread counts.
 *
 * All correlation (TaskId minting, DAG edges, wait episodes, the
 * critical path, health detectors) happens in analyze(): one
 * deterministic sequential pass over the merged stream. Events only
 * carry what the recording site knows locally, which is what makes
 * the record path observational (it never perturbs the simulation).
 */

#ifndef APRIL_TASK_TASK_TRACE_HH
#define APRIL_TASK_TASK_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "isa/types.hh"

namespace april::task
{

/** Task/future lifecycle event kinds. */
enum class Ev : uint8_t
{
    RootBegin,    ///< boot thread enters user main (node 0)
    RootEnd,      ///< boot thread back from user main
    Spawn,        ///< eager task packaged: addr=descriptor, aux=future
    SpawnLazy,    ///< lazy marker published: addr=marker
    MakeFuture,   ///< future cell allocated: addr=future
    PopTask,      ///< scheduler popped a local task: addr=descriptor
    StealAttempt, ///< scheduler begins a steal round (no work found yet)
    StealTask,    ///< eager task stolen from a victim: addr=descriptor
    StealWon,     ///< lazy continuation claimed: addr=marker
    LazyPub,      ///< thief links marker -> future: addr=marker, aux=future
    LazyMine,     ///< owner reclaimed its newest lazy marker inline
    LazyStolen,   ///< producer found its continuation stolen: addr=future
    LazyResume,   ///< thief resumes the continuation: addr=future
    Run,          ///< scheduler calls into a task body: addr=descriptor
    Resolve,      ///< future resolved: addr=future
    Touch,        ///< future-touch trap on an unresolved value: addr=future
    Block,        ///< thread queued on a future: addr=future, aux=thread
    Resume,       ///< blocked thread restored locally: addr=thread
    ResumeStolen, ///< blocked thread migrated to a thief: addr=thread
    FeStall,      ///< full/empty synchronization fault: addr=word
    TasRetry,     ///< TAS found the lock held: addr=word
    FrameSwitch,  ///< context switch: addr=old frame, aux=new frame
};

constexpr size_t kNumEvs = size_t(Ev::FrameSwitch) + 1;

/** Canonical event name ("Spawn", "StealWon", ...). */
const char *evName(Ev e);

/**
 * One recorded task event. `node` is always the processor that
 * recorded it (the merge key). `work` snapshots the recording frame's
 * Useful+Hazard cycle counters, so the analysis pass can attribute
 * per-segment work without the recorder knowing task identities; the
 * counters only advance on executed instructions, which keeps them
 * (and therefore the whole event) invariant under cycle-skipping.
 */
struct TaskEvent
{
    uint64_t cycle = 0;
    uint64_t work = 0;
    uint32_t node = 0;
    Addr addr = 0;
    uint32_t aux = 0;
    Ev kind = Ev::Spawn;
    uint8_t frame = 0;

    bool operator==(const TaskEvent &) const = default;
};

/** No-register marker in Site::addrReg / Site::auxReg. */
constexpr uint8_t kNoReg = 0xff;

/**
 * How to materialize one probe site's event: which registers hold the
 * payload at the marked pc and whether they carry tagged pointers
 * (untagged to word addresses via tagged::ptrAddr).
 */
struct Site
{
    Ev kind = Ev::Spawn;
    uint8_t addrReg = kNoReg;
    bool addrPtr = false;
    uint8_t auxReg = kNoReg;
    bool auxPtr = false;
};

/**
 * Flat pc -> Site table built from a Program's `tp$...` notes. One
 * site per pc (a later note at the same pc wins). Immutable after
 * construction, shared by every processor of a machine.
 */
class ProbeMap
{
  public:
    explicit ProbeMap(const Program &prog);

    /** Site at @p pc, nullptr when unmarked. */
    const Site *
    at(uint32_t pc) const
    {
        int32_t i = pc < siteAt_.size() ? siteAt_[pc] : -1;
        return i < 0 ? nullptr : &sites_[size_t(i)];
    }

    size_t numSites() const { return sites_.size(); }

  private:
    std::vector<Site> sites_;
    std::vector<int32_t> siteAt_;
};

/** The per-machine (or per-shard lane) task event log. */
class Tracer
{
  public:
    explicit Tracer(uint64_t capacity) : capacity_(capacity)
    {
        events_.reserve(1024);
    }

    /** Append one event (drops deterministically once full). */
    void
    record(const TaskEvent &e)
    {
        if (events_.size() < capacity_)
            events_.push_back(e);
        else
            ++dropped_;
    }

    const std::vector<TaskEvent> &events() const { return events_; }
    std::vector<TaskEvent> &mutableEvents() { return events_; }
    uint64_t dropped() const { return dropped_; }
    uint64_t capacity() const { return capacity_; }

    /** Fold another lane's overflow count into this log. */
    void addDropped(uint64_t n) { dropped_ += n; }

    /** Discard all recorded events (a merged-out lane). */
    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /**
     * Append Perfetto events to an open Chrome-trace event array
     * (trace::Recorder::ExtraEventWriter shape): one async "task"
     * span per task from spawn to resolve, with flow arrows threading
     * spawn node -> running node for migrated (stolen) tasks.
     */
    void writeChromeEvents(std::ostream &os, bool &first) const;

  private:
    uint64_t capacity_;
    std::vector<TaskEvent> events_;
    uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------
// Analysis (the deterministic post-pass)
// ---------------------------------------------------------------------

struct AnalyzeParams
{
    uint32_t numNodes = 1;
    /// T_actual; 0 means "use the last event's cycle".
    uint64_t totalCycles = 0;
    /// A block outlasting this many cycles counts as starvation.
    uint64_t starvationThreshold = 10000;
    /// This many consecutive fruitless steal rounds on one node is a
    /// steal convoy.
    uint32_t convoyLength = 16;
};

/** One minted task. id = (spawn node << 32) | per-node sequence. */
struct TaskInfo
{
    uint64_t id = 0;
    uint64_t parent = 0;        ///< spawning task id (0 = none)
    uint32_t spawnNode = 0;
    uint32_t runNode = 0;       ///< where it first ran
    bool lazy = false;
    bool stolen = false;
    bool ran = false;
    uint64_t spawnCycle = 0;
    uint64_t runCycle = 0;
    uint64_t resolveCycle = 0;  ///< 0 while unresolved
    Addr future = 0;            ///< future it resolves (0 unknown)
    uint64_t work = 0;          ///< Useful+Hazard cycles in its segments
    uint64_t waitCycles = 0;    ///< blocked-on-future cycles
    /// Parent's accumulated work at the spawn point (start offset on
    /// the spawn edge of the critical-path recurrence).
    uint64_t parentWorkAtSpawn = 0;
    /// Producers of futures this task waited on: (task index into
    /// Report::tasks, this task's work when the wait began).
    std::vector<std::pair<uint32_t, uint64_t>> deps;
    uint64_t finish = 0;        ///< critical-path finish time (work units)
    bool onCriticalPath = false;
};

/** Wait attribution for one synchronization word. */
struct SyncWord
{
    Addr addr = 0;
    uint64_t producer = 0;      ///< resolving task id (0 unknown)
    uint32_t episodes = 0;
    uint64_t totalWait = 0;
    uint64_t maxWait = 0;
    uint32_t touches = 0;
    uint32_t blocks = 0;
    uint32_t feStalls = 0;
    uint32_t tasRetries = 0;
};

/** Runtime health findings (deterministic order, detail lines capped). */
struct Health
{
    uint32_t starvation = 0;
    uint32_t stealConvoys = 0;
    uint32_t lostWakeups = 0;
    std::vector<std::string> notes;
};

/** The full analysis result. */
struct Report
{
    uint32_t numNodes = 1;
    uint64_t totalCycles = 0;   ///< T_actual
    uint64_t eventCount = 0;
    uint64_t dropped = 0;
    uint64_t totalWork = 0;     ///< sum of task work
    uint64_t criticalPath = 0;  ///< DAG lower bound (work units)
    double lowerBound = 0;      ///< max(criticalPath, totalWork/P)
    double score = 0;           ///< latency tolerance: lowerBound/T_actual
    uint64_t exposed = 0;       ///< T_actual - lowerBound (clamped)
    uint64_t waitTotal = 0;     ///< all wait-episode cycles
    uint32_t spawns = 0;
    uint32_t steals = 0;
    uint32_t stealAttempts = 0;
    uint32_t switches = 0;
    std::vector<TaskInfo> tasks;        ///< minting order
    std::vector<SyncWord> syncWords;    ///< first-appearance order
    std::vector<uint64_t> criticalChain;///< task ids, root to leaf
    /// log2 wait histograms (stats::Histogram::logBucket layout).
    std::vector<uint64_t> waitHist;
    std::vector<uint64_t> blockHist;
    std::vector<uint64_t> spinHist;     ///< f/e + TAS episodes
    Health health;
};

/** Run the sequential post-pass over a canonically merged log. */
Report analyze(const std::vector<TaskEvent> &events,
               const AnalyzeParams &params);

/**
 * Serialize the report as structured JSON (schemaVersion 1, validated
 * by tools/april_task_schema.json). Deterministic for a given log, so
 * differential tests compare serializations byte for byte.
 */
void writeReportJson(std::ostream &os, const Report &r);

/** Human-oriented report: slowest tasks, hottest sync words, the
 *  critical path and the latency-tolerance breakdown. */
void writeReportText(std::ostream &os, const Report &r);

} // namespace april::task

#endif // APRIL_TASK_TASK_TRACE_HH

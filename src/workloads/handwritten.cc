#include "workloads/handwritten.hh"

#include "runtime/runtime.hh"

namespace april::workloads
{

FineGrainSync
buildFineGrainSync()
{
    using namespace april::tagged;

    FineGrainSync out;
    out.buf = 4096;             // 64-slot ring, homed on node 0
    out.items = 64;

    Assembler as;
    // Producer (node 0): buf[i] <- i*i, set full; waits while full.
    as.bind("producer");
    as.movi(1, ptr(out.buf, Tag::Other));
    as.movi(2, 0);                          // i (raw)
    as.bind("ploop");
    as.mulR(3, 2, 2);
    as.slliR(3, 3, 2);                      // fixnum(i*i)
    as.bind("pwait");
    as.ldnw(4, 1, 0);                       // probe the f/e state
    as.jRaw(Cond::FULL, "pwait");           // still full: consumer lags
    as.nop();
    as.stfnw(3, 1, 0);                      // store and set full
    as.addiR(1, 1, kWordOff);
    as.addiR(2, 2, 1);
    as.cmpiR(2, out.items);
    as.jRaw(Cond::LT, "ploop");
    as.nop();
    as.halt();

    // Consumer (node 1): consuming loads; spins while empty.
    as.bind("consumer");
    as.movi(1, ptr(out.buf, Tag::Other));
    as.movi(2, 0);
    as.movi(5, fixnum(0));                  // sum
    as.bind("cloop");
    as.bind("cwait");
    as.ldenw(6, 1, 0);                      // atomically read-and-empty
    as.jRaw(Cond::EMPTY, "cwait");          // was empty: retry
    as.nop();
    as.add(5, 5, 6);
    as.addiR(1, 1, kWordOff);
    as.addiR(2, 2, 1);
    as.cmpiR(2, out.items);
    as.jRaw(Cond::LT, "cloop");
    as.nop();
    as.stio(int(IoReg::ConsoleOut), 5);
    as.stio(int(IoReg::MachineHalt), 5);
    as.halt();

    // Boot plumbing expected by the machine (no Mul-T here).
    as.bind(rt::sym::boot);
    as.j(Cond::AL, "producer");
    as.bind(rt::sym::idle);
    as.j(Cond::AL, "consumer");
    as.bind(rt::sym::sched);
    as.bind(rt::sym::cswitch);
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind(rt::sym::futureTouch);
    as.bind(rt::sym::ipi);
    as.rettRetry();
    as.bind(rt::sym::fault);
    as.halt();
    as.bind(rt::sym::makeFuture);
    as.bind(rt::sym::resolve);
    as.bind(rt::sym::spawn);
    as.bind(rt::sym::cons);
    as.bind(rt::sym::makeVector);
    as.bind(rt::sym::stolenExit);
    as.bind(rt::sym::touchSw);
    as.bind(rt::sym::touchResume);
    as.bind(rt::sym::userMain);
    as.ret();
    out.prog = as.finish();

    for (int i = 0; i < out.items; ++i)
        out.expectedSum += int64_t(i) * i;
    return out;
}

namespace
{
constexpr Addr kCohLock = 400;
constexpr Addr kCohCount = 404;
} // namespace

CoherentLoop
buildCoherentLoop(uint32_t nodes, uint32_t iters)
{
    using namespace april::tagged;

    CoherentLoop out;
    out.lock = kCohLock;
    out.count = kCohCount;
    out.nodes = nodes;
    out.iters = iters;

    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kCohLock, Tag::Other));
    as.movi(2, ptr(kCohCount, Tag::Other));
    as.movi(3, 0);
    as.movi(7, fixnum(84));
    as.movi(8, fixnum(4));
    as.bind("loop");
    as.div(9, 7, 8);
    as.bind("acq");
    as.ldenw(4, 1, 0);
    as.jRaw(Cond::EMPTY, "acq");
    as.nop();
    as.ldnw(5, 2, 0);
    as.addi(5, 5, int32_t(fixnum(1)));
    as.stnw(5, 2, 0);
    as.stfnw(reg::r0, 1, 0);
    as.addiR(3, 3, 1);
    as.cmpiR(3, int32_t(iters));
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    as.bind("wait");
    as.ldnw(5, 2, 0);
    as.cmpiR(5, int32_t(fixnum(int32_t(nodes * iters))));
    as.jRaw(Cond::NE, "wait");
    as.nop();
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    out.prog = as.finish();
    return out;
}

WideSharing
buildWideSharing(uint32_t nodes, uint32_t words_per_node)
{
    using namespace april::tagged;

    if (words_per_node == 0 || (words_per_node & (words_per_node - 1)))
        fatal("buildWideSharing: wordsPerNode must be a power of two");

    constexpr Addr kShared = 512;
    constexpr Addr kDoneOff = 520;

    WideSharing out;
    out.shared = kShared;
    out.doneOff = kDoneOff;
    out.nodes = nodes;
    out.wordsPerNode = words_per_node;

    int32_t node_shift = 0;
    while ((1u << node_shift) < words_per_node)
        ++node_shift;
    node_shift += int32_t(tagShift);
    const int32_t done_imm = int32_t(ptr(kDoneOff, Tag::Other));

    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kShared, Tag::Other));
    as.ldnw(4, 1, 0);                       // join the sharer set
    as.ldio(5, int(IoReg::NodeId));
    as.slliR(5, 5, node_shift);             // my segment base, tagged
    as.addiR(5, 5, done_imm);               // my done flag
    as.movi(6, fixnum(1));
    as.stnw(6, 5, 0);                       // announce completion
    as.ldio(7, int(IoReg::NodeId));
    as.cmpiR(7, 0);
    as.jRaw(Cond::NE, "done");
    as.nop();
    if (nodes > 1) {
        // Node 0: wait for every flag. A cached stale flag spins in
        // the cache until the owner's write invalidates the copy.
        as.movi(8, 1);
        as.bind("poll");
        as.slliR(9, 8, node_shift);
        as.addiR(9, 9, done_imm);
        as.bind("pollw");
        as.ldnw(10, 9, 0);
        as.cmpiR(10, int32_t(fixnum(1)));
        as.jRaw(Cond::NE, "pollw");
        as.nop();
        as.addiR(8, 8, 1);
        as.cmpiR(8, int32_t(nodes));
        as.jRaw(Cond::LT, "poll");
        as.nop();
    }
    // The storm: write the word every node shares. Under the limited
    // directory this walks the spill table before the invalidations.
    as.movi(11, fixnum(99));
    as.stnw(11, 1, 0);
    as.stio(int(IoReg::ConsoleOut), 11);
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("done");
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    out.prog = as.finish();
    return out;
}

DirHandlers
buildDirHandlers(bool frame_leak)
{
    using namespace april::tagged;

    constexpr Addr kSpillCount = 632;
    constexpr Addr kSpillTable = 640;

    DirHandlers out;
    out.spillCount = kSpillCount;
    out.spillTable = kSpillTable;
    out.handlers = {"coh$spill", "coh$walk"};

    Assembler as;
    // Pointer-overflow trap: the hardware directory ran out of
    // pointers; append the faulting line's evicted pointer set (the
    // trap argument) to the software spill table. Runs in a fresh
    // frame so the interrupted context's registers survive untouched.
    as.bind("coh$spill");
    as.incfp();
    as.rdspec(reg::t(0), Spec::TrapVA);     // faulting line / ptr set
    as.movi(reg::t(1), ptr(kSpillCount, Tag::Other));
    as.ldnw(reg::t(2), reg::t(1), 0);       // entry count (raw)
    as.movi(reg::t(3), ptr(kSpillTable, Tag::Other));
    as.slliR(reg::t(4), reg::t(2), int32_t(tagShift));
    as.addR(reg::t(4), reg::t(3), reg::t(4));
    as.stnw(reg::t(0), reg::t(4), 0);       // table[count] = entry
    as.addiR(reg::t(2), reg::t(2), 1);
    as.stnw(reg::t(2), reg::t(1), 0);
    as.decfp();
    as.rettRetry();

    // Invalidation walk: a write reached a spilled line, so the
    // hardware pointers alone cannot name every sharer. Poke each
    // spilled sharer with an IPI and drain the table.
    as.bind("coh$walk");
    as.incfp();
    as.movi(reg::t(1), ptr(kSpillCount, Tag::Other));
    as.ldnw(reg::t(2), reg::t(1), 0);       // entries to visit (raw)
    as.cmpiR(reg::t(2), 0);
    if (frame_leak) {
        // The planted bug: the empty-table fast path forgets the
        // balancing DECFP, so the interrupted context resumes one
        // frame off. april-lint's protocol-handler check must flag
        // the RETT at coh$walk_bail.
        as.jRaw(Cond::EQ, "coh$walk_bail");
        as.nop();
    } else {
        as.jRaw(Cond::EQ, "coh$walk_done");
        as.nop();
    }
    as.movi(reg::t(3), ptr(kSpillTable, Tag::Other));
    as.movi(reg::t(4), 0);                  // visited so far
    as.bind("coh$walk_loop");
    as.ldnw(reg::t(5), reg::t(3), 0);       // spilled sharer node id
    as.stio(int(IoReg::IpiDest), reg::t(5));
    as.stio(int(IoReg::IpiSend), reg::r0);  // fire the invalidation
    as.addiR(reg::t(3), reg::t(3), kWordOff);
    as.addiR(reg::t(4), reg::t(4), 1);
    as.cmpR(reg::t(4), reg::t(2));
    as.jRaw(Cond::LT, "coh$walk_loop");
    as.nop();
    as.stnw(reg::r0, reg::t(1), 0);         // table drained
    as.bind("coh$walk_done");
    as.decfp();
    as.rettRetry();
    if (frame_leak) {
        as.bind("coh$walk_bail");
        as.rettRetry();
    }
    out.prog = as.finish();
    return out;
}

void
bootCoherentNode(Processor &proc, const Program &prog)
{
    proc.reset(prog.entry("worker"));
    proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
    proc.setTrapVector(TrapKind::FeEmpty, prog.entry("cswitch"));
    for (uint32_t f = 1; f < proc.numFrames(); ++f) {
        proc.frame(f).trapPC = prog.entry("fyield");
        proc.frame(f).trapNPC = prog.entry("fyield") + 1;
        proc.frame(f).trapRegs[0] = psr::ET;
    }
}

} // namespace april::workloads

/**
 * @file
 * Hand-written (non-Mul-T) assembly workloads shared by the examples,
 * the `april-lint` static analyzer gate, and the dynamic race-detector
 * tests. Keeping the builders here means the program the example runs
 * is byte-for-byte the program the analyzer vouches for.
 */

#ifndef APRIL_WORKLOADS_HANDWRITTEN_HH
#define APRIL_WORKLOADS_HANDWRITTEN_HH

#include "isa/assembler.hh"
#include "isa/types.hh"

namespace april::workloads
{

/**
 * The Section 3.3 fine-grain synchronization pipeline: node 0 produces
 * squares into a shared buffer with set-to-full stores, node 1 drains
 * it with consuming (reset-to-empty) loads. All cross-node handoffs go
 * through full/empty bits — the race detector must see zero races.
 */
struct FineGrainSync
{
    Program prog;
    Addr buf = 0;               ///< first buffer word (starts empty)
    int items = 0;              ///< buffer length in words
    int64_t expectedSum = 0;    ///< sum of i*i the consumer prints
};

FineGrainSync buildFineGrainSync();

} // namespace april::workloads

#endif // APRIL_WORKLOADS_HANDWRITTEN_HH

/**
 * @file
 * Hand-written (non-Mul-T) assembly workloads shared by the examples,
 * the `april-lint` static analyzer gate, and the dynamic race-detector
 * tests. Keeping the builders here means the program the example runs
 * is byte-for-byte the program the analyzer vouches for.
 */

#ifndef APRIL_WORKLOADS_HANDWRITTEN_HH
#define APRIL_WORKLOADS_HANDWRITTEN_HH

#include "isa/assembler.hh"
#include "isa/types.hh"
#include "proc/processor.hh"

namespace april::workloads
{

/**
 * The Section 3.3 fine-grain synchronization pipeline: node 0 produces
 * squares into a shared buffer with set-to-full stores, node 1 drains
 * it with consuming (reset-to-empty) loads. All cross-node handoffs go
 * through full/empty bits — the race detector must see zero races.
 */
struct FineGrainSync
{
    Program prog;
    Addr buf = 0;               ///< first buffer word (starts empty)
    int items = 0;              ///< buffer length in words
    int64_t expectedSum = 0;    ///< sum of i*i the consumer prints
};

FineGrainSync buildFineGrainSync();

/**
 * The contended coherent-loop microbenchmark shared by
 * bench_sim_speed, bench_prof_overhead and the april-coh balance
 * gate: every node increments an f/e-locked shared counter `iters`
 * times with a DIV per iteration, node 0 spins until the counter
 * reaches nodes * iters and halts the machine. Pure coherence
 * traffic — every increment bounces the lock and counter lines
 * through the directory.
 */
struct CoherentLoop
{
    Program prog;
    Addr lock = 0;              ///< f/e lock word
    Addr count = 0;             ///< shared counter word (init to
                                ///< fixnum(0) before running)
    uint32_t nodes = 0;
    uint32_t iters = 0;
};

CoherentLoop buildCoherentLoop(uint32_t nodes, uint32_t iters);

/** Point @p proc at the coherent loop's worker entry: reset to
 *  "worker", wire the context-switch and frame-yield trap stubs. */
void bootCoherentNode(Processor &proc, const Program &prog);

/**
 * The machine-scaling stress workload (DESIGN.md §7.8): every node
 * reads one word homed on node 0 — driving the directory's sharer set
 * as wide as the machine, past any limited-directory pointer budget —
 * then raises a done flag in its own memory segment. Node 0 polls the
 * flags and finally *writes* the widely-shared word, forcing a
 * machine-wide invalidation storm (a spill-table walk under the
 * limited scheme) before halting. No locks, so the critical path is
 * O(nodes) remote reads rather than a serialized lock queue — this is
 * the workload that completes at 1024 nodes.
 *
 * `wordsPerNode` must be a power of two (node-local done-flag
 * addresses are computed with a shift) and every node's program is
 * identical, so the same build boots every node via
 * bootCoherentNode().
 */
struct WideSharing
{
    Program prog;
    Addr shared = 0;            ///< widely-read word, homed on node 0
    Addr doneOff = 0;           ///< done-flag offset within each node's
                                ///< memory segment
    uint32_t nodes = 0;
    uint32_t wordsPerNode = 0;
};

WideSharing buildWideSharing(uint32_t nodes, uint32_t wordsPerNode);

/**
 * The LimitLESS software directory handlers as a standalone trap
 * handler image: `coh$spill` (pointer-overflow trap: append the
 * evicted pointer set to the node's software spill table) and
 * `coh$walk` (invalidation walk: poke every spilled sharer with an
 * IPI, then drain the table). Both are entered through trap vectors
 * and must return to the interrupted context with the frame pointer
 * exactly restored — the property april-lint's protocol-handler
 * check gates (the image is only ever entered through `handlers`, so
 * lint roots are exactly those symbols, not every label).
 */
struct DirHandlers
{
    Program prog;
    Addr spillCount = 0;        ///< spill-table entry count word
    Addr spillTable = 0;        ///< first spill-table word
    /// Trap-vector entry symbols (the only legal entry points).
    std::vector<std::string> handlers;
};

/**
 * @param frameLeak plant the classic handler bug the lint check
 *        exists for: coh$walk's empty-table fast path RETTs without
 *        the balancing DECFP. Used by the analysis tests to prove the
 *        check fires; production callers leave it false.
 */
DirHandlers buildDirHandlers(bool frameLeak = false);

} // namespace april::workloads

#endif // APRIL_WORKLOADS_HANDWRITTEN_HH

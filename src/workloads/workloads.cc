#include "workloads/workloads.hh"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/logging.hh"

namespace april::workloads
{

// --------------------------------------------------------------------
// fib
// --------------------------------------------------------------------

std::string
fibSource(int n)
{
    return
        "(define (fib n)"
        "  (if (< n 2) n"
        "      (+ (future (fib (- n 1)))"
        "         (future (fib (- n 2))))))"
        "(define (main) (fib " + std::to_string(n) + "))";
}

int64_t
fibExpected(int n)
{
    int64_t a = 0, b = 1;
    for (int i = 0; i < n; ++i) {
        int64_t t = a + b;
        a = b;
        b = t;
    }
    return a;
}

// --------------------------------------------------------------------
// factor
// --------------------------------------------------------------------

std::string
factorSource(int lo, int hi)
{
    return
        // Trial division; when the remaining cofactor exceeds the
        // square of the divisor bound it is itself the largest prime.
        "(define (lpf n d best)"
        "  (if (> (* d d) n)"
        "      (if (> n 1) n best)"
        "      (if (= (remainder n d) 0)"
        "          (lpf (quotient n d) d d)"
        "          (lpf n (+ d 1) best))))"
        // Balanced range split: futures fork both halves, so stacks
        // stay logarithmic and lazy steals take big work chunks.
        "(define (factor-range lo hi)"
        "  (if (> lo hi) 0"
        "      (if (= lo hi) (lpf lo 2 1)"
        "          (let ((mid (quotient (+ lo hi) 2)))"
        "            (+ (future (factor-range lo mid))"
        "               (future (factor-range (+ mid 1) hi)))))))"
        "(define (main) (factor-range " + std::to_string(lo) + " " +
        std::to_string(hi) + "))";
}

int64_t
factorExpected(int lo, int hi)
{
    auto lpf = [](int64_t n) {
        int64_t best = 1;
        for (int64_t d = 2; d * d <= n; ++d) {
            while (n % d == 0) {
                best = d;
                n /= d;
            }
        }
        return n > 1 ? n : best;
    };
    int64_t sum = 0;
    for (int v = lo; v <= hi; ++v)
        sum += lpf(v);
    return sum;
}

// --------------------------------------------------------------------
// queens
// --------------------------------------------------------------------

std::string
queensSource(int n)
{
    return
        // `placed` is the list of column choices of earlier rows,
        // most recent first; `dist` is the row distance while
        // scanning it for column/diagonal conflicts.
        "(define (ok? col dist placed)"
        "  (if (null? placed) true"
        "      (if (= (car placed) col) false"
        "          (if (= (car placed) (+ col dist)) false"
        "              (if (= (car placed) (- col dist)) false"
        "                  (ok? col (+ dist 1) (cdr placed)))))))"
        "(define (count-q placed row n)"
        "  (if (= row n) 1 (try-col placed row n 0)))"
        "(define (try-col placed row n col)"
        "  (if (= col n) 0"
        "      (+ (if (ok? col 1 placed)"
        "             (future (count-q (cons col placed) (+ row 1) n))"
        "             0)"
        "         (try-col placed row n (+ col 1)))))"
        "(define (main) (count-q nil 0 " + std::to_string(n) + "))";
}

int64_t
queensExpected(int n)
{
    std::vector<int> placed;
    auto ok = [&](int col) {
        for (size_t i = 0; i < placed.size(); ++i) {
            int dist = int(i) + 1;
            int p = placed[placed.size() - 1 - i];
            if (p == col || p == col + dist || p == col - dist)
                return false;
        }
        return true;
    };
    int64_t count = 0;
    std::vector<int> stack;
    // Simple backtracking enumeration.
    std::function<void(int)> go = [&](int row) {
        if (row == n) {
            ++count;
            return;
        }
        for (int col = 0; col < n; ++col) {
            if (ok(col)) {
                placed.push_back(col);
                go(row + 1);
                placed.pop_back();
            }
        }
    };
    go(0);
    return count;
}

// --------------------------------------------------------------------
// speech
// --------------------------------------------------------------------

namespace
{

/** Deterministic synthetic edge weight (kept in fixnum range). */
int64_t
edgeWeight(int64_t l, int64_t i, int64_t j)
{
    return ((i * 31) + (j * 17) + (l * 7)) % 100;
}

} // namespace

std::string
speechSource(int layers, int width)
{
    return
        "(define (edge-w l i j)"
        "  (remainder (+ (* i 31) (* j 17) (* l 7)) 100))"
        // Best score of lattice node (l, j) over all predecessors.
        "(define (best-in prev l j i n best)"
        "  (if (= i n) best"
        "      (let ((s (+ (touch (vector-ref prev i)) (edge-w l i j))))"
        "        (best-in prev l j (+ i 1) n (if (> s best) s best)))))"
        "(define (node-score prev l j n)"
        "  (best-in prev l j 0 n -999999))"
        // One future per lattice node: the fine-grain parallelism the
        // paper's data-level discussion motivates.
        "(define (fill-layer prev cur l j n)"
        "  (if (= j n) 0"
        "      (begin"
        "        (vector-set! cur j (future (node-score prev l j n)))"
        "        (fill-layer prev cur l (+ j 1) n))))"
        "(define (max-in v i n best)"
        "  (if (= i n) best"
        "      (let ((s (touch (vector-ref v i))))"
        "        (max-in v (+ i 1) n (if (> s best) s best)))))"
        "(define (run-layers prev l nl n)"
        "  (if (= l nl) (max-in prev 0 n -999999)"
        "      (let ((cur (make-vector n 0)))"
        "        (begin (fill-layer prev cur l 0 n)"
        "               (run-layers cur (+ l 1) nl n)))))"
        "(define (init-layer v j n)"
        "  (if (= j n) 0"
        "      (begin (vector-set! v j (* j 3))"
        "             (init-layer v (+ j 1) n))))"
        "(define (main)"
        "  (let ((v0 (make-vector " + std::to_string(width) + " 0)))"
        "    (begin (init-layer v0 0 " + std::to_string(width) + ")"
        "           (run-layers v0 0 " + std::to_string(layers) + " " +
        std::to_string(width) + "))))";
}

int64_t
speechExpected(int layers, int width)
{
    std::vector<int64_t> prev(width);
    for (int j = 0; j < width; ++j)
        prev[j] = j * 3;
    for (int l = 0; l < layers; ++l) {
        std::vector<int64_t> cur(width);
        for (int j = 0; j < width; ++j) {
            int64_t best = -999999;
            for (int i = 0; i < width; ++i)
                best = std::max(best, prev[i] + edgeWeight(l, i, j));
            cur[j] = best;
        }
        prev = std::move(cur);
    }
    return *std::max_element(prev.begin(), prev.end());
}

// --------------------------------------------------------------------

Benchmark
makeFib(const SuiteSizes &s)
{
    return {"fib", fibSource(s.fibN), fibExpected(s.fibN)};
}

Benchmark
makeFactor(const SuiteSizes &s)
{
    return {"factor", factorSource(s.factorLo, s.factorHi),
            factorExpected(s.factorLo, s.factorHi)};
}

Benchmark
makeQueens(const SuiteSizes &s)
{
    return {"queens", queensSource(s.queensN),
            queensExpected(s.queensN)};
}

Benchmark
makeSpeech(const SuiteSizes &s)
{
    return {"speech", speechSource(s.speechLayers, s.speechWidth),
            speechExpected(s.speechLayers, s.speechWidth)};
}

} // namespace april::workloads

/**
 * @file
 * The paper's four Mul-T benchmarks (Section 7, Table 3):
 *
 *   fib     "the ubiquitous doubly recursive Fibonacci program with
 *           `future`s around each of its recursive calls"
 *   factor  "finds the largest prime factor of each number in a range
 *           of numbers and sums them up"
 *   queens  "finds all solutions to the n-queens chess problem"
 *   speech  "a modified Viterbi graph search algorithm used in a
 *           connected speech recognition system called SUMMIT"
 *
 * Each generator returns Mul-T source parameterized by problem size;
 * a matching C++ oracle computes the expected answer so simulator
 * runs are validated, not just timed. The speech lattice is synthetic
 * (the SUMMIT corpus is not available): a layered trellis whose edge
 * weights come from a deterministic hash, searched with the same
 * layer-by-layer max-propagation structure and per-node futures.
 */

#ifndef APRIL_WORKLOADS_WORKLOADS_HH
#define APRIL_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>

namespace april::workloads
{

/** Mul-T source for parallel fib(n) with futured recursive calls. */
std::string fibSource(int n);
/** Expected value of fib(n). */
int64_t fibExpected(int n);

/** Mul-T source: sum of largest prime factors over [lo, hi]. */
std::string factorSource(int lo, int hi);
int64_t factorExpected(int lo, int hi);

/** Mul-T source: number of n-queens solutions, futures per branch. */
std::string queensSource(int n);
int64_t queensExpected(int n);

/**
 * Mul-T source: Viterbi-style best-path score through a synthetic
 * layered lattice (@p layers x @p width), one future per node score.
 */
std::string speechSource(int layers, int width);
int64_t speechExpected(int layers, int width);

/** One named benchmark instance (source + oracle). */
struct Benchmark
{
    std::string name;
    std::string source;
    int64_t expected;
};

/** The Table 3 benchmark suite at the given problem sizes. */
struct SuiteSizes
{
    int fibN = 14;
    int factorLo = 1000;
    int factorHi = 1120;
    int queensN = 7;
    int speechLayers = 10;
    int speechWidth = 24;
};

/** Build all four benchmarks. */
Benchmark makeFib(const SuiteSizes &s);
Benchmark makeFactor(const SuiteSizes &s);
Benchmark makeQueens(const SuiteSizes &s);
Benchmark makeSpeech(const SuiteSizes &s);

} // namespace april::workloads

#endif // APRIL_WORKLOADS_WORKLOADS_HH

/**
 * @file
 * Full-system integration: Mul-T programs with futures running on the
 * complete ALEWIFE machine — APRIL cores, caches, directory
 * coherence, and the mesh network all engaged (the configuration of
 * Figure 4 with every simulator enabled).
 */

#include <gtest/gtest.h>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "workloads/workloads.hh"

namespace april
{
namespace
{

using namespace tagged;
using FM = mult::CompileOptions::FutureMode;

struct FullRig
{
    FullRig(const std::string &source, FM futures, int dim, int radix)
    {
        mult::CompileOptions copts;
        copts.futures = futures;
        Assembler as;
        rt::Runtime runtime;
        runtime.emit(as);
        mult::Compiler compiler(as, copts);
        compiler.compileSource(source);
        prog = as.finish();

        AlewifeParams p;
        p.network = {.dim = dim, .radix = radix};
        p.wordsPerNode = 1u << 20;
        // Small caches stress the protocol harder.
        p.controller.cache = {.lineWords = 4, .numLines = 512,
                              .assoc = 4};
        machine = std::make_unique<AlewifeMachine>(p, &prog);
    }

    Word
    run(uint64_t max_cycles = 80'000'000)
    {
        machine->run(max_cycles);
        if (!machine->halted()) {
            panic("ALEWIFE run did not finish; node0 at ",
                  prog.symbolAt(machine->proc(0).pc()));
        }
        return machine->console().back();
    }

    Program prog;
    std::unique_ptr<AlewifeMachine> machine;
};

TEST(AlewifeIntegration, SequentialProgramOnOneNodeMachine)
{
    FullRig rig("(define (fact n) (if (< n 2) 1 (* n (fact (- n 1)))))"
                "(define (main) (fact 10))",
                FM::Erase, 1, 2);
    EXPECT_EQ(rig.run(), fixnum(3628800));
}

TEST(AlewifeIntegration, CacheHitsDominateSequentialRuns)
{
    FullRig rig("(define (sum n acc)"
                "  (if (= n 0) acc (sum (- n 1) (+ acc n))))"
                "(define (main) (sum 200 0))",
                FM::Erase, 1, 2);
    EXPECT_EQ(rig.run(), fixnum(200 * 201 / 2));
    auto &cache = rig.machine->controller(0).cacheRef();
    EXPECT_GT(cache.statHits.value(), 10 * cache.statMisses.value())
        << "the working set must live in the cache";
}

TEST(AlewifeIntegration, EagerFibOnFourNodes)
{
    FullRig rig(workloads::fibSource(10), FM::Eager, 2, 2);
    EXPECT_EQ(rig.run(), fixnum(55));
    // Real coherence traffic flowed.
    EXPECT_GT(rig.machine->network().statPackets.value(), 100.0);
}

TEST(AlewifeIntegration, LazyFibOnFourNodes)
{
    FullRig rig(workloads::fibSource(10), FM::Lazy, 2, 2);
    EXPECT_EQ(rig.run(), fixnum(55));
}

TEST(AlewifeIntegration, RemoteMissesForceContextSwitches)
{
    // Shared data (a vector homed on node 0) read by tasks running on
    // other nodes: those vector-refs are trap-on-miss flavors, so the
    // controller forces context switches while lines migrate.
    const std::string src =
        "(define (sum-range v i n acc)"
        "  (if (= i n) acc"
        "      (sum-range v (+ i 1) n (+ acc (vector-ref v i)))))"
        "(define (fill v i n)"
        "  (if (= i n) 0"
        "      (begin (vector-set! v i i) (fill v (+ i 1) n))))"
        // Spawn 16 chunk-summing futures up front so idle nodes can
        // steal work whose data is homed on node 0.
        "(define (spawn-all v r i)"
        "  (if (= i 16) 0"
        "      (begin"
        "        (vector-set! r i (future (sum-range v (* i 4)"
        "                                            (+ (* i 4) 4) 0)))"
        "        (spawn-all v r (+ i 1)))))"
        "(define (join r i acc)"
        "  (if (= i 16) acc"
        "      (join r (+ i 1) (+ acc (touch (vector-ref r i))))))"
        "(define (main)"
        "  (let ((v (make-vector 64 0)) (r (make-vector 16 0)))"
        "    (begin (fill v 0 64)"
        "           (spawn-all v r 0)"
        "           (join r 0 0))))";
    FullRig rig(src, FM::Eager, 2, 2);
    int64_t expect = 0;
    for (int i = 0; i < 64; ++i)
        expect += i;
    EXPECT_EQ(rig.run(), fixnum(int32_t(expect)));
    double switches = 0;
    for (uint32_t n = 0; n < rig.machine->numNodes(); ++n) {
        switches += rig.machine->proc(n)
                        .statTraps[size_t(TrapKind::RemoteMiss)]
                        .value();
    }
    EXPECT_GT(switches, 0.0)
        << "remote requests must trigger the switch trap";
}

TEST(AlewifeIntegration, QueensOnFourNodes)
{
    FullRig rig(workloads::queensSource(5), FM::Eager, 2, 2);
    EXPECT_EQ(rig.run(), fixnum(workloads::queensExpected(5)));
}

TEST(AlewifeIntegration, SpeedupOverOneNode)
{
    // The whole point: multithreading + caches tolerate real memory
    // latency. A 4-node machine must beat a (2-node minimum-mesh)
    // machine on parallel fib despite coherence overheads. Compare
    // against a machine where only node 0 ever gets the root work.
    FullRig one(workloads::fibSource(13), FM::Lazy, 1, 2);
    Word r1 = one.run();
    uint64_t c1 = one.machine->cycle();

    FullRig four(workloads::fibSource(13), FM::Lazy, 2, 2);
    Word r4 = four.run();
    uint64_t c4 = four.machine->cycle();

    EXPECT_EQ(r1, r4);
    EXPECT_LT(double(c4), 0.9 * double(c1));
}

} // namespace
} // namespace april

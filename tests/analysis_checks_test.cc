/**
 * @file
 * Mutation-style tests for the static check suite: every check gets a
 * positive case (a program seeded with exactly that bug, which must be
 * flagged) and a negative case (the repaired program, which must be
 * clean of that check). CFG structure (delay-slot pairing, call
 * fall-through havoc) is exercised along the way.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.hh"
#include "analysis/checks.hh"
#include "workloads/handwritten.hh"

namespace april::analysis
{
namespace
{

/** Analyze with a single "main" root; all handlers installed. */
AnalysisResult
analyzeMain(Assembler &as, uint64_t defined_regs = 0,
            bool install_handlers = true)
{
    Program prog = as.finish();
    AnalysisOptions opts;
    AnalysisOptions::Root root;
    root.pc = prog.entry("main");
    root.name = "main";
    root.definedRegs = defined_regs;
    opts.roots.push_back(root);
    if (install_handlers)
        opts.installAllHandlers();
    return analyzeProgram(prog, opts);
}

bool
has(const AnalysisResult &res, CheckKind kind)
{
    return std::any_of(res.findings.begin(), res.findings.end(),
                       [&](const Finding &f) { return f.kind == kind; });
}

uint32_t
countKind(const AnalysisResult &res, CheckKind kind)
{
    return uint32_t(std::count_if(
        res.findings.begin(), res.findings.end(),
        [&](const Finding &f) { return f.kind == kind; }));
}

TEST(Cfg, BranchAndSlotShareABlockAndEdgesLeaveAfterTheSlot)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 0);              // 0
    as.cmpiR(1, 3);             // 1
    as.jRaw(Cond::LT, "main");  // 2: branch...
    as.nop();                   // 3: ...and its delay slot
    as.halt();                  // 4
    Program prog = as.finish();

    Cfg cfg = buildCfg(prog, {prog.entry("main")});
    ASSERT_TRUE(cfg.defects.empty());
    // Block [0,4) closes *after* the slot; both out-edges recorded.
    const Block &b = cfg.blocks[cfg.blockAt[2]];
    EXPECT_EQ(b.first, 0u);
    EXPECT_EQ(b.end, 4u);
    EXPECT_EQ(cfg.blockAt[3], cfg.blockAt[2]);
    EXPECT_EQ(b.succs.size(), 2u);
}

TEST(Cfg, NonLinkingJmplTerminatesLinkingJmplFallsThrough)
{
    Assembler as;
    as.bind("main");
    as.call("fn");              // JMPL ra: falls through after slot
    as.halt();
    as.bind("fn");
    as.ret();                   // JMPL r0: terminator
    Program prog = as.finish();

    Cfg cfg = buildCfg(prog, {prog.entry("main")});
    const Block &callb = cfg.blocks[cfg.blockAt[0]];
    EXPECT_EQ(callb.succs.size(), 2u);
    EXPECT_GE(callb.callFallthrough, 0);
    const Block &retb = cfg.blocks[cfg.blockAt[prog.entry("fn")]];
    EXPECT_TRUE(retb.succs.empty());
}

TEST(UninitRead, FlagsAReadOfANeverWrittenRegister)
{
    Assembler as;
    as.bind("main");
    as.addR(1, 2, 3);           // r2, r3 never defined
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::UninitRead));
    EXPECT_FALSE(res.clean());
}

TEST(UninitRead, CleanWhenAllSourcesAreDefinedOnEveryPath)
{
    Assembler as;
    as.bind("main");
    as.movi(2, 7);
    as.movi(3, 8);
    as.addR(1, 2, 3);
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_FALSE(has(res, CheckKind::UninitRead));
    EXPECT_TRUE(res.clean());
}

TEST(UninitRead, AMeriblyDefinedRegisterStillCounts)
{
    // r2 is defined on only one of two joining paths: must-defined
    // analysis has to flag the read after the join.
    Assembler as;
    as.bind("main");
    as.movi(1, 0);
    as.cmpiR(1, 0);
    as.jRaw(Cond::EQ, "join");
    as.nop();
    as.movi(2, 5);              // only the fall-through defines r2
    as.bind("join");
    as.addR(3, 2, 2);
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::UninitRead));
}

TEST(UninitRead, RootDefinedRegsAndCallHavocAreHonored)
{
    Assembler as;
    as.bind("main");
    as.addR(1, 2, 2);           // r2 from definedRegs: fine
    as.call("fn");
    as.addR(3, 4, 4);           // r4 defined by callee havoc: fine
    as.halt();
    as.bind("fn");
    as.ret();
    AnalysisResult res = analyzeMain(as, uint64_t(1) << 2);
    EXPECT_FALSE(has(res, CheckKind::UninitRead));
}

TEST(DelaySlotClobber, FlagsASlotWriteTheTargetReads)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 0);
    as.movi(2, 5);
    as.cmpiR(1, 3);
    as.jRaw(Cond::LT, "target");
    as.addiR(2, 2, 1);          // slot writes r2 on BOTH paths
    as.halt();
    as.bind("target");
    as.addR(3, 2, 2);           // target reads r2 first
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::DelaySlotClobber));
}

TEST(DelaySlotClobber, CleanWhenTheTargetRedefinesFirstOrIgnoresIt)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 0);
    as.movi(2, 5);
    as.cmpiR(1, 3);
    as.jRaw(Cond::LT, "target");
    as.addiR(2, 2, 1);
    as.halt();
    as.bind("target");
    as.movi(2, 0);              // redefines r2 before any read
    as.addR(3, 2, 2);
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_FALSE(has(res, CheckKind::DelaySlotClobber));
}

TEST(StaleFLatch, FlagsJfullWithNoReachingFeAccess)
{
    Assembler as;
    as.bind("main");
    as.jRaw(Cond::FULL, "main");    // F latch never set
    as.nop();
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::StaleFLatch));
}

TEST(StaleFLatch, CleanWhenANonTrappingAccessDominatesTheBranch)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Other));
    as.bind("spin");
    as.ldnw(2, 1, 0);           // latches F every iteration
    as.jRaw(Cond::EMPTY, "spin");
    as.nop();
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_FALSE(has(res, CheckKind::StaleFLatch));
}

TEST(StaleFLatch, TrappingFlavorsDoNotSatisfyTheBranch)
{
    // ldtw vectors on empty instead of reporting through F; per the
    // paper's Table 2 split, explicit-control branching wants the
    // non-trapping flavors.
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Other));
    as.ldtw(2, 1, 0);
    as.jRaw(Cond::FULL, "main");
    as.nop();
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::StaleFLatch));
}

TEST(MissingHandler, FlagsTrappingFlavorsAndSoftTrapsWithoutVectors)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Other));
    as.ldtw(2, 1, 0);           // can raise FeEmpty
    as.trap(3);                 // raises SoftTrap3
    as.halt();
    AnalysisResult res = analyzeMain(as, 0, /*install=*/false);
    EXPECT_EQ(countKind(res, CheckKind::MissingHandler), 2u);
    EXPECT_FALSE(res.clean());
}

TEST(MissingHandler, CleanOnceTheVectorsAreInstalled)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Other));
    as.ldtw(2, 1, 0);
    as.trap(3);
    as.halt();
    AnalysisResult res = analyzeMain(as, 0, /*install=*/true);
    EXPECT_FALSE(has(res, CheckKind::MissingHandler));
}

TEST(StrictFutureUse, WarnsWithoutATouchHandlerInfoWithOne)
{
    auto build = [] {
        Assembler as;
        as.bind("main");
        as.movi(1, tagged::ptr(64, Tag::Future));
        as.add(2, 1, 1);        // strict op on a possible future
        as.halt();
        return as;
    };
    Assembler without = build();
    AnalysisResult res = analyzeMain(without, 0, /*install=*/false);
    auto it = std::find_if(res.findings.begin(), res.findings.end(),
                           [](const Finding &f) {
                               return f.kind == CheckKind::StrictFutureUse;
                           });
    ASSERT_NE(it, res.findings.end());
    EXPECT_EQ(it->sev, Severity::Warning);

    Assembler with = build();
    res = analyzeMain(with, 0, /*install=*/true);
    it = std::find_if(res.findings.begin(), res.findings.end(),
                      [](const Finding &f) {
                          return f.kind == CheckKind::StrictFutureUse;
                      });
    ASSERT_NE(it, res.findings.end());
    EXPECT_EQ(it->sev, Severity::Info);
}

TEST(StrictFutureUse, AStrictTouchResolvesForLaterUses)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Future));
    as.add(2, 1, 1);            // the touch: resolves r1 in place
    as.addR(3, 1, 1);           // raw use afterwards: no new finding
    as.add(4, 1, 1);            // strict use afterwards: resolved
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_EQ(countKind(res, CheckKind::StrictFutureUse), 1u);
}

TEST(StrictFutureUse, RawOpsNeverFire)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Future));
    as.addR(2, 1, 1);
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_FALSE(has(res, CheckKind::StrictFutureUse));
}

TEST(Unreachable, GroupsDeadRunsBehindAnUnconditionalBranch)
{
    Assembler as;
    as.bind("main");
    as.jRaw(Cond::AL, "end");
    as.nop();
    as.movi(1, 1);              // dead
    as.movi(2, 2);              // dead
    as.bind("end");
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_EQ(countKind(res, CheckKind::Unreachable), 1u);
}

TEST(Unreachable, CleanOnAFullyConnectedProgram)
{
    Assembler as;
    as.bind("main");
    as.movi(1, 1);
    as.jRaw(Cond::AL, "end");
    as.nop();
    as.bind("end");
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_FALSE(has(res, CheckKind::Unreachable));
}

TEST(FramePointer, ConflictingRotationsAtARettWarn)
{
    Assembler as;
    as.bind("main");
    as.cmpiR(1, 0);
    as.jRaw(Cond::EQ, "out");
    as.nop();
    as.incfp();                 // one path rotates...
    as.bind("out");
    as.rettRetry();             // ...the other does not
    Program prog = as.finish();

    AnalysisOptions opts;
    AnalysisOptions::Root root;
    root.pc = prog.entry("main");
    root.name = "main";
    root.allRegsDefined = true;
    root.handler = true;
    opts.roots.push_back(root);
    opts.installAllHandlers();
    AnalysisResult res = analyzeProgram(prog, opts);
    EXPECT_TRUE(has(res, CheckKind::FramePointer));
}

TEST(FramePointer, BalancedHandlerIsCleanAndStfpIsInfoOnly)
{
    Assembler as;
    as.bind("main");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();             // consistent single-path rotation
    Program prog = as.finish();

    AnalysisOptions opts;
    AnalysisOptions::Root root;
    root.pc = prog.entry("main");
    root.name = "main";
    root.allRegsDefined = true;
    root.handler = true;
    opts.roots.push_back(root);
    opts.installAllHandlers();
    AnalysisResult res = analyzeProgram(prog, opts);
    EXPECT_TRUE(res.clean());

    Assembler as2;
    as2.bind("main");
    as2.stfp(reg::t(1));        // rotation becomes untrackable
    as2.rettRetry();
    Program prog2 = as2.finish();
    AnalysisOptions opts2;
    root.pc = prog2.entry("main");
    opts2.roots.push_back(root);
    opts2.installAllHandlers();
    AnalysisResult res2 = analyzeProgram(prog2, opts2);
    auto it = std::find_if(res2.findings.begin(), res2.findings.end(),
                           [](const Finding &f) {
                               return f.kind == CheckKind::FramePointer;
                           });
    ASSERT_NE(it, res2.findings.end());
    EXPECT_EQ(it->sev, Severity::Info);
    EXPECT_TRUE(res2.clean());  // Info does not gate
}

TEST(MalformedCfg, BranchIntoADelaySlotIsAnError)
{
    Assembler as;
    as.bind("main");
    as.push({.op = Opcode::J, .cond = Cond::AL, .imm = 1});  // -> slot!
    as.nop();                   // pc 1: the branch's own slot
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::MalformedCfg));
    EXPECT_FALSE(res.clean());
}

TEST(MalformedCfg, BranchInsideADelaySlotIsAnError)
{
    Assembler as;
    as.bind("main");
    as.push({.op = Opcode::J, .cond = Cond::AL, .imm = 4});
    as.push({.op = Opcode::J, .cond = Cond::AL, .imm = 4});  // in slot
    as.nop();
    as.nop();
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(has(res, CheckKind::MalformedCfg));
}

TEST(Severity, CleanAndCountRespectTheGate)
{
    Assembler as;
    as.bind("main");
    as.movi(1, tagged::ptr(64, Tag::Future));
    as.add(2, 1, 1);            // Info (handlers installed)
    as.halt();
    AnalysisResult res = analyzeMain(as);
    EXPECT_TRUE(res.clean(Severity::Warning));
    EXPECT_FALSE(res.clean(Severity::Info));
    EXPECT_EQ(res.count(Severity::Info), 1u);
}

/** Lint @p dh under the protocol-handler profile (roots are exactly
 *  the trap-vector entry symbols — mirrors april-lint --workloads). */
AnalysisResult
analyzeDirHandlers(const workloads::DirHandlers &dh)
{
    AnalysisOptions opts;
    for (const std::string &name : dh.handlers) {
        AnalysisOptions::Root r;
        r.pc = dh.prog.entry(name);
        r.name = name;
        r.allRegsDefined = true;
        r.handler = true;
        r.protocolHandler = true;
        opts.roots.push_back(std::move(r));
    }
    opts.installAllHandlers();
    return analyzeProgram(dh.prog, opts);
}

TEST(ProtocolHandler, ShippedSpillAndWalkHandlersAreClean)
{
    workloads::DirHandlers dh = workloads::buildDirHandlers();
    AnalysisResult res = analyzeDirHandlers(dh);
    EXPECT_FALSE(has(res, CheckKind::ProtocolHandler))
        << formatFindings(res, dh.prog);
    EXPECT_TRUE(res.clean(Severity::Warning))
        << formatFindings(res, dh.prog);
}

TEST(ProtocolHandler, PlantedFramePointerLeakIsAnError)
{
    // The empty-table fast path of coh$walk RETTs without the
    // balancing DECFP: the interrupted context would resume one
    // register frame off.
    workloads::DirHandlers dh =
        workloads::buildDirHandlers(/*frameLeak=*/true);
    AnalysisResult res = analyzeDirHandlers(dh);
    ASSERT_TRUE(has(res, CheckKind::ProtocolHandler))
        << formatFindings(res, dh.prog);
    auto it = std::find_if(res.findings.begin(), res.findings.end(),
                           [](const Finding &f) {
                               return f.kind ==
                                      CheckKind::ProtocolHandler;
                           });
    EXPECT_EQ(it->sev, Severity::Error);
    EXPECT_NE(it->message.find("coh$walk"), std::string::npos);
    EXPECT_FALSE(res.clean());
    // The leak is on one path only; the clean coh$spill handler and
    // coh$walk's main loop must not be flagged.
    EXPECT_EQ(countKind(res, CheckKind::ProtocolHandler), 1u);
}

TEST(Format, FindingsRenderWithSymbolAndCheckName)
{
    Assembler as;
    as.bind("main");
    as.addR(1, 2, 3);
    as.halt();
    Program prog = as.finish();
    AnalysisOptions opts;
    opts.roots.push_back({prog.entry("main"), "main", 0, false, false});
    opts.installAllHandlers();
    AnalysisResult res = analyzeProgram(prog, opts);
    std::string text = formatFindings(res, prog);
    EXPECT_NE(text.find("uninit-read"), std::string::npos);
    EXPECT_NE(text.find("main"), std::string::npos);
}

} // namespace
} // namespace april::analysis

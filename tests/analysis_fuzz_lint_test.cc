/**
 * @file
 * Generated programs must be lint-clean by construction: every sampled
 * case (and every shrink of one) analyzes with zero Warning-or-worse
 * findings under the fuzz profile. This is the property the CI corpus
 * gate relies on — if the generator ever emits a program the static
 * checks object to, this test localizes the seed.
 */

#include <gtest/gtest.h>

#include "analysis/checks.hh"
#include "common/random.hh"
#include "fuzz/generator.hh"

namespace april::fuzz
{
namespace
{

void
expectClean(const FuzzCase &c, const std::string &what)
{
    Program prog = buildProgram(c);
    analysis::AnalysisResult res =
        analysis::analyzeProgram(prog, lintOptions(prog));
    EXPECT_TRUE(res.clean(analysis::Severity::Warning))
        << what << " is not lint-clean:\n"
        << analysis::formatFindings(res, prog);
}

TEST(FuzzLint, SampledCasesAreCleanByConstruction)
{
    for (uint64_t seed = 1; seed <= 24; ++seed)
        expectClean(sampleCase(seed), "seed " + std::to_string(seed));
}

TEST(FuzzLint, ShrunkCasesStayClean)
{
    // The shrinker deletes body items one at a time (see
    // differential.cc withoutItem); cleanliness must be preserved so
    // a shrunk reproducer still passes the corpus gate.
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        FuzzCase c = sampleCase(seed);
        Rng rng(seed * 7919 + 1);
        for (int round = 0; round < 8; ++round) {
            uint32_t node = uint32_t(rng.next() % c.numNodes());
            auto &body = c.bodies[node];
            if (body.empty())
                continue;
            size_t index = size_t(rng.next() % body.size());
            c.dropped.emplace_back(node, body[index].origIndex);
            body.erase(body.begin() + long(index));
        }
        expectClean(c, "shrunk seed " + std::to_string(seed));
    }
}

TEST(FuzzLint, LintOptionsMatchTheBootContract)
{
    Program prog = buildProgram(sampleCase(3));
    analysis::AnalysisOptions opts = lintOptions(prog);
    // Entry plus the five fz$* handler/yield roots.
    ASSERT_GE(opts.roots.size(), 6u);
    EXPECT_EQ(opts.roots[0].pc, prog.entry("fz$main"));
    EXPECT_EQ(opts.roots[0].definedRegs, 0u);
    bool anyHandler = false;
    for (const auto &r : opts.roots)
        anyHandler |= r.handler;
    EXPECT_TRUE(anyHandler);
    for (bool b : opts.installed)
        EXPECT_TRUE(b);
}

} // namespace
} // namespace april::fuzz

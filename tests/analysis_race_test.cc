/**
 * @file
 * Dynamic race detector on the full ALEWIFE machine.
 *
 * Positive cases: a plain-load/store shared counter with no
 * synchronization must be flagged, and the stall-stress workload's
 * final unlocked spin-read of the locked counter is a genuine
 * read/write race Eraser-style checking reports. Negative cases: the
 * fine-grain f/e pipeline and a future-parallel Mul-T workload run
 * with zero reports. The detector must be purely observational —
 * identical cycle counts and console output with it on or off — and
 * its cycle-stamped reports must be identical under cycle-skipping.
 */

#include <gtest/gtest.h>

#include "machine/alewife_machine.hh"
#include "mult/compiler.hh"
#include "runtime/runtime.hh"
#include "workloads/handwritten.hh"
#include "workloads/workloads.hh"

#include "test_support/machine_workloads.hh"

namespace april
{
namespace
{

using tagged::fixnum;
using tagged::ptr;

constexpr Addr kCounter = 400;      ///< plain shared counter (racy)
constexpr Addr kFlag = 404;         ///< f/e done flag (separate line)
constexpr int kIters = 40;

/**
 * Both nodes hammer kCounter with plain ldnw/stnw increments — no
 * lock, no f/e discipline. Node 1 then sets the done flag full; node 0
 * waits on the flag and stops the machine.
 */
Program
buildRacyCounter()
{
    Assembler as;
    as.bind("worker");
    as.movi(1, ptr(kCounter, Tag::Other));
    as.movi(3, 0);
    as.bind("loop");
    as.ldnw(4, 1, 0);
    as.addiR(4, 4, 1);
    as.stnw(4, 1, 0);
    as.addiR(3, 3, 1);
    as.cmpiR(3, kIters);
    as.jRaw(Cond::LT, "loop");
    as.nop();
    as.movi(2, ptr(kFlag, Tag::Other));
    as.ldio(6, int(IoReg::NodeId));
    as.cmpiR(6, 0);
    as.jRaw(Cond::NE, "signal");
    as.nop();
    as.bind("wait");
    as.ldnw(5, 2, 0);
    as.jRaw(Cond::EMPTY, "wait");
    as.nop();
    as.stio(int(IoReg::MachineHalt), reg::r0);
    as.bind("signal");
    as.stfnw(reg::r0, 2, 0);            // set full: node 1 is done
    as.halt();

    as.bind("cswitch");
    as.rdpsr(reg::t(0));
    as.incfp();
    as.nop();
    as.wrpsr(reg::t(0));
    as.nop();
    as.rettRetry();
    as.bind("fyield");
    as.moviLabel(reg::t(1), "fyield");
    as.wrspec(Spec::TrapPC, reg::t(1));
    as.addiR(reg::t(1), reg::t(1), 1);
    as.wrspec(Spec::TrapNPC, reg::t(1));
    as.rdpsr(reg::t(0));
    as.incfp();
    as.wrpsr(reg::t(0));
    as.rettRetry();
    return as.finish();
}

void
bootRaw(AlewifeMachine &m, const Program &prog)
{
    for (uint32_t n = 0; n < m.numNodes(); ++n) {
        Processor &proc = m.proc(n);
        proc.reset(prog.entry("worker"));
        proc.setTrapVector(TrapKind::RemoteMiss, prog.entry("cswitch"));
        proc.setTrapVector(TrapKind::FeEmpty, prog.entry("cswitch"));
        for (uint32_t f = 1; f < proc.numFrames(); ++f) {
            proc.frame(f).trapPC = prog.entry("fyield");
            proc.frame(f).trapNPC = prog.entry("fyield") + 1;
            proc.frame(f).trapRegs[0] = psr::ET;
        }
    }
}

struct RacyOut
{
    testutil::MachineOut machine;
    uint64_t races = 0;
    std::string reports;
};

RacyOut
runRacyCounter(bool detect, bool skip)
{
    Program prog = buildRacyCounter();
    AlewifeParams p;
    p.network = {.dim = 1, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.cycleSkip = skip;
    p.detectRaces = detect;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    bootRaw(m, prog);
    m.memory().setFull(kFlag, false);
    m.run(5'000'000);

    RacyOut out;
    out.machine = testutil::finishMachine(m);
    if (m.raceDetector()) {
        out.races = uint64_t(m.raceDetector()->statRaces.value());
        out.reports = m.raceDetector()->formatReports();
    }
    return out;
}

TEST(RaceDetector, FlagsThePlainSharedCounter)
{
    RacyOut out = runRacyCounter(true, true);
    ASSERT_TRUE(out.machine.halted);
    EXPECT_GE(out.races, 1u) << "unsynchronized shared counter missed";

    // Every report is about the counter, from the second node to
    // arrive; the f/e done flag must stay exempt.
    Program prog = buildRacyCounter();
    AlewifeParams p;
    p.network = {.dim = 1, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.detectRaces = true;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    bootRaw(m, prog);
    m.memory().setFull(kFlag, false);
    m.run(5'000'000);
    ASSERT_NE(m.raceDetector(), nullptr);
    const auto &reports = m.raceDetector()->reports();
    ASSERT_FALSE(reports.empty());
    for (const auto &r : reports) {
        EXPECT_EQ(r.addr, kCounter);
        EXPECT_NE(r.node, r.firstNode);
        EXPECT_GT(r.cycle, 0u);
    }
    EXPECT_GT(m.raceDetector()->statWordsTracked.value(), 0.0);
    EXPECT_GT(m.raceDetector()->statSyncWords.value(), 0.0);
    EXPECT_FALSE(m.raceDetector()->formatReports().empty());
}

TEST(RaceDetector, DetectorIsPurelyObservational)
{
    RacyOut on = runRacyCounter(true, true);
    RacyOut off = runRacyCounter(false, true);
    ASSERT_TRUE(on.machine.halted);
    ASSERT_TRUE(off.machine.halted);
    EXPECT_EQ(on.machine.cycles, off.machine.cycles);
    EXPECT_EQ(on.machine.console, off.machine.console);
}

TEST(RaceDetector, ReportsAreIdenticalUnderCycleSkip)
{
    RacyOut skip = runRacyCounter(true, true);
    RacyOut tick = runRacyCounter(true, false);
    ASSERT_TRUE(skip.machine.halted);
    ASSERT_TRUE(tick.machine.halted);
    EXPECT_EQ(skip.machine.cycles, tick.machine.cycles);
    EXPECT_EQ(skip.machine.console, tick.machine.console);
    EXPECT_EQ(skip.races, tick.races);
    EXPECT_EQ(skip.reports, tick.reports) << "reports are cycle-stamped: "
                                             "skipping must be exact";
}

TEST(RaceDetector, FineGrainSyncPipelineIsRaceFree)
{
    workloads::FineGrainSync w = workloads::buildFineGrainSync();
    AlewifeParams p;
    p.network = {.dim = 1, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.detectRaces = true;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &w.prog);
    for (int i = 0; i < w.items; ++i)
        m.memory().setFull(w.buf + Addr(i), false);
    m.run(10'000'000);

    ASSERT_TRUE(m.halted());
    ASSERT_FALSE(m.console().empty());
    EXPECT_EQ(m.console().back(),
              Word(fixnum(int32_t(w.expectedSum))));
    ASSERT_NE(m.raceDetector(), nullptr);
    EXPECT_EQ(m.raceDetector()->statRaces.value(), 0.0)
        << m.raceDetector()->formatReports();
    // Every buffer handoff went through f/e discipline.
    EXPECT_GE(m.raceDetector()->statSyncWords.value(), double(w.items));
}

TEST(RaceDetector, StallStressFlagsOnlyTheUnlockedSpinRead)
{
    // The workload locks every counter *write*, but node 0's final
    // wait loop polls the counter without the lock — a real (benign)
    // read/write race Eraser reports; the lock cell itself is f/e
    // traffic and stays exempt.
    Program prog = testutil::buildStallStress(4);
    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 16;
    p.bootRuntime = false;
    p.detectRaces = true;
    p.controller.cache = {.lineWords = 4, .numLines = 64, .assoc = 2};
    AlewifeMachine m(p, &prog);
    testutil::bootStallStress(m, prog);
    m.run(20'000'000);

    ASSERT_TRUE(m.halted());
    ASSERT_NE(m.raceDetector(), nullptr);
    const auto &reports = m.raceDetector()->reports();
    ASSERT_GE(reports.size(), 1u)
        << "the unlocked wait-loop read must be flagged";
    for (const auto &r : reports)
        EXPECT_EQ(r.addr, testutil::kStressCount)
            << m.raceDetector()->formatReports();
}

TEST(RaceDetector, FuturesWorkloadIsRaceFree)
{
    mult::CompileOptions copts;
    copts.futures = mult::CompileOptions::FutureMode::Eager;
    Assembler as;
    rt::Runtime runtime;
    runtime.emit(as);
    mult::Compiler compiler(as, copts);
    compiler.compileSource(workloads::fibSource(9));
    Program prog = as.finish();

    AlewifeParams p;
    p.network = {.dim = 2, .radix = 2};
    p.wordsPerNode = 1u << 20;
    p.detectRaces = true;
    p.controller.cache = {.lineWords = 4, .numLines = 512, .assoc = 4};
    AlewifeMachine m(p, &prog);
    m.run(80'000'000);

    ASSERT_TRUE(m.halted());
    ASSERT_FALSE(m.console().empty());
    EXPECT_EQ(m.console().back(), Word(fixnum(34)));
    ASSERT_NE(m.raceDetector(), nullptr);
    EXPECT_EQ(m.raceDetector()->statRaces.value(), 0.0)
        << "future/steal traffic misclassified as races:\n"
        << m.raceDetector()->formatReports();
}

} // namespace
} // namespace april

/**
 * @file
 * Disassembler <-> assembler round trip: every corpus seed program is
 * rendered with Program::listing(), re-assembled with assembleText(),
 * and the two listings must digest identically. Also covers the text
 * assembler's diagnostics (duplicate labels, undefined references,
 * unknown mnemonics, trailing junk) with line numbers.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/digest.hh"
#include "fuzz/generator.hh"
#include "isa/asm_text.hh"

namespace april
{
namespace
{

/** listing -> assembleText -> listing must be a fixed point. */
void
expectRoundTrip(const Program &prog, const std::string &what)
{
    std::string text = prog.listing();
    Program back;
    std::vector<AsmTextDiagnostic> diags;
    bool ok = assembleText(text, back, diags);
    std::ostringstream why;
    for (const AsmTextDiagnostic &d : diags)
        why << "  line " << d.line << ": " << d.message << "\n";
    ASSERT_TRUE(ok) << what << " listing failed to re-assemble:\n"
                    << why.str();
    EXPECT_EQ(back.size(), prog.size()) << what;
    EXPECT_EQ(digestString(back.listing()), digestString(text))
        << what << " round-trip drifted:\n--- original\n" << text
        << "--- reassembled\n" << back.listing();
}

TEST(RoundTrip, EveryCorpusSeedSurvives)
{
    namespace fs = std::filesystem;
    uint32_t seen = 0;
    for (const fs::directory_entry &e :
         fs::directory_iterator(APRIL_CORPUS_DIR)) {
        if (e.path().extension() != ".april")
            continue;
        std::ifstream in(e.path());
        ASSERT_TRUE(in) << e.path();
        std::ostringstream os;
        os << in.rdbuf();

        fuzz::FuzzCase c;
        std::string err = fuzz::parseCase(os.str(), c);
        ASSERT_EQ(err, "") << e.path();
        expectRoundTrip(fuzz::buildProgram(c), e.path().filename());
        ++seen;
    }
    EXPECT_GE(seen, 6u);    // the checked-in corpus
}

TEST(RoundTrip, FreshlySampledCasesSurvive)
{
    // Wider flavor coverage than the checked-in corpus alone.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        fuzz::FuzzCase c = fuzz::sampleCase(seed);
        expectRoundTrip(fuzz::buildProgram(c),
                        "seed " + std::to_string(seed));
    }
}

TEST(RoundTrip, HandToolingSyntaxVariants)
{
    // Symbolic targets, comments, `<pc>:` prefixes, .raw suffixes.
    std::string text =
        "main:\n"
        "  0:\tmovi r1, 42 ; a comment\n"
        "  sub.raw r0, r1, 42\n"
        "  jeq done\n"
        "  nop\n"
        "  ldenw r2, [r1+8]\n"
        "  stfnw [r1+8], r2\n"
        "done:\n"
        "  halt\n";
    Program prog;
    std::vector<AsmTextDiagnostic> diags;
    ASSERT_TRUE(assembleText(text, prog, diags));
    EXPECT_EQ(prog.entry("done"), 6u);
    EXPECT_EQ(prog.at(0).op, Opcode::MOVI);
    EXPECT_EQ(prog.at(2).op, Opcode::J);
    EXPECT_EQ(prog.at(2).imm, 6);
    EXPECT_TRUE(prog.at(4).feModify);
    EXPECT_EQ(prog.at(4).miss, MissPolicy::Wait);
    expectRoundTrip(prog, "hand-written");
}

TEST(Diagnostics, DuplicateLabelReportsBothLines)
{
    std::string text =
        "main:\n"
        "  nop\n"
        "main:\n"
        "  halt\n";
    Program prog;
    std::vector<AsmTextDiagnostic> diags;
    EXPECT_FALSE(assembleText(text, prog, diags));
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 3u);
    EXPECT_NE(diags[0].message.find("main"), std::string::npos);
}

TEST(Diagnostics, UndefinedLabelIsReported)
{
    std::string text =
        "main:\n"
        "  j nowhere\n"
        "  nop\n";
    Program prog;
    std::vector<AsmTextDiagnostic> diags;
    EXPECT_FALSE(assembleText(text, prog, diags));
    ASSERT_FALSE(diags.empty());
    EXPECT_NE(diags[0].message.find("nowhere"), std::string::npos);
}

TEST(Diagnostics, UnknownMnemonicAndTrailingJunkCarryLineNumbers)
{
    std::string text =
        "main:\n"
        "  frobnicate r1, r2\n"
        "  nop r9\n"
        "  halt\n";
    Program prog;
    std::vector<AsmTextDiagnostic> diags;
    EXPECT_FALSE(assembleText(text, prog, diags));
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].line, 2u);
    EXPECT_EQ(diags[1].line, 3u);
}

TEST(Diagnostics, ParseContinuesPastErrorsToFindAllProblems)
{
    std::string text =
        "  bogus1\n"
        "  nop\n"
        "  bogus2\n";
    Program prog;
    std::vector<AsmTextDiagnostic> diags;
    EXPECT_FALSE(assembleText(text, prog, diags));
    EXPECT_EQ(diags.size(), 2u);
    EXPECT_EQ(prog.size(), 1u);     // the good nop still assembled
}

} // namespace
} // namespace april

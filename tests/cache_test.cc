/** @file Unit tests for the set-associative write-back cache. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/logging.hh"

namespace april::cache
{
namespace
{

CacheParams
tiny()
{
    return {.lineWords = 4, .numLines = 8, .assoc = 2};
}

TEST(Cache, AddressDecomposition)
{
    Cache c(tiny());
    EXPECT_EQ(c.lineOf(0), 0u);
    EXPECT_EQ(c.lineOf(7), 1u);
    EXPECT_EQ(c.offsetOf(7), 3u);
}

TEST(Cache, MissThenHit)
{
    Cache c(tiny());
    EXPECT_EQ(c.lookup(5), nullptr);
    Victim v;
    CacheLine *line = c.allocate(5, &v);
    EXPECT_FALSE(v.valid);
    line->state = LineState::Shared;
    EXPECT_EQ(c.lookup(5), line);
    EXPECT_DOUBLE_EQ(c.statHits.value(), 1.0);
    EXPECT_DOUBLE_EQ(c.statMisses.value(), 1.0);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(tiny());       // 4 sets x 2 ways
    Victim v;
    // Three lines mapping to set 1 (line addrs 1, 5, 9).
    auto fill = [&](Addr a) {
        CacheLine *l = c.allocate(a, &v);
        l->state = LineState::Shared;
        c.use(l);
        return l;
    };
    fill(1);
    fill(5);
    c.lookup(1);           // make 1 most recently used
    c.use(c.lookup(1));
    fill(9);               // must evict 5 (LRU)
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 5u);
    EXPECT_NE(c.lookup(1), nullptr);
    EXPECT_NE(c.lookup(9), nullptr);
    EXPECT_EQ(c.lookup(5), nullptr);
}

TEST(Cache, VictimCarriesDataAndState)
{
    Cache c(tiny());
    Victim v;
    CacheLine *l = c.allocate(2, &v);
    l->state = LineState::Modified;
    l->words[3].data = 0xABCD;
    l->words[3].full = false;
    c.use(l);
    CacheLine *l6 = c.allocate(6, &v);  // same set, second way
    l6->state = LineState::Shared;
    c.allocate(10, &v);    // now one of them goes
    ASSERT_TRUE(v.valid);
    if (v.lineAddr == 2) {
        EXPECT_EQ(v.state, LineState::Modified);
        EXPECT_EQ(v.words[3].data, 0xABCDu);
        EXPECT_FALSE(v.words[3].full);
    }
}

TEST(Cache, InvalidateDropsLine)
{
    Cache c(tiny());
    Victim v;
    CacheLine *l = c.allocate(3, &v);
    l->state = LineState::Shared;
    c.invalidate(3);
    EXPECT_EQ(c.lookup(3), nullptr);
    EXPECT_DOUBLE_EQ(c.statInvalidations.value(), 1.0);
    // Invalidating an absent line is harmless.
    c.invalidate(3);
    EXPECT_DOUBLE_EQ(c.statInvalidations.value(), 1.0);
}

TEST(Cache, FullEmptyBitsCachedWithData)
{
    Cache c(tiny());
    Victim v;
    CacheLine *l = c.allocate(0, &v);
    l->state = LineState::Modified;
    l->words[1].full = false;
    CacheLine *again = c.lookup(0);
    ASSERT_NE(again, nullptr);
    EXPECT_FALSE(again->words[1].full);
}

TEST(Cache, BadGeometryIsFatal)
{
    EXPECT_THROW(Cache({.lineWords = 4, .numLines = 10, .assoc = 4}),
                 FatalError);
    EXPECT_THROW(Cache({.lineWords = 4, .numLines = 24, .assoc = 4}),
                 FatalError);
}

TEST(Cache, Table4Geometry)
{
    // 64 KB of 16-byte lines: the paper's default.
    Cache c({.lineWords = 4, .numLines = 4096, .assoc = 4});
    Victim v;
    for (Addr a = 0; a < 4096; ++a) {
        CacheLine *l = c.allocate(a, &v);
        l->state = LineState::Shared;
        EXPECT_FALSE(v.valid) << "no eviction while under capacity";
    }
}

} // namespace
} // namespace april::cache
